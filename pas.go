// Package pas is the public API of the PAS reproduction: Prediction-based
// Adaptive Sleeping for environment-monitoring wireless sensor networks
// (Yang, Xu, Dai, Gu — ICPP Workshops 2007), together with the full
// simulation substrate the paper's evaluation needs (discrete-event kernel,
// Telos energy model, broadcast radio with loss models, diffusion-stimulus
// front models including an advection–diffusion PDE plume, deployment
// generators, the SAS and no-sleeping baselines, and a replicated-experiment
// harness that regenerates every table and figure of the paper).
//
// # Quick start
//
//	sc := pas.PaperScenario()
//	report, err := pas.Run(pas.RunConfig{
//		Scenario: sc,
//		Protocol: pas.ProtoPAS,
//		Seed:     1,
//	})
//	if err != nil { ... }
//	fmt.Println(report)        // delay/energy/duty summary
//	fmt.Println(report.Table()) // per-node breakdown
//
// # Regenerating the paper
//
//	for _, e := range pas.Experiments() {
//		res, err := e.Run(pas.ExperimentOptions{})
//		...
//		fmt.Println(res.Render())
//	}
//
// # Scenarios
//
// Workloads are declarative: a ScenarioSpec composes a deployment kind
// (uniform / grid / clustered / poisson), field size, node count, radio
// range and loss model, stimulus model (radial / advected / anisotropic /
// multi-source / PDE plume / eikonal terrain), failure injection and
// protocol parameters, and serializes to JSON (Encode/DecodeScenario).
// Scenarios() is the named registry — the paper's Figs. 4–7 workload is its
// first entry, followed by the extension workloads and the production-scale
// grid deployments scale-100 / scale-1k / scale-10k (ScaleScenario(n) for
// arbitrary sizes). RunConfigFromScenario compiles a spec into a RunConfig:
//
//	sp, _ := pas.LookupScenario("scale-10k")
//	cfg, err := pas.RunConfigFromScenario(sp, 1)
//	cfg.Protocol = pas.ProtoPAS
//	report, err := pas.Run(cfg)
//
// The CLIs select specs with -scenario: passim runs one (passim -scenario
// poisson), pasbench sweeps one (pasbench -scenario scale-1k), and the
// ext-scale experiment sweeps the deployment size across 100/1k/10k nodes.
// The 10 000-node runs complete in a fraction of a second: deployment
// generation uses the spatial hash, broadcast delivery walks a frozen CSR
// topology compiled once per deployment (nothing on the run path is O(n²)
// in the node count, or even re-derives per-link geometry per broadcast),
// and BenchmarkScale10k / BenchmarkScale10kColdStart pin the warm and cold
// cost.
//
// # Parallel replication
//
// Every (experiment × sweep-point × protocol × seed) cell of the evaluation
// is an independent simulation, and the harness fans cells out across a
// worker pool (internal/runner). ExperimentOptions.Parallelism caps the
// number of runs in flight: 0 (the default) uses one worker per CPU, 1
// reproduces the serial path. Results are merged in cell order, never in
// completion order, so output is bit-identical at any parallelism. The same
// knob is exposed as -parallel on the pasbench and passim CLIs, and as
// ReplicateParallel in this package.
//
// # Serving
//
// cmd/passerve runs the reproduction as a long-lived simulation service: an
// HTTP/JSON daemon (internal/serve, exported here as Server/NewServer) that
// schedules runs on a bounded worker pool and answers repeated questions
// from a content-addressed result store. Determinism is what makes the store
// sound: the same canonical spec and seed always produce byte-identical
// output, so results are keyed by SHA-256 over (code version, endpoint mode,
// canonical spec JSON, seed list) and every spelling of the same workload —
// registry name, inline spec, defaults spelled out — shares one cache line.
// CanonicalScenario produces that canonical encoding (sorted keys, defaults
// materialized, kind-irrelevant fields zeroed) and ScenarioHash its content
// hash. Concurrent identical requests collapse onto one in-flight simulation
// (singleflight); distinct requests queue up to a bounded depth and are
// rejected with 429 beyond it; every request runs under a deadline (504 on
// expiry). Every 4xx/5xx body is {"code","error"} with a small stable code
// vocabulary (bad_request, not_found, saturated, deadline, panic, internal,
// not_ready, job_failed, draining) so callers branch on codes, never on
// message text:
//
//	POST /v1/runs          {"name":"paper","seed":1}         one simulation
//	POST /v1/replicate     {"name":"paper","seeds":[1,2,3]}  seed aggregate
//	POST /v1/jobs          {"mode":"run","name":...}         202 + job id
//	GET  /v1/jobs/{id}     (?stream=1 for NDJSON progress)   state + progress
//	GET  /v1/jobs/{id}/result                                completed body
//	GET  /v1/scenarios                                       registry + hashes
//	GET  /v1/stats                                           hits, p50/p99, durability
//	GET  /v1/healthz                                         liveness
//
// With ServeConfig.StoreDir set the store is durable: results live in a
// disk-backed content-addressed store under the in-memory LRU (X-Cache says
// hit-mem, hit-disk or miss), written atomically (temp file, fsync, rename)
// in a CRC-framed record format, and a restart's recovery scan adopts intact
// records and quarantines torn ones. Async jobs are journaled: POST /v1/jobs
// fsyncs a submit entry to a write-ahead journal before the 202 is sent, so
// an acknowledged job survives a crash — on restart the journal replays and
// incomplete jobs re-execute, and determinism guarantees the recovered body
// is byte-identical to what the crashed process would have served. A
// SIGTERM'd daemon drains instead: in-flight jobs finish, terminal entries
// and the store are fsynced, and the restarted daemon has nothing to replay.
// Graceful shutdown degrades to crash recovery, never to lost work.
//
// The Go client for all of this is exported as Client/NewClient (internal/
// client): typed APIError with the server's code vocabulary, per-attempt
// timeouts, capped exponential backoff with full jitter that honors
// Retry-After, idempotency-keyed job submission (retrying a submit cannot
// double-run work), a consecutive-failure circuit breaker, and job helpers
// (SubmitJob/WaitJob/JobResult, or RunJob for the whole round trip).
//
// Cancellation plumbs all the way into the event kernel: RunContext,
// ReplicateContext and ReplicateParallelContext stop between kernel slices
// when their context dies, and produce byte-identical results to the
// context-free forms when left to finish. Progress rides the same channel in
// reverse: WithRunProgress derives a context whose simulation reports
// (now, horizon) advance through virtual time — hooks fire from the run
// orchestration goroutine, never inside an event handler, so an observed run
// is byte-identical to an unobserved one. The serving layer uses it to
// stream per-window progress for queued jobs (GET /v1/jobs/{id}?stream=1).
//
// # Robustness
//
// internal/fault is a deterministic fault-injection subsystem. A
// FailureSpec declares the fault taxonomy: crash-stop kills (uniform, or
// time-windowed via From/By and spatially clustered via ClusterRadius),
// crash-recovery churn (ChurnSpec — nodes go dark and rejoin in place; the
// frozen CSR topology is reused, never recompiled, and a rebooting radio
// stays deaf to transmissions begun while it was down), sensor
// miscalibration (SensorSpec — additive detection drift, stuck-at readings
// frozen at a random onset, burst noise forcing spurious detections) and
// radio degradation windows (DegradationSpec — a time-bounded extra drop
// probability layered over the channel model without disturbing its own
// draws). CompileFaults materializes a spec into a FaultPlan
// (RunConfig.Faults); every draw comes from named rng streams ("failures"
// for the legacy uniform kill — byte-compatible with the pre-fault harness —
// plus fault/crash, fault/churn, fault/sensor and fault/degrade), so faulted
// runs stay byte-identical serial vs parallel. A spec using only
// Fraction/By takes the exact legacy code path and preserves old goldens.
//
// The PAS/SAS agents embed an optional sink-side liveness tracker
// (Config.Liveness, a LivenessConfig): a peer silent for MissK report
// intervals turns suspect and is re-probed with capped exponential backoff
// (BackoffInit doubling up to BackoffMax) until MaxProbes probes go
// unanswered, then it is declared dead; a later message resurrects it.
// Metrics gains the graceful-degradation measures (live coverage fraction,
// stale-read age at declaration, false-dead declarations, re-probe count and
// energy) and the ext-faults experiment sweeps a combined churn ×
// miscalibration × degradation severity against NS/PAS/SAS. Its golden
// trace regenerates like the others:
//
//	go test ./internal/experiment -run 'TestGoldenTraces/ext-faults' -update
//
// # Prediction
//
// The PAS agent's arrival prediction is a plugin (internal/predict): the
// agent embeds a predict.Model by value and delegates velocity tracking, ETA
// estimation and the report gate to it, so the prediction model is selectable
// per run without touching protocol code. The registry ships six kinds:
//
//   - "paper" (the default) publishes the raw §3.3 estimator reading —
//     byte-identical to every pre-predictor release; all goldens pin this.
//   - "lms" adapts a two-tap normalized LMS linear predictor (step size Mu)
//     over successive arrival readings.
//   - "ewma" exponentially smooths the reading (weight Alpha).
//   - "ar" fits an AR(k) model (Order ≤ 4) over a sliding window by
//     ridge-stabilized least squares.
//   - "kalman" runs a scalar random-walk Kalman filter (ProcessVar,
//     MeasureVar).
//   - "switching" runs the whole portfolio and publishes the arm with the
//     best exponentially discounted one-step error — and implements the
//     dual-prediction scheme: a report is suppressed while the model's
//     prediction stays within Tolerance of the raw reading, since neighbours
//     running the same model reconstruct it on their own (+Inf tolerance
//     suppresses every report).
//
// Every predictor is zero-alloc on the step path (fixed-size ring buffers,
// state embedded in the agent slab; alloc tests and BenchmarkPredictorStep
// pin 0 allocs/op). Selection is scenario-addressable — ProtocolSpec gains a
// PredictorSpec section (PASConfig.Predictor programmatically; -predictor on
// passim/pasbench) — and canonicalization-aware: a spec without a predictor
// section, or with an explicit default one, keeps its pre-predictor content
// hash. Metrics gains the prediction-quality measures (arrival RMSE over
// detecting nodes, report suppressions, max staleness) and ext-predictors
// sweeps the portfolio inside PAS against the NS/SAS brackets on both the
// analytic radial front and the PDE plume.
//
// # Performance
//
// The run path is engineered for zero steady-state allocations and no
// re-derived geometry, because kernel and channel overhead tax every cell
// the replication engine fans out:
//
//   - internal/sim is an arena-based discrete-event kernel: events live in a
//     flat slice recycled through a freelist, the priority queue is a 4-ary
//     heap of slot indices (no container/heap interface boxing), and
//     EventIDs are generation-tagged so Cancel is an O(1) stamp check with
//     lazy removal at pop. Events can carry an argument (ScheduleArgAt), so
//     batched subsystems schedule one long-lived handler against pooled
//     records instead of a closure per event; sim.Timer re-arms through a
//     shared trampoline (and ResetArg makes re-arms entirely closure-free).
//     Steady-state Schedule/Step/Cancel and Timer re-arms allocate nothing;
//     regression tests pin 0 allocs/op.
//   - internal/radio freezes the topology: deployments are static, so on
//     the first broadcast the medium compiles its spatial hash into a CSR
//     adjacency (radio.Topology — per node, the in-range receivers in
//     ascending ID order with precomputed link distances) and every
//     broadcast walks one flat row instead of scanning hash buckets.
//     Delivery is batched: each broadcast is ONE kernel event fanning out
//     from a pooled delivery record sized exactly to its CSR row, and
//     protocol traffic travels as a value-dispatch radio.Envelope (a small
//     tagged union) with the boxed Message interface kept as a KindExt slow
//     path. A full broadcast→delivery cycle — including a nested
//     rebroadcast from inside a delivery — allocates nothing
//     (BenchmarkBroadcastDeliver and the radio alloc tests pin 0
//     allocs/op). AddNode after the freeze recompiles the topology on the
//     next broadcast.
//   - Construction is slab-allocated: node.BuildNetwork carves nodes,
//     radio endpoints and protocol agents from per-network slabs, meters
//     and timers are embedded by value, and protocol callbacks are
//     package-level arg handlers bound to the agent, so building a
//     10 000-node network costs ~1 allocation per node instead of ~35
//     (BenchmarkNetworkConstruction tracks the build-only cost).
//   - internal/experiment memoizes deployments AND their compiled
//     topologies: every cell sharing (seed, field, nodes, range, loss
//     range) reuses one immutable deployment and one CSR compilation
//     instead of re-deriving both per protocol × seed
//     (BenchmarkScale10kColdStart measures the memoization-free worst
//     case).
//   - The event kernel shards across cores without changing a single output
//     bit: RunConfig.Shards > 0 (passim -shards N) partitions the deployment
//     into contiguous spatial strips over the frozen CSR topology, gives
//     each strip its own arena kernel and medium, and advances all shards in
//     lockstep conservative windows of length W = TxTime(minWire) — the
//     shortest possible on-air transmission, hence the minimum delay before
//     an event on one shard can influence another. Cross-shard deliveries
//     are staged as boundary events and exchanged at window barriers, and a
//     per-window sequence merge (internal/sim.ShardGroup) reconstructs the
//     exact serial event order, so a sharded run is bit-identical to the
//     serial kernel at ANY shard count — same RunReport, same per-node
//     table, same golden traces (the byte-identity tests pin 1, 2 and 8
//     shards against serial on a full scale-1k run). Sharding requires the
//     deterministic transmit path: exact unit-disk loss, no collisions, no
//     CSMA, no fault plan (experiment.Shardable gates, with a clear error).
//     scale-100k and scale-1m join the scenario registry as the workloads
//     this enables; BenchmarkScale100k (4 shards) is the baselined headline,
//     with BenchmarkScale100kSerial as its 1-shard speedup reference.
//
// Determinism is pinned by golden-trace snapshots
// (internal/experiment/testdata/golden): fresh serial and 8-way-parallel
// runs of fig4, ext-plume, ext-lifetime, ext-lossy-csma (the
// imperfect-channel + collisions + CSMA workload, so every consumer of
// channel randomness is trace-pinned against the frozen CSR rows), ext-faults
// (churn, miscalibration, degradation and liveness probing) and
// ext-predictors (every filter arm's numerics) must match the committed
// output byte-for-byte; regenerate intentionally with
// `go test ./internal/experiment -run TestGoldenTraces -update`.
//
// To profile a hot path, run the harness under pprof directly:
//
//	pasbench -exp fig4 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Scale is bounded by int32 indexing in the hot structures — CSR point and
// edge counts (internal/geom) and kernel arena slots (internal/sim) — and
// each bound is enforced by a loud panic at the exact overflow point rather
// than silent wraparound; capacity-guard tests pin every guard path. A
// scale-1m run fits comfortably (~1M nodes, ~30M directed CSR edges against
// the 2^31 ceilings).
//
// BENCH_4.json pins the benchmark baseline (BENCH_1.json through BENCH_3.json
// are kept as historical points); `go run ./cmd/benchcheck` compares fresh
// `go test -bench` output against it (CI does this automatically, warning
// on >20% drift in ns/op or allocs/op — for the zero-alloc baselines any
// allocation at all warns — and publishes the comparison as machine-readable
// JSON rows via -json).
//
// # Module layout
//
// The module is named repro. The public API lives in this root package;
// cmd/passim (single runs), cmd/pasbench (figure regeneration), cmd/pasviz
// (ASCII animation), cmd/passerve (the simulation service) and
// cmd/benchcheck (benchmark-baseline comparison) are the CLIs; examples/
// holds runnable walkthroughs. The simulation substrate is under internal/:
// sim (event kernel), node/radio/energy (the mote model), core/sas/baseline
// (the protocols), diffusion/geom (stimulus front models), deploy, rng,
// metrics, stats, contour, trace, runner (the parallel replication engine)
// and serve (the HTTP service) — experiment ties them into the replicated
// harness.
//
// # Local verification
//
// CI (.github/workflows/ci.yml) runs exactly these commands; run them
// locally before sending a change:
//
//	go build ./...
//	go vet ./...
//	gofmt -l .          # must print nothing
//	go test -race ./...
//	go test -run '^$' -bench=. -benchtime=1x ./...   # quick bench smoke
//
// Lower-level building blocks (custom stimuli, hand-wired networks, custom
// agents) are exposed through the type aliases below; see the examples/
// directory for runnable walkthroughs.
package pas

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/client"
	"repro/internal/contour"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sas"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Protocol identifiers accepted by RunConfig.Protocol.
const (
	ProtoPAS  = experiment.ProtoPAS
	ProtoSAS  = experiment.ProtoSAS
	ProtoNS   = experiment.ProtoNS
	ProtoDuty = experiment.ProtoDuty
)

// Core geometry and scenario types.
type (
	// Vec2 is a 2-D point/vector in metres.
	Vec2 = geom.Vec2
	// Rect is an axis-aligned field rectangle.
	Rect = geom.Rect
	// Scenario bundles a stimulus with its field and horizon.
	Scenario = diffusion.Scenario
	// Stimulus is the phenomenon interface (coverage + ground truth).
	Stimulus = diffusion.Stimulus
	// FrontModel adds boundary/velocity queries to a stimulus.
	FrontModel = diffusion.FrontModel
)

// V constructs a Vec2.
func V(x, y float64) Vec2 { return geom.V(x, y) }

// R constructs a Rect from two corners.
func R(x0, y0, x1, y1 float64) Rect { return geom.R(x0, y0, x1, y1) }

// Protocol configuration types.
type (
	// PASConfig holds the PAS tunables (alert threshold, sleep ramp, ...).
	PASConfig = core.Config
	// SASConfig holds the SAS baseline tunables.
	SASConfig = sas.Config
	// EnergyProfile is the hardware power model (paper Table 1).
	EnergyProfile = energy.Profile
)

// DefaultPASConfig returns the reproduction's PAS defaults.
func DefaultPASConfig() PASConfig { return core.DefaultConfig() }

// DefaultSASConfig returns the SAS defaults (mirroring PAS where shared).
func DefaultSASConfig() SASConfig { return sas.DefaultConfig() }

// Telos returns the Telos mote power profile of the paper's Table 1.
func Telos() EnergyProfile { return energy.Telos() }

// Simulation-running types.
type (
	// RunConfig describes one simulation run (scenario, protocol, seed,
	// channel model, failure injection).
	RunConfig = experiment.RunConfig
	// RunReport is the collected outcome of one run.
	RunReport = metrics.RunReport
	// NodeReport is the per-node slice of a RunReport.
	NodeReport = metrics.NodeReport
	// Aggregate accumulates headline metrics across replicated runs.
	Aggregate = metrics.Aggregate
)

// Run executes one simulation and returns its metrics.
func Run(cfg RunConfig) (RunReport, error) { return experiment.RunOnce(cfg) }

// RunContext is Run with cooperative cancellation: the context is checked
// before the network builds and between kernel slices while the simulation
// runs, so a cancelled or expired context stops the run within a fraction of
// its horizon. A run left to complete is byte-identical to Run.
func RunContext(ctx context.Context, cfg RunConfig) (RunReport, error) {
	return experiment.RunOnceContext(ctx, cfg)
}

// Replicate runs cfg once per seed and aggregates the headline metrics.
// Replication is serial; ReplicateParallel fans the runs out.
func Replicate(cfg RunConfig, seeds []int64) (Aggregate, error) {
	return experiment.Replicate(cfg, seeds)
}

// ReplicateContext is Replicate with cooperative cancellation between (and
// inside) the per-seed runs.
func ReplicateContext(ctx context.Context, cfg RunConfig, seeds []int64) (Aggregate, error) {
	return experiment.ReplicateContext(ctx, cfg, seeds)
}

// ReplicateParallel runs cfg once per seed across a worker pool
// (parallelism <= 0 means one worker per CPU, 1 is serial) and folds the
// reports in seed order, so the aggregate is bit-identical to Replicate at
// any parallelism.
func ReplicateParallel(cfg RunConfig, seeds []int64, parallelism int) (Aggregate, error) {
	return experiment.ReplicateParallel(cfg, seeds, parallelism)
}

// ReplicateParallelContext is ReplicateParallel with cooperative
// cancellation: the pool stops claiming seeds once ctx dies and in-flight
// runs stop at their next kernel slice.
func ReplicateParallelContext(ctx context.Context, cfg RunConfig, seeds []int64, parallelism int) (Aggregate, error) {
	return experiment.ReplicateParallelContext(ctx, cfg, seeds, parallelism)
}

// Seeds returns n deterministic replication seeds (1..n).
func Seeds(n int) []int64 { return experiment.DefaultSeeds(n) }

// Experiment-harness types.
type (
	// Experiment is one regenerable paper table/figure or extension.
	Experiment = experiment.Experiment
	// ExperimentOptions tunes replication and sweep size.
	ExperimentOptions = experiment.Options
	// ExperimentResult is a regenerated figure: curves + notes.
	ExperimentResult = experiment.Result
)

// Experiments returns the full registry (paper figures + extensions).
func Experiments() []Experiment { return experiment.All() }

// LookupExperiment finds a registry entry by ID (e.g. "fig4").
func LookupExperiment(id string) (Experiment, bool) { return experiment.Lookup(id) }

// Scenario constructors.

// PaperScenario is the radial-pollutant workload of the paper's Figs. 4–7.
func PaperScenario() Scenario { return diffusion.PaperScenario() }

// IrregularScenario is the paper workload with an anisotropic (Fig. 2-style
// irregular) front.
func IrregularScenario(seed int64) Scenario { return diffusion.IrregularScenario(seed) }

// GasLeakScenario is an emergent advected release (paper §3.4 discussion).
func GasLeakScenario() Scenario { return diffusion.GasLeakScenario() }

// PlumeScenario integrates an advection–diffusion PDE plume (slower to
// build; numerically irregular front).
func PlumeScenario() (Scenario, error) { return diffusion.PlumeScenario() }

// TwinSpillScenario is a two-source union stimulus.
func TwinSpillScenario() Scenario { return diffusion.TwinSpillScenario() }

// TerrainScenario is a heterogeneous-terrain front: the local spread speed
// varies over the field and the ground truth solves the eikonal equation by
// fast marching (slower to build).
func TerrainScenario() (Scenario, error) { return diffusion.TerrainScenario() }

// QuietScenario has no stimulus within the horizon — the surveillance-
// lifetime workload.
func QuietScenario() Scenario { return diffusion.QuietScenario() }

// Declarative scenario specs (the scenario registry).
type (
	// ScenarioSpec is a declarative, JSON-serializable workload: deployment
	// kind, field, node count, radio range and loss model, stimulus model,
	// failure injection and protocol parameters. Scenarios() lists the named
	// registry; RunConfigFromScenario compiles a spec into a RunConfig.
	ScenarioSpec = scenario.Scenario
	// DeploymentSpec selects a deployment generator (uniform, grid,
	// clustered, poisson); the zero value is the paper's connected-uniform
	// draw.
	DeploymentSpec = scenario.DeploymentSpec
	// RadioSpec describes the channel (range, loss model, collisions, CSMA).
	RadioSpec = scenario.RadioSpec
	// StimulusSpec declaratively describes a stimulus (radial, advected,
	// anisotropic, multi-source, PDE plume, eikonal terrain).
	StimulusSpec = scenario.StimulusSpec
	// FailureSpec declares fault injection: the legacy uniform crash-stop
	// kill (Fraction/By), time-windowed and spatially-clustered kills
	// (From/ClusterRadius), and the extended models below.
	FailureSpec = scenario.FailureSpec
	// ChurnSpec takes nodes dark for a while and rejoins them in place
	// (crash-recovery churn).
	ChurnSpec = scenario.ChurnSpec
	// SensorSpec miscalibrates sensors: additive detection drift, stuck-at
	// readings and burst noise.
	SensorSpec = scenario.SensorSpec
	// DegradationSpec layers a time-bounded extra loss probability on the
	// radio channel.
	DegradationSpec = scenario.DegradationSpec
	// LivenessSpec enables the sink-side peer liveness tracker in a
	// scenario's protocol section.
	LivenessSpec = scenario.LivenessSpec
	// ProtocolSpec optionally pins the protocol and its headline tunables.
	ProtocolSpec = scenario.ProtocolSpec
	// PredictorSpec selects the PAS arrival predictor in a scenario's
	// protocol section (kind + filter tunables; see the Prediction doc
	// section).
	PredictorSpec = scenario.PredictorSpec
)

// Arrival prediction (internal/predict).
type (
	// PredictorConfig selects and tunes the PAS arrival predictor
	// programmatically (PASConfig.Predictor); the zero value is the paper
	// estimator. Kinds: "paper", "lms", "ewma", "ar", "kalman", "switching".
	PredictorConfig = predict.Spec
	// PredictionStats snapshots a predictor's per-run quality counters
	// (squared arrival error, report suppressions, staleness).
	PredictionStats = predict.Stats
)

// PredictorKinds lists the registered predictor kinds in registry order
// ("paper" first).
func PredictorKinds() []string { return predict.Kinds() }

// DescribePredictor returns a one-line summary of a predictor kind ("" means
// the default) and whether the kind is known.
func DescribePredictor(kind string) (string, bool) { return predict.Describe(kind) }

// Fault injection (internal/fault).
type (
	// FaultPlan is a compiled fault schedule: pure data shared across
	// replicated runs, applied to a built network with per-run randomness.
	FaultPlan = fault.Plan
	// LivenessConfig tunes the sink-side peer liveness tracker embedded in
	// the PAS/SAS configs (Config.Liveness); the zero value disables it.
	LivenessConfig = fault.LivenessConfig
	// LivenessStats snapshots a tracker: probe count, probe energy and the
	// death declarations.
	LivenessStats = fault.LivenessStats
)

// CompileFaults materializes a FailureSpec into a FaultPlan against the
// given horizon; assign it to RunConfig.Faults. The experiment harness does
// this automatically for scenario specs with extended fault models.
func CompileFaults(f FailureSpec, horizon float64) *FaultPlan {
	return fault.Compile(f, horizon)
}

// Scenarios returns the named scenario registry: the paper's Figs. 4–7
// workload first, then the extension workloads, the structured-deployment
// showcases and the production-scale (scale-100/1k/10k) deployments.
func Scenarios() []ScenarioSpec { return scenario.All() }

// LookupScenario finds a registry scenario by name (e.g. "paper",
// "scale-10k").
func LookupScenario(name string) (ScenarioSpec, bool) { return scenario.Lookup(name) }

// ScaleScenario returns the production-scale grid scenario with n nodes at
// the paper's deployment density.
func ScaleScenario(n int) ScenarioSpec { return scenario.Scale(n) }

// DecodeScenario parses and validates a JSON scenario spec (the format
// written by ScenarioSpec.Encode); unknown fields are rejected.
func DecodeScenario(data []byte) (ScenarioSpec, error) { return scenario.Decode(data) }

// RunConfigFromScenario compiles a scenario spec into a run config; seed
// parameterizes the stochastic stimuli and the deployment draw. Protocol and
// tunables may still be overridden on the result.
func RunConfigFromScenario(sp ScenarioSpec, seed int64) (RunConfig, error) {
	return experiment.FromScenario(sp, seed)
}

// ScenarioSweepExperiment builds an on-the-fly experiment running the
// standard maximum-sleep sweep (NS/PAS/SAS, delay and energy) over a named
// registry scenario — the engine behind `pasbench -scenario`.
func ScenarioSweepExperiment(name string) (Experiment, error) {
	return experiment.ScenarioSweep(name)
}

// ScenarioSweepPredictorExperiment is ScenarioSweepExperiment with the PAS
// arrival predictor pinned to the named kind ("" keeps the scenario's own) —
// the engine behind `pasbench -scenario -predictor`.
func ScenarioSweepPredictorExperiment(name, predictor string) (Experiment, error) {
	return experiment.ScenarioSweepPredictor(name, predictor)
}

// CanonicalScenario returns the spec's canonical JSON encoding: validated,
// defaults materialized, kind-irrelevant fields zeroed, keys sorted. Two
// specs describing the same simulation canonicalize to identical bytes —
// the basis of the serving layer's content-addressed result store.
func CanonicalScenario(sp ScenarioSpec) ([]byte, error) { return scenario.Canonical(sp) }

// ScenarioHash returns the hex SHA-256 of the spec's canonical encoding —
// the content hash GET /v1/scenarios lists and the run/replicate cache keys
// build on.
func ScenarioHash(sp ScenarioSpec) (string, error) { return scenario.Hash(sp) }

// ScenarioNames lists the registry scenarios accepted by ScenarioByName and
// the CLIs' -scenario flags.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName resolves a registry scenario by name and builds its
// stimulus; seed parameterizes the stochastic ones (irregular). The empty
// name means "paper". Callers that also want the scenario's deployment,
// channel and protocol sections should use LookupScenario +
// RunConfigFromScenario instead.
func ScenarioByName(name string, seed int64) (Scenario, error) {
	if name == "" {
		name = "paper"
	}
	sp, ok := scenario.Lookup(name)
	if !ok {
		return Scenario{}, fmt.Errorf("pas: unknown scenario %q (one of %v)", name, ScenarioNames())
	}
	return sp.BuildStimulus(seed)
}

// PassingPlumeScenario is a receding stimulus (finite dwell), driving the
// covered→safe transition.
func PassingPlumeScenario() Scenario { return diffusion.PassingPlumeScenario() }

// Stimulus constructors for custom scenarios.

// NewRadialFront grows a disc from origin at speed (m/s) starting at start.
func NewRadialFront(origin Vec2, speed, start float64) FrontModel {
	return diffusion.NewRadialFront(origin, speed, start)
}

// NewAdvectedFront grows a disc that also drifts with the wind.
func NewAdvectedFront(origin Vec2, growth float64, drift Vec2, start float64) FrontModel {
	return diffusion.NewAdvectedFront(origin, growth, drift, start)
}

// TerrainFrontConfig parameterizes a heterogeneous-terrain front: a speed
// map sampled per grid cell, solved for first arrivals with fast marching.
type TerrainFrontConfig = diffusion.TerrainConfig

// NewTerrainFront solves the eikonal equation over the config's speed map
// and returns the queryable front (speeds ≤ 0 are impassable barriers).
func NewTerrainFront(cfg TerrainFrontConfig) (FrontModel, error) {
	return diffusion.NewTerrainFront(cfg)
}

// Low-level network types for hand-wired simulations and custom agents.
type (
	// Network is a wired, runnable sensor field.
	Network = node.Network
	// NetworkConfig assembles a network from a deployment and agents.
	NetworkConfig = node.NetworkConfig
	// Node is one simulated mote.
	Node = node.Node
	// Agent is the protocol personality plugged into a node.
	Agent = node.Agent
	// NodeState is the protocol state (safe/alert/covered).
	NodeState = node.State
	// NodeID identifies a node on the radio medium.
	NodeID = radio.NodeID
	// Deployment is a set of node positions over a field.
	Deployment = deploy.Deployment
	// LossModel decides per-link packet delivery.
	LossModel = radio.LossModel
	// UnitDisk is the paper's channel model.
	UnitDisk = radio.UnitDisk
	// LossyDisk drops packets uniformly at random within range.
	LossyDisk = radio.LossyDisk
	// DistanceFalloff models the transitional reception region.
	DistanceFalloff = radio.DistanceFalloff
)

// Node states.
const (
	StateSafe    = node.StateSafe
	StateAlert   = node.StateAlert
	StateCovered = node.StateCovered
)

// BuildNetwork wires a deployment, stimulus and agents into a runnable
// network.
func BuildNetwork(cfg NetworkConfig) *Network { return node.BuildNetwork(cfg) }

// NewPASAgent constructs a PAS protocol agent.
func NewPASAgent(cfg PASConfig) Agent { return core.New(cfg) }

// NewSASAgent constructs a SAS baseline agent.
func NewSASAgent(cfg SASConfig) Agent { return sas.New(cfg) }

// NewNSAgent constructs the always-on baseline agent.
func NewNSAgent() Agent { return baseline.NewNS() }

// NewDutyCycleAgent constructs the fixed duty-cycling strawman.
func NewDutyCycleAgent(period, onTime float64) Agent {
	return baseline.NewDutyCycle(period, onTime)
}

// CollectMetrics builds a RunReport from a finished network.
func CollectMetrics(nodes []*Node, horizon float64) RunReport {
	return metrics.Collect(nodes, horizon)
}

// UniformDeployment draws a connected uniform deployment (panics when the
// field/range/count combination cannot connect within maxAttempts).
func UniformDeployment(seed int64, field Rect, n int, radioRange float64, maxAttempts int) *Deployment {
	st := rng.NewSource(seed).Stream("deploy")
	return deploy.ConnectedUniform(st, field, n, radioRange, maxAttempts)
}

// GridDeployment places nodes on a jittered lattice.
func GridDeployment(seed int64, field Rect, nx, ny int, jitter float64) *Deployment {
	st := rng.NewSource(seed).Stream("deploy")
	return deploy.Grid(st, field, nx, ny, jitter)
}

// RenderField draws a Fig. 2-style ASCII snapshot of the field at time t.
func RenderField(field Rect, stim Stimulus, nodes []*Node, t float64, w, h int) string {
	return trace.RenderField(field, stim, nodes, t, w, h)
}

// StateLog records node state transitions for post-run inspection.
type StateLog = trace.StateLog

// Covered-area estimation (the monitoring system's deliverable).
type (
	// ContourEstimator aggregates detection reports into covered-area
	// estimates (attach it to a network's nodes before running).
	ContourEstimator = contour.Estimator
	// AreaReport scores an area estimate against ground truth.
	AreaReport = contour.AreaReport
)

// ContourAreaError Monte-Carlo-scores an estimated hull against the true
// coverage at time t (seed drives the sampling).
func ContourAreaError(est *ContourEstimator, stim Stimulus, field Rect, t float64, samples int, seed int64) AreaReport {
	st := rng.NewSource(seed).Stream("contour-mc")
	return contour.AreaError(est.EstimateHull(t), stim, field, t, samples, st)
}

// Simulation service (cmd/passerve).
type (
	// ServeConfig tunes the simulation service (workers, queue depth,
	// deadlines, result-store capacity); the zero value serves with
	// defaults.
	ServeConfig = serve.Config
	// Server is the simulation-service HTTP handler: a bounded worker pool
	// over the experiment harness with a content-addressed result store.
	Server = serve.Server
	// ServeStats is the wire shape of GET /v1/stats.
	ServeStats = serve.Stats
)

// NewServer builds the simulation-service handler; mount it on any
// http.Server (cmd/passerve wires listening and graceful shutdown). With
// cfg.StoreDir set the error covers the durable store's recovery scan and
// the job journal replay.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// Streaming run progress (internal/node).
//
// ProgressFunc observes a running simulation's advance through virtual time.
// Hooks fire from the run orchestration goroutine, never from inside an
// event handler, so a progress-observed run is byte-identical to an
// unobserved one.
type ProgressFunc = node.ProgressFunc

// WithRunProgress derives a context whose simulations report progress to fn;
// pass it to RunContext / ReplicateContext (the serving layer uses the same
// hook to stream async-job progress).
func WithRunProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return node.WithProgress(ctx, fn)
}

// Simulation-service client (internal/client).
type (
	// Client is the retrying HTTP client for the simulation service:
	// per-attempt timeouts, capped exponential backoff with full jitter
	// (honoring Retry-After), idempotency-keyed job submission and a
	// consecutive-failure circuit breaker.
	Client = client.Client
	// ClientConfig tunes the client; the zero value (plus BaseURL) is a
	// sensible production client.
	ClientConfig = client.Config
	// APIError is a typed service error carrying the HTTP status and the
	// stable wire code; Transient reports whether a retry can help.
	APIError = client.APIError
	// RunRequest selects a workload by registry name or inline spec, with a
	// seed (runs) or seed list (replicates) and an optional shard hint.
	RunRequest = client.RunRequest
	// JobAccepted is the 202 acknowledgment for an async job.
	JobAccepted = client.JobAccepted
	// JobState reports an async job's state, progress and error code.
	JobState = client.JobStatus
)

// ErrBreakerOpen is returned by Client calls refused locally while its
// circuit breaker cools down.
var ErrBreakerOpen = client.ErrBreakerOpen

// NewClient builds a Client with default retry policy against baseURL; use
// NewClientWithConfig to tune it.
func NewClient(baseURL string) *Client { return client.New(baseURL) }

// NewClientWithConfig builds a Client from an explicit configuration.
func NewClientWithConfig(cfg ClientConfig) *Client { return client.NewWithConfig(cfg) }
