// Command passerve runs the PAS reproduction as a long-lived simulation
// service: an HTTP/JSON daemon that schedules runs on a bounded worker pool
// and answers repeated questions from a content-addressed result store
// (determinism makes identical requests cache hits, not re-simulations).
//
// Usage:
//
//	passerve                          # listen on :8080 with defaults
//	passerve -addr 127.0.0.1:9090     # bind elsewhere
//	passerve -workers 8 -queue 32     # pool sizing (admission beyond → 429)
//	passerve -timeout 10s -max-timeout 1m
//	passerve -cache 16384             # result-store capacity (entries)
//	passerve -store /var/lib/passerve # durable store + job journal (crash-safe)
//	passerve -job-timeout 30m         # async-job execution cap
//
// Endpoints:
//
//	POST /v1/runs            {"name":"paper","seed":1}        one simulation
//	POST /v1/replicate       {"name":"paper","seeds":[1,2,3]} seed aggregate
//	POST /v1/jobs            async submission (202 + job ID; journaled)
//	GET  /v1/jobs/{id}       job status (?stream=1 for NDJSON progress)
//	GET  /v1/jobs/{id}/result  the finished body
//	GET  /v1/scenarios                                        the registry
//	GET  /v1/stats                                            serving counters
//	GET  /v1/healthz                                          liveness
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener stops
// admitting, in-flight requests drain, acknowledged jobs run to completion
// (bounded by the drain timeout), and the journal and store are fsynced. A
// job the drain deadline cuts off stays incomplete in the journal, so the
// next start re-executes it — with -store set, kill -9 at any instant loses
// no acknowledged work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	pas "repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// parseFlags parses the command line into a serve configuration.
func parseFlags(args []string, stderr io.Writer) (addr string, cfg pas.ServeConfig, err error) {
	fs := flag.NewFlagSet("passerve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.Workers, "workers", 0, "concurrent simulations (0 = one per CPU)")
	fs.IntVar(&cfg.QueueDepth, "queue", 0, "queued simulations beyond the workers before 429 (0 = 4x workers)")
	fs.DurationVar(&cfg.DefaultTimeout, "timeout", 0, "default per-request deadline (0 = 30s)")
	fs.DurationVar(&cfg.MaxTimeout, "max-timeout", 0, "hard cap on request deadlines (0 = 2m)")
	fs.IntVar(&cfg.CacheEntries, "cache", 0, "result-store capacity in entries (0 = 4096)")
	fs.StringVar(&cfg.StoreDir, "store", "", "durable store directory (empty = memory-only)")
	fs.DurationVar(&cfg.JobTimeout, "job-timeout", 0, "async-job execution cap (0 = 10m)")
	err = fs.Parse(args)
	return addr, cfg, err
}

// run executes one invocation and returns the process exit code. It serves
// until ctx is cancelled, then drains in-flight requests and exits.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	addr, cfg, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "passerve: %v\n", err)
		return 1
	}
	handler, err := pas.NewServer(cfg)
	if err != nil {
		ln.Close()
		fmt.Fprintf(stderr, "passerve: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(stdout, "passerve listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// Serve only returns on listener failure here (Shutdown is the
		// other path, and it goes through ctx).
		fmt.Fprintf(stderr, "passerve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop the listener and finish in-flight requests, then
	// let acknowledged jobs run to completion and fsync the journal/store.
	// Jobs the deadline cuts off stay incomplete in the journal and replay on
	// the next start — graceful shutdown degrades to crash recovery, never to
	// lost work.
	fmt.Fprintln(stdout, "passerve shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	code := 0
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "passerve: shutdown: %v\n", err)
		code = 1
	}
	if err := handler.Drain(drainCtx); err != nil {
		fmt.Fprintf(stderr, "passerve: drain: %v\n", err)
		code = 1
	}
	if err := handler.Close(); err != nil {
		fmt.Fprintf(stderr, "passerve: close: %v\n", err)
		code = 1
	}
	return code
}
