package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer the serve goroutine and the test can
// share.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeAndShutdown boots the daemon on an ephemeral port, exercises one
// request end to end, and verifies signal-driven graceful shutdown.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &stdout, &stderr)
	}()

	// The daemon prints its resolved address once the listener is up.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		if out := stdout.String(); strings.Contains(out, "listening on ") {
			line := out[strings.Index(out, "listening on ")+len("listening on "):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/runs", "application/json",
		strings.NewReader(`{"name":"paper","seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run through the daemon: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, stderr=%q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after cancel")
	}
	if !strings.Contains(stdout.String(), "shutting down") {
		t.Fatalf("no shutdown notice in stdout: %q", stdout.String())
	}
}

// TestFlagErrors pins the CLI error paths.
func TestFlagErrors(t *testing.T) {
	var out syncBuffer
	if code := run(context.Background(), []string{"-nope"}, &out, &out); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-h"}, &out, &out); code != 0 {
		t.Fatalf("-h: exit %d, want 0", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &out, &out); code != 1 {
		t.Fatalf("unbindable addr: exit %d, want 1", code)
	}
}
