package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer the serve goroutine and the test can
// share.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeAndShutdown boots the daemon on an ephemeral port, exercises one
// request end to end, and verifies signal-driven graceful shutdown.
func TestServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &stdout, &stderr)
	}()

	// The daemon prints its resolved address once the listener is up.
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		if out := stdout.String(); strings.Contains(out, "listening on ") {
			line := out[strings.Index(out, "listening on ")+len("listening on "):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/runs", "application/json",
		strings.NewReader(`{"name":"paper","seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run through the daemon: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, stderr=%q", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after cancel")
	}
	if !strings.Contains(stdout.String(), "shutting down") {
		t.Fatalf("no shutdown notice in stdout: %q", stdout.String())
	}
}

// waitForAddr scrapes the daemon's announced base URL from stdout.
func waitForAddr(t *testing.T, stdout *syncBuffer, stderr *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", stdout.String(), stderr.String())
		}
		if out := stdout.String(); strings.Contains(out, "listening on ") {
			line := out[strings.Index(out, "listening on ")+len("listening on "):]
			return strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGracefulDrainFinishesJobs pins the SIGTERM drain contract end to end:
// a job acknowledged before the signal completes during the drain (journal
// terminal entry and all), and the restarted daemon has nothing to replay —
// the result is already on disk and served from the durable tier.
func TestGracefulDrainFinishesJobs(t *testing.T) {
	store := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-store", store}, &stdout, &stderr)
	}()
	base := waitForAddr(t, &stdout, &stderr)

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"name":"paper","seed":31}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	var acc struct {
		ID  string `json:"id"`
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	// Signal immediately: the drain must let the acknowledged job finish.
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, stderr=%q", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}

	// Restart on the same store: the job must be done (not replayed — its
	// terminal entry survived the drain's fsync) and the result on disk.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var stdout2, stderr2 syncBuffer
	done2 := make(chan int, 1)
	go func() {
		done2 <- run(ctx2, []string{"-addr", "127.0.0.1:0", "-store", store}, &stdout2, &stderr2)
	}()
	base2 := waitForAddr(t, &stdout2, &stderr2)

	resp, err = http.Get(base2 + "/v1/jobs/" + acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"state":"done"`) {
		t.Fatalf("restarted daemon job status: %s", body)
	}
	resp, err = http.Post(base2+"/v1/runs", "application/json",
		strings.NewReader(`{"name":"paper","seed":31}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if c := resp.Header.Get("X-Cache"); c != "hit-disk" {
		t.Fatalf("restarted daemon X-Cache = %q, want hit-disk", c)
	}
	var st struct {
		JobsReplayed uint64 `json:"jobsReplayed"`
		StoreEntries int    `json:"storeEntries"`
	}
	resp, err = http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.JobsReplayed != 0 || st.StoreEntries == 0 {
		t.Fatalf("restart stats = %+v, want 0 replays and persisted entries", st)
	}
	cancel2()
	<-done2
}

// TestFlagErrors pins the CLI error paths.
func TestFlagErrors(t *testing.T) {
	var out syncBuffer
	if code := run(context.Background(), []string{"-nope"}, &out, &out); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-h"}, &out, &out); code != 0 {
		t.Fatalf("-h: exit %d, want 0", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.256.256.256:1"}, &out, &out); code != 1 {
		t.Fatalf("unbindable addr: exit %d, want 1", code)
	}
}
