// Command pasviz renders an ASCII animation of a PAS run: the spreading
// stimulus (paper Fig. 1) and the node states safe/alert/covered (paper
// Fig. 2) frame by frame.
//
// Glyphs: '~' stimulus, 'C' covered, 'A' alert, 's' safe awake, 'z' safe
// asleep, 'x' failed, '.' empty field.
//
// Usage:
//
//	pasviz                       # paper scenario, PAS, one frame per 10 s
//	pasviz -every 5 -width 72    # denser animation
//	pasviz -protocol sas         # watch the baseline instead
package main

import (
	"flag"
	"fmt"
	"os"

	pas "repro"
)

func main() {
	var (
		protocol  = flag.String("protocol", "pas", "protocol: pas, sas, ns, duty")
		scenario  = flag.String("scenario", "paper", "scenario name (see pas.ScenarioNames)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		nodes     = flag.Int("nodes", 30, "deployment size")
		every     = flag.Float64("every", 10, "seconds of virtual time per frame")
		width     = flag.Int("width", 60, "frame width in characters")
		height    = flag.Int("height", 24, "frame height in characters")
		threshold = flag.Float64("threshold", 20, "PAS alert-time threshold (s)")
	)
	flag.Parse()

	sc, err := pas.ScenarioByName(*scenario, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasviz: %v\n", err)
		os.Exit(2)
	}
	// Scale the radio range with the field so larger scenarios stay
	// connected at the default node count.
	radioRange := 10.0
	if sc.Field.Width() > 50 {
		radioRange = sc.Field.Width() / 4
	}
	dep := pas.UniformDeployment(*seed, sc.Field, *nodes, radioRange, 2000)

	var mk func() pas.Agent
	switch *protocol {
	case "pas":
		cfg := pas.DefaultPASConfig()
		cfg.AlertThreshold = *threshold
		mk = func() pas.Agent { return pas.NewPASAgent(cfg) }
	case "sas":
		mk = func() pas.Agent { return pas.NewSASAgent(pas.DefaultSASConfig()) }
	case "ns":
		mk = func() pas.Agent { return pas.NewNSAgent() }
	case "duty":
		mk = func() pas.Agent { return pas.NewDutyCycleAgent(10, 1) }
	default:
		fmt.Fprintf(os.Stderr, "pasviz: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	nw := pas.BuildNetwork(pas.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    pas.Telos(),
		Loss:       pas.UnitDisk{Range: radioRange},
		Agents:     func(pas.NodeID) pas.Agent { return mk() },
	})
	var log pas.StateLog
	log.Attach(nw.Nodes)

	for _, n := range nw.Nodes {
		n.Start()
	}
	for t := *every; t <= sc.Horizon; t += *every {
		nw.Kernel.RunUntil(t)
		fmt.Print(pas.RenderField(sc.Field, sc.Stimulus, nw.Nodes, t, *width, *height))
		fmt.Println()
	}
	for _, n := range nw.Nodes {
		n.Finish(sc.Horizon)
	}

	rep := pas.CollectMetrics(nw.Nodes, sc.Horizon)
	fmt.Println(rep)
	fmt.Println(log.Summary())
}
