// Command pasviz renders an ASCII animation of a PAS run: the spreading
// stimulus (paper Fig. 1) and the node states safe/alert/covered (paper
// Fig. 2) frame by frame.
//
// Glyphs: '~' stimulus, 'C' covered, 'A' alert, 's' safe awake, 'z' safe
// asleep, 'x' failed, '.' empty field.
//
// Usage:
//
//	pasviz                       # paper scenario, PAS, one frame per 10 s
//	pasviz -every 5 -width 72    # denser animation
//	pasviz -protocol sas         # watch the baseline instead
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	pas "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed flag set of one pasviz invocation.
type config struct {
	protocol  string
	scenario  string
	seed      int64
	nodes     int
	every     float64
	width     int
	height    int
	threshold float64
}

// parseFlags parses the command line into a config. Errors (including
// -h/-help) are reported on stderr by the flag package.
func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("pasviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.protocol, "protocol", "pas", "protocol: pas, sas, ns, duty")
	fs.StringVar(&c.scenario, "scenario", "paper", "scenario name (see pas.ScenarioNames)")
	fs.Int64Var(&c.seed, "seed", 1, "simulation seed")
	fs.IntVar(&c.nodes, "nodes", 30, "deployment size")
	fs.Float64Var(&c.every, "every", 10, "seconds of virtual time per frame")
	fs.IntVar(&c.width, "width", 60, "frame width in characters")
	fs.IntVar(&c.height, "height", 24, "frame height in characters")
	fs.Float64Var(&c.threshold, "threshold", 20, "PAS alert-time threshold (s)")
	err := fs.Parse(args)
	return c, err
}

// agentFactory resolves the protocol name to an agent constructor.
func agentFactory(c config) (func() pas.Agent, error) {
	switch c.protocol {
	case "pas":
		cfg := pas.DefaultPASConfig()
		cfg.AlertThreshold = c.threshold
		return func() pas.Agent { return pas.NewPASAgent(cfg) }, nil
	case "sas":
		return func() pas.Agent { return pas.NewSASAgent(pas.DefaultSASConfig()) }, nil
	case "ns":
		return func() pas.Agent { return pas.NewNSAgent() }, nil
	case "duty":
		return func() pas.Agent { return pas.NewDutyCycleAgent(10, 1) }, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", c.protocol)
	}
}

// run executes one invocation and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}

	sc, err := pas.ScenarioByName(c.scenario, c.seed)
	if err != nil {
		fmt.Fprintf(stderr, "pasviz: %v\n", err)
		return 2
	}
	mk, err := agentFactory(c)
	if err != nil {
		fmt.Fprintf(stderr, "pasviz: %v\n", err)
		return 2
	}

	// Scale the radio range with the field so larger scenarios stay
	// connected at the default node count.
	radioRange := 10.0
	if sc.Field.Width() > 50 {
		radioRange = sc.Field.Width() / 4
	}
	dep := pas.UniformDeployment(c.seed, sc.Field, c.nodes, radioRange, 2000)

	nw := pas.BuildNetwork(pas.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    pas.Telos(),
		Loss:       pas.UnitDisk{Range: radioRange},
		Agents:     func(pas.NodeID) pas.Agent { return mk() },
	})
	var log pas.StateLog
	log.Attach(nw.Nodes)

	for _, n := range nw.Nodes {
		n.Start()
	}
	for t := c.every; t <= sc.Horizon; t += c.every {
		nw.Kernel.RunUntil(t)
		fmt.Fprint(stdout, pas.RenderField(sc.Field, sc.Stimulus, nw.Nodes, t, c.width, c.height))
		fmt.Fprintln(stdout)
	}
	for _, n := range nw.Nodes {
		n.Finish(sc.Horizon)
	}

	rep := pas.CollectMetrics(nw.Nodes, sc.Horizon)
	fmt.Fprintln(stdout, rep)
	fmt.Fprintln(stdout, log.Summary())
	return 0
}
