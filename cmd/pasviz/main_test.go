package main

import (
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr strings.Builder
	c, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	want := config{protocol: "pas", scenario: "paper", seed: 1, nodes: 30,
		every: 10, width: 60, height: 24, threshold: 20}
	if c != want {
		t.Errorf("defaults = %+v, want %+v", c, want)
	}
}

func TestParseFlagsPlumbing(t *testing.T) {
	var stderr strings.Builder
	c, err := parseFlags([]string{
		"-protocol", "sas", "-scenario", "quiet", "-seed", "9",
		"-nodes", "12", "-every", "25", "-width", "40", "-height", "10",
		"-threshold", "15",
	}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	want := config{protocol: "sas", scenario: "quiet", seed: 9, nodes: 12,
		every: 25, width: 40, height: 10, threshold: 15}
	if c != want {
		t.Errorf("plumbing = %+v, want %+v", c, want)
	}
}

func TestParseFlagsBadFlag(t *testing.T) {
	var stderr strings.Builder
	if _, err := parseFlags([]string{"-warp", "9"}, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
	if !strings.Contains(stderr.String(), "warp") {
		t.Errorf("stderr = %q, want mention of the bad flag", stderr.String())
	}
}

func TestAgentFactoryKnownProtocols(t *testing.T) {
	for _, proto := range []string{"pas", "sas", "ns", "duty"} {
		mk, err := agentFactory(config{protocol: proto, threshold: 20})
		if err != nil {
			t.Errorf("%s: %v", proto, err)
			continue
		}
		if mk() == nil {
			t.Errorf("%s: nil agent", proto)
		}
	}
}

func TestRunUnknownProtocolExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-protocol", "tdma"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "tdma") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunUnknownScenarioExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-scenario", "atlantis"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "atlantis") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunBadFlagExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exit code = %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "-protocol") {
		t.Errorf("usage missing -protocol: %q", stderr.String())
	}
}

func TestRunRendersFrames(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-every", "100", "-width", "30", "-height", "10", "-nodes", "12"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "t=") {
		t.Errorf("no frames rendered: %q", out)
	}
	if !strings.Contains(out, "~") {
		t.Errorf("no stimulus glyphs in output: %q", out)
	}
}
