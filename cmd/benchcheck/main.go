// Command benchcheck compares `go test -bench` output against a committed
// JSON baseline (BENCH_1.json at the repo root) and warns about performance
// regressions. It has no dependencies outside the standard library, so CI can
// `go run ./cmd/benchcheck` without installing anything.
//
// By default regressions are warnings and the exit code stays 0 — benchmark
// numbers on shared CI runners are noisy, so the check surfaces drift without
// blocking merges; -strict turns warnings into a non-zero exit for local
// gating.
//
// -json replaces the human-readable warnings with a machine-readable row
// per benchmark (baseline, current, delta %, status), so CI artifacts can be
// diffed across PRs without parsing log text. Exit-code semantics are
// unchanged.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime=1s . | go run ./cmd/benchcheck -baseline BENCH_2.json
//	go run ./cmd/benchcheck -baseline BENCH_2.json -threshold 0.2 bench.txt
//	go run ./cmd/benchcheck -baseline BENCH_2.json -json bench.txt > rows.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// BaselineEntry is one benchmark's committed reference numbers.
type BaselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the schema of BENCH_1.json.
type Baseline struct {
	Generated  string                   `json:"generated"`
	Note       string                   `json:"note,omitempty"`
	Benchmarks map[string]BaselineEntry `json:"benchmarks"`
}

// result holds one benchmark's parsed current numbers.
type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// gomaxprocsSuffix strips the trailing -N that `go test` appends to
// benchmark names (the GOMAXPROCS at run time), so baselines compare across
// machines with different core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts ns/op and allocs/op per benchmark from `go test
// -bench` text output. Unknown lines and custom metrics are ignored. A
// benchmark that appears several times (e.g. -count>1) keeps its last
// occurrence.
func parseBenchOutput(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var res result
		seen := false
		// After the name and iteration count, the line is (value, unit)
		// pairs: "123 ns/op 45 B/op 6 allocs/op <custom metrics...>".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.nsPerOp = v
				seen = true
			case "allocs/op":
				res.allocsPerOp = v
				res.hasAllocs = true
			}
		}
		if seen {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// classify applies the regression rules of one benchmark: ns/op or allocs/op
// exceeding the baseline by more than threshold (fractional, e.g. 0.2 =
// 20%). The multiplicative threshold keeps zero-alloc baselines exact — any
// allocation at all regresses — while tolerating the small allocs/op jitter
// of benchmarks whose per-iteration work varies with the seed. Both output
// modes (text warnings and -json rows) derive from this single rule set.
func classify(base BaselineEntry, cur result, threshold float64) (nsRegressed, allocsRegressed bool) {
	nsRegressed = base.NsPerOp > 0 && cur.nsPerOp > base.NsPerOp*(1+threshold)
	allocsRegressed = cur.hasAllocs && cur.allocsPerOp > base.AllocsPerOp*(1+threshold)
	return nsRegressed, allocsRegressed
}

// compare returns one warning line per regression of current against
// baseline (the rules live in classify). Mismatched name sets are reported
// in both directions: a baselined benchmark missing from the current output
// must not hide a regression, and a current benchmark absent from the
// baseline (renamed, or added without regenerating the baseline JSON) must
// not silently escape the check.
func compare(baseline Baseline, current map[string]result, threshold float64) []string {
	var warnings []string
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic report order
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current[name]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("%s: missing from current benchmark output", name))
			continue
		}
		nsRegressed, allocsRegressed := classify(base, cur, threshold)
		if nsRegressed {
			warnings = append(warnings, fmt.Sprintf("%s: %.4g ns/op vs baseline %.4g (+%.0f%%, threshold %.0f%%)",
				name, cur.nsPerOp, base.NsPerOp, 100*(cur.nsPerOp/base.NsPerOp-1), 100*threshold))
		}
		if allocsRegressed {
			warnings = append(warnings, fmt.Sprintf("%s: %.4g allocs/op vs baseline %.4g — per-op garbage reintroduced",
				name, cur.allocsPerOp, base.AllocsPerOp))
		}
	}
	extras := make([]string, 0, len(current))
	for name := range current {
		if _, ok := baseline.Benchmarks[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		warnings = append(warnings, fmt.Sprintf(
			"%s: baseline missing benchmark — it ran but has no entry in the baseline (renamed benchmark or stale file); regenerate the baseline JSON",
			name))
	}
	return warnings
}

// Row is one benchmark's comparison in the -json output. Deltas are
// percentages relative to the baseline (+25 = 25% slower); a delta against a
// zero baseline is reported as 0 — the absolute columns and the status carry
// the signal there (any allocation against a zero-alloc baseline is
// "regressed").
type Row struct {
	Benchmark           string  `json:"benchmark"`
	Status              string  `json:"status"` // ok | regressed | missing-from-current | missing-from-baseline
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op"`
	CurrentNsPerOp      float64 `json:"current_ns_per_op"`
	NsDeltaPct          float64 `json:"ns_delta_pct"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op"`
	CurrentAllocsPerOp  float64 `json:"current_allocs_per_op"`
	AllocsDeltaPct      float64 `json:"allocs_delta_pct"`
}

// deltaPct returns the percentage change of cur against base, 0 when the
// baseline is zero (the caller reports those through the status instead).
func deltaPct(base, cur float64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (cur/base - 1)
}

// buildRows renders the comparison as one machine-readable row per
// benchmark, in deterministic name order, applying the same regression rules
// as compare.
func buildRows(baseline Baseline, current map[string]result, threshold float64) []Row {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]Row, 0, len(names))
	for _, name := range names {
		base := baseline.Benchmarks[name]
		row := Row{
			Benchmark:           name,
			BaselineNsPerOp:     base.NsPerOp,
			BaselineAllocsPerOp: base.AllocsPerOp,
		}
		cur, ok := current[name]
		if !ok {
			row.Status = "missing-from-current"
			rows = append(rows, row)
			continue
		}
		row.CurrentNsPerOp = cur.nsPerOp
		row.CurrentAllocsPerOp = cur.allocsPerOp
		row.NsDeltaPct = deltaPct(base.NsPerOp, cur.nsPerOp)
		row.AllocsDeltaPct = deltaPct(base.AllocsPerOp, cur.allocsPerOp)
		row.Status = "ok"
		if nsRegressed, allocsRegressed := classify(base, cur, threshold); nsRegressed || allocsRegressed {
			row.Status = "regressed"
		}
		rows = append(rows, row)
	}
	extras := make([]string, 0, len(current))
	for name := range current {
		if _, ok := baseline.Benchmarks[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		cur := current[name]
		rows = append(rows, Row{
			Benchmark:          name,
			Status:             "missing-from-baseline",
			CurrentNsPerOp:     cur.nsPerOp,
			CurrentAllocsPerOp: cur.allocsPerOp,
		})
	}
	return rows
}

// run executes one invocation and returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_2.json", "baseline JSON file")
		threshold    = fs.Float64("threshold", 0.20, "fractional ns/op regression tolerance")
		strict       = fs.Bool("strict", false, "exit non-zero when regressions are found")
		jsonOut      = fs.Bool("json", false, "emit the comparison as machine-readable JSON rows")
	)
	err := fs.Parse(args)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	var baseline Baseline
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(stderr, "benchcheck: parsing %s: %v\n", *baselinePath, err)
		return 2
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchcheck: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	current, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: reading benchmark output: %v\n", err)
		return 2
	}

	warnings := compare(baseline, current, *threshold)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildRows(baseline, current, *threshold)); err != nil {
			fmt.Fprintf(stderr, "benchcheck: encoding rows: %v\n", err)
			return 2
		}
	} else {
		for _, w := range warnings {
			// ::warning:: renders as an annotation on GitHub Actions and is
			// harmless plain text everywhere else.
			fmt.Fprintf(stdout, "::warning::benchcheck: %s\n", w)
		}
		if len(warnings) == 0 {
			fmt.Fprintf(stdout, "benchcheck: %d benchmarks within %.0f%% of %s\n",
				len(baseline.Benchmarks), 100**threshold, *baselinePath)
		}
	}
	if *strict && len(warnings) > 0 {
		return 1
	}
	return 0
}
