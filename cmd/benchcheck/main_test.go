package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelEventThroughput 	179442174	        13.64 ns/op	       0 B/op	       0 allocs/op
BenchmarkPASSingleRun-8        	     540	   4416787 ns/op	 1862279 B/op	   20834 allocs/op
BenchmarkFig4Parallel          	      39	  56556300 ns/op	        12.30 pas-delay-s	22440022 B/op	  276963 allocs/op
PASS
ok  	repro	9.930s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	k := got["BenchmarkKernelEventThroughput"]
	if k.nsPerOp != 13.64 || k.allocsPerOp != 0 || !k.hasAllocs {
		t.Errorf("kernel = %+v", k)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if _, ok := got["BenchmarkPASSingleRun"]; !ok {
		t.Errorf("GOMAXPROCS suffix not normalized: %v", got)
	}
	// Custom metrics between ns/op and allocs/op must not confuse the pairs.
	f := got["BenchmarkFig4Parallel"]
	if f.nsPerOp != 56556300 || f.allocsPerOp != 276963 {
		t.Errorf("fig4 = %+v", f)
	}
}

func baselineFixture() Baseline {
	return Baseline{
		Benchmarks: map[string]BaselineEntry{
			"BenchmarkKernelEventThroughput": {NsPerOp: 13.64, AllocsPerOp: 0},
			"BenchmarkPASSingleRun":          {NsPerOp: 4416787, AllocsPerOp: 20834},
		},
	}
}

func TestCompareCleanRun(t *testing.T) {
	current := map[string]result{
		"BenchmarkKernelEventThroughput": {nsPerOp: 14.0, allocsPerOp: 0, hasAllocs: true},
		// Slight allocs/op jitter (seed-dependent benchmarks vary with b.N)
		// must stay inside the threshold.
		"BenchmarkPASSingleRun": {nsPerOp: 4500000, allocsPerOp: 20900, hasAllocs: true},
	}
	if w := compare(baselineFixture(), current, 0.20); len(w) != 0 {
		t.Errorf("clean run produced warnings: %v", w)
	}
}

func TestCompareNsRegression(t *testing.T) {
	current := map[string]result{
		"BenchmarkKernelEventThroughput": {nsPerOp: 30.0, allocsPerOp: 0, hasAllocs: true},
		"BenchmarkPASSingleRun":          {nsPerOp: 4416787, allocsPerOp: 20834, hasAllocs: true},
	}
	w := compare(baselineFixture(), current, 0.20)
	if len(w) != 1 || !strings.Contains(w[0], "BenchmarkKernelEventThroughput") {
		t.Errorf("warnings = %v", w)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	current := map[string]result{
		"BenchmarkKernelEventThroughput": {nsPerOp: 13.0, allocsPerOp: 1, hasAllocs: true},
		"BenchmarkPASSingleRun":          {nsPerOp: 4416787, allocsPerOp: 20834, hasAllocs: true},
	}
	w := compare(baselineFixture(), current, 0.20)
	if len(w) != 1 || !strings.Contains(w[0], "allocs/op") {
		t.Errorf("warnings = %v", w)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	w := compare(baselineFixture(), map[string]result{}, 0.20)
	if len(w) != 2 {
		t.Errorf("warnings = %v, want one per missing benchmark", w)
	}
}

func TestCompareBaselineMissingBenchmark(t *testing.T) {
	// A benchmark present in the run but absent from the baseline (renamed,
	// or added without regenerating the JSON) must warn instead of being
	// silently skipped.
	current := map[string]result{
		"BenchmarkKernelEventThroughput": {nsPerOp: 13.64, allocsPerOp: 0, hasAllocs: true},
		"BenchmarkPASSingleRun":          {nsPerOp: 4416787, allocsPerOp: 20834, hasAllocs: true},
		"BenchmarkRenamedKernel":         {nsPerOp: 1.0, hasAllocs: true},
	}
	w := compare(baselineFixture(), current, 0.20)
	if len(w) != 1 {
		t.Fatalf("warnings = %v, want exactly the baseline-missing diagnostic", w)
	}
	if !strings.Contains(w[0], "BenchmarkRenamedKernel") || !strings.Contains(w[0], "baseline missing benchmark") {
		t.Errorf("warning = %q, want a clear baseline-missing diagnostic naming the benchmark", w[0])
	}
}

func TestCompareImprovementIsSilent(t *testing.T) {
	current := map[string]result{
		"BenchmarkKernelEventThroughput": {nsPerOp: 5.0, allocsPerOp: 0, hasAllocs: true},
		"BenchmarkPASSingleRun":          {nsPerOp: 2000000, allocsPerOp: 100, hasAllocs: true},
	}
	if w := compare(baselineFixture(), current, 0.20); len(w) != 0 {
		t.Errorf("improvements warned: %v", w)
	}
}

func writeBaselineFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	data := `{"generated":"test","benchmarks":{
		"BenchmarkKernelEventThroughput":{"ns_per_op":13.64,"allocs_per_op":0},
		"BenchmarkPASSingleRun":{"ns_per_op":4416787,"allocs_per_op":20834},
		"BenchmarkFig4Parallel":{"ns_per_op":56556300,"allocs_per_op":276963}}}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCleanExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline", writeBaselineFile(t)},
		strings.NewReader(sampleOutput), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "within") {
		t.Errorf("stdout = %q", stdout.String())
	}
}

func TestRunRegressionWarnsButExitsZero(t *testing.T) {
	regressed := strings.ReplaceAll(sampleOutput, "13.64 ns/op", "99.99 ns/op")
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline", writeBaselineFile(t)},
		strings.NewReader(regressed), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (warn-only by default)", code)
	}
	if !strings.Contains(stdout.String(), "::warning::") {
		t.Errorf("stdout = %q, want a warning annotation", stdout.String())
	}
}

func TestRunStrictExitsNonZero(t *testing.T) {
	regressed := strings.ReplaceAll(sampleOutput, "13.64 ns/op", "99.99 ns/op")
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline", writeBaselineFile(t), "-strict"},
		strings.NewReader(regressed), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 with -strict", code)
	}
}

func TestRunMissingBaselineFile(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json")},
		strings.NewReader(sampleOutput), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestBuildRows(t *testing.T) {
	current := map[string]result{
		"BenchmarkKernelEventThroughput": {nsPerOp: 27.28, allocsPerOp: 0, hasAllocs: true}, // 2× ns → regressed
		"BenchmarkRenamedKernel":         {nsPerOp: 1.0, hasAllocs: true},
		// BenchmarkPASSingleRun absent → missing-from-current
	}
	rows := buildRows(baselineFixture(), current, 0.20)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	// Baseline names first in sorted order, extras last.
	kernel, pas, renamed := rows[0], rows[1], rows[2]
	if kernel.Benchmark != "BenchmarkKernelEventThroughput" || kernel.Status != "regressed" {
		t.Errorf("kernel row = %+v", kernel)
	}
	if kernel.NsDeltaPct < 99 || kernel.NsDeltaPct > 101 {
		t.Errorf("kernel ns delta = %g, want ~100", kernel.NsDeltaPct)
	}
	if kernel.AllocsDeltaPct != 0 {
		t.Errorf("zero-alloc baseline produced allocs delta %g, want 0", kernel.AllocsDeltaPct)
	}
	if pas.Benchmark != "BenchmarkPASSingleRun" || pas.Status != "missing-from-current" {
		t.Errorf("pas row = %+v", pas)
	}
	if renamed.Benchmark != "BenchmarkRenamedKernel" || renamed.Status != "missing-from-baseline" {
		t.Errorf("renamed row = %+v", renamed)
	}
}

func TestBuildRowsCleanDeltas(t *testing.T) {
	current := map[string]result{
		"BenchmarkKernelEventThroughput": {nsPerOp: 13.64, allocsPerOp: 0, hasAllocs: true},
		"BenchmarkPASSingleRun":          {nsPerOp: 3533430, allocsPerOp: 20834, hasAllocs: true}, // 20% faster
	}
	rows := buildRows(baselineFixture(), current, 0.20)
	for _, r := range rows {
		if r.Status != "ok" {
			t.Errorf("row %s status = %q, want ok", r.Benchmark, r.Status)
		}
	}
	if d := rows[1].NsDeltaPct; d > -19 || d < -21 {
		t.Errorf("improvement delta = %g, want ~-20", d)
	}
	if d := rows[1].AllocsDeltaPct; d != 0 {
		t.Errorf("unchanged allocs delta = %g, want 0", d)
	}
}

func TestRunJSONOutput(t *testing.T) {
	regressed := strings.ReplaceAll(sampleOutput, "13.64 ns/op", "99.99 ns/op")
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline", writeBaselineFile(t), "-json"},
		strings.NewReader(regressed), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d (json stays warn-only), stderr %q", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "::warning::") {
		t.Errorf("json mode leaked text warnings: %q", stdout.String())
	}
	var rows []Row
	if err := json.Unmarshal([]byte(stdout.String()), &rows); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	if r := byName["BenchmarkKernelEventThroughput"]; r.Status != "regressed" || r.CurrentNsPerOp != 99.99 {
		t.Errorf("kernel row = %+v", r)
	}
	if r := byName["BenchmarkFig4Parallel"]; r.Status != "ok" {
		t.Errorf("fig4 row = %+v", r)
	}
	// Strict mode still gates on the same regressions in json mode.
	if code := run([]string{"-baseline", writeBaselineFile(t), "-json", "-strict"},
		strings.NewReader(regressed), &strings.Builder{}, &strings.Builder{}); code != 1 {
		t.Errorf("strict json exit code = %d, want 1", code)
	}
}

func TestRunInputFromFileArg(t *testing.T) {
	benchPath := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(benchPath, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline", writeBaselineFile(t), benchPath},
		strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
}
