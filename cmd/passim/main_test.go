package main

import (
	"strings"
	"testing"
)

func TestParseFlagsParallelPlumbing(t *testing.T) {
	var stderr strings.Builder
	c, err := parseFlags([]string{"-reps", "4", "-parallel", "2", "-seed", "7"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if c.reps != 4 || c.parallel != 2 || c.seed != 7 {
		t.Errorf("plumbing: %+v", c)
	}
}

func TestParseFlagsBadFlag(t *testing.T) {
	var stderr strings.Builder
	if _, err := parseFlags([]string{"-warp", "9"}, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBuildRunConfigUnknownScenario(t *testing.T) {
	c, err := parseFlags([]string{"-scenario", "atlantis"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildRunConfig(c); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBuildRunConfigFlagsReachConfig(t *testing.T) {
	c, err := parseFlags([]string{
		"-protocol", "sas", "-nodes", "42", "-range", "12",
		"-maxsleep", "25", "-threshold", "15", "-loss", "0.2",
	}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Protocol != "sas" || cfg.Nodes != 42 || cfg.Range != 12 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.PAS.SleepMax != 25 || cfg.PAS.SleepIncrement != 5 || cfg.PAS.AlertThreshold != 15 {
		t.Errorf("PAS tunables not plumbed: %+v", cfg.PAS)
	}
	if cfg.SAS.SleepMax != 25 {
		t.Errorf("SAS tunables not plumbed: %+v", cfg.SAS)
	}
	if cfg.Loss == nil {
		t.Error("loss model not plumbed")
	}
}

func TestReplicationSeeds(t *testing.T) {
	got := replicationSeeds(5, 3)
	want := []int64{5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seeds = %v, want %v", got, want)
		}
	}
}

func TestRunUnknownScenarioExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-scenario", "atlantis"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "atlantis") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-help"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-help exit code = %d, want 0", code)
	}
}

func TestRunRepsWithTableRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-reps", "4", "-table"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-table") {
		t.Errorf("stderr = %q, want mention of -table", stderr.String())
	}
}

func TestRunUnknownProtocolExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-protocol", "bogus"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestRunSingleAndReplicated(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-seed", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("single run: exit %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "seed 1") {
		t.Errorf("single-run header missing: %q", stdout.String())
	}

	// The replicated path must aggregate over seeds and be identical for
	// serial and parallel execution.
	var serial, parallel strings.Builder
	if code := run([]string{"-reps", "3", "-parallel", "1"}, &serial, &stderr); code != 0 {
		t.Fatalf("serial reps: exit %d, stderr %q", code, stderr.String())
	}
	if code := run([]string{"-reps", "3", "-parallel", "3"}, &parallel, &stderr); code != 0 {
		t.Fatalf("parallel reps: exit %d, stderr %q", code, stderr.String())
	}
	if serial.String() != parallel.String() {
		t.Errorf("replicated output diverged:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "seeds 1..3") {
		t.Errorf("aggregate header missing: %q", serial.String())
	}
	if !strings.Contains(serial.String(), "runs 3") {
		t.Errorf("aggregate body missing run count: %q", serial.String())
	}
}
