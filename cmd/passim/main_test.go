package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	pas "repro"
)

func TestParseFlagsParallelPlumbing(t *testing.T) {
	var stderr strings.Builder
	c, err := parseFlags([]string{"-reps", "4", "-parallel", "2", "-seed", "7"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if c.reps != 4 || c.parallel != 2 || c.seed != 7 {
		t.Errorf("plumbing: %+v", c)
	}
}

func TestParseFlagsBadFlag(t *testing.T) {
	var stderr strings.Builder
	if _, err := parseFlags([]string{"-warp", "9"}, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBuildRunConfigUnknownScenario(t *testing.T) {
	c, err := parseFlags([]string{"-scenario", "atlantis"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildRunConfig(c); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBuildRunConfigFlagsReachConfig(t *testing.T) {
	c, err := parseFlags([]string{
		"-protocol", "sas", "-nodes", "42", "-range", "12",
		"-maxsleep", "25", "-threshold", "15", "-loss", "0.2",
	}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Protocol != "sas" || cfg.Nodes != 42 || cfg.Range != 12 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.PAS.SleepMax != 25 || cfg.PAS.SleepIncrement != 5 || cfg.PAS.AlertThreshold != 15 {
		t.Errorf("PAS tunables not plumbed: %+v", cfg.PAS)
	}
	if cfg.SAS.SleepMax != 25 {
		t.Errorf("SAS tunables not plumbed: %+v", cfg.SAS)
	}
	if cfg.Loss == nil {
		t.Error("loss model not plumbed")
	}
}

func TestPredictorFlagReachesConfig(t *testing.T) {
	c, err := parseFlags([]string{"-predictor", "switching"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PAS.Predictor.Kind != "switching" {
		t.Errorf("predictor not plumbed: %+v", cfg.PAS.Predictor)
	}
	// Untouched flag defers to the scenario (paper has no predictor section).
	c, err = parseFlags(nil, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg, err = buildRunConfig(c); err != nil || cfg.PAS.Predictor.Kind != "" {
		t.Errorf("default predictor = %+v, err %v", cfg.PAS.Predictor, err)
	}
	// Unknown kinds are a clean flag error.
	c, err = parseFlags([]string{"-predictor", "psychic"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buildRunConfig(c); err == nil {
		t.Error("unknown predictor accepted")
	}
}

func TestReplicationSeeds(t *testing.T) {
	got := replicationSeeds(5, 3)
	want := []int64{5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seeds = %v, want %v", got, want)
		}
	}
}

func TestRunUnknownScenarioExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-scenario", "atlantis"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "atlantis") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-help"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-help exit code = %d, want 0", code)
	}
}

func TestRunBadFlagExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-warp", "9"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestEmptyScenarioNameDefaultsToPaper(t *testing.T) {
	c, err := parseFlags([]string{"-scenario", ""}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scenario.Name != "paper" || cfg.Nodes != 30 {
		t.Errorf("empty -scenario resolved to %q / %d nodes", cfg.Scenario.Name, cfg.Nodes)
	}
}

func TestRangeOverrideClampsFalloffReliable(t *testing.T) {
	// Shrinking the range below the falloff's reliable radius must clamp the
	// inner disc, not produce an invalid model.
	c, err := parseFlags([]string{"-scenario", "harsh", "-range", "6"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	falloff, ok := cfg.Loss.(pas.DistanceFalloff)
	if !ok || falloff.Max != 6 || falloff.Reliable != 6 {
		t.Errorf("loss = %#v, want falloff clamped to 6", cfg.Loss)
	}
}

func TestSpecPinnedIncrementSurvivesFlagDefaults(t *testing.T) {
	// A spec that pins only sleepIncrement (no maxSleep) keeps its increment
	// against the maxsleep flag-default fallback.
	sp, _ := pas.LookupScenario("paper")
	sp.Protocol.SleepIncrement = 3
	data, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := parseFlags([]string{"-scenario-file", path}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PAS.SleepIncrement != 3 || cfg.SAS.SleepIncrement != 3 {
		t.Errorf("spec increment clobbered: PAS %g SAS %g", cfg.PAS.SleepIncrement, cfg.SAS.SleepIncrement)
	}
	if cfg.PAS.SleepMax != 10 {
		t.Errorf("flag-default cap not applied: %g", cfg.PAS.SleepMax)
	}
	// An explicit -maxsleep still wins over the pinned increment.
	c, err = parseFlags([]string{"-scenario-file", path, "-maxsleep", "25"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PAS.SleepMax != 25 || cfg.PAS.SleepIncrement != 5 {
		t.Errorf("explicit -maxsleep lost: %+v", cfg.PAS)
	}
}

func TestExplicitLossZeroRestoresUnitDisk(t *testing.T) {
	c, err := parseFlags([]string{"-scenario", "harsh", "-loss", "0"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.Loss.(pas.UnitDisk); !ok {
		t.Errorf("explicit -loss 0 left %T, want UnitDisk", cfg.Loss)
	}
	// Without the flag the scenario's falloff channel stays.
	c, err = parseFlags([]string{"-scenario", "harsh"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.Loss.(pas.DistanceFalloff); !ok {
		t.Errorf("scenario channel lost without -loss: %T", cfg.Loss)
	}
}

func TestFailFlagReachesConfig(t *testing.T) {
	c, err := parseFlags([]string{"-fail", "0.25"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FailFraction != 0.25 {
		t.Errorf("FailFraction = %g", cfg.FailFraction)
	}
}

func TestRunTableOutput(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-table", "-seed", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "arrival") {
		t.Errorf("per-node table missing: %q", stdout.String())
	}
}

func TestInfeasibleDeploymentIsCleanError(t *testing.T) {
	// 40 nodes at a 6 m range over the 40×40 harsh field can never connect;
	// the library panics by design, and the CLI must turn that into a clean
	// exit-1 error, not a goroutine dump.
	var stdout, stderr strings.Builder
	if code := run([]string{"-scenario", "harsh", "-range", "6", "-seed", "2"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no connected uniform deployment") {
		t.Errorf("stderr = %q, want the infeasibility message", stderr.String())
	}
	// The replicated path recovers too.
	if code := run([]string{"-scenario", "harsh", "-range", "6", "-reps", "2"}, &stdout, &stderr); code != 1 {
		t.Fatalf("replicated: exit %d, want 1", code)
	}
}

func TestRunRepsWithTableRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-reps", "4", "-table"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-table") {
		t.Errorf("stderr = %q, want mention of -table", stderr.String())
	}
}

func TestRunUnknownProtocolExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-protocol", "bogus"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestScenarioSuppliesDefaultsFlagsOverride(t *testing.T) {
	// Untouched flags defer to the scenario spec (scale-100 carries 100 nodes
	// and a grid deployment)...
	c, err := parseFlags([]string{"-scenario", "scale-100"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 100 || cfg.Deploy.Kind != "grid" {
		t.Errorf("scenario defaults not applied: nodes %d deploy %+v", cfg.Nodes, cfg.Deploy)
	}
	// ...while explicitly set flags win.
	c, err = parseFlags([]string{"-scenario", "scale-100", "-nodes", "64", "-range", "14"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 64 || cfg.Range != 14 {
		t.Errorf("flag overrides lost: nodes %d range %g", cfg.Nodes, cfg.Range)
	}
	if cfg.Loss == nil || cfg.Loss.MaxRange() != 14 {
		t.Errorf("loss model not re-ranged: %v", cfg.Loss)
	}
}

func TestRangeOverrideKeepsScenarioChannelModel(t *testing.T) {
	// The harsh scenario uses a distance-falloff channel; overriding only
	// the range must re-range that model, not swap in a perfect unit disk.
	c, err := parseFlags([]string{"-scenario", "harsh", "-range", "15"}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	falloff, ok := cfg.Loss.(pas.DistanceFalloff)
	if !ok {
		t.Fatalf("loss model = %T, want DistanceFalloff", cfg.Loss)
	}
	if falloff.Max != 15 || falloff.Reliable != 8 {
		t.Errorf("falloff not re-ranged: %+v", falloff)
	}
}

func TestScenarioFileRoundTrip(t *testing.T) {
	sp, ok := pas.LookupScenario("poisson")
	if !ok {
		t.Fatal("registry lost the poisson scenario")
	}
	data, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-scenario-file", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "poisson") {
		t.Errorf("header missing scenario name: %q", stdout.String())
	}
	if code := run([]string{"-scenario-file", filepath.Join(t.TempDir(), "missing.json")}, &stdout, &stderr); code != 2 {
		t.Errorf("missing spec file: exit %d, want 2", code)
	}
}

func TestRunExperimentFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-exp", "table1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "table1") {
		t.Errorf("experiment output missing: %q", stdout.String())
	}
	if code := run([]string{"-exp", "fig99"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown experiment: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunExperimentRejectsSingleRunFlags(t *testing.T) {
	for _, conflict := range [][]string{
		{"-exp", "table1", "-scenario", "poisson"},
		{"-exp", "table1", "-scenario-file", "spec.json"},
		{"-exp", "table1", "-table"},
		{"-exp", "table1", "-protocol", "sas"},
		{"-exp", "table1", "-maxsleep", "30"},
		{"-exp", "table1", "-nodes", "50"},
		{"-exp", "table1", "-loss", "0.2"},
		{"-exp", "table1", "-predictor", "kalman"},
	} {
		var stdout, stderr strings.Builder
		if code := run(conflict, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit %d, want 2", conflict, code)
		}
		if !strings.Contains(stderr.String(), "mutually exclusive") {
			t.Errorf("%v: stderr %q", conflict, stderr.String())
		}
	}
}

func TestRunExperimentHonorsExplicitReps(t *testing.T) {
	// An explicit -reps 1 must shrink the replication to one seed; fig4 over
	// one seed has zero CI half-widths, the default 8-seed run does not.
	var one, deflt strings.Builder
	var stderr strings.Builder
	if code := run([]string{"-exp", "fig4", "-reps", "1", "-parallel", "1"}, &one, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	if code := run([]string{"-exp", "fig4", "-parallel", "1"}, &deflt, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
	if one.String() == deflt.String() {
		t.Error("-reps 1 had no effect on -exp replication")
	}
}

func TestRunExperimentHonorsExplicitSeed(t *testing.T) {
	// -seed without -reps must still reach the experiment: fig4 over one
	// seed differs from fig4 over another.
	out := func(args ...string) string {
		var stdout, stderr strings.Builder
		if code := run(append(args, "-parallel", "1"), &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, stderr %q", code, stderr.String())
		}
		return stdout.String()
	}
	// Quick-ish single-seed runs of a cheap experiment.
	a := out("-exp", "fig4", "-seed", "3")
	b := out("-exp", "fig4", "-seed", "4")
	if a == b {
		t.Error("-seed had no effect on -exp output")
	}
	if again := out("-exp", "fig4", "-seed", "3"); again != a {
		t.Error("same seed not reproducible")
	}
}

func TestRunSingleAndReplicated(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-seed", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("single run: exit %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "seed 1") {
		t.Errorf("single-run header missing: %q", stdout.String())
	}

	// The replicated path must aggregate over seeds and be identical for
	// serial and parallel execution.
	var serial, parallel strings.Builder
	if code := run([]string{"-reps", "3", "-parallel", "1"}, &serial, &stderr); code != 0 {
		t.Fatalf("serial reps: exit %d, stderr %q", code, stderr.String())
	}
	if code := run([]string{"-reps", "3", "-parallel", "3"}, &parallel, &stderr); code != 0 {
		t.Fatalf("parallel reps: exit %d, stderr %q", code, stderr.String())
	}
	if serial.String() != parallel.String() {
		t.Errorf("replicated output diverged:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !strings.Contains(serial.String(), "seeds 1..3") {
		t.Errorf("aggregate header missing: %q", serial.String())
	}
	if !strings.Contains(serial.String(), "runs 3") {
		t.Errorf("aggregate body missing run count: %q", serial.String())
	}
}
