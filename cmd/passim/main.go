// Command passim runs a single simulation of one protocol over one scenario
// and prints the run metrics (optionally the per-node table), or replicates
// the run across seeds in parallel and prints the aggregate.
//
// Usage:
//
//	passim -protocol pas -nodes 30 -range 10 -seed 1
//	passim -protocol sas -scenario gasleak -table
//	passim -protocol pas -maxsleep 30 -threshold 25 -loss 0.2 -fail 0.1
//	passim -protocol pas -reps 16 -parallel 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	pas "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed flag set of one passim invocation.
type config struct {
	scenario string
	seed     int64
	reps     int
	parallel int
	table    bool
	protocol string
	nodes    int
	radioRng float64
	maxSleep float64
	thresh   float64
	lossProb float64
	failFrac float64
}

// parseFlags parses the command line into a config.
func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("passim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.protocol, "protocol", "pas", "protocol: pas, sas, ns, duty")
	fs.StringVar(&c.scenario, "scenario", "paper", "scenario: paper, irregular, gasleak, twinspill, passing, plume, terrain, quiet")
	fs.IntVar(&c.nodes, "nodes", 30, "deployment size")
	fs.Float64Var(&c.radioRng, "range", 10, "transmission range (m)")
	fs.Int64Var(&c.seed, "seed", 1, "simulation seed (first seed with -reps)")
	fs.IntVar(&c.reps, "reps", 1, "replication count; > 1 prints the aggregate over seeds seed..seed+reps-1")
	fs.IntVar(&c.parallel, "parallel", 0, "concurrent replications (0 = one per CPU, 1 = serial)")
	fs.Float64Var(&c.maxSleep, "maxsleep", 10, "maximum sleep interval (s)")
	fs.Float64Var(&c.thresh, "threshold", 20, "PAS alert-time threshold (s)")
	fs.Float64Var(&c.lossProb, "loss", 0, "packet loss probability (0 = perfect unit disk)")
	fs.Float64Var(&c.failFrac, "fail", 0, "fraction of nodes to fail at random times")
	fs.BoolVar(&c.table, "table", false, "print the per-node table")
	err := fs.Parse(args)
	return c, err
}

// buildRunConfig translates the flags into a simulation run config.
func buildRunConfig(c config) (pas.RunConfig, error) {
	sc, err := pas.ScenarioByName(c.scenario, c.seed)
	if err != nil {
		return pas.RunConfig{}, err
	}
	cfg := pas.RunConfig{
		Scenario:     sc,
		Nodes:        c.nodes,
		Range:        c.radioRng,
		Protocol:     c.protocol,
		Seed:         c.seed,
		FailFraction: c.failFrac,
	}
	cfg.PAS = pas.DefaultPASConfig()
	cfg.PAS.SleepMax = c.maxSleep
	cfg.PAS.SleepIncrement = c.maxSleep / 5
	cfg.PAS.AlertThreshold = c.thresh
	cfg.SAS = pas.DefaultSASConfig()
	cfg.SAS.SleepMax = c.maxSleep
	cfg.SAS.SleepIncrement = c.maxSleep / 5
	if c.lossProb > 0 {
		cfg.Loss = pas.LossyDisk{Range: c.radioRng, LossProb: c.lossProb}
	}
	return cfg, nil
}

// replicationSeeds lists the seeds of a -reps invocation.
func replicationSeeds(first int64, reps int) []int64 {
	seeds := make([]int64, reps)
	for i := range seeds {
		seeds[i] = first + int64(i)
	}
	return seeds
}

// run executes one invocation and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	if c.reps > 1 && c.table {
		fmt.Fprintln(stderr, "passim: -table needs a single run; drop -reps or run one seed")
		return 2
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		fmt.Fprintf(stderr, "passim: %v\n", err)
		return 2
	}

	if c.reps > 1 {
		agg, err := pas.ReplicateParallel(cfg, replicationSeeds(c.seed, c.reps), c.parallel)
		if err != nil {
			fmt.Fprintf(stderr, "passim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "scenario %-10s protocol %-5s nodes %d range %.0fm seeds %d..%d\n",
			cfg.Scenario.Name, c.protocol, c.nodes, c.radioRng, c.seed, c.seed+int64(c.reps)-1)
		fmt.Fprintln(stdout, agg.String())
		return 0
	}

	report, err := pas.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "passim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "scenario %-10s protocol %-5s nodes %d range %.0fm seed %d\n",
		cfg.Scenario.Name, c.protocol, c.nodes, c.radioRng, c.seed)
	fmt.Fprintln(stdout, report)
	if c.table {
		fmt.Fprint(stdout, report.Table())
	}
	return 0
}
