// Command passim runs a single simulation of one protocol over one scenario
// and prints the run metrics (optionally the per-node table).
//
// Usage:
//
//	passim -protocol pas -nodes 30 -range 10 -seed 1
//	passim -protocol sas -scenario gasleak -table
//	passim -protocol pas -maxsleep 30 -threshold 25 -loss 0.2 -fail 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	pas "repro"
)

func main() {
	var (
		protocol  = flag.String("protocol", "pas", "protocol: pas, sas, ns, duty")
		scenario  = flag.String("scenario", "paper", "scenario: paper, irregular, gasleak, twinspill, passing, plume, terrain, quiet")
		nodes     = flag.Int("nodes", 30, "deployment size")
		radioRng  = flag.Float64("range", 10, "transmission range (m)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		maxSleep  = flag.Float64("maxsleep", 10, "maximum sleep interval (s)")
		threshold = flag.Float64("threshold", 20, "PAS alert-time threshold (s)")
		lossProb  = flag.Float64("loss", 0, "packet loss probability (0 = perfect unit disk)")
		failFrac  = flag.Float64("fail", 0, "fraction of nodes to fail at random times")
		table     = flag.Bool("table", false, "print the per-node table")
	)
	flag.Parse()

	sc, err := pas.ScenarioByName(*scenario, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "passim: %v\n", err)
		os.Exit(2)
	}

	cfg := pas.RunConfig{
		Scenario:     sc,
		Nodes:        *nodes,
		Range:        *radioRng,
		Protocol:     *protocol,
		Seed:         *seed,
		FailFraction: *failFrac,
	}
	cfg.PAS = pas.DefaultPASConfig()
	cfg.PAS.SleepMax = *maxSleep
	cfg.PAS.SleepIncrement = *maxSleep / 5
	cfg.PAS.AlertThreshold = *threshold
	cfg.SAS = pas.DefaultSASConfig()
	cfg.SAS.SleepMax = *maxSleep
	cfg.SAS.SleepIncrement = *maxSleep / 5
	if *lossProb > 0 {
		cfg.Loss = pas.LossyDisk{Range: *radioRng, LossProb: *lossProb}
	}

	report, err := pas.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "passim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("scenario %-10s protocol %-5s nodes %d range %.0fm seed %d\n",
		sc.Name, *protocol, *nodes, *radioRng, *seed)
	fmt.Println(report)
	if *table {
		fmt.Print(report.Table())
	}
}
