// Command passim runs a single simulation of one protocol over one scenario
// and prints the run metrics (optionally the per-node table), replicates the
// run across seeds in parallel and prints the aggregate, or runs a registry
// experiment end to end.
//
// Usage:
//
//	passim -protocol pas -nodes 30 -range 10 -seed 1
//	passim -protocol sas -scenario gasleak -table
//	passim -protocol pas -maxsleep 30 -threshold 25 -loss 0.2 -fail 0.1
//	passim -protocol pas -reps 16 -parallel 8
//	passim -scenario scale-10k -protocol pas        # 10k-node grid run
//	passim -scenario-file myscenario.json           # hand-written JSON spec
//	passim -exp ext-scale                           # run a registry experiment
//
// Scenario precedence: the named (or JSON) scenario supplies the field,
// stimulus, deployment kind, node count, radio range, channel and failure
// model; explicitly set flags override the matching scenario values.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	pas "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed flag set of one passim invocation.
type config struct {
	scenario     string
	scenarioFile string
	expID        string
	seed         int64
	reps         int
	parallel     int
	table        bool
	protocol     string
	nodes        int
	radioRng     float64
	maxSleep     float64
	thresh       float64
	lossProb     float64
	failFrac     float64
	shards       int
	predictor    string

	// set records which flags were explicitly given, so scenario-supplied
	// values are only overridden on purpose.
	set map[string]bool
}

// parseFlags parses the command line into a config.
func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("passim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.protocol, "protocol", "pas", "protocol: pas, sas, ns, duty")
	fs.StringVar(&c.scenario, "scenario", "paper", "registry scenario name (see pas.ScenarioNames)")
	fs.StringVar(&c.scenarioFile, "scenario-file", "", "JSON scenario spec file (overrides -scenario)")
	fs.StringVar(&c.expID, "exp", "", "run a registry experiment instead of a single simulation (e.g. ext-scale)")
	fs.IntVar(&c.nodes, "nodes", 30, "deployment size (default: the scenario's)")
	fs.Float64Var(&c.radioRng, "range", 10, "transmission range in m (default: the scenario's)")
	fs.Int64Var(&c.seed, "seed", 1, "simulation seed (first seed with -reps)")
	fs.IntVar(&c.reps, "reps", 1, "replication count; > 1 prints the aggregate over seeds seed..seed+reps-1")
	fs.IntVar(&c.parallel, "parallel", 0, "concurrent replications (0 = one per CPU, 1 = serial)")
	fs.Float64Var(&c.maxSleep, "maxsleep", 10, "maximum sleep interval (s)")
	fs.Float64Var(&c.thresh, "threshold", 20, "PAS alert-time threshold (s)")
	fs.Float64Var(&c.lossProb, "loss", 0, "packet loss probability (0 = the scenario's channel)")
	fs.Float64Var(&c.failFrac, "fail", 0, "fraction of nodes to fail at random times")
	fs.IntVar(&c.shards, "shards", 0, "run on that many spatially sharded kernels (0 = serial); output is bit-identical to serial")
	fs.StringVar(&c.predictor, "predictor", "", "PAS arrival predictor: paper, lms, ewma, ar, kalman, switching (default: the scenario's)")
	fs.BoolVar(&c.table, "table", false, "print the per-node table")
	err := fs.Parse(args)
	c.set = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { c.set[f.Name] = true })
	return c, err
}

// loadScenario resolves the -scenario / -scenario-file selection.
func loadScenario(c config) (pas.ScenarioSpec, error) {
	if c.scenarioFile != "" {
		data, err := os.ReadFile(c.scenarioFile)
		if err != nil {
			return pas.ScenarioSpec{}, err
		}
		return pas.DecodeScenario(data)
	}
	name := c.scenario
	if name == "" {
		name = "paper"
	}
	sp, ok := pas.LookupScenario(name)
	if !ok {
		return pas.ScenarioSpec{}, fmt.Errorf("unknown scenario %q (one of %v)", name, pas.ScenarioNames())
	}
	return sp, nil
}

// buildRunConfig compiles the scenario and applies flag overrides.
func buildRunConfig(c config) (pas.RunConfig, error) {
	sp, err := loadScenario(c)
	if err != nil {
		return pas.RunConfig{}, err
	}
	cfg, err := pas.RunConfigFromScenario(sp, c.seed)
	if err != nil {
		return pas.RunConfig{}, err
	}
	// Explicit flags beat scenario values; untouched flags defer to the
	// scenario. The protocol flag applies unless the spec pins a protocol
	// and the flag was left at its default.
	if c.set["protocol"] || sp.Protocol.Name == "" {
		cfg.Protocol = c.protocol
	}
	if c.set["nodes"] {
		cfg.Nodes = c.nodes
	}
	if c.set["range"] {
		// Re-range the scenario's own channel model rather than replacing
		// it: a falloff or lossy spec keeps its physics at the new range.
		cfg.Range = c.radioRng
		sp.Radio.Range = c.radioRng
		if sp.Radio.Reliable > c.radioRng {
			sp.Radio.Reliable = c.radioRng
		}
		if cfg.Loss, err = sp.Radio.Model(); err != nil {
			return pas.RunConfig{}, err
		}
	}
	if c.set["maxsleep"] || sp.Protocol.MaxSleep == 0 {
		cfg.PAS.SleepMax = c.maxSleep
		cfg.SAS.SleepMax = c.maxSleep
		// The ramp follows the cap, but never clobber an increment the spec
		// pinned on its own unless the flag was explicitly given.
		if c.set["maxsleep"] || sp.Protocol.SleepIncrement == 0 {
			cfg.PAS.SleepIncrement = c.maxSleep / 5
			cfg.SAS.SleepIncrement = c.maxSleep / 5
		}
	}
	if c.set["threshold"] || sp.Protocol.AlertThreshold == 0 {
		cfg.PAS.AlertThreshold = c.thresh
	}
	if c.set["predictor"] {
		// An explicit flag beats the scenario's predictor section;
		// -predictor paper restores the default estimator.
		if _, ok := pas.DescribePredictor(c.predictor); !ok {
			return pas.RunConfig{}, fmt.Errorf("unknown predictor %q (one of %v)", c.predictor, pas.PredictorKinds())
		}
		cfg.PAS.Predictor = pas.PredictorConfig{Kind: c.predictor}
	}
	if c.set["loss"] {
		// Explicit -loss replaces the scenario's channel outright; -loss 0
		// restores the perfect unit disk.
		if c.lossProb > 0 {
			cfg.Loss = pas.LossyDisk{Range: cfg.Range, LossProb: c.lossProb}
		} else {
			cfg.Loss = pas.UnitDisk{Range: cfg.Range}
		}
	}
	if c.set["fail"] {
		cfg.FailFraction = c.failFrac
	}
	if c.set["shards"] {
		cfg.Shards = c.shards
	}
	return cfg, nil
}

// replicationSeeds lists the seeds of a -reps invocation.
func replicationSeeds(first int64, reps int) []int64 {
	seeds := make([]int64, reps)
	for i := range seeds {
		seeds[i] = first + int64(i)
	}
	return seeds
}

// runExperiment executes -exp: one registry experiment, rendered to stdout.
func runExperiment(c config, stdout, stderr io.Writer) int {
	exp, ok := pas.LookupExperiment(c.expID)
	if !ok {
		fmt.Fprintf(stderr, "passim: unknown experiment %q\n", c.expID)
		return 2
	}
	opts := pas.ExperimentOptions{Parallelism: c.parallel}
	if c.set["reps"] || c.set["seed"] {
		// Explicit -seed/-reps (including -reps 1) must reach the
		// experiment; otherwise they would be silently ignored.
		opts.Seeds = replicationSeeds(c.seed, c.reps)
	}
	return execute(stderr, func() error {
		res, err := exp.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Fprintln(stdout, res.Render())
		return nil
	})
}

// run executes one invocation and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	if c.expID != "" {
		// -exp runs registry experiments on their own built-in workloads and
		// configurations; every single-run flag would be silently dropped,
		// so reject them (only -seed/-reps/-parallel carry over).
		for _, conflict := range []string{"scenario", "scenario-file", "table",
			"protocol", "nodes", "range", "maxsleep", "threshold", "loss", "fail", "shards", "predictor"} {
			if c.set[conflict] {
				fmt.Fprintf(stderr, "passim: -exp and -%s are mutually exclusive; drop one\n", conflict)
				return 2
			}
		}
		return runExperiment(c, stdout, stderr)
	}
	if c.reps > 1 && c.table {
		fmt.Fprintln(stderr, "passim: -table needs a single run; drop -reps or run one seed")
		return 2
	}
	cfg, err := buildRunConfig(c)
	if err != nil {
		fmt.Fprintf(stderr, "passim: %v\n", err)
		return 2
	}

	if c.reps > 1 {
		return execute(stderr, func() error {
			agg, err := pas.ReplicateParallel(cfg, replicationSeeds(c.seed, c.reps), c.parallel)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "scenario %-10s protocol %-5s nodes %d range %.0fm seeds %d..%d\n",
				cfg.Scenario.Name, cfg.Protocol, cfg.Nodes, cfg.Range, c.seed, c.seed+int64(c.reps)-1)
			fmt.Fprintln(stdout, agg.String())
			return nil
		})
	}

	return execute(stderr, func() error {
		report, err := pas.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "scenario %-10s protocol %-5s nodes %d range %.0fm seed %d\n",
			cfg.Scenario.Name, cfg.Protocol, cfg.Nodes, cfg.Range, c.seed)
		fmt.Fprintln(stdout, report)
		if c.table {
			fmt.Fprint(stdout, report.Table())
		}
		return nil
	})
}

// execute runs one simulation action, converting library panics — infeasible
// deployments (disconnected uniform draws, saturated poisson specs) and
// similar spec errors surface as panics by design — into clean CLI errors
// instead of goroutine dumps.
func execute(stderr io.Writer, fn func() error) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "passim: %v\n", r)
			code = 1
		}
	}()
	if err := fn(); err != nil {
		fmt.Fprintf(stderr, "passim: %v\n", err)
		return 1
	}
	return 0
}
