// Command pasbench regenerates the paper's tables and figures (and the
// extension experiments) from the experiment registry.
//
// Usage:
//
//	pasbench -exp all                 # run everything, print text tables
//	pasbench -exp fig4 -seeds 12      # one figure at higher replication
//	pasbench -exp fig6 -csv out/      # also write long-form CSV
//	pasbench -list                    # show available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	pas "repro"
)

func main() {
	var (
		expID  = flag.String("exp", "all", "experiment id to run, or 'all'")
		seeds  = flag.Int("seeds", 0, "replication count (0 = experiment default)")
		quick  = flag.Bool("quick", false, "reduced sweeps and replication")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV files")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range pas.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := pas.ExperimentOptions{Quick: *quick}
	if *seeds > 0 {
		opts.Seeds = pas.Seeds(*seeds)
	}

	var targets []pas.Experiment
	if *expID == "all" {
		targets = pas.Experiments()
	} else {
		e, ok := pas.LookupExperiment(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "pasbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		targets = []pas.Experiment{e}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pasbench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range targets {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pasbench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
