// Command pasbench regenerates the paper's tables and figures (and the
// extension experiments) from the experiment registry.
//
// Usage:
//
//	pasbench -exp all                 # run everything, print text tables
//	pasbench -exp fig4 -seeds 12      # one figure at higher replication
//	pasbench -exp fig6 -csv out/      # also write long-form CSV
//	pasbench -exp all -parallel 8     # fan runs out over 8 workers
//	pasbench -exp ext-scale           # 100/1k/10k-node scale sweep
//	pasbench -scenario scale-1k       # generic sweep over one registry scenario
//	pasbench -scenario paper -predictor kalman   # same sweep, PAS predictor pinned
//	pasbench -list                    # show experiment IDs, scenarios, predictors
//
// Hot-path investigations profile the harness directly, no hand-written
// pprof scaffolding needed:
//
//	pasbench -exp fig4 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	pas "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed flag set of one pasbench invocation.
type config struct {
	expID      string
	scenario   string
	predictor  string
	quick      bool
	csvDir     string
	list       bool
	cpuProfile string
	memProfile string
	opts       pas.ExperimentOptions
}

// parseFlags parses the command line into a config. Errors (including
// -h/-help) are reported on stderr by the flag package.
func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("pasbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		c        config
		seeds    = fs.Int("seeds", 0, "replication count (0 = experiment default)")
		parallel = fs.Int("parallel", 0, "concurrent simulation runs (0 = one per CPU, 1 = serial)")
	)
	fs.StringVar(&c.expID, "exp", "all", "experiment id to run, or 'all'")
	fs.StringVar(&c.scenario, "scenario", "", "run the generic maxSleep sweep over this registry scenario instead of -exp")
	fs.StringVar(&c.predictor, "predictor", "", "pin the PAS arrival predictor of a -scenario sweep (paper, lms, ewma, ar, kalman, switching)")
	fs.BoolVar(&c.quick, "quick", false, "reduced sweeps and replication")
	fs.StringVar(&c.csvDir, "csv", "", "directory to write per-experiment CSV files")
	fs.BoolVar(&c.list, "list", false, "list experiment ids and exit")
	fs.StringVar(&c.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	c.opts = pas.ExperimentOptions{Quick: c.quick, Parallelism: *parallel}
	if *seeds > 0 {
		c.opts.Seeds = pas.Seeds(*seeds)
	}
	return c, nil
}

// selectExperiments resolves the -scenario / -exp selection against the
// experiment and scenario registries. The two selectors conflict: a
// non-default -exp next to -scenario is rejected rather than silently
// ignored.
func selectExperiments(expID, scenarioName, predictor string) ([]pas.Experiment, error) {
	if scenarioName != "" {
		if expID != "all" {
			return nil, fmt.Errorf("-exp %s and -scenario %s are mutually exclusive; drop one", expID, scenarioName)
		}
		e, err := pas.ScenarioSweepPredictorExperiment(scenarioName, predictor)
		if err != nil {
			return nil, err
		}
		return []pas.Experiment{e}, nil
	}
	if predictor != "" {
		return nil, fmt.Errorf("-predictor needs -scenario; registry experiments pick their own predictors")
	}
	if expID == "all" {
		return pas.Experiments(), nil
	}
	e, ok := pas.LookupExperiment(expID)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (use -list)", expID)
	}
	return []pas.Experiment{e}, nil
}

// run executes one invocation and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}

	if c.list {
		// Both registries are kept in presentation order internally; the
		// listing sorts them so ids/names are findable at a glance.
		exps := pas.Experiments()
		sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
		for _, e := range exps {
			fmt.Fprintf(stdout, "%-16s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "\nscenarios (-scenario):")
		sps := pas.Scenarios()
		sort.Slice(sps, func(i, j int) bool { return sps[i].Name < sps[j].Name })
		for _, sp := range sps {
			fmt.Fprintf(stdout, "%-16s %s\n", sp.Name, sp.Description)
		}
		fmt.Fprintln(stdout, "\npredictors (-predictor):")
		for _, k := range pas.PredictorKinds() {
			sum, _ := pas.DescribePredictor(k)
			fmt.Fprintf(stdout, "%-16s %s\n", k, sum)
		}
		return 0
	}

	targets, err := selectExperiments(c.expID, c.scenario, c.predictor)
	if err != nil {
		fmt.Fprintf(stderr, "pasbench: %v\n", err)
		return 2
	}

	if c.csvDir != "" {
		if err := os.MkdirAll(c.csvDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "pasbench: %v\n", err)
			return 1
		}
	}

	stopProfiles, err := startProfiles(c)
	if err != nil {
		fmt.Fprintf(stderr, "pasbench: %v\n", err)
		return 1
	}
	code := runExperiments(c, targets, stdout, stderr)
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(stderr, "pasbench: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// startProfiles starts CPU profiling when configured and returns a stop
// function that finalizes the CPU profile and writes the heap profile.
func startProfiles(c config) (stop func() error, err error) {
	var cpuFile *os.File
	if c.cpuProfile != "" {
		cpuFile, err = os.Create(c.cpuProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if c.memProfile != "" {
			f, err := os.Create(c.memProfile)
			if err != nil {
				return err
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// runExperiments executes the selected experiments, printing tables and CSVs.
func runExperiments(c config, targets []pas.Experiment, stdout, stderr io.Writer) int {
	for _, e := range targets {
		start := time.Now()
		res, err := e.Run(c.opts)
		if err != nil {
			fmt.Fprintf(stderr, "pasbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintln(stdout, res.Render())
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if c.csvDir != "" {
			path := filepath.Join(c.csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(stderr, "pasbench: writing %s: %v\n", path, err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n\n", path)
		}
	}
	return 0
}
