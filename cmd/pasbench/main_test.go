package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	var stderr strings.Builder
	c, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if c.expID != "all" || c.quick || c.list || c.csvDir != "" {
		t.Errorf("defaults = %+v", c)
	}
	if c.opts.Parallelism != 0 {
		t.Errorf("default Parallelism = %d, want 0 (one per CPU)", c.opts.Parallelism)
	}
	if c.opts.Seeds != nil {
		t.Errorf("default Seeds = %v, want nil", c.opts.Seeds)
	}
}

func TestParseFlagsParallelPlumbing(t *testing.T) {
	var stderr strings.Builder
	c, err := parseFlags([]string{"-exp", "fig4", "-parallel", "4", "-seeds", "12", "-quick"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if c.opts.Parallelism != 4 {
		t.Errorf("Parallelism = %d, want 4", c.opts.Parallelism)
	}
	if len(c.opts.Seeds) != 12 {
		t.Errorf("Seeds = %d, want 12", len(c.opts.Seeds))
	}
	if !c.opts.Quick {
		t.Error("Quick not plumbed")
	}
}

func TestParseFlagsBadFlag(t *testing.T) {
	var stderr strings.Builder
	if _, err := parseFlags([]string{"-nonsense"}, &stderr); err == nil {
		t.Fatal("bad flag accepted")
	}
	if !strings.Contains(stderr.String(), "nonsense") {
		t.Errorf("stderr = %q, want mention of the bad flag", stderr.String())
	}
}

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all", "", "")
	if err != nil || len(all) < 15 {
		t.Fatalf("all: %d experiments, err %v", len(all), err)
	}
	one, err := selectExperiments("fig4", "", "")
	if err != nil || len(one) != 1 || one[0].ID != "fig4" {
		t.Fatalf("fig4: %+v, err %v", one, err)
	}
	if _, err := selectExperiments("fig99", "", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// -scenario selects the generic sweep and wins over -exp.
	sw, err := selectExperiments("all", "poisson", "")
	if err != nil || len(sw) != 1 || sw[0].ID != "scenario-poisson" {
		t.Fatalf("scenario sweep: %+v, err %v", sw, err)
	}
	if _, err := selectExperiments("all", "atlantis", ""); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	// An explicit experiment next to -scenario is a conflict, not a silent
	// override.
	if _, err := selectExperiments("fig4", "poisson", ""); err == nil {
		t.Fatal("conflicting -exp and -scenario accepted")
	}
	// -predictor pins the sweep's PAS predictor and shows up in the id.
	pr, err := selectExperiments("all", "poisson", "kalman")
	if err != nil || len(pr) != 1 || pr[0].ID != "scenario-poisson-kalman" {
		t.Fatalf("predictor sweep: %+v, err %v", pr, err)
	}
	if _, err := selectExperiments("all", "poisson", "psychic"); err == nil {
		t.Fatal("unknown predictor accepted")
	}
	// -predictor without -scenario has nothing to apply to.
	if _, err := selectExperiments("all", "", "kalman"); err == nil {
		t.Fatal("-predictor without -scenario accepted")
	}
}

// TestRunListIncludesPredictors pins the -list predictors section.
func TestRunListIncludesPredictors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(stdout.String(), "predictors (-predictor):") {
		t.Fatalf("-list missing predictors section: %q", stdout.String())
	}
	for _, k := range []string{"paper", "lms", "ewma", "ar", "kalman", "switching"} {
		if !strings.Contains(stdout.String(), k) {
			t.Errorf("-list output missing predictor %s", k)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-exp", "fig99"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunBadFlagExitCode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exit code = %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "-parallel") {
		t.Errorf("usage missing -parallel: %q", stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	for _, id := range []string{"fig4", "ext-plume", "ext-lifetime"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

// TestRunListSorted pins that both halves of the listing come out sorted:
// experiments by id, scenarios by name.
func TestRunListSorted(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	parts := strings.SplitN(stdout.String(), "scenarios (-scenario):", 2)
	if len(parts) != 2 {
		t.Fatalf("missing scenarios section: %q", stdout.String())
	}
	// The predictors section keeps registry order (paper first) on purpose;
	// only the experiment and scenario listings are sorted.
	parts[1] = strings.SplitN(parts[1], "predictors (-predictor):", 2)[0]
	for half, text := range map[string]string{"experiments": parts[0], "scenarios": parts[1]} {
		var keys []string
		for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
			if fields := strings.Fields(line); len(fields) > 0 {
				keys = append(keys, fields[0])
			}
		}
		if len(keys) < 2 {
			t.Fatalf("%s listing too short: %q", half, text)
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("%s listing not sorted: %v", half, keys)
		}
	}
}

func TestRunScenarioSweep(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "grid", "-quick", "-seeds", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "scenario-grid") {
		t.Errorf("stdout missing sweep id: %q", stdout.String())
	}
	if code := run([]string{"-scenario", "atlantis"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown scenario: exit %d, want 2", code)
	}
}

func TestRunListIncludesScenarios(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	for _, name := range []string{"scale-10k", "poisson", "ext-scale"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestRunTable1WithCSV(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr strings.Builder
	code := run([]string{"-exp", "table1", "-csv", dir, "-parallel", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "table1") {
		t.Errorf("stdout missing table1: %q", stdout.String())
	}
	if !strings.Contains(stdout.String(), filepath.Join(dir, "table1.csv")) {
		t.Errorf("stdout missing CSV path: %q", stdout.String())
	}
}

func TestParseFlagsProfilePlumbing(t *testing.T) {
	var stderr strings.Builder
	c, err := parseFlags([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if c.cpuProfile != "cpu.out" || c.memProfile != "mem.out" {
		t.Errorf("profile flags = %q, %q", c.cpuProfile, c.memProfile)
	}
}

func TestParseFlagsProfileDefaultsOff(t *testing.T) {
	var stderr strings.Builder
	c, err := parseFlags(nil, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if c.cpuProfile != "" || c.memProfile != "" {
		t.Errorf("profiles default on: %q, %q", c.cpuProfile, c.memProfile)
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var stdout, stderr strings.Builder
	code := run([]string{"-exp", "table1", "-cpuprofile", cpu, "-memprofile", mem}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestRunBadMemProfilePathFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-exp", "table1", "-memprofile", filepath.Join(t.TempDir(), "no-such-dir", "mem.out")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if stderr.String() == "" {
		t.Error("no error reported for unwritable heap-profile path")
	}
}

func TestRunBadCSVDirFails(t *testing.T) {
	// A csv "directory" that is actually a file makes MkdirAll fail.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := run([]string{"-exp", "table1", "-csv", filepath.Join(blocker, "out")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
}

func TestRunBadProfilePathFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-exp", "table1", "-cpuprofile", filepath.Join(t.TempDir(), "no-such-dir", "cpu.out")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if stderr.String() == "" {
		t.Error("no error reported for unwritable profile path")
	}
}
