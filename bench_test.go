// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4). Each BenchmarkFigN/BenchmarkTableN target runs the corresponding
// experiment at reduced replication and reports the headline numbers as
// custom metrics, so `go test -bench=.` both times the harness and prints
// the reproduced values. Micro-benchmarks for the simulation substrate
// follow at the end.
package pas_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	pas "repro"
	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/store"
)

// benchOpts runs experiments small enough for iterated benchmarking while
// keeping the qualitative shape.
func benchOpts() pas.ExperimentOptions {
	return pas.ExperimentOptions{Quick: true, Seeds: pas.Seeds(2)}
}

// lastY returns the y value of a curve at its largest x.
func lastY(res pas.ExperimentResult, name string) float64 {
	c, ok := res.Curve(name)
	if !ok || len(c.Points) == 0 {
		return -1
	}
	return c.Points[len(c.Points)-1].Y
}

func firstY(res pas.ExperimentResult, name string) float64 {
	c, ok := res.Curve(name)
	if !ok || len(c.Points) == 0 {
		return -1
	}
	return c.Points[0].Y
}

func BenchmarkTable1Profile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := energy.Telos()
		m := energy.NewMeter(p, 0, energy.ModeActive)
		for t := 1.0; t <= 128; t *= 2 {
			m.SetMode(t, energy.ModeSleep)
			m.SetMode(t+0.5, energy.ModeActive)
			m.ChargeTxBytes(64)
		}
		m.Close(256)
		if m.TotalJ() <= 0 {
			b.Fatal("no energy accounted")
		}
	}
}

func BenchmarkFig4DelayVsMaxSleep(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "PAS"), "pas-delay-s")
	b.ReportMetric(lastY(res, "SAS"), "sas-delay-s")
	b.ReportMetric(lastY(res, "NS"), "ns-delay-s")
}

func BenchmarkFig5DelayVsAlertTime(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(firstY(res, "PAS"), "delay-at-T10-s")
	b.ReportMetric(lastY(res, "PAS"), "delay-at-T30-s")
}

func BenchmarkFig6EnergyVsMaxSleep(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "PAS"), "pas-energy-J")
	b.ReportMetric(lastY(res, "SAS"), "sas-energy-J")
	b.ReportMetric(lastY(res, "NS"), "ns-energy-J")
}

func BenchmarkFig7EnergyVsAlertTime(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(firstY(res, "PAS"), "energy-at-T10-J")
	b.ReportMetric(lastY(res, "PAS"), "energy-at-T30-J")
}

func BenchmarkExtFailures(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtFailures(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "pas"), "pas-delay-at-30pct-s")
}

func BenchmarkExtLossyChannel(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtLossy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "pas"), "pas-delay-at-50pct-loss-s")
}

func BenchmarkExtDegenerateSAS(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtDegenerate(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "PAS (T→0)"), "degenerate-delay-s")
	b.ReportMetric(lastY(res, "SAS"), "sas-delay-s")
}

func BenchmarkExtEstimatorAblation(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtEstimator(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "min (paper)"), "min-delay-s")
	b.ReportMetric(lastY(res, "mean"), "mean-delay-s")
}

func BenchmarkExtPlume(b *testing.B) {
	// The PDE integration dominates; build the scenario once and bench the
	// protocol runs over it.
	sc, err := pas.PlumeScenario()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep pas.RunReport
	for i := 0; i < b.N; i++ {
		rep, err = pas.Run(pas.RunConfig{Scenario: sc, Protocol: pas.ProtoPAS, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.AvgDelay, "pas-delay-s")
	b.ReportMetric(rep.AvgEnergyJ, "pas-energy-J")
}

func BenchmarkExtDensity(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtDensity(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "PAS delay"), "delay-at-max-density-s")
}

func BenchmarkExtLifetime(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtLifetime(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "ns"), "ns-first-death-s")
	b.ReportMetric(lastY(res, "pas"), "pas-first-death-s")
}

func BenchmarkExtCollisions(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtCollisions(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "pas (collisions)"), "delay-with-collisions-s")
}

func BenchmarkExtContour(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtContour(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "ns"), "ns-area-err")
	b.ReportMetric(lastY(res, "pas"), "pas-area-err")
}

func BenchmarkExtTerrain(b *testing.B) {
	// Fast marching dominates construction; build once, bench protocol runs.
	sc, err := pas.TerrainScenario()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep pas.RunReport
	for i := 0; i < b.N; i++ {
		rep, err = pas.Run(pas.RunConfig{Scenario: sc, Protocol: pas.ProtoPAS, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.AvgDelay, "pas-delay-s")
}

func BenchmarkFastMarching(b *testing.B) {
	cfg := diffusion.TerrainConfig{
		Bounds:  geom.R(0, 0, 40, 40),
		NX:      64,
		NY:      64,
		Speed:   func(geom.Vec2) float64 { return 0.5 },
		Source:  geom.V(20, 20),
		Horizon: 200,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diffusion.NewTerrainFront(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel replication engine ---

// benchmarkReplicate times one multi-replication PAS cell at the given
// parallelism; the Serial/Parallel pair below measures the worker pool's
// wall-clock speedup rather than claiming it.
func benchmarkReplicate(b *testing.B, parallelism int) {
	rc := pas.RunConfig{Protocol: pas.ProtoPAS}
	seeds := pas.Seeds(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pas.ReplicateParallel(rc, seeds, parallelism); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicate8Serial(b *testing.B) { benchmarkReplicate(b, 1) }

func BenchmarkReplicate8Parallel(b *testing.B) { benchmarkReplicate(b, runtime.GOMAXPROCS(0)) }

// benchmarkFig4At regenerates Fig. 4 end-to-end (a 3-protocol × 2-point
// Quick sweep replicated over 4 seeds) at the given parallelism.
func benchmarkFig4At(b *testing.B, parallelism int) {
	opts := pas.ExperimentOptions{Quick: true, Seeds: pas.Seeds(4), Parallelism: parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig4(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Serial(b *testing.B) { benchmarkFig4At(b, 1) }

func BenchmarkFig4Parallel(b *testing.B) { benchmarkFig4At(b, runtime.GOMAXPROCS(0)) }

// --- substrate micro-benchmarks ---

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := sim.NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(1, func(*sim.Kernel) {})
		k.Step()
	}
}

// BenchmarkKernelScheduleCancel exercises the O(1) stamp-check Cancel with
// lazy heap removal: a deep queue where half the events die before popping.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := sim.NewKernel()
	h := func(*sim.Kernel) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := k.Schedule(2, h)
		k.Schedule(1, h)
		k.Cancel(id)
		k.Step()
	}
	b.StopTimer()
	k.Run()
}

// benchSink is an allocation-free receiver for the broadcast benchmark.
type benchSink struct{ delivered int }

func (s *benchSink) Listening() bool                      { return true }
func (s *benchSink) Deliver(radio.NodeID, radio.Envelope) { s.delivered++ }

// BenchmarkBroadcastDeliver times one full broadcast→delivery cycle of a
// RESPONSE envelope to 8 in-range receivers on the pooled batched path; the
// acceptance bar is 0 allocs/op.
func BenchmarkBroadcastDeliver(b *testing.B) {
	k := sim.NewKernel()
	st := rng.NewSource(1).Stream("channel")
	m := radio.NewMedium(k, geom.R(0, 0, 100, 100), energy.Telos(), radio.UnitDisk{Range: 15}, st)
	sinks := make([]*benchSink, 9)
	positions := []geom.Vec2{
		geom.V(50, 50),
		geom.V(55, 50), geom.V(45, 50), geom.V(50, 55), geom.V(50, 45),
		geom.V(57, 57), geom.V(43, 43), geom.V(57, 43), geom.V(43, 57),
	}
	for i, pos := range positions {
		sinks[i] = &benchSink{}
		m.AddNode(radio.NodeID(i), pos, sinks[i], energy.NewMeter(energy.Telos(), 0, energy.ModeActive))
	}
	env := core.Response{
		Pos: geom.V(50, 50), Velocity: geom.V(1, 0), HasVelocity: true, HasDirection: true,
		PredictedArrival: 42, DetectedAt: 40, Detected: true,
	}.Envelope()
	// Warm the kernel arena, neighbour scratch and delivery pool.
	for i := 0; i < 16; i++ {
		m.Broadcast(0, env)
		k.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Broadcast(0, env)
		k.Run()
	}
	b.StopTimer()
	if sinks[1].delivered == 0 {
		b.Fatal("no deliveries")
	}
}

func BenchmarkPASSingleRun(b *testing.B) {
	sc := pas.PaperScenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pas.Run(pas.RunConfig{Scenario: sc, Protocol: pas.ProtoPAS, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScale10k times one full 10 000-node PAS run on the scale-10k grid
// scenario — the production-scale point of the ext-scale sweep. The fixed
// seed lets the deployment memoization engage after the first iteration, so
// the number tracks the simulation itself (stimulus, kernel, radio, metrics)
// rather than the deployment draw.
func BenchmarkScale10k(b *testing.B) {
	sp, ok := pas.LookupScenario("scale-10k")
	if !ok {
		b.Fatal("scale-10k missing from the registry")
	}
	cfg, err := pas.RunConfigFromScenario(sp, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Protocol = pas.ProtoPAS
	var rep pas.RunReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep, err = pas.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rep.Detected != 10000 {
		b.Fatalf("detected %d/10000", rep.Detected)
	}
	b.ReportMetric(rep.AvgDelay, "pas-delay-s")
}

// BenchmarkNetworkConstruction times building (not running) a 1000-node
// network: kernel, medium, slab-allocated nodes/endpoints/agents and the
// adopted precompiled topology. The fixed seed lets the deployment and
// topology memoization engage after the first iteration, so the number
// tracks the wiring cost the CSR/slab overhaul targets, separately from
// steady-state simulation.
func BenchmarkNetworkConstruction(b *testing.B) {
	sp, ok := pas.LookupScenario("scale-1k")
	if !ok {
		b.Fatal("scale-1k missing from the registry")
	}
	cfg, err := pas.RunConfigFromScenario(sp, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Protocol = pas.ProtoPAS
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, _, err := experiment.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(nw.Nodes) != 1000 {
			b.Fatalf("built %d nodes", len(nw.Nodes))
		}
	}
}

// BenchmarkScale10kColdStart is BenchmarkScale10k without the memoized
// deployment/topology: every iteration uses a fresh seed, so the grid draw,
// the CSR compilation and the stimulus build all run cold. The gap between
// this and BenchmarkScale10k is what the experiment-level memoization saves
// per cell.
func BenchmarkScale10kColdStart(b *testing.B) {
	sp, ok := pas.LookupScenario("scale-10k")
	if !ok {
		b.Fatal("scale-10k missing from the registry")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, err := pas.RunConfigFromScenario(sp, int64(100+i)) // unique seed → no cache reuse
		if err != nil {
			b.Fatal(err)
		}
		cfg.Protocol = pas.ProtoPAS
		rep, err := pas.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Detected != 10000 {
			b.Fatalf("detected %d/10000", rep.Detected)
		}
	}
}

// BenchmarkScale100k times one full 100 000-node PAS run on four spatially
// sharded kernels — the headline workload of the sharded event kernel. The
// output is bit-identical to the serial run (pinned by the byte-identity
// tests); this number tracks the wall-clock the sharding buys. On a 4+ core
// runner it should sit well under the serial BenchmarkScale100kSerial; on a
// starved runner the two converge (the barrier degrades to yields, not
// spins). The fixed seed keeps the memoized deployment/topology engaged.
func BenchmarkScale100k(b *testing.B) {
	benchScale100k(b, 4)
}

// BenchmarkScale100kSerial is the 1-shard comparison point for
// BenchmarkScale100k: the same workload through the sharded build and window
// loop with no parallelism. The gap between the two is the speedup; the gap
// against a plain serial run is the windowing overhead. Deliberately not in
// the benchcheck baseline — it exists for the ratio, not for drift tracking.
func BenchmarkScale100kSerial(b *testing.B) {
	benchScale100k(b, 1)
}

func benchScale100k(b *testing.B, shards int) {
	sp, ok := pas.LookupScenario("scale-100k")
	if !ok {
		b.Fatal("scale-100k missing from the registry")
	}
	cfg, err := pas.RunConfigFromScenario(sp, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Protocol = pas.ProtoPAS
	cfg.Shards = shards
	var rep pas.RunReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep, err = pas.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rep.Detected != 100000 {
		b.Fatalf("detected %d/100000", rep.Detected)
	}
	b.ReportMetric(rep.AvgDelay, "pas-delay-s")
}

// BenchmarkFaultChurn times a 10 000-node PAS run with 20% crash-recovery
// churn and the sink-side liveness tracker on — the fault-injection worst
// case: Fail/Recover events, deaf-window bookkeeping, per-suspect backoff
// timers and the graceful-degradation metrics pass all ride on top of the
// BenchmarkScale10k workload. The gap against BenchmarkScale10k is the total
// cost of the fault subsystem at scale; the fixed seed keeps the memoized
// deployment/topology engaged, and the frozen CSR topology must survive the
// churn (rejoin is a radio-state change, never a recompile).
func BenchmarkFaultChurn(b *testing.B) {
	sp, ok := pas.LookupScenario("scale-10k")
	if !ok {
		b.Fatal("scale-10k missing from the registry")
	}
	sp.Failures = pas.FailureSpec{Churn: &pas.ChurnSpec{Fraction: 0.2, MeanDown: 20, MinDown: 5}}
	sp.Protocol.Liveness = &pas.LivenessSpec{MissK: 3, Interval: 5}
	cfg, err := pas.RunConfigFromScenario(sp, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Protocol = pas.ProtoPAS
	var rep pas.RunReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep, err = pas.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rep.LiveFraction >= 1 || rep.LiveFraction <= 0 {
		b.Fatalf("live fraction %g: churn did not engage", rep.LiveFraction)
	}
	b.ReportMetric(rep.LiveFraction, "live-frac")
}

func BenchmarkSASSingleRun(b *testing.B) {
	sc := pas.PaperScenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pas.Run(pas.RunConfig{Scenario: sc, Protocol: pas.ProtoSAS, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimatorMinETA(b *testing.B) {
	reports := make([]core.NeighborReport, 12)
	for i := range reports {
		reports[i] = core.NeighborReport{
			ID:  pas.NodeID(i),
			Pos: geom.V(float64(i), float64(i%3)),
			State: func() node.State {
				if i%2 == 0 {
					return node.StateCovered
				}
				return node.StateAlert
			}(),
			Velocity: geom.V(0.5, 0.1), HasVelocity: true, HasDirection: true,
			PredictedArrival: float64(20 + i), DetectedAt: float64(10 + i), Detected: i%2 == 0,
			ReceivedAt: float64(15 + i),
		}
	}
	x := geom.V(20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MinETA(x, 30, reports, 45)
	}
}

// BenchmarkPredictorStep times one Refresh+Announce cycle through every
// registered predictor kind over a small report snapshot — the per-wakeup
// cost a PAS agent pays for its prediction subsystem. The acceptance bar is
// 0 allocs/op: the filters run on fixed-size in-struct state.
func BenchmarkPredictorStep(b *testing.B) {
	reports := make([]core.NeighborReport, 4)
	for i := range reports {
		reports[i] = core.NeighborReport{
			ID:  pas.NodeID(i),
			Pos: geom.V(float64(i), float64(i%3)),
			State: func() node.State {
				if i%2 == 0 {
					return node.StateCovered
				}
				return node.StateAlert
			}(),
			Velocity: geom.V(0.5, 0.1), HasVelocity: true, HasDirection: true,
			PredictedArrival: float64(20 + i), DetectedAt: float64(10 + i), Detected: i%2 == 0,
			ReceivedAt: float64(15 + i),
		}
	}
	for _, k := range predict.Kinds() {
		b.Run(k, func(b *testing.B) {
			var m predict.Model
			m.Init(predict.Spec{Kind: k}, predict.EstimatorConfig{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := 30 + 0.1*float64(i%100)
				m.Refresh(predict.Input{Pos: geom.V(20, 1), Now: now, Reports: reports})
				m.Announce(0.1, now)
			}
		})
	}
}

func BenchmarkExtPredictors(b *testing.B) {
	var res pas.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiment.ExtPredictors(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastY(res, "radial"), "radial-delay-s")
	b.ReportMetric(lastY(res, "radial rmse (s)"), "radial-rmse-s")
}

func BenchmarkPlumeBuild(b *testing.B) {
	cfg := diffusion.PlumeConfig{
		Bounds:      geom.R(0, 0, 20, 20),
		NX:          32,
		NY:          32,
		Diffusivity: 1.5,
		Source:      geom.V(10, 10),
		Rate:        30,
		Threshold:   0.05,
		Horizon:     30,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diffusion.NewGridPlume(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCacheHit measures the steady-state cost of the simulation
// service answering a repeated question: one full handler round-trip (JSON
// decode, canonicalization, content-address derivation, result-store hit,
// response write) with the simulation itself absorbed by the cache. This is
// the number that makes passerve viable as a long-lived service — a cache
// hit must cost microseconds, not the milliseconds of a simulation.
func BenchmarkServeCacheHit(b *testing.B) {
	srv, err := pas.NewServer(pas.ServeConfig{Version: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	body := `{"name":"paper","seed":1}`
	warm := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		if w.Header().Get("X-Cache") != "hit-mem" {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkStoreDiskHit measures the durable tier's read path: one CRC-
// verified record read from the disk-backed content-addressed store. This is
// the added cost of a restart-surviving cache hit over a memory hit — it must
// stay in the tens of microseconds for the two-tier design to make sense.
func BenchmarkStoreDiskHit(b *testing.B) {
	s, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	body := bytes.Repeat([]byte(`{"k":"v"}`), 40) // ~360 B, a typical response
	if err := s.Put(key, body); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, ok := s.Get(key)
		if !ok || len(got) != len(body) {
			b.Fatal("disk hit failed")
		}
	}
}

// BenchmarkJobSubmit measures the async-job acknowledgment path end to end:
// decode, canonicalize, key, journal append with its fsync (the durability
// price of the 202 promise), and the instant completion of already-stored
// work. Each iteration resubmits the same finished request, so the simulation
// itself is absorbed by the store and the fsync dominates.
func BenchmarkJobSubmit(b *testing.B) {
	srv, err := pas.NewServer(pas.ServeConfig{Version: "bench", StoreDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	body := `{"name":"paper","seed":1}`
	waitDone := func() string {
		for {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body)))
			if rec.Code != http.StatusAccepted {
				b.Fatalf("submit status %d: %s", rec.Code, rec.Body)
			}
			var acc struct {
				ID string `json:"id"`
			}
			json.Unmarshal(rec.Body.Bytes(), &acc)
			for {
				st := httptest.NewRecorder()
				srv.ServeHTTP(st, httptest.NewRequest("GET", "/v1/jobs/"+acc.ID, nil))
				s := st.Body.String()
				if strings.Contains(s, `"state":"done"`) {
					return acc.ID
				}
				if strings.Contains(s, `"state":"failed"`) {
					b.Fatalf("job failed: %s", s)
				}
				// The completion fsync takes milliseconds; pacing the poll
				// keeps the measured allocations stable instead of counting
				// however many hot-spin polls fit into the fsync.
				time.Sleep(500 * time.Microsecond)
			}
		}
	}
	waitDone() // warm: first submission actually simulates
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		waitDone()
	}
}

func BenchmarkResponseCodec(b *testing.B) {
	r := core.Response{
		Pos: geom.V(1, 2), State: node.StateAlert,
		Velocity: geom.V(0.5, 0.25), HasVelocity: true, HasDirection: true,
		PredictedArrival: 42, DetectedAt: 40, Detected: true,
	}
	buf := r.Encode() // pre-grow the reused buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.AppendEncode(buf[:0])
		if _, err := core.DecodeResponse(buf); err != nil {
			b.Fatal(err)
		}
	}
}
