package client

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

// TestClientAgainstServe drives the real serving layer end to end: an async
// job through submit/wait/result equals the synchronous run byte for byte.
func TestClientAgainstServe(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 2, Version: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	c := New(ts.URL)
	req := RunRequest{Name: "paper", Seed: 5}
	jobBody, err := c.RunJob(context.Background(), "run", req)
	if err != nil {
		t.Fatal(err)
	}
	syncBody, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("async and sync bodies differ:\n%s\n%s", jobBody, syncBody)
	}

	// The replicate path through both surfaces agrees too.
	repReq := RunRequest{Name: "paper", Seeds: []int64{7, 8}}
	repJob, err := c.RunJob(context.Background(), "replicate", repReq)
	if err != nil {
		t.Fatal(err)
	}
	repSync, err := c.Replicate(context.Background(), repReq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repJob, repSync) {
		t.Fatalf("async and sync replicate bodies differ:\n%s\n%s", repJob, repSync)
	}

	// A validation failure is a typed, permanent APIError.
	if _, err := c.Run(context.Background(), RunRequest{Name: "nope"}); err == nil {
		t.Fatal("unknown scenario should fail")
	} else if ae, ok := err.(*APIError); !ok || ae.Code != CodeNotFound || ae.Transient() {
		t.Fatalf("error = %v, want permanent not_found", err)
	}
}
