package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedServer answers each request from a script of (status, code) pairs;
// requests past the script's end get the final entry. It records attempt
// counts and idempotency keys.
type scripted struct {
	status []int
	code   []string
	retry  []int // Retry-After seconds, 0 = none

	calls atomic.Int64
	idems []string
}

func (sc *scripted) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		i := int(sc.calls.Add(1)) - 1
		if i >= len(sc.status) {
			i = len(sc.status) - 1
		}
		if k := r.Header.Get("Idempotency-Key"); k != "" {
			sc.idems = append(sc.idems, k)
		}
		if ra := sc.retry; len(ra) > 0 && ra[min(i, len(ra)-1)] > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(ra[min(i, len(ra)-1)]))
		}
		st := sc.status[i]
		if st >= 400 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(st)
			json.NewEncoder(w).Encode(map[string]string{"code": sc.code[i], "error": "scripted"})
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// testClient builds a client against a scripted server with instant sleeps
// and deterministic jitter, recording every backoff duration.
func testClient(t *testing.T, sc *scripted, mut func(*Config)) (*Client, *[]time.Duration) {
	t.Helper()
	ts := httptest.NewServer(sc.handler())
	t.Cleanup(ts.Close)
	var slept []time.Duration
	cfg := Config{
		BaseURL: ts.URL,
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return ctx.Err()
		},
		jitter: func() float64 { return 1.0 }, // deterministic: full cap
	}
	if mut != nil {
		mut(&cfg)
	}
	return NewWithConfig(cfg), &slept
}

// TestRetryMatrix sweeps the code → retry-policy contract: each row scripts a
// failure mode and pins how many attempts the client spends on it.
func TestRetryMatrix(t *testing.T) {
	cases := []struct {
		name     string
		status   []int
		code     []string
		attempts int64
		wantErr  string // final APIError code, "" for success
	}{
		{"success first try", []int{200}, []string{""}, 1, ""},
		{"saturated then ok", []int{429, 200}, []string{CodeSaturated, ""}, 2, ""},
		{"internal then ok", []int{500, 200}, []string{CodeInternal, ""}, 2, ""},
		{"deadline then ok", []int{504, 200}, []string{CodeDeadline, ""}, 2, ""},
		{"draining then ok", []int{503, 200}, []string{CodeDraining, ""}, 2, ""},
		{"bad request no retry", []int{400}, []string{CodeBadRequest}, 1, CodeBadRequest},
		{"not found no retry", []int{404}, []string{CodeNotFound}, 1, CodeNotFound},
		{"panic no retry", []int{500}, []string{CodePanic}, 1, CodePanic},
		{"job failed no retry", []int{410}, []string{CodeJobFailed}, 1, CodeJobFailed},
		{"exhausted", []int{500, 500, 500, 500}, []string{CodeInternal, CodeInternal, CodeInternal, CodeInternal}, 4, CodeInternal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := &scripted{status: tc.status, code: tc.code}
			c, _ := testClient(t, sc, nil)
			_, err := c.Run(context.Background(), RunRequest{Name: "paper", Seed: 1})
			if got := sc.calls.Load(); got != tc.attempts {
				t.Fatalf("attempts = %d, want %d", got, tc.attempts)
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var ae *APIError
			if !errors.As(err, &ae) || ae.Code != tc.wantErr {
				t.Fatalf("error = %v, want APIError code %s", err, tc.wantErr)
			}
		})
	}
}

// TestBackoffGrowsAndHonorsRetryAfter pins the backoff schedule: full-jitter
// capped exponential (jitter pinned to 1.0 → exactly the caps), with a
// server-sent Retry-After as the floor.
func TestBackoffGrowsAndHonorsRetryAfter(t *testing.T) {
	sc := &scripted{
		status: []int{500, 500, 500, 200},
		code:   []string{CodeInternal, CodeInternal, CodeInternal, ""},
	}
	c, slept := testClient(t, sc, func(cfg *Config) {
		cfg.BaseBackoff = 10 * time.Millisecond
		cfg.MaxBackoff = 15 * time.Millisecond
		cfg.MaxAttempts = 4
	})
	if _, err := c.Run(context.Background(), RunRequest{Name: "paper"}); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond, 15 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("backoffs = %v, want %d sleeps", *slept, len(want))
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Fatalf("backoff[%d] = %v, want %v (capped exponential)", i, (*slept)[i], d)
		}
	}

	// Retry-After outranks the computed backoff.
	sc2 := &scripted{
		status: []int{429, 200},
		code:   []string{CodeSaturated, ""},
		retry:  []int{2, 0},
	}
	c2, slept2 := testClient(t, sc2, func(cfg *Config) {
		cfg.BaseBackoff = time.Millisecond
		cfg.MaxBackoff = time.Millisecond
	})
	if _, err := c2.Run(context.Background(), RunRequest{Name: "paper"}); err != nil {
		t.Fatal(err)
	}
	if len(*slept2) != 1 || (*slept2)[0] != 2*time.Second {
		t.Fatalf("Retry-After sleeps = %v, want [2s]", *slept2)
	}
}

// TestCircuitBreaker pins the breaker: it opens after the threshold of
// consecutive transient failures, fails fast while open, and a successful
// probe after the cooldown closes it.
func TestCircuitBreaker(t *testing.T) {
	sc := &scripted{status: []int{500}, code: []string{CodeInternal}}
	now := time.Unix(1000, 0)
	c, _ := testClient(t, sc, func(cfg *Config) {
		cfg.MaxAttempts = 3
		cfg.BreakerThreshold = 3
		cfg.BreakerCooldown = 10 * time.Second
		cfg.now = func() time.Time { return now }
	})
	// 3 transient failures inside one call: breaker opens.
	if _, err := c.Run(context.Background(), RunRequest{Name: "paper"}); err == nil {
		t.Fatal("expected exhaustion error")
	}
	calls := sc.calls.Load()
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3", calls)
	}
	// Open breaker: fail fast without touching the wire.
	if _, err := c.Run(context.Background(), RunRequest{Name: "paper"}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker error = %v, want ErrBreakerOpen", err)
	}
	if sc.calls.Load() != calls {
		t.Fatal("open breaker still sent a request")
	}
	// After the cooldown the probe goes through; a success closes the breaker.
	now = now.Add(11 * time.Second)
	sc.status, sc.code = []int{200}, []string{""}
	sc.calls.Store(0)
	if _, err := c.Run(context.Background(), RunRequest{Name: "paper"}); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if _, err := c.Run(context.Background(), RunRequest{Name: "paper"}); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
}

// TestSubmitIdempotencyKey pins that retried submissions resend the SAME
// derived idempotency key — the property that lets the server collapse a
// retry of a lost 202 onto the original job.
func TestSubmitIdempotencyKey(t *testing.T) {
	sc := &scripted{
		status: []int{500, 202},
		code:   []string{CodeInternal, ""},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(sc.calls.Add(1)) - 1
		sc.idems = append(sc.idems, r.Header.Get("Idempotency-Key"))
		if sc.status[min(i, 1)] >= 400 {
			w.WriteHeader(500)
			json.NewEncoder(w).Encode(map[string]string{"code": CodeInternal, "error": "scripted"})
			return
		}
		w.WriteHeader(202)
		json.NewEncoder(w).Encode(JobAccepted{ID: "j000001", State: "pending", Key: "k"})
	}))
	t.Cleanup(ts.Close)
	c := NewWithConfig(Config{
		BaseURL: ts.URL,
		sleep:   func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		jitter:  func() float64 { return 0 },
	})
	acc, err := c.SubmitJob(context.Background(), "run", RunRequest{Name: "paper", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc.ID != "j000001" {
		t.Fatalf("acknowledgment %+v", acc)
	}
	if len(sc.idems) != 2 || sc.idems[0] == "" || sc.idems[0] != sc.idems[1] {
		t.Fatalf("idempotency keys across retries = %v, want two identical non-empty", sc.idems)
	}
}

// TestWaitJobFailure pins that a failed job surfaces as job_failed from
// WaitJob, carrying the terminal status.
func TestWaitJobFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(JobStatus{ID: "j1", State: "failed", Error: "boom", ErrorCode: CodePanic})
	}))
	t.Cleanup(ts.Close)
	c := NewWithConfig(Config{BaseURL: ts.URL})
	st, err := c.WaitJob(context.Background(), "j1")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeJobFailed {
		t.Fatalf("error = %v, want job_failed", err)
	}
	if st.Error != "boom" {
		t.Fatalf("status = %+v, want the failure message", st)
	}
}
