// Package client is pasclient: a retrying HTTP client for the passerve
// simulation service, built around the server's stable error-code contract.
//
// The retry policy is code-driven, never message-driven: transient codes
// (saturated, deadline, internal, draining) and transport errors retry under
// capped exponential backoff with full jitter, honoring any Retry-After the
// server sends; permanent codes (bad_request, not_found, panic, job_failed)
// fail immediately — determinism means resending identical bytes reproduces
// the identical failure. Submissions carry an idempotency key derived from
// the request body, so a retried submit that raced a crash or a timeout
// collapses onto the job the first attempt may already have acknowledged
// instead of minting duplicate work. A consecutive-failure circuit breaker
// fails fast while the server is down and probes with single requests once
// the cooldown expires.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Error codes mirrored from the serving layer's contract (stable; additions
// only). Duplicated rather than imported so the client stays a pure consumer
// of the wire protocol.
const (
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	CodeSaturated  = "saturated"
	CodeDeadline   = "deadline"
	CodePanic      = "panic"
	CodeInternal   = "internal"
	CodeNotReady   = "not_ready"
	CodeJobFailed  = "job_failed"
	CodeDraining   = "draining"
)

// APIError is a decoded 4xx/5xx response.
type APIError struct {
	Status  int    // HTTP status
	Code    string // stable machine-readable code
	Message string // human message
}

func (e *APIError) Error() string {
	return fmt.Sprintf("passerve: %d %s: %s", e.Status, e.Code, e.Message)
}

// Transient reports whether retrying the identical request can succeed.
// Unknown codes default to transient — a new server-side failure mode should
// not strand clients that predate it.
func (e *APIError) Transient() bool {
	switch e.Code {
	case CodeBadRequest, CodeNotFound, CodePanic, CodeJobFailed:
		return false
	}
	return true
}

// ErrBreakerOpen is returned (wrapped) while the circuit breaker is open and
// the cooldown has not expired: the request was not sent.
var ErrBreakerOpen = errors.New("pasclient: circuit breaker open")

// Config tunes a Client. The zero value (plus a BaseURL) is usable.
type Config struct {
	// BaseURL roots every request, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts caps tries per call, first attempt included (0 = 4).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff cap (0 = 100ms); attempt n
	// waits a uniformly jittered fraction of min(BaseBackoff·2ⁿ, MaxBackoff).
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep (0 = 5s).
	MaxBackoff time.Duration
	// AttemptTimeout bounds each individual attempt (0 = 60s); the call's
	// ctx still bounds the whole retry loop.
	AttemptTimeout time.Duration
	// BreakerThreshold opens the breaker after this many consecutive
	// transient failures (0 = 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before allowing a
	// probe (0 = 10s).
	BreakerCooldown time.Duration

	// now/sleep/jitter are test seams; nil uses the real clock and math/rand.
	now    func() time.Time
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func() float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 60 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.sleep == nil {
		c.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if c.jitter == nil {
		c.jitter = rand.Float64
	}
	return c
}

// Client is a retrying passerve client. Safe for concurrent use.
type Client struct {
	cfg Config

	mu         sync.Mutex
	consecFail int       // consecutive transient failures
	openUntil  time.Time // breaker open until (zero = closed)
}

// New builds a Client against baseURL with default tuning.
func New(baseURL string) *Client { return NewWithConfig(Config{BaseURL: baseURL}) }

// NewWithConfig builds a Client from cfg (zero fields defaulted).
func NewWithConfig(cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults()}
}

// --- breaker ---

// admit checks the breaker; an open breaker within its cooldown rejects, one
// past it allows exactly this request through as a probe.
func (c *Client) admit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openUntil.IsZero() {
		return nil
	}
	if c.cfg.now().Before(c.openUntil) {
		return fmt.Errorf("%w until %s", ErrBreakerOpen, c.openUntil.Format(time.RFC3339))
	}
	// Half-open: let this request probe; push the window forward so a failing
	// probe re-opens rather than unleashing a thundering herd.
	c.openUntil = c.cfg.now().Add(c.cfg.BreakerCooldown)
	return nil
}

// observe records an attempt outcome into the breaker state.
func (c *Client) observe(transientFailure bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !transientFailure {
		c.consecFail = 0
		c.openUntil = time.Time{}
		return
	}
	c.consecFail++
	if c.consecFail >= c.cfg.BreakerThreshold {
		c.openUntil = c.cfg.now().Add(c.cfg.BreakerCooldown)
	}
}

// --- core retry loop ---

// do executes one logical call with retries. body is resent verbatim on every
// attempt; headers are applied to each request.
func (c *Client) do(ctx context.Context, method, path string, body []byte, headers map[string]string) ([]byte, http.Header, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt, lastErr); err != nil {
				return nil, nil, err
			}
		}
		if err := c.admit(); err != nil {
			return nil, nil, err
		}
		respBody, respHeader, err := c.attempt(ctx, method, path, body, headers)
		if err == nil {
			c.observe(false)
			return respBody, respHeader, nil
		}
		var ae *APIError
		if errors.As(err, &ae) && !ae.Transient() {
			c.observe(false) // the server answered; the request is just wrong
			return nil, nil, err
		}
		if ctx.Err() != nil {
			return nil, nil, err
		}
		c.observe(true)
		lastErr = err
	}
	return nil, nil, fmt.Errorf("pasclient: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt is one HTTP round trip under the per-attempt timeout.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, headers map[string]string) ([]byte, http.Header, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, nil, decodeAPIError(resp, b)
	}
	return b, resp.Header, nil
}

// decodeAPIError lifts an error response into an APIError, tunneling any
// Retry-After through for the backoff to honor.
func decodeAPIError(resp *http.Response, body []byte) error {
	ae := &APIError{Status: resp.StatusCode, Code: CodeInternal}
	var wire struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &wire) == nil && wire.Code != "" {
		ae.Code, ae.Message = wire.Code, wire.Error
	} else {
		ae.Message = string(body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			return &retryAfterError{APIError: ae, after: time.Duration(secs) * time.Second}
		}
	}
	return ae
}

// retryAfterError decorates an APIError with the server's explicit delay.
type retryAfterError struct {
	*APIError
	after time.Duration
}

func (e *retryAfterError) Unwrap() error { return e.APIError }

// backoff sleeps before retry number attempt (1-based): full-jitter capped
// exponential, with a server-sent Retry-After as the floor when present.
func (c *Client) backoff(ctx context.Context, attempt int, lastErr error) error {
	capd := c.cfg.BaseBackoff << (attempt - 1)
	if capd > c.cfg.MaxBackoff || capd <= 0 {
		capd = c.cfg.MaxBackoff
	}
	d := time.Duration(c.cfg.jitter() * float64(capd))
	var rae *retryAfterError
	if errors.As(lastErr, &rae) && rae.after > d {
		d = rae.after
	}
	return c.cfg.sleep(ctx, d)
}

// --- API surface ---

// RunRequest selects one simulation (POST /v1/runs) or, with Seeds/Reps, a
// replication (POST /v1/replicate). The shapes mirror the server's request
// schema; zero fields are omitted from the wire.
type RunRequest struct {
	Name       string          `json:"name,omitempty"`
	Scenario   json.RawMessage `json:"scenario,omitempty"`
	Protocol   string          `json:"protocol,omitempty"`
	Seed       int64           `json:"seed,omitempty"`
	Seeds      []int64         `json:"seeds,omitempty"`
	Reps       int             `json:"reps,omitempty"`
	TimeoutSec float64         `json:"timeoutSec,omitempty"`
	Shards     int             `json:"shards,omitempty"`
}

// Run executes POST /v1/runs and returns the raw response body (the server's
// RunResponse JSON, byte-identical across identical requests).
func (c *Client) Run(ctx context.Context, req RunRequest) (json.RawMessage, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	out, _, err := c.do(ctx, "POST", "/v1/runs", body, nil)
	return out, err
}

// Replicate executes POST /v1/replicate.
func (c *Client) Replicate(ctx context.Context, req RunRequest) (json.RawMessage, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	out, _, err := c.do(ctx, "POST", "/v1/replicate", body, nil)
	return out, err
}

// JobAccepted is the server's 202 acknowledgment.
type JobAccepted struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Key   string `json:"key"`
}

// JobStatus is one GET /v1/jobs/{id} snapshot.
type JobStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Progress  float64 `json:"progress"`
	Key       string  `json:"key"`
	Error     string  `json:"error,omitempty"`
	ErrorCode string  `json:"errorCode,omitempty"`
}

// jobRequest is RunRequest plus the job mode.
type jobRequest struct {
	Mode string `json:"mode,omitempty"`
	RunRequest
}

// SubmitJob submits an async job (mode "run" or "replicate"; empty = run).
// The request body's SHA-256 rides as the Idempotency-Key, so retried
// submissions — including ones whose first attempt was acknowledged but whose
// response was lost — collapse onto one server-side job instead of two.
func (c *Client) SubmitJob(ctx context.Context, mode string, req RunRequest) (JobAccepted, error) {
	body, err := json.Marshal(jobRequest{Mode: mode, RunRequest: req})
	if err != nil {
		return JobAccepted{}, err
	}
	sum := sha256.Sum256(body)
	headers := map[string]string{"Idempotency-Key": hex.EncodeToString(sum[:16])}
	out, _, err := c.do(ctx, "POST", "/v1/jobs", body, headers)
	if err != nil {
		return JobAccepted{}, err
	}
	var acc JobAccepted
	if err := json.Unmarshal(out, &acc); err != nil {
		return JobAccepted{}, fmt.Errorf("pasclient: decoding acknowledgment: %w", err)
	}
	return acc, nil
}

// JobStatusOnce fetches one status snapshot.
func (c *Client) JobStatusOnce(ctx context.Context, id string) (JobStatus, error) {
	out, _, err := c.do(ctx, "GET", "/v1/jobs/"+id, nil, nil)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		return JobStatus{}, fmt.Errorf("pasclient: decoding status: %w", err)
	}
	return st, nil
}

// jobPollInterval paces WaitJob's status polling.
const jobPollInterval = 50 * time.Millisecond

// WaitJob polls until the job settles, returning the terminal status. A
// failed job returns the status AND an *APIError with code job_failed, so
// callers can handle both uniformly with the other paths.
func (c *Client) WaitJob(ctx context.Context, id string) (JobStatus, error) {
	for {
		st, err := c.JobStatusOnce(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		switch st.State {
		case "done":
			return st, nil
		case "failed":
			return st, &APIError{Status: http.StatusGone, Code: CodeJobFailed, Message: st.Error}
		}
		if err := c.cfg.sleep(ctx, jobPollInterval); err != nil {
			return st, err
		}
	}
}

// JobResult fetches a finished job's body (byte-identical to the synchronous
// endpoint's response for the same work).
func (c *Client) JobResult(ctx context.Context, id string) (json.RawMessage, error) {
	out, _, err := c.do(ctx, "GET", "/v1/jobs/"+id+"/result", nil, nil)
	return out, err
}

// RunJob is the convenience composition: submit, wait, fetch.
func (c *Client) RunJob(ctx context.Context, mode string, req RunRequest) (json.RawMessage, error) {
	acc, err := c.SubmitJob(ctx, mode, req)
	if err != nil {
		return nil, err
	}
	if _, err := c.WaitJob(ctx, acc.ID); err != nil {
		return nil, err
	}
	return c.JobResult(ctx, acc.ID)
}
