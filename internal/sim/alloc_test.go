package sim

import "testing"

// The kernel promises zero steady-state allocations: once the arena, heap and
// freelist have grown to the simulation's working set, Schedule/Step/Cancel
// recycle slots instead of allocating. These regression tests pin that
// property so future changes can't silently reintroduce per-event garbage.

func TestScheduleStepZeroAllocsSteadyState(t *testing.T) {
	k := NewKernel()
	h := func(*Kernel) {}
	// Warm up: grow the arena/heap/freelist past the loop's working set.
	for i := 0; i < 64; i++ {
		k.Schedule(Time(i%7), h)
	}
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		k.Schedule(1, h)
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state Schedule+Step allocates %g allocs/op, want 0", allocs)
	}
}

func TestScheduleCancelZeroAllocsSteadyState(t *testing.T) {
	k := NewKernel()
	h := func(*Kernel) {}
	for i := 0; i < 64; i++ {
		k.Schedule(1, h)
	}
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		id := k.Schedule(1, h)
		k.Cancel(id)
		k.Schedule(2, h) // force the dead slot through a lazy pop
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state Schedule+Cancel+Step allocates %g allocs/op, want 0", allocs)
	}
}

func TestTimerResetZeroAllocsSteadyState(t *testing.T) {
	k := NewKernel()
	tm := NewTimer(k)
	h := func(*Kernel) {}
	tm.Reset(1, h) // first arm builds the trampoline
	tm.Stop()
	for i := 0; i < 64; i++ {
		k.Schedule(1, func(*Kernel) {})
	}
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(1, h)
		tm.Stop()
	})
	if allocs != 0 {
		t.Errorf("steady-state Timer Reset+Stop allocates %g allocs/op, want 0", allocs)
	}
}
