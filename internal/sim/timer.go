package sim

// Timer is a restartable one-shot timer bound to a kernel, analogous to
// time.Timer but in virtual time. Protocol agents use it for wake-ups and
// detection timeouts that are frequently re-armed or cancelled.
type Timer struct {
	k       *Kernel
	id      EventID
	armed   bool
	Expires Time // absolute expiry time while armed
}

// NewTimer returns an unarmed timer bound to k.
func NewTimer(k *Kernel) *Timer { return &Timer{k: k} }

// Armed reports whether the timer is currently pending.
func (t *Timer) Armed() bool { return t.armed }

// Reset (re)arms the timer to fire h after delay, cancelling any previous
// schedule.
func (t *Timer) Reset(delay Time, h Handler) {
	t.Stop()
	t.Expires = t.k.Now() + delay
	t.armed = true
	t.id = t.k.Schedule(delay, func(k *Kernel) {
		t.armed = false
		h(k)
	})
}

// ResetAt (re)arms the timer to fire h at absolute time at.
func (t *Timer) ResetAt(at Time, h Handler) {
	t.Stop()
	t.Expires = at
	t.armed = true
	t.id = t.k.ScheduleAt(at, func(k *Kernel) {
		t.armed = false
		h(k)
	})
}

// Stop cancels the timer if armed, reporting whether it was armed.
func (t *Timer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.k.Cancel(t.id)
}
