package sim

// Timer is a restartable one-shot timer bound to a kernel, analogous to
// time.Timer but in virtual time. Protocol agents use it for wake-ups and
// detection timeouts that are frequently re-armed or cancelled. The timer
// reuses one internal trampoline closure across re-arms, so Reset/Stop on the
// simulation hot path allocate nothing (as long as the caller also reuses its
// handler closure).
type Timer struct {
	k       *Kernel
	id      EventID
	armed   bool
	Expires Time // absolute expiry time while armed

	h    Handler // handler of the current arm
	fire Handler // cached trampoline scheduled on the kernel
}

// NewTimer returns an unarmed timer bound to k.
func NewTimer(k *Kernel) *Timer { return &Timer{k: k} }

// Armed reports whether the timer is currently pending.
func (t *Timer) Armed() bool { return t.armed }

// arm schedules the cached trampoline at absolute time at.
func (t *Timer) arm(at Time, h Handler) {
	t.Stop()
	t.Expires = at
	t.armed = true
	t.h = h
	if t.fire == nil {
		t.fire = func(k *Kernel) {
			t.armed = false
			t.h(k)
		}
	}
	t.id = t.k.ScheduleAt(at, t.fire)
}

// Reset (re)arms the timer to fire h after delay, cancelling any previous
// schedule.
func (t *Timer) Reset(delay Time, h Handler) { t.arm(t.k.Now()+delay, h) }

// ResetAt (re)arms the timer to fire h at absolute time at.
func (t *Timer) ResetAt(at Time, h Handler) { t.arm(at, h) }

// Stop cancels the timer if armed, reporting whether it was armed.
func (t *Timer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.k.Cancel(t.id)
}
