package sim

// Timer is a restartable one-shot timer bound to a kernel, analogous to
// time.Timer but in virtual time. Protocol agents use it for wake-ups and
// detection timeouts that are frequently re-armed or cancelled. The timer
// schedules a shared package-level trampoline with itself as the event
// argument, so arming allocates nothing — not even the one-time closure the
// previous design paid per timer — and Reset/Stop on the simulation hot path
// stay allocation-free as long as the caller also reuses its handler (or uses
// ResetArg with a long-lived ArgHandler).
type Timer struct {
	k       *Kernel
	id      EventID
	armed   bool
	Expires Time // absolute expiry time while armed

	h   Handler    // handler of the current arm (closure form)
	ah  ArgHandler // handler of the current arm (arg form); arg rides below
	arg any
}

// NewTimer returns an unarmed timer bound to k.
func NewTimer(k *Kernel) *Timer { return &Timer{k: k} }

// Bind initializes a zero-value timer in place — the value-type counterpart
// of NewTimer, used by slab-allocated owners (node.Node, the protocol agents)
// that embed timers instead of pointing at heap-allocated ones. Rebinding an
// armed timer panics: the pending event belongs to the old kernel.
func (t *Timer) Bind(k *Kernel) {
	if t.armed {
		panic("sim: Bind on an armed timer")
	}
	t.k = k
}

// Armed reports whether the timer is currently pending.
func (t *Timer) Armed() bool { return t.armed }

// timerFire is the shared trampoline every armed timer schedules; the event
// argument is the timer itself, so no per-timer closure exists.
func timerFire(k *Kernel, arg any) {
	t := arg.(*Timer)
	t.armed = false
	if t.ah != nil {
		t.ah(k, t.arg)
		return
	}
	t.h(k)
}

// arm schedules the shared trampoline at absolute time at.
func (t *Timer) arm(at Time) {
	t.Stop()
	t.Expires = at
	t.armed = true
	t.id = t.k.ScheduleArgAt(at, timerFire, t)
}

// Reset (re)arms the timer to fire h after delay, cancelling any previous
// schedule.
func (t *Timer) Reset(delay Time, h Handler) { t.ResetAt(t.k.Now()+delay, h) }

// ResetAt (re)arms the timer to fire h at absolute time at.
func (t *Timer) ResetAt(at Time, h Handler) {
	t.h, t.ah, t.arg = h, nil, nil
	t.arm(at)
}

// ResetArg (re)arms the timer to fire h(k, arg) after delay. A long-lived
// ArgHandler with a pointer-shaped arg makes re-arms entirely closure-free:
// protocol agents pass themselves as the argument instead of capturing state.
func (t *Timer) ResetArg(delay Time, h ArgHandler, arg any) {
	t.ResetAtArg(t.k.Now()+delay, h, arg)
}

// ResetAtArg (re)arms the timer to fire h(k, arg) at absolute time at.
func (t *Timer) ResetAtArg(at Time, h ArgHandler, arg any) {
	t.h, t.ah, t.arg = nil, h, arg
	t.arm(at)
}

// Stop cancels the timer if armed, reporting whether it was armed.
func (t *Timer) Stop() bool {
	if !t.armed {
		return false
	}
	t.armed = false
	return t.k.Cancel(t.id)
}
