package sim

import "testing"

// Arg-carrying events back the batched broadcast-delivery path: one
// long-lived ArgHandler dispatched against many pooled records. These tests
// pin the semantics (ordering, cancellation, arg plumbing) and the
// zero-allocation property for pointer-shaped args.

func TestScheduleArgDeliversArg(t *testing.T) {
	k := NewKernel()
	type record struct{ hits int }
	r := &record{}
	k.ScheduleArg(1, func(_ *Kernel, arg any) {
		arg.(*record).hits++
	}, r)
	k.Run()
	if r.hits != 1 {
		t.Errorf("hits = %d, want 1", r.hits)
	}
}

func TestScheduleArgOrderingWithPlainEvents(t *testing.T) {
	// Arg events obey the same (time, seq) FIFO order as plain events.
	k := NewKernel()
	var order []string
	tag := func(_ *Kernel, arg any) { order = append(order, arg.(string)) }
	k.Schedule(1, func(*Kernel) { order = append(order, "plain-a") })
	k.ScheduleArg(1, tag, "arg-b")
	k.Schedule(1, func(*Kernel) { order = append(order, "plain-c") })
	k.ScheduleArg(0.5, tag, "arg-first")
	k.Run()
	want := []string{"arg-first", "plain-a", "arg-b", "plain-c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleArgCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	id := k.ScheduleArg(1, func(*Kernel, any) { fired = true }, nil)
	if !k.Cancel(id) {
		t.Fatal("pending arg event not cancellable")
	}
	if k.Cancel(id) {
		t.Error("double cancel succeeded")
	}
	k.Run()
	if fired {
		t.Error("cancelled arg event fired")
	}
}

func TestScheduleArgNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil ArgHandler did not panic")
		}
	}()
	NewKernel().ScheduleArg(1, nil, 7)
}

func TestScheduleArgZeroAllocsSteadyState(t *testing.T) {
	// A pointer-shaped arg boxes into the interface without allocating, so
	// the batched delivery path stays allocation-free at steady state.
	k := NewKernel()
	type record struct{ n int }
	r := &record{}
	h := func(_ *Kernel, arg any) { arg.(*record).n++ }
	for i := 0; i < 64; i++ {
		k.ScheduleArg(Time(i%5), h, r)
	}
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		k.ScheduleArg(1, h, r)
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state ScheduleArg+Step allocates %g allocs/op, want 0", allocs)
	}
}

func TestArgEventRetireDropsArgReference(t *testing.T) {
	// After firing, the slot must not pin the arg: reschedule the slot with a
	// plain handler and confirm the old arg is gone from the event.
	k := NewKernel()
	k.ScheduleArg(1, func(*Kernel, any) {}, &struct{ x [64]byte }{})
	k.Run()
	// The freed slot is reused by the next schedule.
	k.Schedule(1, func(*Kernel) {})
	for i := range k.arena {
		if k.arena[i].arg != nil && !k.arena[i].pending() {
			t.Fatalf("retired slot %d still references its arg", i)
		}
	}
	k.Run()
}
