package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// execRec is one executed event as observed by the tie tests: its execution
// time, its (resolved) serial sequence number and a human label.
type execRec struct {
	at    Time
	seq   uint64
	label string
	shard int
}

// tieProgram schedules the adversarial same-timestamp workload used by
// TestCrossShardTieOrder on one kernel per "node": every root fires at the
// SAME virtual time on every shard, every intermediate at the same time,
// every leaf at the same time — so nothing but sequence numbers decides the
// global order. Roots are scheduled in global node order (as network
// construction does); each root schedules an intermediate inside its own
// window and two descendants beyond it, exercising provisional in-window
// ordering, barrier re-keying and cross-window parent resolution at once.
func tieProgram(nodes int, kernelOf func(i int) (*Kernel, int), record func(*Kernel, int, string)) {
	for i := 0; i < nodes; i++ {
		k, shard := kernelOf(i)
		i := i
		k.ScheduleAt(1.0, func(k *Kernel) {
			record(k, shard, label("root", i))
			// Same window as the root (1.0 + 0.25 < window end): executes with
			// a provisional seq when sharded.
			k.Schedule(0.25, func(k *Kernel) {
				record(k, shard, label("mid", i))
				k.Schedule(1.5, func(k *Kernel) {
					record(k, shard, label("leaf", i))
				})
			})
			// Next window (1.0 + 1.5 ≥ window end): re-keyed at the barrier
			// before executing.
			k.Schedule(1.5, func(k *Kernel) {
				record(k, shard, label("far", i))
			})
		})
	}
}

func label(kind string, i int) string {
	return kind + "-" + string(rune('0'+i))
}

// TestCrossShardTieOrder pins the canonical cross-shard tie-break: equal-time
// events from different shards must execute in the order the serial kernel
// would have run them — global serial sequence, not per-shard counters or
// shard interleaving. The workload makes every timestamp collide across
// shards, so any per-shard sequencing shortcut changes the order and fails.
func TestCrossShardTieOrder(t *testing.T) {
	const nodes = 6
	const W = 1.0

	// Serial reference: execution order is the ground truth.
	var want []string
	{
		k := NewKernel()
		tieProgram(nodes,
			func(i int) (*Kernel, int) { return k, 0 },
			func(_ *Kernel, _ int, l string) { want = append(want, l) })
		k.Run()
	}

	for _, shards := range []int{1, 2, 3} {
		g := NewShardGroup(shards)
		var recs []execRec
		tieProgram(nodes,
			func(i int) (*Kernel, int) { return g.Shard(i % shards), i % shards },
			func(k *Kernel, shard int, l string) {
				recs = append(recs, execRec{at: k.Now(), seq: k.lastParentSeq(), label: l, shard: shard})
			})
		g.BeginWindows()

		resolvedTo := 0
		for {
			minAt, any := Time(0), false
			for i := 0; i < shards; i++ {
				if at, ok := g.Shard(i).NextEventTime(); ok && (!any || at < minAt) {
					minAt, any = at, true
				}
			}
			if !any {
				break
			}
			for i := 0; i < shards; i++ {
				g.Shard(i).RunWindow(minAt + W)
			}
			g.EndWindow()
			// Events executed this window may have carried provisional seqs;
			// resolve them while the barrier's assignments are still valid.
			for ; resolvedTo < len(recs); resolvedTo++ {
				r := &recs[resolvedTo]
				r.seq = g.Resolve(r.shard, r.seq)
			}
		}

		sort.Slice(recs, func(a, b int) bool {
			if recs[a].at != recs[b].at {
				return recs[a].at < recs[b].at
			}
			return recs[a].seq < recs[b].seq
		})
		if len(recs) != len(want) {
			t.Fatalf("shards=%d: executed %d events, serial executed %d", shards, len(recs), len(want))
		}
		for i := range recs {
			if recs[i].label != want[i] {
				t.Fatalf("shards=%d: position %d is %q (at=%v seq=%d), serial order has %q",
					shards, i, recs[i].label, recs[i].at, recs[i].seq, want[i])
			}
			if i > 0 && recs[i].at == recs[i-1].at && recs[i].seq == recs[i-1].seq {
				t.Fatalf("shards=%d: duplicate key (at=%v seq=%d) for %q and %q",
					shards, recs[i].at, recs[i].seq, recs[i-1].label, recs[i].label)
			}
		}
	}
}

// lastParentSeq exposes the executing event's own (possibly provisional)
// sequence number for the tie test's records.
func (k *Kernel) lastParentSeq() uint64 { return k.ws.parentSeq }

// TestInjectArgAtAliasesSerialPosition pins the cross-shard fan-out contract:
// an event injected on another shard with a resolved LastSeq reference
// executes at exactly the same (time, seq) key as the locally scheduled
// sub-fan-out it fragments, and before any later-sequenced local event at
// the same timestamp.
func TestInjectArgAtAliasesSerialPosition(t *testing.T) {
	g := NewShardGroup(2)
	a, b := g.Shard(0), g.Shard(1)

	var seqs []uint64
	a.ScheduleAt(1.0, func(k *Kernel) {
		// Local sub-fan-out of a conceptual broadcast...
		k.ScheduleArgAt(2.0, func(k *Kernel, _ any) {}, nil)
		seqs = append(seqs, k.LastSeq())
		// ...and an unrelated later schedule at the same delivery time.
		k.ScheduleArgAt(2.0, func(k *Kernel, _ any) {}, nil)
		seqs = append(seqs, k.LastSeq())
	})
	g.BeginWindows()

	a.RunWindow(1.5)
	b.RunWindow(1.5)
	g.EndWindow()

	fan := g.Resolve(0, seqs[0])
	later := g.Resolve(0, seqs[1])
	if fan >= later {
		t.Fatalf("fan-out seq %d not before later schedule %d", fan, later)
	}
	var order []string
	b.InjectArgAt(2.0, fan, func(k *Kernel, _ any) {
		if k.Now() != 2.0 {
			t.Fatalf("injected fragment ran at %v", k.Now())
		}
		order = append(order, "remote-fragment")
	}, nil)
	b.ScheduleArgAt(2.0, func(k *Kernel, _ any) { order = append(order, "ignored") }, nil)
	// The remote fragment must run before shard B's own later-sequenced event
	// at the same timestamp.
	b.RunWindow(3.0)
	if len(order) != 2 || order[0] != "remote-fragment" {
		t.Fatalf("execution order = %v, want remote-fragment first", order)
	}
}

// TestReserveSeqConsumesSerialPosition pins ReserveSeq: a broadcast whose
// surviving receivers are all remote still consumes exactly one serial
// position (the serial kernel schedules one fan-out event for it), keeping
// every subsequent sequence number aligned with the serial run.
func TestReserveSeqConsumesSerialPosition(t *testing.T) {
	g := NewShardGroup(2)
	a := g.Shard(0)
	var reserved, next uint64
	a.ScheduleAt(1.0, func(k *Kernel) {
		reserved = k.ReserveSeq()
		k.ScheduleArgAt(2.0, func(k *Kernel, _ any) {}, nil)
		next = k.LastSeq()
	})
	g.BeginWindows()
	a.RunWindow(1.5)
	g.Shard(1).RunWindow(1.5)
	g.EndWindow()
	r, n := g.Resolve(0, reserved), g.Resolve(0, next)
	if n != r+1 {
		t.Fatalf("reserved seq %d, next schedule %d; want consecutive", r, n)
	}
}

// TestArenaSlotGuard pins the int32 arena overflow guard: growing the arena
// past the slot-index ceiling must panic loudly instead of wrapping the
// int32 slot index onto an existing slot. The cap is lowered so the guard
// path runs without scheduling 2^31 events.
func TestArenaSlotGuard(t *testing.T) {
	defer func(m int) { maxArenaSlots = m }(maxArenaSlots)
	maxArenaSlots = 4

	k := NewKernel()
	for i := 0; i < 4; i++ {
		k.Schedule(1, func(*Kernel) {})
	}
	defer func() {
		if recover() == nil {
			t.Error("arena growth past the slot cap did not panic")
		}
	}()
	k.Schedule(1, func(*Kernel) {})
}

// TestHeapStressTenMillionPending fills the queue to ~10^7 simultaneously
// pending events — the regime a sharded scale-1m run reaches — and drains it,
// checking the (time, seq) order invariant the whole simulator rests on.
func TestHeapStressTenMillionPending(t *testing.T) {
	if testing.Short() {
		t.Skip("10^7-event heap stress skipped in short mode")
	}
	const n = 10_000_000
	k := NewKernel()
	rng := rand.New(rand.NewSource(41))
	var (
		lastAt   Time
		lastIdx  int64 = -1
		executed int
	)
	h := ArgHandler(func(k *Kernel, arg any) {
		at := k.Now()
		idx := *arg.(*int64)
		if at < lastAt {
			t.Fatalf("event %d ran at %v after %v", executed, at, lastAt)
		}
		// FIFO among ties: equal-time events must drain in schedule order.
		if at == lastAt && idx <= lastIdx {
			t.Fatalf("equal-time events out of schedule order at %v: %d after %d", at, idx, lastIdx)
		}
		lastAt, lastIdx = at, idx
		executed++
	})
	// Coarse-grained times force deep seq tie chains; fine-grained ones
	// exercise sift depth. Mix both. Args point into one slab so boxing
	// stays allocation-free.
	idxs := make([]int64, n)
	for i := 0; i < n; i++ {
		idxs[i] = int64(i)
		var at Time
		if i%4 == 0 {
			at = Time(rng.Intn(64))
		} else {
			at = rng.Float64() * 64
		}
		k.ScheduleArgAt(at, h, &idxs[i])
	}
	if k.Pending() != n {
		t.Fatalf("pending = %d, want %d", k.Pending(), n)
	}
	k.Run()
	if executed != n {
		t.Fatalf("executed %d of %d events", executed, n)
	}
}

// TestShardGroupAccessorsAndGuards pins the small shard-group surface: the
// accessors, the construction-mode transition and the loud misuse panics.
func TestShardGroupAccessorsAndGuards(t *testing.T) {
	g := NewShardGroup(3)
	if g.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", g.Shards())
	}
	if !g.Direct() {
		t.Fatal("new group must start in direct mode")
	}
	g.BeginWindows()
	if g.Direct() {
		t.Fatal("BeginWindows left the group in direct mode")
	}
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("NewShardGroup(0)", func() { NewShardGroup(0) })
	expectPanic("EndWindow in direct mode", func() { NewShardGroup(1).EndWindow() })
	plain := NewKernel()
	expectPanic("ReserveSeq on a non-sharded kernel", func() { plain.ReserveSeq() })
	expectPanic("InjectArgAt on a non-sharded kernel", func() {
		plain.InjectArgAt(1, 0, func(*Kernel, any) {}, nil)
	})
	expectPanic("InjectArgAt nil handler", func() {
		g.Shard(0).InjectArgAt(1, 0, nil, nil)
	})
}

// TestSetFanKeyDiscipline pins the fan-key contract: a no-op on serial
// kernels and in direct mode, key-space alignment in windowed mode, and a
// loud panic if receivers are delivered out of row order.
func TestSetFanKeyDiscipline(t *testing.T) {
	NewKernel().SetFanKey(5) // serial kernel: no-op

	g := NewShardGroup(1)
	k := g.Shard(0)
	k.SetFanKey(5) // direct mode: no-op
	if k.ws.kNext != 0 {
		t.Fatalf("direct-mode SetFanKey moved kNext to %d", k.ws.kNext)
	}
	g.BeginWindows()
	k.ScheduleAt(1, func(k *Kernel) {
		k.SetFanKey(2)
		k.Schedule(1, func(*Kernel) {})
		if k.ws.kNext != 2<<fanKeyShift+1 {
			t.Errorf("kNext = %d after fan-key 2 + one schedule", k.ws.kNext)
		}
		defer func() {
			if recover() == nil {
				t.Error("fan-key regression did not panic")
			}
		}()
		k.SetFanKey(1)
	})
	for k.Step() {
	}
}

// TestNextEventTimeSkipsCancelled pins that NextEventTime discards cancelled
// heap entries (recycling their slots) instead of reporting their times.
func TestNextEventTimeSkipsCancelled(t *testing.T) {
	g := NewShardGroup(1)
	k := g.Shard(0)
	early := k.ScheduleAt(1, func(*Kernel) {})
	k.ScheduleAt(2, func(*Kernel) {})
	k.Cancel(early)
	at, ok := k.NextEventTime()
	if !ok || at != 2 {
		t.Fatalf("NextEventTime = (%g, %v), want (2, true)", at, ok)
	}
	if _, ok := NewKernel().NextEventTime(); ok {
		t.Fatal("empty kernel reported a pending event")
	}
}
