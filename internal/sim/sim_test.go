package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(3, func(*Kernel) { order = append(order, 3) })
	k.Schedule(1, func(*Kernel) { order = append(order, 1) })
	k.Schedule(2, func(*Kernel) { order = append(order, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if k.Now() != 3 {
		t.Errorf("final time = %v", k.Now())
	}
	if k.Processed() != 3 {
		t.Errorf("processed = %d", k.Processed())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func(*Kernel) { order = append(order, i) })
	}
	k.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("simultaneous events not FIFO: %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Schedule(1, func(k *Kernel) {
		times = append(times, k.Now())
		k.Schedule(1, func(k *Kernel) {
			times = append(times, k.Now())
		})
	})
	k.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Errorf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	id := k.Schedule(1, func(*Kernel) { ran = true })
	if !k.Cancel(id) {
		t.Error("Cancel returned false for pending event")
	}
	if k.Cancel(id) {
		t.Error("double Cancel returned true")
	}
	k.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d", k.Pending())
	}
}

func TestCancelAfterRun(t *testing.T) {
	k := NewKernel()
	id := k.Schedule(1, func(*Kernel) {})
	k.Run()
	if k.Cancel(id) {
		t.Error("Cancel of executed event returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	k := NewKernel()
	var order []int
	var ids []EventID
	for i := 0; i < 10; i++ {
		i := i
		ids = append(ids, k.Schedule(Time(i+1), func(*Kernel) { order = append(order, i) }))
	}
	// Cancel events 3, 5, 7.
	for _, i := range []int{3, 5, 7} {
		if !k.Cancel(ids[i]) {
			t.Fatalf("cancel %d failed", i)
		}
	}
	k.Run()
	want := []int{0, 1, 2, 4, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		k.ScheduleAt(at, func(*Kernel) { ran = append(ran, at) })
	}
	k.RunUntil(3.5)
	if len(ran) != 3 {
		t.Fatalf("ran %d events, want 3", len(ran))
	}
	if k.Now() != 3.5 {
		t.Errorf("Now = %v, want horizon 3.5", k.Now())
	}
	// Continue to the end.
	k.RunUntil(100)
	if len(ran) != 5 {
		t.Errorf("ran %d events total, want 5", len(ran))
	}
	if k.Now() != 100 {
		t.Errorf("Now = %v, want 100", k.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	k := NewKernel()
	ran := false
	k.ScheduleAt(5, func(*Kernel) { ran = true })
	k.RunUntil(5)
	if !ran {
		t.Error("event exactly at horizon did not run")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.ScheduleAt(10, func(*Kernel) {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	k.ScheduleAt(5, func(*Kernel) {})
}

func TestScheduleNaNPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("NaN schedule did not panic")
		}
	}()
	k.ScheduleAt(math.NaN(), func(*Kernel) {})
}

func TestHorizonPastPanics(t *testing.T) {
	k := NewKernel()
	k.ScheduleAt(10, func(*Kernel) {})
	k.RunUntil(20)
	defer func() {
		if recover() == nil {
			t.Error("past horizon did not panic")
		}
	}()
	k.RunUntil(5)
}

func TestTicker(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	stop := k.Ticker(2, func(k *Kernel) { ticks = append(ticks, k.Now()) })
	k.Schedule(7, func(*Kernel) { stop() })
	k.Run()
	want := []Time{2, 4, 6}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	k := NewKernel()
	stop := k.Ticker(1, func(*Kernel) {})
	stop()
	stop() // must not panic
	k.RunUntil(5)
	if k.Processed() != 0 {
		t.Errorf("stopped ticker still ran %d events", k.Processed())
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("zero ticker period did not panic")
		}
	}()
	k.Ticker(0, func(*Kernel) {})
}

func TestTracer(t *testing.T) {
	k := NewKernel()
	var seen []Time
	k.SetTracer(func(at Time) { seen = append(seen, at) })
	k.Schedule(1, func(*Kernel) {})
	k.Schedule(2, func(*Kernel) {})
	k.Run()
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("tracer saw %v", seen)
	}
	k.SetTracer(nil)
	k.Schedule(1, func(*Kernel) {})
	k.Run() // must not panic
}

func TestTimer(t *testing.T) {
	k := NewKernel()
	tm := NewTimer(k)
	fired := 0
	tm.Reset(5, func(*Kernel) { fired++ })
	if !tm.Armed() {
		t.Error("timer not armed after Reset")
	}
	if tm.Expires != 5 {
		t.Errorf("Expires = %v", tm.Expires)
	}
	// Re-arm before firing: only the second schedule runs.
	tm.Reset(10, func(*Kernel) { fired += 100 })
	k.Run()
	if fired != 100 {
		t.Errorf("fired = %d, want 100", fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel()
	tm := NewTimer(k)
	fired := false
	tm.Reset(1, func(*Kernel) { fired = true })
	if !tm.Stop() {
		t.Error("Stop of armed timer returned false")
	}
	if tm.Stop() {
		t.Error("Stop of unarmed timer returned true")
	}
	k.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerResetAt(t *testing.T) {
	k := NewKernel()
	tm := NewTimer(k)
	var at Time = -1
	tm.ResetAt(7, func(k *Kernel) { at = k.Now() })
	k.Run()
	if at != 7 {
		t.Errorf("ResetAt fired at %v", at)
	}
}

func TestTimerBind(t *testing.T) {
	k := NewKernel()
	var tm Timer // zero-value, slab-style
	tm.Bind(k)
	fired := false
	tm.Reset(3, func(*Kernel) { fired = true })
	k.Run()
	if !fired {
		t.Error("bound timer never fired")
	}
	// Rebinding an unarmed timer is legal (e.g. slab reuse)...
	tm.Bind(NewKernel())
	// ...but rebinding while armed must panic: the pending event belongs to
	// the old kernel.
	tm.Bind(k)
	tm.Reset(1, func(*Kernel) {})
	defer func() {
		if recover() == nil {
			t.Error("Bind of an armed timer did not panic")
		}
	}()
	tm.Bind(NewKernel())
}

func TestTimerResetArg(t *testing.T) {
	k := NewKernel()
	tm := NewTimer(k)
	type box struct{ fired int }
	b := &box{}
	h := func(_ *Kernel, arg any) { arg.(*box).fired++ }
	tm.ResetArg(5, h, b)
	if !tm.Armed() || tm.Expires != 5 {
		t.Errorf("armed=%v expires=%v", tm.Armed(), tm.Expires)
	}
	// Re-arming with a plain handler replaces the arg form entirely.
	tm.Reset(2, func(*Kernel) { b.fired += 100 })
	// ...and re-arming back to the arg form replaces the plain handler.
	tm.ResetAtArg(9, h, b)
	k.Run()
	if b.fired != 1 {
		t.Errorf("fired = %d, want exactly one arg-handler firing", b.fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerResetArgZeroAllocs(t *testing.T) {
	k := NewKernel()
	tm := NewTimer(k)
	h := func(*Kernel, any) {}
	arg := &struct{}{}
	tm.ResetArg(1, h, arg)
	tm.Stop()
	for i := 0; i < 64; i++ {
		k.Schedule(1, func(*Kernel) {})
	}
	k.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.ResetArg(1, h, arg)
		tm.Stop()
	})
	if allocs != 0 {
		t.Errorf("steady-state Timer ResetArg+Stop allocates %g allocs/op, want 0", allocs)
	}
}

func TestQuickEventsExecuteInTimeOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var times []Time
		for _, d := range delays {
			k.Schedule(Time(d), func(k *Kernel) { times = append(times, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCancelExactlyRemoves(t *testing.T) {
	f := func(delays []uint8, cancelMask []bool) bool {
		k := NewKernel()
		ran := make(map[int]bool)
		ids := make([]EventID, len(delays))
		for i, d := range delays {
			i := i
			ids[i] = k.Schedule(Time(d), func(*Kernel) { ran[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range delays {
			if i < len(cancelMask) && cancelMask[i] {
				k.Cancel(ids[i])
				cancelled[i] = true
			}
		}
		k.Run()
		for i := range delays {
			if cancelled[i] == ran[i] {
				return false // cancelled must not run; uncancelled must run
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManyEventsStress(t *testing.T) {
	k := NewKernel()
	n := 50000
	for i := 0; i < n; i++ {
		k.Schedule(Time(i%977)+Time(i%31)*0.01, func(*Kernel) {})
	}
	k.Run()
	if k.Processed() != uint64(n) {
		t.Errorf("processed %d, want %d", k.Processed(), n)
	}
}

func TestQuickRunUntilChunkingEquivalent(t *testing.T) {
	// Splitting a run into arbitrary RunUntil chunks must execute the same
	// events at the same times as one big run.
	f := func(delays []uint8, cuts []uint8) bool {
		run := func(chunked bool) []Time {
			k := NewKernel()
			var times []Time
			for _, d := range delays {
				k.Schedule(Time(d)+0.5, func(kk *Kernel) { times = append(times, kk.Now()) })
			}
			if !chunked {
				k.RunUntil(300)
				return times
			}
			at := Time(0)
			for _, c := range cuts {
				at += Time(c % 50)
				if at > 300 {
					break
				}
				k.RunUntil(at)
			}
			k.RunUntil(300)
			return times
		}
		a := run(false)
		b := run(true)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTickerCountMatchesPeriod(t *testing.T) {
	f := func(rawPeriod uint8, rawHorizon uint8) bool {
		period := Time(rawPeriod%20) + 1
		horizon := Time(rawHorizon) + 1
		k := NewKernel()
		count := 0
		k.Ticker(period, func(*Kernel) { count++ })
		k.RunUntil(horizon)
		want := int(horizon / period)
		return count == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
