package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// The tests in this file drive the arena/4-ary-heap kernel against a naive
// sorted-slice reference model: random interleavings of Schedule, Cancel and
// Step must execute events in exact (time, FIFO-sequence) order and keep
// Pending() in lockstep with the model.

// refEvent is one pending event of the reference model.
type refEvent struct {
	at  Time
	ord int // scheduling order, the FIFO tie-breaker
	id  EventID
}

// refMin returns the index of the earliest (at, ord) pending event, or -1.
func refMin(pending []refEvent) int {
	best := -1
	for i, e := range pending {
		if best < 0 || e.at < pending[best].at ||
			(e.at == pending[best].at && e.ord < pending[best].ord) {
			best = i
		}
	}
	return best
}

// refRemove deletes index i preserving order.
func refRemove(pending []refEvent, i int) []refEvent {
	return append(pending[:i], pending[i+1:]...)
}

// runModelOps interprets a byte-encoded op stream against both the kernel and
// the reference model and reports the first divergence. Each byte is one
// operation: bits 0-1 select the kind (schedule, schedule, cancel, step) and
// the remaining bits parameterize it. Delays are coarse multiples of 0.5 so
// ties (the FIFO-order case) occur constantly.
func runModelOps(t *testing.T, data []byte) {
	t.Helper()
	k := NewKernel()
	var pending []refEvent
	var got []int // tags in execution order
	nextOrd := 0

	schedule := func(delay Time) {
		ord := nextOrd
		nextOrd++
		id := k.Schedule(delay, func(kk *Kernel) { got = append(got, ord) })
		pending = append(pending, refEvent{at: k.Now() + delay, ord: ord, id: id})
	}
	step := func() {
		want := refMin(pending)
		stepped := k.Step()
		if want < 0 {
			if stepped {
				t.Fatalf("Step() = true with empty model")
			}
			return
		}
		if !stepped {
			t.Fatalf("Step() = false with %d events pending in model", len(pending))
		}
		e := pending[want]
		if len(got) == 0 || got[len(got)-1] != e.ord {
			t.Fatalf("executed tag %v, want %d (at %g)", got[max(0, len(got)-1):], e.ord, e.at)
		}
		if k.Now() != e.at {
			t.Fatalf("Now() = %g after step, want %g", k.Now(), e.at)
		}
		pending = refRemove(pending, want)
	}

	for _, op := range data {
		switch op & 3 {
		case 0, 1:
			schedule(Time(op>>2) * 0.5)
		case 2:
			if len(pending) > 0 {
				i := int(op>>2) % len(pending)
				e := pending[i]
				if !k.Cancel(e.id) {
					t.Fatalf("Cancel(%v) = false for pending event %d", e.id, e.ord)
				}
				if k.Cancel(e.id) {
					t.Fatalf("double Cancel(%v) = true", e.id)
				}
				pending = refRemove(pending, i)
			} else if k.Cancel(EventID(uint64(op) << 2)) {
				t.Fatalf("Cancel of never-issued id succeeded")
			}
		case 3:
			step()
		}
		if k.Pending() != len(pending) {
			t.Fatalf("Pending() = %d, model has %d", k.Pending(), len(pending))
		}
	}
	// Drain: the remaining events must come out in exact model order.
	for len(pending) > 0 {
		step()
	}
	if k.Step() {
		t.Fatal("Step() = true after drain")
	}
}

func TestQuickHeapAgreesWithReferenceModel(t *testing.T) {
	f := func(ops []byte) bool {
		// Run under a sub-test so runModelOps's t.Fatal surfaces the op
		// stream that diverged.
		ok := true
		t.Run("", func(st *testing.T) {
			runModelOps(st, ops)
			ok = !st.Failed()
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func FuzzHeapAgainstReferenceModel(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x04, 0x04, 0x03, 0x03})                         // tie, FIFO pops
	f.Add([]byte{0x08, 0x04, 0x02, 0x03, 0x03})                   // cancel then drain
	f.Add([]byte{0x10, 0x0c, 0x08, 0x06, 0x03, 0x00, 0x03, 0x03}) // interleaved
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("op stream too long")
		}
		runModelOps(t, data)
	})
}

// TestHeapStressAgainstModel pushes a long deterministic op stream (driven by
// a cheap LCG) through the model comparison, exercising deep heaps, slot
// reuse and generation bumps far beyond what quick/fuzz cover per run.
func TestHeapStressAgainstModel(t *testing.T) {
	state := uint64(0x9e3779b97f4a7c15)
	next := func() byte {
		state = state*6364136223846793005 + 1442695040888963407
		return byte(state >> 33)
	}
	ops := make([]byte, 20000)
	for i := range ops {
		ops[i] = next()
	}
	runModelOps(t, ops)
}

// TestGenerationTagInvalidatesRecycledSlot pins the ABA guard: once a slot is
// executed and recycled, the old EventID must not cancel the new occupant.
func TestGenerationTagInvalidatesRecycledSlot(t *testing.T) {
	k := NewKernel()
	old := k.Schedule(1, func(*Kernel) {})
	k.Run()
	ran := false
	fresh := k.Schedule(1, func(*Kernel) { ran = true }) // reuses the slot
	if k.Cancel(old) {
		t.Error("stale EventID cancelled the recycled slot's new occupant")
	}
	k.Run()
	if !ran {
		t.Error("new occupant did not run")
	}
	if k.Cancel(fresh) {
		t.Error("Cancel of executed event returned true")
	}
	if math.IsNaN(k.Now()) {
		t.Error("clock corrupted")
	}
}
