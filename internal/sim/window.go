// Sharded execution: a ShardGroup runs S kernels — one per spatial shard —
// under conservative time windows, with output bit-identical to one serial
// kernel over the union of their events.
//
// # Why sequence numbers are the hard part
//
// The serial kernel breaks ties between equal-time events by seq, which it
// assigns in global scheduling order. A sharded run schedules concurrently,
// so per-shard counters would order equal-time events by shard interleaving —
// changing results whenever the shard count changes. The fix rests on one
// observation: the serial seq order is exactly the lexicographic order of
// (parent execution key, intra-parent schedule index), recursively — a parent
// that executes earlier (smaller (time, seq)) schedules its children before a
// later parent schedules its own, and one handler schedules its children in
// call order. That key is computable without running serially.
//
// # Window protocol
//
// Shards advance in lockstep windows [T, T+W) where W is the minimum
// cross-shard delivery delay (the shortest on-air transmission time): an
// event executing inside a window can only influence another shard at or
// after the window's end, so within a window the shards are causally
// independent. During a window each shard assigns *provisional* sequence
// numbers (the high bit set, then the local log index) and appends one
// record per schedule call to its window log: the scheduling parent's
// execution key and the intra-parent call index k. Provisional numbers sort
// after every previously assigned serial number (the serial kernel would
// have scheduled those events later) and among themselves by local log order
// (the serial scheduling suborder of one causally isolated shard), so heap
// ordering inside the window is already serially correct.
//
// At the window barrier, EndWindow k-way merges the shard logs by
// (parentAt, resolved parent seq, k) — each log is sorted by that key, and a
// provisional parent reference always points at an earlier record of the
// same shard's log, so resolution never blocks — and assigns the real serial
// sequence numbers in merge order from the group counter. Still-pending
// events are re-keyed in place; assignment order is monotone along each
// shard's log, so re-keying preserves the heap invariant without re-sifting.
//
// Cross-shard broadcasts are the one place a single serial event splits
// across shards: the sharded radio schedules one local sub-fan-out and
// injects the remote sub-fan-outs with the SAME resolved sequence number
// (InjectArgAt), so every fragment of the serial fan-out event executes at
// the identical (time, seq) key. Intra-fan-out schedule order is preserved
// by SetFanKey, which offsets k by the receiver's global CSR row position.
//
// # Construction ("direct") mode
//
// Network construction and agent starts run single-threaded in global node
// order, exactly as a serial run would. In that mode every shard draws real
// sequence numbers straight from the shared group counter, so the pre-run
// event population carries byte-identical keys to the serial kernel's.
package sim

import "fmt"

// provSeqBit marks a provisional (window-local) sequence number. Real serial
// sequence numbers are counters starting at zero and can never reach bit 63.
const provSeqBit = uint64(1) << 63

// fanKeyShift is the per-receiver k-space reserved inside one fan-out event:
// receiver at global CSR row position p owns k ∈ [p<<fanKeyShift,
// (p+1)<<fanKeyShift). One delivery handler scheduling 2^20 events overflows
// into the next receiver's space, so nextSeq guards the limit.
const fanKeyShift = 20

// schedRec is one window-log entry: the serial-order key of one schedule
// call, plus the arena slot it produced so the barrier can re-key it.
type schedRec struct {
	parentAt  Time   // execution time of the scheduling event
	parentSeq uint64 // its seq — provisional if it was itself scheduled this window
	k         uint64 // intra-parent schedule call index
	slot      int32  // arena slot of the scheduled event; -1 for ReserveSeq
	gen       uint32 // slot generation at schedule time (stale → already executed)
}

// winSeq is the per-kernel shard sequencer: the current execution context
// (which event is running) and the window log of schedule calls.
type winSeq struct {
	g     *ShardGroup
	shard int
	log   []schedRec

	parentAt  Time
	parentSeq uint64
	kNext     uint64
	kLimit    uint64 // exclusive cap on kNext while inside a fan-out; 0 = none
}

// begin records the execution key of the event about to run (called by Step).
func (w *winSeq) begin(at Time, seq uint64) {
	w.parentAt = at
	w.parentSeq = seq
	w.kNext = 0
	w.kLimit = 0
}

// nextSeq issues the sequence number for one schedule call. Direct mode
// draws a real serial number from the shared counter; windowed mode logs the
// call and issues a provisional number.
func (w *winSeq) nextSeq(slot int32, gen uint32) uint64 {
	if w.g.direct {
		s := w.g.counter
		w.g.counter++
		return s
	}
	if w.kLimit != 0 && w.kNext >= w.kLimit {
		panic("sim: one delivery scheduled 2^20 events, overflowing its fan-out key space")
	}
	idx := len(w.log)
	w.log = append(w.log, schedRec{parentAt: w.parentAt, parentSeq: w.parentSeq, k: w.kNext, slot: slot, gen: gen})
	w.kNext++
	return provSeqBit | uint64(idx)
}

// ShardGroup owns the kernels of one sharded simulation and the shared
// serial sequence space. All methods are single-threaded orchestration —
// only RunWindow/RunUntil on distinct shards may run concurrently.
type ShardGroup struct {
	shards  []*Kernel
	counter uint64 // next serial sequence number (shared across shards)
	direct  bool   // construction mode: real seqs, no logging

	// Barrier scratch, reused across windows. assigned[s][i] is the serial
	// seq the merge gave shard s's log entry i; it stays valid (for Resolve)
	// until the next EndWindow.
	assigned [][]uint64
	heads    []int
}

// NewShardGroup creates n kernels wired into one group, in direct
// (construction) mode. Call BeginWindows once the pre-run event population
// is in place.
func NewShardGroup(n int) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: shard group needs at least one shard, got %d", n))
	}
	g := &ShardGroup{
		direct:   true,
		assigned: make([][]uint64, n),
		heads:    make([]int, n),
	}
	for i := 0; i < n; i++ {
		k := NewKernel()
		k.ws = &winSeq{g: g, shard: i}
		g.shards = append(g.shards, k)
	}
	return g
}

// Shards returns the shard count.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's kernel.
func (g *ShardGroup) Shard(i int) *Kernel { return g.shards[i] }

// Direct reports whether the group is still in construction mode.
func (g *ShardGroup) Direct() bool { return g.direct }

// BeginWindows ends construction mode: subsequent schedule calls are logged
// per window and sequenced at EndWindow barriers.
func (g *ShardGroup) BeginWindows() { g.direct = false }

// resolve maps a possibly provisional parent reference from shard s to its
// assigned serial sequence number.
func (g *ShardGroup) resolve(s int, seq uint64) uint64 {
	if seq&provSeqBit == 0 {
		return seq
	}
	return g.assigned[s][seq&^provSeqBit]
}

// Resolve is the exported resolve for barrier consumers (the sharded radio
// flushes its boundary events with sequence references taken during the
// window). Valid from EndWindow until the next EndWindow.
func (g *ShardGroup) Resolve(s int, seq uint64) uint64 { return g.resolve(s, seq) }

// EndWindow is the window barrier: it merges the shard logs into the serial
// scheduling order, assigns real sequence numbers in that order and re-keys
// every still-pending event. Call with all shards idle at the window edge.
//
// Each shard's log is sorted by the merge key (parents execute in key order
// and one parent's calls carry increasing k), and a provisional parent
// reference always names an earlier, already-consumed record of the same
// log, so a plain k-way head merge reconstructs the global order. Keys never
// tie across shards: a (parent, k) pair identifies one serial schedule call,
// and split fan-outs keep disjoint k ranges via SetFanKey.
func (g *ShardGroup) EndWindow() {
	if g.direct {
		panic("sim: EndWindow in direct mode")
	}
	n := len(g.shards)
	remaining := 0
	for i, k := range g.shards {
		l := len(k.ws.log)
		if cap(g.assigned[i]) < l {
			g.assigned[i] = make([]uint64, l)
		} else {
			g.assigned[i] = g.assigned[i][:l]
		}
		g.heads[i] = 0
		remaining += l
	}
	for ; remaining > 0; remaining-- {
		best := -1
		var bAt Time
		var bSeq, bK uint64
		for i := 0; i < n; i++ {
			h := g.heads[i]
			log := g.shards[i].ws.log
			if h >= len(log) {
				continue
			}
			rec := &log[h]
			ps := g.resolve(i, rec.parentSeq)
			if best < 0 || rec.parentAt < bAt ||
				(rec.parentAt == bAt && (ps < bSeq || (ps == bSeq && rec.k < bK))) {
				best, bAt, bSeq, bK = i, rec.parentAt, ps, rec.k
			}
		}
		g.assigned[best][g.heads[best]] = g.counter
		g.counter++
		g.heads[best]++
	}
	// Re-key still-pending slots. Along one shard's log both the provisional
	// and the assigned numbers increase, and every number assigned this
	// window exceeds every number assigned before it, so the relative order
	// of all pending events is unchanged — the heap invariant holds without
	// re-sifting.
	for i, k := range g.shards {
		for idx := range k.ws.log {
			rec := &k.ws.log[idx]
			if rec.slot < 0 {
				continue
			}
			e := &k.arena[rec.slot]
			if e.gen == rec.gen && e.pending() {
				e.seq = g.assigned[i][idx]
			}
		}
		k.ws.log = k.ws.log[:0]
	}
}

// --- shard-facing kernel hooks ---

// LastSeq returns the sequence number of the most recently scheduled event —
// possibly provisional; pass it through ShardGroup.Resolve at the barrier.
func (k *Kernel) LastSeq() uint64 { return k.lastSeq }

// ReserveSeq consumes one sequence position without scheduling anything: the
// serial kernel would have scheduled exactly one event here, but every
// fragment of it belongs to other shards (a broadcast whose in-range
// receivers are all remote). The returned reference resolves at the barrier
// like LastSeq.
func (k *Kernel) ReserveSeq() uint64 {
	w := k.ws
	if w == nil {
		panic("sim: ReserveSeq on a non-sharded kernel")
	}
	if w.g.direct {
		s := w.g.counter
		w.g.counter++
		return s
	}
	if w.kLimit != 0 && w.kNext >= w.kLimit {
		panic("sim: one delivery scheduled 2^20 events, overflowing its fan-out key space")
	}
	idx := len(w.log)
	w.log = append(w.log, schedRec{parentAt: w.parentAt, parentSeq: w.parentSeq, k: w.kNext, slot: -1})
	w.kNext++
	return provSeqBit | uint64(idx)
}

// SetFanKey aligns the intra-parent schedule indices of a split fan-out:
// the serial kernel delivers a broadcast to its whole CSR row inside ONE
// event, so the sharded sub-fan-outs — which execute as sibling events with
// the same (time, seq) key in different shards — must number the schedule
// calls of receiver p from p's global row position, keeping the merged child
// order identical to the serial delivery order. Call before each receiver's
// Deliver. No-op on serial kernels.
func (k *Kernel) SetFanKey(rowPos int) {
	w := k.ws
	if w == nil || w.g.direct {
		return
	}
	base := uint64(rowPos) << fanKeyShift
	if w.kNext > base {
		panic("sim: fan-out key regression — receivers must be delivered in ascending row order")
	}
	w.kNext = base
	w.kLimit = base + 1<<fanKeyShift
}

// InjectArgAt schedules h at time at with an explicit, externally resolved
// sequence number, bypassing the shard sequencer: the event is a fragment of
// an event another shard already sequenced (a cross-shard sub-fan-out), not
// a new serial position. Only meaningful between windows or in direct mode.
func (k *Kernel) InjectArgAt(at Time, seq uint64, h ArgHandler, arg any) EventID {
	if h == nil {
		panic("sim: schedule nil handler")
	}
	if k.ws == nil {
		panic("sim: InjectArgAt on a non-sharded kernel")
	}
	slot, e := k.claimSlot(at)
	e.seq = seq
	e.argh = h
	e.arg = arg
	k.live++
	k.heapPush(slot)
	return EventID(uint64(e.gen)<<32 | uint64(uint32(slot)))
}

// NextEventTime returns the timestamp of the earliest pending event,
// discarding any cancelled entries that have surfaced.
func (k *Kernel) NextEventTime() (Time, bool) {
	for len(k.heap) > 0 {
		slot := k.heap[0]
		e := &k.arena[slot]
		if !e.pending() {
			k.heapPop()
			k.free = append(k.free, slot)
			continue
		}
		return e.at, true
	}
	return 0, false
}

// RunWindow executes every event with timestamp strictly before end, then
// advances the clock to end. The strict bound is the conservative-window
// contract: events at exactly the window edge may be influenced by other
// shards and belong to the next window.
func (k *Kernel) RunWindow(end Time) {
	for {
		at, ok := k.NextEventTime()
		if !ok || at >= end {
			break
		}
		k.Step()
	}
	if end > k.now {
		k.now = end
	}
}
