// Package sim implements the discrete-event simulation kernel underlying the
// PAS reproduction: a virtual clock, a priority event queue with stable FIFO
// ordering for simultaneous events, cancellable timers and run-until
// execution. The kernel is single-goroutine by design — wireless protocol
// simulations need strict determinism far more than they need parallel event
// execution, and the paper's experiments (tens of nodes, minutes of virtual
// time) run in microseconds per simulated second.
//
// # Zero-allocation engine
//
// Every simulated message, timer, sample and sleep/wake transition funnels
// through this kernel, and the experiment harness multiplies that cost across
// (experiment × sweep-point × protocol × seed) cells, so the event queue is
// engineered for zero steady-state allocations:
//
//   - Events live in a flat arena ([]event) indexed by slot. Executed and
//     cancelled slots are recycled through an intrusive freelist instead of
//     being reallocated, so a long simulation settles into a fixed arena.
//   - The priority queue is a 4-ary heap of int32 slot indices ordered by
//     (time, sequence). No container/heap, no boxed interface values, and a
//     shallower tree than a binary heap (fewer cache misses per sift).
//   - EventIDs are generation-tagged: the low 32 bits name the slot, the
//     high 32 bits its generation, which is bumped whenever the slot leaves
//     the pending state. Cancel is therefore an O(1) stamp check that marks
//     the slot dead; dead slots are skipped and recycled lazily at pop, so
//     there is no pending map and no O(log n) heap removal.
//   - Events can carry an argument (ScheduleArgAt): batched subsystems —
//     the radio's per-broadcast delivery records — schedule one long-lived
//     ArgHandler against pooled payloads instead of building a closure per
//     event, keeping the hot path closure-free.
//
// A slot's generation wraps after 2^32 schedule/retire cycles of that one
// slot; a stale EventID could in principle alias after that, which is orders
// of magnitude beyond any simulation this harness runs.
package sim

import (
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time = float64

// Handler is an event callback. It runs at its scheduled virtual time with
// the kernel passed in so it can schedule further events.
type Handler func(k *Kernel)

// ArgHandler is an event callback that additionally receives the argument
// stored with the event at schedule time. Batched subsystems (the radio's
// per-broadcast delivery records) use it to schedule one long-lived handler
// against many pooled payloads without constructing a closure per event:
// boxing a pointer-shaped arg into the interface does not allocate.
type ArgHandler func(k *Kernel, arg any)

// EventID identifies a scheduled event for cancellation. It packs the arena
// slot (low 32 bits) and the slot's generation (high 32 bits).
type EventID uint64

// event is one arena slot. A slot is pending (in the heap, one of the two
// handler fields set), dead (in the heap, cancelled, both handlers nil) or
// free (on the freelist). Exactly one of handler/argh is non-nil while
// pending; arg rides along with argh.
type event struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among equal times
	gen     uint32 // current occupant generation
	handler Handler
	argh    ArgHandler
	arg     any
}

// pending reports whether the slot holds a live scheduled event.
func (e *event) pending() bool { return e.handler != nil || e.argh != nil }

// Kernel is the simulation engine. Create one with NewKernel, schedule events
// and call Run or RunUntil. A Kernel must be used from a single goroutine.
type Kernel struct {
	now   Time
	arena []event
	free  []int32 // recycled slots
	heap  []int32 // 4-ary heap of slot indices ordered by (at, seq)
	live  int     // pending (scheduled, not yet executed or cancelled)

	nextSeq uint64
	// lastSeq is the sequence number of the most recently scheduled event,
	// so batched subsystems (the sharded radio) can alias further events —
	// cross-shard sub-fan-outs — onto the same serial position.
	lastSeq uint64
	// processed counts events executed, for diagnostics and benchmarks.
	processed uint64
	// tracer, when non-nil, observes every executed event.
	tracer func(at Time)
	// ws, when non-nil, makes this kernel one shard of a ShardGroup: sequence
	// numbers come from the group's serial-order reconstruction instead of
	// the local counter (see window.go). Nil for ordinary serial kernels, so
	// the serial path is byte-identical to the pre-sharding kernel.
	ws *winSeq
}

// maxArenaSlots caps the arena so a slot index always fits int32. It is a
// variable only so tests can lower it and exercise the guard without
// scheduling 2^31 events; the default is the hard int32 ceiling. Without the
// guard, growing past it would silently compute a wrapped (negative or
// aliased) slot index and corrupt the heap rather than fail.
var maxArenaSlots = math.MaxInt32

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of live events in the queue.
func (k *Kernel) Pending() int { return k.live }

// SetTracer installs a callback invoked with the timestamp of every executed
// event; pass nil to disable.
func (k *Kernel) SetTracer(f func(at Time)) { k.tracer = f }

// claimSlot claims an arena slot for an event at the given time; the caller
// assigns the sequence number and handler fields, then links it into the
// heap (the heap orders by seq, so the push must come after the assignment).
func (k *Kernel) claimSlot(at Time) (int32, *event) {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if math.IsNaN(at) {
		panic("sim: schedule at NaN time")
	}
	var slot int32
	if n := len(k.free); n > 0 {
		slot = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		if len(k.arena) >= maxArenaSlots {
			panic(fmt.Sprintf("sim: event arena grew to %d slots, exceeding int32 slot indexing", len(k.arena)))
		}
		k.arena = append(k.arena, event{})
		slot = int32(len(k.arena) - 1)
	}
	e := &k.arena[slot]
	e.at = at
	return slot, e
}

// scheduleSlot claims an arena slot, assigns the next sequence number and
// links the slot into the heap; the caller fills in the handler fields.
func (k *Kernel) scheduleSlot(at Time) (int32, *event) {
	slot, e := k.claimSlot(at)
	if k.ws != nil {
		e.seq = k.ws.nextSeq(slot, e.gen)
	} else {
		e.seq = k.nextSeq
		k.nextSeq++
	}
	k.lastSeq = e.seq
	k.live++
	k.heapPush(slot)
	return slot, e
}

// ScheduleAt schedules h at absolute virtual time at. Scheduling in the past
// panics: it would silently corrupt causality, which is a programming error.
func (k *Kernel) ScheduleAt(at Time, h Handler) EventID {
	if h == nil {
		panic("sim: schedule nil handler")
	}
	slot, e := k.scheduleSlot(at)
	e.handler = h
	return EventID(uint64(e.gen)<<32 | uint64(uint32(slot)))
}

// Schedule schedules h after the given delay (which must be non-negative).
func (k *Kernel) Schedule(delay Time, h Handler) EventID {
	return k.ScheduleAt(k.now+delay, h)
}

// ScheduleArgAt schedules h at absolute virtual time at with arg stored in
// the event slot and handed back when the event fires. Scheduling a
// long-lived handler with per-event args avoids the closure allocation of
// ScheduleAt on hot batched paths; a pointer-shaped arg does not allocate
// when boxed.
func (k *Kernel) ScheduleArgAt(at Time, h ArgHandler, arg any) EventID {
	if h == nil {
		panic("sim: schedule nil handler")
	}
	slot, e := k.scheduleSlot(at)
	e.argh = h
	e.arg = arg
	return EventID(uint64(e.gen)<<32 | uint64(uint32(slot)))
}

// ScheduleArg schedules h with arg after the given delay.
func (k *Kernel) ScheduleArg(delay Time, h ArgHandler, arg any) EventID {
	return k.ScheduleArgAt(k.now+delay, h, arg)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if already executed or cancelled). Cancellation is O(1): it
// stamps the slot dead and bumps its generation; the heap entry is discarded
// lazily when it surfaces at the top.
func (k *Kernel) Cancel(id EventID) bool {
	slot := uint32(id)
	if int(slot) >= len(k.arena) {
		return false
	}
	e := &k.arena[slot]
	if e.gen != uint32(id>>32) || !e.pending() {
		return false
	}
	e.handler = nil
	e.argh = nil
	e.arg = nil
	e.gen++
	k.live--
	return true
}

// retire recycles the just-popped slot: the generation bump invalidates the
// slot's outstanding EventID and the handler/arg references are dropped so
// their referents can be collected before the slot is reused.
func (k *Kernel) retire(slot int32) {
	e := &k.arena[slot]
	e.handler = nil
	e.argh = nil
	e.arg = nil
	e.gen++
	k.free = append(k.free, slot)
}

// Step executes the single earliest event. It reports false if the queue is
// empty.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		slot := k.heapPop()
		e := &k.arena[slot]
		if !e.pending() {
			// Cancelled; recycle without the generation bump (Cancel already
			// bumped it).
			k.free = append(k.free, slot)
			continue
		}
		h, ah, arg, at := e.handler, e.argh, e.arg, e.at
		seq := e.seq
		k.retire(slot)
		k.live--
		k.now = at
		k.processed++
		if k.tracer != nil {
			k.tracer(at)
		}
		if k.ws != nil {
			// Sharded mode: record the execution key so events this handler
			// schedules can be ordered exactly as the serial kernel would.
			k.ws.begin(at, seq)
		}
		if ah != nil {
			ah(k, arg)
		} else {
			h(k)
		}
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is exhausted or the next
// event lies strictly beyond horizon. The clock is finally advanced to the
// horizon, so interval-based accounting (e.g. energy meters) can integrate to
// the exact end of the simulation.
func (k *Kernel) RunUntil(horizon Time) {
	if horizon < k.now {
		panic(fmt.Sprintf("sim: horizon %v before now %v", horizon, k.now))
	}
	for len(k.heap) > 0 {
		// Peek: find the earliest live event.
		slot := k.heap[0]
		e := &k.arena[slot]
		if !e.pending() {
			k.heapPop()
			k.free = append(k.free, slot)
			continue
		}
		if e.at > horizon {
			break
		}
		k.Step()
	}
	k.now = horizon
}

// Run executes events until the queue is empty and returns the final time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// Ticker schedules h every period, starting one period from now, until the
// returned stop function is called. The handler runs strictly periodically in
// virtual time.
func (k *Kernel) Ticker(period Time, h Handler) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period must be positive, got %v", period))
	}
	stopped := false
	var tick Handler
	var id EventID
	tick = func(kk *Kernel) {
		if stopped {
			return
		}
		h(kk)
		if !stopped {
			id = kk.Schedule(period, tick)
		}
	}
	id = k.Schedule(period, tick)
	return func() {
		stopped = true
		k.Cancel(id)
	}
}

// --- 4-ary heap over arena slots ---

// eventLess orders slots by (time, sequence).
func (k *Kernel) eventLess(a, b int32) bool {
	ea, eb := &k.arena[a], &k.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// heapPush appends slot and sifts it up.
func (k *Kernel) heapPush(slot int32) {
	k.heap = append(k.heap, slot)
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !k.eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// heapPop removes and returns the minimum slot; the heap must be non-empty.
func (k *Kernel) heapPop() int32 {
	h := k.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	k.heap = h[:last]
	if last > 1 {
		k.siftDown(0)
	}
	return top
}

// siftDown restores heap order below i.
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if k.eventLess(h[c], h[min]) {
				min = c
			}
		}
		if !k.eventLess(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
