// Package sim implements the discrete-event simulation kernel underlying the
// PAS reproduction: a virtual clock, a binary-heap event queue with stable
// FIFO ordering for simultaneous events, cancellable timers and run-until
// execution. The kernel is single-goroutine by design — wireless protocol
// simulations need strict determinism far more than they need parallel event
// execution, and the paper's experiments (tens of nodes, minutes of virtual
// time) run in microseconds per simulated second.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time = float64

// Handler is an event callback. It runs at its scheduled virtual time with
// the kernel passed in so it can schedule further events.
type Handler func(k *Kernel)

// EventID identifies a scheduled event for cancellation.
type EventID uint64

// event is a pending kernel event.
type event struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among equal times
	id      EventID
	handler Handler
	index   int // heap index, -1 once popped
	dead    bool
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the simulation engine. Create one with NewKernel, schedule events
// and call Run or RunUntil. A Kernel must be used from a single goroutine.
type Kernel struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	nextID  EventID
	pending map[EventID]*event
	// processed counts events executed, for diagnostics and benchmarks.
	processed uint64
	// tracer, when non-nil, observes every executed event.
	tracer func(at Time)
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{pending: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of live events in the queue.
func (k *Kernel) Pending() int { return len(k.pending) }

// SetTracer installs a callback invoked with the timestamp of every executed
// event; pass nil to disable.
func (k *Kernel) SetTracer(f func(at Time)) { k.tracer = f }

// ScheduleAt schedules h at absolute virtual time at. Scheduling in the past
// panics: it would silently corrupt causality, which is a programming error.
func (k *Kernel) ScheduleAt(at Time, h Handler) EventID {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	if math.IsNaN(at) {
		panic("sim: schedule at NaN time")
	}
	e := &event{at: at, seq: k.nextSeq, id: k.nextID, handler: h}
	k.nextSeq++
	k.nextID++
	heap.Push(&k.queue, e)
	k.pending[e.id] = e
	return e.id
}

// Schedule schedules h after the given delay (which must be non-negative).
func (k *Kernel) Schedule(delay Time, h Handler) EventID {
	return k.ScheduleAt(k.now+delay, h)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if already executed or cancelled).
func (k *Kernel) Cancel(id EventID) bool {
	e, ok := k.pending[id]
	if !ok {
		return false
	}
	delete(k.pending, id)
	e.dead = true
	if e.index >= 0 {
		heap.Remove(&k.queue, e.index)
	}
	return true
}

// Step executes the single earliest event. It reports false if the queue is
// empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*event)
		if e.dead {
			continue
		}
		delete(k.pending, e.id)
		k.now = e.at
		k.processed++
		if k.tracer != nil {
			k.tracer(k.now)
		}
		e.handler(k)
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is exhausted or the next
// event lies strictly beyond horizon. The clock is finally advanced to the
// horizon, so interval-based accounting (e.g. energy meters) can integrate to
// the exact end of the simulation.
func (k *Kernel) RunUntil(horizon Time) {
	if horizon < k.now {
		panic(fmt.Sprintf("sim: horizon %v before now %v", horizon, k.now))
	}
	for len(k.queue) > 0 {
		// Peek: find earliest live event.
		e := k.queue[0]
		if e.dead {
			heap.Pop(&k.queue)
			continue
		}
		if e.at > horizon {
			break
		}
		k.Step()
	}
	k.now = horizon
}

// Run executes events until the queue is empty and returns the final time.
func (k *Kernel) Run() Time {
	for k.Step() {
	}
	return k.now
}

// Ticker schedules h every period, starting one period from now, until the
// returned stop function is called. The handler runs strictly periodically in
// virtual time.
func (k *Kernel) Ticker(period Time, h Handler) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period must be positive, got %v", period))
	}
	stopped := false
	var tick Handler
	var id EventID
	tick = func(kk *Kernel) {
		if stopped {
			return
		}
		h(kk)
		if !stopped {
			id = kk.Schedule(period, tick)
		}
	}
	id = k.Schedule(period, tick)
	return func() {
		stopped = true
		k.Cancel(id)
	}
}
