package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Encode renders the scenario as indented JSON. Encoding validates first, so
// a spec that encodes is guaranteed to decode back.
func (s Scenario) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, fmt.Errorf("scenario: encoding %s: %w", s.Name, err)
	}
	return buf.Bytes(), nil
}

// Decode parses and validates a JSON scenario. Unknown fields are rejected so
// a typo in a hand-written spec fails loudly instead of silently defaulting.
func Decode(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	s.Stimulus.dropEmptySlices()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
