package scenario

import (
	"fmt"

	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/rng"
)

// StimulusSpec declaratively describes a diffusion stimulus. Exactly the
// fields of the selected Kind are meaningful; the rest stay zero. Dwell > 0
// wraps any kind in a receding front (coverage ends after the dwell), which
// drives covered→safe transitions.
type StimulusSpec struct {
	// Kind is one of the Stim* constants.
	Kind string `json:"kind"`
	// Origin is the release point (radial, advected, anisotropic).
	Origin geom.Vec2 `json:"origin,omitzero"`
	// Speed is the spreading speed in m/s (radial, anisotropic) or the
	// growth speed (advected).
	Speed float64 `json:"speed,omitempty"`
	// Start is the virtual release time.
	Start float64 `json:"start,omitempty"`
	// Drift is the advection velocity (advected).
	Drift geom.Vec2 `json:"drift,omitzero"`
	// Irregularity in [0, 1) and Harmonics parameterize the anisotropic
	// front's random speed profile, drawn from the run seed.
	Irregularity float64 `json:"irregularity,omitempty"`
	Harmonics    int     `json:"harmonics,omitempty"`
	// Dwell > 0 makes coverage recede after that many seconds.
	Dwell float64 `json:"dwell,omitempty"`
	// Sources are the component stimuli of a multi-source union.
	Sources []StimulusSpec `json:"sources,omitempty"`
	// Plume configures the advection–diffusion PDE stimulus.
	Plume *diffusion.PlumeConfig `json:"plume,omitempty"`
	// Eikonal configures the heterogeneous-terrain (fast-marching) front.
	Eikonal *EikonalSpec `json:"eikonal,omitempty"`
}

// EikonalSpec is the JSON-friendly form of diffusion.TerrainConfig: the speed
// map is a base speed plus rectangular patches instead of an arbitrary
// function.
type EikonalSpec struct {
	// NX, NY are the fast-marching grid resolution over the field.
	NX int `json:"nx"`
	NY int `json:"ny"`
	// Bounds is the solved area (usually the scenario field).
	Bounds geom.Rect `json:"bounds"`
	// BaseSpeed is the background spreading speed in m/s.
	BaseSpeed float64 `json:"baseSpeed"`
	// Patches override the speed inside their rectangles, in order (later
	// patches win). Speed <= 0 marks an impassable barrier.
	Patches []SpeedPatch `json:"patches,omitempty"`
	// Source and Start locate the release.
	Source geom.Vec2 `json:"source"`
	Start  float64   `json:"start,omitempty"`
	// Horizon bounds the contouring times (usually the scenario horizon).
	Horizon float64 `json:"horizon"`
}

// SpeedPatch is one rectangular speed override of an eikonal speed map.
type SpeedPatch struct {
	Rect  geom.Rect `json:"rect"`
	Speed float64   `json:"speed"`
}

// dropEmptySlices nils out empty slices a JSON "[]" literal decodes to:
// omitempty drops them on re-encode, so a non-nil empty slice would break the
// decode → encode → decode identity the codec guarantees.
func (s *StimulusSpec) dropEmptySlices() {
	if len(s.Sources) == 0 {
		s.Sources = nil
	}
	for i := range s.Sources {
		s.Sources[i].dropEmptySlices()
	}
	if s.Eikonal != nil && len(s.Eikonal.Patches) == 0 {
		s.Eikonal.Patches = nil
	}
}

func (s StimulusSpec) validate() error {
	if s.Dwell < 0 {
		return fmt.Errorf("negative stimulus dwell %g", s.Dwell)
	}
	switch s.Kind {
	case StimRadial, StimAdvected:
		if s.Speed <= 0 {
			return fmt.Errorf("%s stimulus speed %g must be positive", s.Kind, s.Speed)
		}
	case StimAnisotropic:
		if s.Speed <= 0 {
			return fmt.Errorf("anisotropic base speed %g must be positive", s.Speed)
		}
		if s.Irregularity < 0 || s.Irregularity >= 1 {
			return fmt.Errorf("anisotropic irregularity %g outside [0, 1)", s.Irregularity)
		}
	case StimMulti:
		if len(s.Sources) == 0 {
			return fmt.Errorf("multi stimulus needs at least one source")
		}
		for i, sub := range s.Sources {
			if sub.Kind == StimMulti {
				return fmt.Errorf("multi stimulus source %d: nesting multi is not supported", i)
			}
			if err := sub.validate(); err != nil {
				return fmt.Errorf("multi stimulus source %d: %w", i, err)
			}
		}
	case StimPlume:
		if s.Plume == nil {
			return fmt.Errorf("plume stimulus needs the plume section")
		}
		if err := s.Plume.Validate(); err != nil {
			return err
		}
	case StimEikonal:
		if s.Eikonal == nil {
			return fmt.Errorf("eikonal stimulus needs the eikonal section")
		}
		if err := s.Eikonal.terrainConfig().Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown stimulus kind %q", s.Kind)
	}
	return nil
}

// terrainConfig lowers the declarative speed map to diffusion.TerrainConfig.
func (e EikonalSpec) terrainConfig() diffusion.TerrainConfig {
	patches := e.Patches
	base := e.BaseSpeed
	return diffusion.TerrainConfig{
		Bounds: e.Bounds,
		NX:     e.NX,
		NY:     e.NY,
		Speed: func(p geom.Vec2) float64 {
			v := base
			for _, patch := range patches {
				if patch.Rect.Contains(p) {
					v = patch.Speed
				}
			}
			return v
		},
		Source:  e.Source,
		Start:   e.Start,
		Horizon: e.Horizon,
	}
}

// Build compiles the spec into a queryable front model. Only the anisotropic
// kind consumes randomness; it draws its harmonics from the seed's dedicated
// stream, matching the historical IrregularScenario derivation.
func (s StimulusSpec) Build(seed int64) (diffusion.FrontModel, error) {
	return s.build(seed, -1)
}

// build is Build with a multi-source slot: source i of a multi stimulus draws
// from the i-th numbered variant of the anisotropic stream (slot < 0 = the
// unnumbered top-level stream), so sibling stochastic sources are independent
// instead of perfectly correlated copies.
func (s StimulusSpec) build(seed int64, slot int) (diffusion.FrontModel, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var front diffusion.FrontModel
	var err error
	switch s.Kind {
	case StimRadial:
		front = diffusion.NewRadialFront(s.Origin, s.Speed, s.Start)
	case StimAdvected:
		front = diffusion.NewAdvectedFront(s.Origin, s.Speed, s.Drift, s.Start)
	case StimAnisotropic:
		src := rng.NewSource(seed)
		st := src.Stream("anisotropic-front")
		if slot >= 0 {
			st = src.StreamN("anisotropic-front", slot)
		}
		front = diffusion.RandomAnisotropicFront(st, s.Origin, s.Speed, s.Start, s.Irregularity, s.Harmonics)
	case StimMulti:
		subs := make([]diffusion.FrontModel, len(s.Sources))
		for i, sub := range s.Sources {
			if subs[i], err = sub.build(seed, i); err != nil {
				return nil, err
			}
		}
		front = diffusion.NewMultiSource(subs...)
	case StimPlume:
		if front, err = diffusion.NewGridPlume(*s.Plume); err != nil {
			return nil, err
		}
	case StimEikonal:
		if front, err = diffusion.NewTerrainFront(s.Eikonal.terrainConfig()); err != nil {
			return nil, err
		}
	}
	if s.Dwell > 0 {
		front = diffusion.NewReceding(front, s.Dwell)
	}
	return front, nil
}
