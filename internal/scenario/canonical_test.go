package scenario

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

// minimalSpec returns a small valid spec the canonicalization tests mutate.
func minimalSpec() Scenario {
	return Scenario{
		Name:     "canon-test",
		Field:    geom.R(0, 0, 40, 40),
		Nodes:    10,
		Horizon:  100,
		Radio:    RadioSpec{Range: 10},
		Stimulus: StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 20), Speed: 0.5, Start: 10},
	}
}

// TestCanonicalRoundTrip pins the contract for every registry spec: the
// canonical form decodes back to a valid spec, re-canonicalizes to
// byte-identical output, and hashes equal to the original.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, sp := range All() {
		c1, err := Canonical(sp)
		if err != nil {
			t.Fatalf("%s: Canonical: %v", sp.Name, err)
		}
		back, err := Decode(c1)
		if err != nil {
			t.Fatalf("%s: canonical form failed to decode: %v\n%s", sp.Name, err, c1)
		}
		c2, err := Canonical(back)
		if err != nil {
			t.Fatalf("%s: re-canonicalize: %v", sp.Name, err)
		}
		if !bytes.Equal(c1, c2) {
			t.Errorf("%s: canonicalization not idempotent:\n%s\nvs\n%s", sp.Name, c1, c2)
		}
		h1, err := Hash(sp)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := Hash(back)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Errorf("%s: hash drifted across the canonical round trip", sp.Name)
		}
		if len(h1) != 64 || strings.ToLower(h1) != h1 {
			t.Errorf("%s: hash %q is not lowercase hex sha-256", sp.Name, h1)
		}
	}
}

// TestCanonicalSortedKeys verifies the canonical encoding emits object keys
// in sorted order — the property golden-style consumers rely on.
func TestCanonicalSortedKeys(t *testing.T) {
	sp := minimalSpec()
	sp.Deployment = DeploymentSpec{Kind: DeployGrid, Jitter: 0.3}
	c, err := Canonical(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Top-level keys of the canonical form must appear in sorted order.
	want := []string{`"deployment"`, `"field"`, `"horizon"`, `"name"`, `"nodes"`, `"radio"`, `"stimulus"`}
	last := -1
	for _, key := range want {
		idx := bytes.Index(c, []byte(key))
		if idx < 0 {
			t.Fatalf("canonical form missing key %s:\n%s", key, c)
		}
		if idx < last {
			t.Fatalf("key %s out of sorted order:\n%s", key, c)
		}
		last = idx
	}
}

// TestHashEquivalentSpecs verifies that spec pairs compiling to the same
// simulation share a content address, and that behaviorally distinct pairs
// do not.
func TestHashEquivalentSpecs(t *testing.T) {
	base := minimalSpec()

	equal := []struct {
		name string
		a, b func(Scenario) Scenario
	}{
		{"deployment kind empty vs uniform", func(s Scenario) Scenario {
			s.Deployment.Kind = ""
			return s
		}, func(s Scenario) Scenario {
			s.Deployment.Kind = DeployUniform
			return s
		}},
		{"uniform ignores grid jitter", func(s Scenario) Scenario {
			return s
		}, func(s Scenario) Scenario {
			s.Deployment.Jitter = 0.3
			return s
		}},
		{"loss empty vs unit", func(s Scenario) Scenario {
			s.Radio.Loss = ""
			return s
		}, func(s Scenario) Scenario {
			s.Radio.Loss = LossUnit
			return s
		}},
		{"unit disk ignores lossProb", func(s Scenario) Scenario {
			return s
		}, func(s Scenario) Scenario {
			s.Radio.LossProb = 0.3
			return s
		}},
		{"falloff reliable default materialized", func(s Scenario) Scenario {
			s.Radio.Loss = LossFalloff
			return s
		}, func(s Scenario) Scenario {
			s.Radio.Loss = LossFalloff
			s.Radio.Reliable = 6 // 0.6 × range 10
			return s
		}},
		{"sleep increment ramp materialized", func(s Scenario) Scenario {
			s.Protocol = ProtocolSpec{Name: "pas", MaxSleep: 20}
			return s
		}, func(s Scenario) Scenario {
			s.Protocol = ProtocolSpec{Name: "pas", MaxSleep: 20, SleepIncrement: 4}
			return s
		}},
		{"failure deadline 0 vs horizon", func(s Scenario) Scenario {
			s.Failures = FailureSpec{Fraction: 0.1}
			return s
		}, func(s Scenario) Scenario {
			s.Failures = FailureSpec{Fraction: 0.1, By: s.Horizon}
			return s
		}},
		{"no failures ignore deadline", func(s Scenario) Scenario {
			return s
		}, func(s Scenario) Scenario {
			s.Failures = FailureSpec{By: 50}
			return s
		}},
		{"clustered defaults materialized", func(s Scenario) Scenario {
			s.Deployment = DeploymentSpec{Kind: DeployClustered}
			return s
		}, func(s Scenario) Scenario {
			s.Deployment = DeploymentSpec{Kind: DeployClustered, Clusters: 5, Spread: 4}
			return s
		}},
	}
	for _, tc := range equal {
		ha, err := Hash(tc.a(base))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		hb, err := Hash(tc.b(base))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ha != hb {
			t.Errorf("%s: hashes differ for semantically equal specs", tc.name)
		}
	}

	distinct := []struct {
		name string
		mut  func(Scenario) Scenario
	}{
		{"node count", func(s Scenario) Scenario { s.Nodes = 11; return s }},
		{"radio range", func(s Scenario) Scenario { s.Radio.Range = 11; return s }},
		{"stimulus speed", func(s Scenario) Scenario { s.Stimulus.Speed = 0.6; return s }},
		{"horizon", func(s Scenario) Scenario { s.Horizon = 101; return s }},
		{"lossy vs unit", func(s Scenario) Scenario { s.Radio.Loss = LossLossy; return s }},
		{"protocol pin", func(s Scenario) Scenario { s.Protocol.Name = "sas"; return s }},
	}
	hbase, err := Hash(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range distinct {
		h, err := Hash(tc.mut(base))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if h == hbase {
			t.Errorf("%s: behaviorally distinct spec hashed equal to base", tc.name)
		}
	}
}

// TestCanonicalPreservesBuild verifies normalization preserves behavior: the
// decoded canonical form of a spec with every defaultable section builds the
// same RunConfig-relevant pieces (deployment draw, stimulus arrival) as the
// original.
func TestCanonicalPreservesBuild(t *testing.T) {
	sp := minimalSpec()
	sp.Deployment = DeploymentSpec{Kind: DeployClustered} // defaults materialize
	sp.Radio.Loss = LossFalloff                           // reliable materializes
	sp.Stimulus = StimulusSpec{Kind: StimAnisotropic, Origin: geom.V(0, 20),
		Speed: 0.5, Start: 10, Irregularity: 0.4} // harmonics materializes

	c, err := Canonical(sp)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := Decode(c)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range []int64{1, 7} {
		a, err := sp.BuildStimulus(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := canon.BuildStimulus(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []geom.Vec2{geom.V(5, 5), geom.V(20, 20), geom.V(35, 10)} {
			if ta, tb := a.Stimulus.ArrivalTime(p), b.Stimulus.ArrivalTime(p); ta != tb {
				t.Fatalf("seed %d: arrival at %v drifted: %g vs %g", seed, p, ta, tb)
			}
		}
	}
}

// TestCanonicalRejectsInvalid verifies Canonical and Hash validate first.
func TestCanonicalRejectsInvalid(t *testing.T) {
	bad := minimalSpec()
	bad.Nodes = 0
	if _, err := Canonical(bad); err == nil {
		t.Error("Canonical accepted an invalid spec")
	}
	if _, err := Hash(bad); err == nil {
		t.Error("Hash accepted an invalid spec")
	}
}
