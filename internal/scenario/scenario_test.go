package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/rng"
)

func TestRegistryValidatesAndBuilds(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("empty registry")
	}
	if all[0].Name != "paper" {
		t.Fatalf("first registry entry is %q, want the paper workload", all[0].Name)
	}
	seen := map[string]bool{}
	for _, sp := range all {
		if seen[sp.Name] {
			t.Errorf("duplicate scenario name %q", sp.Name)
		}
		seen[sp.Name] = true
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
			continue
		}
		ds, err := sp.BuildStimulus(1)
		if err != nil {
			t.Errorf("%s: building stimulus: %v", sp.Name, err)
			continue
		}
		if ds.Stimulus == nil || ds.Name != sp.Name || ds.Horizon != sp.Horizon {
			t.Errorf("%s: malformed diffusion scenario %+v", sp.Name, ds)
		}
	}
}

func TestLookup(t *testing.T) {
	sp, ok := Lookup("scale-10k")
	if !ok || sp.Nodes != 10000 {
		t.Fatalf("scale-10k = %+v, ok %v", sp, ok)
	}
	if _, ok := Lookup("atlantis"); ok {
		t.Error("unknown scenario found")
	}
	names := Names()
	if len(names) != len(All()) || names[0] != "paper" {
		t.Errorf("names = %v", names)
	}
}

// TestRegistryMatchesLegacyScenarios pins that the declarative specs rebuild
// the historical diffusion scenarios: same field, horizon and ground-truth
// arrival times over a sample grid (names differ by design: registry keys are
// the CLI names).
func TestRegistryMatchesLegacyScenarios(t *testing.T) {
	legacy := map[string]diffusion.Scenario{
		"paper":     diffusion.PaperScenario(),
		"irregular": diffusion.IrregularScenario(7),
		"gasleak":   diffusion.GasLeakScenario(),
		"twinspill": diffusion.TwinSpillScenario(),
		"passing":   diffusion.PassingPlumeScenario(),
		"quiet":     diffusion.QuietScenario(),
	}
	for name, want := range legacy {
		sp, ok := Lookup(name)
		if !ok {
			t.Fatalf("registry lost scenario %q", name)
		}
		got, err := sp.BuildStimulus(7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Field != want.Field || got.Horizon != want.Horizon {
			t.Errorf("%s: field/horizon drifted: got %v/%g want %v/%g",
				name, got.Field, got.Horizon, want.Field, want.Horizon)
		}
		for _, p := range []geom.Vec2{geom.V(1, 1), geom.V(10, 20), geom.V(33, 7), geom.V(20, 38)} {
			ga, wa := got.Stimulus.ArrivalTime(p), want.Stimulus.ArrivalTime(p)
			if ga != wa && !(math.IsInf(ga, 1) && math.IsInf(wa, 1)) {
				t.Errorf("%s: arrival at %v drifted: got %g want %g", name, p, ga, wa)
			}
		}
	}
}

func TestDeploymentSpecGenerate(t *testing.T) {
	field := geom.R(0, 0, 40, 40)
	st := func() *rng.Stream { return rng.NewSource(9).Stream("deploy") }

	uniform := DeploymentSpec{}.Generate(st(), field, 30, 10, 2000)
	if uniform.N() != 30 || !uniform.Connected(10) {
		t.Errorf("uniform: %d nodes, connected %v", uniform.N(), uniform.Connected(10))
	}

	grid := DeploymentSpec{Kind: DeployGrid, Jitter: 0.3}.Generate(st(), field, 30, 10, 2000)
	if grid.N() != 30 {
		t.Errorf("grid truncation: %d nodes, want 30", grid.N())
	}
	for _, p := range grid.Positions {
		if !field.Contains(p) {
			t.Fatalf("grid point %v outside field", p)
		}
	}

	clustered := DeploymentSpec{Kind: DeployClustered, Clusters: 4, Spread: 3}.Generate(st(), field, 30, 10, 2000)
	if clustered.N() != 30 {
		t.Errorf("clustered truncation: %d nodes, want 30", clustered.N())
	}

	poisson := DeploymentSpec{Kind: DeployPoisson, MinDist: 4}.Generate(st(), field, 30, 10, 2000)
	if poisson.N() != 30 {
		t.Errorf("poisson: placed %d of 30", poisson.N())
	}
	for i := 0; i < poisson.N(); i++ {
		for j := i + 1; j < poisson.N(); j++ {
			if poisson.Positions[i].Dist(poisson.Positions[j]) < 4 {
				t.Fatalf("poisson spacing violated between %d and %d", i, j)
			}
		}
	}

	// Same stream state, same spec → identical layout.
	a := DeploymentSpec{Kind: DeployGrid, Jitter: 0.2}.Generate(st(), field, 25, 10, 2000)
	b := DeploymentSpec{Kind: DeployGrid, Jitter: 0.2}.Generate(st(), field, 25, 10, 2000)
	if !reflect.DeepEqual(a.Positions, b.Positions) {
		t.Error("grid generation not deterministic")
	}
}

func TestDeploymentSpecDefaults(t *testing.T) {
	field := geom.R(0, 0, 40, 40)
	st := func() *rng.Stream { return rng.NewSource(4).Stream("deploy") }
	// Clustered with zero clusters/spread falls back to 5 clusters and 10% of
	// the field; more clusters than nodes clamps.
	d := DeploymentSpec{Kind: DeployClustered}.Generate(st(), field, 12, 10, 2000)
	if d.N() != 12 {
		t.Errorf("clustered defaults placed %d nodes", d.N())
	}
	d = DeploymentSpec{Kind: DeployClustered, Clusters: 50}.Generate(st(), field, 3, 10, 2000)
	if d.N() != 3 {
		t.Errorf("clamped clusters placed %d nodes", d.N())
	}
	// Poisson with zero spacing derives it from the density.
	d = DeploymentSpec{Kind: DeployPoisson}.Generate(st(), field, 20, 10, 2000)
	if d.N() != 20 {
		t.Errorf("poisson default spacing placed %d of 20", d.N())
	}
	// A saturating poisson spec must panic, not silently thin the network.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("saturated poisson deployment did not panic")
			}
		}()
		DeploymentSpec{Kind: DeployPoisson, MinDist: 30}.Generate(st(), field, 20, 10, 2000)
	}()
	defer func() {
		if recover() == nil {
			t.Error("unknown kind did not panic in Generate")
		}
	}()
	DeploymentSpec{Kind: "teleport"}.Generate(st(), field, 5, 10, 2000)
}

func TestScaleScenario(t *testing.T) {
	for n, name := range map[int]string{
		100: "scale-100", 1000: "scale-1k", 10000: "scale-10k",
		100000: "scale-100k", 1000000: "scale-1m", 2500: "scale-2500",
	} {
		sp := Scale(n)
		if sp.Name != name {
			t.Errorf("Scale(%d).Name = %q, want %q", n, sp.Name, name)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("Scale(%d): %v", n, err)
		}
		// Density matches the paper: 30 nodes per 40×40 m.
		density := float64(sp.Nodes) / sp.Field.Area()
		if math.Abs(density-30.0/1600.0) > 1e-9 {
			t.Errorf("Scale(%d) density = %g, want paper density", n, density)
		}
		// The front must cross the whole field within the horizon.
		ds, err := sp.BuildStimulus(1)
		if err != nil {
			t.Fatalf("Scale(%d): %v", n, err)
		}
		far := sp.Field.Max
		if at := ds.Stimulus.ArrivalTime(far); at > sp.Horizon {
			t.Errorf("Scale(%d): far corner arrives at %g after horizon %g", n, at, sp.Horizon)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good, _ := Lookup("paper")
	cases := map[string]func(*Scenario){
		"no name":        func(s *Scenario) { s.Name = "" },
		"empty field":    func(s *Scenario) { s.Field = geom.Rect{} },
		"no nodes":       func(s *Scenario) { s.Nodes = 0 },
		"no horizon":     func(s *Scenario) { s.Horizon = 0 },
		"bad deployment": func(s *Scenario) { s.Deployment.Kind = "teleport" },
		"bad jitter":     func(s *Scenario) { s.Deployment = DeploymentSpec{Kind: DeployGrid, Jitter: 0.6} },
		"no range":       func(s *Scenario) { s.Radio.Range = 0 },
		"bad loss":       func(s *Scenario) { s.Radio.Loss = "psychic" },
		"bad loss prob":  func(s *Scenario) { s.Radio = RadioSpec{Range: 10, Loss: LossLossy, LossProb: 1.5} },
		"bad stimulus":   func(s *Scenario) { s.Stimulus.Kind = "vibes" },
		"no speed":       func(s *Scenario) { s.Stimulus.Speed = 0 },
		"bad failures":   func(s *Scenario) { s.Failures.Fraction = 2 },
		"bad protocol":   func(s *Scenario) { s.Protocol.Name = "tcp" },
		"empty multi":    func(s *Scenario) { s.Stimulus = StimulusSpec{Kind: StimMulti} },
		"nested multi": func(s *Scenario) {
			s.Stimulus = StimulusSpec{Kind: StimMulti, Sources: []StimulusSpec{{Kind: StimMulti}}}
		},
		"plume sans config":   func(s *Scenario) { s.Stimulus = StimulusSpec{Kind: StimPlume} },
		"eikonal sans config": func(s *Scenario) { s.Stimulus = StimulusSpec{Kind: StimEikonal} },
		"negative clusters":   func(s *Scenario) { s.Deployment = DeploymentSpec{Kind: DeployClustered, Clusters: -1} },
		"negative spread":     func(s *Scenario) { s.Deployment = DeploymentSpec{Kind: DeployClustered, Spread: -1} },
		"negative minDist":    func(s *Scenario) { s.Deployment = DeploymentSpec{Kind: DeployPoisson, MinDist: -2} },
		"bad reliable":        func(s *Scenario) { s.Radio = RadioSpec{Range: 10, Loss: LossFalloff, Reliable: 11} },
		"negative fail by":    func(s *Scenario) { s.Failures = FailureSpec{Fraction: 0.1, By: -5} },
		"negative fail from":  func(s *Scenario) { s.Failures = FailureSpec{Fraction: 0.1, From: -1} },
		"fail by before from": func(s *Scenario) { s.Failures = FailureSpec{Fraction: 0.1, From: 9, By: 4} },
		"negative cluster radius": func(s *Scenario) {
			s.Failures = FailureSpec{Fraction: 0.1, ClusterRadius: -2}
		},
		"churn fraction > 1": func(s *Scenario) { s.Failures = FailureSpec{Churn: &ChurnSpec{Fraction: 1.5}} },
		"churn negative mean": func(s *Scenario) {
			s.Failures = FailureSpec{Churn: &ChurnSpec{Fraction: 0.1, MeanDown: -3}}
		},
		"churn negative min": func(s *Scenario) {
			s.Failures = FailureSpec{Churn: &ChurnSpec{Fraction: 0.1, MinDown: -1}}
		},
		"churn negative start": func(s *Scenario) {
			s.Failures = FailureSpec{Churn: &ChurnSpec{Fraction: 0.1, Start: -1}}
		},
		"churn negative by": func(s *Scenario) {
			s.Failures = FailureSpec{Churn: &ChurnSpec{Fraction: 0.1, By: -1}}
		},
		"churn by before start": func(s *Scenario) {
			s.Failures = FailureSpec{Churn: &ChurnSpec{Fraction: 0.1, Start: 8, By: 3}}
		},
		"sensor fraction > 1": func(s *Scenario) { s.Failures = FailureSpec{Sensor: &SensorSpec{Fraction: 2}} },
		"sensor negative drift": func(s *Scenario) {
			s.Failures = FailureSpec{Sensor: &SensorSpec{Fraction: 0.1, Drift: -1}}
		},
		"sensor stuck > 1": func(s *Scenario) {
			s.Failures = FailureSpec{Sensor: &SensorSpec{Fraction: 0.1, Stuck: 1.1}}
		},
		"sensor negative burst rate": func(s *Scenario) {
			s.Failures = FailureSpec{Sensor: &SensorSpec{Fraction: 0.1, BurstRate: -1}}
		},
		"sensor negative burst len": func(s *Scenario) {
			s.Failures = FailureSpec{Sensor: &SensorSpec{Fraction: 0.1, BurstLen: -1}}
		},
		"radio loss = 1":       func(s *Scenario) { s.Failures = FailureSpec{Radio: &DegradationSpec{Loss: 1}} },
		"radio negative start": func(s *Scenario) { s.Failures = FailureSpec{Radio: &DegradationSpec{Loss: 0.5, Start: -1}} },
		"radio negative end":   func(s *Scenario) { s.Failures = FailureSpec{Radio: &DegradationSpec{Loss: 0.5, End: -1}} },
		"radio end before start": func(s *Scenario) {
			s.Failures = FailureSpec{Radio: &DegradationSpec{Loss: 0.5, Start: 7, End: 2}}
		},
		"liveness negative missK": func(s *Scenario) { s.Protocol.Liveness = &LivenessSpec{MissK: -1} },
		"liveness missK sans interval": func(s *Scenario) {
			s.Protocol.Liveness = &LivenessSpec{MissK: 3}
		},
		"liveness negative backoff": func(s *Scenario) {
			s.Protocol.Liveness = &LivenessSpec{MissK: 3, Interval: 5, BackoffInit: -1}
		},
		"liveness negative probes": func(s *Scenario) {
			s.Protocol.Liveness = &LivenessSpec{MissK: 3, Interval: 5, MaxProbes: -2}
		},
		"liveness backoff inverted": func(s *Scenario) {
			s.Protocol.Liveness = &LivenessSpec{MissK: 3, Interval: 5, BackoffInit: 9, BackoffMax: 4}
		},
		"negative max sleep":  func(s *Scenario) { s.Protocol = ProtocolSpec{MaxSleep: -1} },
		"negative dwell":      func(s *Scenario) { s.Stimulus.Dwell = -1 },
		"advected no speed":   func(s *Scenario) { s.Stimulus = StimulusSpec{Kind: StimAdvected, Drift: geom.V(1, 0)} },
		"anisotropic no base": func(s *Scenario) { s.Stimulus = StimulusSpec{Kind: StimAnisotropic, Irregularity: 0.2} },
		"anisotropic irr > 1": func(s *Scenario) {
			s.Stimulus = StimulusSpec{Kind: StimAnisotropic, Speed: 1, Irregularity: 1.2}
		},
		"bad multi source": func(s *Scenario) {
			s.Stimulus = StimulusSpec{Kind: StimMulti, Sources: []StimulusSpec{{Kind: StimRadial}}}
		},
		"bad plume config": func(s *Scenario) {
			s.Stimulus = StimulusSpec{Kind: StimPlume, Plume: &diffusion.PlumeConfig{NX: 1}}
		},
		"bad eikonal config": func(s *Scenario) {
			s.Stimulus = StimulusSpec{Kind: StimEikonal, Eikonal: &EikonalSpec{NX: 1}}
		},
	}
	for name, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("pristine paper spec rejected: %v", err)
	}
}

func TestRadioSpecModel(t *testing.T) {
	if m, err := (RadioSpec{Range: 10}).Model(); err != nil || m.MaxRange() != 10 {
		t.Errorf("unit model = %v, %v", m, err)
	}
	m, err := (RadioSpec{Range: 10, Loss: LossLossy, LossProb: 0.3}).Model()
	if err != nil || m.MaxRange() != 10 {
		t.Errorf("lossy model = %v, %v", m, err)
	}
	f, err := (RadioSpec{Range: 10, Loss: LossFalloff}).Model()
	if err != nil {
		t.Fatalf("falloff model: %v", err)
	}
	// Default reliable radius is 60% of range: always delivers inside it.
	st := rng.NewSource(1).Stream("loss")
	if !f.Delivers(5.9, st) {
		t.Error("falloff dropped a packet inside the reliable radius")
	}
	if f.Delivers(10.1, st) {
		t.Error("falloff delivered beyond max range")
	}
	if _, err := (RadioSpec{Range: -1}).Model(); err == nil {
		t.Error("negative range accepted")
	}
}

func TestEikonalPatchSpeedMap(t *testing.T) {
	spec := EikonalSpec{
		NX: 8, NY: 8,
		Bounds:    geom.R(0, 0, 40, 40),
		BaseSpeed: 0.6,
		Patches: []SpeedPatch{
			{Rect: geom.R(0, 18, 32, 24), Speed: 0.15},
			{Rect: geom.R(0, 20, 10, 22), Speed: 0}, // barrier wins (later patch)
		},
		Source:  geom.V(6, 6),
		Horizon: 100,
	}
	cfg := spec.terrainConfig()
	if v := cfg.Speed(geom.V(30, 30)); v != 0.6 {
		t.Errorf("base speed = %g", v)
	}
	if v := cfg.Speed(geom.V(20, 20)); v != 0.15 {
		t.Errorf("band speed = %g", v)
	}
	if v := cfg.Speed(geom.V(5, 21)); v != 0 {
		t.Errorf("barrier speed = %g", v)
	}
}

func TestDwellWrapsReceding(t *testing.T) {
	spec := StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 0), Speed: 1, Start: 0, Dwell: 5}
	front, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.V(10, 0) // arrival at t=10, dwell 5 → uncovered at t=16
	if !front.Covered(p, 12) {
		t.Error("not covered during dwell")
	}
	if front.Covered(p, 16) {
		t.Error("still covered after dwell")
	}
}

func TestMultiAnisotropicSourcesAreIndependent(t *testing.T) {
	aniso := StimulusSpec{Kind: StimAnisotropic, Origin: geom.V(0, 0), Speed: 1, Irregularity: 0.5, Harmonics: 4}
	multi := StimulusSpec{Kind: StimMulti, Sources: []StimulusSpec{aniso, aniso}}
	front, err := multi.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := front.(*diffusion.MultiSource)
	if !ok {
		t.Fatalf("built %T, want *diffusion.MultiSource", front)
	}
	a := m.Sources[0].(*diffusion.AnisotropicFront)
	b := m.Sources[1].(*diffusion.AnisotropicFront)
	if reflect.DeepEqual(a.Harmonics, b.Harmonics) {
		t.Error("sibling anisotropic sources drew identical harmonics (correlated streams)")
	}
	// Same seed still reproduces the same pair.
	again, err := multi.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.(*diffusion.MultiSource).Sources[0].(*diffusion.AnisotropicFront).Harmonics, a.Harmonics) {
		t.Error("multi-source build not reproducible")
	}
}

func TestStimulusBuildErrorsMentionScenario(t *testing.T) {
	sp, _ := Lookup("paper")
	sp.Stimulus.Speed = -1
	if _, err := sp.BuildStimulus(1); err == nil || !strings.Contains(err.Error(), "paper") {
		t.Errorf("error %v does not name the scenario", err)
	}
}
