package scenario

import (
	"fmt"
	"reflect"
	"testing"
)

// TestLegacyFailuresJSONBackCompat pins that failure specs written before the
// extended fault taxonomy still decode, still compile through the legacy
// (Fraction/By) path, and still produce the same content address. The hash
// literal was computed on the pre-fault tree; if this test fails, cached
// simulations keyed by old clients have silently gone stale.
func TestLegacyFailuresJSONBackCompat(t *testing.T) {
	data := []byte(`{
	  "name": "canon-test",
	  "field": {"Min": {"X": 0, "Y": 0}, "Max": {"X": 40, "Y": 40}},
	  "nodes": 10,
	  "horizon": 100,
	  "radio": {"range": 10},
	  "stimulus": {"kind": "radial", "origin": {"X": 0, "Y": 20}, "speed": 0.5, "start": 10},
	  "failures": {"fraction": 0.1, "by": 50}
	}`)
	sp, err := Decode(data)
	if err != nil {
		t.Fatalf("pre-fault failures JSON no longer decodes: %v", err)
	}
	want := FailureSpec{Fraction: 0.1, By: 50}
	if !reflect.DeepEqual(sp.Failures, want) {
		t.Errorf("failures decoded as %+v, want %+v", sp.Failures, want)
	}
	if sp.Failures.Extended() {
		t.Error("plain fraction/by spec classified as extended — it would leave the legacy code path")
	}
	h, err := Hash(sp)
	if err != nil {
		t.Fatal(err)
	}
	const preFaultHash = "05f2cbeab5c9dfe3a101e07d08eab7510703686fd8436a27436149b1c3429c52"
	if h != preFaultHash {
		t.Errorf("legacy spec hash drifted:\ngot  %s\nwant %s", h, preFaultHash)
	}
}

// TestLegacyPredictorJSONBackCompat pins that protocol specs written before
// the predictor portfolio still hash to the same content address: a spec with
// no predictor section must canonicalize byte-identically to its pre-predictor
// encoding, and an explicit paper-kind section must collapse onto it. The hash
// literal was computed on the pre-predictor tree; if this test fails, cached
// simulations keyed by old clients have silently gone stale.
func TestLegacyPredictorJSONBackCompat(t *testing.T) {
	data := []byte(`{
	  "name": "canon-pred-test",
	  "field": {"Min": {"X": 0, "Y": 0}, "Max": {"X": 40, "Y": 40}},
	  "nodes": 10,
	  "horizon": 100,
	  "radio": {"range": 10},
	  "stimulus": {"kind": "radial", "origin": {"X": 0, "Y": 20}, "speed": 0.5, "start": 10},
	  "protocol": {"name": "pas", "maxSleep": 20, "alertThreshold": 15, "liveness": {"missK": 3, "interval": 5}}
	}`)
	sp, err := Decode(data)
	if err != nil {
		t.Fatalf("pre-predictor protocol JSON no longer decodes: %v", err)
	}
	h, err := Hash(sp)
	if err != nil {
		t.Fatal(err)
	}
	const prePredictorHash = "ab3bef3cac31b09b43d4294f3be14827bff191f02d95b132e7548beecc46671f"
	if h != prePredictorHash {
		t.Errorf("legacy protocol spec hash drifted:\ngot  %s\nwant %s", h, prePredictorHash)
	}
	// An explicit default-predictor section is behaviourally identical and
	// must share the content address.
	sp.Protocol.Predictor = &PredictorSpec{Kind: "paper"}
	if hp, err := Hash(sp); err != nil || hp != prePredictorHash {
		t.Errorf("explicit paper predictor changed the hash: %s, %v", hp, err)
	}

	const preMinimalHash = "0f25be06e54e78aa53fcaed34ab7e32d2c06ac9fc6d932daebb8c91355c3a214"
	if h, err := Hash(minimalSpec()); err != nil || h != preMinimalHash {
		t.Errorf("minimal spec hash drifted: %s, %v (want %s)", h, err, preMinimalHash)
	}
}

// TestPredictorHashEquivalence extends the canonicalization contract to the
// predictor portfolio: kind defaults materialize and irrelevant parameters
// drop onto one hash, while behaviourally distinct predictors stay distinct.
func TestPredictorHashEquivalence(t *testing.T) {
	base := minimalSpec()

	equal := []struct {
		name string
		a, b *PredictorSpec
	}{
		{"absent vs explicit paper", nil, &PredictorSpec{Kind: "paper"}},
		{"paper ignores parameters", &PredictorSpec{Kind: "paper", Mu: 1.9}, nil},
		{"lms default mu spelled out", &PredictorSpec{Kind: "lms"}, &PredictorSpec{Kind: "lms", Mu: 0.5}},
		{"lms ignores alpha", &PredictorSpec{Kind: "lms", Alpha: 0.9}, &PredictorSpec{Kind: "lms"}},
		{"kalman defaults spelled out", &PredictorSpec{Kind: "kalman"},
			&PredictorSpec{Kind: "kalman", ProcessVar: 1, MeasureVar: 4}},
	}
	for _, tc := range equal {
		a, b := base, base
		a.Protocol.Predictor = tc.a
		b.Protocol.Predictor = tc.b
		ha, err := Hash(a)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		hb, err := Hash(b)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ha != hb {
			t.Errorf("%s: hashes differ for semantically equal specs", tc.name)
		}
	}

	distinct := []*PredictorSpec{
		{Kind: "lms"},
		{Kind: "lms", Mu: 1.5},
		{Kind: "ewma"},
		{Kind: "ar"},
		{Kind: "ar", Order: 3},
		{Kind: "kalman"},
		{Kind: "switching"},
		{Kind: "switching", Tolerance: 2},
	}
	hbase, err := Hash(base)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{hbase: "base"}
	for _, pr := range distinct {
		s := base
		s.Protocol.Predictor = pr
		h, err := Hash(s)
		if err != nil {
			t.Fatalf("%+v: %v", pr, err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("%+v: behaviorally distinct predictor hashed equal to %s", pr, prev)
		}
		seen[h] = fmt.Sprintf("%+v", pr)
	}
}

// TestExtendedFailuresHashEquivalence extends the canonicalization contract
// to the fault taxonomy: window defaults materialize, disabled sub-specs
// drop, and liveness defaults collapse onto one hash — while any behavioral
// difference keeps hashes distinct.
func TestExtendedFailuresHashEquivalence(t *testing.T) {
	base := minimalSpec()

	equal := []struct {
		name string
		a, b func(Scenario) Scenario
	}{
		{"churn window end 0 vs horizon", func(s Scenario) Scenario {
			s.Failures = FailureSpec{Churn: &ChurnSpec{Fraction: 0.2, MeanDown: 20}}
			return s
		}, func(s Scenario) Scenario {
			s.Failures = FailureSpec{Churn: &ChurnSpec{Fraction: 0.2, MeanDown: 20, By: s.Horizon}}
			return s
		}},
		{"zero-fraction churn drops", func(s Scenario) Scenario {
			return s
		}, func(s Scenario) Scenario {
			s.Failures = FailureSpec{Churn: &ChurnSpec{MeanDown: 20}}
			return s
		}},
		{"zero-fraction sensor drops", func(s Scenario) Scenario {
			return s
		}, func(s Scenario) Scenario {
			s.Failures = FailureSpec{Sensor: &SensorSpec{Drift: 3}}
			return s
		}},
		{"zero-loss degradation drops", func(s Scenario) Scenario {
			return s
		}, func(s Scenario) Scenario {
			s.Failures = FailureSpec{Radio: &DegradationSpec{Start: 10, End: 50}}
			return s
		}},
		{"degradation end 0 vs horizon", func(s Scenario) Scenario {
			s.Failures = FailureSpec{Radio: &DegradationSpec{Loss: 0.3}}
			return s
		}, func(s Scenario) Scenario {
			s.Failures = FailureSpec{Radio: &DegradationSpec{Loss: 0.3, End: s.Horizon}}
			return s
		}},
		{"liveness backoff defaults materialized", func(s Scenario) Scenario {
			s.Protocol.Liveness = &LivenessSpec{MissK: 3, Interval: 5}
			return s
		}, func(s Scenario) Scenario {
			s.Protocol.Liveness = &LivenessSpec{MissK: 3, Interval: 5, BackoffInit: 5, BackoffMax: 40, MaxProbes: 3}
			return s
		}},
		{"disabled liveness drops", func(s Scenario) Scenario {
			return s
		}, func(s Scenario) Scenario {
			s.Protocol.Liveness = &LivenessSpec{}
			return s
		}},
	}
	for _, tc := range equal {
		ha, err := Hash(tc.a(base))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		hb, err := Hash(tc.b(base))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ha != hb {
			t.Errorf("%s: hashes differ for semantically equal specs", tc.name)
		}
	}

	distinct := []struct {
		name string
		mut  func(Scenario) Scenario
	}{
		{"churn", func(s Scenario) Scenario {
			s.Failures.Churn = &ChurnSpec{Fraction: 0.2, MeanDown: 20}
			return s
		}},
		{"crash window start", func(s Scenario) Scenario {
			s.Failures = FailureSpec{Fraction: 0.1, From: 10}
			return s
		}},
		{"clustered crash", func(s Scenario) Scenario {
			s.Failures = FailureSpec{Fraction: 0.1, ClusterRadius: 8}
			return s
		}},
		{"sensor drift", func(s Scenario) Scenario {
			s.Failures.Sensor = &SensorSpec{Fraction: 0.3, Drift: 3}
			return s
		}},
		{"radio degradation", func(s Scenario) Scenario {
			s.Failures.Radio = &DegradationSpec{Loss: 0.3}
			return s
		}},
		{"liveness enabled", func(s Scenario) Scenario {
			s.Protocol.Liveness = &LivenessSpec{MissK: 3, Interval: 5}
			return s
		}},
		{"liveness missK", func(s Scenario) Scenario {
			s.Protocol.Liveness = &LivenessSpec{MissK: 4, Interval: 5}
			return s
		}},
	}
	hbase, err := Hash(base)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{hbase: "base"}
	for _, tc := range distinct {
		h, err := Hash(tc.mut(base))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("%s: behaviorally distinct spec hashed equal to %s", tc.name, prev)
		}
		seen[h] = tc.name
	}
}

// TestExtendedFailuresDecodeHandwritten decodes a fully loaded hand-written
// fault section — the JSON shape external clients will post to the daemon.
func TestExtendedFailuresDecodeHandwritten(t *testing.T) {
	data := []byte(`{
	  "name": "chaos",
	  "field": {"Min": {"X": 0, "Y": 0}, "Max": {"X": 40, "Y": 40}},
	  "nodes": 30,
	  "horizon": 140,
	  "radio": {"range": 10},
	  "stimulus": {"kind": "radial", "origin": {"X": 0, "Y": 20}, "speed": 0.5, "start": 10},
	  "failures": {
	    "fraction": 0.05, "from": 20, "by": 120, "clusterRadius": 10,
	    "churn": {"fraction": 0.2, "meanDown": 20, "minDown": 5},
	    "sensor": {"fraction": 0.3, "drift": 3, "stuck": 0.2, "burstRate": 2, "burstLen": 2},
	    "radio": {"start": 35, "end": 105, "loss": 0.15}
	  },
	  "protocol": {"name": "pas", "liveness": {"missK": 3, "interval": 5, "backoffInit": 2, "backoffMax": 16}}
	}`)
	sp, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Failures.Extended() {
		t.Error("loaded fault section not classified as extended")
	}
	if sp.Failures.Churn.MeanDown != 20 || sp.Failures.Sensor.BurstLen != 2 || sp.Failures.Radio.Loss != 0.15 {
		t.Errorf("fault sections decoded as %+v", sp.Failures)
	}
	if sp.Protocol.Liveness.BackoffMax != 16 {
		t.Errorf("liveness decoded as %+v", sp.Protocol.Liveness)
	}
	// The canonical pipeline must hold for the loaded shape too.
	if _, err := Hash(sp); err != nil {
		t.Fatalf("loaded spec failed to hash: %v", err)
	}
}
