package scenario

import (
	"fmt"
	"math"

	"repro/internal/diffusion"
	"repro/internal/geom"
)

// All returns the named scenario registry in presentation order. The first
// entry is always the paper's Figs. 4–7 workload; the extensions follow, then
// the structured-deployment showcases and the production-scale deployments.
// Every entry validates and builds.
func All() []Scenario {
	paperField := geom.R(0, 0, 40, 40)
	gasField := geom.R(0, 0, 80, 80)
	gas := StimulusSpec{Kind: StimAdvected, Origin: geom.V(8, 40), Speed: 1.2, Drift: geom.V(0.6, 0.15), Start: 5}
	return []Scenario{
		{
			Name:        "paper",
			Description: "radial liquid-pollutant front (paper Figs. 4-7 workload)",
			Field:       paperField, Nodes: 30, Horizon: 140,
			Radio:    RadioSpec{Range: 10},
			Stimulus: StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 20), Speed: 0.5, Start: 10},
		},
		{
			Name:        "irregular",
			Description: "anisotropic pollutant front with irregular boundary (Fig. 2 shape)",
			Field:       paperField, Nodes: 30, Horizon: 220,
			Radio: RadioSpec{Range: 10},
			Stimulus: StimulusSpec{Kind: StimAnisotropic, Origin: geom.V(0, 20), Speed: 0.5, Start: 10,
				Irregularity: 0.4, Harmonics: 4},
		},
		{
			Name:        "gasleak",
			Description: "advected noxious-gas release (emergent; paper §3.4 discussion)",
			Field:       gasField, Nodes: 60, Horizon: 100,
			Radio:    RadioSpec{Range: 15},
			Stimulus: gas,
		},
		{
			Name:        "twinspill",
			Description: "two simultaneous pollutant spills (union stimulus)",
			Field:       gasField, Nodes: 40, Horizon: 240,
			Radio: RadioSpec{Range: 18},
			Stimulus: StimulusSpec{Kind: StimMulti, Sources: []StimulusSpec{
				{Kind: StimRadial, Origin: geom.V(5, 20), Speed: 0.45, Start: 10},
				{Kind: StimRadial, Origin: geom.V(75, 65), Speed: 0.35, Start: 25},
			}},
		},
		{
			Name:        "passing",
			Description: "gas plume that blows past (finite dwell; covered→safe transitions)",
			Field:       gasField, Nodes: 40, Horizon: 100,
			Radio:    RadioSpec{Range: 18},
			Stimulus: withDwell(gas, 20),
		},
		{
			Name:        "plume",
			Description: "advection-diffusion PDE pollutant plume (thresholded contour front)",
			Field:       paperField, Nodes: 30, Horizon: 210,
			Radio: RadioSpec{Range: 10},
			Stimulus: StimulusSpec{Kind: StimPlume, Plume: &diffusion.PlumeConfig{
				Bounds:      paperField,
				NX:          64,
				NY:          64,
				Diffusivity: 2.0,
				Wind:        geom.V(0.25, 0.1),
				Source:      geom.V(8, 20),
				Rate:        60,
				Threshold:   0.05,
				Horizon:     200,
				Start:       10,
			}},
		},
		{
			Name:        "terrain",
			Description: "heterogeneous-terrain front (eikonal/fast-marching ground truth)",
			Field:       paperField, Nodes: 30, Horizon: 200,
			Radio: RadioSpec{Range: 10},
			Stimulus: StimulusSpec{Kind: StimEikonal, Eikonal: &EikonalSpec{
				NX: 80, NY: 80,
				Bounds:    paperField,
				BaseSpeed: 0.6,
				// Slow horizontal band across y∈[18,24] with a gap at the
				// right edge, as in diffusion.TerrainScenario.
				Patches: []SpeedPatch{{Rect: geom.R(0, 18, 32, 24), Speed: 0.15}},
				Source:  geom.V(6, 6),
				Start:   10,
				Horizon: 200,
			}},
		},
		{
			Name:        "quiet",
			Description: "no stimulus within the horizon (surveillance-lifetime workload)",
			Field:       paperField, Nodes: 30, Horizon: 1800,
			Radio:    RadioSpec{Range: 10},
			Stimulus: StimulusSpec{Kind: StimRadial, Origin: geom.V(-1e9, 20), Speed: 0.5},
		},
		{
			Name:        "grid",
			Description: "paper workload on a jittered lattice deployment",
			Field:       paperField, Nodes: 36, Horizon: 140,
			Deployment: DeploymentSpec{Kind: DeployGrid, Jitter: 0.3},
			Radio:      RadioSpec{Range: 10},
			Stimulus:   StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 20), Speed: 0.5, Start: 10},
		},
		{
			Name:        "clustered",
			Description: "paper workload on points-of-interest clusters",
			Field:       paperField, Nodes: 30, Horizon: 140,
			Deployment: DeploymentSpec{Kind: DeployClustered, Clusters: 5, Spread: 4},
			Radio:      RadioSpec{Range: 12},
			Stimulus:   StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 20), Speed: 0.5, Start: 10},
		},
		{
			Name:        "poisson",
			Description: "paper workload on a Poisson-disk (aerial-drop) deployment",
			Field:       paperField, Nodes: 30, Horizon: 140,
			Deployment: DeploymentSpec{Kind: DeployPoisson, MinDist: 5},
			Radio:      RadioSpec{Range: 12},
			Stimulus:   StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 20), Speed: 0.5, Start: 10},
		},
		{
			Name:        "harsh",
			Description: "falloff channel, collisions+CSMA and 10% node failures",
			Field:       paperField, Nodes: 40, Horizon: 140,
			Radio:    RadioSpec{Range: 12, Loss: LossFalloff, Reliable: 8, Collisions: true, CSMA: true},
			Stimulus: StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 20), Speed: 0.5, Start: 10},
			Failures: FailureSpec{Fraction: 0.1},
		},
		{
			Name:        "churn",
			Description: "crash-recovery churn: 20% of nodes blink out and rejoin, sink tracks liveness",
			Field:       paperField, Nodes: 30, Horizon: 140,
			Radio:    RadioSpec{Range: 10},
			Stimulus: StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 20), Speed: 0.5, Start: 10},
			Failures: FailureSpec{Churn: &ChurnSpec{Fraction: 0.2, MeanDown: 20}},
			Protocol: ProtocolSpec{Liveness: &LivenessSpec{MissK: 3, Interval: 5}},
		},
		{
			Name:        "drift",
			Description: "sensor miscalibration: 30% of nodes drift 3 s late, some stick or burst",
			Field:       paperField, Nodes: 30, Horizon: 140,
			Radio:    RadioSpec{Range: 10},
			Stimulus: StimulusSpec{Kind: StimRadial, Origin: geom.V(0, 20), Speed: 0.5, Start: 10},
			Failures: FailureSpec{Sensor: &SensorSpec{Fraction: 0.3, Drift: 3, Stuck: 0.2, BurstRate: 2, BurstLen: 2}},
		},
		Scale(100),
		Scale(1000),
		Scale(10000),
		Scale(100000),
		Scale(1000000),
	}
}

// withDwell returns the spec wrapped in a receding (finite-dwell) coverage.
func withDwell(s StimulusSpec, dwell float64) StimulusSpec {
	s.Dwell = dwell
	return s
}

// Scale returns the production-scale scenario with n nodes: a jittered grid
// at the paper's deployment density (30 nodes per 40 m × 40 m) with the
// paper's 10 m range, and a radial front whose speed scales with the field so
// it crosses within the standard 140 s horizon. Grid deployment keeps
// 10 000-node layouts connected and O(n) to draw — connected-uniform
// rejection sampling cannot reach this regime (a uniform random geometric
// graph at constant density disconnects once n outgrows e^(degree)).
func Scale(n int) Scenario {
	side := math.Sqrt(float64(n) * 1600.0 / 30.0)
	return Scenario{
		Name:        scaleName(n),
		Description: fmt.Sprintf("production-scale grid deployment (%d nodes, %.0f m field)", n, side),
		Field:       geom.R(0, 0, side, side),
		Nodes:       n,
		Horizon:     140,
		Deployment:  DeploymentSpec{Kind: DeployGrid, Jitter: 0.2},
		Radio:       RadioSpec{Range: 10},
		Stimulus:    StimulusSpec{Kind: StimRadial, Origin: geom.V(0, side/2), Speed: side / 90, Start: 10},
	}
}

// scaleName renders the registry key of a Scale scenario ("scale-10k",
// "scale-1m").
func scaleName(n int) string {
	switch {
	case n >= 1000000 && n%1000000 == 0:
		return fmt.Sprintf("scale-%dm", n/1000000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("scale-%dk", n/1000)
	default:
		return fmt.Sprintf("scale-%d", n)
	}
}

// Lookup finds a registry scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names lists the registry scenario names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}
