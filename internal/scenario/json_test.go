package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTripRegistry(t *testing.T) {
	for _, sp := range All() {
		data, err := sp.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", sp.Name, err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v\n%s", sp.Name, err, data)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Errorf("%s: round trip drifted:\nbefore %+v\nafter  %+v", sp.Name, sp, back)
		}
		again, err := back.Encode()
		if err != nil {
			t.Fatalf("%s: re-encode: %v", sp.Name, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("%s: encoding not canonical:\n%s\nvs\n%s", sp.Name, data, again)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	sp, _ := Lookup("paper")
	sp.Nodes = -3
	if _, err := sp.Encode(); err == nil {
		t.Error("invalid spec encoded")
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"unknown field": `{"name":"x","field":{"Min":{"X":0,"Y":0},"Max":{"X":1,"Y":1}},"nodes":1,"horizon":1,"warpDrive":true}`,
		"invalid spec":  `{"name":"x"}`,
		"trailing data": `{"name":"x"} extra`,
	}
	for name, data := range cases {
		if _, err := Decode([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeHandwritten(t *testing.T) {
	data := `{
	  "name": "custom",
	  "field": {"Min": {"X": 0, "Y": 0}, "Max": {"X": 50, "Y": 50}},
	  "nodes": 40,
	  "horizon": 120,
	  "deployment": {"kind": "poisson", "minDist": 4},
	  "radio": {"range": 12, "loss": "lossy", "lossProb": 0.1},
	  "stimulus": {"kind": "radial", "origin": {"X": 0, "Y": 25}, "speed": 0.6, "start": 5},
	  "failures": {"fraction": 0.05},
	  "protocol": {"name": "pas", "maxSleep": 15}
	}`
	sp, err := Decode([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Deployment.Kind != DeployPoisson || sp.Radio.LossProb != 0.1 || sp.Protocol.MaxSleep != 15 {
		t.Errorf("decoded spec = %+v", sp)
	}
	if _, err := sp.BuildStimulus(1); err != nil {
		t.Errorf("hand-written spec does not build: %v", err)
	}
}

func TestDecodeErrorsAreDescriptive(t *testing.T) {
	_, err := Decode([]byte(`{"name":"x","nodes":5}`))
	if err == nil || !strings.Contains(err.Error(), "field") {
		t.Errorf("validation error %v does not name the problem", err)
	}
}
