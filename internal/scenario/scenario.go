// Package scenario is the declarative workload subsystem of the PAS
// reproduction: a Scenario value composes a deployment kind, field size, node
// count, radio range and loss model, stimulus model, failure injection and
// protocol parameters into one self-describing, JSON-serializable spec. The
// named registry (All/Lookup) carries the paper's workload plus every
// extension scenario and the production-scale deployments; the experiment
// harness compiles a spec into a runnable configuration, and the CLIs select
// specs with -scenario.
//
// A spec is pure data: building it draws nothing from any RNG. All
// randomness (deployment draws, anisotropic harmonic draws, channel loss) is
// deferred to build time and derived from the run seed, so the same
// (scenario, seed) pair always produces the same simulation.
package scenario

import (
	"fmt"
	"math"

	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Deployment kinds accepted by DeploymentSpec.Kind.
const (
	DeployUniform   = "uniform" // connected uniform draw (the paper's, default)
	DeployGrid      = "grid"    // jittered lattice
	DeployClustered = "clustered"
	DeployPoisson   = "poisson" // Poisson-disk dart throwing
)

// Loss-model kinds accepted by RadioSpec.Loss.
const (
	LossUnit    = "unit" // perfect unit disk (default)
	LossLossy   = "lossy"
	LossFalloff = "falloff"
)

// Stimulus kinds accepted by StimulusSpec.Kind.
const (
	StimRadial      = "radial"
	StimAdvected    = "advected"
	StimAnisotropic = "anisotropic"
	StimMulti       = "multi"
	StimPlume       = "plume"
	StimEikonal     = "eikonal"
)

// Scenario is one fully described workload. The zero value is not valid; use
// the registry entries or fill every section and Validate.
type Scenario struct {
	// Name is the registry/CLI identifier (e.g. "paper", "scale-10k").
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Field is the deployment area in metres.
	Field geom.Rect `json:"field"`
	// Nodes is the deployment size.
	Nodes int `json:"nodes"`
	// Horizon is the simulated duration in seconds.
	Horizon float64 `json:"horizon"`
	// Deployment selects how node positions are drawn.
	Deployment DeploymentSpec `json:"deployment"`
	// Radio describes the channel.
	Radio RadioSpec `json:"radio"`
	// Stimulus describes the monitored phenomenon.
	Stimulus StimulusSpec `json:"stimulus"`
	// Failures optionally injects faults: crash-stop kills, churn, sensor
	// miscalibration and radio degradation windows.
	Failures FailureSpec `json:"failures,omitzero"`
	// Protocol optionally overrides protocol tunables.
	Protocol ProtocolSpec `json:"protocol,omitzero"`
}

// Validate reports the first problem with the spec, or nil.
func (s Scenario) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: missing name")
	case s.Field.Width() <= 0 || s.Field.Height() <= 0:
		return fmt.Errorf("scenario %s: field %v has no area", s.Name, s.Field)
	case s.Nodes <= 0:
		return fmt.Errorf("scenario %s: node count %d must be positive", s.Name, s.Nodes)
	case s.Horizon <= 0:
		return fmt.Errorf("scenario %s: horizon %g must be positive", s.Name, s.Horizon)
	}
	if err := s.Deployment.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Radio.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Stimulus.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Failures.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Protocol.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return nil
}

// BuildStimulus compiles the stimulus spec into the diffusion scenario the
// run path consumes; seed parameterizes the stochastic stimuli.
func (s Scenario) BuildStimulus(seed int64) (diffusion.Scenario, error) {
	stim, err := s.Stimulus.Build(seed)
	if err != nil {
		return diffusion.Scenario{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return diffusion.Scenario{
		Name:        s.Name,
		Description: s.Description,
		Field:       s.Field,
		Horizon:     s.Horizon,
		Stimulus:    stim,
	}, nil
}

// DeploymentSpec selects a deployment generator. The zero value is the
// paper's connected-uniform draw. The struct is comparable on purpose: the
// experiment harness uses it inside its deployment-memoization key.
type DeploymentSpec struct {
	// Kind is one of the Deploy* constants ("" = uniform).
	Kind string `json:"kind,omitempty"`
	// Jitter is the grid positional jitter as a fraction of the cell size.
	Jitter float64 `json:"jitter,omitempty"`
	// Clusters is the cluster count for clustered deployments.
	Clusters int `json:"clusters,omitempty"`
	// Spread is the Gaussian cluster spread in metres.
	Spread float64 `json:"spread,omitempty"`
	// MinDist is the Poisson-disk minimum pairwise spacing in metres
	// (0 = 70% of the mean uniform spacing sqrt(area/n)).
	MinDist float64 `json:"minDist,omitempty"`
}

func (d DeploymentSpec) validate() error {
	switch d.Kind {
	case "", DeployUniform, DeployGrid, DeployClustered, DeployPoisson:
	default:
		return fmt.Errorf("unknown deployment kind %q", d.Kind)
	}
	switch {
	case d.Jitter < 0 || d.Jitter > 0.49:
		return fmt.Errorf("grid jitter %g outside [0, 0.49]", d.Jitter)
	case d.Clusters < 0:
		return fmt.Errorf("negative cluster count %d", d.Clusters)
	case d.Spread < 0:
		return fmt.Errorf("negative cluster spread %g", d.Spread)
	case d.MinDist < 0:
		return fmt.Errorf("negative poisson spacing %g", d.MinDist)
	}
	return nil
}

// Generate draws the deployment for the spec. The uniform kind rejects
// disconnected layouts exactly as the paper harness always has (and panics
// when maxAttempts draws cannot connect); the structured kinds are connected
// by construction (grid) or intentionally clumpy (clustered, poisson) and are
// used as-is.
func (d DeploymentSpec) Generate(st *rng.Stream, field geom.Rect, n int, radius float64, maxAttempts int) *deploy.Deployment {
	switch d.Kind {
	case "", DeployUniform:
		return deploy.ConnectedUniform(st, field, n, radius, maxAttempts)
	case DeployGrid:
		// Lattice dimensions follow the field aspect ratio so cells stay
		// near-square; the lattice covers at least n cells and the surplus
		// positions (at the row-major tail) are dropped.
		aspect := field.Width() / field.Height()
		nx := int(math.Ceil(math.Sqrt(float64(n) * aspect)))
		if nx < 1 {
			nx = 1
		}
		ny := (n + nx - 1) / nx
		dep := deploy.Grid(st, field, nx, ny, d.Jitter)
		dep.Positions = dep.Positions[:n]
		return dep
	case DeployClustered:
		clusters := d.Clusters
		if clusters <= 0 {
			clusters = 5
		}
		if clusters > n {
			clusters = n
		}
		spread := d.Spread
		if spread <= 0 {
			spread = 0.1 * math.Min(field.Width(), field.Height())
		}
		per := (n + clusters - 1) / clusters
		dep := deploy.Clustered(st, field, clusters, per, spread)
		dep.Positions = dep.Positions[:n]
		return dep
	case DeployPoisson:
		minDist := d.MinDist
		if minDist <= 0 {
			minDist = 0.7 * math.Sqrt(field.Area()/float64(n))
		}
		dep := deploy.PoissonDisk(st, field, n, minDist)
		if dep.N() < n {
			// The scenario declares n nodes; silently simulating a thinner
			// network would misreport every per-node metric. Saturation is a
			// spec bug, handled like ConnectedUniform infeasibility.
			panic(fmt.Sprintf("scenario: poisson deployment saturated at %d of %d nodes (minDist %g over %v); enlarge the field or shrink minDist",
				dep.N(), n, minDist, field))
		}
		return dep
	default:
		panic(fmt.Sprintf("scenario: unknown deployment kind %q", d.Kind))
	}
}

// RadioSpec describes the channel: transmission range, loss model and MAC
// options.
type RadioSpec struct {
	// Range is the transmission range in metres.
	Range float64 `json:"range"`
	// Loss is one of the Loss* constants ("" = unit disk).
	Loss string `json:"loss,omitempty"`
	// LossProb is the per-packet drop probability of the lossy model.
	LossProb float64 `json:"lossProb,omitempty"`
	// Reliable is the falloff model's perfect inner radius
	// (0 = 60% of Range).
	Reliable float64 `json:"reliable,omitempty"`
	// Collisions enables destructive-collision modelling.
	Collisions bool `json:"collisions,omitempty"`
	// CSMA enables carrier sensing with the default backoff parameters.
	CSMA bool `json:"csma,omitempty"`
}

func (r RadioSpec) validate() error {
	switch {
	case r.Range <= 0:
		return fmt.Errorf("radio range %g must be positive", r.Range)
	case r.LossProb < 0 || r.LossProb >= 1:
		return fmt.Errorf("loss probability %g outside [0, 1)", r.LossProb)
	case r.Reliable < 0 || r.Reliable > r.Range:
		return fmt.Errorf("falloff reliable radius %g outside [0, range]", r.Reliable)
	}
	switch r.Loss {
	case "", LossUnit, LossLossy, LossFalloff:
		return nil
	default:
		return fmt.Errorf("unknown loss model %q", r.Loss)
	}
}

// Model builds the channel loss model of the spec.
func (r RadioSpec) Model() (radio.LossModel, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	switch r.Loss {
	case "", LossUnit:
		return radio.UnitDisk{Range: r.Range}, nil
	case LossLossy:
		return radio.LossyDisk{Range: r.Range, LossProb: r.LossProb}, nil
	default: // LossFalloff
		reliable := r.Reliable
		if reliable <= 0 {
			reliable = 0.6 * r.Range
		}
		return radio.DistanceFalloff{Reliable: reliable, Max: r.Range}, nil
	}
}

// FailureSpec describes fault injection. The original (and still default)
// shape kills Fraction of the nodes at uniform random times in [0, By]
// (By 0 = the horizon); the extended fields layer churn, sensor
// miscalibration and radio degradation on top. A spec using only Fraction/By
// compiles through the exact legacy code path, so pre-existing scenarios
// keep their hashes and their traces.
type FailureSpec struct {
	// Fraction of the nodes to crash-stop at uniform random times.
	Fraction float64 `json:"fraction,omitempty"`
	// By is the crash-window end (0 = the horizon).
	By float64 `json:"by,omitempty"`
	// From is the crash-window start (0 = time zero). Setting it engages
	// the extended fault path.
	From float64 `json:"from,omitempty"`
	// ClusterRadius switches the crash victim draw from uniform-random to
	// spatially clustered: victims are the Fraction×n nodes nearest a
	// randomly chosen epicentre, restricted to this radius in metres.
	ClusterRadius float64 `json:"clusterRadius,omitempty"`
	// Churn adds crash-recovery churn (nodes go dark, then rejoin).
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Sensor adds sensor miscalibration transforms.
	Sensor *SensorSpec `json:"sensor,omitempty"`
	// Radio adds a time-bounded radio degradation window.
	Radio *DegradationSpec `json:"radio,omitempty"`
}

// ChurnSpec describes crash-recovery churn: Fraction of the nodes each pick
// an outage start uniform in [Start, By] (By 0 = the horizon) and stay dark
// for MinDown plus an exponential draw with mean MeanDown seconds, then
// rejoin. Rejoining reuses the frozen topology — positions never change.
type ChurnSpec struct {
	Fraction float64 `json:"fraction,omitempty"`
	MeanDown float64 `json:"meanDown,omitempty"`
	MinDown  float64 `json:"minDown,omitempty"`
	Start    float64 `json:"start,omitempty"`
	By       float64 `json:"by,omitempty"`
}

func (c *ChurnSpec) validate() error {
	switch {
	case c.Fraction < 0 || c.Fraction > 1:
		return fmt.Errorf("churn fraction %g outside [0, 1]", c.Fraction)
	case c.MeanDown < 0:
		return fmt.Errorf("negative churn mean downtime %g", c.MeanDown)
	case c.MinDown < 0:
		return fmt.Errorf("negative churn min downtime %g", c.MinDown)
	case c.Start < 0:
		return fmt.Errorf("negative churn window start %g", c.Start)
	case c.By < 0:
		return fmt.Errorf("negative churn window end %g", c.By)
	case c.By > 0 && c.By < c.Start:
		return fmt.Errorf("churn window end %g before start %g", c.By, c.Start)
	}
	return nil
}

// SensorSpec describes miscalibration applied between stimulus and reading
// on Fraction of the nodes: Drift perceives the front Drift seconds late;
// Stuck is the probability a faulted node latches its reading forever at a
// uniform-random onset; BurstRate bursts per horizon (mean) of spurious
// always-detecting noise lasting Exponential(BurstLen) seconds each.
type SensorSpec struct {
	Fraction  float64 `json:"fraction,omitempty"`
	Drift     float64 `json:"drift,omitempty"`
	Stuck     float64 `json:"stuck,omitempty"`
	BurstRate float64 `json:"burstRate,omitempty"`
	BurstLen  float64 `json:"burstLen,omitempty"`
}

func (s *SensorSpec) validate() error {
	switch {
	case s.Fraction < 0 || s.Fraction > 1:
		return fmt.Errorf("sensor fault fraction %g outside [0, 1]", s.Fraction)
	case s.Drift < 0:
		return fmt.Errorf("negative sensor drift %g", s.Drift)
	case s.Stuck < 0 || s.Stuck > 1:
		return fmt.Errorf("sensor stuck probability %g outside [0, 1]", s.Stuck)
	case s.BurstRate < 0:
		return fmt.Errorf("negative sensor burst rate %g", s.BurstRate)
	case s.BurstLen < 0:
		return fmt.Errorf("negative sensor burst length %g", s.BurstLen)
	}
	return nil
}

// DegradationSpec layers an extra independent per-delivery drop probability
// Loss on the channel during [Start, End] (End 0 = the horizon), modelling a
// time-bounded radio degradation window (weather, interference).
type DegradationSpec struct {
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
	Loss  float64 `json:"loss,omitempty"`
}

func (d *DegradationSpec) validate() error {
	switch {
	case d.Loss < 0 || d.Loss >= 1:
		return fmt.Errorf("degradation loss %g outside [0, 1)", d.Loss)
	case d.Start < 0:
		return fmt.Errorf("negative degradation window start %g", d.Start)
	case d.End < 0:
		return fmt.Errorf("negative degradation window end %g", d.End)
	case d.End > 0 && d.End < d.Start:
		return fmt.Errorf("degradation window end %g before start %g", d.End, d.Start)
	}
	return nil
}

func (f FailureSpec) validate() error {
	switch {
	case f.Fraction < 0 || f.Fraction > 1:
		return fmt.Errorf("failure fraction %g outside [0, 1]", f.Fraction)
	case f.By < 0:
		return fmt.Errorf("negative failure deadline %g", f.By)
	case f.From < 0:
		return fmt.Errorf("negative failure window start %g", f.From)
	case f.By > 0 && f.By < f.From:
		return fmt.Errorf("failure window end %g before start %g", f.By, f.From)
	case f.ClusterRadius < 0:
		return fmt.Errorf("negative failure cluster radius %g", f.ClusterRadius)
	}
	if f.Churn != nil {
		if err := f.Churn.validate(); err != nil {
			return err
		}
	}
	if f.Sensor != nil {
		if err := f.Sensor.validate(); err != nil {
			return err
		}
	}
	if f.Radio != nil {
		if err := f.Radio.validate(); err != nil {
			return err
		}
	}
	return nil
}

// ProtocolSpec optionally pins the protocol and its headline tunables; zero
// fields defer to the run configuration (which the CLIs and experiments
// control). It deliberately exposes only the knobs the paper sweeps — full
// control remains available through the core/sas config types.
type ProtocolSpec struct {
	// Name is "pas", "sas", "ns" or "duty" ("" = caller's choice).
	Name string `json:"name,omitempty"`
	// MaxSleep caps the sleep ramp; the increment follows as MaxSleep/5
	// unless SleepIncrement is set.
	MaxSleep       float64 `json:"maxSleep,omitempty"`
	SleepIncrement float64 `json:"sleepIncrement,omitempty"`
	// AlertThreshold is the PAS alert time T_alert.
	AlertThreshold float64 `json:"alertThreshold,omitempty"`
	// Liveness enables the sink-side liveness tracker (suspect after
	// MissK silent intervals, backoff re-probes, then declare dead).
	Liveness *LivenessSpec `json:"liveness,omitempty"`
	// Predictor selects the arrival-prediction model the PAS agent runs
	// (nil or kind "paper" = the §3.3 estimator, byte-identical to every
	// pre-predictor release).
	Predictor *PredictorSpec `json:"predictor,omitempty"`
}

// PredictorSpec selects and tunes the PAS arrival predictor; it mirrors
// predict.Spec field for field (see internal/predict for kinds, parameter
// meanings and defaults). Zero parameters take the kind's defaults. The
// scenario layer additionally requires a finite tolerance: the canonical
// encoding is JSON, which cannot carry +Inf (the +Inf "never report" setting
// remains available programmatically through core.Config).
type PredictorSpec struct {
	Kind       string  `json:"kind,omitempty"`
	Mu         float64 `json:"mu,omitempty"`
	Alpha      float64 `json:"alpha,omitempty"`
	Order      int     `json:"order,omitempty"`
	ProcessVar float64 `json:"processVar,omitempty"`
	MeasureVar float64 `json:"measureVar,omitempty"`
	Tolerance  float64 `json:"tolerance,omitempty"`
}

// Spec converts to the predict-layer spec the run path consumes.
func (p PredictorSpec) Spec() predict.Spec {
	return predict.Spec{
		Kind: p.Kind, Mu: p.Mu, Alpha: p.Alpha, Order: p.Order,
		ProcessVar: p.ProcessVar, MeasureVar: p.MeasureVar, Tolerance: p.Tolerance,
	}
}

func predictorSpecOf(s predict.Spec) PredictorSpec {
	return PredictorSpec{
		Kind: s.Kind, Mu: s.Mu, Alpha: s.Alpha, Order: s.Order,
		ProcessVar: s.ProcessVar, MeasureVar: s.MeasureVar, Tolerance: s.Tolerance,
	}
}

func (p *PredictorSpec) validate() error {
	if math.IsInf(p.Tolerance, 1) {
		return fmt.Errorf("predictor tolerance +Inf is not JSON-encodable; set it through core.Config instead")
	}
	return p.Spec().Validate()
}

// LivenessSpec tunes the sink-side peer liveness tracker of the PAS/SAS
// agents: a peer silent for MissK×Interval seconds is marked suspect and
// re-probed with capped exponential backoff (BackoffInit doubling up to
// BackoffMax, defaults Interval and 8×Interval) until MaxProbes probes
// (default 3) have gone unanswered, at which point it is declared dead.
type LivenessSpec struct {
	MissK       int     `json:"missK,omitempty"`
	Interval    float64 `json:"interval,omitempty"`
	BackoffInit float64 `json:"backoffInit,omitempty"`
	BackoffMax  float64 `json:"backoffMax,omitempty"`
	MaxProbes   int     `json:"maxProbes,omitempty"`
}

func (l *LivenessSpec) validate() error {
	switch {
	case l.MissK < 0:
		return fmt.Errorf("negative liveness missK %d", l.MissK)
	case l.MissK > 0 && l.Interval <= 0:
		return fmt.Errorf("liveness interval %g must be positive when missK is set", l.Interval)
	case l.Interval < 0 || l.BackoffInit < 0 || l.BackoffMax < 0:
		return fmt.Errorf("negative liveness tunable in %+v", *l)
	case l.MaxProbes < 0:
		return fmt.Errorf("negative liveness maxProbes %d", l.MaxProbes)
	case l.BackoffMax > 0 && l.BackoffInit > l.BackoffMax:
		return fmt.Errorf("liveness backoffInit %g above backoffMax %g", l.BackoffInit, l.BackoffMax)
	}
	return nil
}

func (p ProtocolSpec) validate() error {
	switch p.Name {
	case "", "pas", "sas", "ns", "duty":
	default:
		return fmt.Errorf("unknown protocol %q", p.Name)
	}
	if p.MaxSleep < 0 || p.SleepIncrement < 0 || p.AlertThreshold < 0 {
		return fmt.Errorf("negative protocol tunable in %+v", p)
	}
	if p.Liveness != nil {
		if err := p.Liveness.validate(); err != nil {
			return err
		}
	}
	if p.Predictor != nil {
		if err := p.Predictor.validate(); err != nil {
			return err
		}
	}
	return nil
}
