// Package scenario is the declarative workload subsystem of the PAS
// reproduction: a Scenario value composes a deployment kind, field size, node
// count, radio range and loss model, stimulus model, failure injection and
// protocol parameters into one self-describing, JSON-serializable spec. The
// named registry (All/Lookup) carries the paper's workload plus every
// extension scenario and the production-scale deployments; the experiment
// harness compiles a spec into a runnable configuration, and the CLIs select
// specs with -scenario.
//
// A spec is pure data: building it draws nothing from any RNG. All
// randomness (deployment draws, anisotropic harmonic draws, channel loss) is
// deferred to build time and derived from the run seed, so the same
// (scenario, seed) pair always produces the same simulation.
package scenario

import (
	"fmt"
	"math"

	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Deployment kinds accepted by DeploymentSpec.Kind.
const (
	DeployUniform   = "uniform" // connected uniform draw (the paper's, default)
	DeployGrid      = "grid"    // jittered lattice
	DeployClustered = "clustered"
	DeployPoisson   = "poisson" // Poisson-disk dart throwing
)

// Loss-model kinds accepted by RadioSpec.Loss.
const (
	LossUnit    = "unit" // perfect unit disk (default)
	LossLossy   = "lossy"
	LossFalloff = "falloff"
)

// Stimulus kinds accepted by StimulusSpec.Kind.
const (
	StimRadial      = "radial"
	StimAdvected    = "advected"
	StimAnisotropic = "anisotropic"
	StimMulti       = "multi"
	StimPlume       = "plume"
	StimEikonal     = "eikonal"
)

// Scenario is one fully described workload. The zero value is not valid; use
// the registry entries or fill every section and Validate.
type Scenario struct {
	// Name is the registry/CLI identifier (e.g. "paper", "scale-10k").
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Field is the deployment area in metres.
	Field geom.Rect `json:"field"`
	// Nodes is the deployment size.
	Nodes int `json:"nodes"`
	// Horizon is the simulated duration in seconds.
	Horizon float64 `json:"horizon"`
	// Deployment selects how node positions are drawn.
	Deployment DeploymentSpec `json:"deployment"`
	// Radio describes the channel.
	Radio RadioSpec `json:"radio"`
	// Stimulus describes the monitored phenomenon.
	Stimulus StimulusSpec `json:"stimulus"`
	// Failures optionally kills a fraction of nodes at random times.
	Failures FailureSpec `json:"failures,omitzero"`
	// Protocol optionally overrides protocol tunables.
	Protocol ProtocolSpec `json:"protocol,omitzero"`
}

// Validate reports the first problem with the spec, or nil.
func (s Scenario) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: missing name")
	case s.Field.Width() <= 0 || s.Field.Height() <= 0:
		return fmt.Errorf("scenario %s: field %v has no area", s.Name, s.Field)
	case s.Nodes <= 0:
		return fmt.Errorf("scenario %s: node count %d must be positive", s.Name, s.Nodes)
	case s.Horizon <= 0:
		return fmt.Errorf("scenario %s: horizon %g must be positive", s.Name, s.Horizon)
	}
	if err := s.Deployment.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Radio.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Stimulus.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Failures.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := s.Protocol.validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return nil
}

// BuildStimulus compiles the stimulus spec into the diffusion scenario the
// run path consumes; seed parameterizes the stochastic stimuli.
func (s Scenario) BuildStimulus(seed int64) (diffusion.Scenario, error) {
	stim, err := s.Stimulus.Build(seed)
	if err != nil {
		return diffusion.Scenario{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return diffusion.Scenario{
		Name:        s.Name,
		Description: s.Description,
		Field:       s.Field,
		Horizon:     s.Horizon,
		Stimulus:    stim,
	}, nil
}

// DeploymentSpec selects a deployment generator. The zero value is the
// paper's connected-uniform draw. The struct is comparable on purpose: the
// experiment harness uses it inside its deployment-memoization key.
type DeploymentSpec struct {
	// Kind is one of the Deploy* constants ("" = uniform).
	Kind string `json:"kind,omitempty"`
	// Jitter is the grid positional jitter as a fraction of the cell size.
	Jitter float64 `json:"jitter,omitempty"`
	// Clusters is the cluster count for clustered deployments.
	Clusters int `json:"clusters,omitempty"`
	// Spread is the Gaussian cluster spread in metres.
	Spread float64 `json:"spread,omitempty"`
	// MinDist is the Poisson-disk minimum pairwise spacing in metres
	// (0 = 70% of the mean uniform spacing sqrt(area/n)).
	MinDist float64 `json:"minDist,omitempty"`
}

func (d DeploymentSpec) validate() error {
	switch d.Kind {
	case "", DeployUniform, DeployGrid, DeployClustered, DeployPoisson:
	default:
		return fmt.Errorf("unknown deployment kind %q", d.Kind)
	}
	switch {
	case d.Jitter < 0 || d.Jitter > 0.49:
		return fmt.Errorf("grid jitter %g outside [0, 0.49]", d.Jitter)
	case d.Clusters < 0:
		return fmt.Errorf("negative cluster count %d", d.Clusters)
	case d.Spread < 0:
		return fmt.Errorf("negative cluster spread %g", d.Spread)
	case d.MinDist < 0:
		return fmt.Errorf("negative poisson spacing %g", d.MinDist)
	}
	return nil
}

// Generate draws the deployment for the spec. The uniform kind rejects
// disconnected layouts exactly as the paper harness always has (and panics
// when maxAttempts draws cannot connect); the structured kinds are connected
// by construction (grid) or intentionally clumpy (clustered, poisson) and are
// used as-is.
func (d DeploymentSpec) Generate(st *rng.Stream, field geom.Rect, n int, radius float64, maxAttempts int) *deploy.Deployment {
	switch d.Kind {
	case "", DeployUniform:
		return deploy.ConnectedUniform(st, field, n, radius, maxAttempts)
	case DeployGrid:
		// Lattice dimensions follow the field aspect ratio so cells stay
		// near-square; the lattice covers at least n cells and the surplus
		// positions (at the row-major tail) are dropped.
		aspect := field.Width() / field.Height()
		nx := int(math.Ceil(math.Sqrt(float64(n) * aspect)))
		if nx < 1 {
			nx = 1
		}
		ny := (n + nx - 1) / nx
		dep := deploy.Grid(st, field, nx, ny, d.Jitter)
		dep.Positions = dep.Positions[:n]
		return dep
	case DeployClustered:
		clusters := d.Clusters
		if clusters <= 0 {
			clusters = 5
		}
		if clusters > n {
			clusters = n
		}
		spread := d.Spread
		if spread <= 0 {
			spread = 0.1 * math.Min(field.Width(), field.Height())
		}
		per := (n + clusters - 1) / clusters
		dep := deploy.Clustered(st, field, clusters, per, spread)
		dep.Positions = dep.Positions[:n]
		return dep
	case DeployPoisson:
		minDist := d.MinDist
		if minDist <= 0 {
			minDist = 0.7 * math.Sqrt(field.Area()/float64(n))
		}
		dep := deploy.PoissonDisk(st, field, n, minDist)
		if dep.N() < n {
			// The scenario declares n nodes; silently simulating a thinner
			// network would misreport every per-node metric. Saturation is a
			// spec bug, handled like ConnectedUniform infeasibility.
			panic(fmt.Sprintf("scenario: poisson deployment saturated at %d of %d nodes (minDist %g over %v); enlarge the field or shrink minDist",
				dep.N(), n, minDist, field))
		}
		return dep
	default:
		panic(fmt.Sprintf("scenario: unknown deployment kind %q", d.Kind))
	}
}

// RadioSpec describes the channel: transmission range, loss model and MAC
// options.
type RadioSpec struct {
	// Range is the transmission range in metres.
	Range float64 `json:"range"`
	// Loss is one of the Loss* constants ("" = unit disk).
	Loss string `json:"loss,omitempty"`
	// LossProb is the per-packet drop probability of the lossy model.
	LossProb float64 `json:"lossProb,omitempty"`
	// Reliable is the falloff model's perfect inner radius
	// (0 = 60% of Range).
	Reliable float64 `json:"reliable,omitempty"`
	// Collisions enables destructive-collision modelling.
	Collisions bool `json:"collisions,omitempty"`
	// CSMA enables carrier sensing with the default backoff parameters.
	CSMA bool `json:"csma,omitempty"`
}

func (r RadioSpec) validate() error {
	switch {
	case r.Range <= 0:
		return fmt.Errorf("radio range %g must be positive", r.Range)
	case r.LossProb < 0 || r.LossProb >= 1:
		return fmt.Errorf("loss probability %g outside [0, 1)", r.LossProb)
	case r.Reliable < 0 || r.Reliable > r.Range:
		return fmt.Errorf("falloff reliable radius %g outside [0, range]", r.Reliable)
	}
	switch r.Loss {
	case "", LossUnit, LossLossy, LossFalloff:
		return nil
	default:
		return fmt.Errorf("unknown loss model %q", r.Loss)
	}
}

// Model builds the channel loss model of the spec.
func (r RadioSpec) Model() (radio.LossModel, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	switch r.Loss {
	case "", LossUnit:
		return radio.UnitDisk{Range: r.Range}, nil
	case LossLossy:
		return radio.LossyDisk{Range: r.Range, LossProb: r.LossProb}, nil
	default: // LossFalloff
		reliable := r.Reliable
		if reliable <= 0 {
			reliable = 0.6 * r.Range
		}
		return radio.DistanceFalloff{Reliable: reliable, Max: r.Range}, nil
	}
}

// FailureSpec kills Fraction of the nodes at uniform random times in
// [0, By] (By 0 = the horizon).
type FailureSpec struct {
	Fraction float64 `json:"fraction,omitempty"`
	By       float64 `json:"by,omitempty"`
}

func (f FailureSpec) validate() error {
	if f.Fraction < 0 || f.Fraction > 1 {
		return fmt.Errorf("failure fraction %g outside [0, 1]", f.Fraction)
	}
	if f.By < 0 {
		return fmt.Errorf("negative failure deadline %g", f.By)
	}
	return nil
}

// ProtocolSpec optionally pins the protocol and its headline tunables; zero
// fields defer to the run configuration (which the CLIs and experiments
// control). It deliberately exposes only the knobs the paper sweeps — full
// control remains available through the core/sas config types.
type ProtocolSpec struct {
	// Name is "pas", "sas", "ns" or "duty" ("" = caller's choice).
	Name string `json:"name,omitempty"`
	// MaxSleep caps the sleep ramp; the increment follows as MaxSleep/5
	// unless SleepIncrement is set.
	MaxSleep       float64 `json:"maxSleep,omitempty"`
	SleepIncrement float64 `json:"sleepIncrement,omitempty"`
	// AlertThreshold is the PAS alert time T_alert.
	AlertThreshold float64 `json:"alertThreshold,omitempty"`
}

func (p ProtocolSpec) validate() error {
	switch p.Name {
	case "", "pas", "sas", "ns", "duty":
	default:
		return fmt.Errorf("unknown protocol %q", p.Name)
	}
	if p.MaxSleep < 0 || p.SleepIncrement < 0 || p.AlertThreshold < 0 {
		return fmt.Errorf("negative protocol tunable in %+v", p)
	}
	return nil
}
