package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/predict"
)

// Canonical renders the spec as canonical JSON: validated, defaults
// materialized, fields irrelevant to the selected kinds zeroed (so they drop
// from the encoding), object keys sorted, and numbers in Go's shortest-float
// form. Two specs that compile to the same simulation — e.g. deployment kind
// "" vs "uniform", or a falloff radio with Reliable 0 vs the materialized
// 0.6×Range — canonicalize to the same bytes, which is what makes the result
// a sound content-address: the serve layer keys its cache on Canonical, so
// equivalent requests collapse onto one cached simulation.
//
// Canonical output is itself a valid spec: Decode(Canonical(s)) succeeds and
// re-canonicalizes to byte-identical output (pinned by tests and by
// FuzzScenarioJSON).
func Canonical(s Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	raw, err := json.Marshal(s.normalized())
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing %s: %w", s.Name, err)
	}
	// Re-marshal through an untyped tree: maps encode with sorted keys, and
	// json.Number preserves the literal the struct marshal chose, so the
	// float formatting stays Go's canonical shortest form.
	var tree any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing %s: %w", s.Name, err)
	}
	out, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing %s: %w", s.Name, err)
	}
	return out, nil
}

// Hash returns the hex SHA-256 of the spec's canonical encoding — the
// content address of the workload. Semantically equal specs hash equal.
func Hash(s Scenario) (string, error) {
	c, err := Canonical(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// normalized returns the spec with every build-time default materialized and
// every field the selected kinds ignore reset to zero. It must preserve
// behavior exactly: for any valid s and seed, the normalized spec compiles to
// the identical simulation. Normalization is idempotent by construction —
// every branch emits already-normal output.
func (s Scenario) normalized() Scenario {
	s.Deployment = s.Deployment.normalized(s.Field, s.Nodes)
	s.Radio = s.Radio.normalized()
	s.Stimulus = s.Stimulus.normalized()
	s.Failures = s.Failures.normalized(s.Horizon)
	s.Protocol = s.Protocol.normalized()
	return s
}

// normalized mirrors the defaulting in Generate: only the fields the kind
// consumes survive, with their fallback values filled in.
func (d DeploymentSpec) normalized(field geom.Rect, n int) DeploymentSpec {
	switch d.Kind {
	case "", DeployUniform:
		return DeploymentSpec{Kind: DeployUniform}
	case DeployGrid:
		return DeploymentSpec{Kind: DeployGrid, Jitter: d.Jitter}
	case DeployClustered:
		clusters := d.Clusters
		if clusters <= 0 {
			clusters = 5
		}
		if clusters > n {
			clusters = n
		}
		spread := d.Spread
		if spread <= 0 {
			spread = 0.1 * math.Min(field.Width(), field.Height())
		}
		return DeploymentSpec{Kind: DeployClustered, Clusters: clusters, Spread: spread}
	case DeployPoisson:
		minDist := d.MinDist
		if minDist <= 0 {
			minDist = 0.7 * math.Sqrt(field.Area()/float64(n))
		}
		return DeploymentSpec{Kind: DeployPoisson, MinDist: minDist}
	default:
		return d // invalid kinds never reach here (Canonical validates first)
	}
}

// normalized mirrors the defaulting in Model. Lossy with LossProb 0 is NOT
// collapsed onto the unit disk: the lossy model still draws channel
// randomness per delivery, so the two specs simulate differently downstream
// of any collision/CSMA draw.
func (r RadioSpec) normalized() RadioSpec {
	out := RadioSpec{Range: r.Range, Collisions: r.Collisions, CSMA: r.CSMA}
	switch r.Loss {
	case "", LossUnit:
		out.Loss = LossUnit
	case LossLossy:
		out.Loss = LossLossy
		out.LossProb = r.LossProb
	case LossFalloff:
		out.Loss = LossFalloff
		out.Reliable = r.Reliable
		if out.Reliable <= 0 {
			out.Reliable = 0.6 * r.Range
		}
	default:
		return r
	}
	return out
}

// normalized keeps only the fields the kind's Build branch reads, mirroring
// the clamps RandomAnisotropicFront applies.
func (s StimulusSpec) normalized() StimulusSpec {
	out := StimulusSpec{Kind: s.Kind, Dwell: s.Dwell}
	switch s.Kind {
	case StimRadial:
		out.Origin, out.Speed, out.Start = s.Origin, s.Speed, s.Start
	case StimAdvected:
		out.Origin, out.Speed, out.Start, out.Drift = s.Origin, s.Speed, s.Start, s.Drift
	case StimAnisotropic:
		out.Origin, out.Speed, out.Start = s.Origin, s.Speed, s.Start
		out.Irregularity = math.Min(s.Irregularity, 0.95)
		out.Harmonics = s.Harmonics
		if out.Harmonics < 1 {
			out.Harmonics = 1
		}
	case StimMulti:
		out.Sources = make([]StimulusSpec, len(s.Sources))
		for i, sub := range s.Sources {
			out.Sources[i] = sub.normalized()
		}
	case StimPlume:
		out.Plume = s.Plume
	case StimEikonal:
		out.Eikonal = s.Eikonal
	default:
		return s
	}
	return out
}

// normalized drops the deadline when nothing fails and materializes the
// "0 = horizon" deadline default otherwise (mirroring experiment.Build).
// The legacy branch (no extended fields) is byte-identical to its pre-fault
// behaviour, so old specs keep old hashes; the extended branch materializes
// each sub-spec's window defaults the same way fault.Compile consumes them.
func (f FailureSpec) normalized(horizon float64) FailureSpec {
	if !f.Extended() {
		if f.Fraction == 0 {
			return FailureSpec{}
		}
		if f.By == 0 {
			f.By = horizon
		}
		return f
	}
	if f.Fraction > 0 && f.By == 0 {
		f.By = horizon
	}
	if f.Fraction == 0 {
		f.By, f.From, f.ClusterRadius = 0, 0, 0
	}
	if f.Churn != nil {
		c := *f.Churn
		if c.Fraction == 0 {
			f.Churn = nil
		} else {
			if c.By == 0 {
				c.By = horizon
			}
			f.Churn = &c
		}
	}
	if f.Sensor != nil {
		s := *f.Sensor
		if s.Fraction == 0 {
			f.Sensor = nil
		} else {
			f.Sensor = &s
		}
	}
	if f.Radio != nil {
		d := *f.Radio
		if d.Loss == 0 {
			f.Radio = nil
		} else {
			if d.End == 0 {
				d.End = horizon
			}
			f.Radio = &d
		}
	}
	return f
}

// Extended reports whether any post-crash-stop fault field is in use; such
// specs compile through internal/fault instead of the legacy kill loop.
func (f FailureSpec) Extended() bool {
	return f.Churn != nil || f.Sensor != nil || f.Radio != nil ||
		f.From > 0 || f.ClusterRadius > 0
}

// normalized materializes the conventional MaxSleep/5 ramp the experiment
// harness fills in when a spec pins the cap but not the increment, and the
// liveness backoff defaults (mirroring fault.LivenessConfig.WithDefaults), so
// a spec that spells out the defaults hashes equal to one that omits them. A
// disabled liveness section (missK or interval unset) drops entirely, and the
// predictor section follows predict.Spec.Canonical — with a paper-kind spec
// dropping to nil so pre-predictor content addresses are preserved.
func (p ProtocolSpec) normalized() ProtocolSpec {
	if p.MaxSleep > 0 && p.SleepIncrement == 0 {
		p.SleepIncrement = p.MaxSleep / 5
	}
	if l := p.Liveness; l != nil {
		if l.MissK <= 0 || l.Interval <= 0 {
			p.Liveness = nil
		} else {
			v := *l
			if v.BackoffInit == 0 {
				v.BackoffInit = v.Interval
			}
			if v.BackoffMax == 0 {
				v.BackoffMax = 8 * v.Interval
			}
			if v.MaxProbes == 0 {
				v.MaxProbes = 3
			}
			p.Liveness = &v
		}
	}
	if pr := p.Predictor; pr != nil {
		c := pr.Spec().Canonical()
		if c.Kind == predict.KindPaper {
			p.Predictor = nil
		} else {
			v := predictorSpecOf(c)
			p.Predictor = &v
		}
	}
	return p
}
