package scenario

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzScenarioJSON fuzzes the scenario codec: any input that decodes must
// re-encode canonically (decode → encode → decode is the identity, and the
// second encode is byte-identical). The registry seeds the corpus so the
// fuzzer starts from every spec shape we ship.
func FuzzScenarioJSON(f *testing.F) {
	for _, sp := range All() {
		data, err := sp.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","field":{"Min":{"X":0,"Y":0},"Max":{"X":9,"Y":9}},"nodes":2,"horizon":1,` +
		`"radio":{"range":3},"stimulus":{"kind":"radial","speed":1}}`))
	// A fully loaded extended fault section plus liveness, so the fuzzer
	// mutates every fault-taxonomy field from the start.
	f.Add([]byte(`{"name":"chaos","field":{"Min":{"X":0,"Y":0},"Max":{"X":40,"Y":40}},"nodes":30,"horizon":140,` +
		`"radio":{"range":10},"stimulus":{"kind":"radial","origin":{"X":0,"Y":20},"speed":0.5,"start":10},` +
		`"failures":{"fraction":0.05,"from":20,"by":120,"clusterRadius":10,` +
		`"churn":{"fraction":0.2,"meanDown":20,"minDown":5},` +
		`"sensor":{"fraction":0.3,"drift":3,"stuck":0.2,"burstRate":2,"burstLen":2},` +
		`"radio":{"start":35,"end":105,"loss":0.15}},` +
		`"protocol":{"name":"pas","liveness":{"missK":3,"interval":5,"backoffInit":2,"backoffMax":16}}}`))
	// A predictor-bearing protocol section, so the fuzzer mutates every
	// predictor field (kind, filter tunables, tolerance) from the start.
	f.Add([]byte(`{"name":"pred","field":{"Min":{"X":0,"Y":0},"Max":{"X":40,"Y":40}},"nodes":10,"horizon":100,` +
		`"radio":{"range":10},"stimulus":{"kind":"radial","origin":{"X":0,"Y":20},"speed":0.5,"start":10},` +
		`"protocol":{"name":"pas","maxSleep":20,` +
		`"predictor":{"kind":"switching","mu":0.5,"alpha":0.3,"order":2,"processVar":1,"measureVar":4,"tolerance":1}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Decode(data)
		if err != nil {
			return // invalid inputs must only error, never panic
		}
		enc, err := sp.Encode()
		if err != nil {
			t.Fatalf("decoded spec failed to encode: %v\ninput: %s", err, data)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("round trip drifted:\nfirst  %+v\nsecond %+v", sp, back)
		}
		enc2, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical:\n%s\nvs\n%s", enc, enc2)
		}
		// The content-address pipeline must hold for every decodable spec:
		// the canonical form decodes, re-canonicalizes byte-identically, and
		// hashes equal to the original (the cache key of the serve layer).
		c1, err := Canonical(sp)
		if err != nil {
			t.Fatalf("valid spec failed to canonicalize: %v\ninput: %s", err, data)
		}
		csp, err := Decode(c1)
		if err != nil {
			t.Fatalf("canonical form failed to decode: %v\n%s", err, c1)
		}
		c2, err := Canonical(csp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization not idempotent:\n%s\nvs\n%s", c1, c2)
		}
		h1, err := Hash(sp)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := Hash(csp)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("hash not stable across canonicalization: %s vs %s", h1, h2)
		}
	})
}
