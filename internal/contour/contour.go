// Package contour implements the monitoring system's actual deliverable:
// an estimate of the stimulus's diffused area. The paper frames the task as
// "to detect the diffused area of stimulus" (§1); this module aggregates the
// sensors' detection reports into a covered-region estimate (the convex hull
// of detection positions known by time t) and scores it against ground truth
// with a Monte-Carlo symmetric-difference area error. The contour experiment
// uses it to show that PAS's sleeping does not destroy monitoring efficacy —
// the paper's "without decreasing system performance" claim.
package contour

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/rng"
)

// Detection is one sensor's first-detection report.
type Detection struct {
	Pos geom.Vec2
	At  float64
}

// Estimator aggregates detection reports into covered-area estimates. The
// zero value is ready to use.
type Estimator struct {
	detections []Detection
}

// Add records one detection report.
func (e *Estimator) Add(pos geom.Vec2, at float64) {
	e.detections = append(e.detections, Detection{Pos: pos, At: at})
}

// Attach subscribes the estimator to every node's detection hook. It
// occupies the node's single OnDetectHook slot.
func (e *Estimator) Attach(nodes []*node.Node) {
	for _, n := range nodes {
		n := n
		n.OnDetectHook(func(_ *node.Node, _ float64) {
			e.Add(n.Pos(), n.Now())
		})
	}
}

// Count returns the number of reports recorded.
func (e *Estimator) Count() int { return len(e.detections) }

// Detections returns the reports known by time t, in report order.
func (e *Estimator) Detections(t float64) []Detection {
	out := make([]Detection, 0, len(e.detections))
	for _, d := range e.detections {
		if d.At <= t {
			out = append(out, d)
		}
	}
	return out
}

// EstimateHull returns the convex hull of the detection positions known by
// time t — the sink's covered-region estimate. Fewer than three reports
// yield a degenerate (empty-area) polygon.
func (e *Estimator) EstimateHull(t float64) geom.Polygon {
	pts := make([]geom.Vec2, 0, len(e.detections))
	for _, d := range e.detections {
		if d.At <= t {
			pts = append(pts, d.Pos)
		}
	}
	return geom.ConvexHull(pts)
}

// FrontEstimate returns the detections on the hull boundary at time t — the
// sink's estimate of where the front has been, ordered counter-clockwise.
func (e *Estimator) FrontEstimate(t float64) []geom.Vec2 {
	hull := e.EstimateHull(t)
	out := make([]geom.Vec2, len(hull))
	copy(out, hull)
	return out
}

// AreaReport scores one estimate against ground truth.
type AreaReport struct {
	// TrueArea is the stimulus-covered area inside the field at t (m²).
	TrueArea float64
	// EstArea is the area of the estimated hull (m²).
	EstArea float64
	// SymDiff is the symmetric-difference area (m²): covered-but-missed
	// plus claimed-but-uncovered.
	SymDiff float64
	// ErrFrac is SymDiff normalized by TrueArea (0 when both are empty,
	// +Inf when TrueArea is 0 but the estimate claims area).
	ErrFrac float64
	// Samples is the Monte-Carlo sample count used.
	Samples int
}

// String implements fmt.Stringer.
func (r AreaReport) String() string {
	return fmt.Sprintf("true %.1f m², est %.1f m², symdiff %.1f m² (err %.1f%%)",
		r.TrueArea, r.EstArea, r.SymDiff, 100*r.ErrFrac)
}

// AreaError Monte-Carlo-scores the estimated hull against the stimulus's
// true coverage at time t over the given field. samples must be positive;
// the stream drives the sampling and should be dedicated so scores are
// reproducible.
func AreaError(hull geom.Polygon, stim diffusion.Stimulus, field geom.Rect, t float64, samples int, st *rng.Stream) AreaReport {
	if samples <= 0 {
		panic(fmt.Sprintf("contour: sample count must be positive, got %d", samples))
	}
	inTrue, inEst, inDiff := 0, 0, 0
	for i := 0; i < samples; i++ {
		p := geom.V(
			st.Uniform(field.Min.X, field.Max.X),
			st.Uniform(field.Min.Y, field.Max.Y),
		)
		covered := stim.Covered(p, t)
		claimed := len(hull) >= 3 && hull.Contains(p)
		if covered {
			inTrue++
		}
		if claimed {
			inEst++
		}
		if covered != claimed {
			inDiff++
		}
	}
	area := field.Area()
	rep := AreaReport{
		TrueArea: float64(inTrue) / float64(samples) * area,
		EstArea:  float64(inEst) / float64(samples) * area,
		SymDiff:  float64(inDiff) / float64(samples) * area,
		Samples:  samples,
	}
	switch {
	case rep.TrueArea > 0:
		rep.ErrFrac = rep.SymDiff / rep.TrueArea
	case rep.SymDiff > 0:
		rep.ErrFrac = math.Inf(1)
	}
	return rep
}

// Timeline scores the estimator at each of the given times (sorted copies;
// the input is not modified).
func Timeline(e *Estimator, stim diffusion.Stimulus, field geom.Rect, times []float64, samples int, st *rng.Stream) []AreaReport {
	ts := make([]float64, len(times))
	copy(ts, times)
	sort.Float64s(ts)
	out := make([]AreaReport, len(ts))
	for i, t := range ts {
		out[i] = AreaError(e.EstimateHull(t), stim, field, t, samples, st)
	}
	return out
}
