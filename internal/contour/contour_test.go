package contour

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/rng"
)

func TestEstimatorBasics(t *testing.T) {
	var e Estimator
	if e.Count() != 0 {
		t.Error("fresh estimator has detections")
	}
	e.Add(geom.V(0, 0), 1)
	e.Add(geom.V(10, 0), 2)
	e.Add(geom.V(10, 10), 3)
	e.Add(geom.V(0, 10), 4)
	if e.Count() != 4 {
		t.Errorf("Count = %d", e.Count())
	}
	// At t=2 only two detections are known: degenerate hull.
	if hull := e.EstimateHull(2); len(hull) >= 3 {
		t.Errorf("early hull = %v", hull)
	}
	if got := len(e.Detections(2)); got != 2 {
		t.Errorf("Detections(2) = %d", got)
	}
	// At t=4 the full square is known.
	hull := e.EstimateHull(4)
	if len(hull) != 4 {
		t.Fatalf("hull = %v", hull)
	}
	if a := hull.Area(); math.Abs(a-100) > 1e-9 {
		t.Errorf("hull area = %v", a)
	}
	if fe := e.FrontEstimate(4); len(fe) != 4 {
		t.Errorf("front estimate = %v", fe)
	}
}

func TestAreaErrorPerfectEstimate(t *testing.T) {
	// Stimulus covering x<=20 of a 40x40 field; the "estimate" is exactly
	// that half: error ≈ 0.
	stim := diffusion.NewRadialFront(geom.V(-1e6, 20), 1, 0)
	// Radial from far west: covered ≈ half-plane. Build that moment:
	// arrival at x=0 is 1e6; at x=20 it is 1e6+20. Use t so the front is at
	// x=20.
	tt := stim.ArrivalTime(geom.V(20, 20))
	field := geom.R(0, 0, 40, 40)
	est := geom.Polygon{geom.V(0, 0), geom.V(20, 0), geom.V(20, 40), geom.V(0, 40)}
	st := rng.NewSource(1).Stream("mc")
	rep := AreaError(est, stim, field, tt, 20000, st)
	if rep.ErrFrac > 0.03 {
		t.Errorf("perfect estimate err = %v", rep.ErrFrac)
	}
	if math.Abs(rep.TrueArea-800) > 40 {
		t.Errorf("TrueArea = %v, want ~800", rep.TrueArea)
	}
	if !strings.Contains(rep.String(), "err") {
		t.Error("String malformed")
	}
}

func TestAreaErrorEmptyCases(t *testing.T) {
	field := geom.R(0, 0, 10, 10)
	never := diffusion.NewRadialFront(geom.V(-1e9, 5), 0.001, 0)
	st := rng.NewSource(2).Stream("mc")
	// Nothing covered, nothing claimed: zero error.
	rep := AreaError(nil, never, field, 10, 2000, st)
	if rep.ErrFrac != 0 || rep.TrueArea != 0 {
		t.Errorf("empty case = %+v", rep)
	}
	// Nothing covered but estimate claims area: infinite relative error.
	claim := geom.Polygon{geom.V(0, 0), geom.V(5, 0), geom.V(5, 5), geom.V(0, 5)}
	rep = AreaError(claim, never, field, 10, 2000, st)
	if !math.IsInf(rep.ErrFrac, 1) {
		t.Errorf("false-claim ErrFrac = %v", rep.ErrFrac)
	}
}

func TestAreaErrorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero samples did not panic")
		}
	}()
	AreaError(nil, diffusion.NewRadialFront(geom.Zero, 1, 0), geom.R(0, 0, 1, 1), 1, 0, rng.NewSource(1).Stream("x"))
}

func TestEstimatorOnNSNetwork(t *testing.T) {
	// Always-on sensors detect instantly; the hull of detections at time t
	// tracks the true disc closely (bounded by deployment discretization).
	sc := diffusion.PaperScenario()
	dep := deploy.Grid(nil, sc.Field, 6, 6, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return baseline.NewNS() },
	})
	var est Estimator
	est.Attach(nw.Nodes)
	nw.Run(sc.Horizon)
	if est.Count() == 0 {
		t.Fatal("no detections recorded")
	}
	st := rng.NewSource(3).Stream("mc")
	// The front reaches the farthest corner at t≈99; sample while partial.
	reports := Timeline(&est, sc.Stimulus, sc.Field, []float64{80, 40, 60}, 8000, st)
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	// Timeline sorts times ascending; true area grows along it.
	if !(reports[0].TrueArea < reports[1].TrueArea && reports[1].TrueArea < reports[2].TrueArea) {
		t.Errorf("true areas not growing: %v %v %v",
			reports[0].TrueArea, reports[1].TrueArea, reports[2].TrueArea)
	}
	// With a 6x6 grid (6.7 m pitch) the NS estimate should capture the bulk
	// of the covered area once the front is deep into the field.
	last := reports[len(reports)-1]
	if last.ErrFrac > 0.5 {
		t.Errorf("NS hull error %v at t=80, want < 0.5", last.ErrFrac)
	}
	// Estimated area must not exceed true area grossly (hull of inside
	// points is inscribed for a convex front).
	if last.EstArea > last.TrueArea*1.1 {
		t.Errorf("estimate %v overshoots truth %v", last.EstArea, last.TrueArea)
	}
}

func TestHullErrorShrinksWithDensity(t *testing.T) {
	sc := diffusion.PaperScenario()
	errAt := func(nx int) float64 {
		dep := deploy.Grid(nil, sc.Field, nx, nx, 0)
		nw := node.BuildNetwork(node.NetworkConfig{
			Deployment: dep,
			Stimulus:   sc.Stimulus,
			Profile:    energy.Telos(),
			Loss:       radio.UnitDisk{Range: 12},
			Agents:     func(radio.NodeID) node.Agent { return baseline.NewNS() },
		})
		var est Estimator
		est.Attach(nw.Nodes)
		nw.Run(sc.Horizon)
		st := rng.NewSource(4).Stream("mc")
		return AreaError(est.EstimateHull(120), sc.Stimulus, sc.Field, 120, 8000, st).ErrFrac
	}
	sparse := errAt(4)
	dense := errAt(9)
	if dense >= sparse {
		t.Errorf("hull error did not shrink with density: %v (4x4) vs %v (9x9)", sparse, dense)
	}
}
