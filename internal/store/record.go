// Package store is the durability tier of the serving layer: a disk-backed
// content-addressed result store and an append-only job journal, both built
// on one CRC-framed record codec. The design exploits the repo's load-bearing
// determinism guarantee — a result key denotes exactly one byte sequence — so
// crash recovery never needs to reconcile conflicting versions: a record is
// either intact (the CRC proves it) or it is discarded and the result is
// recomputed, byte-identical, from its request.
//
// Durability discipline:
//
//   - Store writes are atomic: encode → write to a .tmp sibling → fsync →
//     rename into place → fsync the directory. A crash leaves either the old
//     state or the new state, never a torn visible record.
//   - The journal is append-only with per-entry fsync; a crash can tear only
//     the final entry, which replay detects (CRC/truncation) and truncates.
//   - Opening either runs a recovery scan: corrupt store records are
//     quarantined (moved aside for forensics, never silently deleted), and a
//     torn journal tail is clipped to the last intact entry.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing (little-endian):
//
//	magic   u32  'P' 'A' 'S' 'R'
//	version u8   recordVersion
//	keyLen  u16  length of the key in bytes
//	bodyLen u32  length of the body in bytes
//	key     [keyLen]byte
//	body    [bodyLen]byte
//	crc     u32  CRC-32C over everything above
//
// The CRC covers the header too, so a bit flip in a length field cannot
// redirect the body slice and still verify.
const (
	recordMagic   = 0x52534150 // "PASR" little-endian
	recordVersion = 1
	recordHeader  = 4 + 1 + 2 + 4 // magic + version + keyLen + bodyLen
	recordTrailer = 4             // crc

	// maxRecordKey/maxRecordBody bound a single record. Keys are SHA-256 hex
	// digests (64 bytes) plus small prefixes; bodies are JSON responses. The
	// caps exist so a corrupt length field fails cleanly instead of asking
	// the decoder to trust a multi-gigabyte claim.
	maxRecordKey  = 1 << 10
	maxRecordBody = 1 << 28
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on the
// platforms this serves from.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTruncated means the input ended mid-record (a torn
// write); ErrCorrupt means the framing or checksum is wrong (bit rot, or not
// a record at all). Both are clean, recoverable verdicts — the codec never
// panics and never returns partially-decoded data.
var (
	ErrTruncated = errors.New("store: truncated record")
	ErrCorrupt   = errors.New("store: corrupt record")
)

// AppendRecord appends the framed encoding of (key, body) to dst and returns
// the extended slice.
func AppendRecord(dst []byte, key string, body []byte) []byte {
	if len(key) > maxRecordKey {
		panic(fmt.Sprintf("store: record key length %d exceeds %d", len(key), maxRecordKey))
	}
	if len(body) > maxRecordBody {
		panic(fmt.Sprintf("store: record body length %d exceeds %d", len(body), maxRecordBody))
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, recordMagic)
	dst = append(dst, recordVersion)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, key...)
	dst = append(dst, body...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// EncodeRecord frames (key, body) as a fresh record.
func EncodeRecord(key string, body []byte) []byte {
	return AppendRecord(make([]byte, 0, recordHeader+len(key)+len(body)+recordTrailer), key, body)
}

// DecodeRecord decodes one record from the front of data, returning the key,
// the body and the total encoded length consumed. The body aliases data —
// callers that outlive data must copy. Torn input yields ErrTruncated,
// anything else malformed yields ErrCorrupt; DecodeRecord never panics.
func DecodeRecord(data []byte) (key string, body []byte, n int, err error) {
	if len(data) < recordHeader {
		return "", nil, 0, ErrTruncated
	}
	if binary.LittleEndian.Uint32(data) != recordMagic {
		return "", nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != recordVersion {
		return "", nil, 0, fmt.Errorf("%w: unknown record version %d", ErrCorrupt, data[4])
	}
	keyLen := int(binary.LittleEndian.Uint16(data[5:]))
	bodyLen := int(binary.LittleEndian.Uint32(data[7:]))
	if keyLen > maxRecordKey {
		return "", nil, 0, fmt.Errorf("%w: key length %d exceeds %d", ErrCorrupt, keyLen, maxRecordKey)
	}
	if bodyLen > maxRecordBody {
		return "", nil, 0, fmt.Errorf("%w: body length %d exceeds %d", ErrCorrupt, bodyLen, maxRecordBody)
	}
	total := recordHeader + keyLen + bodyLen + recordTrailer
	if len(data) < total {
		return "", nil, 0, ErrTruncated
	}
	sum := binary.LittleEndian.Uint32(data[total-recordTrailer:])
	if crc32.Checksum(data[:total-recordTrailer], crcTable) != sum {
		return "", nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	key = string(data[recordHeader : recordHeader+keyLen])
	body = data[recordHeader+keyLen : recordHeader+keyLen+bodyLen]
	return key, body, total, nil
}
