package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is a disk-backed content-addressed result store: one file per result
// key, written atomically (tmp + fsync + rename + directory fsync), verified
// by the record CRC on every read. It sits behind the serving layer's
// in-memory LRU as the second tier, so cache hits survive a process death.
//
// Keys must be safe path components (the serving layer uses SHA-256 hex
// digests); Put rejects anything else rather than trusting the caller.
type Store struct {
	mu      sync.Mutex
	dir     string
	entries map[string]int64 // key → body bytes on disk
	bytes   int64            // total body bytes across entries

	recovered   int // intact entries adopted by the recovery scan
	quarantined int // torn/corrupt files moved to quarantine/
}

// Stats is a point-in-time snapshot of the store's durability gauges.
type Stats struct {
	// Entries/Bytes describe the live store (bytes count stored bodies, not
	// framing overhead).
	Entries int
	Bytes   int64
	// Recovered/Quarantined describe the startup recovery scan: intact
	// records adopted, and torn or corrupt files moved to quarantine/.
	Recovered   int
	Quarantined int
}

const (
	resultSuffix  = ".res"
	tmpSuffix     = ".tmp"
	quarantineDir = "quarantine"
)

// Open opens (creating if needed) the store rooted at dir and runs the
// recovery scan: every .res file is CRC-verified and its key cross-checked
// against its filename; failures are moved to dir/quarantine (never deleted —
// a quarantined file is evidence). Leftover .tmp files are torn writes that
// were never visible, so they are quarantined too.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, entries: make(map[string]int64)}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// A tmp file is a write the process died inside; it was never
			// renamed into place, so no acknowledged state is lost.
			s.quarantine(path)
		case strings.HasSuffix(name, resultSuffix):
			key := strings.TrimSuffix(name, resultSuffix)
			data, err := os.ReadFile(path)
			if err != nil {
				s.quarantine(path)
				continue
			}
			k, body, n, err := DecodeRecord(data)
			if err != nil || k != key || n != len(data) {
				s.quarantine(path)
				continue
			}
			s.entries[key] = int64(len(body))
			s.bytes += int64(len(body))
			s.recovered++
		}
	}
	return s, nil
}

// quarantine moves a failed file into the quarantine directory, counting it.
// A move failure falls back to leaving the file where it is — recovery must
// not abort the daemon over forensics bookkeeping.
func (s *Store) quarantine(path string) {
	dst := filepath.Join(s.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.quarantined++
}

// validKey reports whether key is safe to use as a filename component. The
// serving layer's keys are SHA-256 hex; anything path-like is rejected.
func validKey(key string) bool {
	if key == "" || len(key) > maxRecordKey {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return key != "." && key != ".."
}

// Get returns the stored body for key. A record that fails verification at
// read time (bit rot since the scan) is quarantined and reported as a miss —
// determinism means the caller can always recompute it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; !ok {
		return nil, false
	}
	path := filepath.Join(s.dir, key+resultSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		s.dropLocked(key, path)
		return nil, false
	}
	k, body, n, err := DecodeRecord(data)
	if err != nil || k != key || n != len(data) {
		s.dropLocked(key, path)
		return nil, false
	}
	return body, true
}

// Has reports whether the store indexes key, without reading or verifying the
// record (replay uses it to decide what a dead process already persisted).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// dropLocked removes a failed entry from the index and quarantines its file.
func (s *Store) dropLocked(key, path string) {
	s.bytes -= s.entries[key]
	delete(s.entries, key)
	s.quarantine(path)
}

// Put durably stores body under key: the framed record is written to a tmp
// sibling, fsynced, renamed into place and the directory fsynced, so a crash
// at any instant leaves either no record or a complete one. Re-putting an
// existing key is a no-op (keys are content addresses; the bytes are equal by
// construction).
func (s *Store) Put(key string, body []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return nil
	}
	final := filepath.Join(s.dir, key+resultSuffix)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(EncodeRecord(key, body)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.entries[key] = int64(len(body))
	s.bytes += int64(len(body))
	return nil
}

// Sync fsyncs the store directory. Individual records are already durable at
// Put return; this is the belt-and-suspenders call the graceful-drain path
// makes before exit.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Stats snapshots the durability gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:     len(s.entries),
		Bytes:       s.bytes,
		Recovered:   s.recovered,
		Quarantined: s.quarantined,
	}
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
