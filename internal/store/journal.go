package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Job entry operations. A job's life in the journal is one OpSubmit entry —
// appended and fsynced BEFORE the 202 acknowledgment leaves the server, which
// is what makes the ack a durable promise — optionally followed by one
// OpDone or OpFail. A submit with no terminal entry at replay time is an
// incomplete job the restarted server must re-execute; determinism guarantees
// the re-execution produces the byte-identical body the dead process would
// have.
const (
	OpSubmit = "submit"
	OpDone   = "done"
	OpFail   = "fail"
)

// JobEntry is one journal record in its JSON payload form.
type JobEntry struct {
	// ID is the job identifier the 202 response carried.
	ID string `json:"id"`
	// Op is OpSubmit, OpDone or OpFail.
	Op string `json:"op"`
	// Mode is the endpoint mode ("run" or "replicate"); submit entries only.
	Mode string `json:"mode,omitempty"`
	// Key is the result's content address.
	Key string `json:"key,omitempty"`
	// Spec is the canonical scenario JSON; submit entries only. Canonical
	// form is what makes replay exact: the re-executed request hashes to the
	// same key the original did.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Seeds is the seed list (one entry for runs); submit entries only.
	Seeds []int64 `json:"seeds,omitempty"`
	// Shards is the sharded-execution hint the submission carried. An
	// execution detail, not part of the result key — replay honors it so a
	// recovered job runs at the speed the client asked for.
	Shards int `json:"shards,omitempty"`
	// Idem is the caller-supplied idempotency key, when one arrived.
	Idem string `json:"idem,omitempty"`
	// Error carries the failure message on OpFail entries.
	Error string `json:"error,omitempty"`
}

// Journal is the append-only write-ahead log of the async jobs API. Every
// append is fsynced before it returns, so an acknowledged entry survives
// kill -9; replay tolerates exactly the failure fsync discipline permits — a
// torn final record — by clipping the tail.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	torn int // torn tail records clipped at open
}

// OpenJournal opens (creating if needed) the journal at path, replays every
// intact entry in append order and positions the file for appending. A torn
// or corrupt tail — the only damage the per-entry fsync discipline can leave —
// is truncated away and counted; replay stops at the first bad frame because
// nothing after an unsynced tear is trustworthy.
func OpenJournal(path string) (*Journal, []JobEntry, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	var entries []JobEntry
	good := 0 // byte offset of the end of the last intact record
	torn := 0
	for off := 0; off < len(data); {
		_, body, n, err := DecodeRecord(data[off:])
		if err != nil {
			torn = 1
			break
		}
		var e JobEntry
		if err := json.Unmarshal(body, &e); err != nil {
			torn = 1
			break
		}
		entries = append(entries, e)
		off += n
		good = off
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: clipping torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	return &Journal{f: f, path: path, torn: torn}, entries, nil
}

// Append durably appends one entry: framed, written and fsynced before
// return. The caller may acknowledge the entry's effect to a client only
// after Append returns nil.
func (j *Journal) Append(e JobEntry) error {
	body, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	rec := EncodeRecord(e.ID, body)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	return nil
}

// Sync fsyncs the journal file (appends already sync; drain calls this for
// symmetry with the store).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	return nil
}

// Close releases the journal file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Torn reports how many torn tail records the opening replay clipped (0 or 1
// under the fsync discipline; more would indicate external damage).
func (j *Journal) Torn() int { return j.torn }

// Incomplete folds a replayed entry sequence into the jobs that were
// acknowledged but never finished, in submission order, plus the terminal
// entries by job ID. Unknown ops and terminal entries without a submit are
// ignored (they cannot correspond to an acknowledged promise).
func Incomplete(entries []JobEntry) (pending []JobEntry, terminal map[string]JobEntry) {
	terminal = make(map[string]JobEntry)
	submitted := make(map[string]int) // id → index into order
	var order []JobEntry
	for _, e := range entries {
		switch e.Op {
		case OpSubmit:
			if _, dup := submitted[e.ID]; dup {
				continue
			}
			submitted[e.ID] = len(order)
			order = append(order, e)
		case OpDone, OpFail:
			if _, ok := submitted[e.ID]; ok {
				terminal[e.ID] = e
			}
		}
	}
	for _, e := range order {
		if _, done := terminal[e.ID]; !done {
			pending = append(pending, e)
		}
	}
	return pending, terminal
}
