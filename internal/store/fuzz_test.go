package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecordCodec throws arbitrary bytes at the on-disk record decoder: it
// must never panic, never silently mis-decode, and valid encodings must
// round-trip. Torn and bit-flipped inputs are exactly what a kill -9 leaves
// behind, so "clean error, never corruption" here is the foundation the
// crash-recovery scan stands on.
func FuzzRecordCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord("key", []byte("body")))
	f.Add(EncodeRecord("", nil))
	f.Add(EncodeRecord("aabbcc", bytes.Repeat([]byte{7}, 300)))
	torn := EncodeRecord("torn", []byte("payload"))
	f.Add(torn[:len(torn)-3])
	flipped := EncodeRecord("flip", []byte("payload"))
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		key, body, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < recordHeader+recordTrailer || n > len(data) {
			t.Fatalf("claimed length %d outside [header, %d]", n, len(data))
		}
		// A successful decode must re-encode to exactly the bytes consumed:
		// the codec cannot accept a frame it would not itself produce.
		if re := EncodeRecord(key, body); !bytes.Equal(re, data[:n]) {
			t.Fatalf("decode accepted a non-canonical frame: %x vs %x", data[:n], re)
		}
	})
}

// FuzzJournalReplay feeds arbitrary bytes in as a journal file: replay must
// never panic, must clip to an intact prefix, and the clipped journal must
// then append and replay cleanly — the exact recovery path a crashed daemon
// takes on restart.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	good := EncodeRecord("j1", []byte(`{"id":"j1","op":"submit","key":"k"}`))
	f.Add(good)
	f.Add(append(append([]byte{}, good...), good[:len(good)-4]...)) // torn tail
	notJSON := EncodeRecord("j2", []byte("not json"))
	f.Add(append(append([]byte{}, good...), notJSON...))
	f.Add([]byte("PASRgarbage that is not a record at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "jobs.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, entries, err := OpenJournal(path)
		if err != nil {
			return
		}
		if err := j.Append(JobEntry{ID: "probe", Op: OpSubmit, Key: "k"}); err != nil {
			t.Fatalf("append after replay: %v", err)
		}
		j.Close()
		j2, entries2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen after clip+append: %v", err)
		}
		defer j2.Close()
		if j2.Torn() != 0 {
			t.Fatalf("journal still torn after clip+append")
		}
		if len(entries2) != len(entries)+1 {
			t.Fatalf("replayed %d entries, want %d intact + 1 appended", len(entries2), len(entries))
		}
		if last := entries2[len(entries2)-1]; last.ID != "probe" {
			t.Fatalf("appended entry lost: %+v", last)
		}
	})
}
