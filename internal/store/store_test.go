package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct {
		key  string
		body []byte
	}{
		{"k", []byte("hello")},
		{"", nil},
		{strings.Repeat("a", 64), bytes.Repeat([]byte{0}, 1000)},
		{"weird", []byte{0xff, 0x00, 0x50, 0x41, 0x53, 0x52}},
	}
	for _, tc := range cases {
		enc := EncodeRecord(tc.key, tc.body)
		key, body, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", tc.key, err)
		}
		if key != tc.key || !bytes.Equal(body, tc.body) || n != len(enc) {
			t.Fatalf("round trip mismatch: key %q body %d n %d of %d", key, len(body), n, len(enc))
		}
		// With trailing data the record still decodes and reports its length.
		key2, _, n2, err := DecodeRecord(append(append([]byte{}, enc...), "tail"...))
		if err != nil || key2 != tc.key || n2 != len(enc) {
			t.Fatalf("decode with tail: key %q n %d err %v", key2, n2, err)
		}
	}
}

func TestRecordTruncation(t *testing.T) {
	enc := EncodeRecord("key", []byte("body bytes"))
	for cut := 0; cut < len(enc); cut++ {
		_, _, _, err := DecodeRecord(enc[:cut])
		if err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(enc))
		}
		// Truncation inside the fixed header or the payload is ErrTruncated;
		// a cut that only removes CRC bytes still reads as truncated.
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestRecordBitFlips(t *testing.T) {
	enc := EncodeRecord("key", []byte("body bytes"))
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte{}, enc...)
			mut[i] ^= 1 << bit
			key, body, _, err := DecodeRecord(mut)
			if err == nil && (key != "key" || !bytes.Equal(body, []byte("body bytes"))) {
				t.Fatalf("bit flip at byte %d bit %d silently corrupted the record", i, bit)
			}
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded cleanly", i, bit)
			}
		}
	}
}

func TestRecordLengthCaps(t *testing.T) {
	// A corrupt bodyLen claiming more than the cap must fail as corrupt, not
	// truncated (which a retrying reader might wait out) and not allocate.
	enc := EncodeRecord("key", []byte("b"))
	enc[7] = 0xff
	enc[8] = 0xff
	enc[9] = 0xff
	enc[10] = 0x7f
	if _, _, _, err := DecodeRecord(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized bodyLen: %v, want ErrCorrupt", err)
	}
}

func TestStorePutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("aabb01", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("aabb01", []byte(`{"x":1}`)); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Put("ccdd02", []byte(`{"y":2}`)); err != nil {
		t.Fatal(err)
	}
	body, ok := s.Get("aabb01")
	if !ok || string(body) != `{"x":1}` {
		t.Fatalf("get = %q, %v", body, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key hit")
	}
	if !s.Has("aabb01") || s.Has("missing") {
		t.Fatal("Has disagrees with the index")
	}
	if n := s.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	st := s.Stats()
	if st.Entries != 2 || st.Bytes != int64(len(`{"x":1}`)+len(`{"y":2}`)) {
		t.Fatalf("stats = %+v", st)
	}
	if st.Recovered != 0 || st.Quarantined != 0 {
		t.Fatalf("fresh store has recovery stats: %+v", st)
	}

	// Reopen: both entries recovered intact.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.Entries != 2 || st2.Recovered != 2 || st2.Quarantined != 0 {
		t.Fatalf("reopened stats = %+v", st2)
	}
	body, ok = s2.Get("ccdd02")
	if !ok || string(body) != `{"y":2}` {
		t.Fatalf("reopened get = %q, %v", body, ok)
	}
}

func TestStoreRejectsUnsafeKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", ".", "..", "a/b", `a\b`, "a b", "a\x00b", strings.Repeat("k", maxRecordKey+1)} {
		if err := s.Put(key, []byte("v")); err == nil {
			t.Fatalf("key %q accepted", key)
		}
	}
}

func TestStoreRecoveryQuarantinesTornWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"good1", "good2", "torn", "flipped"} {
		if err := s.Put(k, []byte("body-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear one record mid-body, flip a bit in another, leave a stray tmp, and
	// drop a file whose embedded key disagrees with its name.
	tornPath := filepath.Join(dir, "torn"+resultSuffix)
	data, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	flippedPath := filepath.Join(dir, "flipped"+resultSuffix)
	data, err = os.ReadFile(flippedPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(flippedPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray"+resultSuffix+tmpSuffix), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "renamed"+resultSuffix), EncodeRecord("other", []byte("v")), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Entries != 2 || st.Recovered != 2 {
		t.Fatalf("recovered = %+v, want 2 intact entries", st)
	}
	if st.Quarantined != 4 {
		t.Fatalf("quarantined = %d, want 4 (torn, flipped, stray tmp, renamed)", st.Quarantined)
	}
	if _, ok := s2.Get("torn"); ok {
		t.Fatal("torn record served")
	}
	if body, ok := s2.Get("good1"); !ok || string(body) != "body-good1" {
		t.Fatalf("good1 = %q, %v", body, ok)
	}
	// The quarantined files are preserved for forensics, not deleted.
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 4 {
		t.Fatalf("quarantine holds %d files, want 4", len(q))
	}
}

func TestStoreGetQuarantinesLateCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("rot", []byte("value")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file after the scan: the next Get detects, quarantines and
	// misses instead of serving garbage.
	path := filepath.Join(dir, "rot"+resultSuffix)
	data, _ := os.ReadFile(path)
	data[recordHeader] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("rot"); ok {
		t.Fatal("bit-rotted record served")
	}
	st := s.Stats()
	if st.Entries != 0 || st.Quarantined != 1 {
		t.Fatalf("stats after rot = %+v", st)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	sub := JobEntry{ID: "j1", Op: OpSubmit, Mode: "run", Key: "k1", Spec: []byte(`{"name":"paper"}`), Seeds: []int64{7}, Idem: "idem-1"}
	if err := j.Append(sub); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JobEntry{ID: "j2", Op: OpSubmit, Mode: "replicate", Key: "k2", Spec: []byte(`{}`), Seeds: []int64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JobEntry{ID: "j1", Op: OpDone, Key: "k1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(entries) != 3 || j2.Torn() != 0 {
		t.Fatalf("replayed %d entries, torn %d", len(entries), j2.Torn())
	}
	if entries[0].ID != "j1" || entries[0].Mode != "run" || entries[0].Seeds[0] != 7 || entries[0].Idem != "idem-1" {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	pending, terminal := Incomplete(entries)
	if len(pending) != 1 || pending[0].ID != "j2" {
		t.Fatalf("pending = %+v, want exactly j2", pending)
	}
	if term, ok := terminal["j1"]; !ok || term.Op != OpDone {
		t.Fatalf("terminal = %+v", terminal)
	}
	// Appends after a replayed open extend, not overwrite.
	if err := j2.Append(JobEntry{ID: "j2", Op: OpFail, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	_, entries, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[3].Op != OpFail || entries[3].Error != "boom" {
		t.Fatalf("after reopen-append: %d entries, last %+v", len(entries), entries[len(entries)-1])
	}
	pending, _ = Incomplete(entries)
	if len(pending) != 0 {
		t.Fatalf("pending after fail = %+v", pending)
	}
}

func TestJournalTornTailClipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JobEntry{ID: "j1", Op: OpSubmit, Key: "k1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JobEntry{ID: "j2", Op: OpSubmit, Key: "k2"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Tear the final record, as a kill -9 mid-append would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != "j1" || j2.Torn() != 1 {
		t.Fatalf("replay after tear: %d entries, torn %d", len(entries), j2.Torn())
	}
	// The tail was physically truncated, so a new append produces a journal
	// that replays cleanly.
	if err := j2.Append(JobEntry{ID: "j3", Op: OpSubmit, Key: "k3"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, entries, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(entries) != 2 || entries[1].ID != "j3" || j3.Torn() != 0 {
		t.Fatalf("after clip+append: %d entries, torn %d", len(entries), j3.Torn())
	}
}

func TestIncompleteIgnoresOrphanTerminals(t *testing.T) {
	pending, terminal := Incomplete([]JobEntry{
		{ID: "ghost", Op: OpDone},
		{ID: "a", Op: OpSubmit},
		{ID: "a", Op: OpSubmit}, // duplicate submit ignored
		{ID: "b", Op: OpSubmit},
		{ID: "b", Op: "???"}, // unknown op ignored
	})
	if len(pending) != 2 || pending[0].ID != "a" || pending[1].ID != "b" {
		t.Fatalf("pending = %+v", pending)
	}
	if len(terminal) != 0 {
		t.Fatalf("terminal = %+v", terminal)
	}
}
