// Package deploy generates sensor deployments over a field and validates
// their connectivity. The paper's experiments use 30 nodes with a 10 m
// transmission range; the generators here are seeded so every experiment is
// reproducible, and the connectivity check rejects deployments whose
// REQUEST/RESPONSE gossip could never propagate.
package deploy

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Deployment is a set of fixed node positions over a field.
type Deployment struct {
	Field     geom.Rect
	Positions []geom.Vec2
}

// N returns the number of nodes.
func (d *Deployment) N() int { return len(d.Positions) }

// UniformRandom places n nodes independently and uniformly over the field.
func UniformRandom(st *rng.Stream, field geom.Rect, n int) *Deployment {
	if n <= 0 {
		panic(fmt.Sprintf("deploy: node count must be positive, got %d", n))
	}
	pts := make([]geom.Vec2, n)
	for i := range pts {
		pts[i] = geom.V(
			st.Uniform(field.Min.X, field.Max.X),
			st.Uniform(field.Min.Y, field.Max.Y),
		)
	}
	return &Deployment{Field: field, Positions: pts}
}

// Grid places nodes on a regular nx×ny lattice with optional positional
// jitter (fraction of the cell size, 0 = perfect lattice).
func Grid(st *rng.Stream, field geom.Rect, nx, ny int, jitter float64) *Deployment {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("deploy: grid dims must be positive, got %dx%d", nx, ny))
	}
	dx := field.Width() / float64(nx)
	dy := field.Height() / float64(ny)
	jitter = geom.Clamp(jitter, 0, 0.49)
	pts := make([]geom.Vec2, 0, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			p := geom.V(
				field.Min.X+(float64(i)+0.5)*dx,
				field.Min.Y+(float64(j)+0.5)*dy,
			)
			if jitter > 0 && st != nil {
				p = p.Add(geom.V(st.Uniform(-jitter*dx, jitter*dx), st.Uniform(-jitter*dy, jitter*dy)))
			}
			pts = append(pts, field.ClampPoint(p))
		}
	}
	return &Deployment{Field: field, Positions: pts}
}

// PoissonDisk places up to n nodes with pairwise spacing of at least minDist
// using dart throwing; it gives the even-but-unstructured layouts typical of
// aerial deployment. It stops early if the field cannot absorb more darts.
func PoissonDisk(st *rng.Stream, field geom.Rect, n int, minDist float64) *Deployment {
	if n <= 0 || minDist <= 0 {
		panic(fmt.Sprintf("deploy: invalid poisson parameters n=%d minDist=%g", n, minDist))
	}
	pts := make([]geom.Vec2, 0, n)
	// Accepted darts are indexed in a spatial hash with minDist-sized cells,
	// so each candidate checks only the 3×3 cell neighbourhood instead of
	// every accepted point: dart throwing is O(tries), not O(tries·n). The
	// acceptance rule (reject strictly inside minDist) and the draw order are
	// unchanged, so layouts are identical to the linear recheck for any seed.
	hash := geom.NewSpatialHash(field, minDist, nil)
	maxTries := 200 * n
	for tries := 0; tries < maxTries && len(pts) < n; tries++ {
		p := geom.V(
			st.Uniform(field.Min.X, field.Max.X),
			st.Uniform(field.Min.Y, field.Max.Y),
		)
		if !hash.AnyWithin(p, minDist) {
			pts = append(pts, p)
			hash.Insert(p)
		}
	}
	return &Deployment{Field: field, Positions: pts}
}

// Clustered places nodes in nClusters Gaussian clusters of the given spread,
// modelling deployments concentrated around points of interest.
func Clustered(st *rng.Stream, field geom.Rect, nClusters, perCluster int, spread float64) *Deployment {
	if nClusters <= 0 || perCluster <= 0 {
		panic(fmt.Sprintf("deploy: invalid cluster parameters %dx%d", nClusters, perCluster))
	}
	pts := make([]geom.Vec2, 0, nClusters*perCluster)
	for c := 0; c < nClusters; c++ {
		center := geom.V(
			st.Uniform(field.Min.X, field.Max.X),
			st.Uniform(field.Min.Y, field.Max.Y),
		)
		for i := 0; i < perCluster; i++ {
			p := center.Add(geom.V(st.Normal(0, spread), st.Normal(0, spread)))
			pts = append(pts, field.ClampPoint(p))
		}
	}
	return &Deployment{Field: field, Positions: pts}
}

// NeighborLists returns, for each node, the indices of all nodes within
// radius (excluding itself), ascending.
func (d *Deployment) NeighborLists(radius float64) [][]int {
	hash := geom.NewSpatialHash(d.Field.Expand(radius), radius, d.Positions)
	out := make([][]int, len(d.Positions))
	for i, p := range d.Positions {
		for _, j := range hash.Near(p, radius) {
			if j != i {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// Connected reports whether the unit-disk graph with the given radius is a
// single connected component (union-find).
func (d *Deployment) Connected(radius float64) bool {
	n := len(d.Positions)
	if n <= 1 {
		return true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i, nbrs := range d.NeighborLists(radius) {
		for _, j := range nbrs {
			union(i, j)
		}
	}
	root := find(0)
	for i := 1; i < n; i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}

// DegreeStats returns the min, mean and max neighbour count at the given
// radius.
func (d *Deployment) DegreeStats(radius float64) (min int, mean float64, max int) {
	lists := d.NeighborLists(radius)
	if len(lists) == 0 {
		return 0, 0, 0
	}
	min = math.MaxInt
	total := 0
	for _, l := range lists {
		deg := len(l)
		total += deg
		if deg < min {
			min = deg
		}
		if deg > max {
			max = deg
		}
	}
	return min, float64(total) / float64(len(lists)), max
}

// ConnectedUniform draws uniform deployments until one is connected at the
// given radius, up to maxAttempts (it panics when exhausted, because the
// caller's field/range/count combination is infeasible and every experiment
// depends on connectivity). The paper's 30-node/10 m setup needs a field
// dense enough for gossip, so this is the generator the experiments use.
func ConnectedUniform(st *rng.Stream, field geom.Rect, n int, radius float64, maxAttempts int) *Deployment {
	if maxAttempts <= 0 {
		maxAttempts = 100
	}
	for i := 0; i < maxAttempts; i++ {
		d := UniformRandom(st, field, n)
		if d.Connected(radius) {
			return d
		}
	}
	panic(fmt.Sprintf("deploy: no connected uniform deployment of %d nodes radius %g over %v in %d attempts",
		n, radius, field, maxAttempts))
}
