package deploy

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geom"
	"repro/internal/rng"
)

func testStream(name string) *rng.Stream {
	return rng.NewSource(42).Stream(name)
}

func TestUniformRandomInField(t *testing.T) {
	field := geom.R(10, 20, 50, 80)
	d := UniformRandom(testStream("u"), field, 200)
	if d.N() != 200 {
		t.Fatalf("N = %d", d.N())
	}
	for _, p := range d.Positions {
		if !field.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
	}
}

func TestUniformRandomDeterministic(t *testing.T) {
	a := UniformRandom(testStream("d"), geom.R(0, 0, 10, 10), 50)
	b := UniformRandom(testStream("d"), geom.R(0, 0, 10, 10), 50)
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatal("same stream produced different deployments")
		}
	}
}

func TestGridPlacement(t *testing.T) {
	field := geom.R(0, 0, 10, 10)
	d := Grid(nil, field, 5, 4, 0)
	if d.N() != 20 {
		t.Fatalf("N = %d", d.N())
	}
	// First point at cell center (1, 1.25).
	if !d.Positions[0].ApproxEqual(geom.V(1, 1.25), 1e-12) {
		t.Errorf("first point = %v", d.Positions[0])
	}
	// Jittered grid stays inside the field.
	j := Grid(testStream("g"), field, 5, 4, 0.4)
	for _, p := range j.Positions {
		if !field.Contains(p) {
			t.Fatalf("jittered point %v outside", p)
		}
	}
}

func TestPoissonDiskSpacing(t *testing.T) {
	d := PoissonDisk(testStream("p"), geom.R(0, 0, 100, 100), 60, 8)
	if d.N() < 30 {
		t.Fatalf("only %d darts placed", d.N())
	}
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			if d.Positions[i].Dist(d.Positions[j]) < 8 {
				t.Fatalf("points %d,%d closer than minDist", i, j)
			}
		}
	}
}

// poissonDiskReference is the pre-spatial-hash O(n²) dart thrower; the
// hash-backed implementation must reproduce its layouts draw for draw.
func poissonDiskReference(st *rng.Stream, field geom.Rect, n int, minDist float64) []geom.Vec2 {
	pts := make([]geom.Vec2, 0, n)
	maxTries := 200 * n
	for tries := 0; tries < maxTries && len(pts) < n; tries++ {
		p := geom.V(
			st.Uniform(field.Min.X, field.Max.X),
			st.Uniform(field.Min.Y, field.Max.Y),
		)
		ok := true
		for _, q := range pts {
			if p.Dist2(q) < minDist*minDist {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	return pts
}

func TestPoissonDiskMatchesLinearReference(t *testing.T) {
	// The spatial hash must not change a single accept/reject decision: same
	// stream, same parameters → byte-identical layouts, across fields whose
	// saturation regimes differ.
	cases := []struct {
		name    string
		field   geom.Rect
		n       int
		minDist float64
	}{
		{"sparse", geom.R(0, 0, 100, 100), 60, 8},
		{"saturated", geom.R(0, 0, 10, 10), 100, 3},
		{"offset field", geom.R(-50, 20, 30, 90), 120, 5},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 5; seed++ {
			got := PoissonDisk(rng.NewSource(seed).Stream("p"), tc.field, tc.n, tc.minDist)
			want := poissonDiskReference(rng.NewSource(seed).Stream("p"), tc.field, tc.n, tc.minDist)
			if len(got.Positions) != len(want) {
				t.Fatalf("%s seed %d: %d darts, reference placed %d", tc.name, seed, len(got.Positions), len(want))
			}
			for i := range want {
				if got.Positions[i] != want[i] {
					t.Fatalf("%s seed %d: dart %d = %v, reference %v", tc.name, seed, i, got.Positions[i], want[i])
				}
			}
		}
	}
}

func TestPoissonDisk10kFast(t *testing.T) {
	// 10k darts used to take O(tries·n) point comparisons; with the spatial
	// hash the whole throw is comfortably sub-second even under -race.
	start := time.Now()
	d := PoissonDisk(rng.NewSource(1).Stream("big"), geom.R(0, 0, 1000, 1000), 10000, 7)
	elapsed := time.Since(start)
	if d.N() != 10000 {
		t.Fatalf("placed %d of 10000 darts", d.N())
	}
	if elapsed > 5*time.Second {
		t.Errorf("10k darts took %v, want well under a second (5s CI allowance)", elapsed)
	}
	t.Logf("10k darts in %v", elapsed)
}

func TestPoissonDiskSaturates(t *testing.T) {
	// Tiny field cannot hold 100 far-apart darts; must stop early, not hang.
	d := PoissonDisk(testStream("ps"), geom.R(0, 0, 10, 10), 100, 8)
	if d.N() >= 100 {
		t.Errorf("placed %d darts in an impossible field", d.N())
	}
	if d.N() < 1 {
		t.Error("placed nothing")
	}
}

func TestClustered(t *testing.T) {
	field := geom.R(0, 0, 100, 100)
	d := Clustered(testStream("c"), field, 3, 10, 5)
	if d.N() != 30 {
		t.Fatalf("N = %d", d.N())
	}
	for _, p := range d.Positions {
		if !field.Contains(p) {
			t.Fatalf("clustered point %v outside (should clamp)", p)
		}
	}
}

func TestNeighborLists(t *testing.T) {
	d := &Deployment{
		Field:     geom.R(0, 0, 100, 100),
		Positions: []geom.Vec2{geom.V(0, 0), geom.V(5, 0), geom.V(9, 0), geom.V(50, 50)},
	}
	lists := d.NeighborLists(10)
	if len(lists[0]) != 2 || lists[0][0] != 1 || lists[0][1] != 2 {
		t.Errorf("node 0 neighbors = %v", lists[0])
	}
	if len(lists[3]) != 0 {
		t.Errorf("isolated node has neighbors %v", lists[3])
	}
	// Symmetry.
	for i, l := range lists {
		for _, j := range l {
			found := false
			for _, k := range lists[j] {
				if k == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric neighbor %d->%d", i, j)
			}
		}
	}
}

func TestConnected(t *testing.T) {
	line := &Deployment{
		Field:     geom.R(0, 0, 100, 10),
		Positions: []geom.Vec2{geom.V(0, 0), geom.V(8, 0), geom.V(16, 0), geom.V(24, 0)},
	}
	if !line.Connected(10) {
		t.Error("chain not connected at radius 10")
	}
	if line.Connected(7) {
		t.Error("chain connected at radius 7")
	}
	single := &Deployment{Positions: []geom.Vec2{geom.V(1, 1)}}
	if !single.Connected(1) {
		t.Error("single node not connected")
	}
	empty := &Deployment{}
	if !empty.Connected(1) {
		t.Error("empty deployment not connected")
	}
}

func TestDegreeStats(t *testing.T) {
	d := &Deployment{
		Field:     geom.R(0, 0, 100, 10),
		Positions: []geom.Vec2{geom.V(0, 0), geom.V(5, 0), geom.V(10, 0)},
	}
	min, mean, max := d.DegreeStats(6)
	if min != 1 || max != 2 {
		t.Errorf("min/max = %d/%d", min, max)
	}
	// Degrees are 1, 2, 1 → mean 4/3.
	if mean < 1.33 || mean > 1.34 {
		t.Errorf("mean = %v", mean)
	}
	empty := &Deployment{}
	if a, b, c := empty.DegreeStats(5); a != 0 || b != 0 || c != 0 {
		t.Error("empty degree stats nonzero")
	}
}

func TestConnectedUniform(t *testing.T) {
	// 30 nodes at 10 m range connect with ~20% probability per draw on a
	// 40x40 field, so a few hundred attempts virtually always succeed.
	st := testStream("cu")
	d := ConnectedUniform(st, geom.R(0, 0, 40, 40), 30, 10, 500)
	if !d.Connected(10) {
		t.Fatal("ConnectedUniform returned a disconnected deployment")
	}
	if d.N() != 30 {
		t.Errorf("N = %d", d.N())
	}
}

func TestConnectedUniformExhausts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("impossible connectivity did not panic")
		}
	}()
	// 2 nodes in a huge field at tiny radius: essentially never connected.
	ConnectedUniform(testStream("x"), geom.R(0, 0, 10000, 10000), 2, 1, 5)
}

func TestGeneratorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	field := geom.R(0, 0, 10, 10)
	mustPanic("uniform n=0", func() { UniformRandom(testStream("a"), field, 0) })
	mustPanic("grid 0", func() { Grid(nil, field, 0, 5, 0) })
	mustPanic("poisson bad", func() { PoissonDisk(testStream("b"), field, 10, 0) })
	mustPanic("cluster bad", func() { Clustered(testStream("c"), field, 0, 5, 1) })
}

func TestQuickUniformStaysInField(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n%50) + 1
		field := geom.R(0, 0, 30, 40)
		d := UniformRandom(rng.NewSource(seed).Stream("q"), field, count)
		for _, p := range d.Positions {
			if !field.Contains(p) {
				return false
			}
		}
		return d.N() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickConnectivityMonotoneInRadius(t *testing.T) {
	// If a deployment is connected at radius r, it is connected at any
	// larger radius.
	f := func(seed int64) bool {
		d := UniformRandom(rng.NewSource(seed).Stream("q2"), geom.R(0, 0, 50, 50), 20)
		connectedSmall := d.Connected(15)
		connectedBig := d.Connected(30)
		return !connectedSmall || connectedBig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
