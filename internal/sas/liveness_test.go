package sas

import (
	"testing"

	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/sim"
)

// TestLivenessDeclaresSilentPeer drives the full sink-side liveness path
// through a real simulation: a covered (always-awake) SAS node observes one
// neighbour, the neighbour crashes, and the periodic liveness tick must
// suspect it, re-probe with backoff, and finally declare it dead.
func TestLivenessDeclaresSilentPeer(t *testing.T) {
	k, m := sasRig()
	// Front centred on the SAS node: covered (and therefore awake for every
	// liveness tick) from t=0 on.
	stim := diffusion.NewRadialFront(geom.V(0, 0), 1, 0)
	cfg := testCfg()
	cfg.Liveness = fault.LivenessConfig{
		MissK: 1, Interval: 1, BackoffInit: 1, BackoffMax: 2, MaxProbes: 2,
	}
	agent := New(cfg)
	n := addSASNode(k, m, 0, geom.V(0, 0), stim, agent)
	probe := &probeAgent{}
	pn := addSASNode(k, m, 1, geom.V(5, 0), stim, probe)
	// One REQUEST so the tracker observes peer 1, then the peer goes dark.
	k.Schedule(0.2, func(*sim.Kernel) { pn.Broadcast(core.Request{}.Envelope()) })
	pn.FailAt(0.5)
	n.Start()
	pn.Start()
	k.RunUntil(8)

	st := agent.LivenessStats()
	if st.Peers != 1 {
		t.Fatalf("Peers = %d, want 1", st.Peers)
	}
	// Suspicion probe at the first tick past MissK*Interval of silence, one
	// backed-off re-probe, then the declaration: MaxProbes=2 broadcasts.
	if st.Probes != 2 {
		t.Errorf("Probes = %d, want 2", st.Probes)
	}
	if len(st.Declared) != 1 {
		t.Fatalf("Declared = %v, want exactly one declaration", st.Declared)
	}
	d := st.Declared[0]
	if d.ID != 1 {
		t.Errorf("declared peer %d, want 1", d.ID)
	}
	if d.At < 4 || d.At > 6 {
		t.Errorf("declared at t=%v, want ~5 (suspect t=2, probe t=3, declare t=5)", d.At)
	}
	if d.LastHeard < 0.2 || d.LastHeard > 0.3 {
		t.Errorf("LastHeard = %v, want ~0.2", d.LastHeard)
	}
	if n.Now() < 8 {
		t.Errorf("node clock stopped at %v; liveness timer must keep re-arming", n.Now())
	}
}

// TestLivenessStatsZeroWhenDisabled pins the nil-tracker snapshot.
func TestLivenessStatsZeroWhenDisabled(t *testing.T) {
	agent := New(testCfg())
	st := agent.LivenessStats()
	if st.Peers != 0 || st.Probes != 0 || st.ProbeJ != 0 || len(st.Declared) != 0 {
		t.Errorf("disabled liveness stats = %+v, want zero value", st)
	}
}

// TestNewSlabFallsBackPastCapacity exercises the slab factory: in-slab
// agents while capacity lasts, heap fallback after.
func TestNewSlabFallsBackPastCapacity(t *testing.T) {
	factory := NewSlab(testCfg(), 1)
	a1 := factory()
	a2 := factory()
	if a1 == nil || a2 == nil {
		t.Fatal("slab factory returned nil agent")
	}
	if a1 == a2 {
		t.Fatal("slab factory returned the same agent twice")
	}
	// Both must be fully initialised, not just allocated.
	k, m := sasRig()
	stim := diffusion.NewRadialFront(geom.V(-1e6, 0), 0.001, 0)
	n1 := addSASNode(k, m, 0, geom.V(0, 0), stim, a1)
	n2 := addSASNode(k, m, 1, geom.V(5, 0), stim, a2)
	n1.Start()
	n2.Start()
	k.RunUntil(5)
	if n1.Now() != 5 || n2.Now() != 5 {
		t.Errorf("slab agents stalled: clocks %v, %v, want 5", n1.Now(), n2.Now())
	}
}
