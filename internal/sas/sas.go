// Package sas reimplements the comparison baseline SAS — Stimulus-based
// Adaptive Sleeping (Ngan et al., ICPP'05) — as described by the PAS paper:
// the same adaptive linear sleep schedule, but with a simpler, scalar local
// velocity estimate and with alert information transmitted only by sensors
// that are covered by the stimulus. Both simplifications follow the PAS
// paper's characterization: "It employs a simple method for the local
// velocity estimation" and "PAS allows the DS information to be exchanged in
// a larger field of sensors than SAS, i.e., the sensors which are not
// covered by the stimulus also transmit alert information" (§3.1) — so in
// SAS, they do not. The net effect, as the paper argues in §3.4, is that SAS
// behaves like PAS with a sharply reduced alert time: predictions exist only
// within one radio hop of the front.
package sas

import (
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Config holds the SAS tunables. The sleep schedule matches PAS so the
// paper's Figs. 4/6 sweep compares like with like.
type Config struct {
	// AlertThreshold is the expected-arrival threshold below which a node
	// stays awake.
	AlertThreshold float64
	// SleepInit, SleepIncrement, SleepMax define the linear sleep ramp.
	SleepInit      float64
	SleepIncrement float64
	SleepMax       float64
	// ResponseWindow is the wake-time listen window after the probe.
	ResponseWindow float64
	// AlertReassess is the awake-state re-evaluation period.
	AlertReassess float64
	// DetectionTimeout returns a covered node to safe after the stimulus
	// leaves.
	DetectionTimeout float64
	// MaxReportAge ages out stale alerts (0 disables).
	MaxReportAge float64
	// ResponseStagger spaces concurrent responses.
	ResponseStagger float64
	// SleepJitter matches the PAS per-cycle sleep jitter.
	SleepJitter float64
	// MinVelocityDt matches the PAS minimum usable detection-time gap.
	MinVelocityDt float64
	// Liveness mirrors the PAS sink-side peer liveness tracker (zero value
	// = disabled).
	Liveness fault.LivenessConfig
}

// DefaultConfig mirrors the PAS defaults so head-to-head sweeps differ only
// in the protocols' mechanisms.
func DefaultConfig() Config {
	p := core.DefaultConfig()
	return Config{
		AlertThreshold:   p.AlertThreshold,
		SleepInit:        p.SleepInit,
		SleepIncrement:   p.SleepIncrement,
		SleepMax:         p.SleepMax,
		ResponseWindow:   p.ResponseWindow,
		AlertReassess:    p.AlertReassess,
		DetectionTimeout: p.DetectionTimeout,
		MaxReportAge:     p.MaxReportAge,
		ResponseStagger:  p.ResponseStagger,
		SleepJitter:      p.SleepJitter,
		MinVelocityDt:    p.MinVelocityDt,
	}
}

// Agent is one node's SAS protocol instance.
type Agent struct {
	cfg      Config
	n        *node.Node // bound at Init; the arg handlers below reach it here
	reports  map[radio.NodeID]core.NeighborReport
	scratch  []core.NeighborReport // reused snapshot buffer
	schedule core.SleepSchedule

	speed    float64 // scalar spreading-speed estimate (0 = unknown)
	hasSpeed bool

	decision       sim.Timer
	reassess       sim.Timer
	coveredTimeout sim.Timer

	// Liveness tracking (nil/unarmed unless cfg.Liveness is enabled).
	live     *fault.Liveness
	liveTick sim.Timer

	detected   bool
	detectedAt float64
	sleepCount int
}

var _ node.Agent = (*Agent)(nil)

// New constructs a SAS agent.
func New(cfg Config) *Agent {
	a := &Agent{}
	a.fill(cfg)
	return a
}

// fill initializes an agent in place — shared by New and the slab factory.
func (a *Agent) fill(cfg Config) {
	*a = Agent{
		cfg:      cfg,
		reports:  make(map[radio.NodeID]core.NeighborReport),
		schedule: core.MakeSleepSchedule(cfg.SleepInit, cfg.SleepIncrement, cfg.SleepMax),
	}
}

// NewSlab returns a factory producing up to n agents carved from one
// contiguous slab (mirroring core.NewSlab); agents past n fall back to
// individual allocation.
func NewSlab(cfg Config, n int) func() *Agent {
	slab := make([]Agent, 0, n)
	return func() *Agent {
		if len(slab) == cap(slab) {
			return New(cfg)
		}
		slab = slab[:len(slab)+1]
		a := &slab[len(slab)-1]
		a.fill(cfg)
		return a
	}
}

// Package-level arg handlers (mirroring the PAS agent): re-arming timers
// with long-lived handlers and the agent as the argument keeps the
// steady-state probe/reassess cycle free of closure allocations.
func sasDecide(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	a.decide(a.n)
}

func sasReassess(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	n := a.n
	if n.State() != node.StateAlert {
		return
	}
	if n.Sense() {
		return // detection takes over (OnDetect ran)
	}
	if a.eta(n) >= a.cfg.AlertThreshold {
		a.enterSafe(n, true)
		return
	}
	a.armReassess(n)
}

func sasSpeedWindow(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	if s, ok := a.scalarSpeed(a.n); ok {
		a.speed, a.hasSpeed = s, true
	}
	a.sendResponse(a.n)
}

func sasCoveredTimeout(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	n := a.n
	if n.State() != node.StateCovered || !n.IsAwake() {
		return
	}
	if n.CoveredNow() {
		return
	}
	a.enterSafe(n, true)
}

func sasStaggerSend(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	if a.n.IsAwake() && a.n.State() == node.StateCovered {
		a.sendResponse(a.n)
	}
}

// sasLivenessTick mirrors the PAS liveness scan: advance the tracker, probe
// when due, re-arm without closures.
func sasLivenessTick(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	n := a.n
	if n.IsAwake() && a.live.Tick(n.Now()) {
		before := n.Meter().Breakdown().TxJ
		n.Broadcast(core.Request{}.Envelope())
		a.live.AddProbeEnergy(n.Meter().Breakdown().TxJ - before)
	}
	a.liveTick.ResetArg(a.cfg.Liveness.Interval, sasLivenessTick, a)
}

// Init implements node.Agent.
func (a *Agent) Init(n *node.Node) {
	a.n = n
	a.decision.Bind(n.Kernel())
	a.reassess.Bind(n.Kernel())
	a.coveredTimeout.Bind(n.Kernel())
	if a.cfg.Liveness.Enabled() {
		a.live = fault.NewLiveness(a.cfg.Liveness)
		a.liveTick.Bind(n.Kernel())
		a.liveTick.ResetArg(a.cfg.Liveness.Interval, sasLivenessTick, a)
	}
	n.SetState(node.StateSafe)
	a.probe(n)
}

// probe asks covered neighbours for stimulus information and schedules the
// decision.
func (a *Agent) probe(n *node.Node) {
	n.Broadcast(core.Request{}.Envelope())
	a.decision.ResetArg(a.cfg.ResponseWindow, sasDecide, a)
}

// decide commits to staying awake (near the front) or sleeping longer.
func (a *Agent) decide(n *node.Node) {
	if n.State() == node.StateCovered {
		return
	}
	if a.eta(n) < a.cfg.AlertThreshold {
		n.SetState(node.StateAlert)
		a.armReassess(n)
		return
	}
	a.enterSafe(n, false)
}

func (a *Agent) armReassess(n *node.Node) {
	a.reassess.ResetArg(a.cfg.AlertReassess, sasReassess, a)
}

func (a *Agent) enterSafe(n *node.Node, resetRamp bool) {
	a.reassess.Stop()
	n.SetState(node.StateSafe)
	if resetRamp {
		a.schedule.Reset()
	}
	a.sleepCount++
	d := a.schedule.Next() * core.PhaseJitter(int(n.ID()), a.sleepCount, a.cfg.SleepJitter)
	n.Sleep(d)
}

// OnWake implements node.Agent.
func (a *Agent) OnWake(n *node.Node) { a.probe(n) }

// LivenessStats snapshots the liveness tracker (zero value when disabled).
func (a *Agent) LivenessStats() fault.LivenessStats {
	if a.live == nil {
		return fault.LivenessStats{}
	}
	return a.live.Stats()
}

// OnDetect implements node.Agent: compute the scalar local speed from
// covered neighbours and broadcast the alert.
func (a *Agent) OnDetect(n *node.Node) {
	a.detected = true
	a.detectedAt = n.Now()
	a.reassess.Stop()
	a.decision.Stop()
	n.SetState(node.StateCovered)
	n.Broadcast(core.Request{}.Envelope())
	a.decision.ResetArg(a.cfg.ResponseWindow, sasSpeedWindow, a)
}

// scalarSpeed is SAS's "simple method for the local velocity estimation":
// the mean of straight-line distance over detection-time difference across
// covered neighbours — a speed with no direction.
func (a *Agent) scalarSpeed(n *node.Node) (float64, bool) {
	var sum float64
	count := 0
	for _, r := range a.sortedReports() {
		if !r.Detected || r.State != node.StateCovered {
			continue
		}
		dt := a.detectedAt - r.DetectedAt
		minDt := a.cfg.MinVelocityDt
		if minDt <= 0 {
			minDt = 1e-9
		}
		if dt < minDt {
			continue
		}
		sum += n.Pos().Dist(r.Pos) / dt
		count++
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count), true
}

// OnStimulusGone implements node.Agent.
func (a *Agent) OnStimulusGone(n *node.Node) {
	a.coveredTimeout.ResetArg(a.cfg.DetectionTimeout, sasCoveredTimeout, a)
}

// OnMessage implements node.Agent. The crucial SAS restriction lives here:
// only covered nodes answer REQUESTs, so stimulus information never travels
// beyond the front's one-hop neighbourhood. Boxed Request/Response arrive
// through the KindExt fallback for hand-wired tests and extensions.
func (a *Agent) OnMessage(n *node.Node, from radio.NodeID, env radio.Envelope) {
	if a.live != nil {
		a.live.Observe(from, n.Now())
	}
	switch env.Kind {
	case radio.KindRequest:
		a.handleRequest(n)
	case radio.KindResponse:
		a.handleResponse(n, from, core.ResponseFromEnvelope(env))
	case radio.KindExt:
		switch m := env.Ext.(type) {
		case core.Request:
			a.handleRequest(n)
		case core.Response:
			a.handleResponse(n, from, m)
		}
	}
}

// handleRequest answers a REQUEST if (and only if) this node is covered.
func (a *Agent) handleRequest(n *node.Node) {
	if n.State() != node.StateCovered {
		return
	}
	stagger := a.cfg.ResponseStagger * float64(1+int(n.ID())%8)
	if stagger <= 0 {
		a.sendResponse(n)
		return
	}
	n.Kernel().ScheduleArg(stagger, sasStaggerSend, a)
}

// handleResponse folds a neighbour's alert into the report table.
func (a *Agent) handleResponse(n *node.Node, from radio.NodeID, m core.Response) {
	a.reports[from] = core.NeighborReport{
		ID:               from,
		Pos:              m.Pos,
		State:            m.State,
		Velocity:         m.Velocity,
		HasVelocity:      m.HasVelocity,
		HasDirection:     m.HasDirection,
		PredictedArrival: m.PredictedArrival,
		DetectedAt:       m.DetectedAt,
		Detected:         m.Detected,
		ReceivedAt:       n.Now(),
	}
	if n.State() == node.StateAlert && a.eta(n) >= a.cfg.AlertThreshold {
		a.enterSafe(n, true)
	}
}

// eta is SAS's expected arrival estimate: straight-line distance over the
// neighbour's scalar speed, anchored at the neighbour's detection time, with
// no directional correction — the simplification PAS improves on.
func (a *Agent) eta(n *node.Node) float64 {
	now := n.Now()
	best := math.Inf(1)
	for _, r := range a.sortedReports() {
		if a.cfg.MaxReportAge > 0 && now-r.ReceivedAt > a.cfg.MaxReportAge {
			continue
		}
		if !r.Detected || !r.HasVelocity {
			continue
		}
		speed := r.Velocity.Norm()
		if speed <= 0 {
			continue
		}
		eta := n.Pos().Dist(r.Pos)/speed - (now - r.DetectedAt)
		if eta < 0 {
			eta = 0
		}
		if eta < best {
			best = eta
		}
	}
	return best
}

// sendResponse broadcasts the covered node's alert: position, detection time
// and the scalar speed (carried in the velocity field's magnitude; SAS has
// no direction estimate).
func (a *Agent) sendResponse(n *node.Node) {
	if !n.IsAwake() {
		return
	}
	n.Broadcast(core.Response{
		Pos:   n.Pos(),
		State: n.State(),
		// The velocity field carries a bare magnitude; HasDirection stays
		// unset so receivers never project along the placeholder heading.
		Velocity:         core.ScalarVelocity(a.speed),
		HasVelocity:      a.hasSpeed,
		HasDirection:     false,
		PredictedArrival: a.detectedAt,
		DetectedAt:       a.detectedAt,
		Detected:         a.detected,
	}.Envelope())
}

// sortedReports snapshots the report table in deterministic (ID) order into
// a reused buffer; callers only read the slice during the call.
func (a *Agent) sortedReports() []core.NeighborReport {
	if cap(a.scratch) < len(a.reports) {
		// One right-sized allocation instead of an append growth chain.
		a.scratch = make([]core.NeighborReport, 0, len(a.reports))
	}
	out := a.scratch[:0]
	for _, r := range a.reports {
		out = append(out, r)
	}
	slices.SortFunc(out, func(x, y core.NeighborReport) int { return int(x.ID) - int(y.ID) })
	a.scratch = out
	return out
}
