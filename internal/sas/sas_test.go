package sas

import (
	"testing"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sim"
)

// probeAgent is an always-awake scripted neighbour.
type probeAgent struct {
	onMsg func(n *node.Node, from radio.NodeID, env radio.Envelope)
	got   []radio.Envelope
}

func (p *probeAgent) Init(*node.Node)           {}
func (p *probeAgent) OnWake(*node.Node)         {}
func (p *probeAgent) OnDetect(*node.Node)       {}
func (p *probeAgent) OnStimulusGone(*node.Node) {}
func (p *probeAgent) OnMessage(n *node.Node, from radio.NodeID, env radio.Envelope) {
	p.got = append(p.got, env)
	if p.onMsg != nil {
		p.onMsg(n, from, env)
	}
}

func sasRig() (*sim.Kernel, *radio.Medium) {
	k := sim.NewKernel()
	st := rng.NewSource(2).Stream("channel")
	m := radio.NewMedium(k, geom.R(-50, -50, 50, 50), energy.Telos(), radio.UnitDisk{Range: 15}, st)
	return k, m
}

func addSASNode(k *sim.Kernel, m *radio.Medium, id radio.NodeID, pos geom.Vec2, stim diffusion.Stimulus, a node.Agent) *node.Node {
	return node.New(node.Config{
		ID: id, Pos: pos, Kernel: k, Medium: m,
		Stimulus: stim, Profile: energy.Telos(), Agent: a,
	})
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.SleepInit = 1
	cfg.SleepIncrement = 1
	cfg.SleepMax = 3
	cfg.AlertThreshold = 10
	return cfg
}

func TestDefaultConfigMirrorsPAS(t *testing.T) {
	p := core.DefaultConfig()
	s := DefaultConfig()
	if s.AlertThreshold != p.AlertThreshold || s.SleepMax != p.SleepMax ||
		s.SleepInit != p.SleepInit || s.SleepIncrement != p.SleepIncrement {
		t.Error("SAS defaults diverge from PAS defaults")
	}
}

func TestOnlyCoveredNodesRespond(t *testing.T) {
	// A SAS node in the alert state must NOT answer a REQUEST (the paper's
	// key distinction from PAS).
	k, m := sasRig()
	stim := diffusion.NewRadialFront(geom.V(-1e6, 0), 0.001, 0) // never arrives
	agent := New(testCfg())
	n := addSASNode(k, m, 0, geom.V(0, 0), stim, agent)
	probe := &probeAgent{}
	pn := addSASNode(k, m, 1, geom.V(5, 0), stim, probe)
	// Force the SAS node into alert by feeding it a covered report during
	// its initial window.
	k.Schedule(0.01, func(*sim.Kernel) {
		pn.Broadcast(core.Response{
			Pos: geom.V(5, 0), State: node.StateCovered,
			Velocity: core.ScalarVelocity(1), HasVelocity: true,
			PredictedArrival: 0, DetectedAt: 0, Detected: true,
		}.Envelope())
	})
	k.Schedule(1, func(*sim.Kernel) { pn.Broadcast(core.Request{}.Envelope()) })
	n.Start()
	pn.Start()
	k.RunUntil(2)
	if n.State() != node.StateAlert {
		t.Fatalf("precondition: state = %v, want alert", n.State())
	}
	for _, env := range probe.got {
		if env.Kind == radio.KindResponse {
			t.Fatal("non-covered SAS node transmitted alert information")
		}
	}
}

func TestCoveredNodeAnswersRequest(t *testing.T) {
	k, m := sasRig()
	stim := diffusion.NewRadialFront(geom.V(-10, 0), 1, 0) // arrives at (0,0) at t=10
	agent := New(testCfg())
	n := addSASNode(k, m, 0, geom.V(0, 0), stim, agent)
	probe := &probeAgent{}
	pn := addSASNode(k, m, 1, geom.V(5, 0), stim, probe)
	k.Schedule(14, func(*sim.Kernel) { pn.Broadcast(core.Request{}.Envelope()) })
	n.Start()
	pn.Start()
	k.RunUntil(15)
	if n.State() != node.StateCovered {
		t.Fatalf("precondition: state = %v, want covered", n.State())
	}
	responses := 0
	for _, env := range probe.got {
		if env.Kind == radio.KindResponse {
			responses++
		}
	}
	if responses == 0 {
		t.Error("covered SAS node did not answer the REQUEST")
	}
}

func TestScalarSpeedEstimate(t *testing.T) {
	// Neighbour covered at t=5 at (-5,0); SAS node at origin covered at
	// t=10 → scalar speed = 5/(10-5) = 1, carried as a magnitude.
	k, m := sasRig()
	stim := diffusion.NewRadialFront(geom.V(-10, 0), 1, 0)
	agent := New(testCfg())
	n := addSASNode(k, m, 0, geom.V(0, 0), stim, agent)
	probe := &probeAgent{}
	probe.onMsg = func(pn *node.Node, _ radio.NodeID, env radio.Envelope) {
		if env.Kind != radio.KindRequest {
			return
		}
		if pn.Now() < 5 {
			return
		}
		pn.Broadcast(core.Response{
			Pos: pn.Pos(), State: node.StateCovered,
			PredictedArrival: 5, DetectedAt: 5, Detected: true,
		}.Envelope())
	}
	pn := addSASNode(k, m, 1, geom.V(-5, 0), stim, probe)
	n.Start()
	pn.Start()
	k.RunUntil(15)
	if n.State() != node.StateCovered {
		t.Fatalf("state = %v, want covered", n.State())
	}
	sawSpeed := false
	for _, env := range probe.got {
		if r := core.ResponseFromEnvelope(env); env.Kind == radio.KindResponse && r.HasVelocity {
			sawSpeed = true
			speed := r.Velocity.Norm()
			// Detection lag shrinks the estimate slightly below 1.
			if speed < 0.4 || speed > 1.05 {
				t.Errorf("scalar speed = %v, want ≈1", speed)
			}
		}
	}
	if !sawSpeed {
		t.Error("covered SAS node never broadcast a speed estimate")
	}
}

func TestSASNetworkDetectsEverything(t *testing.T) {
	sc := diffusion.PaperScenario()
	dep := deploy.ConnectedUniform(rng.NewSource(7).Stream("deploy"), sc.Field, 30, 10, 500)
	cfg := DefaultConfig()
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return New(cfg) },
	})
	nw.Run(sc.Horizon)
	detected := 0
	for _, n := range nw.Nodes {
		if d, ok := n.DetectionDelay(); ok {
			detected++
			if d < 0 {
				t.Fatalf("negative delay %v", d)
			}
			if d > cfg.SleepMax*1.3+1 {
				t.Errorf("node %d delay %v exceeds jittered max sleep", n.ID(), d)
			}
		}
	}
	if detected < 25 {
		t.Fatalf("only %d/30 SAS nodes detected", detected)
	}
	// SAS also saves energy against always-on.
	nsEnergy := 0.041 * sc.Horizon
	var total float64
	for _, n := range nw.Nodes {
		total += n.Meter().TotalJ()
	}
	if mean := total / float64(len(nw.Nodes)); mean >= nsEnergy {
		t.Errorf("SAS mean energy %v not below always-on %v", mean, nsEnergy)
	}
}

func TestPASBeatsSASOnDelay(t *testing.T) {
	// The paper's headline comparison (Fig. 4): same deployment, same sleep
	// schedule — PAS should see lower average detection delay because its
	// alert information propagates beyond the covered nodes' one-hop
	// neighbourhood. Averaged over a few seeds to damp simulation noise.
	var pasSum, sasSum float64
	seeds := []int64{3, 5, 7, 11, 13, 17, 19, 23}
	for _, seed := range seeds {
		sc := diffusion.PaperScenario()
		dep := deploy.ConnectedUniform(rng.NewSource(seed).Stream("deploy"), sc.Field, 30, 10, 500)
		run := func(agents func(radio.NodeID) node.Agent) float64 {
			nw := node.BuildNetwork(node.NetworkConfig{
				Deployment: dep,
				Stimulus:   sc.Stimulus,
				Profile:    energy.Telos(),
				Loss:       radio.UnitDisk{Range: 10},
				Agents:     agents,
			})
			nw.Run(sc.Horizon)
			var sum float64
			n := 0
			for _, nd := range nw.Nodes {
				if d, ok := nd.DetectionDelay(); ok {
					sum += d
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}
		pasCfg := core.DefaultConfig()
		pasCfg.SleepMax = 30
		pasCfg.SleepIncrement = 6
		sasCfg := DefaultConfig()
		sasCfg.SleepMax = 30
		sasCfg.SleepIncrement = 6
		pasSum += run(func(radio.NodeID) node.Agent { return core.New(pasCfg) })
		sasSum += run(func(radio.NodeID) node.Agent { return New(sasCfg) })
	}
	k := float64(len(seeds))
	if pasSum >= sasSum {
		t.Errorf("PAS mean delay %v not below SAS %v", pasSum/k, sasSum/k)
	}
}

func TestSASCoveredReturnsToSafeOnReceding(t *testing.T) {
	// A receding stimulus covers (0,0) during t∈[10,15); after the dwell and
	// the detection timeout the node must fall back to safe and sleep again.
	inner := diffusion.NewRadialFront(geom.V(-10, 0), 1, 0)
	stim := diffusion.NewReceding(inner, 5)
	k, m := sasRig()
	cfg := testCfg()
	cfg.DetectionTimeout = 2
	agent := New(cfg)
	n := addSASNode(k, m, 0, geom.V(0, 0), stim, agent)
	n.Start()
	k.RunUntil(13)
	if n.State() != node.StateCovered {
		t.Fatalf("state at t=13 = %v, want covered", n.State())
	}
	// Dwell ends at 15, timeout 2 → safe by ~17.5.
	k.RunUntil(25)
	if n.State() != node.StateSafe {
		t.Errorf("state after receding = %v, want safe", n.State())
	}
}

func TestSASAlertDropsWhenReportsAge(t *testing.T) {
	k, m := sasRig()
	stim := diffusion.NewRadialFront(geom.V(-1e6, 0), 0.001, 0)
	cfg := testCfg()
	cfg.MaxReportAge = 2
	cfg.AlertReassess = 0.5
	agent := New(cfg)
	n := addSASNode(k, m, 0, geom.V(0, 0), stim, agent)
	probe := &probeAgent{}
	pn := addSASNode(k, m, 1, geom.V(5, 0), stim, probe)
	k.Schedule(0.01, func(*sim.Kernel) {
		pn.Broadcast(core.Response{
			Pos: geom.V(5, 0), State: node.StateCovered,
			Velocity: core.ScalarVelocity(0.5), HasVelocity: true,
			PredictedArrival: 0, DetectedAt: 0, Detected: true,
		}.Envelope())
	})
	n.Start()
	pn.Start()
	k.RunUntil(0.5)
	if n.State() != node.StateAlert {
		t.Fatalf("precondition: state = %v", n.State())
	}
	k.RunUntil(5)
	if n.State() != node.StateSafe {
		t.Errorf("state after aging = %v, want safe", n.State())
	}
}

func TestSASIgnoresUselessReports(t *testing.T) {
	// Reports without detection or with zero speed must not produce finite
	// arrival estimates (the node stays safe and sleeps).
	k, m := sasRig()
	stim := diffusion.NewRadialFront(geom.V(-1e6, 0), 0.001, 0)
	agent := New(testCfg())
	n := addSASNode(k, m, 0, geom.V(0, 0), stim, agent)
	probe := &probeAgent{}
	pn := addSASNode(k, m, 1, geom.V(5, 0), stim, probe)
	k.Schedule(0.01, func(*sim.Kernel) {
		// Alert-state report: SAS must ignore it (only covered count).
		pn.Broadcast(core.Response{
			Pos: geom.V(5, 0), State: node.StateAlert,
			Velocity: core.ScalarVelocity(1), HasVelocity: true,
			PredictedArrival: 3,
		}.Envelope())
	})
	k.Schedule(0.02, func(*sim.Kernel) {
		// Covered report with zero speed: unusable.
		pn.Broadcast(core.Response{
			Pos: geom.V(5, 0), State: node.StateCovered,
			Velocity: core.ScalarVelocity(0), HasVelocity: true,
			PredictedArrival: 0, DetectedAt: 0, Detected: true,
		}.Envelope())
	})
	n.Start()
	pn.Start()
	k.RunUntil(0.5)
	if n.State() != node.StateSafe {
		t.Errorf("state = %v, want safe (no usable report)", n.State())
	}
	if n.IsAwake() {
		t.Error("node stayed awake on useless reports")
	}
}

func TestSASZeroStagger(t *testing.T) {
	// ResponseStagger 0 answers REQUESTs synchronously.
	k, m := sasRig()
	stim := diffusion.NewRadialFront(geom.V(-10, 0), 1, 0)
	cfg := testCfg()
	cfg.ResponseStagger = 0
	agent := New(cfg)
	n := addSASNode(k, m, 0, geom.V(0, 0), stim, agent)
	probe := &probeAgent{}
	pn := addSASNode(k, m, 1, geom.V(5, 0), stim, probe)
	k.Schedule(14, func(*sim.Kernel) { pn.Broadcast(core.Request{}.Envelope()) })
	n.Start()
	pn.Start()
	k.RunUntil(15)
	got := 0
	for _, env := range probe.got {
		if env.Kind == radio.KindResponse {
			got++
		}
	}
	if got == 0 {
		t.Error("no synchronous response")
	}
}
