package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one x position on a result curve with its mean y and 95% CI
// half-width.
type Point struct {
	X, Y, CI float64
}

// Curve is one named series of a figure (e.g. one protocol).
type Curve struct {
	Name   string
	Points []Point
}

// Result is a regenerated table or figure: a set of curves over a shared
// x-axis, plus free-form notes (assumption records, shape observations).
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Curves []Curve
	Notes  []string
	// Extra carries preformatted content for non-curve results (Table 1).
	Extra string
}

// Curve returns the named curve and whether it exists.
func (r Result) Curve(name string) (Curve, bool) {
	for _, c := range r.Curves {
		if c.Name == name {
			return c, true
		}
	}
	return Curve{}, false
}

// Ys returns the y values of a curve in x order.
func (c Curve) Ys() []float64 {
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		out[i] = p.Y
	}
	return out
}

// Xs returns the x values of a curve.
func (c Curve) Xs() []float64 {
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		out[i] = p.X
	}
	return out
}

// Render formats the result as a fixed-width text table, one row per x
// value, one column per curve, in the style of the paper's figures.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	if r.Extra != "" {
		b.WriteString(r.Extra)
	}
	if len(r.Curves) > 0 {
		// Collect the union of x values in order.
		xsSet := map[float64]bool{}
		for _, c := range r.Curves {
			for _, p := range c.Points {
				xsSet[p.X] = true
			}
		}
		xs := make([]float64, 0, len(xsSet))
		for x := range xsSet {
			xs = append(xs, x)
		}
		sort.Float64s(xs)

		fmt.Fprintf(&b, "%-14s", r.XLabel)
		for _, c := range r.Curves {
			fmt.Fprintf(&b, " %-18s", c.Name)
		}
		fmt.Fprintf(&b, "   [%s]\n", r.YLabel)
		for _, x := range xs {
			fmt.Fprintf(&b, "%-14.3g", x)
			for _, c := range r.Curves {
				cell := strings.Repeat(" ", 18)
				for _, p := range c.Points {
					if p.X == x {
						cell = fmt.Sprintf("%8.4g ± %-7.2g", p.Y, p.CI)
					}
				}
				fmt.Fprintf(&b, " %-18s", cell)
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV formats the result as long-form CSV: id,series,x,y,ci.
func (r Result) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,series,x,y,ci95\n")
	for _, c := range r.Curves {
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%s,%s,%g,%g,%g\n", r.ID, c.Name, p.X, p.Y, p.CI)
		}
	}
	return b.String()
}
