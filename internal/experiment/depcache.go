package experiment

import (
	"sync"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// Deployment memoization. A sweep replicates every (protocol × sweep-point)
// cell over the same seeds, and every cell with the same seed, field, node
// count, radio range and deployment spec draws the identical layout —
// ConnectedUniform rejection-samples up to 2000 candidate layouts per call,
// so re-deriving it once per protocol in every sweep is pure waste (and even
// the cheap structured generators are worth sharing at 10 000 nodes). The
// cache below shares one immutable *deploy.Deployment per distinct key across
// the whole process, including the parallel worker pool. Results are
// unchanged: the generator is a pure function of the key (it consumes only
// the dedicated "deploy" stream, which is itself derived from the seed), so a
// cache hit returns byte-for-byte the deployment a miss would have computed.

// depKey identifies one deterministic deployment draw. maxAttempts is part
// of the key because it changes which draws panic vs succeed; today every
// caller passes 2000, so it never splits the cache in practice. The spec is
// comparable by design (scenario.DeploymentSpec holds only scalars).
type depKey struct {
	seed        int64
	field       geom.Rect
	nodes       int
	radius      float64
	spec        scenario.DeploymentSpec
	maxAttempts int
}

// depCacheLimit bounds the cache so pathological sweeps (many distinct
// fields/densities at many seeds) cannot grow it without bound; at the limit
// the cache resets, which only costs recomputation.
const depCacheLimit = 4096

var depCache struct {
	mu     sync.Mutex
	m      map[depKey]*deploy.Deployment
	hits   uint64
	misses uint64
}

// cachedDeployment returns the shared deployment for the key, drawing it on
// first use. Callers must treat the result as immutable — it is shared across
// concurrent simulation runs.
func cachedDeployment(seed int64, field geom.Rect, nodes int, radius float64, spec scenario.DeploymentSpec, maxAttempts int) *deploy.Deployment {
	key := depKey{seed: seed, field: field, nodes: nodes, radius: radius, spec: spec, maxAttempts: maxAttempts}
	depCache.mu.Lock()
	if d, ok := depCache.m[key]; ok {
		depCache.hits++
		depCache.mu.Unlock()
		return d
	}
	depCache.misses++
	depCache.mu.Unlock()

	// Draw outside the lock: rejection sampling can run 2000 connectivity
	// checks, and concurrent workers should not serialize on it. Two workers
	// racing on the same key compute identical deployments; the second store
	// wins harmlessly.
	st := rng.NewSource(seed).Stream("deploy")
	d := spec.Generate(st, field, nodes, radius, maxAttempts)

	depCache.mu.Lock()
	if depCache.m == nil || len(depCache.m) >= depCacheLimit {
		depCache.m = make(map[depKey]*deploy.Deployment)
	}
	depCache.m[key] = d
	depCache.mu.Unlock()
	return d
}

// depCacheStats returns the cumulative hit/miss counters (for tests).
func depCacheStats() (hits, misses uint64) {
	depCache.mu.Lock()
	defer depCache.mu.Unlock()
	return depCache.hits, depCache.misses
}
