package experiment

import (
	"sync"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// Deployment memoization. A sweep replicates every (protocol × sweep-point)
// cell over the same seeds, and every cell with the same seed, field, node
// count, radio range and deployment spec draws the identical layout —
// ConnectedUniform rejection-samples up to 2000 candidate layouts per call,
// so re-deriving it once per protocol in every sweep is pure waste (and even
// the cheap structured generators are worth sharing at 10 000 nodes). The
// cache below shares one immutable *deploy.Deployment per distinct key across
// the whole process, including the parallel worker pool. Results are
// unchanged: the generator is a pure function of the key (it consumes only
// the dedicated "deploy" stream, which is itself derived from the seed), so a
// cache hit returns byte-for-byte the deployment a miss would have computed.

// depKey identifies one deterministic deployment draw. maxAttempts is part
// of the key because it changes which draws panic vs succeed; today every
// caller passes 2000, so it never splits the cache in practice. The spec is
// comparable by design (scenario.DeploymentSpec holds only scalars).
type depKey struct {
	seed        int64
	field       geom.Rect
	nodes       int
	radius      float64
	spec        scenario.DeploymentSpec
	maxAttempts int
}

// depCacheLimit bounds the cache so pathological sweeps (many distinct
// fields/densities at many seeds) cannot grow it without bound; at the limit
// the cache resets, which only costs recomputation.
const depCacheLimit = 4096

var depCache struct {
	mu     sync.Mutex
	m      map[depKey]*deploy.Deployment
	hits   uint64
	misses uint64
}

// cachedDeployment returns the shared deployment for the key, drawing it on
// first use. Callers must treat the result as immutable — it is shared across
// concurrent simulation runs.
func cachedDeployment(seed int64, field geom.Rect, nodes int, radius float64, spec scenario.DeploymentSpec, maxAttempts int) *deploy.Deployment {
	key := depKey{seed: seed, field: field, nodes: nodes, radius: radius, spec: spec, maxAttempts: maxAttempts}
	depCache.mu.Lock()
	if d, ok := depCache.m[key]; ok {
		depCache.hits++
		depCache.mu.Unlock()
		return d
	}
	depCache.misses++
	depCache.mu.Unlock()

	// Draw outside the lock: rejection sampling can run 2000 connectivity
	// checks, and concurrent workers should not serialize on it. Two workers
	// racing on the same key compute identical deployments; the second store
	// wins harmlessly.
	st := rng.NewSource(seed).Stream("deploy")
	d := spec.Generate(st, field, nodes, radius, maxAttempts)

	depCache.mu.Lock()
	if depCache.m == nil || len(depCache.m) >= depCacheLimit {
		depCache.m = make(map[depKey]*deploy.Deployment)
	}
	depCache.m[key] = d
	depCache.mu.Unlock()
	return d
}

// depCacheStats returns the cumulative hit/miss counters (for tests).
func depCacheStats() (hits, misses uint64) {
	depCache.mu.Lock()
	defer depCache.mu.Unlock()
	return depCache.hits, depCache.misses
}

// Topology memoization. The compiled CSR connectivity is a pure function of
// (deployment positions, loss MaxRange), and deployments are already shared
// one-per-key above — so keying on the deployment's identity is exact: the
// same pointer means the same positions. Every cell of a sweep sharing
// (seed, field, nodes, range, loss range) then reuses ONE compiled topology
// instead of rebuilding the spatial hash and re-deriving every link distance
// per protocol × seed. Topologies are immutable after compilation and safe
// to share across the worker pool; the medium re-checks the cheap adoption
// invariants (node count, range) and recompiles on mismatch, so a miskeyed
// entry can cost time but never correctness.

// topoKey identifies one compiled topology: the shared deployment instance
// plus the radius it was compiled at.
type topoKey struct {
	dep      *deploy.Deployment
	maxRange float64
}

// topoCacheLimit is far below depCacheLimit because topology entries are
// heavy — a 10k-node CSR with its float64 edge distances runs to megabytes,
// and each key also pins its deployment — while real sweeps only ever touch
// a handful of distinct (deployment, range) pairs per seed set. At the limit
// the cache resets, which only costs recompilation.
const topoCacheLimit = 256

var topoCache struct {
	mu     sync.Mutex
	m      map[topoKey]*radio.Topology
	hits   uint64
	misses uint64
}

// cachedTopology returns the shared compiled topology for the deployment at
// maxRange, compiling it on first use. Callers must treat the result as
// immutable — it is shared across concurrent simulation runs.
func cachedTopology(dep *deploy.Deployment, maxRange float64) *radio.Topology {
	key := topoKey{dep: dep, maxRange: maxRange}
	topoCache.mu.Lock()
	if t, ok := topoCache.m[key]; ok {
		topoCache.hits++
		topoCache.mu.Unlock()
		return t
	}
	topoCache.misses++
	topoCache.mu.Unlock()

	// Compile outside the lock: a 10k-node compilation walks every bucket of
	// the spatial hash, and concurrent workers should not serialize on it.
	// Two workers racing on the same key compile identical topologies; the
	// second store wins harmlessly.
	t := radio.CompileTopology(dep.Field, dep.Positions, maxRange)

	topoCache.mu.Lock()
	if topoCache.m == nil || len(topoCache.m) >= topoCacheLimit {
		topoCache.m = make(map[topoKey]*radio.Topology)
	}
	topoCache.m[key] = t
	topoCache.mu.Unlock()
	return t
}

// topoCacheStats returns the cumulative hit/miss counters (for tests).
func topoCacheStats() (hits, misses uint64) {
	topoCache.mu.Lock()
	defer topoCache.mu.Unlock()
	return topoCache.hits, topoCache.misses
}
