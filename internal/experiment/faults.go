package experiment

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/scenario"
)

// extFaultsLiveness is the sink-side liveness configuration every PAS/SAS
// cell of ext-faults runs with. The 15 s suspicion window (3×5 s) sits below
// the 20 s sleep cap on purpose: the experiment measures the false-dead rate
// of an aggressive detector against legitimately sleeping peers as well as
// against churned ones.
var extFaultsLiveness = fault.LivenessConfig{
	MissK:       3,
	Interval:    5,
	BackoffInit: 2,
	BackoffMax:  16,
	MaxProbes:   3,
}

// extFaultsSpec builds the fault mix at severity x: a fraction x of the
// nodes churns (dark for ~20 s, then rejoins), a fraction x miscalibrates
// (3 s drift with occasional stuck-at and burst noise), and the channel
// degrades by an extra x/2 drop probability over the middle half of the
// horizon. x = 0 is the fault-free control: every model compiles away and
// the run takes the exact legacy code path.
func extFaultsSpec(x, horizon float64) scenario.FailureSpec {
	return scenario.FailureSpec{
		Churn:  &scenario.ChurnSpec{Fraction: x, MeanDown: 20, MinDown: 5},
		Sensor: &scenario.SensorSpec{Fraction: x, Drift: 3, Stuck: 0.2, BurstRate: 2, BurstLen: 2},
		Radio:  &scenario.DegradationSpec{Start: horizon / 4, End: 3 * horizon / 4, Loss: x / 2},
	}
}

// ExtFaults sweeps a combined fault severity — crash-recovery churn, sensor
// miscalibration and a radio degradation window scale together — and reports
// how gracefully each protocol degrades: detection delay, time-averaged live
// coverage, and the liveness tracker's false-dead rate and re-probe cost.
func ExtFaults(o Options) (Result, error) {
	xs := o.sweep([]float64{0, 0.1, 0.2, 0.3}, []float64{0, 0.3})
	protos := []string{ProtoNS, ProtoPAS, ProtoSAS}
	cells := make([]RunConfig, 0, len(protos)*len(xs))
	for _, proto := range protos {
		for _, x := range xs {
			rc := maxSleepConfig(proto, 20)
			rc.Faults = fault.Compile(extFaultsSpec(x, rc.Scenario.Horizon), rc.Scenario.Horizon)
			rc.PAS.Liveness = extFaultsLiveness
			rc.SAS.Liveness = extFaultsLiveness
			cells = append(cells, rc)
		}
	}
	aggs, err := runCells(o, cells)
	if err != nil {
		return Result{}, err
	}
	var delayCurves, liveCurves []Curve
	var notes []string
	for pi, proto := range protos {
		delayPts := make([]Point, len(xs))
		livePts := make([]Point, len(xs))
		for xi, x := range xs {
			agg := aggs[pi*len(xs)+xi]
			delayPts[xi] = Point{X: x, Y: agg.Delay.Mean(), CI: agg.Delay.CI95()}
			livePts[xi] = Point{X: x, Y: agg.Live.Mean(), CI: agg.Live.CI95()}
			if xi == len(xs)-1 && proto != ProtoNS {
				notes = append(notes, fmt.Sprintf(
					"%s at severity %.1f: %.1f probes/run (%.4g J), %.1f declared dead (%.1f false), stale age %.1f s",
					proto, x, agg.Probes.Mean(), agg.ProbeJ.Mean(),
					agg.Declared.Mean(), agg.FalseDead.Mean(), agg.StaleAge.Mean()))
			}
		}
		delayCurves = append(delayCurves, Curve{Name: proto, Points: delayPts})
		liveCurves = append(liveCurves, Curve{Name: proto + " live fraction", Points: livePts})
	}
	notes = append(notes,
		"severity x: fraction x of nodes churns (~20 s dark) and miscalibrates (3 s drift, stuck/burst); channel loses an extra x/2 mid-run",
		"x = 0 is the fault-free control; PAS/SAS still run the liveness tracker, so probe counts there price the detector itself",
		"delay is over nodes that detected; burst-noise false positives fire before true arrival, so faulted delays can go negative",
		"probe energy is the marginal transmit draw, which the Telos profile prices at zero (receive draw exceeds transmit draw)",
		"live fraction is the time-averaged share of nodes up; it is protocol-independent because churn draws only from fault streams")
	return Result{
		ID:     "ext-faults",
		Title:  "Graceful degradation under churn, miscalibration and radio fading",
		XLabel: "fault severity",
		YLabel: "avg delay (s)",
		Curves: append(delayCurves, liveCurves...),
		Notes:  notes,
	}, nil
}
