package experiment

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestFromScenarioPaperMatchesDefaults pins that compiling the registry's
// first entry reproduces the historical default run bit for bit: same
// deployment draw, same stimulus, same metrics.
func TestFromScenarioPaperMatchesDefaults(t *testing.T) {
	sp, ok := scenario.Lookup("paper")
	if !ok {
		t.Fatal("registry lost the paper scenario")
	}
	rc, err := FromScenario(sp, 21)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunOnce(RunConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("paper spec diverged from the default run:\nspec    %+v\ndefault %+v", got, want)
	}
}

func TestFromScenarioAppliesSpecSections(t *testing.T) {
	sp, ok := scenario.Lookup("harsh")
	if !ok {
		t.Fatal("registry lost the harsh scenario")
	}
	rc, err := FromScenario(sp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Collisions || rc.CSMA == nil {
		t.Errorf("collisions/CSMA not applied: %+v", rc)
	}
	if rc.FailFraction != 0.1 {
		t.Errorf("failure fraction = %g", rc.FailFraction)
	}
	if rc.Loss == nil || rc.Loss.MaxRange() != 12 {
		t.Errorf("loss model = %v", rc.Loss)
	}
	rep, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, n := range rep.Nodes {
		if n.Failed {
			failed++
		}
	}
	if failed != 4 { // 10% of 40
		t.Errorf("%d nodes failed, want 4", failed)
	}
}

func TestFromScenarioProtocolOverrides(t *testing.T) {
	sp, _ := scenario.Lookup("paper")
	sp.Protocol = scenario.ProtocolSpec{Name: "sas", MaxSleep: 25, AlertThreshold: 12}
	rc, err := FromScenario(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Protocol != "sas" {
		t.Errorf("protocol = %q", rc.Protocol)
	}
	if rc.PAS.SleepMax != 25 || rc.PAS.SleepIncrement != 5 || rc.SAS.SleepMax != 25 {
		t.Errorf("sleep overrides not applied: PAS %+v SAS %+v", rc.PAS, rc.SAS)
	}
	if rc.PAS.AlertThreshold != 12 || rc.SAS.AlertThreshold != 12 {
		t.Errorf("threshold override not applied")
	}
	// A spec that sets only the increment (no cap) must still take effect.
	sp.Protocol = scenario.ProtocolSpec{SleepIncrement: 2.5}
	rc, err = FromScenario(sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.PAS.SleepIncrement != 2.5 || rc.SAS.SleepIncrement != 2.5 {
		t.Errorf("increment-only override lost: PAS %+v SAS %+v", rc.PAS, rc.SAS)
	}
	if _, err := FromScenario(scenario.Scenario{Name: "bad"}, 1); err == nil {
		t.Error("invalid spec compiled")
	}
}

// TestRunConfigDeploymentKinds runs every structured deployment kind end to
// end on the paper workload.
func TestRunConfigDeploymentKinds(t *testing.T) {
	for _, name := range []string{"grid", "clustered", "poisson"} {
		sp, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("registry lost scenario %q", name)
		}
		rc, err := FromScenario(sp, 2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunOnce(rc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Nodes) != sp.Nodes {
			t.Errorf("%s: %d node reports, want %d", name, len(rep.Nodes), sp.Nodes)
		}
		if rep.AvgEnergyJ <= 0 {
			t.Errorf("%s: no energy accounted", name)
		}
	}
}

// TestExtScaleDeterministicAcrossParallelism pins the numeric output of the
// scale sweep (curves, not the wall-clock notes) across worker counts.
func TestExtScaleDeterministicAcrossParallelism(t *testing.T) {
	opts := Options{Quick: true, Seeds: DefaultSeeds(2)}
	serial := opts
	serial.Parallelism = 1
	a, err := ExtScale(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := opts
	parallel.Parallelism = 8
	b, err := ExtScale(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Curves, b.Curves) {
		t.Errorf("scale curves diverged across parallelism:\nserial   %+v\nparallel %+v", a.Curves, b.Curves)
	}
	if len(a.Curves) != 6 { // delay + energy per protocol
		t.Errorf("%d curves, want 6", len(a.Curves))
	}
	for _, c := range a.Curves {
		if len(c.Points) != 2 { // Quick: 100 and 1000 nodes
			t.Errorf("curve %s has %d points, want 2", c.Name, len(c.Points))
		}
	}
	// NS is the always-on baseline: zero delay at every size.
	ns, ok := a.Curve(ProtoNS)
	if !ok {
		t.Fatal("missing NS curve")
	}
	for _, p := range ns.Points {
		if p.Y != 0 {
			t.Errorf("NS delay at %g nodes = %g, want 0", p.X, p.Y)
		}
	}
}

func TestScenarioSweep(t *testing.T) {
	exp, err := ScenarioSweep("grid")
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "scenario-grid" || !strings.Contains(exp.Title, "grid") {
		t.Errorf("experiment identity: %q / %q", exp.ID, exp.Title)
	}
	res, err := exp.Run(Options{Quick: true, Seeds: DefaultSeeds(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 6 {
		t.Errorf("%d curves, want 6", len(res.Curves))
	}
	pas, ok := res.Curve(ProtoPAS)
	if !ok || len(pas.Points) != 2 {
		t.Fatalf("PAS curve = %+v, ok %v", pas, ok)
	}
	if _, err := ScenarioSweep("atlantis"); err == nil {
		t.Error("unknown scenario accepted")
	}
}
