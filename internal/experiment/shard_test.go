package experiment

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/radio"
	"repro/internal/scenario"
)

// TestShardedByteIdentityScale1k is the tentpole acceptance test: a full
// scale-1k PAS run must produce a byte-identical RunReport — every per-node
// metric, every aggregate — at 1, 2 and 8 shards versus the serial kernel.
func TestShardedByteIdentityScale1k(t *testing.T) {
	spec, ok := scenario.Lookup("scale-1k")
	if !ok {
		t.Fatal("scale-1k missing from the scenario registry")
	}
	rc, err := FromScenario(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc.Protocol = ProtoPAS

	serial, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Detected == 0 {
		t.Fatal("serial scale-1k run detected nothing; workload is vacuous")
	}
	for _, shards := range []int{1, 2, 8} {
		src := rc
		src.Shards = shards
		got, err := RunOnce(src)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("shards=%d: RunReport differs from serial run", shards)
			if got.Detected != serial.Detected {
				t.Errorf("  Detected: %d vs %d", got.Detected, serial.Detected)
			}
			if got.AvgDelay != serial.AvgDelay {
				t.Errorf("  AvgDelay: %v vs %v", got.AvgDelay, serial.AvgDelay)
			}
			if got.AvgEnergyJ != serial.AvgEnergyJ {
				t.Errorf("  AvgEnergyJ: %v vs %v", got.AvgEnergyJ, serial.AvgEnergyJ)
			}
			if got.Messages != serial.Messages {
				t.Errorf("  Messages: %d vs %d", got.Messages, serial.Messages)
			}
		}
	}
}

// TestShardableGate pins the configurations that must refuse to shard: every
// transmit-path feature that draws shared randomness or mutates remote
// receiver state at transmit time.
func TestShardableGate(t *testing.T) {
	base := RunConfig{Shards: 2}
	if err := Shardable(base); err != nil {
		t.Fatalf("default config should shard: %v", err)
	}
	lossy := base
	lossy.Loss = radio.LossyDisk{Range: 10, LossProb: 0.1}
	if Shardable(lossy) == nil {
		t.Error("lossy channel passed the shard gate")
	}
	coll := base
	coll.Collisions = true
	if Shardable(coll) == nil {
		t.Error("collision modelling passed the shard gate")
	}
	csma := base
	cfg := radio.DefaultCSMA()
	csma.CSMA = &cfg
	if Shardable(csma) == nil {
		t.Error("CSMA passed the shard gate")
	}
	if _, err := RunOnce(lossy); err == nil {
		t.Error("RunOnce on an unshardable config with Shards set did not error")
	}
}

// TestShardedBatteryAndFailures pins the construction-time randomness
// contract: battery budgets and legacy random failures draw before the
// shards start, so they must survive sharding byte-identically too.
func TestShardedBatteryAndFailures(t *testing.T) {
	rc := RunConfig{
		Nodes:        120,
		Seed:         7,
		BatteryJ:     2.0,
		FailFraction: 0.2,
	}
	serial, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	sharded := rc
	sharded.Shards = 4
	got, err := RunOnce(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Errorf("sharded battery/failure run differs from serial:\ngot  %+v\nwant %+v", got, serial)
	}
}

// TestRunOnceSharded pins the convenience wrapper: Shards defaults to 1 when
// unset and the result matches the serial run exactly.
func TestRunOnceSharded(t *testing.T) {
	rc := RunConfig{Nodes: 60, Seed: 3}
	serial, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunOnceSharded(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Errorf("RunOnceSharded differs from serial:\ngot  %+v\nwant %+v", got, serial)
	}
}
