package experiment

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestRunOnceContextCancelled verifies a dead context stops a run before it
// completes (and before it even builds).
func TestRunOnceContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOnceContext(ctx, RunConfig{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunOnceContextDeadlineMidRun verifies an expiring deadline interrupts
// the kernel between slices rather than running to the horizon.
func TestRunOnceContextDeadlineMidRun(t *testing.T) {
	// A microscopic deadline expires while the simulation executes; the run
	// must report the deadline error instead of a full-horizon report.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline lapse for certain
	_, err := RunOnceContext(ctx, RunConfig{Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunOnceContextMatchesRunOnce pins that a live cancellable context —
// which takes the sliced kernel path — produces byte-identical reports to
// the plain Background run, at several seeds.
func TestRunOnceContextMatchesRunOnce(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rc := RunConfig{Seed: seed}
		want, err := RunOnce(rc)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		got, err := RunOnceContext(ctx, rc)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: sliced run drifted from the unsliced run", seed)
		}
	}
}

// TestReplicateParallelContextCancel verifies cancellation propagates through
// the replication pool at serial and parallel settings.
func TestReplicateParallelContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{1, 4} {
		_, err := ReplicateParallelContext(ctx, RunConfig{}, DefaultSeeds(8), p)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", p, err)
		}
	}
}

// TestReplicateContextMatchesReplicate pins aggregate equality between the
// ctx and ctx-free forms on a live context.
func TestReplicateContextMatchesReplicate(t *testing.T) {
	seeds := DefaultSeeds(3)
	want, err := Replicate(RunConfig{}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := ReplicateContext(ctx, RunConfig{}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("ctx-aware replication drifted from the plain form")
	}
}
