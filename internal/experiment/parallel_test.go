package experiment

import (
	"errors"
	"testing"
)

// TestParallelDeterminism verifies the tentpole guarantee of the parallel
// replication engine: rendered experiment output is byte-identical between
// the serial path (-parallel 1) and a fan-out over 8 workers for the same
// seeds, across a paper figure and two structurally different extensions
// (ext-plume shares one PDE scenario across all workers; ext-lifetime
// aggregates a censored lifetime metric).
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"fig4", "ext-plume", "ext-lifetime"} {
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, ok := Lookup(id)
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			base := Options{Quick: true, Seeds: DefaultSeeds(3)}

			serial := base
			serial.Parallelism = 1
			resSerial, err := exp.Run(serial)
			if err != nil {
				t.Fatal(err)
			}

			parallel := base
			parallel.Parallelism = 8
			resParallel, err := exp.Run(parallel)
			if err != nil {
				t.Fatal(err)
			}

			if s, p := resSerial.Render(), resParallel.Render(); s != p {
				t.Errorf("parallel output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
			if s, p := resSerial.CSV(), resParallel.CSV(); s != p {
				t.Errorf("parallel CSV diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

// TestReplicateParallelMatchesSerial pins the lower-level API: the
// aggregates must match field-for-field at any parallelism.
func TestReplicateParallelMatchesSerial(t *testing.T) {
	rc := RunConfig{Protocol: ProtoPAS}
	seeds := DefaultSeeds(4)
	serial, err := Replicate(rc, seeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 2, 8} {
		par, err := ReplicateParallel(rc, seeds, p)
		if err != nil {
			t.Fatal(err)
		}
		if serial != par {
			t.Errorf("parallelism %d: aggregate diverged:\nserial:   %+v\nparallel: %+v", p, serial, par)
		}
	}
}

// TestReplicateParallelErrorPropagation checks a broken config surfaces its
// error through the pool instead of deadlocking or panicking.
func TestReplicateParallelErrorPropagation(t *testing.T) {
	rc := RunConfig{Protocol: "bogus"}
	if _, err := ReplicateParallel(rc, DefaultSeeds(4), 4); err == nil {
		t.Fatal("bogus protocol accepted")
	} else if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

// TestOptionsParallelismDefault pins the knob's resolution rules.
func TestOptionsParallelismDefault(t *testing.T) {
	if got := (Options{}).parallelism(); got < 1 {
		t.Errorf("default parallelism = %d, want >= 1", got)
	}
	if got := (Options{Parallelism: 3}).parallelism(); got != 3 {
		t.Errorf("explicit parallelism = %d, want 3", got)
	}
	if got := (Options{Parallelism: -2}).parallelism(); got < 1 {
		t.Errorf("negative parallelism resolved to %d, want >= 1", got)
	}
}
