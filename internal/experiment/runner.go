// Package experiment is the reproduction harness: it wires scenarios,
// deployments and protocol agents into replicated simulation runs and
// regenerates every table and figure of the paper's evaluation (§4) plus the
// extension experiments listed in DESIGN.md.
package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sas"
	"repro/internal/scenario"
)

// Protocol names accepted by RunConfig.
const (
	ProtoPAS  = "pas"
	ProtoSAS  = "sas"
	ProtoNS   = "ns"
	ProtoDuty = "duty"
)

// RunConfig describes one simulation run.
type RunConfig struct {
	// Scenario supplies the field, stimulus and horizon.
	Scenario diffusion.Scenario
	// Nodes is the deployment size (the paper uses 30).
	Nodes int
	// Range is the transmission range in metres (the paper uses 10).
	Range float64
	// Deploy selects the deployment generator; the zero value is the
	// paper's connected-uniform draw.
	Deploy scenario.DeploymentSpec
	// Protocol selects the sleeping strategy: pas, sas, ns or duty.
	Protocol string
	// PAS/SAS hold the protocol tunables when the respective protocol runs.
	PAS core.Config
	SAS sas.Config
	// DutyPeriod/DutyOn parameterize the duty-cycling strawman.
	DutyPeriod, DutyOn float64
	// Seed drives deployment, channel and failure randomness.
	Seed int64
	// Loss overrides the channel model (default: unit disk at Range).
	Loss radio.LossModel
	// Collisions enables destructive collision modelling.
	Collisions bool
	// CSMA, when non-nil, enables carrier-sense multiple access.
	CSMA *radio.CSMAConfig
	// FailFraction kills that fraction of nodes at random times in
	// [0, FailBy] (FailBy 0 = the horizon).
	FailFraction float64
	FailBy       float64
	// Faults, when non-nil, is a compiled extended fault plan (churn, sensor
	// miscalibration, clustered/windowed crashes, radio degradation) applied
	// after network construction. Nil keeps the exact fault-free (or legacy
	// FailFraction) code path.
	Faults *fault.Plan
	// BatteryJ, when positive, gives every node a finite energy budget in
	// joules; nodes die when they exhaust it (the lifetime experiments).
	BatteryJ float64
	// Shards, when positive, runs the simulation on that many spatially
	// partitioned kernels under conservative time windows (see
	// node.BuildShardedNetwork). Output is bit-identical to the serial
	// kernel at any shard count; only wall-clock time changes. Sharding
	// requires a deterministic transmit path — exact unit-disk loss, no
	// collisions, no CSMA, no extended fault plan — and returns an error
	// otherwise (Shardable reports why).
	Shards int
}

// Defaults fills zero fields with the paper's §4.2 setup (30 nodes, 10 m
// range, Telos power model, PAS defaults).
func (rc RunConfig) Defaults() RunConfig {
	if rc.Nodes == 0 {
		rc.Nodes = 30
	}
	if rc.Range == 0 {
		rc.Range = 10
	}
	if rc.Protocol == "" {
		rc.Protocol = ProtoPAS
	}
	if rc.PAS == (core.Config{}) {
		rc.PAS = core.DefaultConfig()
	}
	if rc.SAS == (sas.Config{}) {
		rc.SAS = sas.DefaultConfig()
	}
	if rc.DutyPeriod == 0 {
		rc.DutyPeriod = 10
	}
	if rc.DutyOn == 0 {
		rc.DutyOn = 1
	}
	if rc.Scenario.Stimulus == nil {
		rc.Scenario = diffusion.PaperScenario()
	}
	return rc
}

// agents returns the per-node agent factory for the configured protocol.
// The PAS/SAS factories carve agents from one slab sized to the deployment,
// so a 10k-node network costs one agent allocation instead of 10k.
func (rc RunConfig) agents() (func(radio.NodeID) node.Agent, error) {
	switch rc.Protocol {
	case ProtoPAS:
		slab := core.NewSlab(rc.PAS, rc.Nodes)
		return func(radio.NodeID) node.Agent { return slab() }, nil
	case ProtoSAS:
		slab := sas.NewSlab(rc.SAS, rc.Nodes)
		return func(radio.NodeID) node.Agent { return slab() }, nil
	case ProtoNS:
		return func(radio.NodeID) node.Agent { return baseline.NewNS() }, nil
	case ProtoDuty:
		period, on := rc.DutyPeriod, rc.DutyOn
		return func(radio.NodeID) node.Agent { return baseline.NewDutyCycle(period, on) }, nil
	default:
		return nil, fmt.Errorf("experiment: unknown protocol %q", rc.Protocol)
	}
}

// Build assembles the network for a run config without running it, so
// callers can attach observers (contour estimators, state logs) before the
// simulation starts. It returns the network and the defaulted config.
func Build(rc RunConfig) (*node.Network, RunConfig, error) {
	rc = rc.Defaults()
	agents, err := rc.agents()
	if err != nil {
		return nil, rc, err
	}
	src := rng.NewSource(rc.Seed)
	// Deployments are memoized: every cell sharing (seed, field, nodes,
	// range, deployment spec) reuses one immutable deployment instead of
	// re-running the generator (see depcache.go).
	dep := cachedDeployment(rc.Seed, rc.Scenario.Field, rc.Nodes, rc.Range, rc.Deploy, 2000)
	loss := rc.Loss
	if loss == nil {
		loss = radio.UnitDisk{Range: rc.Range}
	}
	// Radio degradation wraps the loss model per run (the wrapper holds a
	// per-run stream and clock); MaxRange delegates to the base model, so the
	// memoized topology below is shared with undegraded cells.
	var degraded *fault.DegradedLoss
	if rc.Faults != nil && rc.Faults.Degrade.Loss > 0 {
		degraded = fault.NewDegradedLoss(loss, rc.Faults.Degrade, src.Stream("fault/degrade"))
		loss = degraded
	}
	// The CSR connectivity is memoized alongside the deployment: every cell
	// sharing (deployment, loss range) hands the medium one precompiled
	// topology instead of re-freezing it per protocol × seed (see
	// depcache.go).
	topo := cachedTopology(dep, loss.MaxRange())
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment:    dep,
		Stimulus:      rc.Scenario.Stimulus,
		Profile:       energy.Telos(),
		Loss:          loss,
		Agents:        agents,
		ChannelStream: src.Stream("channel"),
		Collisions:    rc.Collisions,
		CSMA:          rc.CSMA,
		Topology:      topo,
	})
	if rc.BatteryJ > 0 {
		for _, n := range nw.Nodes {
			n.SetBattery(rc.BatteryJ)
		}
	}
	if rc.FailFraction > 0 {
		failBy := rc.FailBy
		if failBy <= 0 {
			failBy = rc.Scenario.Horizon
		}
		st := src.Stream("failures")
		kill := int(math.Round(rc.FailFraction * float64(len(nw.Nodes))))
		for _, idx := range st.Perm(len(nw.Nodes))[:kill] {
			nw.Nodes[idx].FailAt(st.Uniform(0, failBy))
		}
	}
	if degraded != nil {
		degraded.Bind(nw.Kernel)
	}
	if rc.Faults != nil {
		rc.Faults.Apply(src, nw.Nodes)
	}
	return nw, rc, nil
}

// RunOnce executes one simulation and collects its metrics.
func RunOnce(rc RunConfig) (metrics.RunReport, error) {
	return RunOnceContext(context.Background(), rc)
}

// RunOnceContext is RunOnce with cooperative cancellation: the context is
// checked before the network is built and between kernel slices while the
// simulation runs (node.Network.RunContext), so a cancelled or expired
// request stops within a fraction of the run instead of completing it. A
// non-cancellable context (context.Background()) reproduces RunOnce exactly.
func RunOnceContext(ctx context.Context, rc RunConfig) (metrics.RunReport, error) {
	if err := ctx.Err(); err != nil {
		return metrics.RunReport{}, err
	}
	if rc.Shards > 0 {
		nw, rc, err := BuildSharded(rc)
		if err != nil {
			return metrics.RunReport{}, err
		}
		if _, err := nw.RunContext(ctx, rc.Scenario.Horizon); err != nil {
			return metrics.RunReport{}, err
		}
		return metrics.Collect(nw.Nodes, rc.Scenario.Horizon), nil
	}
	nw, rc, err := Build(rc)
	if err != nil {
		return metrics.RunReport{}, err
	}
	if _, err := nw.RunContext(ctx, rc.Scenario.Horizon); err != nil {
		return metrics.RunReport{}, err
	}
	return metrics.Collect(nw.Nodes, rc.Scenario.Horizon), nil
}

// Replicate runs the config once per seed and aggregates the headline
// metrics. Replication is serial; ReplicateParallel fans the runs out.
func Replicate(rc RunConfig, seeds []int64) (metrics.Aggregate, error) {
	return ReplicateParallel(rc, seeds, 1)
}

// ReplicateContext is Replicate with cooperative cancellation between (and
// inside) the per-seed runs.
func ReplicateContext(ctx context.Context, rc RunConfig, seeds []int64) (metrics.Aggregate, error) {
	return ReplicateParallelContext(ctx, rc, seeds, 1)
}

// ReplicateParallel runs the config once per seed across a pool of
// parallelism workers (non-positive means one per CPU) and folds the
// reports in seed order, so the aggregate is bit-identical to a serial
// replication at any parallelism.
func ReplicateParallel(rc RunConfig, seeds []int64, parallelism int) (metrics.Aggregate, error) {
	return ReplicateParallelContext(context.Background(), rc, seeds, parallelism)
}

// ReplicateParallelContext is ReplicateParallel with cooperative
// cancellation: the pool stops claiming seeds once ctx is done and in-flight
// runs stop at their next kernel slice, so the call returns promptly with
// ctx's error instead of a partial aggregate.
func ReplicateParallelContext(ctx context.Context, rc RunConfig, seeds []int64, parallelism int) (metrics.Aggregate, error) {
	var agg metrics.Aggregate
	reports, err := runner.MapContext(ctx, parallelism, len(seeds),
		func(ctx context.Context, i int) (metrics.RunReport, error) {
			rc := rc
			rc.Seed = seeds[i]
			return RunOnceContext(ctx, rc)
		})
	if err != nil {
		return agg, err
	}
	for _, rep := range reports {
		agg.Add(rep)
	}
	return agg, nil
}

// DefaultSeeds returns n deterministic replication seeds.
func DefaultSeeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// lossyAt builds the lossy-disk channel used by the imperfect-channel
// experiments and tests.
func lossyAt(r, p float64) radio.LossyDisk {
	return radio.LossyDisk{Range: r, LossProb: p}
}
