package experiment

import (
	"repro/internal/metrics"
	"repro/internal/runner"
)

// parallelism resolves the Options knob: non-positive means one worker per
// CPU, 1 reproduces the historical serial sweep exactly.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runner.DefaultParallelism()
}

// runCells replicates every cell of a sweep across o's seeds. The flattened
// (cell × seed) grid fans out to the worker pool and the reports fold back
// in (cell, seed) order, so each aggregate — and therefore every rendered
// figure — is bit-identical to a serial sweep at any parallelism.
func runCells(o Options, cells []RunConfig) ([]metrics.Aggregate, error) {
	seeds := o.seeds()
	reports, err := runner.Map(o.parallelism(), len(cells)*len(seeds),
		func(i int) (metrics.RunReport, error) {
			rc := cells[i/len(seeds)]
			rc.Seed = seeds[i%len(seeds)]
			return RunOnce(rc)
		})
	if err != nil {
		return nil, err
	}
	aggs := make([]metrics.Aggregate, len(cells))
	for c := range cells {
		for s := range seeds {
			aggs[c].Add(reports[c*len(seeds)+s])
		}
	}
	return aggs, nil
}

// runPoints reduces runCells to the headline delay/energy summary per cell.
func runPoints(o Options, cells []RunConfig) ([]protoPoint, error) {
	aggs, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	pts := make([]protoPoint, len(aggs))
	for i, agg := range aggs {
		pts[i] = protoPoint{
			delay:    agg.Delay.Mean(),
			delayCI:  agg.Delay.CI95(),
			energy:   agg.Energy.Mean(),
			energyCI: agg.Energy.CI95(),
		}
	}
	return pts, nil
}

// sweepCurves runs a (variant × x) grid — the shape of most figures — and
// returns one curve per variant with the y value extracted by pick.
func sweepCurves(o Options, names []string, xs []float64,
	cfg func(v, xi int) RunConfig,
	pick func(metrics.Aggregate) (y, ci float64)) ([]Curve, error) {
	cells := make([]RunConfig, 0, len(names)*len(xs))
	for v := range names {
		for xi := range xs {
			cells = append(cells, cfg(v, xi))
		}
	}
	aggs, err := runCells(o, cells)
	if err != nil {
		return nil, err
	}
	curves := make([]Curve, len(names))
	for v, name := range names {
		pts := make([]Point, len(xs))
		for xi, x := range xs {
			y, ci := pick(aggs[v*len(xs)+xi])
			pts[xi] = Point{X: x, Y: y, CI: ci}
		}
		curves[v] = Curve{Name: name, Points: pts}
	}
	return curves, nil
}

// delayOf and energyOf are the standard pick functions for sweepCurves.
func delayOf(a metrics.Aggregate) (float64, float64)  { return a.Delay.Mean(), a.Delay.CI95() }
func energyOf(a metrics.Aggregate) (float64, float64) { return a.Energy.Mean(), a.Energy.CI95() }
