package experiment

import (
	"fmt"

	"repro/internal/contour"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Options tunes how experiments are executed.
type Options struct {
	// Seeds overrides the replication seeds (default: 8 runs, 3 in Quick
	// mode).
	Seeds []int64
	// Quick shrinks sweeps and replication for smoke tests and benches.
	Quick bool
	// Parallelism caps how many simulation runs execute concurrently.
	// Zero or negative means one worker per CPU (runtime.GOMAXPROCS); 1
	// reproduces the serial path. Results are bit-identical at any value
	// because aggregation is ordered by cell index, not completion order.
	Parallelism int
}

func (o Options) seeds() []int64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	if o.Quick {
		return DefaultSeeds(3)
	}
	return DefaultSeeds(8)
}

func (o Options) sweep(full, quick []float64) []float64 {
	if o.Quick {
		return quick
	}
	return full
}

// Experiment is one regenerable table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) (Result, error)
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Telos hardware characteristics (paper Table 1)", Table1},
		{"fig4", "Detection delay vs maximum sleep interval (paper Fig. 4)", Fig4},
		{"fig5", "Detection delay vs alert-time threshold (paper Fig. 5)", Fig5},
		{"fig6", "Energy consumption vs maximum sleep interval (paper Fig. 6)", Fig6},
		{"fig7", "Energy consumption vs alert-time threshold (paper Fig. 7)", Fig7},
		{"ext-failures", "Extension: node failures (paper §5 future work)", ExtFailures},
		{"ext-lossy", "Extension: imperfect channel (paper §5 future work)", ExtLossy},
		{"ext-lossy-csma", "Extension: imperfect channel under collisions and CSMA", ExtLossyCSMA},
		{"ext-degenerate", "Extension: PAS with tiny alert time degenerates to SAS (§3.4)", ExtDegenerate},
		{"ext-estimator", "Ablation: arrival-time aggregation and velocity propagation", ExtEstimator},
		{"ext-plume", "Extension: protocols on the PDE plume stimulus", ExtPlume},
		{"ext-density", "Extension: deployment density sweep", ExtDensity},
		{"ext-lifetime", "Extension: surveillance lifetime under finite batteries", ExtLifetime},
		{"ext-collisions", "Ablation: destructive collisions vs ideal channel", ExtCollisions},
		{"ext-contour", "Extension: covered-area estimation error (monitoring efficacy)", ExtContour},
		{"ext-terrain", "Extension: protocols on the heterogeneous-terrain (eikonal) front", ExtTerrain},
		{"ext-scale", "Extension: production-scale deployments (100/1k/10k nodes)", ExtScale},
		{"ext-faults", "Extension: fault injection — churn, miscalibration, radio fading", ExtFaults},
		{"ext-predictors", "Extension: arrival-predictor portfolio (LMS/EWMA/AR/Kalman/switching)", ExtPredictors},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// protoPoint is the headline aggregate of one replicated cell.
type protoPoint struct {
	delay, delayCI   float64
	energy, energyCI float64
}

// maxSleepConfig builds the paper's Figs. 4/6 run config for one protocol at
// one maximum sleep interval. The ramp increment scales with the cap so the
// schedule reaches its maximum within the observation window at every sweep
// point (the paper's "increase linearly until they reach the maximum").
func maxSleepConfig(protocol string, maxSleep float64) RunConfig {
	rc := RunConfig{Protocol: protocol}.Defaults()
	rc.PAS.SleepMax = maxSleep
	rc.PAS.SleepIncrement = maxSleep / 5
	rc.SAS.SleepMax = maxSleep
	rc.SAS.SleepIncrement = maxSleep / 5
	return rc
}

// sweepMaxSleep runs NS/PAS/SAS across the Figs. 4/6 x-axis.
func sweepMaxSleep(o Options) (map[string][]Point, map[string][]Point, []float64, error) {
	xs := o.sweep([]float64{5, 10, 15, 20, 25, 30}, []float64{5, 30})
	protos := []string{ProtoNS, ProtoPAS, ProtoSAS}
	cells := make([]RunConfig, 0, len(protos)*len(xs))
	for _, proto := range protos {
		for _, x := range xs {
			cells = append(cells, maxSleepConfig(proto, x))
		}
	}
	pts, err := runPoints(o, cells)
	if err != nil {
		return nil, nil, nil, err
	}
	delay := map[string][]Point{}
	energyPts := map[string][]Point{}
	for pi, proto := range protos {
		for xi, x := range xs {
			pt := pts[pi*len(xs)+xi]
			delay[proto] = append(delay[proto], Point{X: x, Y: pt.delay, CI: pt.delayCI})
			energyPts[proto] = append(energyPts[proto], Point{X: x, Y: pt.energy, CI: pt.energyCI})
		}
	}
	return delay, energyPts, xs, nil
}

// Table1 renders the energy model constants the simulator uses, which are
// the paper's Table 1 verbatim.
func Table1(Options) (Result, error) {
	p := energy.Telos()
	extra := fmt.Sprintf(
		"%-22s %10s\n%-22s %10g\n%-22s %10g\n%-22s %10g\n%-22s %10g\n%-22s %10g\n%-22s %10g\n",
		"characteristic", "value",
		"active power (mW)", p.ActiveMW,
		"sleep power (uW)", p.SleepUW,
		"receive power (mW)", p.ReceiveMW,
		"transmit power (mW)", p.TransmitMW,
		"data rate (kbps)", p.DataRateKbps,
		"total active (mW)", p.TotalActiveMW,
	)
	return Result{
		ID:    "table1",
		Title: "Telos hardware characteristics (paper Table 1)",
		Extra: extra,
		Notes: []string{
			"values are consumed by internal/energy and drive every energy figure",
			"the paper's 'transition power' column is the CC2420 transmit draw",
		},
	}, nil
}

// Fig4 regenerates the paper's Fig. 4: average detection delay vs maximum
// sleep interval for NS, PAS and SAS.
func Fig4(o Options) (Result, error) {
	delay, _, _, err := sweepMaxSleep(o)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "fig4",
		Title:  "Detection delay vs maximum sleep interval",
		XLabel: "maxSleep (s)",
		YLabel: "avg delay (s)",
		Curves: []Curve{
			{Name: "NS", Points: delay[ProtoNS]},
			{Name: "PAS", Points: delay[ProtoPAS]},
			{Name: "SAS", Points: delay[ProtoSAS]},
		},
		Notes: []string{
			"paper shape: NS is zero; PAS and SAS grow with the sleep cap; PAS stays below SAS",
		},
	}, nil
}

// Fig6 regenerates the paper's Fig. 6: average energy vs maximum sleep
// interval for NS, PAS and SAS.
func Fig6(o Options) (Result, error) {
	_, energyPts, _, err := sweepMaxSleep(o)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "fig6",
		Title:  "Energy consumption vs maximum sleep interval",
		XLabel: "maxSleep (s)",
		YLabel: "avg energy (J)",
		Curves: []Curve{
			{Name: "NS", Points: energyPts[ProtoNS]},
			{Name: "PAS", Points: energyPts[ProtoPAS]},
			{Name: "SAS", Points: energyPts[ProtoSAS]},
		},
		Notes: []string{
			"paper shape: NS consumes the most; PAS slightly above SAS (it also wakes far-away sensors); both fall with the cap",
		},
	}, nil
}

// thresholdConfig builds the Figs. 5/7 PAS config at one alert threshold.
func thresholdConfig(threshold float64) RunConfig {
	rc := RunConfig{Protocol: ProtoPAS}.Defaults()
	rc.PAS.AlertThreshold = threshold
	rc.PAS.SleepMax = 30
	rc.PAS.SleepIncrement = 6
	return rc
}

// sweepThreshold runs PAS across the Figs. 5/7 x-axis.
func sweepThreshold(o Options) ([]Point, []Point, error) {
	xs := o.sweep([]float64{10, 15, 20, 25, 30}, []float64{10, 30})
	cells := make([]RunConfig, len(xs))
	for i, x := range xs {
		cells[i] = thresholdConfig(x)
	}
	pts, err := runPoints(o, cells)
	if err != nil {
		return nil, nil, err
	}
	var delay, energyPts []Point
	for i, x := range xs {
		delay = append(delay, Point{X: x, Y: pts[i].delay, CI: pts[i].delayCI})
		energyPts = append(energyPts, Point{X: x, Y: pts[i].energy, CI: pts[i].energyCI})
	}
	return delay, energyPts, nil
}

// Fig5 regenerates the paper's Fig. 5: PAS detection delay vs alert-time
// threshold.
func Fig5(o Options) (Result, error) {
	delay, _, err := sweepThreshold(o)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "fig5",
		Title:  "Detection delay under different alert time thresholds",
		XLabel: "alert time (s)",
		YLabel: "avg delay (s)",
		Curves: []Curve{{Name: "PAS", Points: delay}},
		Notes: []string{
			"paper shape: delay falls as the alert time grows (1.73s → 1.50s for 10s → 30s); the knob NS and SAS lack",
		},
	}, nil
}

// Fig7 regenerates the paper's Fig. 7: PAS energy vs alert-time threshold.
func Fig7(o Options) (Result, error) {
	_, energyPts, err := sweepThreshold(o)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "fig7",
		Title:  "Energy consumption under different alert time thresholds",
		XLabel: "alert time (s)",
		YLabel: "avg energy (J)",
		Curves: []Curve{{Name: "PAS", Points: energyPts}},
		Notes: []string{
			"paper shape: energy grows with the alert time (a larger alert area keeps more sensors awake)",
		},
	}, nil
}

// ExtFailures sweeps the node-failure fraction (the paper's §5 future work).
func ExtFailures(o Options) (Result, error) {
	xs := o.sweep([]float64{0, 0.1, 0.2, 0.3}, []float64{0, 0.3})
	protos := []string{ProtoPAS, ProtoSAS}
	cells := make([]RunConfig, 0, len(protos)*len(xs))
	for _, proto := range protos {
		for _, x := range xs {
			rc := maxSleepConfig(proto, 20)
			rc.FailFraction = x
			rc.FailBy = rc.Scenario.Horizon / 2
			cells = append(cells, rc)
		}
	}
	aggs, err := runCells(o, cells)
	if err != nil {
		return Result{}, err
	}
	var curves []Curve
	var missedNote string
	for pi, proto := range protos {
		var pts []Point
		for xi, x := range xs {
			agg := aggs[pi*len(xs)+xi]
			pts = append(pts, Point{X: x, Y: agg.Delay.Mean(), CI: agg.Delay.CI95()})
			if xi == len(xs)-1 {
				missedNote += fmt.Sprintf("%s misses %.1f nodes/run at %.0f%% failures; ",
					proto, agg.Missed.Mean(), 100*x)
			}
		}
		curves = append(curves, Curve{Name: proto, Points: pts})
	}
	return Result{
		ID:     "ext-failures",
		Title:  "Detection delay vs node failure fraction",
		XLabel: "failure fraction",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes: []string{
			"failed nodes never detect; delay is over surviving detectors",
			missedNote,
		},
	}, nil
}

// ExtLossy sweeps packet loss probability (the paper's §5 future work).
func ExtLossy(o Options) (Result, error) {
	xs := o.sweep([]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}, []float64{0, 0.5})
	protos := []string{ProtoPAS, ProtoSAS}
	curves, err := sweepCurves(o, protos, xs,
		func(v, xi int) RunConfig {
			rc := maxSleepConfig(protos[v], 20)
			rc.Loss = radio.LossyDisk{Range: rc.Range, LossProb: xs[xi]}
			return rc
		}, delayOf)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "ext-lossy",
		Title:  "Detection delay vs packet loss probability",
		XLabel: "loss probability",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes: []string{
			"losses starve the predictor of neighbour reports; sensing itself is unaffected",
		},
	}, nil
}

// ExtLossyCSMA sweeps packet loss probability with destructive collisions
// and carrier sensing enabled — the harshest channel the simulator models.
// Every mechanism that consumes channel randomness or defers transmissions
// (per-link loss draws, collision windows, CSMA backoff) runs against the
// frozen CSR candidate rows here, which is why this experiment is also
// pinned as a golden trace.
func ExtLossyCSMA(o Options) (Result, error) {
	xs := o.sweep([]float64{0, 0.1, 0.2, 0.3}, []float64{0, 0.3})
	csma := radio.DefaultCSMA()
	protos := []string{ProtoPAS, ProtoSAS}
	curves, err := sweepCurves(o, protos, xs,
		func(v, xi int) RunConfig {
			rc := maxSleepConfig(protos[v], 20)
			rc.Loss = radio.LossyDisk{Range: rc.Range, LossProb: xs[xi]}
			rc.Collisions = true
			rc.CSMA = &csma
			return rc
		}, delayOf)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "ext-lossy-csma",
		Title:  "Detection delay vs packet loss under collisions + CSMA",
		XLabel: "loss probability",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes: []string{
			"random loss compounds with collision corruption; CSMA recovers the burst losses but not the per-link drops",
		},
	}, nil
}

// ExtDegenerate compares PAS with a near-zero alert time against SAS,
// checking the paper's §3.4 degeneracy claim.
func ExtDegenerate(o Options) (Result, error) {
	xs := o.sweep([]float64{10, 20, 30}, []float64{10, 30})
	variants := []struct {
		name string
		rc   func(maxSleep float64) RunConfig
	}{
		{"PAS (T→0)", func(ms float64) RunConfig {
			rc := maxSleepConfig(ProtoPAS, ms)
			rc.PAS.AlertThreshold = 0.5
			return rc
		}},
		{"SAS", func(ms float64) RunConfig { return maxSleepConfig(ProtoSAS, ms) }},
		{"PAS (default)", func(ms float64) RunConfig { return maxSleepConfig(ProtoPAS, ms) }},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	curves, err := sweepCurves(o, names, xs,
		func(v, xi int) RunConfig { return variants[v].rc(xs[xi]) }, delayOf)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "ext-degenerate",
		Title:  "PAS with a tiny alert time behaves like SAS (§3.4)",
		XLabel: "maxSleep (s)",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes: []string{
			"shrinking the alert time collapses the alert area, removing PAS's advantage over SAS",
		},
	}, nil
}

// ExtEstimator ablates the estimator: min vs mean aggregation and
// with/without expected-velocity propagation.
func ExtEstimator(o Options) (Result, error) {
	xs := o.sweep([]float64{10, 20, 30}, []float64{10, 30})
	variants := []struct {
		name   string
		mutate func(*RunConfig)
	}{
		{"min (paper)", func(*RunConfig) {}},
		{"mean", func(rc *RunConfig) { rc.PAS.UseMeanETA = true }},
		{"actual-only", func(rc *RunConfig) { rc.PAS.DisableExpectedVelocity = true }},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	curves, err := sweepCurves(o, names, xs,
		func(v, xi int) RunConfig {
			rc := maxSleepConfig(ProtoPAS, xs[xi])
			variants[v].mutate(&rc)
			return rc
		}, delayOf)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "ext-estimator",
		Title:  "Estimator ablation: arrival aggregation and velocity propagation",
		XLabel: "maxSleep (s)",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes: []string{
			"the paper's min aggregation is the conservative choice: a single credible threat suffices to alert",
		},
	}, nil
}

// ExtPlume runs the protocols against the PDE plume stimulus.
func ExtPlume(o Options) (Result, error) {
	sc, err := diffusion.PlumeScenario()
	if err != nil {
		return Result{}, err
	}
	xs := o.sweep([]float64{5, 15, 30}, []float64{5, 30})
	protos := []string{ProtoNS, ProtoPAS, ProtoSAS}
	curves, err := sweepCurves(o, protos, xs,
		func(v, xi int) RunConfig {
			rc := maxSleepConfig(protos[v], xs[xi])
			rc.Scenario = sc
			return rc
		}, delayOf)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "ext-plume",
		Title:  "Detection delay on the advection–diffusion plume",
		XLabel: "maxSleep (s)",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes: []string{
			"the plume front is irregular and numerically derived; the analytic-front ranking should persist",
		},
	}, nil
}

// ExtLifetime measures surveillance lifetime: every node gets a small
// battery and monitors a field in which nothing happens — the regime whose
// energy draw, per the paper's introduction, "dominat[es] the working period
// of WSN surveillance systems". The curve is the time of the first battery
// death per protocol.
func ExtLifetime(o Options) (Result, error) {
	const batteryJ = 0.8 // scaled so every protocol dies within the horizon
	sc := diffusion.QuietScenario()
	xs := o.sweep([]float64{5, 10, 20, 30}, []float64{5, 30})
	protos := []string{ProtoNS, ProtoPAS, ProtoSAS}
	curves, err := sweepCurves(o, protos, xs,
		func(v, xi int) RunConfig {
			rc := maxSleepConfig(protos[v], xs[xi])
			rc.Scenario = sc
			rc.BatteryJ = batteryJ
			return rc
		},
		func(a metrics.Aggregate) (float64, float64) {
			return a.FirstDeath.Mean(), a.FirstDeath.CI95()
		})
	if err != nil {
		return Result{}, err
	}
	var notes []string
	for _, c := range curves {
		if c.Name == ProtoNS {
			continue
		}
		last := c.Points[len(c.Points)-1]
		notes = append(notes, fmt.Sprintf(
			"%s extends first-death lifetime %.1f× over always-on at maxSleep %.0f",
			c.Name, last.Y/(batteryJ/0.041), last.X))
	}
	notes = append(notes,
		"quiet field: no stimulus within the horizon; the draw is pure surveillance overhead",
		"lifetimes are right-censored at the horizon when no node dies in a run")
	return Result{
		ID:     "ext-lifetime",
		Title:  "Surveillance lifetime: first battery death vs maximum sleep interval",
		XLabel: "maxSleep (s)",
		YLabel: "first death (s)",
		Curves: curves,
		Notes:  notes,
	}, nil
}

// ExtCollisions compares the paper's collision-free channel against
// destructive collisions (overlapping transmissions at a receiver destroy
// each other).
func ExtCollisions(o Options) (Result, error) {
	xs := o.sweep([]float64{10, 20, 30}, []float64{10, 30})
	csma := radio.DefaultCSMA()
	variants := []struct {
		name       string
		collisions bool
		csma       *radio.CSMAConfig
	}{
		{"pas (no collisions)", false, nil},
		{"pas (collisions)", true, nil},
		{"pas (collisions+CSMA)", true, &csma},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	curves, err := sweepCurves(o, names, xs,
		func(v, xi int) RunConfig {
			rc := maxSleepConfig(ProtoPAS, xs[xi])
			rc.Collisions = variants[v].collisions
			rc.CSMA = variants[v].csma
			return rc
		}, delayOf)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "ext-collisions",
		Title:  "Destructive collisions vs the paper's ideal channel",
		XLabel: "maxSleep (s)",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes: []string{
			"REQUEST bursts trigger near-simultaneous RESPONSEs; the per-node response stagger is what keeps collision losses modest",
			"carrier sensing with random backoff (CSMA) serializes the bursts and recovers most of the loss",
		},
	}, nil
}

// ExtContour measures monitoring efficacy — the sink's covered-area
// estimation error over time — under each protocol. The paper's abstract
// claims PAS "largely reduces the energy cost without decreasing system
// performance"; this experiment quantifies "system performance" as the
// quality of the diffused-area estimate the network exists to produce (§1).
func ExtContour(o Options) (Result, error) {
	sc := diffusion.PaperScenario()
	// Sample the estimate while the front is crossing (full coverage ≈ 99 s).
	times := o.sweep([]float64{40, 55, 70, 85}, []float64{40, 85})
	const mcSamples = 4000
	protos := []string{ProtoNS, ProtoPAS, ProtoSAS}
	seeds := o.seeds()
	// One job per (protocol, seed): run the network with a contour estimator
	// attached, then Monte-Carlo-score the hull at every sample time.
	errFracs, err := runner.Map(o.parallelism(), len(protos)*len(seeds),
		func(i int) ([]float64, error) {
			rc := maxSleepConfig(protos[i/len(seeds)], 20)
			rc.Scenario = sc
			rc.Seed = seeds[i%len(seeds)]
			nw, rcd, err := Build(rc)
			if err != nil {
				return nil, err
			}
			var est contour.Estimator
			est.Attach(nw.Nodes)
			nw.Run(rcd.Scenario.Horizon)
			st := rng.NewSource(rc.Seed).Stream("contour-mc")
			out := make([]float64, len(times))
			for ti, rep := range contour.Timeline(&est, sc.Stimulus, sc.Field, times, mcSamples, st) {
				out[ti] = rep.ErrFrac
			}
			return out, nil
		})
	if err != nil {
		return Result{}, err
	}
	var curves []Curve
	for pi, proto := range protos {
		accs := make([]stats.Accumulator, len(times))
		for si := range seeds {
			for ti := range times {
				accs[ti].Add(errFracs[pi*len(seeds)+si][ti])
			}
		}
		pts := make([]Point, len(times))
		for ti, tt := range times {
			pts[ti] = Point{X: tt, Y: accs[ti].Mean(), CI: accs[ti].CI95()}
		}
		curves = append(curves, Curve{Name: proto, Points: pts})
	}
	return Result{
		ID:     "ext-contour",
		Title:  "Covered-area estimation error over time (monitoring efficacy)",
		XLabel: "time (s)",
		YLabel: "area error fraction",
		Curves: curves,
		Notes: []string{
			"error = symmetric-difference area between the detection hull and the true covered region, over the true area",
			"NS is the deployment-limited optimum; PAS/SAS add only their detection delays",
		},
	}, nil
}

// ExtTerrain runs the protocols against the heterogeneous-terrain front
// (eikonal ground truth): the front slows in a band and bends around it,
// stressing the constant-velocity extrapolation of both estimators.
func ExtTerrain(o Options) (Result, error) {
	sc, err := diffusion.TerrainScenario()
	if err != nil {
		return Result{}, err
	}
	xs := o.sweep([]float64{5, 15, 30}, []float64{5, 30})
	protos := []string{ProtoNS, ProtoPAS, ProtoSAS}
	curves, err := sweepCurves(o, protos, xs,
		func(v, xi int) RunConfig {
			rc := maxSleepConfig(protos[v], xs[xi])
			rc.Scenario = sc
			return rc
		}, delayOf)
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:     "ext-terrain",
		Title:  "Detection delay on the heterogeneous-terrain (eikonal) front",
		XLabel: "maxSleep (s)",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes: []string{
			"the slow band and detours produce locally varying front speeds; velocity estimates lag behind reality at the band edges",
		},
	}, nil
}

// ExtDensity sweeps the deployment size at the paper's field and range.
func ExtDensity(o Options) (Result, error) {
	xs := o.sweep([]float64{25, 30, 45, 60}, []float64{30, 60})
	cells := make([]RunConfig, len(xs))
	for i, x := range xs {
		rc := maxSleepConfig(ProtoPAS, 20)
		rc.Nodes = int(x)
		cells[i] = rc
	}
	aggs, err := runCells(o, cells)
	if err != nil {
		return Result{}, err
	}
	var delayPts, energyPts []Point
	for i, x := range xs {
		dy, dci := delayOf(aggs[i])
		ey, eci := energyOf(aggs[i])
		delayPts = append(delayPts, Point{X: x, Y: dy, CI: dci})
		energyPts = append(energyPts, Point{X: x, Y: ey, CI: eci})
	}
	return Result{
		ID:     "ext-density",
		Title:  "PAS vs deployment density",
		XLabel: "nodes",
		YLabel: "avg delay (s)",
		Curves: []Curve{
			{Name: "PAS delay", Points: delayPts},
			{Name: "PAS energy (J)", Points: energyPts},
		},
		Notes: []string{
			"denser fields give the estimator more covered neighbours per probe",
		},
	}, nil
}

// Render is a convenience that runs an experiment by ID and renders it.
func Render(id string, o Options) (string, error) {
	exp, ok := Lookup(id)
	if !ok {
		return "", fmt.Errorf("experiment: unknown id %q", id)
	}
	res, err := exp.Run(o)
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}
