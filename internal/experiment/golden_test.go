package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the committed golden-trace snapshots:
//
//	go test ./internal/experiment -run TestGoldenTraces -update
//
// Regenerate ONLY when an intentional behaviour change moves the numbers;
// review the diff — these files are the repo's determinism contract.
var update = flag.Bool("update", false, "rewrite the golden trace snapshots under testdata/golden")

// goldenExperiments are the snapshot-pinned experiments: a paper figure,
// two structurally different extensions (ext-plume shares one PDE scenario
// across workers; ext-lifetime aggregates a censored lifetime metric), the
// lossy+collisions+CSMA channel so every consumer of channel randomness
// — per-link loss draws, collision windows, CSMA backoffs — is trace-pinned
// against the frozen CSR candidate rows, and the fault-injection sweep so
// every fault stream (churn, sensor miscalibration, degradation windows,
// liveness probing) is pinned serial-vs-parallel too, and the predictor
// portfolio so every filter arm's numerics are trace-pinned.
var goldenExperiments = []string{"fig4", "ext-plume", "ext-lifetime", "ext-lossy-csma", "ext-faults", "ext-predictors"}

// goldenOptions is the fixed configuration every snapshot is generated and
// checked with (Quick sweep, 3 seeds); parallelism is set per run.
func goldenOptions(parallelism int) Options {
	return Options{Quick: true, Seeds: DefaultSeeds(3), Parallelism: parallelism}
}

// goldenBlob renders an experiment result in the canonical snapshot form:
// the fixed-width table followed by the long-form CSV, so both presentation
// paths are pinned.
func goldenBlob(r Result) string {
	return r.Render() + "\n" + r.CSV()
}

// TestGoldenTraces diffs fresh serial and 8-way-parallel runs of each
// snapshot experiment against the committed canonical output, so any
// determinism break — a reordered event, a changed RNG draw, a worker-pool
// merge bug, a float-formatting drift — fails loudly with the full diff.
func TestGoldenTraces(t *testing.T) {
	for _, id := range goldenExperiments {
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, ok := Lookup(id)
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			path := filepath.Join("testdata", "golden", id+".golden")

			serialRes, err := exp.Run(goldenOptions(1))
			if err != nil {
				t.Fatal(err)
			}
			serial := goldenBlob(serialRes)

			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(serial))
			}

			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
			}
			if serial != string(want) {
				t.Errorf("serial output diverged from %s:\n%s", path, diffStrings(string(want), serial))
			}

			parallelRes, err := exp.Run(goldenOptions(8))
			if err != nil {
				t.Fatal(err)
			}
			if parallel := goldenBlob(parallelRes); parallel != string(want) {
				t.Errorf("8-way parallel output diverged from %s:\n%s", path, diffStrings(string(want), parallel))
			}
		})
	}
}

// diffStrings renders a small line diff for snapshot mismatches.
func diffStrings(want, got string) string {
	wl := splitLines(want)
	gl := splitLines(got)
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	out := ""
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			out += fmt.Sprintf("line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
		}
	}
	if out == "" {
		out = "(contents differ only in length)"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
