package experiment

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// TestFromScenarioCompilesExtendedFaults pins the split between the legacy
// crash path and the compiled fault plan: a plain Fraction/By spec keeps the
// byte-identical FailFraction code path (Faults nil), while any extended
// section compiles to a Plan and routes liveness config into the protocols.
func TestFromScenarioCompilesExtendedFaults(t *testing.T) {
	harsh, ok := scenario.Lookup("harsh")
	if !ok {
		t.Fatal("registry lost the harsh scenario")
	}
	rc, err := FromScenario(harsh, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Faults != nil {
		t.Error("legacy fraction-only spec compiled an extended fault plan")
	}
	if rc.FailFraction != 0.1 {
		t.Errorf("legacy fraction lost: %g", rc.FailFraction)
	}

	churn, ok := scenario.Lookup("churn")
	if !ok {
		t.Fatal("registry lost the churn scenario")
	}
	rc, err = FromScenario(churn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Faults == nil {
		t.Fatal("churn spec did not compile a fault plan")
	}
	if rc.FailFraction != 0 {
		t.Errorf("extended spec leaked into the legacy fraction path: %g", rc.FailFraction)
	}
	if !rc.PAS.Liveness.Enabled() || !rc.SAS.Liveness.Enabled() {
		t.Error("liveness spec not routed into the protocol configs")
	}
	if rc.PAS.Liveness.BackoffInit != churn.Protocol.Liveness.Interval {
		t.Errorf("liveness defaults not materialized: %+v", rc.PAS.Liveness)
	}
}

// TestChurnRunReportsDegradation runs the churn registry scenario end to end
// and checks the graceful-degradation measures are populated and, crucially,
// deterministic: two runs at one seed must agree report-for-report.
func TestChurnRunReportsDegradation(t *testing.T) {
	sp, _ := scenario.Lookup("churn")
	rc, err := FromScenario(sp, 7)
	if err != nil {
		t.Fatal(err)
	}
	rc.Protocol = ProtoPAS
	a, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	if a.LiveFraction <= 0 || a.LiveFraction >= 1 {
		t.Errorf("LiveFraction = %g, want strictly inside (0, 1) under 20%% churn", a.LiveFraction)
	}
	if a.Probes == 0 {
		t.Error("liveness tracker issued no probes over a 140 s horizon")
	}
	b, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("churn run is not deterministic at a fixed seed")
	}
}

// TestDriftRunStaysFullyLive pins that sensor miscalibration alone degrades
// detection, not liveness: every node stays up, so LiveFraction is exactly 1
// and nothing is declared dead.
func TestDriftRunStaysFullyLive(t *testing.T) {
	sp, _ := scenario.Lookup("drift")
	rc, err := FromScenario(sp, 7)
	if err != nil {
		t.Fatal(err)
	}
	rc.Protocol = ProtoPAS
	rep, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveFraction != 1 {
		t.Errorf("LiveFraction = %g, want 1 (miscalibration keeps nodes up)", rep.LiveFraction)
	}
	if rep.DeclaredDead != 0 || rep.FalseDead != 0 {
		t.Errorf("drift run declared deaths: %d (%d false)", rep.DeclaredDead, rep.FalseDead)
	}
}

// TestChurnRunsShareFrozenTopology pins that crash-recovery churn reuses the
// cached deployment and compiled CSR topology: rejoin is a radio-state
// change, never a recompile. Three protocols over the churn scenario at one
// seed must compile the topology at most once.
func TestChurnRunsShareFrozenTopology(t *testing.T) {
	sp, _ := scenario.Lookup("churn")
	h0, m0 := depCacheStats()
	th0, tm0 := topoCacheStats()
	for _, proto := range []string{ProtoPAS, ProtoSAS, ProtoNS} {
		rc, err := FromScenario(sp, 4242)
		if err != nil {
			t.Fatal(err)
		}
		rc.Protocol = proto
		if _, err := RunOnce(rc); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := depCacheStats()
	th1, tm1 := topoCacheStats()
	if gotMisses := m1 - m0; gotMisses > 1 {
		t.Errorf("3 churn runs at one seed caused %d deployment misses, want ≤ 1", gotMisses)
	}
	if gotHits := h1 - h0; gotHits < 2 {
		t.Errorf("3 churn runs at one seed caused %d deployment hits, want ≥ 2", gotHits)
	}
	if gotMisses := tm1 - tm0; gotMisses > 1 {
		t.Errorf("3 churn runs at one seed compiled the topology %d times, want ≤ 1", gotMisses)
	}
	if gotHits := th1 - th0; gotHits < 2 {
		t.Errorf("3 churn runs at one seed caused %d topology hits, want ≥ 2", gotHits)
	}
}
