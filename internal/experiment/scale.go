package experiment

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// FromScenario compiles a declarative scenario spec into a run config: the
// stimulus is built (stochastic stimuli draw from the seed), the deployment
// spec and channel model are installed, and the spec's protocol overrides are
// applied on top of the defaults. The caller may still override Protocol and
// tunables afterwards — experiments do, to sweep them.
func FromScenario(sp scenario.Scenario, seed int64) (RunConfig, error) {
	if err := sp.Validate(); err != nil {
		return RunConfig{}, err
	}
	ds, err := sp.BuildStimulus(seed)
	if err != nil {
		return RunConfig{}, err
	}
	loss, err := sp.Radio.Model()
	if err != nil {
		return RunConfig{}, err
	}
	rc := RunConfig{
		Scenario:   ds,
		Nodes:      sp.Nodes,
		Range:      sp.Radio.Range,
		Deploy:     sp.Deployment,
		Protocol:   sp.Protocol.Name,
		Seed:       seed,
		Loss:       loss,
		Collisions: sp.Radio.Collisions,
	}
	if fault.Extended(sp.Failures) {
		// Extended fault models compile into a plan; the legacy FailFraction
		// fields stay zero so Build's old kill loop is skipped and the plan's
		// crash sub-model (byte-compatible for pure uniform kills) takes over.
		rc.Faults = fault.Compile(sp.Failures, sp.Horizon)
	} else {
		rc.FailFraction = sp.Failures.Fraction
		rc.FailBy = sp.Failures.By
	}
	if sp.Radio.CSMA {
		csma := radio.DefaultCSMA()
		rc.CSMA = &csma
	}
	rc = rc.Defaults()
	if p := sp.Protocol; p.MaxSleep > 0 || p.SleepIncrement > 0 {
		if p.MaxSleep > 0 {
			rc.PAS.SleepMax = p.MaxSleep
			rc.SAS.SleepMax = p.MaxSleep
		}
		inc := p.SleepIncrement
		if inc <= 0 {
			inc = p.MaxSleep / 5 // the conventional ramp for the spec's cap
		}
		rc.PAS.SleepIncrement = inc
		rc.SAS.SleepIncrement = inc
	}
	if t := sp.Protocol.AlertThreshold; t > 0 {
		rc.PAS.AlertThreshold = t
		rc.SAS.AlertThreshold = t
	}
	if lv := sp.Protocol.Liveness; lv != nil {
		lc := fault.LivenessConfig{
			MissK:       lv.MissK,
			Interval:    lv.Interval,
			BackoffInit: lv.BackoffInit,
			BackoffMax:  lv.BackoffMax,
			MaxProbes:   lv.MaxProbes,
		}.WithDefaults()
		rc.PAS.Liveness = lc
		rc.SAS.Liveness = lc
	}
	if pr := sp.Protocol.Predictor; pr != nil {
		rc.PAS.Predictor = pr.Spec()
	}
	return rc, nil
}

// scaleSleep applies the standard extension-experiment sleep schedule (cap
// 20 s) for the given protocol slot.
func scaleSleep(rc *RunConfig) {
	rc.PAS.SleepMax, rc.PAS.SleepIncrement = 20, 4
	rc.SAS.SleepMax, rc.SAS.SleepIncrement = 20, 4
}

// ExtScale sweeps the deployment size across three orders of magnitude
// (100 / 1 000 / 10 000 nodes) on the scale-* grid scenarios and reports
// detection delay, per-node energy and wall-clock per protocol. The 10 000-
// node points are the regime the O(n²) deployment/measurement hot spots used
// to make infeasible; a full run is expected to complete in seconds.
func ExtScale(o Options) (Result, error) {
	// Scale runs are heavy; default to light replication instead of the
	// harness-wide 8 seeds.
	if len(o.Seeds) == 0 {
		if o.Quick {
			o.Seeds = DefaultSeeds(2)
		} else {
			o.Seeds = DefaultSeeds(3)
		}
	}
	sizes := []int{100, 1000, 10000}
	if o.Quick {
		sizes = []int{100, 1000}
	}
	protos := []string{ProtoNS, ProtoPAS, ProtoSAS}
	seeds := o.seeds()

	type runOut struct {
		rep  metrics.RunReport
		secs float64
	}
	perCell := len(seeds)
	outs, err := runner.Map(o.parallelism(), len(protos)*len(sizes)*perCell,
		func(i int) (runOut, error) {
			proto := protos[i/(len(sizes)*perCell)]
			size := sizes[(i/perCell)%len(sizes)]
			rc, err := FromScenario(scenario.Scale(size), seeds[i%perCell])
			if err != nil {
				return runOut{}, err
			}
			rc.Protocol = proto
			scaleSleep(&rc)
			start := time.Now()
			rep, err := RunOnce(rc)
			if err != nil {
				return runOut{}, err
			}
			return runOut{rep: rep, secs: time.Since(start).Seconds()}, nil
		})
	if err != nil {
		return Result{}, err
	}

	var delayCurves, energyCurves []Curve
	var notes []string
	for pi, proto := range protos {
		delayPts := make([]Point, len(sizes))
		energyPts := make([]Point, len(sizes))
		for si, size := range sizes {
			var agg metrics.Aggregate
			var secs float64
			for ki := range seeds {
				out := outs[(pi*len(sizes)+si)*perCell+ki]
				agg.Add(out.rep)
				secs += out.secs
			}
			delayPts[si] = Point{X: float64(size), Y: agg.Delay.Mean(), CI: agg.Delay.CI95()}
			energyPts[si] = Point{X: float64(size), Y: agg.Energy.Mean(), CI: agg.Energy.CI95()}
			if si == len(sizes)-1 {
				notes = append(notes, fmt.Sprintf("%s: %d nodes in %.2f s/run wall-clock (avg over %d seeds)",
					proto, size, secs/float64(len(seeds)), len(seeds)))
			}
		}
		delayCurves = append(delayCurves, Curve{Name: proto, Points: delayPts})
		energyCurves = append(energyCurves, Curve{Name: proto + " energy (J)", Points: energyPts})
	}
	notes = append(notes,
		"scale-* scenarios: jittered-grid deployments at the paper's density; the front speed scales with the field so every size shares the 140 s horizon",
		"wall-clock notes vary run to run and between machines; delay/energy values are deterministic")
	return Result{
		ID:     "ext-scale",
		Title:  "Production scale: delay and energy vs deployment size",
		XLabel: "nodes",
		YLabel: "avg delay (s)",
		Curves: append(delayCurves, energyCurves...),
		Notes:  notes,
	}, nil
}

// ScenarioSweep builds an on-the-fly experiment that runs the standard
// maximum-sleep sweep (NS/PAS/SAS, delay and energy) over a named registry
// scenario — the generic workload runner behind `pasbench -scenario`.
// Stochastic stimuli (and the deployment of every replication) still vary by
// seed; only the stimulus of seed-drawn kinds is pinned to the first
// replication seed so expensive stimuli (PDE plume, fast marching) build once
// per sweep, exactly like the dedicated extension experiments.
func ScenarioSweep(name string) (Experiment, error) {
	return ScenarioSweepPredictor(name, "")
}

// ScenarioSweepPredictor is ScenarioSweep with the PAS arrival predictor
// pinned to the named kind (see internal/predict; "" keeps the scenario's own
// predictor section, or the paper default) — the workload runner behind
// `pasbench -scenario -predictor`.
func ScenarioSweepPredictor(name, predictor string) (Experiment, error) {
	sp, ok := scenario.Lookup(name)
	if !ok {
		return Experiment{}, fmt.Errorf("experiment: unknown scenario %q (one of %v)", name, scenario.Names())
	}
	if predictor != "" {
		if _, ok := predict.Describe(predictor); !ok {
			return Experiment{}, fmt.Errorf("experiment: unknown predictor %q (one of %v)", predictor, predict.Kinds())
		}
	}
	id := "scenario-" + name
	title := "Scenario sweep: " + name
	if predictor != "" {
		id += "-" + predictor
		title += " (predictor " + predictor + ")"
	}
	if sp.Description != "" {
		title += " — " + sp.Description
	}
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(o Options) (Result, error) {
			seeds := o.seeds()
			base, err := FromScenario(sp, seeds[0])
			if err != nil {
				return Result{}, err
			}
			if predictor != "" {
				base.PAS.Predictor = predict.Spec{Kind: predictor}
			}
			xs := o.sweep([]float64{5, 15, 30}, []float64{5, 30})
			protos := []string{ProtoNS, ProtoPAS, ProtoSAS}
			cells := make([]RunConfig, 0, len(protos)*len(xs))
			for _, proto := range protos {
				for _, x := range xs {
					rc := base
					rc.Protocol = proto
					rc.PAS.SleepMax, rc.PAS.SleepIncrement = x, x/5
					rc.SAS.SleepMax, rc.SAS.SleepIncrement = x, x/5
					cells = append(cells, rc)
				}
			}
			aggs, err := runCells(o, cells)
			if err != nil {
				return Result{}, err
			}
			var curves []Curve
			for pi, proto := range protos {
				delayPts := make([]Point, len(xs))
				energyPts := make([]Point, len(xs))
				for xi, x := range xs {
					agg := aggs[pi*len(xs)+xi]
					delayPts[xi] = Point{X: x, Y: agg.Delay.Mean(), CI: agg.Delay.CI95()}
					energyPts[xi] = Point{X: x, Y: agg.Energy.Mean(), CI: agg.Energy.CI95()}
				}
				curves = append(curves,
					Curve{Name: proto, Points: delayPts},
					Curve{Name: proto + " energy (J)", Points: energyPts})
			}
			return Result{
				ID:     id,
				Title:  title,
				XLabel: "maxSleep (s)",
				YLabel: "avg delay (s)",
				Curves: curves,
				Notes: []string{
					"generic registry sweep: curves without a unit suffix are delays in seconds",
				},
			}, nil
		},
	}, nil
}
