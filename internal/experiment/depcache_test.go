package experiment

import (
	"sync"
	"testing"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/scenario"
)

func TestDeploymentCacheSharesIdenticalDraws(t *testing.T) {
	field := geom.R(0, 0, 30, 30)
	a := cachedDeployment(12345, field, 30, 10, scenario.DeploymentSpec{}, 2000)
	b := cachedDeployment(12345, field, 30, 10, scenario.DeploymentSpec{}, 2000)
	if a != b {
		t.Error("identical keys returned distinct deployments")
	}
	// The cached result must be byte-identical to a direct draw.
	direct := deploy.ConnectedUniform(rng.NewSource(12345).Stream("deploy"), field, 30, 10, 2000)
	if len(direct.Positions) != len(a.Positions) {
		t.Fatalf("cached %d positions, direct %d", len(a.Positions), len(direct.Positions))
	}
	for i := range direct.Positions {
		if direct.Positions[i] != a.Positions[i] {
			t.Fatalf("position %d: cached %v, direct %v", i, a.Positions[i], direct.Positions[i])
		}
	}
}

func TestDeploymentCacheKeysAreDistinct(t *testing.T) {
	field := geom.R(0, 0, 30, 30)
	base := cachedDeployment(777, field, 30, 10, scenario.DeploymentSpec{}, 2000)
	if other := cachedDeployment(778, field, 30, 10, scenario.DeploymentSpec{}, 2000); other == base {
		t.Error("different seeds shared a deployment")
	}
	if other := cachedDeployment(777, field, 25, 10, scenario.DeploymentSpec{}, 2000); other == base {
		t.Error("different node counts shared a deployment")
	}
	if other := cachedDeployment(777, field, 30, 12, scenario.DeploymentSpec{}, 2000); other == base {
		t.Error("different radii shared a deployment")
	}
}

func TestDeploymentCacheConcurrentAccess(t *testing.T) {
	field := geom.R(0, 0, 30, 30)
	const workers = 8
	results := make([]*deploy.Deployment, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = cachedDeployment(424242, field, 30, 10, scenario.DeploymentSpec{}, 2000)
		}(w)
	}
	wg.Wait()
	for w, d := range results {
		if d == nil || len(d.Positions) != 30 {
			t.Fatalf("worker %d got bad deployment %v", w, d)
		}
		// Racing workers may each compute the draw, but every result must be
		// identical position-for-position.
		for i := range d.Positions {
			if d.Positions[i] != results[0].Positions[i] {
				t.Fatalf("worker %d diverged at position %d", w, i)
			}
		}
	}
}

func TestDeploymentCacheHitsAcrossProtocols(t *testing.T) {
	// Two protocols at the same (seed, field, nodes, range) — the shape of
	// every sweep — must share one deployment draw, and one compiled
	// topology alongside it.
	h0, m0 := depCacheStats()
	th0, tm0 := topoCacheStats()
	for _, proto := range []string{ProtoPAS, ProtoSAS, ProtoNS} {
		rc := RunConfig{Protocol: proto, Seed: 31337}
		if _, err := RunOnce(rc); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := depCacheStats()
	th1, tm1 := topoCacheStats()
	if gotMisses := m1 - m0; gotMisses > 1 {
		t.Errorf("3 protocols at one seed caused %d cache misses, want ≤ 1", gotMisses)
	}
	if gotHits := h1 - h0; gotHits < 2 {
		t.Errorf("3 protocols at one seed caused %d cache hits, want ≥ 2", gotHits)
	}
	if gotMisses := tm1 - tm0; gotMisses > 1 {
		t.Errorf("3 protocols at one seed compiled the topology %d times, want ≤ 1", gotMisses)
	}
	if gotHits := th1 - th0; gotHits < 2 {
		t.Errorf("3 protocols at one seed caused %d topology cache hits, want ≥ 2", gotHits)
	}
}

func TestTopologyCacheSharesPerRange(t *testing.T) {
	field := geom.R(0, 0, 30, 30)
	dep := cachedDeployment(9001, field, 30, 10, scenario.DeploymentSpec{}, 2000)
	a := cachedTopology(dep, 10)
	if b := cachedTopology(dep, 10); b != a {
		t.Error("identical (deployment, range) returned distinct topologies")
	}
	if c := cachedTopology(dep, 12); c == a {
		t.Error("different ranges shared a topology")
	}
	if a.NodeCount() != dep.N() {
		t.Errorf("topology over %d nodes, deployment has %d", a.NodeCount(), dep.N())
	}
	// The memoized topology must equal a direct compile row-for-row.
	direct := radio.CompileTopology(dep.Field, dep.Positions, 10)
	if direct.Edges() != a.Edges() {
		t.Fatalf("cached topology has %d edges, direct compile %d", a.Edges(), direct.Edges())
	}
	for i := 0; i < dep.N(); i++ {
		gotRow, gotDist := a.Row(i)
		wantRow, wantDist := direct.Row(i)
		if len(gotRow) != len(wantRow) {
			t.Fatalf("row %d: cached %v, direct %v", i, gotRow, wantRow)
		}
		for k := range gotRow {
			if gotRow[k] != wantRow[k] || gotDist[k] != wantDist[k] {
				t.Fatalf("row %d edge %d: cached (%d, %v), direct (%d, %v)",
					i, k, gotRow[k], gotDist[k], wantRow[k], wantDist[k])
			}
		}
	}
}
