package experiment

import (
	"sync"
	"testing"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/scenario"
)

func TestDeploymentCacheSharesIdenticalDraws(t *testing.T) {
	field := geom.R(0, 0, 30, 30)
	a := cachedDeployment(12345, field, 30, 10, scenario.DeploymentSpec{}, 2000)
	b := cachedDeployment(12345, field, 30, 10, scenario.DeploymentSpec{}, 2000)
	if a != b {
		t.Error("identical keys returned distinct deployments")
	}
	// The cached result must be byte-identical to a direct draw.
	direct := deploy.ConnectedUniform(rng.NewSource(12345).Stream("deploy"), field, 30, 10, 2000)
	if len(direct.Positions) != len(a.Positions) {
		t.Fatalf("cached %d positions, direct %d", len(a.Positions), len(direct.Positions))
	}
	for i := range direct.Positions {
		if direct.Positions[i] != a.Positions[i] {
			t.Fatalf("position %d: cached %v, direct %v", i, a.Positions[i], direct.Positions[i])
		}
	}
}

func TestDeploymentCacheKeysAreDistinct(t *testing.T) {
	field := geom.R(0, 0, 30, 30)
	base := cachedDeployment(777, field, 30, 10, scenario.DeploymentSpec{}, 2000)
	if other := cachedDeployment(778, field, 30, 10, scenario.DeploymentSpec{}, 2000); other == base {
		t.Error("different seeds shared a deployment")
	}
	if other := cachedDeployment(777, field, 25, 10, scenario.DeploymentSpec{}, 2000); other == base {
		t.Error("different node counts shared a deployment")
	}
	if other := cachedDeployment(777, field, 30, 12, scenario.DeploymentSpec{}, 2000); other == base {
		t.Error("different radii shared a deployment")
	}
}

func TestDeploymentCacheConcurrentAccess(t *testing.T) {
	field := geom.R(0, 0, 30, 30)
	const workers = 8
	results := make([]*deploy.Deployment, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = cachedDeployment(424242, field, 30, 10, scenario.DeploymentSpec{}, 2000)
		}(w)
	}
	wg.Wait()
	for w, d := range results {
		if d == nil || len(d.Positions) != 30 {
			t.Fatalf("worker %d got bad deployment %v", w, d)
		}
		// Racing workers may each compute the draw, but every result must be
		// identical position-for-position.
		for i := range d.Positions {
			if d.Positions[i] != results[0].Positions[i] {
				t.Fatalf("worker %d diverged at position %d", w, i)
			}
		}
	}
}

func TestDeploymentCacheHitsAcrossProtocols(t *testing.T) {
	// Two protocols at the same (seed, field, nodes, range) — the shape of
	// every sweep — must share one deployment draw.
	h0, m0 := depCacheStats()
	for _, proto := range []string{ProtoPAS, ProtoSAS, ProtoNS} {
		rc := RunConfig{Protocol: proto, Seed: 31337}
		if _, err := RunOnce(rc); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := depCacheStats()
	if gotMisses := m1 - m0; gotMisses > 1 {
		t.Errorf("3 protocols at one seed caused %d cache misses, want ≤ 1", gotMisses)
	}
	if gotHits := h1 - h0; gotHits < 2 {
		t.Errorf("3 protocols at one seed caused %d cache hits, want ≥ 2", gotHits)
	}
}
