package experiment

import (
	"fmt"

	"repro/internal/diffusion"
	"repro/internal/predict"
)

// extPredictorVariant is one column of the ext-predictors sweep: a protocol
// and, for PAS cells, the arrival-predictor kind it runs.
type extPredictorVariant struct {
	label     string
	protocol  string
	predictor string // PAS only; "" elsewhere
}

// extPredictorVariants enumerates the portfolio: the two baselines bracket
// six PAS columns, one per registered predictor kind, in registry order.
func extPredictorVariants() []extPredictorVariant {
	vs := []extPredictorVariant{
		{label: ProtoNS, protocol: ProtoNS},
		{label: ProtoSAS, protocol: ProtoSAS},
	}
	for _, k := range predict.Kinds() {
		vs = append(vs, extPredictorVariant{
			label:     ProtoPAS + "/" + k,
			protocol:  ProtoPAS,
			predictor: k,
		})
	}
	return vs
}

// ExtPredictors sweeps the arrival-predictor portfolio: every registered
// predict kind inside PAS, bracketed by the NS and SAS baselines, on two
// stimulus shapes — the paper's analytic radial front and the numerically
// derived advection–diffusion plume. Each variant reports the accuracy-vs-
// energy frontier: detection delay, per-node energy, and the predictors' own
// quality measures (arrival-prediction RMSE, report suppressions, staleness).
func ExtPredictors(o Options) (Result, error) {
	plume, err := diffusion.PlumeScenario()
	if err != nil {
		return Result{}, err
	}
	stimuli := []struct {
		name string
		cfg  func(rc *RunConfig)
	}{
		{"radial", func(rc *RunConfig) {}}, // maxSleepConfig's paper stimulus
		{"plume", func(rc *RunConfig) { rc.Scenario = plume }},
	}
	variants := extPredictorVariants()

	cells := make([]RunConfig, 0, len(stimuli)*len(variants))
	for _, st := range stimuli {
		for _, v := range variants {
			rc := maxSleepConfig(v.protocol, 20)
			st.cfg(&rc)
			if v.predictor != "" {
				rc.PAS.Predictor = predict.Spec{Kind: v.predictor}
			}
			cells = append(cells, rc)
		}
	}
	aggs, err := runCells(o, cells)
	if err != nil {
		return Result{}, err
	}

	var curves []Curve
	notes := []string{
		"x is the variant index: " + variantLegend(variants),
		"all variants run the 20 s sleep cap; PAS columns differ only in the arrival predictor",
		"rmse is the arrival-prediction error over detecting nodes (0 for NS/SAS, which do not predict)",
		"suppressed counts dual-prediction report suppressions; only the switching kind gates reports, so other columns stay 0",
	}
	for si, st := range stimuli {
		delayPts := make([]Point, len(variants))
		energyPts := make([]Point, len(variants))
		rmsePts := make([]Point, len(variants))
		for vi, v := range variants {
			agg := aggs[si*len(variants)+vi]
			x := float64(vi)
			delayPts[vi] = Point{X: x, Y: agg.Delay.Mean(), CI: agg.Delay.CI95()}
			energyPts[vi] = Point{X: x, Y: agg.Energy.Mean(), CI: agg.Energy.CI95()}
			rmsePts[vi] = Point{X: x, Y: agg.PredRMSE.Mean(), CI: agg.PredRMSE.CI95()}
			if v.predictor == predict.KindSwitching {
				notes = append(notes, fmt.Sprintf(
					"%s %s: %.1f reports suppressed/run, max staleness %.1f s",
					st.name, v.label, agg.Suppressed.Mean(), agg.PredStale.Mean()))
			}
		}
		curves = append(curves,
			Curve{Name: st.name, Points: delayPts},
			Curve{Name: st.name + " energy (J)", Points: energyPts},
			Curve{Name: st.name + " rmse (s)", Points: rmsePts})
	}
	return Result{
		ID:     "ext-predictors",
		Title:  "Arrival-predictor portfolio: accuracy vs energy across stimuli",
		XLabel: "variant",
		YLabel: "avg delay (s)",
		Curves: curves,
		Notes:  notes,
	}, nil
}

// variantLegend renders the index→variant mapping for the notes.
func variantLegend(vs []extPredictorVariant) string {
	s := ""
	for i, v := range vs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d=%s", i, v.label)
	}
	return s
}
