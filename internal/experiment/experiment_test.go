package experiment

import (
	"strings"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/radio"
	"repro/internal/stats"
)

func TestRunOnceDefaults(t *testing.T) {
	rep, err := RunOnce(RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != 30 {
		t.Fatalf("nodes = %d", len(rep.Nodes))
	}
	if rep.Detected == 0 {
		t.Fatal("nothing detected")
	}
	if rep.AvgEnergyJ <= 0 {
		t.Error("no energy accounted")
	}
}

func TestRunOnceUnknownProtocol(t *testing.T) {
	if _, err := RunOnce(RunConfig{Protocol: "bogus", Seed: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunOnceDeterministic(t *testing.T) {
	a, err := RunOnce(RunConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnce(RunConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgDelay != b.AvgDelay || a.AvgEnergyJ != b.AvgEnergyJ || a.Messages != b.Messages {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	c, err := RunOnce(RunConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgDelay == c.AvgDelay && a.Messages == c.Messages {
		t.Error("different seeds produced identical runs")
	}
}

func TestRunOnceProtocols(t *testing.T) {
	for _, proto := range []string{ProtoPAS, ProtoSAS, ProtoNS, ProtoDuty} {
		rep, err := RunOnce(RunConfig{Protocol: proto, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if rep.Detected == 0 {
			t.Errorf("%s: nothing detected", proto)
		}
	}
}

func TestFailureInjection(t *testing.T) {
	rep, err := RunOnce(RunConfig{Seed: 3, FailFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, n := range rep.Nodes {
		if n.Failed {
			failed++
		}
	}
	if failed != 15 {
		t.Errorf("failed = %d, want 15", failed)
	}
}

func TestReplicate(t *testing.T) {
	agg, err := Replicate(RunConfig{}, DefaultSeeds(3))
	if err != nil {
		t.Fatal(err)
	}
	if agg.N() != 3 {
		t.Errorf("N = %d", agg.N())
	}
	if agg.Energy.Mean() <= 0 {
		t.Error("no energy")
	}
}

func TestDefaultSeeds(t *testing.T) {
	s := DefaultSeeds(4)
	if len(s) != 4 || s[0] != 1 || s[3] != 4 {
		t.Errorf("seeds = %v", s)
	}
}

func TestLookupAndAll(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "fig4", "fig5", "fig6", "fig7"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"active power", "15", "38", "35", "250", "41"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

// quickOpts runs experiments at reduced scale for shape tests.
func quickOpts() Options { return Options{Quick: true, Seeds: DefaultSeeds(4)} }

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := res.Curve("NS")
	pas, _ := res.Curve("PAS")
	sasC, _ := res.Curve("SAS")
	if len(pas.Points) == 0 || len(sasC.Points) == 0 {
		t.Fatal("missing curves")
	}
	// NS delay is identically zero.
	for _, p := range ns.Points {
		if p.Y != 0 {
			t.Errorf("NS delay at %v = %v", p.X, p.Y)
		}
	}
	// PAS and SAS delays grow with the sleep cap.
	if pas.Points[len(pas.Points)-1].Y <= pas.Points[0].Y {
		t.Errorf("PAS delay not growing: %v", pas.Ys())
	}
	if sasC.Points[len(sasC.Points)-1].Y <= sasC.Points[0].Y {
		t.Errorf("SAS delay not growing: %v", sasC.Ys())
	}
	// PAS at the large-cap end stays below SAS (the paper's comparison).
	if pas.Points[len(pas.Points)-1].Y >= sasC.Points[len(sasC.Points)-1].Y {
		t.Errorf("PAS delay %v not below SAS %v at max sleep",
			pas.Points[len(pas.Points)-1].Y, sasC.Points[len(sasC.Points)-1].Y)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := res.Curve("NS")
	pas, _ := res.Curve("PAS")
	sasC, _ := res.Curve("SAS")
	// NS consumes the most at every point.
	for i := range ns.Points {
		if ns.Points[i].Y <= pas.Points[i].Y || ns.Points[i].Y <= sasC.Points[i].Y {
			t.Errorf("NS energy not maximal at x=%v", ns.Points[i].X)
		}
	}
	// Energy falls (or at worst stagnates) as the sleep cap grows.
	if pas.Points[len(pas.Points)-1].Y > pas.Points[0].Y {
		t.Errorf("PAS energy grew with sleep cap: %v", pas.Ys())
	}
	// PAS pays at most a small premium over SAS ("the difference is
	// trivial" — allow 25%).
	for i := range pas.Points {
		if pas.Points[i].Y > sasC.Points[i].Y*1.25 {
			t.Errorf("PAS energy %v far above SAS %v at x=%v",
				pas.Points[i].Y, sasC.Points[i].Y, pas.Points[i].X)
		}
	}
}

func TestFig5And7Shape(t *testing.T) {
	// Shared sweep: delay should trend down with the threshold, energy up.
	o := Options{Seeds: DefaultSeeds(6), Quick: true}
	res5, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	res7, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := res5.Curve("PAS")
	e, _ := res7.Curve("PAS")
	if len(d.Points) < 2 || len(e.Points) < 2 {
		t.Fatal("missing sweep points")
	}
	if d.Points[len(d.Points)-1].Y > d.Points[0].Y {
		t.Errorf("delay grew with alert time: %v", d.Ys())
	}
	if e.Points[len(e.Points)-1].Y < e.Points[0].Y {
		t.Errorf("energy fell with alert time: %v", e.Ys())
	}
}

func TestExtDegenerateShape(t *testing.T) {
	res, err := ExtDegenerate(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tiny, _ := res.Curve("PAS (T→0)")
	sasC, _ := res.Curve("SAS")
	def, _ := res.Curve("PAS (default)")
	// At the largest sleep cap, default PAS beats the degenerate variant,
	// and the degenerate variant is close to SAS (within 30% or 1s).
	last := len(tiny.Points) - 1
	if def.Points[last].Y >= tiny.Points[last].Y {
		t.Errorf("default PAS (%v) not better than degenerate (%v)",
			def.Points[last].Y, tiny.Points[last].Y)
	}
	gap := tiny.Points[last].Y - sasC.Points[last].Y
	if gap < 0 {
		gap = -gap
	}
	if gap > 1+0.3*sasC.Points[last].Y {
		t.Errorf("degenerate PAS %v not close to SAS %v",
			tiny.Points[last].Y, sasC.Points[last].Y)
	}
}

func TestExtFailuresRuns(t *testing.T) {
	res, err := ExtFailures(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	pas, ok := res.Curve("pas")
	if !ok || len(pas.Points) < 2 {
		t.Fatal("missing pas curve")
	}
	// Delay at 30% failures should not be *lower* than the healthy network
	// by a wide margin (failures remove information sources).
	if pas.Points[len(pas.Points)-1].Y < pas.Points[0].Y*0.5 {
		t.Errorf("failures implausibly improved delay: %v", pas.Ys())
	}
}

func TestExtLossyRuns(t *testing.T) {
	res, err := ExtLossy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	pas, ok := res.Curve("pas")
	if !ok {
		t.Fatal("missing pas curve")
	}
	for _, p := range pas.Points {
		if p.Y < 0 {
			t.Errorf("negative delay at loss %v", p.X)
		}
	}
}

func TestExtEstimatorRuns(t *testing.T) {
	res, err := ExtEstimator(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
}

func TestExtPlumeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("PDE build is slow")
	}
	res, err := ExtPlume(Options{Quick: true, Seeds: DefaultSeeds(2)})
	if err != nil {
		t.Fatal(err)
	}
	ns, ok := res.Curve("ns")
	if !ok {
		t.Fatal("missing ns curve")
	}
	for _, p := range ns.Points {
		if p.Y != 0 {
			t.Errorf("NS delay on plume = %v at x=%v", p.Y, p.X)
		}
	}
	pasC, _ := res.Curve("pas")
	for _, p := range pasC.Points {
		if p.Y < 0 {
			t.Errorf("negative PAS delay %v", p.Y)
		}
	}
}

func TestExtDensityShape(t *testing.T) {
	res, err := ExtDensity(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	d, ok := res.Curve("PAS delay")
	if !ok || len(d.Points) < 2 {
		t.Fatal("missing density curve")
	}
	// Density should help (or at least not catastrophically hurt) delay:
	// use rank correlation to assert a non-increasing trend tendency.
	rho := stats.SpearmanRank(d.Xs(), d.Ys())
	if rho > 0.9 {
		t.Errorf("delay strongly increases with density (rho=%v): %v", rho, d.Ys())
	}
}

func TestExtLifetimeShape(t *testing.T) {
	res, err := ExtLifetime(Options{Quick: true, Seeds: DefaultSeeds(3)})
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := res.Curve(ProtoNS)
	pasC, _ := res.Curve(ProtoPAS)
	sasC, _ := res.Curve(ProtoSAS)
	if len(ns.Points) == 0 || len(pasC.Points) == 0 {
		t.Fatal("missing curves")
	}
	// NS first death is deterministic: battery / 41 mW.
	wantNS := 0.8 / 0.041
	for _, p := range ns.Points {
		if p.Y < wantNS-1e-6 || p.Y > wantNS+1e-6 {
			t.Errorf("NS first death = %v, want %v", p.Y, wantNS)
		}
	}
	// Adaptive sleeping extends lifetime several-fold at every sweep point.
	for i := range pasC.Points {
		if pasC.Points[i].Y < 3*wantNS {
			t.Errorf("PAS first death %v not ≫ NS %v", pasC.Points[i].Y, wantNS)
		}
		if sasC.Points[i].Y < 3*wantNS {
			t.Errorf("SAS first death %v not ≫ NS %v", sasC.Points[i].Y, wantNS)
		}
	}
	// Longer naps extend lifetime.
	if pasC.Points[len(pasC.Points)-1].Y <= pasC.Points[0].Y {
		t.Errorf("PAS lifetime not growing with sleep cap: %v", pasC.Ys())
	}
}

func TestExtCollisionsRuns(t *testing.T) {
	res, err := ExtCollisions(Options{Quick: true, Seeds: DefaultSeeds(3)})
	if err != nil {
		t.Fatal(err)
	}
	ideal, ok1 := res.Curve("pas (no collisions)")
	coll, ok2 := res.Curve("pas (collisions)")
	if !ok1 || !ok2 {
		t.Fatal("missing curves")
	}
	for i := range ideal.Points {
		if coll.Points[i].Y < 0 || ideal.Points[i].Y < 0 {
			t.Error("negative delay")
		}
	}
}

func TestBatteryRunConfig(t *testing.T) {
	rc := RunConfig{Seed: 1, BatteryJ: 0.5}
	rc.Scenario = diffusion.QuietScenario()
	rep, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatteryDeaths == 0 {
		t.Error("no battery deaths with a tiny budget")
	}
	if rep.FirstDeath <= 0 || rep.FirstDeath > rc.Scenario.Horizon {
		t.Errorf("FirstDeath = %v", rep.FirstDeath)
	}
}

func TestExtContourShape(t *testing.T) {
	res, err := ExtContour(Options{Quick: true, Seeds: DefaultSeeds(3)})
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := res.Curve(ProtoNS)
	pasC, _ := res.Curve(ProtoPAS)
	if len(ns.Points) == 0 || len(pasC.Points) == 0 {
		t.Fatal("missing curves")
	}
	for i := range ns.Points {
		// NS is the deployment-limited optimum: adaptive protocols cannot
		// beat it by more than Monte-Carlo noise.
		if pasC.Points[i].Y < ns.Points[i].Y-0.1 {
			t.Errorf("PAS area error %v below NS optimum %v at t=%v",
				pasC.Points[i].Y, ns.Points[i].Y, ns.Points[i].X)
		}
		// And sleeping must not destroy monitoring: within 3x of optimal
		// while the front crosses.
		if ns.Points[i].Y > 0 && pasC.Points[i].Y > 3*ns.Points[i].Y+0.3 {
			t.Errorf("PAS area error %v far above NS %v at t=%v",
				pasC.Points[i].Y, ns.Points[i].Y, ns.Points[i].X)
		}
	}
}

func TestExtTerrainRuns(t *testing.T) {
	res, err := ExtTerrain(Options{Quick: true, Seeds: DefaultSeeds(2)})
	if err != nil {
		t.Fatal(err)
	}
	ns, ok := res.Curve(ProtoNS)
	if !ok {
		t.Fatal("missing ns curve")
	}
	for _, p := range ns.Points {
		if p.Y != 0 {
			t.Errorf("NS delay on terrain = %v", p.Y)
		}
	}
	pasC, _ := res.Curve(ProtoPAS)
	for _, p := range pasC.Points {
		if p.Y < 0 {
			t.Errorf("negative delay %v", p.Y)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	res := Result{
		ID: "test", Title: "t", XLabel: "x", YLabel: "y",
		Curves: []Curve{
			{Name: "a", Points: []Point{{X: 1, Y: 2, CI: 0.1}, {X: 2, Y: 3, CI: 0.2}}},
			{Name: "b", Points: []Point{{X: 1, Y: 5, CI: 0.3}}},
		},
		Notes: []string{"hello"},
	}
	out := res.Render()
	if !strings.Contains(out, "test") || !strings.Contains(out, "note: hello") {
		t.Errorf("render = %q", out)
	}
	csv := res.CSV()
	if !strings.Contains(csv, "test,a,1,2,0.1") {
		t.Errorf("csv = %q", csv)
	}
	if got := strings.Count(csv, "\n"); got != 4 { // header + 3 points
		t.Errorf("csv lines = %d", got)
	}
	// Curves accessor.
	if _, ok := res.Curve("b"); !ok {
		t.Error("curve b missing")
	}
	if _, ok := res.Curve("zz"); ok {
		t.Error("phantom curve found")
	}
	_ = radio.UnitDisk{}
}

func TestRenderHelper(t *testing.T) {
	out, err := Render("table1", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Telos") {
		t.Errorf("render = %q", out)
	}
	if _, err := Render("bogus", Options{}); err == nil {
		t.Error("bogus id accepted")
	}
}
