package experiment

import (
	"math"
	"testing"

	"repro/internal/diffusion"
)

// TestInvariantsAcrossProtocolsAndScenarios runs every protocol against a
// spread of stimulus models and checks the simulation-wide invariants that
// must hold regardless of configuration.
func TestInvariantsAcrossProtocolsAndScenarios(t *testing.T) {
	scenarios := []diffusion.Scenario{
		diffusion.PaperScenario(),
		diffusion.IrregularScenario(5),
		diffusion.TwinSpillScenario(),
		diffusion.PassingPlumeScenario(),
	}
	protocols := []string{ProtoPAS, ProtoSAS, ProtoNS, ProtoDuty}
	for _, sc := range scenarios {
		for _, proto := range protocols {
			rc := RunConfig{Scenario: sc, Protocol: proto, Seed: 11}
			if sc.Name == "passing" || sc.Name == "twinspill" {
				// Larger fields need longer range for connectivity.
				rc.Nodes = 40
				rc.Range = 18
			}
			rep, err := RunOnce(rc)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc.Name, proto, err)
			}
			for _, n := range rep.Nodes {
				// Detection never precedes ground-truth arrival.
				if n.Detected && n.DetectedAt < n.Arrival-1e-9 {
					t.Errorf("%s/%s node %d detected at %v before arrival %v",
						sc.Name, proto, n.ID, n.DetectedAt, n.Arrival)
				}
				// Energy is positive and below the always-on ceiling.
				ceiling := 0.0415*sc.Horizon + 0.1 // active + generous tx slack
				if n.EnergyJ <= 0 || n.EnergyJ > ceiling {
					t.Errorf("%s/%s node %d energy %v outside (0, %v]",
						sc.Name, proto, n.ID, n.EnergyJ, ceiling)
				}
				// Residency sums to the horizon.
				total := n.SafeSec + n.AlertSec + n.CoveredSec
				if math.Abs(total-sc.Horizon) > 1e-6 {
					t.Errorf("%s/%s node %d residency %v != horizon %v",
						sc.Name, proto, n.ID, total, sc.Horizon)
				}
				// Duty cycle is a fraction.
				if n.DutyCycle < 0 || n.DutyCycle > 1 {
					t.Errorf("%s/%s node %d duty %v", sc.Name, proto, n.ID, n.DutyCycle)
				}
			}
			// NS detects everything the stimulus reaches, instantly.
			if proto == ProtoNS {
				if rep.Missed != 0 {
					t.Errorf("%s/NS missed %d nodes", sc.Name, rep.Missed)
				}
				if rep.AvgDelay != 0 {
					t.Errorf("%s/NS delay %v", sc.Name, rep.AvgDelay)
				}
			}
		}
	}
}

// TestRecedingScenarioDrivesCoveredToSafe checks the covered→safe path of
// the paper's Fig. 3 end to end: on a passing plume, covered nodes must
// return to the safe state after the stimulus moves on.
func TestRecedingScenarioDrivesCoveredToSafe(t *testing.T) {
	sc := diffusion.PassingPlumeScenario()
	for _, proto := range []string{ProtoPAS, ProtoSAS} {
		rc := RunConfig{Scenario: sc, Protocol: proto, Seed: 3, Nodes: 40, Range: 18}
		rep, err := RunOnce(rc)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		// Nodes whose dwell ended well before the horizon should have left
		// the covered state: their covered residency is bounded by dwell +
		// detection timeout, not the rest of the run.
		backToSafe := 0
		for _, n := range rep.Nodes {
			if !n.Detected {
				continue
			}
			if n.CoveredSec < 30 && n.SafeSec > 0 {
				backToSafe++
			}
		}
		if backToSafe == 0 {
			t.Errorf("%s: no covered node ever returned to safe on a receding stimulus", proto)
		}
	}
}

// TestDutyCycleComparesAsStrawman verifies the oblivious baseline sits where
// it should: nonzero delay (unlike NS) and no message traffic.
func TestDutyCycleComparesAsStrawman(t *testing.T) {
	rc := RunConfig{Protocol: ProtoDuty, Seed: 5, DutyPeriod: 10, DutyOn: 1}
	rep, err := RunOnce(rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != 0 {
		t.Errorf("duty cycling sent %d messages", rep.Messages)
	}
	if rep.AvgDelay <= 0 {
		t.Errorf("duty cycling delay %v, want > 0", rep.AvgDelay)
	}
	// Once covered, duty nodes stay awake (they monitor), so overall duty is
	// dominated by the post-coverage phase; on a quiet field the configured
	// 10% cycle must show through.
	quiet := RunConfig{Protocol: ProtoDuty, Seed: 5, DutyPeriod: 10, DutyOn: 1,
		Scenario: diffusion.QuietScenario()}
	qrep, err := RunOnce(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if qrep.AvgDuty < 0.05 || qrep.AvgDuty > 0.2 {
		t.Errorf("quiet-field duty %v, want ≈0.1", qrep.AvgDuty)
	}
}

// TestCollisionsReduceDeliveries sanity-checks that enabling collisions
// never increases the delivered-message count for an identical seed.
func TestCollisionsReduceDeliveries(t *testing.T) {
	base := RunConfig{Seed: 9}
	noColl, err := RunOnce(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Collisions = true
	withColl, err := RunOnce(base)
	if err != nil {
		t.Fatal(err)
	}
	// The runs diverge after the first collision, so only a weak invariant
	// holds: both complete and detect.
	if noColl.Detected == 0 || withColl.Detected == 0 {
		t.Error("runs failed to detect")
	}
}

// TestLossMonotonicity: higher loss probability cannot (on average over
// seeds) make delay better by a wide margin.
func TestLossMonotonicity(t *testing.T) {
	delayAt := func(loss float64) float64 {
		var sum float64
		seeds := DefaultSeeds(5)
		for _, seed := range seeds {
			rc := maxSleepConfig(ProtoPAS, 20)
			if loss > 0 {
				rc.Loss = lossyAt(rc.Range, loss)
			}
			rc.Seed = seed
			rep, err := RunOnce(rc)
			if err != nil {
				t.Fatal(err)
			}
			sum += rep.AvgDelay
		}
		return sum / float64(len(seeds))
	}
	clean := delayAt(0)
	lossy := delayAt(0.5)
	if lossy < clean*0.8 {
		t.Errorf("50%% loss improved delay: %v vs %v", lossy, clean)
	}
}
