// Sharded run assembly: the gate deciding which configurations may shard,
// and the sharded twin of Build. Both must stay in lockstep with Build —
// the bit-identity guarantee rests on drawing the same randomness from the
// same streams and scheduling the same construction events in the same
// global order.
package experiment

import (
	"context"
	"fmt"

	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/rng"
)

// minWireBytes is the smallest on-air frame any protocol in this repository
// transmits: the payload-less PAS REQUEST. Its transmission time is the
// conservative window length — the minimum delay after which one shard can
// influence another — so every broadcast must be at least this large (the
// sharded medium enforces it with a panic).
var minWireBytes = core.Request{}.Size()

// Shardable reports whether the (defaulted) config can run sharded, and the
// first reason it cannot. Sharding requires a transmit path free of shared
// randomness and cross-shard receiver state at transmit time: exact
// unit-disk loss, no collision modelling, no CSMA, no extended fault plan.
// Battery budgets and legacy FailFraction crashes are fine — both are
// construction-time effects that draw their randomness before the shards
// start running.
func Shardable(rc RunConfig) error {
	rc = rc.Defaults()
	loss := rc.Loss
	if loss == nil {
		loss = radio.UnitDisk{Range: rc.Range}
	}
	if _, ok := loss.(radio.UnitDisk); !ok {
		return fmt.Errorf("experiment: sharded runs require unit-disk loss, got %T", loss)
	}
	if rc.Collisions {
		return fmt.Errorf("experiment: collision modelling cannot run sharded")
	}
	if rc.CSMA != nil {
		return fmt.Errorf("experiment: CSMA cannot run sharded")
	}
	if rc.Faults != nil {
		return fmt.Errorf("experiment: extended fault plans cannot run sharded")
	}
	return nil
}

// BuildSharded assembles the sharded network for a run config with
// rc.Shards > 0. It mirrors Build stream for stream — same memoized
// deployment and topology, same battery and failure draws in the same node
// order — so the only difference from a serial build is how the event
// population is spread over kernels.
func BuildSharded(rc RunConfig) (*node.ShardedNetwork, RunConfig, error) {
	rc = rc.Defaults()
	if err := Shardable(rc); err != nil {
		return nil, rc, err
	}
	agents, err := rc.agents()
	if err != nil {
		return nil, rc, err
	}
	src := rng.NewSource(rc.Seed)
	dep := cachedDeployment(rc.Seed, rc.Scenario.Field, rc.Nodes, rc.Range, rc.Deploy, 2000)
	loss := rc.Loss
	if loss == nil {
		loss = radio.UnitDisk{Range: rc.Range}
	}
	topo := cachedTopology(dep, loss.MaxRange())
	nw := node.BuildShardedNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   rc.Scenario.Stimulus,
		Profile:    energy.Telos(),
		Loss:       loss,
		Agents:     agents,
		Topology:   topo,
	}, rc.Shards, minWireBytes)
	if rc.BatteryJ > 0 {
		for _, n := range nw.Nodes {
			n.SetBattery(rc.BatteryJ)
		}
	}
	if rc.FailFraction > 0 {
		failBy := rc.FailBy
		if failBy <= 0 {
			failBy = rc.Scenario.Horizon
		}
		st := src.Stream("failures")
		kill := int(math.Round(rc.FailFraction * float64(len(nw.Nodes))))
		for _, idx := range st.Perm(len(nw.Nodes))[:kill] {
			nw.Nodes[idx].FailAt(st.Uniform(0, failBy))
		}
	}
	return nw, rc, nil
}

// RunOnceSharded executes one sharded simulation and collects its metrics —
// the convenience twin of RunOnce for callers that set Shards explicitly.
func RunOnceSharded(ctx context.Context, rc RunConfig) (metrics.RunReport, error) {
	if rc.Shards < 1 {
		rc.Shards = 1
	}
	return RunOnceContext(ctx, rc)
}
