package fault

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/radio"
)

// LivenessConfig tunes the sink-side peer liveness tracker. The zero value
// disables tracking entirely (zero cost on the fault-free path). All fields
// are scalars so the protocol config structs that embed it stay comparable.
type LivenessConfig struct {
	// MissK is the number of silent report intervals before a peer is
	// suspect (0 disables the tracker).
	MissK int
	// Interval is the tick period and the expected report spacing in
	// seconds.
	Interval float64
	// BackoffInit is the first re-probe delay (0 = Interval); each further
	// probe doubles it, capped at BackoffMax (0 = 8×Interval).
	BackoffInit float64
	BackoffMax  float64
	// MaxProbes is how many unanswered probes precede a death declaration
	// (0 = 3).
	MaxProbes int
}

// Enabled reports whether the tracker is on.
func (c LivenessConfig) Enabled() bool { return c.MissK > 0 && c.Interval > 0 }

// WithDefaults materializes the backoff and probe-budget defaults.
func (c LivenessConfig) WithDefaults() LivenessConfig {
	if !c.Enabled() {
		return c
	}
	if c.BackoffInit <= 0 {
		c.BackoffInit = c.Interval
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * c.Interval
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = 3
	}
	return c
}

// Validate reports the first problem with the config, or nil.
func (c LivenessConfig) Validate() error {
	switch {
	case c.MissK < 0:
		return fmt.Errorf("fault: negative liveness missK %d", c.MissK)
	case c.MissK > 0 && c.Interval <= 0:
		return fmt.Errorf("fault: liveness interval %g must be positive when missK is set", c.Interval)
	case c.Interval < 0 || c.BackoffInit < 0 || c.BackoffMax < 0:
		return fmt.Errorf("fault: negative liveness backoff tunable in %+v", c)
	case c.MaxProbes < 0:
		return fmt.Errorf("fault: negative liveness maxProbes %d", c.MaxProbes)
	}
	return nil
}

// Declaration records one death declaration: who, when, and when the peer
// was last heard (At−LastHeard is the staleness of the sink's information
// at declaration time).
type Declaration struct {
	ID        radio.NodeID
	At        float64
	LastHeard float64
}

// LivenessStats is a tracker snapshot for metrics collection.
type LivenessStats struct {
	// Peers is how many distinct peers have been observed.
	Peers int
	// Probes is how many re-probe broadcasts the tracker requested.
	Probes int
	// ProbeJ is the transmit energy those probes cost, in joules.
	ProbeJ float64
	// Declared lists the death declarations in declaration order.
	Declared []Declaration
}

// peerState tracks one observed peer.
type peerState struct {
	id        radio.NodeID
	lastHeard float64
	suspect   bool
	probes    int
	nextProbe float64
	dead      bool
}

// Liveness is one sink's peer liveness tracker. Peers enter tracking on
// their first observed message (a node that never spoke is never expected
// to speak); a peer silent for MissK×Interval is suspect and re-probed with
// capped exponential backoff until MaxProbes probes have gone unanswered,
// then declared dead. A message from a declared-dead peer (churn rejoin)
// resurrects it; the declaration stays on record as history.
//
// The peer list is kept sorted by ID, so every scan — and therefore every
// declaration order and every float accumulation downstream — is
// deterministic regardless of message arrival interleavings.
type Liveness struct {
	cfg    LivenessConfig
	peers  []peerState
	index  map[radio.NodeID]int
	probes int
	probeJ float64
	decls  []Declaration
}

// NewLiveness builds a tracker (defaults materialized).
func NewLiveness(cfg LivenessConfig) *Liveness {
	return &Liveness{cfg: cfg.WithDefaults(), index: make(map[radio.NodeID]int)}
}

// Observe records life evidence from a peer at time now: any message counts
// (reports, probes, responses — a live radio is a live node).
func (l *Liveness) Observe(from radio.NodeID, now float64) {
	if i, ok := l.index[from]; ok {
		p := &l.peers[i]
		p.lastHeard = now
		p.suspect = false
		p.probes = 0
		p.dead = false
		return
	}
	i := sort.Search(len(l.peers), func(j int) bool { return l.peers[j].id >= from })
	l.peers = append(l.peers, peerState{})
	copy(l.peers[i+1:], l.peers[i:])
	l.peers[i] = peerState{id: from, lastHeard: now}
	for j := i; j < len(l.peers); j++ {
		l.index[l.peers[j].id] = j
	}
}

// Tick advances the tracker to now and reports whether the owner should
// broadcast a probe: true when any peer newly turned suspect or a suspect
// peer's backoff expired. One broadcast serves every due peer (probes are
// broadcasts, not unicasts).
func (l *Liveness) Tick(now float64) bool {
	if !l.cfg.Enabled() {
		return false
	}
	window := float64(l.cfg.MissK) * l.cfg.Interval
	probe := false
	for i := range l.peers {
		p := &l.peers[i]
		if p.dead {
			continue
		}
		if !p.suspect {
			if now-p.lastHeard > window {
				p.suspect = true
				p.probes = 1
				p.nextProbe = now + l.backoff(1)
				probe = true
			}
			continue
		}
		if now >= p.nextProbe {
			if p.probes >= l.cfg.MaxProbes {
				p.dead = true
				l.decls = append(l.decls, Declaration{ID: p.id, At: now, LastHeard: p.lastHeard})
				continue
			}
			p.probes++
			p.nextProbe = now + l.backoff(p.probes)
			probe = true
		}
	}
	if probe {
		l.probes++
	}
	return probe
}

// backoff is the delay before probe k+1: BackoffInit doubling per probe,
// capped at BackoffMax.
func (l *Liveness) backoff(k int) float64 {
	b := l.cfg.BackoffInit * math.Pow(2, float64(k-1))
	return math.Min(b, l.cfg.BackoffMax)
}

// AddProbeEnergy attributes transmit energy to the re-probe budget.
func (l *Liveness) AddProbeEnergy(j float64) { l.probeJ += j }

// Stats snapshots the tracker. The Declared slice is owned by the tracker.
func (l *Liveness) Stats() LivenessStats {
	return LivenessStats{Peers: len(l.peers), Probes: l.probes, ProbeJ: l.probeJ, Declared: l.decls}
}
