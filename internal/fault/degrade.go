package fault

import (
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sim"
)

// DegradedLoss wraps a channel loss model with a time-bounded degradation
// window: during [Start, End) every delivery that the base model lets
// through additionally survives an independent Bernoulli(Loss) drop drawn
// from a dedicated stream (so the base model's own draws — and therefore
// every delivery outside the window — match the undegraded run exactly).
//
// The wrapper needs the simulation clock to know whether a transmission
// falls in the window; Bind it to the run's kernel after network
// construction and before traffic starts. It is per-run state: never share
// one wrapper across replicated runs.
type DegradedLoss struct {
	base   radio.LossModel
	plan   DegradePlan
	st     *rng.Stream
	kernel *sim.Kernel
}

// NewDegradedLoss wraps base with the plan's degradation window, drawing
// the extra drops from st (conventionally src.Stream("fault/degrade")).
func NewDegradedLoss(base radio.LossModel, p DegradePlan, st *rng.Stream) *DegradedLoss {
	return &DegradedLoss{base: base, plan: p, st: st}
}

// Bind attaches the simulation clock. Delivers panics without it.
func (d *DegradedLoss) Bind(k *sim.Kernel) { d.kernel = k }

// Delivers implements radio.LossModel.
func (d *DegradedLoss) Delivers(dist float64, st *rng.Stream) bool {
	if !d.base.Delivers(dist, st) {
		return false
	}
	if d.kernel == nil {
		panic("fault: DegradedLoss used before Bind")
	}
	now := d.kernel.Now()
	if now >= d.plan.Start && now < d.plan.End && d.st.Bernoulli(d.plan.Loss) {
		return false
	}
	return true
}

// MaxRange implements radio.LossModel: degradation raises loss inside the
// base range, never the range itself, so topology caches keyed on the range
// stay valid.
func (d *DegradedLoss) MaxRange() float64 { return d.base.MaxRange() }
