package fault

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// nopAgent satisfies node.Agent with no protocol behaviour — fault tests
// exercise failure scheduling, not the protocols.
type nopAgent struct{}

func (nopAgent) Init(*node.Node)                                    {}
func (nopAgent) OnWake(*node.Node)                                  {}
func (nopAgent) OnDetect(*node.Node)                                {}
func (nopAgent) OnStimulusGone(*node.Node)                          {}
func (nopAgent) OnMessage(*node.Node, radio.NodeID, radio.Envelope) {}

// rig builds n nodes on a line, 5 m apart, with a far-away radial front.
func rig(t *testing.T, n int) (*sim.Kernel, []*node.Node) {
	t.Helper()
	k := sim.NewKernel()
	stim := diffusion.NewRadialFront(geom.V(-1e6, 0), 0.001, 0)
	m := radio.NewMedium(k, geom.R(0, 0, float64(5*n), 10), energy.Telos(),
		radio.UnitDisk{Range: 12}, rng.NewSource(1).Stream("channel"))
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(node.Config{
			ID: radio.NodeID(i), Pos: geom.V(float64(5*i), 5),
			Kernel: k, Medium: m, Stimulus: stim,
			Profile: energy.Telos(), Agent: nopAgent{},
		})
	}
	return k, nodes
}

func failedSet(nodes []*node.Node) map[int]bool {
	f := make(map[int]bool)
	for i, n := range nodes {
		if n.Failed() {
			f[i] = true
		}
	}
	return f
}

// failTime reconstructs a still-failed node's crash instant from its
// open-tail downtime accounting.
func failTime(n *node.Node, horizon float64) float64 {
	return horizon - n.DownDuring(horizon)
}

func TestCompileMaterializesWindows(t *testing.T) {
	p := Compile(scenario.FailureSpec{Fraction: 0.2}, 100)
	if p.Crash.By != 100 {
		t.Errorf("crash deadline = %g, want the horizon", p.Crash.By)
	}
	p = Compile(scenario.FailureSpec{
		Churn: &scenario.ChurnSpec{Fraction: 0.3, MeanDown: 10},
		Radio: &scenario.DegradationSpec{Loss: 0.2, Start: 25},
	}, 100)
	if p.Crash.Fraction != 0 {
		t.Error("no crash section, but a crash plan compiled")
	}
	if p.Churn.By != 100 || p.Degrade.End != 100 {
		t.Errorf("window ends not defaulted to the horizon: churn %g, degrade %g", p.Churn.By, p.Degrade.End)
	}
	// Disabled (zero-fraction / zero-loss) sections compile to nothing.
	p = Compile(scenario.FailureSpec{
		Churn:  &scenario.ChurnSpec{MeanDown: 10},
		Sensor: &scenario.SensorSpec{Drift: 3},
		Radio:  &scenario.DegradationSpec{Start: 1, End: 2},
	}, 100)
	if p.Churn.Fraction != 0 || p.Sensor.Fraction != 0 || p.Degrade.Loss != 0 {
		t.Errorf("disabled sections compiled: %+v", p)
	}
	if !Extended(scenario.FailureSpec{From: 5, Fraction: 0.1}) {
		t.Error("windowed crash not classified extended")
	}
	if Extended(scenario.FailureSpec{Fraction: 0.1, By: 50}) {
		t.Error("legacy crash classified extended")
	}
}

func TestApplyLegacyCrashIsDeterministic(t *testing.T) {
	plan := Compile(scenario.FailureSpec{Fraction: 0.3}, 100)
	run := func() (map[int]bool, []float64) {
		k, nodes := rig(t, 20)
		plan.Apply(rng.NewSource(9), nodes)
		k.RunUntil(100)
		var times []float64
		for _, n := range nodes {
			if n.Failed() {
				times = append(times, failTime(n, 100))
			}
		}
		return failedSet(nodes), times
	}
	setA, timesA := run()
	setB, timesB := run()
	if len(setA) != 6 { // round(0.3 × 20)
		t.Fatalf("%d nodes failed, want 6", len(setA))
	}
	if len(setB) != len(setA) || len(timesA) != len(timesB) {
		t.Fatal("reapplication diverged")
	}
	for i := range setA {
		if !setB[i] {
			t.Fatalf("victim sets diverged at node %d", i)
		}
	}
	for i := range timesA {
		if timesA[i] != timesB[i] {
			t.Fatal("crash instants diverged across identical applications")
		}
		if timesA[i] < 0 || timesA[i] > 100 {
			t.Errorf("crash at %g outside [0, horizon]", timesA[i])
		}
	}
}

func TestApplyWindowedCrash(t *testing.T) {
	plan := Compile(scenario.FailureSpec{Fraction: 0.5, From: 40, By: 60}, 100)
	k, nodes := rig(t, 10)
	plan.Apply(rng.NewSource(3), nodes)
	k.RunUntil(100)
	failed := 0
	for _, n := range nodes {
		if !n.Failed() {
			continue
		}
		failed++
		if ft := failTime(n, 100); ft < 40 || ft > 60 {
			t.Errorf("crash at %g outside the [40, 60] window", ft)
		}
	}
	if failed != 5 {
		t.Errorf("%d nodes failed, want 5", failed)
	}
}

func TestApplyClusteredCrashIsSpatial(t *testing.T) {
	// Nodes sit on a line 5 m apart; a 7 m cluster radius admits at most the
	// epicentre and its two immediate neighbours, so the victims must be
	// contiguous — a uniform draw of 3 of 20 would almost surely not be.
	plan := Compile(scenario.FailureSpec{Fraction: 0.6, ClusterRadius: 7}, 100)
	k, nodes := rig(t, 20)
	plan.Apply(rng.NewSource(5), nodes)
	k.RunUntil(100)
	var victims []int
	for i, n := range nodes {
		if n.Failed() {
			victims = append(victims, i)
		}
	}
	if len(victims) == 0 || len(victims) > 3 {
		t.Fatalf("clustered kill hit %d nodes, want 1–3 (radius-limited below the 12-node fraction)", len(victims))
	}
	for i := 1; i < len(victims); i++ {
		if victims[i] != victims[i-1]+1 {
			t.Errorf("victims %v not spatially contiguous", victims)
		}
	}
}

func TestApplyChurnFailsAndRecovers(t *testing.T) {
	plan := Compile(scenario.FailureSpec{
		Churn: &scenario.ChurnSpec{Fraction: 0.4, MeanDown: 5, MinDown: 2, Start: 10, By: 50},
	}, 200)
	k, nodes := rig(t, 10)
	plan.Apply(rng.NewSource(11), nodes)
	k.RunUntil(200)
	churned := 0
	for _, n := range nodes {
		downs := n.Downtimes()
		if len(downs) == 0 {
			continue
		}
		churned++
		if n.Failed() {
			t.Error("churned node still failed long after its window")
		}
		d := downs[0]
		if d.Start < 10 || d.Start > 50 {
			t.Errorf("outage start %g outside the [10, 50] window", d.Start)
		}
		if d.End-d.Start < 2 {
			t.Errorf("outage %g s shorter than MinDown 2", d.End-d.Start)
		}
	}
	if churned != 4 {
		t.Errorf("%d nodes churned, want 4", churned)
	}
}

func TestApplySensorInstallsModels(t *testing.T) {
	plan := Compile(scenario.FailureSpec{
		Sensor: &scenario.SensorSpec{Fraction: 0.5, Drift: 3},
	}, 100)
	k, nodes := rig(t, 10)
	plan.Apply(rng.NewSource(2), nodes)
	miscal := 0
	for _, n := range nodes {
		if n.Sensor() != nil {
			miscal++
		}
	}
	if miscal != 5 {
		t.Errorf("%d nodes miscalibrated, want 5", miscal)
	}
	k.RunUntil(100)
}

func TestFractionRounding(t *testing.T) {
	for _, c := range []struct {
		f    float64
		n, k int
	}{{0, 10, 0}, {0.04, 10, 0}, {0.05, 10, 1}, {0.5, 10, 5}, {1, 10, 10}, {1.5, 10, 10}} {
		if got := fraction(c.f, c.n); got != c.k {
			t.Errorf("fraction(%g, %d) = %d, want %d", c.f, c.n, got, c.k)
		}
	}
}

// --- sensor model ---

func TestSensorDrift(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 1, 0) // arrives at x=10 at t=10
	pos := geom.V(10, 0)
	s := &SensorState{drift: 3}
	if s.Reading(stim, pos, 11) {
		t.Error("drifted sensor detected before its perceived arrival")
	}
	if !s.Reading(stim, pos, 13.5) {
		t.Error("drifted sensor never detected")
	}
	ts := s.SenseTimes(stim, pos)
	if len(ts) != 1 || ts[0] != 13 {
		t.Errorf("SenseTimes = %v, want [13] (true arrival 10 + drift 3)", ts)
	}
}

func TestSensorStuck(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 1, 0)
	pos := geom.V(10, 0)
	// Sticks at t=5, before the t=10 arrival: latched at "uncovered" forever.
	s := &SensorState{stuck: true, stuckAt: 5}
	if s.Reading(stim, pos, 20) || s.Reading(stim, pos, 1000) {
		t.Error("pre-arrival stuck sensor detected anyway")
	}
	if ts := s.SenseTimes(stim, pos); len(ts) != 1 || ts[0] != 5 {
		t.Errorf("SenseTimes = %v, want [5]", ts)
	}
	// Sticks after arrival: latched at "covered".
	s = &SensorState{stuck: true, stuckAt: 15}
	if !s.Reading(stim, pos, 20) {
		t.Error("post-arrival stuck sensor lost its latched detection")
	}
	// Before the onset the sensor reads normally.
	s = &SensorState{stuck: true, stuckAt: 50}
	if s.Reading(stim, pos, 5) {
		t.Error("not-yet-stuck sensor misread")
	}
	if !s.Reading(stim, pos, 12) {
		t.Error("not-yet-stuck sensor missed the front")
	}
}

func TestSensorBursts(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 1, 0)
	pos := geom.V(1000, 0) // front arrives at t=1000: never during this test
	s := &SensorState{bursts: []burst{{start: 5, end: 7}, {start: 20, end: 21}}}
	probes := []struct {
		t    float64
		want bool
	}{{1, false}, {5, true}, {6.9, true}, {7, false}, {19, false}, {20.5, true}, {30, false}}
	for _, p := range probes { // non-decreasing, as the contract requires
		if got := s.Reading(stim, pos, p.t); got != p.want {
			t.Errorf("Reading at %g = %v, want %v", p.t, got, p.want)
		}
	}
	ts := s.SenseTimes(stim, pos)
	if len(ts) != 2 || ts[0] != 5 || ts[1] != 20 {
		t.Errorf("SenseTimes = %v, want the burst onsets [5 20]", ts)
	}
}

func TestNewSensorStateDrawsAreDeterministic(t *testing.T) {
	p := SensorPlan{Fraction: 1, Drift: 2, Stuck: 0.5, BurstRate: 3, BurstLen: 1}
	a := NewSensorState(p, 100, rng.NewSource(7).StreamN("fault/sensor", 4))
	b := NewSensorState(p, 100, rng.NewSource(7).StreamN("fault/sensor", 4))
	if a.stuck != b.stuck || a.stuckAt != b.stuckAt || len(a.bursts) != len(b.bursts) {
		t.Fatal("identical streams drew different sensor states")
	}
	for i := range a.bursts {
		if a.bursts[i] != b.bursts[i] {
			t.Fatal("burst schedules diverged")
		}
		if a.bursts[i].start >= 100 {
			t.Errorf("burst %d starts at %g, past the horizon", i, a.bursts[i].start)
		}
		if i > 0 && a.bursts[i].start < a.bursts[i-1].end {
			t.Errorf("bursts overlap: %+v", a.bursts)
		}
	}
	other := NewSensorState(p, 100, rng.NewSource(7).StreamN("fault/sensor", 5))
	if a.stuck == other.stuck && a.stuckAt == other.stuckAt && len(a.bursts) == len(other.bursts) {
		t.Error("distinct per-node streams drew identical sensor states")
	}
}

// --- degraded loss ---

type countingLoss struct {
	rangeM float64
	calls  int
}

func (c *countingLoss) Delivers(float64, *rng.Stream) bool { c.calls++; return true }
func (c *countingLoss) MaxRange() float64                  { return c.rangeM }

func TestDegradedLossWindow(t *testing.T) {
	k := sim.NewKernel()
	base := &countingLoss{rangeM: 12}
	d := NewDegradedLoss(base, DegradePlan{Start: 10, End: 20, Loss: 1}, rng.NewSource(1).Stream("fault/degrade"))
	d.Bind(k)
	st := rng.NewSource(2).Stream("x")
	if !d.Delivers(1, st) {
		t.Error("dropped outside the window (t=0)")
	}
	k.ScheduleAt(15, func(*sim.Kernel) {
		if d.Delivers(1, st) {
			t.Error("Loss=1 delivered inside the window")
		}
	})
	k.ScheduleAt(20, func(*sim.Kernel) {
		if !d.Delivers(1, st) {
			t.Error("dropped at the window end (End is exclusive)")
		}
	})
	k.Run()
	if base.calls != 3 {
		t.Errorf("base model consulted %d times, want every delivery (3)", base.calls)
	}
	if d.MaxRange() != 12 {
		t.Errorf("MaxRange = %g, want the base model's 12 (degradation never widens range)", d.MaxRange())
	}
}

func TestDegradedLossBaseDropWins(t *testing.T) {
	k := sim.NewKernel()
	d := NewDegradedLoss(radio.UnitDisk{Range: 10}, DegradePlan{Start: 0, End: 100, Loss: 0},
		rng.NewSource(1).Stream("fault/degrade"))
	d.Bind(k)
	if d.Delivers(11, rng.NewSource(2).Stream("x")) {
		t.Error("out-of-range delivery passed through the wrapper")
	}
}

func TestDegradedLossPanicsUnbound(t *testing.T) {
	d := NewDegradedLoss(&countingLoss{rangeM: 10}, DegradePlan{End: 10, Loss: 0.5},
		rng.NewSource(1).Stream("fault/degrade"))
	defer func() {
		if recover() == nil {
			t.Error("unbound DegradedLoss did not panic on use")
		}
	}()
	d.Delivers(1, rng.NewSource(2).Stream("x"))
}

// --- liveness config ---

func TestLivenessConfig(t *testing.T) {
	var zero LivenessConfig
	if zero.Enabled() {
		t.Error("zero config enabled")
	}
	if got := zero.WithDefaults(); got != zero {
		t.Errorf("WithDefaults on a disabled config changed it: %+v", got)
	}
	c := LivenessConfig{MissK: 3, Interval: 5}.WithDefaults()
	want := LivenessConfig{MissK: 3, Interval: 5, BackoffInit: 5, BackoffMax: 40, MaxProbes: 3}
	if c != want {
		t.Errorf("WithDefaults = %+v, want %+v", c, want)
	}
	explicit := LivenessConfig{MissK: 2, Interval: 4, BackoffInit: 1, BackoffMax: 9, MaxProbes: 5}
	if got := explicit.WithDefaults(); got != explicit {
		t.Errorf("WithDefaults overwrote explicit values: %+v", got)
	}
	for _, bad := range []LivenessConfig{
		{MissK: -1},
		{MissK: 3},
		{MissK: 3, Interval: -1},
		{MissK: 3, Interval: 5, BackoffInit: -1},
		{MissK: 3, Interval: 5, BackoffMax: -2},
		{MissK: 3, Interval: 5, MaxProbes: -1},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v validated", bad)
		}
	}
	if err := want.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// --- liveness tracker ---

func TestLivenessSuspectProbeDeclare(t *testing.T) {
	l := NewLiveness(LivenessConfig{MissK: 3, Interval: 5, BackoffInit: 2, BackoffMax: 16, MaxProbes: 3})
	l.Observe(1, 0)
	l.Observe(2, 0)

	// Peer 2 keeps reporting; peer 1 goes silent after t=0.
	if l.Tick(15) { // 15 == 3×5: not yet strictly over the window
		t.Error("probe at exactly the window edge")
	}
	l.Observe(2, 15)
	if !l.Tick(16) { // silent > 15 s: suspect, probe 1
		t.Error("no probe when the miss window expired")
	}
	if l.Tick(17) { // backoff 2 s: not due until 18
		t.Error("probe before the backoff expired")
	}
	if !l.Tick(18.5) { // probe 2, next backoff 4 s
		t.Error("no re-probe after backoff")
	}
	if !l.Tick(23) { // probe 3 (the last of MaxProbes), next due at 23+8
		t.Error("no final probe")
	}
	if l.Tick(28) { // final backoff (8 s) still running
		t.Error("probed past MaxProbes")
	}
	l.Observe(2, 28)
	if l.Tick(31.5) { // final backoff expired with probes exhausted: declare
		t.Error("declaration tick asked for another probe")
	}
	st := l.Stats()
	if st.Peers != 2 || st.Probes != 3 {
		t.Errorf("stats = %+v, want 2 peers / 3 probe rounds", st)
	}
	if len(st.Declared) != 1 || st.Declared[0].ID != 1 || st.Declared[0].LastHeard != 0 {
		t.Fatalf("declarations = %+v, want peer 1 last heard at 0", st.Declared)
	}
	if st.Declared[0].At != 31.5 {
		t.Errorf("declared at %g, want 31.5", st.Declared[0].At)
	}
	// Dead peers are skipped by further ticks (peer 2, heard at 28, is
	// still inside its miss window here).
	if l.Tick(40) {
		t.Error("dead peer probed again")
	}
}

func TestLivenessResurrect(t *testing.T) {
	l := NewLiveness(LivenessConfig{MissK: 1, Interval: 1, BackoffInit: 1, BackoffMax: 1, MaxProbes: 1})
	l.Observe(7, 0)
	l.Tick(2)  // suspect + probe 1
	l.Tick(10) // MaxProbes exhausted: declared dead
	if n := len(l.Stats().Declared); n != 1 {
		t.Fatalf("%d declarations, want 1", n)
	}
	l.Observe(7, 12) // churn rejoin
	if !l.Tick(14) { // silent > 1 s again: fresh suspicion cycle
		t.Error("resurrected peer not re-tracked")
	}
	if n := len(l.Stats().Declared); n != 1 {
		t.Errorf("resurrection erased or duplicated the declaration history: %d", n)
	}
}

func TestLivenessOneBroadcastServesManyPeers(t *testing.T) {
	l := NewLiveness(LivenessConfig{MissK: 1, Interval: 1, BackoffInit: 100, BackoffMax: 100, MaxProbes: 3})
	for id := 10; id >= 1; id-- { // reverse insertion: the peer list must sort
		l.Observe(radio.NodeID(id), 0)
	}
	if !l.Tick(5) { // all 10 turn suspect in one tick
		t.Error("no probe")
	}
	if st := l.Stats(); st.Probes != 1 {
		t.Errorf("%d probe rounds for one tick, want 1 (probes are broadcasts)", st.Probes)
	}
	l.AddProbeEnergy(0.25)
	l.AddProbeEnergy(0.5)
	if j := l.Stats().ProbeJ; math.Abs(j-0.75) > 1e-12 {
		t.Errorf("ProbeJ = %g, want 0.75", j)
	}
}

func TestLivenessDeclarationOrderIsSortedByID(t *testing.T) {
	l := NewLiveness(LivenessConfig{MissK: 1, Interval: 1, BackoffInit: 1, BackoffMax: 1, MaxProbes: 1})
	for _, id := range []radio.NodeID{9, 3, 14, 1} {
		l.Observe(id, 0)
	}
	l.Tick(3)  // all suspect
	l.Tick(10) // all declared in one tick
	decls := l.Stats().Declared
	if len(decls) != 4 {
		t.Fatalf("%d declarations, want 4", len(decls))
	}
	for i := 1; i < len(decls); i++ {
		if decls[i].ID <= decls[i-1].ID {
			t.Fatalf("declaration order %v not ID-sorted (determinism)", decls)
		}
	}
}

func TestLivenessDisabledIsInert(t *testing.T) {
	l := NewLiveness(LivenessConfig{})
	l.Observe(1, 0)
	if l.Tick(1e9) {
		t.Error("disabled tracker asked for a probe")
	}
	if len(l.Stats().Declared) != 0 {
		t.Error("disabled tracker declared a death")
	}
}

func TestLivenessBackoffCaps(t *testing.T) {
	l := NewLiveness(LivenessConfig{MissK: 1, Interval: 1, BackoffInit: 2, BackoffMax: 5, MaxProbes: 8})
	for k, want := range map[int]float64{1: 2, 2: 4, 3: 5, 7: 5} {
		if got := l.backoff(k); got != want {
			t.Errorf("backoff(%d) = %g, want %g", k, got, want)
		}
	}
}
