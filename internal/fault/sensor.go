package fault

import (
	"math"

	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/rng"
)

// burst is one spurious always-detecting noise window.
type burst struct {
	start, end float64
}

// SensorState is one node's miscalibration model, implementing
// node.SensorModel. Three transforms compose between stimulus and reading:
//
//   - Additive drift: the sensor perceives the front Drift seconds late
//     (reads ground truth at now−Drift).
//   - Stuck-at: with probability Stuck the sensor latches forever at a
//     uniform-random onset; the latched value is the drifted reading at the
//     onset instant, so a sensor that sticks before the front arrives never
//     detects and one that sticks after keeps reporting coverage.
//   - Burst noise: Poisson-arriving windows (BurstRate per horizon on
//     average, Exponential(BurstLen) long) during which the sensor reads
//     true regardless of ground truth — false detections.
//
// All randomness is drawn once at construction from the node's dedicated
// stream, so the state is pure data afterwards and runs stay deterministic.
type SensorState struct {
	drift   float64
	stuck   bool
	stuckAt float64
	bursts  []burst
	idx     int // monotonic cursor into bursts (query times never decrease)
}

// NewSensorState draws one node's miscalibration from its dedicated stream.
func NewSensorState(p SensorPlan, horizon float64, st *rng.Stream) *SensorState {
	s := &SensorState{drift: p.Drift}
	if st.Bernoulli(p.Stuck) {
		s.stuck = true
		s.stuckAt = st.Uniform(0, horizon)
	}
	if p.BurstRate > 0 && p.BurstLen > 0 {
		gap := horizon / p.BurstRate
		for t := st.Exponential(gap); t < horizon; t += st.Exponential(gap) {
			dur := st.Exponential(p.BurstLen)
			s.bursts = append(s.bursts, burst{start: t, end: t + dur})
			t += dur
		}
	}
	return s
}

// Reading implements node.SensorModel: stuck wins, then burst noise, then
// the drifted ground truth.
func (s *SensorState) Reading(stim diffusion.Stimulus, pos geom.Vec2, now float64) bool {
	if s.stuck && now >= s.stuckAt {
		return stim.Covered(pos, s.stuckAt-s.drift)
	}
	if s.inBurst(now) {
		return true
	}
	return stim.Covered(pos, now-s.drift)
}

// inBurst reports whether now falls inside a noise window, advancing the
// monotonic cursor past expired windows.
func (s *SensorState) inBurst(now float64) bool {
	for s.idx < len(s.bursts) && s.bursts[s.idx].end <= now {
		s.idx++
	}
	return s.idx < len(s.bursts) && now >= s.bursts[s.idx].start
}

// SenseTimes implements node.SensorModel: the perceived (late) arrival, the
// stuck onset and every burst onset are instants at which an awake node
// should re-sample, since the ground-truth arrival event alone would miss
// them.
func (s *SensorState) SenseTimes(stim diffusion.Stimulus, pos geom.Vec2) []float64 {
	var ts []float64
	if s.drift > 0 {
		if a := stim.ArrivalTime(pos); !math.IsInf(a, 1) {
			ts = append(ts, a+s.drift)
		}
	}
	if s.stuck {
		ts = append(ts, s.stuckAt)
	}
	for _, b := range s.bursts {
		ts = append(ts, b.start)
	}
	return ts
}
