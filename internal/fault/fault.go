// Package fault is the deterministic fault-injection subsystem of the PAS
// reproduction. A scenario's FailureSpec compiles (Compile) into a pure-data
// Plan; applying the plan to a built network (Plan.Apply) schedules
// crash-stop kills (time-windowed, optionally spatially clustered),
// crash-recovery churn (nodes go dark and rejoin — reusing the frozen
// network topology, since positions never change), and installs sensor
// miscalibration models (additive drift, stuck-at, burst noise) between
// stimulus and reading. Radio degradation windows wrap the channel loss
// model (DegradedLoss).
//
// Every random draw comes from a named rng stream ("failures" for the
// legacy uniform crash case — byte-compatible with the pre-fault kill loop —
// and "fault/crash", "fault/churn", "fault/sensor" plus per-node
// StreamN("fault/sensor", id) for the extensions), so faulted runs stay
// byte-identical whether replicated serially or in parallel.
//
// The package also hosts the sink-side liveness tracker (Liveness) the
// PAS/SAS agents embed: after MissK missed report intervals a peer is
// suspect and re-probed with capped exponential backoff before being
// declared dead.
package fault

import (
	"math"
	"sort"

	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/scenario"
)

// Plan is a compiled fault schedule: pure data, safe to share across
// replicated runs (Apply draws per-run randomness from the run's source).
type Plan struct {
	// Horizon is the simulated duration the windows were materialized
	// against.
	Horizon float64
	// Crash, Churn, Sensor and Degrade are the per-model schedules; a zero
	// Fraction (or Loss) disables the model.
	Crash   CrashPlan
	Churn   ChurnPlan
	Sensor  SensorPlan
	Degrade DegradePlan
}

// CrashPlan kills Fraction of the nodes at uniform times in [From, By]. A
// positive ClusterRadius selects the victims nearest a random epicentre
// (within the radius) instead of uniformly at random.
type CrashPlan struct {
	Fraction      float64
	From          float64
	By            float64
	ClusterRadius float64
}

// ChurnPlan takes Fraction of the nodes down at a uniform time in
// [Start, By] for MinDown plus an exponential draw with mean MeanDown
// seconds, then recovers them in place.
type ChurnPlan struct {
	Fraction float64
	MeanDown float64
	MinDown  float64
	Start    float64
	By       float64
}

// SensorPlan miscalibrates Fraction of the nodes; see SensorState.
type SensorPlan struct {
	Fraction  float64
	Drift     float64
	Stuck     float64
	BurstRate float64
	BurstLen  float64
}

// DegradePlan layers an extra per-delivery drop probability Loss on the
// channel during [Start, End]; see DegradedLoss.
type DegradePlan struct {
	Start float64
	End   float64
	Loss  float64
}

// Extended reports whether the spec uses any fault model beyond the legacy
// uniform crash-stop kill — the routing predicate the experiment harness
// uses to decide between the byte-compatible legacy path and Compile.
func Extended(f scenario.FailureSpec) bool { return f.Extended() }

// Compile materializes a FailureSpec into a Plan against the given horizon:
// zero window ends default to the horizon, mirroring the spec's canonical
// normalization, so a spec and its canonical form compile identically.
func Compile(f scenario.FailureSpec, horizon float64) *Plan {
	p := &Plan{Horizon: horizon}
	if f.Fraction > 0 {
		p.Crash = CrashPlan{Fraction: f.Fraction, From: f.From, By: f.By, ClusterRadius: f.ClusterRadius}
		if p.Crash.By == 0 {
			p.Crash.By = horizon
		}
	}
	if c := f.Churn; c != nil && c.Fraction > 0 {
		p.Churn = ChurnPlan{Fraction: c.Fraction, MeanDown: c.MeanDown, MinDown: c.MinDown, Start: c.Start, By: c.By}
		if p.Churn.By == 0 {
			p.Churn.By = horizon
		}
	}
	if s := f.Sensor; s != nil && s.Fraction > 0 {
		p.Sensor = SensorPlan{Fraction: s.Fraction, Drift: s.Drift, Stuck: s.Stuck, BurstRate: s.BurstRate, BurstLen: s.BurstLen}
	}
	if d := f.Radio; d != nil && d.Loss > 0 {
		p.Degrade = DegradePlan{Start: d.Start, End: d.End, Loss: d.Loss}
		if p.Degrade.End == 0 {
			p.Degrade.End = horizon
		}
	}
	return p
}

// Apply draws the plan's per-run randomness from src and schedules every
// fault on the built nodes. Call after node construction, before the run.
// Radio degradation is not applied here — it wraps the loss model at build
// time (NewDegradedLoss), before the network exists.
func (p *Plan) Apply(src *rng.Source, nodes []*node.Node) {
	p.applyCrash(src, nodes)
	p.applyChurn(src, nodes)
	p.applySensor(src, nodes)
}

// fraction rounds a node-count fraction the way the legacy kill loop always
// has.
func fraction(f float64, n int) int {
	k := int(math.Round(f * float64(n)))
	if k > n {
		k = n
	}
	return k
}

func (p *Plan) applyCrash(src *rng.Source, nodes []*node.Node) {
	c := p.Crash
	if c.Fraction <= 0 {
		return
	}
	n := len(nodes)
	kill := fraction(c.Fraction, n)
	if c.From == 0 && c.ClusterRadius == 0 {
		// Pure uniform kill: the legacy path, stream-for-stream identical to
		// the pre-fault harness so old scenarios keep their golden traces.
		st := src.Stream("failures")
		for _, idx := range st.Perm(n)[:kill] {
			nodes[idx].FailAt(st.Uniform(0, c.By))
		}
		return
	}
	st := src.Stream("fault/crash")
	if c.ClusterRadius > 0 {
		// Spatially clustered kill: the victims are the nodes nearest a
		// random epicentre, restricted to the radius.
		center := nodes[st.Intn(n)].Pos()
		type cand struct {
			d   float64
			idx int
		}
		cands := make([]cand, 0, n)
		for i, nd := range nodes {
			if d := nd.Pos().Dist(center); d <= c.ClusterRadius {
				cands = append(cands, cand{d, i})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].idx < cands[j].idx
		})
		if len(cands) > kill {
			cands = cands[:kill]
		}
		for _, cd := range cands {
			nodes[cd.idx].FailAt(st.Uniform(c.From, c.By))
		}
		return
	}
	for _, idx := range st.Perm(n)[:kill] {
		nodes[idx].FailAt(st.Uniform(c.From, c.By))
	}
}

func (p *Plan) applyChurn(src *rng.Source, nodes []*node.Node) {
	c := p.Churn
	if c.Fraction <= 0 {
		return
	}
	n := len(nodes)
	by := c.By
	if by < c.Start {
		by = c.Start
	}
	st := src.Stream("fault/churn")
	for _, idx := range st.Perm(n)[:fraction(c.Fraction, n)] {
		start := st.Uniform(c.Start, by)
		down := c.MinDown + st.Exponential(c.MeanDown)
		nodes[idx].FailAt(start)
		nodes[idx].RecoverAt(start + down)
	}
}

func (p *Plan) applySensor(src *rng.Source, nodes []*node.Node) {
	s := p.Sensor
	if s.Fraction <= 0 {
		return
	}
	n := len(nodes)
	st := src.Stream("fault/sensor")
	for _, idx := range st.Perm(n)[:fraction(s.Fraction, n)] {
		nd := nodes[idx]
		nd.SetSensor(NewSensorState(s, p.Horizon, src.StreamN("fault/sensor", int(nd.ID()))))
	}
}
