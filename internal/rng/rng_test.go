package rng

import (
	"fmt"
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestStreamsDeterministic(t *testing.T) {
	a := NewSource(42).Stream("deploy")
	b := NewSource(42).Stream("deploy")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed + name produced different draws")
		}
	}
}

func TestStreamsIndependentByName(t *testing.T) {
	s := NewSource(42)
	a := s.Stream("deploy")
	b := s.Stream("channel")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different names coincide in %d/100 draws", same)
	}
}

func TestStreamsIndependentBySeed(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds coincide in %d/100 draws", same)
	}
}

func TestStreamN(t *testing.T) {
	s := NewSource(7)
	a := s.StreamN("node", 0)
	b := s.StreamN("node", 1)
	a2 := s.StreamN("node", 0)
	if a.Float64() == b.Float64() {
		t.Error("numbered streams not independent")
	}
	// a2 restarts stream 0.
	want := NewSource(7).StreamN("node", 0).Float64()
	_ = a2
	got := NewSource(7).StreamN("node", 0).Float64()
	if want != got {
		t.Error("numbered stream not reproducible")
	}
}

// TestStreamStateGridHasNoCollisions sweeps a large (name, n) grid across
// seeds and requires every derived generator state — numbered and unnumbered
// — to be distinct. The pre-fix derivation (name-hash XOR seed XOR scaled
// index, then one mix round) let structured (name, n) pairs cancel before the
// mix; pushing the index through its own splitmix64 round makes the grid
// collision-free.
func TestStreamStateGridHasNoCollisions(t *testing.T) {
	names := []string{"node", "node1", "node2", "deploy", "channel", "failures",
		"anisotropic-front", "contour-mc", "a", "b", "ab", "ba", ""}
	seeds := []uint64{0, 1, 42, 0x9e3779b97f4a7c15}
	const perName = 2048
	states := make(map[uint64]string, len(seeds)*len(names)*(perName+1))
	record := func(state uint64, what string) {
		if prev, dup := states[state]; dup {
			t.Fatalf("state collision: %s and %s both map to %#x", prev, what, state)
		}
		states[state] = what
	}
	for _, seed := range seeds {
		for _, name := range names {
			h := nameHash(name)
			record(streamState(h, seed), fmt.Sprintf("Stream(%q)/seed %d", name, seed))
			for n := uint64(0); n < perName; n++ {
				record(streamStateN(h, seed, n), fmt.Sprintf("StreamN(%q,%d)/seed %d", name, n, seed))
			}
		}
	}
}

// TestStreamNDecorrelated checks adjacent numbered streams differ in many
// state bits (no low-bit lockstep) and that their draws do not track the
// unnumbered stream.
func TestStreamNDecorrelated(t *testing.T) {
	h := nameHash("node")
	for n := uint64(0); n < 512; n++ {
		diff := streamStateN(h, 7, n) ^ streamStateN(h, 7, n+1)
		if bits.OnesCount64(diff) < 10 {
			t.Fatalf("states for n=%d and n=%d differ in only %d bits", n, n+1, bits.OnesCount64(diff))
		}
	}
	src := NewSource(7)
	base := src.Stream("node")
	numbered := src.StreamN("node", 0)
	same := 0
	for i := 0; i < 100; i++ {
		if base.Float64() == numbered.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("Stream and StreamN coincide in %d/100 draws", same)
	}
}

func TestSeedAccessor(t *testing.T) {
	if NewSource(99).Seed() != 99 {
		t.Error("Seed() mismatch")
	}
}

func TestUniformRange(t *testing.T) {
	st := NewSource(1).Stream("u")
	for i := 0; i < 1000; i++ {
		x := st.Uniform(3, 7)
		if x < 3 || x >= 7 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestUniformMean(t *testing.T) {
	st := NewSource(1).Stream("umean")
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += st.Uniform(0, 10)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.15 {
		t.Errorf("Uniform(0,10) mean = %v, want ~5", mean)
	}
}

func TestExponential(t *testing.T) {
	st := NewSource(2).Stream("exp")
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		x := st.Exponential(3)
		if x < 0 {
			t.Fatalf("Exponential negative: %v", x)
		}
		sum += x
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.2 {
		t.Errorf("Exponential(3) mean = %v", mean)
	}
	if st.Exponential(0) != 0 || st.Exponential(-1) != 0 {
		t.Error("degenerate Exponential not 0")
	}
}

func TestNormal(t *testing.T) {
	st := NewSource(3).Stream("norm")
	var acc, acc2 float64
	n := 20000
	for i := 0; i < n; i++ {
		x := st.Normal(10, 2)
		acc += x
		acc2 += x * x
	}
	mean := acc / float64(n)
	vari := acc2/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(vari-4) > 0.3 {
		t.Errorf("Normal var = %v", vari)
	}
}

func TestBernoulli(t *testing.T) {
	st := NewSource(4).Stream("bern")
	if st.Bernoulli(0) {
		t.Error("p=0 returned true")
	}
	if !st.Bernoulli(1) {
		t.Error("p=1 returned false")
	}
	if st.Bernoulli(-0.5) || !st.Bernoulli(1.5) {
		t.Error("clamping misbehaves")
	}
	hits := 0
	n := 20000
	for i := 0; i < n; i++ {
		if st.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestJitter(t *testing.T) {
	st := NewSource(5).Stream("jit")
	if st.Jitter(0) != 1 || st.Jitter(-1) != 1 {
		t.Error("no-jitter case not 1")
	}
	for i := 0; i < 1000; i++ {
		j := st.Jitter(0.25)
		if j < 0.75 || j > 1.25 {
			t.Fatalf("Jitter out of range: %v", j)
		}
	}
	// amount > 1 clamps to 1: factor in [0, 2].
	for i := 0; i < 1000; i++ {
		j := st.Jitter(5)
		if j < 0 || j > 2 {
			t.Fatalf("clamped Jitter out of range: %v", j)
		}
	}
}

func TestQuickStreamNameDeterminism(t *testing.T) {
	f := func(seed int64, name string) bool {
		a := NewSource(seed).Stream(name)
		b := NewSource(seed).Stream(name)
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUniformBounds(t *testing.T) {
	f := func(seed int64, lo, w float64) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(w) || math.IsInf(w, 0) {
			return true
		}
		lo = math.Mod(lo, 1e6)
		w = math.Abs(math.Mod(w, 1e6))
		if w == 0 {
			return true
		}
		st := NewSource(seed).Stream("q")
		x := st.Uniform(lo, lo+w)
		return x >= lo && x < lo+w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitmix64Mixes(t *testing.T) {
	// Sequential inputs must map to widely separated outputs.
	a := splitmix64(1)
	b := splitmix64(2)
	if a == b {
		t.Error("splitmix64 collision on adjacent inputs")
	}
	diff := a ^ b
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 10 {
		t.Errorf("adjacent inputs differ in only %d bits", bits)
	}
}
