// Package rng provides deterministic, named random-number streams for the
// simulator. Every stochastic component (deployment, channel loss, failure
// injection, stimulus irregularity) draws from its own stream derived from a
// single master seed, so changing one component's consumption pattern never
// perturbs another component's draws — a standard variance-reduction and
// reproducibility technique in discrete-event simulation.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a master seed from which independent named streams are derived.
type Source struct {
	seed uint64
}

// NewSource creates a master source from seed.
func NewSource(seed int64) *Source {
	return &Source{seed: uint64(seed)}
}

// Seed returns the master seed value.
func (s *Source) Seed() int64 { return int64(s.seed) }

// Stream returns the deterministic sub-stream for the given name. Calling
// Stream twice with the same name returns independently-seeded generators in
// identical initial states.
func (s *Source) Stream(name string) *Stream {
	return &Stream{Rand: rand.New(rand.NewSource(int64(streamState(nameHash(name), s.seed))))}
}

// StreamN returns a numbered variant of a named stream (e.g. one stream per
// node or per replication).
func (s *Source) StreamN(name string, n int) *Stream {
	return &Stream{Rand: rand.New(rand.NewSource(int64(streamStateN(nameHash(name), s.seed, uint64(n)))))}
}

// nameHash is the FNV-64a hash of a stream name.
func nameHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// streamState derives the generator state of a named stream: the name hash is
// mixed with the master seed via a splitmix64 round to decorrelate similar
// names.
func streamState(nameH, seed uint64) uint64 {
	return splitmix64(nameH ^ seed)
}

// streamStateN derives the state of the n-th numbered variant of a named
// stream. The index is mixed through its own splitmix64 round before being
// folded into the fully mixed base state, which then passes through a final
// round — a bare XOR of hash, seed and index before a single round let
// distinct (name, n) pairs cancel into collisions and correlate with the
// unnumbered Stream(name) state.
func streamStateN(nameH, seed, n uint64) uint64 {
	return splitmix64(streamState(nameH, seed) + splitmix64(n))
}

// splitmix64 is the finalizing mix from the splitmix64 generator; it turns
// structured seed inputs into well-distributed states.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream is a single deterministic random stream. It embeds *rand.Rand, so
// all the standard draw methods (Float64, Intn, NormFloat64, Perm, ...) are
// available directly.
type Stream struct {
	*rand.Rand
}

// Uniform returns a uniform draw in [lo, hi).
func (st *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*st.Float64()
}

// Exponential returns an exponential draw with the given mean. A mean of 0
// or less returns 0 (degenerate distribution), which callers use to disable
// jitter.
func (st *Stream) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return st.ExpFloat64() * mean
}

// Normal returns a normal draw with the given mean and standard deviation.
func (st *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*st.NormFloat64()
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (st *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return st.Float64() < p
}

// Jitter returns a multiplicative jitter factor uniform in
// [1-amount, 1+amount]; amount is clamped to [0, 1].
func (st *Stream) Jitter(amount float64) float64 {
	if amount <= 0 {
		return 1
	}
	if amount > 1 {
		amount = 1
	}
	return 1 + st.Uniform(-amount, amount)
}
