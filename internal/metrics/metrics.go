// Package metrics collects the paper's two evaluation metrics — average
// detection delay and average per-node energy consumption (§4.1) — plus the
// supporting observables (state residency, message counts, duty cycle) the
// extension experiments report.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/node"
	"repro/internal/predict"
	"repro/internal/stats"
)

// livenessReporter is implemented by agents that carry a sink-side liveness
// tracker (PAS/SAS); Collect type-asserts it to gather graceful-degradation
// metrics without the node package knowing about protocols.
type livenessReporter interface {
	LivenessStats() fault.LivenessStats
}

// predictionReporter is implemented by agents that run an arrival predictor
// (PAS); Collect type-asserts it to gather prediction-accuracy metrics the
// same way livenessReporter decouples liveness.
type predictionReporter interface {
	PredictionStats() predict.Stats
}

// NodeReport is the per-node outcome of one simulation run.
type NodeReport struct {
	ID            int
	Arrival       float64 // ground-truth arrival (+Inf if never)
	DetectedAt    float64
	Detected      bool
	Delay         float64 // DetectedAt − Arrival, valid when Detected
	EnergyJ       float64
	DutyCycle     float64
	TxCount       int
	RxCount       int
	SafeSec       float64
	AlertSec      float64
	CoveredSec    float64
	Failed        bool
	BatteryDead   bool    // failure caused by battery exhaustion
	DiedAt        float64 // battery-death instant, valid when BatteryDead
	MissedForever bool    // arrival within horizon but never detected
}

// RunReport aggregates one simulation run.
type RunReport struct {
	Nodes   []NodeReport
	Horizon float64

	// AvgDelay is the paper's average detection delay: the mean elapsed
	// time between true arrival and detection over nodes that detected.
	AvgDelay float64
	// MaxDelay is the worst detection delay.
	MaxDelay float64
	// P95Delay is the 95th-percentile delay.
	P95Delay float64
	// AvgEnergyJ is the paper's average energy consumption per sensor.
	AvgEnergyJ float64
	// Detected and Reached count nodes that detected vs nodes the stimulus
	// truly reached within the horizon.
	Detected int
	Reached  int
	// Missed counts reached-but-undetected nodes (sensing failures).
	Missed int
	// Messages is the total number of broadcasts across the network.
	Messages int
	// AvgDuty is the mean awake fraction.
	AvgDuty float64
	// BatteryDeaths counts nodes that exhausted their energy budget;
	// FirstDeath is the earliest such instant (+Inf when none died).
	BatteryDeaths int
	FirstDeath    float64

	// Graceful-degradation measures (fault-injection runs; LiveFraction is
	// 1 and the rest zero on the fault-free path).
	//
	// LiveFraction is the time-averaged fraction of nodes up over the
	// horizon.
	LiveFraction float64
	// Probes counts liveness re-probe broadcasts across all sinks and
	// ProbeEnergyJ the transmit energy they cost.
	Probes       int
	ProbeEnergyJ float64
	// FalseDead counts death declarations for nodes that were actually up
	// at declaration time (churn rejoined, or merely silent).
	FalseDead int
	// DeclaredDead counts all death declarations; StaleAge is the mean
	// At−LastHeard staleness over them (0 when none).
	DeclaredDead int
	StaleAge     float64

	// Prediction-accuracy measures (PAS runs; zero otherwise).
	//
	// PredRMSE is the root-mean-square arrival-prediction error in seconds
	// over nodes that both predicted and were reached (0 when none).
	PredRMSE float64
	// PredMaxStale is the longest a node sat on a suppressed (unannounced)
	// prediction change, in seconds.
	PredMaxStale float64
	// Suppressed counts dual-prediction report suppressions across the
	// network — RESPONSE broadcasts the model deemed unnecessary.
	Suppressed int
}

// Collect builds a RunReport from a finished network. Horizon must match the
// Run horizon so residency fractions are meaningful.
func Collect(nodes []*node.Node, horizon float64) RunReport {
	rep := RunReport{Horizon: horizon, FirstDeath: math.Inf(1), LiveFraction: 1}
	var delays []float64
	var energySum, dutySum float64
	var downSum, staleSum float64
	var errSqSum float64
	var errN int
	var byID map[int]*node.Node // lazy: only fault runs with declarations pay for it
	for _, n := range nodes {
		res := n.StateResidency()
		b := n.Meter().Breakdown()
		nr := NodeReport{
			ID:         int(n.ID()),
			Arrival:    n.TrueArrival(),
			EnergyJ:    n.Meter().TotalJ(),
			DutyCycle:  b.DutyCycle(),
			TxCount:    n.TxCount(),
			RxCount:    n.RxCount(),
			SafeSec:    res[node.StateSafe],
			AlertSec:   res[node.StateAlert],
			CoveredSec: res[node.StateCovered],
			Failed:     n.Failed(),
		}
		if at, dead := n.BatteryDead(); dead {
			nr.BatteryDead = true
			nr.DiedAt = at
			rep.BatteryDeaths++
			if at < rep.FirstDeath {
				rep.FirstDeath = at
			}
		}
		if at, ok := n.Detected(); ok {
			nr.Detected = true
			nr.DetectedAt = at
			nr.Delay = at - nr.Arrival
			delays = append(delays, nr.Delay)
			rep.Detected++
		}
		if nr.Arrival <= horizon {
			rep.Reached++
			if !nr.Detected {
				nr.MissedForever = true
				rep.Missed++
			}
		}
		rep.Messages += nr.TxCount
		energySum += nr.EnergyJ
		dutySum += nr.DutyCycle
		downSum += n.DownDuring(horizon)
		if lr, ok := n.Agent().(livenessReporter); ok {
			ls := lr.LivenessStats()
			rep.Probes += ls.Probes
			rep.ProbeEnergyJ += ls.ProbeJ
			if len(ls.Declared) > 0 && byID == nil {
				byID = make(map[int]*node.Node, len(nodes))
				for _, m := range nodes {
					byID[int(m.ID())] = m
				}
			}
			for _, d := range ls.Declared {
				rep.DeclaredDead++
				staleSum += d.At - d.LastHeard
				if peer, ok := byID[int(d.ID)]; ok && !peer.WasDownAt(d.At) {
					rep.FalseDead++
				}
			}
		}
		if pr, ok := n.Agent().(predictionReporter); ok {
			ps := pr.PredictionStats()
			errSqSum += ps.ErrSq
			errN += ps.ErrN
			rep.Suppressed += ps.Suppressed
			if ps.MaxStale > rep.PredMaxStale {
				rep.PredMaxStale = ps.MaxStale
			}
		}
		rep.Nodes = append(rep.Nodes, nr)
	}
	if len(nodes) > 0 && horizon > 0 {
		rep.LiveFraction = 1 - downSum/(horizon*float64(len(nodes)))
	}
	if rep.DeclaredDead > 0 {
		rep.StaleAge = staleSum / float64(rep.DeclaredDead)
	}
	if errN > 0 {
		rep.PredRMSE = math.Sqrt(errSqSum / float64(errN))
	}
	if len(delays) > 0 {
		rep.AvgDelay = stats.Mean(delays)
		rep.MaxDelay = maxOf(delays)
		rep.P95Delay = stats.Percentile(delays, 95)
	}
	if len(nodes) > 0 {
		rep.AvgEnergyJ = energySum / float64(len(nodes))
		rep.AvgDuty = dutySum / float64(len(nodes))
	}
	sort.Slice(rep.Nodes, func(i, j int) bool { return rep.Nodes[i].ID < rep.Nodes[j].ID })
	return rep
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// String implements fmt.Stringer with a one-line run summary.
func (r RunReport) String() string {
	return fmt.Sprintf("delay %.3fs (p95 %.3f, max %.3f) energy %.4g J/node duty %.1f%% detected %d/%d msgs %d",
		r.AvgDelay, r.P95Delay, r.MaxDelay, r.AvgEnergyJ, 100*r.AvgDuty, r.Detected, r.Reached, r.Messages)
}

// Table renders the per-node breakdown as a fixed-width text table.
func (r RunReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %9s %9s %8s %9s %6s %5s %5s %7s %7s %7s\n",
		"node", "arrival", "detected", "delay", "energy(J)", "duty%", "tx", "rx", "safe", "alert", "covered")
	for _, n := range r.Nodes {
		det, delay := "-", "-"
		if n.Detected {
			det = fmt.Sprintf("%.2f", n.DetectedAt)
			delay = fmt.Sprintf("%.3f", n.Delay)
		}
		arr := "never"
		if !math.IsInf(n.Arrival, 1) {
			arr = fmt.Sprintf("%.2f", n.Arrival)
		}
		fmt.Fprintf(&b, "%4d %9s %9s %8s %9.4f %6.1f %5d %5d %7.1f %7.1f %7.1f\n",
			n.ID, arr, det, delay, n.EnergyJ, 100*n.DutyCycle, n.TxCount, n.RxCount,
			n.SafeSec, n.AlertSec, n.CoveredSec)
	}
	return b.String()
}

// Aggregate accumulates the headline metrics across replicated runs.
type Aggregate struct {
	Delay  stats.Accumulator
	Energy stats.Accumulator
	Duty   stats.Accumulator
	Missed stats.Accumulator
	Msgs   stats.Accumulator
	MaxDel stats.Accumulator
	// Deaths counts battery exhaustions per run; FirstDeath accumulates the
	// first-death instant, right-censored at the run horizon when no node
	// died (lifetime is then at least the horizon).
	Deaths     stats.Accumulator
	FirstDeath stats.Accumulator
	// Graceful-degradation measures (see RunReport).
	Live      stats.Accumulator
	Probes    stats.Accumulator
	Declared  stats.Accumulator
	FalseDead stats.Accumulator
	StaleAge  stats.Accumulator
	ProbeJ    stats.Accumulator
	// Prediction-accuracy measures (see RunReport).
	PredRMSE   stats.Accumulator
	PredStale  stats.Accumulator
	Suppressed stats.Accumulator
}

// Add folds in one run.
func (a *Aggregate) Add(r RunReport) {
	a.Delay.Add(r.AvgDelay)
	a.Energy.Add(r.AvgEnergyJ)
	a.Duty.Add(r.AvgDuty)
	a.Missed.Add(float64(r.Missed))
	a.Msgs.Add(float64(r.Messages))
	a.MaxDel.Add(r.MaxDelay)
	a.Deaths.Add(float64(r.BatteryDeaths))
	if math.IsInf(r.FirstDeath, 1) {
		a.FirstDeath.Add(r.Horizon) // right-censored: everyone survived
	} else {
		a.FirstDeath.Add(r.FirstDeath)
	}
	a.Live.Add(r.LiveFraction)
	a.Probes.Add(float64(r.Probes))
	a.Declared.Add(float64(r.DeclaredDead))
	a.FalseDead.Add(float64(r.FalseDead))
	a.StaleAge.Add(r.StaleAge)
	a.ProbeJ.Add(r.ProbeEnergyJ)
	a.PredRMSE.Add(r.PredRMSE)
	a.PredStale.Add(r.PredMaxStale)
	a.Suppressed.Add(float64(r.Suppressed))
}

// N returns the number of runs folded in.
func (a *Aggregate) N() int { return a.Delay.N() }

// String implements fmt.Stringer.
func (a *Aggregate) String() string {
	return fmt.Sprintf("delay %s s | energy %s J | duty %.1f%% | runs %d",
		a.Delay.String(), a.Energy.String(), 100*a.Duty.Mean(), a.N())
}
