package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
)

func runNS(t *testing.T) (RunReport, float64) {
	t.Helper()
	sc := diffusion.PaperScenario()
	dep := deploy.Grid(nil, sc.Field, 4, 4, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return baseline.NewNS() },
	})
	nw.Run(sc.Horizon)
	return Collect(nw.Nodes, sc.Horizon), sc.Horizon
}

func TestCollectNSRun(t *testing.T) {
	rep, horizon := runNS(t)
	if len(rep.Nodes) != 16 {
		t.Fatalf("nodes = %d", len(rep.Nodes))
	}
	if rep.AvgDelay != 0 || rep.MaxDelay != 0 || rep.P95Delay != 0 {
		t.Errorf("NS delays = %v/%v/%v, want 0", rep.AvgDelay, rep.P95Delay, rep.MaxDelay)
	}
	wantE := 0.041 * horizon
	if math.Abs(rep.AvgEnergyJ-wantE) > 1e-9 {
		t.Errorf("AvgEnergyJ = %v, want %v", rep.AvgEnergyJ, wantE)
	}
	if rep.AvgDuty != 1 {
		t.Errorf("AvgDuty = %v", rep.AvgDuty)
	}
	if rep.Missed != 0 {
		t.Errorf("Missed = %d", rep.Missed)
	}
	if rep.Detected != rep.Reached {
		t.Errorf("Detected %d != Reached %d", rep.Detected, rep.Reached)
	}
	if rep.Messages != 0 {
		t.Errorf("Messages = %d", rep.Messages)
	}
	// Per-node invariants.
	for _, n := range rep.Nodes {
		if n.Detected && n.Delay != 0 {
			t.Errorf("node %d delay %v", n.ID, n.Delay)
		}
		if n.CoveredSec < 0 || n.SafeSec < 0 || n.AlertSec < 0 {
			t.Error("negative residency")
		}
	}
}

func TestReportStrings(t *testing.T) {
	rep, _ := runNS(t)
	if s := rep.String(); !strings.Contains(s, "delay") || !strings.Contains(s, "energy") {
		t.Errorf("String = %q", s)
	}
	tbl := rep.Table()
	if !strings.Contains(tbl, "node") || !strings.Contains(tbl, "arrival") {
		t.Error("table missing header")
	}
	if got := strings.Count(tbl, "\n"); got != 17 { // header + 16 nodes
		t.Errorf("table rows = %d", got)
	}
}

func TestCollectEmpty(t *testing.T) {
	rep := Collect(nil, 100)
	if rep.AvgDelay != 0 || rep.AvgEnergyJ != 0 || len(rep.Nodes) != 0 {
		t.Error("empty collect not neutral")
	}
}

func TestAggregate(t *testing.T) {
	rep, _ := runNS(t)
	var agg Aggregate
	agg.Add(rep)
	agg.Add(rep)
	if agg.N() != 2 {
		t.Fatalf("N = %d", agg.N())
	}
	if agg.Delay.Mean() != rep.AvgDelay {
		t.Errorf("agg delay = %v", agg.Delay.Mean())
	}
	if agg.Energy.Mean() != rep.AvgEnergyJ {
		t.Errorf("agg energy = %v", agg.Energy.Mean())
	}
	if s := agg.String(); !strings.Contains(s, "runs 2") {
		t.Errorf("String = %q", s)
	}
}

func TestMissedForever(t *testing.T) {
	// A failed node that the stimulus reaches counts as missed.
	sc := diffusion.PaperScenario()
	dep := deploy.Grid(nil, sc.Field, 3, 3, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return baseline.NewNS() },
	})
	for _, n := range nw.Nodes {
		n.FailAt(1) // everyone dies before arrival
	}
	nw.Run(sc.Horizon)
	rep := Collect(nw.Nodes, sc.Horizon)
	if rep.Missed != rep.Reached || rep.Missed == 0 {
		t.Errorf("Missed = %d, Reached = %d", rep.Missed, rep.Reached)
	}
	for _, n := range rep.Nodes {
		if !n.Failed {
			t.Error("node not marked failed")
		}
	}
	_ = geom.Vec2{}
}
