package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTelosProfileMatchesTable1(t *testing.T) {
	p := Telos()
	if p.ActiveMW != 3 {
		t.Errorf("ActiveMW = %v, want 3", p.ActiveMW)
	}
	if p.SleepUW != 15 {
		t.Errorf("SleepUW = %v, want 15", p.SleepUW)
	}
	if p.ReceiveMW != 38 {
		t.Errorf("ReceiveMW = %v, want 38", p.ReceiveMW)
	}
	if p.TransmitMW != 35 {
		t.Errorf("TransmitMW = %v, want 35", p.TransmitMW)
	}
	if p.DataRateKbps != 250 {
		t.Errorf("DataRateKbps = %v, want 250", p.DataRateKbps)
	}
	if p.TotalActiveMW != 41 {
		t.Errorf("TotalActiveMW = %v, want 41", p.TotalActiveMW)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Telos profile invalid: %v", err)
	}
	// Table 1 consistency: total active = MCU + radio listening.
	if p.ActiveMW+p.ReceiveMW != p.TotalActiveMW {
		t.Errorf("3 + 38 != %v", p.TotalActiveMW)
	}
}

func TestProfileConversions(t *testing.T) {
	p := Telos()
	if !almost(p.SleepW(), 15e-6, 1e-12) {
		t.Errorf("SleepW = %v", p.SleepW())
	}
	if !almost(p.ActiveW(), 0.041, 1e-12) {
		t.Errorf("ActiveW = %v", p.ActiveW())
	}
	// Telos transmit draw (35) is below receive (38): increment clamps to 0.
	if p.TxW() != 0 {
		t.Errorf("TxW = %v, want 0 for Telos", p.TxW())
	}
	hot := p
	hot.TransmitMW = 50
	if !almost(hot.TxW(), 12e-3, 1e-12) {
		t.Errorf("TxW = %v, want 0.012", hot.TxW())
	}
	// 250 kbps → 32 bytes = 256 bits take 1.024 ms.
	if !almost(p.TxTime(32), 256.0/250000.0, 1e-15) {
		t.Errorf("TxTime = %v", p.TxTime(32))
	}
}

func TestValidate(t *testing.T) {
	bad := Telos()
	bad.ActiveMW = -1
	if bad.Validate() == nil {
		t.Error("negative power accepted")
	}
	bad = Telos()
	bad.DataRateKbps = 0
	if bad.Validate() == nil {
		t.Error("zero data rate accepted")
	}
	bad = Telos()
	bad.TotalActiveMW = 1
	if bad.Validate() == nil {
		t.Error("total below MCU accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeSleep.String() != "sleep" || ModeActive.String() != "active" {
		t.Error("mode strings wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode string wrong")
	}
}

func TestMeterIntegration(t *testing.T) {
	p := Telos()
	m := NewMeter(p, 0, ModeActive)
	m.SetMode(10, ModeSleep)   // 10 s active
	m.SetMode(110, ModeActive) // 100 s sleep
	m.Close(120)               // 10 s active
	b := m.Breakdown()
	wantActive := 20 * p.ActiveW()
	wantSleep := 100 * p.SleepW()
	if !almost(b.ActiveJ, wantActive, 1e-12) {
		t.Errorf("ActiveJ = %v, want %v", b.ActiveJ, wantActive)
	}
	if !almost(b.SleepJ, wantSleep, 1e-12) {
		t.Errorf("SleepJ = %v, want %v", b.SleepJ, wantSleep)
	}
	if b.ActiveSec != 20 || b.SleepSec != 100 {
		t.Errorf("residency = %v/%v", b.ActiveSec, b.SleepSec)
	}
	if !almost(m.TotalJ(), wantActive+wantSleep, 1e-12) {
		t.Errorf("TotalJ = %v", m.TotalJ())
	}
	if !almost(b.DutyCycle(), 20.0/120.0, 1e-12) {
		t.Errorf("DutyCycle = %v", b.DutyCycle())
	}
	if b.Wakeups != 1 {
		t.Errorf("Wakeups = %d, want 1", b.Wakeups)
	}
}

func TestMeterWakeupCharge(t *testing.T) {
	p := Telos()
	p.WakeupJ = 0.001
	m := NewMeter(p, 0, ModeSleep)
	m.SetMode(1, ModeActive)
	m.SetMode(2, ModeSleep)
	m.SetMode(3, ModeActive)
	m.Close(4)
	b := m.Breakdown()
	if b.Wakeups != 2 {
		t.Errorf("Wakeups = %d", b.Wakeups)
	}
	if !almost(b.WakeupJ, 0.002, 1e-12) {
		t.Errorf("WakeupJ = %v", b.WakeupJ)
	}
}

func TestMeterTxCharges(t *testing.T) {
	p := Telos()
	p.TransmitMW = 50 // make the tx increment visible
	m := NewMeter(p, 0, ModeActive)
	m.ChargeTx(2)
	wantTx := 2 * p.TxW()
	m.ChargeTxBytes(1000) // 8000 bits at 250kbps = 0.032 s
	wantTx += 0.032 * p.TxW()
	m.Close(1)
	b := m.Breakdown()
	if !almost(b.TxJ, wantTx, 1e-12) {
		t.Errorf("TxJ = %v, want %v", b.TxJ, wantTx)
	}
	if !almost(b.Total(), b.ActiveJ+b.TxJ, 1e-12) {
		t.Errorf("Total = %v", b.Total())
	}
}

func TestMeterRxChargeIsZeroIncrement(t *testing.T) {
	m := NewMeter(Telos(), 0, ModeActive)
	m.ChargeRx(5)
	if b := m.Breakdown(); b.RxJ != 0 {
		t.Errorf("RxJ = %v, want 0 (listening billed in active mode)", b.RxJ)
	}
}

func TestMeterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("time backwards", func() {
		m := NewMeter(Telos(), 10, ModeActive)
		m.SetMode(5, ModeSleep)
	})
	mustPanic("negative tx", func() {
		NewMeter(Telos(), 0, ModeActive).ChargeTx(-1)
	})
	mustPanic("negative rx", func() {
		NewMeter(Telos(), 0, ModeActive).ChargeRx(-1)
	})
	mustPanic("SetMode after Close", func() {
		m := NewMeter(Telos(), 0, ModeActive)
		m.Close(1)
		m.SetMode(2, ModeSleep)
	})
}

func TestMeterCloseIdempotent(t *testing.T) {
	m := NewMeter(Telos(), 0, ModeActive)
	m.Close(10)
	total := m.TotalJ()
	m.Close(10) // second close: no-op
	if m.TotalJ() != total {
		t.Error("double Close changed total")
	}
}

func TestBreakdownString(t *testing.T) {
	m := NewMeter(Telos(), 0, ModeActive)
	m.Close(10)
	s := m.Breakdown().String()
	if !strings.Contains(s, "total") || !strings.Contains(s, "duty") {
		t.Errorf("String = %q", s)
	}
}

func TestLifetime(t *testing.T) {
	m := NewMeter(Telos(), 0, ModeActive)
	m.Close(86400) // one day always-on
	b := m.Breakdown()
	// 2× AA ≈ 20 kJ. Draw = 41 mW → ~5.6 days.
	days := b.LifetimeDays(20000, 86400)
	if days < 5 || days > 6.5 {
		t.Errorf("LifetimeDays = %v, want ~5.6", days)
	}
	if b.LifetimeDays(20000, 0) != 0 {
		t.Error("zero horizon lifetime not 0")
	}
	var zero Breakdown
	if !math.IsInf(zero.LifetimeDays(100, 10), 1) {
		t.Error("zero-draw lifetime not +Inf")
	}
}

func TestDutyCycleDegenerate(t *testing.T) {
	var b Breakdown
	if b.DutyCycle() != 0 {
		t.Error("empty breakdown duty != 0")
	}
}

func TestQuickMeterNonNegativeMonotone(t *testing.T) {
	f := func(durations []uint8, modes []bool) bool {
		m := NewMeter(Telos(), 0, ModeActive)
		now := 0.0
		prev := 0.0
		for i, d := range durations {
			now += float64(d)
			mode := ModeActive
			if i < len(modes) && modes[i] {
				mode = ModeSleep
			}
			m.SetMode(now, mode)
			if tot := m.TotalJ(); tot < prev-1e-15 {
				return false
			} else {
				prev = tot
			}
		}
		m.Close(now)
		return m.TotalJ() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSleepCheaperThanActive(t *testing.T) {
	// For any horizon split, spending more time asleep never costs more.
	f := func(split uint8) bool {
		h := 100.0
		s := float64(split) / 255 * h
		sleepy := NewMeter(Telos(), 0, ModeSleep)
		sleepy.SetMode(s, ModeActive)
		sleepy.Close(h)
		awake := NewMeter(Telos(), 0, ModeActive)
		awake.Close(h)
		return sleepy.TotalJ() <= awake.TotalJ()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
