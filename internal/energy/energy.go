// Package energy implements the power model of the PAS paper's Table 1 (the
// Telos mote characteristics) and per-node energy meters that integrate state
// residency and radio activity over virtual time.
//
// The paper's Table 1 gives: active power 3 mW (the MCU), sleep power 15 µW,
// receive power 38 mW (the radio listening/receiving), transmit power 35 mW
// (the table labels the column "Transition power"; it is the CC2420 transmit
// draw and is charged per transmitted packet), data rate 250 kbps, and total
// active power 41 mW (= MCU 3 mW + radio listening 38 mW), i.e. an awake
// sensor always keeps its radio in receive mode, which is how both PAS and
// SAS nodes detect REQUEST/RESPONSE traffic.
package energy

import (
	"fmt"
	"math"
)

// Profile holds the hardware power characteristics of a sensor platform,
// in the units the paper's Table 1 uses.
type Profile struct {
	// ActiveMW is the MCU active power in milliwatts.
	ActiveMW float64
	// SleepUW is the whole-node sleep power in microwatts.
	SleepUW float64
	// ReceiveMW is the radio receive/listen power in milliwatts.
	ReceiveMW float64
	// TransmitMW is the radio transmit power in milliwatts (Table 1's
	// "transition power" column).
	TransmitMW float64
	// DataRateKbps is the radio data rate in kilobits per second.
	DataRateKbps float64
	// TotalActiveMW is the power of an awake node (MCU + radio listening)
	// in milliwatts.
	TotalActiveMW float64
	// WakeupJ is an optional per-transition energy charge for waking from
	// sleep (not in Table 1; used by the failure/ablation extensions and
	// zero by default).
	WakeupJ float64
}

// Telos returns the profile of the Telos mote exactly as printed in the
// paper's Table 1.
func Telos() Profile {
	return Profile{
		ActiveMW:      3,
		SleepUW:       15,
		ReceiveMW:     38,
		TransmitMW:    35,
		DataRateKbps:  250,
		TotalActiveMW: 41,
	}
}

// Validate reports an error if the profile is not physically sensible.
func (p Profile) Validate() error {
	switch {
	case p.ActiveMW < 0 || p.SleepUW < 0 || p.ReceiveMW < 0 || p.TransmitMW < 0 || p.WakeupJ < 0:
		return fmt.Errorf("energy: negative power in profile %+v", p)
	case p.DataRateKbps <= 0:
		return fmt.Errorf("energy: data rate must be positive, got %g kbps", p.DataRateKbps)
	case p.TotalActiveMW < p.ActiveMW:
		return fmt.Errorf("energy: total active power %g mW below MCU power %g mW", p.TotalActiveMW, p.ActiveMW)
	}
	return nil
}

// SleepW returns the sleep power in watts.
func (p Profile) SleepW() float64 { return p.SleepUW * 1e-6 }

// ActiveW returns the awake power (MCU + radio listening) in watts.
func (p Profile) ActiveW() float64 { return p.TotalActiveMW * 1e-3 }

// TxW returns the additional transmit power in watts. While transmitting,
// the radio draws transmit power instead of receive power, so the increment
// over the awake baseline is (transmit − receive); it is clamped at zero for
// unusual profiles whose receive draw exceeds transmit.
func (p Profile) TxW() float64 {
	d := (p.TransmitMW - p.ReceiveMW) * 1e-3
	if d < 0 {
		return 0
	}
	return d
}

// TxTime returns the time in seconds needed to transmit the given number of
// bytes at the profile's data rate.
func (p Profile) TxTime(bytes int) float64 {
	return float64(bytes*8) / (p.DataRateKbps * 1000)
}

// Mode is a node power mode.
type Mode int

// Power modes tracked by a Meter.
const (
	ModeSleep Mode = iota
	ModeActive
	numModes
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSleep:
		return "sleep"
	case ModeActive:
		return "active"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Meter integrates one node's energy use over virtual time. It tracks the
// residency in each power mode, discrete transmit/receive charges and wakeup
// transition charges. Meters are not safe for concurrent use; the simulation
// kernel is single-goroutine.
type Meter struct {
	profile  Profile
	mode     Mode
	since    float64 // virtual time of the last mode change
	residJ   [numModes]float64
	residSec [numModes]float64
	txJ      float64
	rxJ      float64
	wakeJ    float64
	wakeups  int
	closed   bool
}

// NewMeter returns a meter that starts in the given mode at virtual time
// start.
func NewMeter(p Profile, start float64, mode Mode) *Meter {
	m := &Meter{}
	m.Init(p, start, mode)
	return m
}

// Init (re)initializes a meter in place — the value-type counterpart of
// NewMeter, used by slab-allocated owners that embed meters instead of
// pointing at individually heap-allocated ones.
func (m *Meter) Init(p Profile, start float64, mode Mode) {
	*m = Meter{profile: p, mode: mode, since: start}
}

// Profile returns the meter's hardware profile.
func (m *Meter) Profile() Profile { return m.profile }

// Mode returns the current power mode.
func (m *Meter) Mode() Mode { return m.mode }

// modePowerW returns the continuous draw of a mode in watts.
func (m *Meter) modePowerW(mode Mode) float64 {
	switch mode {
	case ModeSleep:
		return m.profile.SleepW()
	default:
		return m.profile.ActiveW()
	}
}

// accrue integrates the current mode up to time now.
func (m *Meter) accrue(now float64) {
	dt := now - m.since
	if dt < 0 {
		panic(fmt.Sprintf("energy: meter time went backwards: %v -> %v", m.since, now))
	}
	m.residJ[m.mode] += dt * m.modePowerW(m.mode)
	m.residSec[m.mode] += dt
	m.since = now
}

// SetMode switches the node to the given mode at virtual time now,
// integrating the energy spent in the previous mode. A sleep→active switch
// also charges the profile's wakeup energy.
func (m *Meter) SetMode(now float64, mode Mode) {
	if m.closed {
		panic("energy: SetMode on closed meter")
	}
	m.accrue(now)
	if m.mode == ModeSleep && mode == ModeActive {
		m.wakeJ += m.profile.WakeupJ
		m.wakeups++
	}
	m.mode = mode
}

// ChargeTx adds the energy of transmitting for the given duration in seconds
// (the increment of transmit power over the awake baseline).
func (m *Meter) ChargeTx(duration float64) {
	if duration < 0 {
		panic(fmt.Sprintf("energy: negative tx duration %v", duration))
	}
	m.txJ += duration * m.profile.TxW()
}

// ChargeTxBytes charges a transmission of the given payload size using the
// profile's data rate.
func (m *Meter) ChargeTxBytes(bytes int) {
	m.ChargeTx(m.profile.TxTime(bytes))
}

// ChargeRx adds an explicit receive charge. The awake baseline already pays
// the radio listening power, so this defaults to a zero increment and exists
// for profiles that model an extra per-packet decode cost; duration is in
// seconds and the charge is duration × (receive − MCU-only listening) = 0 for
// the Telos table. It is kept as an explicit hook so channel models can
// attribute receive time per packet in reports.
func (m *Meter) ChargeRx(duration float64) {
	if duration < 0 {
		panic(fmt.Sprintf("energy: negative rx duration %v", duration))
	}
	m.rxJ += 0 * duration // listening already billed in ModeActive
}

// Close integrates the meter to the final time now. Further SetMode calls
// panic; Close is idempotent only at the same timestamp.
func (m *Meter) Close(now float64) {
	if m.closed {
		return
	}
	m.accrue(now)
	m.closed = true
}

// Reopen resumes accounting on a closed meter at virtual time now in the
// given mode, preserving all accumulated totals — the churn-recovery
// counterpart of Close (a failed node's meter closes at failure and reopens
// at reboot; the outage itself draws nothing). Reopening into active mode
// charges the profile's wakeup energy: a reboot costs at least a wake-up.
func (m *Meter) Reopen(now float64, mode Mode) {
	if !m.closed {
		panic("energy: Reopen on open meter")
	}
	if now < m.since {
		panic(fmt.Sprintf("energy: Reopen at %v before close time %v", now, m.since))
	}
	m.closed = false
	m.since = now
	m.mode = mode
	if mode == ModeActive {
		m.wakeJ += m.profile.WakeupJ
		m.wakeups++
	}
}

// TotalJ returns the total energy consumed so far in joules.
func (m *Meter) TotalJ() float64 {
	var t float64
	for _, j := range m.residJ {
		t += j
	}
	return t + m.txJ + m.rxJ + m.wakeJ
}

// TotalAtJ returns the energy that will have been consumed by virtual time
// now, assuming the current mode persists — without mutating the meter. The
// battery-exhaustion scheduler uses it to project the time of death.
func (m *Meter) TotalAtJ(now float64) float64 {
	dt := now - m.since
	if dt < 0 {
		panic(fmt.Sprintf("energy: TotalAtJ at %v before last accrual %v", now, m.since))
	}
	return m.TotalJ() + dt*m.modePowerW(m.mode)
}

// CurrentDrawW returns the node's continuous draw in its present mode.
func (m *Meter) CurrentDrawW() float64 { return m.modePowerW(m.mode) }

// Breakdown reports the per-component energy in joules.
type Breakdown struct {
	SleepJ    float64
	ActiveJ   float64
	TxJ       float64
	RxJ       float64
	WakeupJ   float64
	SleepSec  float64
	ActiveSec float64
	Wakeups   int
}

// Breakdown returns the per-component energy and residency report.
func (m *Meter) Breakdown() Breakdown {
	return Breakdown{
		SleepJ:    m.residJ[ModeSleep],
		ActiveJ:   m.residJ[ModeActive],
		TxJ:       m.txJ,
		RxJ:       m.rxJ,
		WakeupJ:   m.wakeJ,
		SleepSec:  m.residSec[ModeSleep],
		ActiveSec: m.residSec[ModeActive],
		Wakeups:   m.wakeups,
	}
}

// Total returns the grand total of a breakdown in joules.
func (b Breakdown) Total() float64 {
	return b.SleepJ + b.ActiveJ + b.TxJ + b.RxJ + b.WakeupJ
}

// DutyCycle returns the fraction of accounted time spent awake, in [0, 1].
func (b Breakdown) DutyCycle() float64 {
	t := b.SleepSec + b.ActiveSec
	if t <= 0 {
		return 0
	}
	return b.ActiveSec / t
}

// String implements fmt.Stringer with a compact J summary.
func (b Breakdown) String() string {
	return fmt.Sprintf("total %.4g J (active %.4g, sleep %.4g, tx %.4g, wake %.4g; duty %.1f%%)",
		b.Total(), b.ActiveJ, b.SleepJ, b.TxJ, b.WakeupJ, 100*b.DutyCycle())
}

// LifetimeDays estimates node lifetime in days for a battery of the given
// capacity (joules) under the average draw implied by the breakdown over the
// given horizon in seconds. Returns +Inf for a zero draw.
func (b Breakdown) LifetimeDays(batteryJ, horizonSec float64) float64 {
	if horizonSec <= 0 {
		return 0
	}
	draw := b.Total() / horizonSec
	if draw <= 0 {
		return math.Inf(1)
	}
	return batteryJ / draw / 86400
}
