package energy

import (
	"math"
	"testing"
)

func TestMeterReopenPreservesTotals(t *testing.T) {
	p := Telos()
	m := NewMeter(p, 0, ModeActive)
	m.Close(10)
	closedTotal := m.TotalJ()
	if closedTotal != 10*p.ActiveW() {
		t.Fatalf("TotalJ at close = %v, want %v", closedTotal, 10*p.ActiveW())
	}
	// Outage from t=10 to t=25 draws nothing; reopening into active charges
	// one wakeup (a reboot costs at least a wake-up).
	m.Reopen(25, ModeActive)
	if got := m.TotalJ(); math.Abs(got-(closedTotal+p.WakeupJ)) > 1e-12 {
		t.Errorf("TotalJ after reopen = %v, want %v", got, closedTotal+p.WakeupJ)
	}
	m.Close(30)
	b := m.Breakdown()
	if math.Abs(b.ActiveSec-15) > 1e-12 {
		t.Errorf("ActiveSec = %v, want 15 (outage must not accrue)", b.ActiveSec)
	}
	if b.Wakeups != 1 {
		t.Errorf("Wakeups = %d, want 1", b.Wakeups)
	}
}

func TestMeterReopenIntoSleepIsFree(t *testing.T) {
	m := NewMeter(Telos(), 0, ModeSleep)
	m.Close(5)
	before := m.TotalJ()
	m.Reopen(8, ModeSleep)
	if m.TotalJ() != before {
		t.Errorf("reopening into sleep charged energy: %v -> %v", before, m.TotalJ())
	}
	if m.Mode() != ModeSleep {
		t.Errorf("Mode = %v, want sleep", m.Mode())
	}
}

func TestMeterReopenPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	open := NewMeter(Telos(), 0, ModeActive)
	mustPanic("Reopen on open meter", func() { open.Reopen(1, ModeActive) })
	closed := NewMeter(Telos(), 0, ModeActive)
	closed.Close(10)
	mustPanic("Reopen before close time", func() { closed.Reopen(9, ModeActive) })
}

func TestMeterTotalAtJProjectsWithoutMutating(t *testing.T) {
	p := Telos()
	m := NewMeter(p, 0, ModeActive)
	m.SetMode(4, ModeSleep)
	want := 4*p.ActiveW() + p.WakeupJ*0 + 6*p.SleepW() // no wakeup: started active
	if got := m.TotalAtJ(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalAtJ(10) = %v, want %v", got, want)
	}
	// Projection must not move the accrual point.
	if got := m.TotalAtJ(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("second TotalAtJ(10) = %v, want %v (projection mutated meter)", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("TotalAtJ before last accrual did not panic")
		}
	}()
	m.TotalAtJ(3)
}

func TestMeterCurrentDrawW(t *testing.T) {
	p := Telos()
	m := NewMeter(p, 0, ModeActive)
	if got := m.CurrentDrawW(); got != p.ActiveW() {
		t.Errorf("active draw = %v, want %v", got, p.ActiveW())
	}
	m.SetMode(1, ModeSleep)
	if got := m.CurrentDrawW(); got != p.SleepW() {
		t.Errorf("sleep draw = %v, want %v", got, p.SleepW())
	}
}
