package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/predict"
)

func TestMessageSizes(t *testing.T) {
	if s := (Request{}).Size(); s != 12 {
		t.Errorf("Request size = %d, want 12 (11B header + tag)", s)
	}
	want := 11 + responsePayload
	if s := (Response{}).Size(); s != want {
		t.Errorf("Response size = %d, want %d", s, want)
	}
	// A response must fit a 127-byte 802.15.4 frame.
	if (Response{}).Size() > 127 {
		t.Error("response exceeds a single 802.15.4 frame")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := Response{
		Pos:              geom.V(12.5, -3.25),
		State:            node.StateAlert,
		Velocity:         geom.V(0.5, -0.125),
		HasVelocity:      true,
		PredictedArrival: 42.75,
		DetectedAt:       40.5,
		Detected:         true,
	}
	got, err := DecodeResponse(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestResponseRoundTripInf(t *testing.T) {
	r := Response{Pos: geom.V(1, 2), PredictedArrival: math.Inf(1)}
	got, err := DecodeResponse(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.PredictedArrival, 1) {
		t.Errorf("PredictedArrival = %v", got.PredictedArrival)
	}
	if got.HasVelocity || got.Detected {
		t.Error("flags leaked")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeResponse(nil); err == nil {
		t.Error("nil payload accepted")
	}
	if _, err := DecodeResponse(make([]byte, 5)); err == nil {
		t.Error("short payload accepted")
	}
	buf := (Response{}).Encode()
	buf[0] = byte(MsgRequest)
	if _, err := DecodeResponse(buf); err == nil {
		t.Error("wrong type accepted")
	}
}

func TestQuickResponseRoundTrip(t *testing.T) {
	f := func(px, py, vx, vy, pa, da float64, hasVel, det bool, st uint8) bool {
		clean := func(x float64) float64 {
			if math.IsNaN(x) {
				return 0
			}
			return x
		}
		r := Response{
			Pos:              geom.V(clean(px), clean(py)),
			State:            node.State(st % 3),
			Velocity:         geom.V(clean(vx), clean(vy)),
			HasVelocity:      hasVel,
			PredictedArrival: clean(pa),
			DetectedAt:       clean(da),
			Detected:         det,
		}
		got, err := DecodeResponse(r.Encode())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSleepScheduleRamp(t *testing.T) {
	s := NewSleepSchedule(1, 2, 6)
	want := []float64{1, 3, 5, 6, 6, 6}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("Next #%d = %v, want %v", i, got, w)
		}
	}
}

func TestSleepScheduleCurrentAndReset(t *testing.T) {
	s := NewSleepSchedule(2, 1, 4)
	if s.Current() != 2 {
		t.Errorf("initial Current = %v", s.Current())
	}
	s.Next()
	if s.Current() != 3 {
		t.Errorf("Current after one = %v", s.Current())
	}
	s.Next()
	s.Next()
	s.Next()
	if s.Current() != 4 {
		t.Errorf("saturated Current = %v", s.Current())
	}
	s.Reset()
	if s.Next() != 2 {
		t.Error("Reset did not restart the ramp")
	}
}

func TestSleepScheduleInitAboveMax(t *testing.T) {
	s := NewSleepSchedule(10, 1, 4)
	if got := s.Next(); got != 4 {
		t.Errorf("clamped first interval = %v", got)
	}
}

func TestSleepScheduleZeroIncrement(t *testing.T) {
	s := NewSleepSchedule(3, 0, 10)
	for i := 0; i < 5; i++ {
		if got := s.Next(); got != 3 {
			t.Fatalf("constant schedule produced %v", got)
		}
	}
}

func TestSleepSchedulePanics(t *testing.T) {
	cases := []struct {
		name           string
		init, inc, max float64
	}{
		{"zero init", 0, 1, 5},
		{"zero max", 1, 1, 0},
		{"negative increment", 1, -1, 5},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			NewSleepSchedule(c.init, c.inc, c.max)
		}()
	}
}

func TestQuickScheduleMonotoneBounded(t *testing.T) {
	f := func(rawInit, rawInc, rawMax float64, steps uint8) bool {
		init := math.Abs(math.Mod(rawInit, 10)) + 0.1
		inc := math.Abs(math.Mod(rawInc, 5))
		max := math.Abs(math.Mod(rawMax, 50)) + 0.1
		s := NewSleepSchedule(init, inc, max)
		prev := 0.0
		for i := 0; i < int(steps%50)+1; i++ {
			got := s.Next()
			if got < prev-1e-12 || got > max+1e-12 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.AlertThreshold = -1 },
		func(c *Config) { c.SleepInit = 0 },
		func(c *Config) { c.SleepMax = -1 },
		func(c *Config) { c.SleepIncrement = -1 },
		func(c *Config) { c.ResponseWindow = 0 },
		func(c *Config) { c.AlertReassess = 0 },
		func(c *Config) { c.DetectionTimeout = 0 },
		func(c *Config) { c.SignificantChange = -0.1 },
		func(c *Config) { c.MaxReportAge = -1 },
		func(c *Config) { c.ResponseStagger = -1 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestResponseHasDirectionRoundTrip(t *testing.T) {
	// The speed-only wire representation (satellite of the predictor PR):
	// HasVelocity with HasDirection clear marks a SAS-style magnitude-only
	// report. The bit must survive both the byte codec and the envelope
	// mapping, independently of the other flags.
	for _, hasDir := range []bool{false, true} {
		r := Response{
			Pos: geom.V(3, 4), State: node.StateCovered,
			Velocity: ScalarVelocity(2), HasVelocity: true, HasDirection: hasDir,
			PredictedArrival: 9, DetectedAt: 9, Detected: true,
		}
		got, err := DecodeResponse(r.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Errorf("byte codec: got %+v, want %+v", got, r)
		}
		if env := ResponseFromEnvelope(r.Envelope()); env != r {
			t.Errorf("envelope: got %+v, want %+v", env, r)
		}
	}
}

func TestSignificantChange(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		old, new float64
		want     bool
	}{
		{inf, 20, true},   // unknown → known
		{20, inf, true},   // known → unknown
		{inf, inf, false}, // still unknown
		{20, 21, false},   // 10% change at now=10: (11-10)/10 = 10% < 20%
		{20, 25, true},    // 50% change
		{20, 20, false},   // unchanged
	}
	for _, c := range cases {
		if got := predict.SignificantChange(c.old, c.new, 0.2, 10); got != c.want {
			t.Errorf("SignificantChange(%v→%v) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}
