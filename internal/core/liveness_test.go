package core

import (
	"testing"

	"repro/internal/diffusion"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/sim"
)

// TestAgentLivenessDeclaresSilentPeer mirrors the SAS liveness test for the
// PAS agent: a covered (always-awake) node observes one neighbour, the
// neighbour crashes, and the liveness tick must suspect, re-probe with
// backoff, and declare it dead — all through the real timer path.
func TestAgentLivenessDeclaresSilentPeer(t *testing.T) {
	k, m := rig()
	stim := diffusion.NewRadialFront(geom.V(0, 0), 1, 0) // covers node 0 from t=0
	cfg := testConfig()
	cfg.Liveness = fault.LivenessConfig{
		MissK: 1, Interval: 1, BackoffInit: 1, BackoffMax: 2, MaxProbes: 2,
	}
	agent := New(cfg)
	n := addNode(k, m, 0, geom.V(0, 0), stim, agent)
	peer := &stubAgent{}
	pn := addNode(k, m, 1, geom.V(5, 0), stim, peer)
	k.Schedule(0.2, func(*sim.Kernel) { pn.Broadcast(Request{}.Envelope()) })
	pn.FailAt(0.5)
	n.Start()
	pn.Start()
	k.RunUntil(8)

	st := agent.LivenessStats()
	if st.Peers != 1 {
		t.Fatalf("Peers = %d, want 1", st.Peers)
	}
	if st.Probes != 2 {
		t.Errorf("Probes = %d, want 2 (suspicion probe + one backed-off re-probe)", st.Probes)
	}
	if len(st.Declared) != 1 {
		t.Fatalf("Declared = %v, want exactly one declaration", st.Declared)
	}
	d := st.Declared[0]
	if d.ID != 1 {
		t.Errorf("declared peer %d, want 1", d.ID)
	}
	if d.At < 4 || d.At > 6 {
		t.Errorf("declared at t=%v, want ~5", d.At)
	}
}

// TestAgentLivenessStatsZeroWhenDisabled pins the nil-tracker snapshot.
func TestAgentLivenessStatsZeroWhenDisabled(t *testing.T) {
	agent := New(testConfig())
	st := agent.LivenessStats()
	if st.Peers != 0 || st.Probes != 0 || st.ProbeJ != 0 || len(st.Declared) != 0 {
		t.Errorf("disabled liveness stats = %+v, want zero value", st)
	}
}

// TestNewSlabFallsBackPastCapacity exercises the slab factory: in-slab
// agents while capacity lasts, heap fallback after, and both functional.
func TestNewSlabFallsBackPastCapacity(t *testing.T) {
	factory := NewSlab(testConfig(), 1)
	a1 := factory()
	a2 := factory()
	if a1 == nil || a2 == nil {
		t.Fatal("slab factory returned nil agent")
	}
	if a1 == a2 {
		t.Fatal("slab factory returned the same agent twice")
	}
	k, m := rig()
	stim := farStimulus()
	n1 := addNode(k, m, 0, geom.V(0, 0), stim, a1)
	n2 := addNode(k, m, 1, geom.V(5, 0), stim, a2)
	n1.Start()
	n2.Start()
	k.RunUntil(5)
	if n1.Now() != 5 || n2.Now() != 5 {
		t.Errorf("slab agents stalled: clocks %v, %v, want 5", n1.Now(), n2.Now())
	}
}

// TestNewSlabPanicsOnInvalidConfig pins the eager validation in the factory.
func TestNewSlabPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSlab accepted an invalid config without panicking")
		}
	}()
	bad := testConfig()
	bad.SleepInit = -1
	NewSlab(bad, 1)
}
