// Package core implements the paper's primary contribution: PAS, the
// Prediction-based Adaptive Sleeping protocol. It contains the two-message
// REQUEST/RESPONSE wire protocol (§3.2), the spreading-velocity estimators
// and arrival-time predictor (§3.3), the linearly-increasing sleep schedule
// and the adaptive agent state machine (§3.4, Fig. 3).
package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
)

// MsgType discriminates the two PAS message kinds.
type MsgType uint8

// The PAS wire-protocol message types (paper §3.2).
const (
	MsgRequest MsgType = iota + 1
	MsgResponse
)

// headerBytes is the on-air overhead per frame (preamble, addressing, CRC) —
// the 802.15.4 MAC header the Telos radio uses.
const headerBytes = 11

// Request asks neighbours for their stimulus information. It carries no
// payload (paper: "This message does not have any payload").
type Request struct{}

// Size implements radio.Message.
func (Request) Size() int { return headerBytes + 1 } // header + type tag

// Envelope packs the request into the radio's value-dispatch envelope — the
// allocation-free form every broadcast uses.
func (Request) Envelope() radio.Envelope {
	return radio.Envelope{Kind: radio.KindRequest, Wire: uint16(Request{}.Size())}
}

// Response carries a sensor's stimulus knowledge (paper: "a sensor's
// location, state, the estimated spread speed and the predicted arrival time
// of the stimulus"). DetectedAt is additionally included for covered
// senders: the actual-velocity formula needs the elapsed time between the
// neighbours' detections (t_I), which is only computable from the reported
// detection instant.
type Response struct {
	// Pos is the sender's location.
	Pos geom.Vec2
	// State is the sender's protocol state.
	State node.State
	// Velocity is the sender's spreading-velocity estimate; valid only when
	// HasVelocity is set. HasDirection reports whether the vector's
	// direction is meaningful: PAS velocity estimates are true vectors,
	// while SAS reports a bare speed through ScalarVelocity and clears the
	// bit, so receivers never project along the fabricated +x heading.
	Velocity     geom.Vec2
	HasVelocity  bool
	HasDirection bool
	// PredictedArrival is the sender's predicted absolute stimulus arrival
	// time at its own position (+Inf when unknown; the sender's detection
	// time once covered).
	PredictedArrival float64
	// DetectedAt is the absolute time the sender detected the stimulus;
	// valid only when Detected is set.
	DetectedAt float64
	Detected   bool
}

// responsePayload is the encoded payload length: type tag, flags, 2×2
// float64 vectors, 2 float64 times, 1 state byte.
const responsePayload = 1 + 1 + 32 + 16 + 1

// Size implements radio.Message.
func (Response) Size() int { return headerBytes + responsePayload }

// Response flag bits, shared by the byte codec and the envelope mapping.
const (
	flagHasVelocity  = 1 << 0
	flagDetected     = 1 << 1
	flagHasDirection = 1 << 2
)

// Envelope packs the response into the radio's value-dispatch envelope. The
// mapping mirrors AppendEncode field-for-field (same flag bits, same float
// order), so the envelope is exactly as wire-faithful as the byte codec.
func (r Response) Envelope() radio.Envelope {
	var flags uint8
	if r.HasVelocity {
		flags |= flagHasVelocity
	}
	if r.Detected {
		flags |= flagDetected
	}
	if r.HasDirection {
		flags |= flagHasDirection
	}
	return radio.Envelope{
		Kind:  radio.KindResponse,
		Flags: flags,
		State: uint8(r.State),
		Wire:  uint16(Response{}.Size()),
		F: [6]float64{
			r.Pos.X, r.Pos.Y,
			r.Velocity.X, r.Velocity.Y,
			r.PredictedArrival, r.DetectedAt,
		},
	}
}

// ResponseFromEnvelope unpacks a KindResponse envelope produced by
// Response.Envelope. It is the receive-side inverse and allocates nothing.
func ResponseFromEnvelope(env radio.Envelope) Response {
	return Response{
		Pos:              geom.V(env.F[0], env.F[1]),
		State:            node.State(env.State),
		Velocity:         geom.V(env.F[2], env.F[3]),
		HasVelocity:      env.Flags&flagHasVelocity != 0,
		HasDirection:     env.Flags&flagHasDirection != 0,
		PredictedArrival: env.F[4],
		DetectedAt:       env.F[5],
		Detected:         env.Flags&flagDetected != 0,
	}
}

// Encode serializes the response payload (excluding the simulated-only radio
// header) for codec tests and trace dumps. The simulation itself passes
// messages by value; Encode/Decode prove the message is wire-realizable.
// Encode allocates the result; hot paths should use AppendEncode with a
// reused buffer.
func (r Response) Encode() []byte {
	return r.AppendEncode(make([]byte, 0, responsePayload))
}

// AppendEncode appends the encoded payload to dst and returns the extended
// slice. With a pre-grown buffer (dst[:0] of a prior result) the encode →
// decode round trip is allocation-free.
func (r Response) AppendEncode(dst []byte) []byte {
	var flags byte
	if r.HasVelocity {
		flags |= flagHasVelocity
	}
	if r.Detected {
		flags |= flagDetected
	}
	if r.HasDirection {
		flags |= flagHasDirection
	}
	dst = append(dst, byte(MsgResponse), flags)
	for _, f := range [...]float64{r.Pos.X, r.Pos.Y, r.Velocity.X, r.Velocity.Y, r.PredictedArrival, r.DetectedAt} {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return append(dst, byte(r.State))
}

// DecodeResponse parses a payload produced by Encode. It reads the buffer in
// place and allocates nothing.
func DecodeResponse(buf []byte) (Response, error) {
	if len(buf) != responsePayload {
		return Response{}, fmt.Errorf("core: response payload is %d bytes, want %d", len(buf), responsePayload)
	}
	if MsgType(buf[0]) != MsgResponse {
		return Response{}, fmt.Errorf("core: payload type %d is not a response", buf[0])
	}
	var r Response
	flags := buf[1]
	r.HasVelocity = flags&flagHasVelocity != 0
	r.Detected = flags&flagDetected != 0
	r.HasDirection = flags&flagHasDirection != 0
	var vals [6]float64
	off := 2
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	r.Pos = geom.V(vals[0], vals[1])
	r.Velocity = geom.V(vals[2], vals[3])
	r.PredictedArrival = vals[4]
	r.DetectedAt = vals[5]
	r.State = node.State(buf[off])
	return r, nil
}
