package core

import (
	"bytes"
	"testing"

	"repro/internal/geom"
	"repro/internal/node"
)

func codecFixture() Response {
	return Response{
		Pos: geom.V(1, 2), State: node.StateAlert,
		Velocity: geom.V(0.5, 0.25), HasVelocity: true, HasDirection: true,
		PredictedArrival: 42, DetectedAt: 40, Detected: true,
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	r := codecFixture()
	if !bytes.Equal(r.Encode(), r.AppendEncode(nil)) {
		t.Error("AppendEncode(nil) differs from Encode()")
	}
	prefix := []byte{0xde, 0xad}
	out := r.AppendEncode(prefix)
	if !bytes.Equal(out[:2], prefix) || !bytes.Equal(out[2:], r.Encode()) {
		t.Error("AppendEncode does not append after an existing prefix")
	}
}

// TestResponseCodecZeroAllocsSteadyState pins the encode → decode round trip
// at zero allocations with a reused buffer, so future codec changes can't
// silently reintroduce per-message garbage on the trace/dump paths.
func TestResponseCodecZeroAllocsSteadyState(t *testing.T) {
	r := codecFixture()
	buf := r.Encode() // pre-grow the buffer
	var decoded Response
	var decodeErr error
	allocs := testing.AllocsPerRun(1000, func() {
		buf = r.AppendEncode(buf[:0])
		decoded, decodeErr = DecodeResponse(buf)
	})
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if decoded != r {
		t.Fatalf("round trip = %+v, want %+v", decoded, r)
	}
	if allocs != 0 {
		t.Errorf("codec round trip allocates %g allocs/op, want 0", allocs)
	}
}
