package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
)

// NeighborReport is the per-neighbour knowledge a PAS node accumulates from
// RESPONSE messages.
type NeighborReport struct {
	ID               radio.NodeID
	Pos              geom.Vec2
	State            node.State
	Velocity         geom.Vec2
	HasVelocity      bool
	PredictedArrival float64
	DetectedAt       float64
	Detected         bool
	ReceivedAt       float64 // local receive time, for aging
}

// ScalarVelocity encodes a speed-only (directionless) estimate as a vector
// whose magnitude carries the speed; SAS uses it since its simple estimator
// produces no direction.
func ScalarVelocity(speed float64) geom.Vec2 { return geom.V(speed, 0) }

// reportFromResponse converts a wire response into a stored report.
func reportFromResponse(from radio.NodeID, r Response, now float64) NeighborReport {
	return NeighborReport{
		ID:               from,
		Pos:              r.Pos,
		State:            r.State,
		Velocity:         r.Velocity,
		HasVelocity:      r.HasVelocity,
		PredictedArrival: r.PredictedArrival,
		DetectedAt:       r.DetectedAt,
		Detected:         r.Detected,
		ReceivedAt:       now,
	}
}

// ActualVelocity implements the paper's §3.3 estimator for a node X that has
// just detected the stimulus:
//
//	v_X = (1/n) Σ_I  vec(I→X) / t_I
//
// over covered neighbours I, where t_I is the elapsed time between I's
// detection and X's detection (xDetectedAt − I.DetectedAt). Neighbours whose
// elapsed time is below minDt are skipped: a near-simultaneous detection
// pair divides a metre-scale baseline by a near-zero time and produces a
// wildly overestimated speed (sensing latency noise dominates), so such
// pairs carry no usable velocity information. The boolean result reports
// whether any neighbour contributed.
func ActualVelocity(x geom.Vec2, xDetectedAt float64, reports []NeighborReport, minDt float64) (geom.Vec2, bool) {
	if minDt <= 0 {
		minDt = 1e-9
	}
	var sum geom.Vec2
	n := 0
	for _, r := range reports {
		if !r.Detected || r.State != node.StateCovered {
			continue
		}
		dt := xDetectedAt - r.DetectedAt
		if dt < minDt {
			continue
		}
		sum = sum.Add(x.Sub(r.Pos).Scale(1 / dt))
		n++
	}
	if n == 0 {
		return geom.Vec2{}, false
	}
	return sum.Scale(1 / float64(n)), true
}

// ExpectedVelocity implements the paper's expected-velocity estimator for
// alert/safe nodes: the arithmetic mean of the velocity vectors reported by
// covered or alert neighbours.
func ExpectedVelocity(reports []NeighborReport) (geom.Vec2, bool) {
	var sum geom.Vec2
	n := 0
	for _, r := range reports {
		if !r.HasVelocity {
			continue
		}
		if r.State != node.StateCovered && r.State != node.StateAlert {
			continue
		}
		sum = sum.Add(r.Velocity)
		n++
	}
	if n == 0 {
		return geom.Vec2{}, false
	}
	return sum.Scale(1 / float64(n)), true
}

// ArrivalETA returns the estimated time from now until the stimulus reaches
// x, according to a single neighbour report, implementing the paper's
//
//	t_X = |I→X| · cos θ_I / v_I
//
// with θ_I the angle between the neighbour's velocity and vec(I→X). The raw
// formula measures travel time from the neighbour's position; it is anchored
// at the moment the front was (or is predicted to be) at the neighbour:
// the detection instant for covered neighbours, the neighbour's own
// predicted arrival for alert neighbours. cos θ ≤ 0 (front moving away) or
// missing velocity yields +Inf; estimates are clamped at 0 (already due).
func ArrivalETA(x geom.Vec2, now float64, r NeighborReport) float64 {
	if !r.HasVelocity {
		return math.Inf(1)
	}
	speed := r.Velocity.Norm()
	if speed <= 0 {
		return math.Inf(1)
	}
	ix := x.Sub(r.Pos)
	dist := ix.Norm()
	if dist == 0 {
		// Co-located with the neighbour: due when the front is at I.
		dist = 0
	}
	cos := r.Velocity.CosBetween(ix)
	if dist > 0 && cos <= 0 {
		return math.Inf(1)
	}
	travel := dist * cos / speed

	var ref float64
	switch {
	case r.Detected:
		ref = r.DetectedAt
	case !math.IsInf(r.PredictedArrival, 1) && !math.IsNaN(r.PredictedArrival):
		ref = r.PredictedArrival
	default:
		return math.Inf(1)
	}
	eta := ref - now + travel
	if eta < 0 {
		return 0
	}
	return eta
}

// MinETA aggregates neighbour reports into the node's expected arrival time
// (paper: "the value of expected arrival time is simply the minimum of these
// arrival times"). Reports older than maxAge are ignored; maxAge <= 0
// disables aging.
func MinETA(x geom.Vec2, now float64, reports []NeighborReport, maxAge float64) float64 {
	best := math.Inf(1)
	for _, r := range reports {
		if maxAge > 0 && now-r.ReceivedAt > maxAge {
			continue
		}
		if eta := ArrivalETA(x, now, r); eta < best {
			best = eta
		}
	}
	return best
}

// MeanETA is the ablation variant that averages finite per-neighbour
// estimates instead of taking the minimum; the ext-estimator experiment
// compares the two aggregation rules.
func MeanETA(x geom.Vec2, now float64, reports []NeighborReport, maxAge float64) float64 {
	var sum float64
	n := 0
	for _, r := range reports {
		if maxAge > 0 && now-r.ReceivedAt > maxAge {
			continue
		}
		if eta := ArrivalETA(x, now, r); !math.IsInf(eta, 1) {
			sum += eta
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}
