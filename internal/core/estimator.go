package core

import (
	"repro/internal/geom"
	"repro/internal/predict"
	"repro/internal/radio"
)

// NeighborReport is the per-neighbour knowledge a PAS node accumulates from
// RESPONSE messages. The type (and the §3.3 estimators below) live in the
// predict package since PR 9 carved prediction into a plugin layer; the
// aliases keep the historical core names working.
type NeighborReport = predict.Report

// ScalarVelocity encodes a speed-only (directionless) estimate as a vector
// whose magnitude carries the speed; SAS uses it since its simple estimator
// produces no direction. Responses built from it must leave HasDirection
// unset, so receivers never mistake the placeholder +x heading for a real
// one.
func ScalarVelocity(speed float64) geom.Vec2 { return predict.SpeedOnly(speed) }

// reportFromResponse converts a wire response into a stored report.
func reportFromResponse(from radio.NodeID, r Response, now float64) NeighborReport {
	return NeighborReport{
		ID:               from,
		Pos:              r.Pos,
		State:            r.State,
		Velocity:         r.Velocity,
		HasVelocity:      r.HasVelocity,
		HasDirection:     r.HasDirection,
		PredictedArrival: r.PredictedArrival,
		DetectedAt:       r.DetectedAt,
		Detected:         r.Detected,
		ReceivedAt:       now,
	}
}

// ActualVelocity is the paper's §3.3 covered-node estimator; see
// predict.ActualVelocity.
func ActualVelocity(x geom.Vec2, xDetectedAt float64, reports []NeighborReport, minDt float64) (geom.Vec2, bool) {
	return predict.ActualVelocity(x, xDetectedAt, reports, minDt)
}

// ExpectedVelocity is the paper's alert/safe-node estimator; see
// predict.ExpectedVelocity.
func ExpectedVelocity(reports []NeighborReport) (geom.Vec2, bool) {
	return predict.ExpectedVelocity(reports)
}

// ArrivalETA is the paper's single-report arrival estimate; see
// predict.ArrivalETA.
func ArrivalETA(x geom.Vec2, now float64, r NeighborReport) float64 {
	return predict.ArrivalETA(x, now, r)
}

// MinETA is the paper's minimum aggregation rule; see predict.MinETA.
func MinETA(x geom.Vec2, now float64, reports []NeighborReport, maxAge float64) float64 {
	return predict.MinETA(x, now, reports, maxAge)
}

// MeanETA is the mean-aggregation ablation; see predict.MeanETA.
func MeanETA(x geom.Vec2, now float64, reports []NeighborReport, maxAge float64) float64 {
	return predict.MeanETA(x, now, reports, maxAge)
}
