package core

import (
	"slices"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/predict"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Agent is one node's PAS protocol instance, implementing the state machine
// of the paper's Fig. 3:
//
//	safe    — sleeps on the linear schedule; on wake it probes with a
//	          REQUEST, waits ResponseWindow, and either alerts (expected
//	          arrival below the threshold) or sleeps longer.
//	alert   — stays awake, answers REQUESTs, refines its prediction on
//	          every RESPONSE (rebroadcasting significant changes), and
//	          periodically reassesses: back to safe when the expected
//	          arrival rises above the threshold, covered on detection.
//	covered — stays awake, answers REQUESTs; on detection it REQUESTs its
//	          neighbours, computes the actual spreading velocity from the
//	          covered ones and broadcasts the new estimate. When the
//	          stimulus leaves, a detection timeout returns it to safe.
//
// Prediction itself — the velocity estimate, the arrival-time model, and
// the rebroadcast gate — is delegated to the predict.Model selected by
// cfg.Predictor; the zero spec is the paper's §3.3 estimator.
type Agent struct {
	cfg      Config
	n        *node.Node // bound at Init; the arg handlers below reach it here
	reports  map[radio.NodeID]NeighborReport
	scratch  []NeighborReport // reused snapshot buffer for the estimators
	schedule SleepSchedule

	// model is the pluggable prediction subsystem, embedded by value so
	// slab-carved agents stay allocation-free.
	model predict.Model

	decision       sim.Timer // end of a REQUEST's response window
	reassess       sim.Timer // alert-state periodic re-evaluation
	coveredTimeout sim.Timer // covered → safe after the stimulus leaves

	// Liveness tracking (nil/unarmed unless cfg.Liveness is enabled, so the
	// fault-free path pays nothing).
	live     *fault.Liveness
	liveTick sim.Timer

	detected   bool
	detectedAt float64
	sleepCount int // jitter sequence index
}

var _ node.Agent = (*Agent)(nil)

// New constructs a PAS agent with the given tunables; the config is
// validated once here so misconfigured experiments fail loudly.
func New(cfg Config) *Agent {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &Agent{}
	a.fill(cfg)
	return a
}

// fill initializes an agent in place — shared by New and the slab factory.
func (a *Agent) fill(cfg Config) {
	*a = Agent{
		cfg:      cfg,
		reports:  make(map[radio.NodeID]NeighborReport),
		schedule: MakeSleepSchedule(cfg.SleepInit, cfg.SleepIncrement, cfg.SleepMax),
	}
	a.model.Init(cfg.Predictor, predict.EstimatorConfig{
		UseMeanETA:              cfg.UseMeanETA,
		MaxReportAge:            cfg.MaxReportAge,
		DisableExpectedVelocity: cfg.DisableExpectedVelocity,
	})
}

// NewSlab returns a factory producing up to n agents carved from one
// contiguous slab — the bulk-construction path of node.BuildNetwork, which
// would otherwise pay one heap allocation per agent at 10k-node scale.
// Agents past n (never requested in practice: deployments are fixed-size)
// fall back to individual allocation. The config is validated once.
func NewSlab(cfg Config, n int) func() *Agent {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	slab := make([]Agent, 0, n)
	return func() *Agent {
		if len(slab) == cap(slab) {
			return New(cfg)
		}
		slab = slab[:len(slab)+1]
		a := &slab[len(slab)-1]
		a.fill(cfg)
		return a
	}
}

// Package-level arg handlers for the agent's timers and staggered sends.
// Re-arming a timer with a long-lived handler and the agent as the argument
// allocates nothing, where the previous per-arm closures made every probe,
// reassessment and staggered response an allocation — the dominant
// steady-state garbage at 10k nodes.
func agentDecide(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	a.decide(a.n)
}

func agentReassess(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	n := a.n
	if n.State() != node.StateAlert {
		return
	}
	if n.Sense() {
		return // detection takes over (OnDetect ran)
	}
	if eta := a.refreshEstimate(n); eta >= a.cfg.AlertThreshold {
		a.enterSafe(n, true)
		return
	}
	a.armReassess(n)
}

func agentVelocityWindow(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	n := a.n
	v, ok := ActualVelocity(n.Pos(), a.detectedAt, a.reportSlice(), a.cfg.MinVelocityDt)
	if ok {
		a.model.SetVelocity(v)
	}
	if a.cfg.Hook != nil && a.cfg.Hook.Velocity != nil {
		a.cfg.Hook.Velocity(int(n.ID()), v.X, v.Y, ok)
	}
	a.sendResponse(n)
}

func agentCoveredTimeout(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	n := a.n
	if n.State() != node.StateCovered || !n.IsAwake() {
		return
	}
	if n.CoveredNow() {
		return // stimulus came back during the timeout
	}
	a.enterSafe(n, true)
}

func agentStaggerSend(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	if a.n.IsAwake() {
		a.sendResponse(a.n)
	}
}

// agentLivenessTick is the periodic liveness scan: advance the tracker and,
// when a suspect peer's backoff expired, broadcast one re-probe REQUEST
// (charging its transmit energy to the probe budget). The timer re-arms
// through ResetArg every tick — no per-event closures — and keeps ticking
// across sleep and churn outages (the handler only acts while awake).
func agentLivenessTick(_ *sim.Kernel, arg any) {
	a := arg.(*Agent)
	n := a.n
	if n.IsAwake() && a.live.Tick(n.Now()) {
		before := n.Meter().Breakdown().TxJ
		n.Broadcast(Request{}.Envelope())
		a.live.AddProbeEnergy(n.Meter().Breakdown().TxJ - before)
	}
	a.liveTick.ResetArg(a.cfg.Liveness.Interval, agentLivenessTick, a)
}

// Predicted returns the agent's current absolute arrival prediction (+Inf
// when unknown); exposed for tests and the visualizer.
func (a *Agent) Predicted() float64 { return a.model.Predicted() }

// LivenessStats snapshots the liveness tracker (zero value when tracking is
// disabled). Metrics collectors reach it through node.Agent type assertion.
func (a *Agent) LivenessStats() fault.LivenessStats {
	if a.live == nil {
		return fault.LivenessStats{}
	}
	return a.live.Stats()
}

// PredictionStats snapshots the predictor's per-run quality counters.
// Metrics collectors reach it through node.Agent type assertion.
func (a *Agent) PredictionStats() predict.Stats { return a.model.Stats() }

// Velocity returns the agent's current spreading-velocity estimate.
func (a *Agent) Velocity() (geom.Vec2, bool) { return a.model.Velocity() }

// Init implements node.Agent: boot in safe state and probe once, then start
// sleeping. (All sensors boot active; the first probe establishes whether
// anything is already happening nearby.)
func (a *Agent) Init(n *node.Node) {
	a.n = n
	a.decision.Bind(n.Kernel())
	a.reassess.Bind(n.Kernel())
	a.coveredTimeout.Bind(n.Kernel())
	if a.cfg.Liveness.Enabled() {
		a.live = fault.NewLiveness(a.cfg.Liveness)
		a.liveTick.Bind(n.Kernel())
		a.liveTick.ResetArg(a.cfg.Liveness.Interval, agentLivenessTick, a)
	}
	n.SetState(node.StateSafe)
	a.probe(n)
}

// probe sends a REQUEST and schedules the state decision at the end of the
// response window.
func (a *Agent) probe(n *node.Node) {
	n.Broadcast(Request{}.Envelope())
	a.decision.ResetArg(a.cfg.ResponseWindow, agentDecide, a)
}

// decide evaluates the freshly gathered reports and commits to alert or
// safe+sleep (safe-state behaviour of §3.2).
func (a *Agent) decide(n *node.Node) {
	if n.State() == node.StateCovered {
		return // detection happened inside the window; covered logic owns the node
	}
	eta := a.refreshEstimate(n)
	alert := eta < a.cfg.AlertThreshold
	if a.cfg.Hook != nil && a.cfg.Hook.Decision != nil {
		a.cfg.Hook.Decision(int(n.ID()), eta, len(a.reports), alert)
	}
	if alert {
		a.enterAlert(n)
		return
	}
	a.enterSafe(n, false)
}

// enterAlert transitions to the alert state and announces the prediction.
func (a *Agent) enterAlert(n *node.Node) {
	wasAlert := n.State() == node.StateAlert
	n.SetState(node.StateAlert)
	if !wasAlert {
		// Entering alert is by definition a significant new prediction:
		// propagate it so farther nodes learn (the mechanism that gives PAS
		// its larger information field than SAS).
		a.sendResponse(n)
		a.armReassess(n)
	}
}

// armReassess schedules the periodic alert re-evaluation.
func (a *Agent) armReassess(n *node.Node) {
	a.reassess.ResetArg(a.cfg.AlertReassess, agentReassess, a)
}

// enterSafe transitions to safe and sleeps. resetRamp restarts the linear
// schedule (used when falling back from alert/covered, where the situation
// has changed and cautious re-probing is warranted).
func (a *Agent) enterSafe(n *node.Node, resetRamp bool) {
	a.reassess.Stop()
	n.SetState(node.StateSafe)
	if resetRamp {
		a.schedule.Reset()
	}
	a.sleepCount++
	d := a.schedule.Next() * PhaseJitter(int(n.ID()), a.sleepCount, a.cfg.SleepJitter)
	n.Sleep(d)
}

// OnWake implements node.Agent: a safe node that slept through nothing
// probes again.
func (a *Agent) OnWake(n *node.Node) {
	a.probe(n)
}

// OnDetect implements node.Agent: the covered-state entry of §3.2 ("it first
// sends a REQUEST message; then it calculates the expected arrival time
// according to its neighbors' response, and finally it sends a RESPONSE
// message to deliver the new changes" — for a detecting node the calculation
// is the actual spreading velocity).
func (a *Agent) OnDetect(n *node.Node) {
	a.detected = true
	a.detectedAt = n.Now()
	a.model.MarkDetected(a.detectedAt) // arrival is no longer a prediction
	a.reassess.Stop()
	a.decision.Stop()
	n.SetState(node.StateCovered)
	n.Broadcast(Request{}.Envelope())
	a.decision.ResetArg(a.cfg.ResponseWindow, agentVelocityWindow, a)
}

// OnStimulusGone implements node.Agent: covered → safe after the detection
// timeout (paper Fig. 3).
func (a *Agent) OnStimulusGone(n *node.Node) {
	a.coveredTimeout.ResetArg(a.cfg.DetectionTimeout, agentCoveredTimeout, a)
}

// OnMessage implements node.Agent: value-dispatch on the envelope kind, with
// boxed Request/Response accepted through the KindExt fallback so hand-wired
// tests and extensions keep working.
func (a *Agent) OnMessage(n *node.Node, from radio.NodeID, env radio.Envelope) {
	if a.live != nil {
		// Any message is life evidence, whatever its kind.
		a.live.Observe(from, n.Now())
	}
	switch env.Kind {
	case radio.KindRequest:
		a.handleRequest(n)
	case radio.KindResponse:
		a.handleResponse(n, from, ResponseFromEnvelope(env))
	case radio.KindExt:
		switch m := env.Ext.(type) {
		case Request:
			a.handleRequest(n)
		case Response:
			a.handleResponse(n, from, m)
		}
	}
}

// handleRequest answers with the node's current knowledge. Only alert and
// covered nodes respond — safe nodes have nothing fresher than what the
// requester already knows, and keeping them quiet preserves the PAS/SAS
// contrast (alert-node responses are what widen PAS's information field).
func (a *Agent) handleRequest(n *node.Node) {
	st := n.State()
	if st != node.StateAlert && st != node.StateCovered {
		return
	}
	stagger := a.cfg.ResponseStagger * float64(1+int(n.ID())%8)
	if stagger <= 0 {
		a.sendResponse(n)
		return
	}
	n.Kernel().ScheduleArg(stagger, agentStaggerSend, a)
}

// handleResponse folds a neighbour's report into the table and re-evaluates
// (alert-state behaviour of §3.2: "If a sensor receives a RESPONSE message,
// it re-calculates the expected arrival time and replies with a RESPONSE
// message if the difference between the expectations has changed
// significantly"). The rebroadcast decision itself belongs to the
// predictor: the paper kind applies the significant-change rule, the
// switching kind additionally suppresses reports within its dual-prediction
// tolerance.
func (a *Agent) handleResponse(n *node.Node, from radio.NodeID, m Response) {
	a.reports[from] = reportFromResponse(from, m, n.Now())
	switch n.State() {
	case node.StateCovered:
		// Covered nodes only serve information; their own arrival is fact.
	case node.StateAlert:
		if eta := a.refreshEstimate(n); eta >= a.cfg.AlertThreshold {
			a.enterSafe(n, true)
			return
		}
		if a.model.Announce(a.cfg.SignificantChange, n.Now()) {
			a.sendResponse(n)
		}
	case node.StateSafe:
		if a.decision.Armed() {
			return // decision at the window end will use the fresh table
		}
		// A safe node awake outside a probe window (e.g. just fell back
		// from alert within the same instant) re-evaluates directly.
		if eta := a.refreshEstimate(n); eta < a.cfg.AlertThreshold {
			a.enterAlert(n)
		}
	}
}

// refreshEstimate delegates one prediction refresh to the plugged predictor
// and returns the expected arrival in seconds from now.
func (a *Agent) refreshEstimate(n *node.Node) float64 {
	return a.model.Refresh(predict.Input{Pos: n.Pos(), Now: n.Now(), Reports: a.reportSlice()})
}

// sendResponse broadcasts the node's current knowledge.
func (a *Agent) sendResponse(n *node.Node) {
	if !n.IsAwake() {
		return
	}
	v, hasV := a.model.Velocity()
	n.Broadcast(Response{
		Pos:      n.Pos(),
		State:    n.State(),
		Velocity: v,
		// PAS velocity estimates are true vectors (§3.3), so a valid
		// velocity always carries a valid direction.
		HasVelocity:      hasV,
		HasDirection:     hasV,
		PredictedArrival: a.model.Predicted(),
		DetectedAt:       a.detectedAt,
		Detected:         a.detected,
	}.Envelope())
}

// reportSlice snapshots the report table in deterministic (ID) order. The
// backing buffer is reused across calls — the estimators it feeds only read
// the slice during the call, so this is allocation-free at steady state.
func (a *Agent) reportSlice() []NeighborReport {
	if cap(a.scratch) < len(a.reports) {
		// One right-sized allocation instead of an append growth chain.
		a.scratch = make([]NeighborReport, 0, len(a.reports))
	}
	out := a.scratch[:0]
	for _, r := range a.reports {
		out = append(out, r)
	}
	slices.SortFunc(out, func(x, y NeighborReport) int { return int(x.ID) - int(y.ID) })
	a.scratch = out
	return out
}
