package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func coveredReport(id radio.NodeID, pos geom.Vec2, detectedAt float64, vel geom.Vec2, hasVel bool) NeighborReport {
	return NeighborReport{
		ID: id, Pos: pos, State: node.StateCovered,
		Velocity: vel, HasVelocity: hasVel, HasDirection: hasVel,
		PredictedArrival: detectedAt, DetectedAt: detectedAt, Detected: true,
	}
}

func TestActualVelocityLinearFront(t *testing.T) {
	// Front moving +x at 2 m/s: I at origin detected t=0, X at (6,0)
	// detected t=3. v = (X-I)/3 = (2,0).
	reports := []NeighborReport{coveredReport(1, geom.Zero, 0, geom.Zero, false)}
	v, ok := ActualVelocity(geom.V(6, 0), 3, reports, 1)
	if !ok {
		t.Fatal("no velocity computed")
	}
	if !v.ApproxEqual(geom.V(2, 0), 1e-12) {
		t.Errorf("v = %v, want (2,0)", v)
	}
}

func TestActualVelocityAveragesNeighbors(t *testing.T) {
	// Two covered neighbours, both consistent with a +x front at 1 m/s.
	reports := []NeighborReport{
		coveredReport(1, geom.V(0, 0), 0, geom.Zero, false), // I→X = (4,0), dt=4 → (1,0)
		coveredReport(2, geom.V(2, 0), 2, geom.Zero, false), // I→X = (2,0), dt=2 → (1,0)
	}
	v, ok := ActualVelocity(geom.V(4, 0), 4, reports, 1)
	if !ok || !v.ApproxEqual(geom.V(1, 0), 1e-12) {
		t.Errorf("v = %v,%v", v, ok)
	}
}

func TestActualVelocitySkipsInvalid(t *testing.T) {
	reports := []NeighborReport{
		// Not detected.
		{ID: 1, Pos: geom.V(1, 0), State: node.StateAlert, Detected: false},
		// Detected simultaneously (dt = 0).
		coveredReport(2, geom.V(2, 0), 5, geom.Zero, false),
		// Detected later (dt < 0).
		coveredReport(3, geom.V(3, 0), 9, geom.Zero, false),
	}
	if _, ok := ActualVelocity(geom.V(10, 0), 5, reports, 1); ok {
		t.Error("velocity computed from invalid reports")
	}
}

func TestExpectedVelocity(t *testing.T) {
	reports := []NeighborReport{
		{ID: 1, State: node.StateCovered, Velocity: geom.V(2, 0), HasVelocity: true, HasDirection: true},
		{ID: 2, State: node.StateAlert, Velocity: geom.V(0, 2), HasVelocity: true, HasDirection: true},
		{ID: 3, State: node.StateSafe, Velocity: geom.V(9, 9), HasVelocity: true, HasDirection: true}, // safe: skipped
		{ID: 4, State: node.StateCovered, Velocity: geom.V(9, 9), HasVelocity: false},                 // no velocity
		{ID: 5, State: node.StateCovered, Velocity: geom.V(9, 9), HasVelocity: true},                  // speed-only: no heading to average
	}
	v, ok := ExpectedVelocity(reports)
	if !ok || !v.ApproxEqual(geom.V(1, 1), 1e-12) {
		t.Errorf("v = %v,%v want (1,1)", v, ok)
	}
	if _, ok := ExpectedVelocity(nil); ok {
		t.Error("velocity from no reports")
	}
}

func TestArrivalETACoveredNeighbor(t *testing.T) {
	// Covered neighbour at origin with velocity (1,0), detected at t=10.
	// X at (5,0): raw travel 5 s from the neighbour's position.
	r := coveredReport(1, geom.Zero, 10, geom.V(1, 0), true)
	// At now=10: eta = 5. At now=12: eta = 3. At now=20: clamped to 0.
	if eta := ArrivalETA(geom.V(5, 0), 10, r); !almost(eta, 5, 1e-12) {
		t.Errorf("eta@10 = %v", eta)
	}
	if eta := ArrivalETA(geom.V(5, 0), 12, r); !almost(eta, 3, 1e-12) {
		t.Errorf("eta@12 = %v", eta)
	}
	if eta := ArrivalETA(geom.V(5, 0), 20, r); eta != 0 {
		t.Errorf("eta@20 = %v", eta)
	}
}

func TestArrivalETACosineProjection(t *testing.T) {
	// Velocity (1,0); X at 45° has cos θ = √2/2, so travel = |IX|·cos/1.
	r := coveredReport(1, geom.Zero, 0, geom.V(1, 0), true)
	x := geom.V(3, 3)
	want := x.Norm() * math.Sqrt2 / 2
	if eta := ArrivalETA(x, 0, r); !almost(eta, want, 1e-9) {
		t.Errorf("eta = %v, want %v", eta, want)
	}
	// Perpendicular: cos = 0 → never.
	if eta := ArrivalETA(geom.V(0, 5), 0, r); !math.IsInf(eta, 1) {
		t.Errorf("perpendicular eta = %v", eta)
	}
	// Behind the front: cos < 0 → never.
	if eta := ArrivalETA(geom.V(-5, 0), 0, r); !math.IsInf(eta, 1) {
		t.Errorf("behind eta = %v", eta)
	}
}

func TestArrivalETAAlertNeighbor(t *testing.T) {
	// Alert neighbour predicts its own arrival at t=30; X is 4 m farther
	// along the velocity direction at 2 m/s → +2 s.
	r := NeighborReport{
		ID: 1, Pos: geom.Zero, State: node.StateAlert,
		Velocity: geom.V(2, 0), HasVelocity: true, HasDirection: true,
		PredictedArrival: 30,
	}
	if eta := ArrivalETA(geom.V(4, 0), 20, r); !almost(eta, 12, 1e-12) {
		t.Errorf("eta = %v, want 12 (30-20+2)", eta)
	}
	// Alert neighbour without a prediction is unusable.
	r.PredictedArrival = math.Inf(1)
	if eta := ArrivalETA(geom.V(4, 0), 20, r); !math.IsInf(eta, 1) {
		t.Errorf("eta = %v, want +Inf", eta)
	}
}

func TestArrivalETANoVelocity(t *testing.T) {
	r := coveredReport(1, geom.Zero, 0, geom.Zero, false)
	if eta := ArrivalETA(geom.V(1, 0), 0, r); !math.IsInf(eta, 1) {
		t.Errorf("eta without velocity = %v", eta)
	}
	// Zero-magnitude velocity likewise.
	r.HasVelocity = true
	if eta := ArrivalETA(geom.V(1, 0), 0, r); !math.IsInf(eta, 1) {
		t.Errorf("eta with zero velocity = %v", eta)
	}
}

func TestArrivalETAColocated(t *testing.T) {
	// Co-located with a covered neighbour: due at the neighbour's own time.
	r := coveredReport(1, geom.V(2, 2), 10, geom.V(1, 0), true)
	if eta := ArrivalETA(geom.V(2, 2), 10, r); eta != 0 {
		t.Errorf("colocated eta = %v", eta)
	}
}

func TestMinETA(t *testing.T) {
	reports := []NeighborReport{
		coveredReport(1, geom.Zero, 0, geom.V(1, 0), true),    // X at (4,0): eta 4
		coveredReport(2, geom.V(1, 0), 0, geom.V(1, 0), true), // eta 3
		{ID: 3, Pos: geom.V(2, 0), State: node.StateAlert},    // no velocity: skipped
	}
	got := MinETA(geom.V(4, 0), 0, reports, 0)
	if !almost(got, 3, 1e-12) {
		t.Errorf("MinETA = %v, want 3", got)
	}
	if got := MinETA(geom.V(4, 0), 0, nil, 0); !math.IsInf(got, 1) {
		t.Errorf("empty MinETA = %v", got)
	}
}

func TestMinETAAging(t *testing.T) {
	old := coveredReport(1, geom.Zero, 0, geom.V(1, 0), true)
	old.ReceivedAt = 0
	fresh := coveredReport(2, geom.V(1, 0), 50, geom.V(1, 0), true)
	fresh.ReceivedAt = 50
	reports := []NeighborReport{old, fresh}
	// At now=60 with maxAge 20, only the fresh report counts:
	// eta = dist((4,0),(1,0))/1 - (60-50) = 3 - 10 → clamped 0.
	got := MinETA(geom.V(4, 0), 60, reports, 20)
	if got != 0 {
		t.Errorf("aged MinETA = %v", got)
	}
	// With aging disabled the old report is admissible too (also 0 here,
	// but it must not be skipped when fresh reports are absent).
	got = MinETA(geom.V(100, 0), 60, []NeighborReport{old}, 0)
	if math.IsInf(got, 1) {
		t.Error("aging-disabled report was skipped")
	}
}

func TestMeanETA(t *testing.T) {
	reports := []NeighborReport{
		coveredReport(1, geom.Zero, 0, geom.V(1, 0), true),    // eta 4
		coveredReport(2, geom.V(2, 0), 0, geom.V(1, 0), true), // eta 2
	}
	got := MeanETA(geom.V(4, 0), 0, reports, 0)
	if !almost(got, 3, 1e-12) {
		t.Errorf("MeanETA = %v, want 3", got)
	}
	if got := MeanETA(geom.V(4, 0), 0, nil, 0); !math.IsInf(got, 1) {
		t.Errorf("empty MeanETA = %v", got)
	}
}

func TestScalarVelocity(t *testing.T) {
	if v := ScalarVelocity(3); v.Norm() != 3 {
		t.Errorf("ScalarVelocity norm = %v", v.Norm())
	}
}

func TestArrivalETASpeedOnly(t *testing.T) {
	// A speed-only report (HasDirection unset, as SAS sends) has no heading
	// to project on: the estimate is straight-line distance over speed,
	// wherever the target sits relative to the placeholder +x direction.
	r := coveredReport(1, geom.Zero, 10, ScalarVelocity(2), true)
	r.HasDirection = false
	if eta := ArrivalETA(geom.V(0, 6), 10, r); !almost(eta, 3, 1e-12) {
		t.Errorf("perpendicular speed-only eta = %v, want 3", eta)
	}
	if eta := ArrivalETA(geom.V(-6, 0), 10, r); !almost(eta, 3, 1e-12) {
		t.Errorf("behind speed-only eta = %v, want 3", eta)
	}
	// The same geometry with a directed report refuses both targets.
	r.HasDirection = true
	if eta := ArrivalETA(geom.V(0, 6), 10, r); !math.IsInf(eta, 1) {
		t.Errorf("perpendicular directed eta = %v, want +Inf", eta)
	}
}

func TestQuickETANonNegative(t *testing.T) {
	f := func(px, py, vx, vy, det, now float64) bool {
		clean := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 1e3)
		}
		r := coveredReport(1, geom.V(clean(px), clean(py)), clean(det),
			geom.V(clean(vx), clean(vy)), true)
		eta := ArrivalETA(geom.V(clean(px)+1, clean(py)-2), clean(now), r)
		return eta >= 0 || math.IsInf(eta, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickActualVelocityRecoversPlanarFront(t *testing.T) {
	// For a planar front moving at +x with speed v, any covered neighbour
	// placed directly behind X on the x-axis yields exactly (v, 0).
	f := func(rawV, rawD float64) bool {
		v := math.Abs(math.Mod(rawV, 10)) + 0.1
		d := math.Abs(math.Mod(rawD, 50)) + 0.1
		reports := []NeighborReport{coveredReport(1, geom.Zero, 0, geom.Zero, false)}
		got, ok := ActualVelocity(geom.V(d, 0), d/v, reports, 0)
		return ok && got.ApproxEqual(geom.V(v, 0), 1e-6*(1+v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickActualVelocityTranslationInvariant(t *testing.T) {
	// Translating all positions by the same offset leaves the velocity
	// estimate unchanged.
	f := func(ox, oy, px, py, d float64) bool {
		clean := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 100)
		}
		off := geom.V(clean(ox), clean(oy))
		p := geom.V(clean(px), clean(py))
		x := p.Add(geom.V(math.Abs(clean(d))+1, 0))
		mk := func(shift geom.Vec2) (geom.Vec2, bool) {
			reports := []NeighborReport{coveredReport(1, p.Add(shift), 0, geom.Zero, false)}
			return ActualVelocity(x.Add(shift), 5, reports, 1)
		}
		v0, ok0 := mk(geom.Zero)
		v1, ok1 := mk(off)
		return ok0 == ok1 && v0.ApproxEqual(v1, 1e-9*(1+v0.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinETALowerBoundsMean(t *testing.T) {
	// The minimum aggregation can never exceed the mean over the same
	// (finite) per-neighbour estimates.
	f := func(raw [6]float64) bool {
		clean := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 50)
		}
		reports := []NeighborReport{
			coveredReport(1, geom.V(clean(raw[0]), clean(raw[1])), 0, geom.V(1, 0), true),
			coveredReport(2, geom.V(clean(raw[2]), clean(raw[3])), 2, geom.V(0.5, 0.5), true),
		}
		x := geom.V(clean(raw[4])+60, clean(raw[5]))
		minV := MinETA(x, 5, reports, 0)
		meanV := MeanETA(x, 5, reports, 0)
		if math.IsInf(meanV, 1) {
			return true // no finite estimates: nothing to compare
		}
		return minV <= meanV+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
