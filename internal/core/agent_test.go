package core

import (
	"math"
	"testing"

	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sim"
)

// stubAgent is an always-awake scripted neighbour for driving PAS agents.
type stubAgent struct {
	onInit func(n *node.Node)
	onMsg  func(n *node.Node, from radio.NodeID, env radio.Envelope)
	got    []radio.Envelope
}

func (s *stubAgent) Init(n *node.Node) {
	if s.onInit != nil {
		s.onInit(n)
	}
}
func (s *stubAgent) OnWake(*node.Node)         {}
func (s *stubAgent) OnDetect(*node.Node)       {}
func (s *stubAgent) OnStimulusGone(*node.Node) {}
func (s *stubAgent) OnMessage(n *node.Node, from radio.NodeID, env radio.Envelope) {
	s.got = append(s.got, env)
	if s.onMsg != nil {
		s.onMsg(n, from, env)
	}
}

// farStimulus returns a front that effectively never reaches the test field.
func farStimulus() diffusion.FrontModel {
	return diffusion.NewRadialFront(geom.V(-1e6, 0), 0.001, 0)
}

// rig wires a kernel+medium over a small field.
func rig() (*sim.Kernel, *radio.Medium) {
	k := sim.NewKernel()
	st := rng.NewSource(1).Stream("channel")
	m := radio.NewMedium(k, geom.R(-50, -50, 50, 50), energy.Telos(), radio.UnitDisk{Range: 15}, st)
	return k, m
}

func addNode(k *sim.Kernel, m *radio.Medium, id radio.NodeID, pos geom.Vec2, stim diffusion.Stimulus, a node.Agent) *node.Node {
	return node.New(node.Config{
		ID: id, Pos: pos, Kernel: k, Medium: m,
		Stimulus: stim, Profile: energy.Telos(), Agent: a,
	})
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.AlertThreshold = 10
	cfg.SleepInit = 1
	cfg.SleepIncrement = 1
	cfg.SleepMax = 3
	return cfg
}

// imminentResponse is a covered-neighbour report whose front is heading
// straight for the given target position.
func imminentResponse(from geom.Vec2, target geom.Vec2, speed, detectedAt float64) Response {
	dir := target.Sub(from).Normalize().Scale(speed)
	return Response{
		Pos:              from,
		State:            node.StateCovered,
		Velocity:         dir,
		HasVelocity:      true,
		HasDirection:     true,
		PredictedArrival: detectedAt,
		DetectedAt:       detectedAt,
		Detected:         true,
	}
}

func TestSafeNodeAlertsOnImminentThreat(t *testing.T) {
	k, m := rig()
	stim := farStimulus()
	pas := New(testConfig())
	target := geom.V(0, 0)
	n := addNode(k, m, 0, target, stim, pas)
	stub := &stubAgent{onInit: func(sn *node.Node) {
		// Covered neighbour 5 m away, front moving toward the PAS node at
		// 1 m/s: eta ≈ 5 s < threshold 10.
		sn.Kernel().Schedule(0.01, func(*sim.Kernel) {
			sn.Broadcast(imminentResponse(geom.V(-5, 0), target, 1, 0).Envelope())
		})
	}}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	n.Start()
	sn.Start()
	k.RunUntil(0.5)
	if n.State() != node.StateAlert {
		t.Fatalf("state = %v, want alert", n.State())
	}
	if !n.IsAwake() {
		t.Error("alert node asleep")
	}
	// Entering alert announces the prediction: the stub must have received
	// a RESPONSE (besides nothing else it asked for).
	sawResponse := false
	for _, env := range stub.got {
		if env.Kind == radio.KindResponse {
			sawResponse = true
		}
	}
	if !sawResponse {
		t.Error("alert entry did not broadcast a response")
	}
	if p := pas.Predicted(); math.IsInf(p, 1) {
		t.Error("no prediction recorded")
	}
	if _, ok := pas.Velocity(); !ok {
		t.Error("no velocity estimate recorded")
	}
}

func TestSafeNodeSleepsWhenThreatFar(t *testing.T) {
	k, m := rig()
	stim := farStimulus()
	pas := New(testConfig())
	target := geom.V(0, 0)
	n := addNode(k, m, 0, target, stim, pas)
	stub := &stubAgent{onInit: func(sn *node.Node) {
		// Covered neighbour 14 m away moving toward us at 0.1 m/s:
		// eta ≈ 140 s >> threshold.
		sn.Kernel().Schedule(0.01, func(*sim.Kernel) {
			sn.Broadcast(imminentResponse(geom.V(-14, 0), target, 0.1, 0).Envelope())
		})
	}}
	sn := addNode(k, m, 1, geom.V(-14, 0), stim, stub)
	n.Start()
	sn.Start()
	k.RunUntil(0.5)
	if n.State() != node.StateSafe {
		t.Fatalf("state = %v, want safe", n.State())
	}
	if n.IsAwake() {
		t.Error("safe node with distant threat is not sleeping")
	}
}

func TestSafeNodeIgnoresRecedingFront(t *testing.T) {
	k, m := rig()
	stim := farStimulus()
	pas := New(testConfig())
	n := addNode(k, m, 0, geom.V(0, 0), stim, pas)
	stub := &stubAgent{onInit: func(sn *node.Node) {
		sn.Kernel().Schedule(0.01, func(*sim.Kernel) {
			// Fast front moving AWAY from the node.
			sn.Broadcast(Response{
				Pos: geom.V(-5, 0), State: node.StateCovered,
				Velocity: geom.V(-3, 0), HasVelocity: true, HasDirection: true,
				PredictedArrival: 0, DetectedAt: 0, Detected: true,
			}.Envelope())
		})
	}}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	n.Start()
	sn.Start()
	k.RunUntil(0.5)
	if n.State() != node.StateSafe || n.IsAwake() {
		t.Errorf("receding front: state=%v awake=%v, want safe+asleep", n.State(), n.IsAwake())
	}
}

func TestAlertFallsBackToSafeViaAging(t *testing.T) {
	k, m := rig()
	stim := farStimulus()
	cfg := testConfig()
	cfg.MaxReportAge = 2
	cfg.AlertReassess = 0.5
	pas := New(cfg)
	target := geom.V(0, 0)
	n := addNode(k, m, 0, target, stim, pas)
	stub := &stubAgent{onInit: func(sn *node.Node) {
		sn.Kernel().Schedule(0.01, func(*sim.Kernel) {
			sn.Broadcast(imminentResponse(geom.V(-5, 0), target, 1, 0).Envelope())
		})
	}}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	n.Start()
	sn.Start()
	k.RunUntil(0.5)
	if n.State() != node.StateAlert {
		t.Fatalf("precondition: state = %v, want alert", n.State())
	}
	// The single report ages out at ~2 s; the next reassessment must drop
	// the node back to safe and put it to sleep.
	k.RunUntil(4)
	if n.State() != node.StateSafe {
		t.Fatalf("state = %v, want safe after aging", n.State())
	}
	if n.IsAwake() {
		// It may legitimately be awake inside one of its probe windows;
		// advance past the window and check again.
		k.RunUntil(4.5)
		if n.IsAwake() && n.State() == node.StateSafe {
			sleeping := false
			for tt := 4.5; tt < 8; tt += 0.5 {
				k.RunUntil(tt)
				if !n.IsAwake() {
					sleeping = true
					break
				}
			}
			if !sleeping {
				t.Error("safe node never went back to sleep")
			}
		}
	}
}

func TestCoveredNodeComputesActualVelocity(t *testing.T) {
	// Front crosses the stub (at x=-5) at t=5, then the PAS node (x=0) at
	// t=10 → actual velocity ≈ (1, 0) from the single covered neighbour.
	k, m := rig()
	stim := diffusion.NewRadialFront(geom.V(-10, 0), 1, 0)
	pas := New(testConfig())
	n := addNode(k, m, 0, geom.V(0, 0), stim, pas)
	// The stub answers the PAS node's detection-time REQUEST as a covered
	// node that detected at t=5.
	stub := &stubAgent{}
	stub.onMsg = func(sn *node.Node, _ radio.NodeID, env radio.Envelope) {
		if env.Kind != radio.KindRequest {
			return
		}
		if sn.Now() < 5 {
			return // not "covered" yet
		}
		sn.Broadcast(Response{
			Pos: sn.Pos(), State: node.StateCovered,
			PredictedArrival: 5, DetectedAt: 5, Detected: true,
		}.Envelope())
	}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	n.Start()
	sn.Start()
	k.RunUntil(12)
	if n.State() != node.StateCovered {
		t.Fatalf("state = %v, want covered", n.State())
	}
	v, ok := pas.Velocity()
	if !ok {
		t.Fatal("covered node has no velocity estimate")
	}
	// Detection may lag arrival by up to the sleep interval, so the speed
	// estimate is |AB| / (tDetect − 5) ∈ [5/(5+maxSleep+ε), 1].
	if v.X < 0.5 || v.X > 1.05 || math.Abs(v.Y) > 1e-9 {
		t.Errorf("velocity = %v, want ≈(1,0)", v)
	}
	// And it must have broadcast the estimate.
	sawVelocity := false
	for _, env := range stub.got {
		if env.Kind == radio.KindResponse && ResponseFromEnvelope(env).HasVelocity {
			sawVelocity = true
		}
	}
	if !sawVelocity {
		t.Error("covered node never broadcast its velocity")
	}
}

func TestRequestAnsweredOnlyWhenAlertOrCovered(t *testing.T) {
	k, m := rig()
	stim := farStimulus()
	cfg := testConfig()
	cfg.SleepMax = 1000 // keep the PAS node asleep after its first window
	cfg.SleepInit = 1000
	pas := New(cfg)
	n := addNode(k, m, 0, geom.V(0, 0), stim, pas)
	stub := &stubAgent{}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	// Probe the PAS node inside its initial awake window, while it is safe.
	k.Schedule(0.05, func(*sim.Kernel) { sn.Broadcast(Request{}.Envelope()) })
	n.Start()
	sn.Start()
	k.RunUntil(0.2)
	for _, env := range stub.got {
		if env.Kind == radio.KindResponse {
			t.Fatal("safe node answered a REQUEST")
		}
	}
	_ = n
}

func TestAlertNodeAnswersRequest(t *testing.T) {
	k, m := rig()
	stim := farStimulus()
	pas := New(testConfig())
	target := geom.V(0, 0)
	n := addNode(k, m, 0, target, stim, pas)
	stub := &stubAgent{}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	k.Schedule(0.01, func(*sim.Kernel) {
		sn.Broadcast(imminentResponse(geom.V(-5, 0), target, 1, 0).Envelope())
	})
	// After the node has gone alert, probe it.
	k.Schedule(1, func(*sim.Kernel) { sn.Broadcast(Request{}.Envelope()) })
	n.Start()
	sn.Start()
	k.RunUntil(2)
	if n.State() != node.StateAlert {
		t.Fatalf("precondition: state = %v", n.State())
	}
	responses := 0
	for _, env := range stub.got {
		if env.Kind == radio.KindResponse {
			responses++
		}
	}
	// One on entering alert plus one answering the request.
	if responses < 2 {
		t.Errorf("got %d responses, want >= 2", responses)
	}
}

func TestPASNetworkPaperScenario(t *testing.T) {
	sc := diffusion.PaperScenario()
	dep := deploy.ConnectedUniform(rng.NewSource(7).Stream("deploy"), sc.Field, 30, 10, 500)
	cfg := DefaultConfig()
	cfg.SleepMax = 10
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return New(cfg) },
	})
	var sawAlert bool
	for _, n := range nw.Nodes {
		n.OnStateChange(func(_ *node.Node, _, s node.State) {
			if s == node.StateAlert {
				sawAlert = true
			}
		})
	}
	nw.Run(sc.Horizon)

	nsEnergy := 0.041 * sc.Horizon // an always-on node's joules
	detected := 0
	var totalDelay, totalEnergy float64
	for _, n := range nw.Nodes {
		if d, ok := n.DetectionDelay(); ok {
			detected++
			totalDelay += d
			if d < 0 {
				t.Fatalf("node %d detected before arrival (delay %v)", n.ID(), d)
			}
			if d > cfg.SleepMax*1.3+1 {
				t.Errorf("node %d delay %v exceeds jittered max sleep", n.ID(), d)
			}
		}
		totalEnergy += n.Meter().TotalJ()
	}
	if detected < 25 {
		t.Fatalf("only %d/30 nodes detected", detected)
	}
	if !sawAlert {
		t.Error("no node ever entered the alert state")
	}
	meanDelay := totalDelay / float64(detected)
	if meanDelay >= cfg.SleepMax/2 {
		t.Errorf("mean delay %v not better than oblivious sleeping (%v)", meanDelay, cfg.SleepMax/2)
	}
	meanEnergy := totalEnergy / float64(len(nw.Nodes))
	if meanEnergy >= nsEnergy {
		t.Errorf("mean energy %v J not below always-on %v J", meanEnergy, nsEnergy)
	}
}

func TestAlertResidencyGrowsWithThreshold(t *testing.T) {
	// The paper's adaptive knob: a larger alert time produces a larger
	// alert area (more alert residency), trading energy for latency.
	residency := func(threshold float64) float64 {
		sc := diffusion.PaperScenario()
		dep := deploy.ConnectedUniform(rng.NewSource(7).Stream("deploy"), sc.Field, 30, 10, 500)
		cfg := DefaultConfig()
		cfg.AlertThreshold = threshold
		nw := node.BuildNetwork(node.NetworkConfig{
			Deployment: dep,
			Stimulus:   sc.Stimulus,
			Profile:    energy.Telos(),
			Loss:       radio.UnitDisk{Range: 10},
			Agents:     func(radio.NodeID) node.Agent { return New(cfg) },
		})
		nw.Run(sc.Horizon)
		var alert float64
		for _, n := range nw.Nodes {
			alert += n.StateResidency()[node.StateAlert]
		}
		return alert
	}
	lo := residency(3)
	hi := residency(30)
	if hi <= lo {
		t.Errorf("alert residency did not grow with threshold: %v (T=3) vs %v (T=30)", lo, hi)
	}
}
