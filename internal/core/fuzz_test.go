package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
)

// FuzzResponseCodecRoundTrip drives the byte decoder with arbitrary buffers:
// anything DecodeResponse accepts must re-encode to a stable fixpoint (decode
// → encode → decode is the identity on bytes). The seed corpus covers valid
// frames, flag corners and the infinities the protocol actually sends.
func FuzzResponseCodecRoundTrip(f *testing.F) {
	f.Add(codecFixture().Encode())
	f.Add(Response{}.Encode())
	f.Add(Response{Pos: geom.V(1, 2), PredictedArrival: math.Inf(1)}.Encode())
	f.Add(Response{
		State: node.StateCovered, HasVelocity: true, Detected: true,
		Velocity: geom.V(-0.5, 3), DetectedAt: 40,
	}.Encode())
	f.Add(Response{ // speed-only report: velocity valid, direction not
		State: node.StateCovered, HasVelocity: true, HasDirection: false,
		Velocity: geom.V(2, 0), Detected: true, DetectedAt: 7,
	}.Encode())
	f.Add([]byte{})                                                     // short
	f.Add(bytes.Repeat([]byte{0xff}, 51))                               // wrong type tag
	f.Add(append([]byte{byte(MsgResponse), 0xff}, make([]byte, 49)...)) // junk flags
	f.Fuzz(func(t *testing.T, buf []byte) {
		r, err := DecodeResponse(buf)
		if err != nil {
			return // rejected input: nothing to check
		}
		enc := r.AppendEncode(nil)
		r2, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("re-decode of freshly encoded response failed: %v", err)
		}
		// Bytes are the canonical form (NaN payloads make struct equality
		// unsuitable): encoding must reach a fixpoint after one round.
		if enc2 := r2.AppendEncode(nil); !bytes.Equal(enc, enc2) {
			t.Fatalf("codec not a fixpoint:\nfirst  %x\nsecond %x", enc, enc2)
		}
	})
}

// FuzzResponseEnvelopeMapping fuzzes the structured path the simulator
// actually runs: Response → Envelope → Response must preserve every field
// bit-for-bit, and the envelope mapping must agree with the byte codec.
func FuzzResponseEnvelopeMapping(f *testing.F) {
	f.Add(1.0, 2.0, 0.5, 0.25, 42.0, 40.0, true, true, true, uint8(1))
	f.Add(0.0, 0.0, 0.0, 0.0, math.Inf(1), 0.0, false, false, false, uint8(0))
	f.Add(-1e300, 1e-300, math.MaxFloat64, -0.0, 1e9, -5.5, true, false, true, uint8(2))
	f.Add(1.0, 1.0, 3.0, 0.0, 9.0, 8.0, true, true, false, uint8(2)) // SAS-style speed-only
	f.Fuzz(func(t *testing.T, px, py, vx, vy, pa, da float64, hasVel, det, hasDir bool, state uint8) {
		r := Response{
			Pos:              geom.V(px, py),
			State:            node.State(state % 3),
			Velocity:         geom.V(vx, vy),
			HasVelocity:      hasVel,
			HasDirection:     hasDir,
			PredictedArrival: pa,
			DetectedAt:       da,
			Detected:         det,
		}
		env := r.Envelope()
		if env.Kind != radio.KindResponse || env.Size() != r.Size() {
			t.Fatalf("envelope header wrong: %+v", env)
		}
		got := ResponseFromEnvelope(env)
		// Compare through the byte codec so NaN payloads compare by bits.
		if !bytes.Equal(got.AppendEncode(nil), r.AppendEncode(nil)) {
			t.Fatalf("envelope round trip mismatch:\n got %+v\nwant %+v", got, r)
		}
	})
}
