package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/predict"
)

// Config holds the PAS tunables. The two the paper sweeps are
// AlertThreshold (Figs. 5 and 7) and SleepMax (Figs. 4 and 6).
type Config struct {
	// AlertThreshold is the alert time T_alert in seconds: a node whose
	// expected arrival time falls below it enters (or stays in) the alert
	// state. Shrinking it toward zero degenerates PAS into SAS (§3.4).
	AlertThreshold float64
	// SleepInit is the first safe-state sleep interval.
	SleepInit float64
	// SleepIncrement is Δt, the linear growth of the sleep interval.
	SleepIncrement float64
	// SleepMax is the maximum sleeping interval (paper Figs. 4/6 x-axis).
	SleepMax float64
	// ResponseWindow is how long a prober waits for RESPONSEs before
	// deciding its state.
	ResponseWindow float64
	// AlertReassess is the period at which an alert node re-evaluates its
	// prediction (and falls back to safe when the threat recedes).
	AlertReassess float64
	// DetectionTimeout is how long a covered node waits after the stimulus
	// leaves before returning to safe (paper Fig. 3 "detect timeout").
	DetectionTimeout float64
	// SignificantChange is the relative change in the predicted arrival
	// time that triggers an unsolicited RESPONSE rebroadcast (paper §3.2:
	// "...replies with a RESPONSE message if the difference between the
	// expectations has changed significantly").
	SignificantChange float64
	// MaxReportAge discards neighbour reports older than this; 0 disables.
	MaxReportAge float64
	// ResponseStagger spaces concurrent RESPONSEs by a small deterministic
	// per-node offset to avoid pathological synchronization.
	ResponseStagger float64
	// SleepJitter is the relative jitter applied to every sleep interval
	// (deterministic per node and cycle); it models boot-time and clock
	// spread and prevents network-wide wake synchronization.
	SleepJitter float64
	// MinVelocityDt is the smallest detection-time difference usable by the
	// actual-velocity estimator; near-simultaneous detections divide a
	// metre-scale baseline by sensing-latency noise.
	MinVelocityDt float64
	// Predictor selects and parameterizes the agent's prediction plugin
	// (see predict.Kinds). The zero value is the paper's §3.3 estimator —
	// the spec is a comparable plain value, so Config stays usable with ==.
	Predictor predict.Spec
	// UseMeanETA switches the aggregation from the paper's minimum to a
	// mean (estimator ablation only).
	UseMeanETA bool
	// DisableExpectedVelocity stops alert nodes from computing/propagating
	// expected velocities (estimator ablation: actual-velocity only).
	DisableExpectedVelocity bool
	// Liveness, when enabled (MissK > 0), gives the node a sink-side peer
	// liveness tracker: peers silent for MissK×Interval are re-probed with
	// capped exponential backoff and eventually declared dead. The zero
	// value disables tracking at zero cost.
	Liveness fault.LivenessConfig
	// Hook, when non-nil, receives agent-internal events for tracing,
	// debugging and the visualizer. It adds no overhead when nil.
	Hook *Hook
}

// Hook exposes agent-internal events to observers (trace collectors, the
// visualizer, tests). All callbacks are optional.
type Hook struct {
	// Velocity fires when a freshly covered node finishes its actual-
	// velocity computation; ok reports whether any covered neighbour
	// contributed.
	Velocity func(id int, vx, vy float64, ok bool)
	// Decision fires at the end of each safe-node probe window with the
	// computed expected arrival (eta, seconds from now), the number of
	// stored reports and the resulting choice.
	Decision func(id int, eta float64, reports int, alert bool)
}

// DefaultConfig returns the tunables used by the reproduction's paper-
// scenario experiments (thresholds and sleep bounds are then swept per
// figure).
func DefaultConfig() Config {
	return Config{
		AlertThreshold:    20,
		SleepInit:         1,
		SleepIncrement:    2,
		SleepMax:          10,
		ResponseWindow:    0.25,
		AlertReassess:     1,
		DetectionTimeout:  5,
		SignificantChange: 0.2,
		MaxReportAge:      45,
		ResponseStagger:   0.002,
		SleepJitter:       0.25,
		MinVelocityDt:     1,
	}
}

// Validate reports an error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.AlertThreshold < 0:
		return fmt.Errorf("core: negative alert threshold %g", c.AlertThreshold)
	case c.SleepInit <= 0 || c.SleepMax <= 0 || c.SleepIncrement < 0:
		return fmt.Errorf("core: invalid sleep parameters init=%g inc=%g max=%g", c.SleepInit, c.SleepIncrement, c.SleepMax)
	case c.ResponseWindow <= 0:
		return fmt.Errorf("core: response window must be positive, got %g", c.ResponseWindow)
	case c.AlertReassess <= 0:
		return fmt.Errorf("core: alert reassess period must be positive, got %g", c.AlertReassess)
	case c.DetectionTimeout <= 0:
		return fmt.Errorf("core: detection timeout must be positive, got %g", c.DetectionTimeout)
	case c.SignificantChange < 0:
		return fmt.Errorf("core: negative significant-change fraction %g", c.SignificantChange)
	case c.MaxReportAge < 0:
		return fmt.Errorf("core: negative report age %g", c.MaxReportAge)
	case c.ResponseStagger < 0:
		return fmt.Errorf("core: negative response stagger %g", c.ResponseStagger)
	case c.SleepJitter < 0 || c.SleepJitter > 0.9:
		return fmt.Errorf("core: sleep jitter %g outside [0, 0.9]", c.SleepJitter)
	case c.MinVelocityDt < 0:
		return fmt.Errorf("core: negative minimum velocity dt %g", c.MinVelocityDt)
	}
	if err := c.Liveness.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Predictor.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}
