package core

import "fmt"

// SleepSchedule implements the paper's §3.4 safe-state sleeping strategy:
// the sleep interval starts at Init and grows by Increment after each
// uneventful wake ("the sensor increases its sleeping interval by adding an
// increment Δt and falls back to sleep"), saturating at Max ("their sleeping
// interval will stay when it reaches the upper bound"). Alerts reset the
// schedule so a node returning to safe starts cautious again.
type SleepSchedule struct {
	Init      float64 // first sleep interval, seconds
	Increment float64 // Δt added per uneventful cycle
	Max       float64 // maximum sleeping interval (the paper's swept knob)

	cur float64
}

// NewSleepSchedule validates and constructs a schedule.
func NewSleepSchedule(init, increment, max float64) *SleepSchedule {
	s := MakeSleepSchedule(init, increment, max)
	return &s
}

// MakeSleepSchedule is the value-type constructor behind NewSleepSchedule,
// for owners that embed the schedule instead of pointing at a heap-allocated
// one.
func MakeSleepSchedule(init, increment, max float64) SleepSchedule {
	if init <= 0 || max <= 0 || increment < 0 {
		panic(fmt.Sprintf("core: invalid sleep schedule init=%g inc=%g max=%g", init, increment, max))
	}
	if init > max {
		init = max
	}
	return SleepSchedule{Init: init, Increment: increment, Max: max}
}

// Next returns the interval to sleep now and advances the schedule.
func (s *SleepSchedule) Next() float64 {
	if s.cur == 0 {
		s.cur = s.Init
	}
	out := s.cur
	s.cur += s.Increment
	if s.cur > s.Max {
		s.cur = s.Max
	}
	if out > s.Max {
		out = s.Max
	}
	return out
}

// Current returns the interval the next call to Next will produce, without
// advancing.
func (s *SleepSchedule) Current() float64 {
	if s.cur == 0 {
		return s.Init
	}
	if s.cur > s.Max {
		return s.Max
	}
	return s.cur
}

// Reset restarts the linear ramp from Init.
func (s *SleepSchedule) Reset() { s.cur = 0 }

// PhaseJitter returns a deterministic multiplicative jitter factor in
// [1−amount, 1+amount] for the k-th sleep of the given node. Identical boot
// times would otherwise synchronize every node's wake instants network-wide
// — an artifact real deployments never exhibit (clocks drift, boots differ)
// that starves probers of fresh information: their covered neighbours would
// always be mid-computation at the moment of every probe. The factor is a
// pure hash of (node, k), so runs remain exactly reproducible.
func PhaseJitter(id, k int, amount float64) float64 {
	if amount <= 0 {
		return 1
	}
	if amount > 0.9 {
		amount = 0.9
	}
	x := uint64(id)*0x9e3779b97f4a7c15 ^ uint64(k)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	frac := float64(x>>11) / float64(1<<53) // uniform in [0,1)
	return 1 + amount*(2*frac-1)
}
