package core
