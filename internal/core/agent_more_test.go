package core

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/sim"
)

func TestPASCoveredReturnsToSafeOnReceding(t *testing.T) {
	// Receding stimulus covers (0,0) during [10,15); after dwell + timeout
	// the PAS node falls back to safe (paper Fig. 3 covered→safe).
	inner := diffusion.NewRadialFront(geom.V(-10, 0), 1, 0)
	stim := diffusion.NewReceding(inner, 5)
	k, m := rig()
	cfg := testConfig()
	cfg.DetectionTimeout = 2
	pas := New(cfg)
	n := addNode(k, m, 0, geom.V(0, 0), stim, pas)
	n.Start()
	k.RunUntil(13)
	if n.State() != node.StateCovered {
		t.Fatalf("state at 13 = %v, want covered", n.State())
	}
	k.RunUntil(25)
	if n.State() != node.StateSafe {
		t.Errorf("state after receding = %v, want safe", n.State())
	}
	// The ramp restarted: the node is asleep or in a short probe window.
	if n.IsAwake() {
		k.RunUntil(26)
		if n.IsAwake() {
			t.Error("node did not resume sleeping after covered→safe")
		}
	}
}

func TestPASCoveredTimeoutAbortsIfStimulusReturns(t *testing.T) {
	// A stimulus that leaves and returns within the timeout keeps the node
	// covered. Craft with a MultiSource of two receding fronts whose dwell
	// windows overlap the timeout gap.
	a := diffusion.NewReceding(diffusion.NewRadialFront(geom.V(-10, 0), 1, 0), 5)  // covers 10..15
	b := diffusion.NewReceding(diffusion.NewRadialFront(geom.V(-16, 0), 1, 0), 50) // covers 16..66
	stim := &unionStim{a: a, b: b}
	k, m := rig()
	cfg := testConfig()
	cfg.DetectionTimeout = 3 // at timeout check (≈18), source b covers again
	pas := New(cfg)
	n := addNode(k, m, 0, geom.V(0, 0), stim, pas)
	n.Start()
	k.RunUntil(30)
	if n.State() != node.StateCovered {
		t.Errorf("state = %v, want covered while the second plume lingers", n.State())
	}
}

// unionStim is a minimal two-source union implementing node.Departer via the
// first source only (so the departure event fires while the second source
// still covers).
type unionStim struct {
	a, b *diffusion.Receding
}

func (u *unionStim) ArrivalTime(p geom.Vec2) float64 {
	return math.Min(u.a.ArrivalTime(p), u.b.ArrivalTime(p))
}
func (u *unionStim) Covered(p geom.Vec2, t float64) bool {
	return u.a.Covered(p, t) || u.b.Covered(p, t)
}
func (u *unionStim) DepartureTime(p geom.Vec2) float64 { return u.a.DepartureTime(p) }

func TestPASMeanETAVariant(t *testing.T) {
	k, m := rig()
	stim := farStimulus()
	cfg := testConfig()
	cfg.UseMeanETA = true
	pas := New(cfg)
	target := geom.V(0, 0)
	n := addNode(k, m, 0, target, stim, pas)
	stub := &stubAgent{onInit: func(sn *node.Node) {
		sn.Kernel().Schedule(0.01, func(*sim.Kernel) {
			sn.Broadcast(imminentResponse(geom.V(-5, 0), target, 1, 0).Envelope())
		})
	}}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	n.Start()
	sn.Start()
	k.RunUntil(0.5)
	if n.State() != node.StateAlert {
		t.Errorf("mean-ETA agent state = %v, want alert", n.State())
	}
}

func TestPASDisableExpectedVelocity(t *testing.T) {
	// With expected-velocity propagation disabled, the agent still alerts
	// from covered reports but records no own velocity until detection.
	k, m := rig()
	stim := farStimulus()
	cfg := testConfig()
	cfg.DisableExpectedVelocity = true
	pas := New(cfg)
	target := geom.V(0, 0)
	n := addNode(k, m, 0, target, stim, pas)
	stub := &stubAgent{onInit: func(sn *node.Node) {
		sn.Kernel().Schedule(0.01, func(*sim.Kernel) {
			sn.Broadcast(imminentResponse(geom.V(-5, 0), target, 1, 0).Envelope())
		})
	}}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	n.Start()
	sn.Start()
	k.RunUntil(0.5)
	if n.State() != node.StateAlert {
		t.Fatalf("state = %v, want alert", n.State())
	}
	if _, ok := pas.Velocity(); ok {
		t.Error("velocity recorded despite DisableExpectedVelocity")
	}
}

func TestPASZeroStaggerRespondsSynchronously(t *testing.T) {
	k, m := rig()
	stim := farStimulus()
	cfg := testConfig()
	cfg.ResponseStagger = 0
	pas := New(cfg)
	target := geom.V(0, 0)
	n := addNode(k, m, 0, target, stim, pas)
	stub := &stubAgent{}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	k.Schedule(0.01, func(*sim.Kernel) {
		sn.Broadcast(imminentResponse(geom.V(-5, 0), target, 1, 0).Envelope())
	})
	k.Schedule(1, func(*sim.Kernel) { sn.Broadcast(Request{}.Envelope()) })
	n.Start()
	sn.Start()
	k.RunUntil(2)
	responses := 0
	for _, env := range stub.got {
		if env.Kind == radio.KindResponse {
			responses++
		}
	}
	if responses < 2 {
		t.Errorf("responses = %d, want >= 2", responses)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.ResponseWindow = -1
	New(cfg)
}

func TestPhaseJitterProperties(t *testing.T) {
	// Zero amount: factor 1. Over-limit amount clamps to 0.9.
	if PhaseJitter(3, 7, 0) != 1 {
		t.Error("zero-amount jitter != 1")
	}
	for id := 0; id < 50; id++ {
		for k := 0; k < 10; k++ {
			f := PhaseJitter(id, k, 0.25)
			if f < 0.75 || f > 1.25 {
				t.Fatalf("jitter(%d,%d) = %v outside [0.75,1.25]", id, k, f)
			}
			if f != PhaseJitter(id, k, 0.25) {
				t.Fatal("jitter not deterministic")
			}
			g := PhaseJitter(id, k, 5) // clamped to 0.9
			if g < 0.1-1e-12 || g > 1.9+1e-12 {
				t.Fatalf("clamped jitter = %v", g)
			}
		}
	}
	// Different nodes/cycles decorrelate: not all equal.
	seen := map[float64]bool{}
	for id := 0; id < 20; id++ {
		seen[PhaseJitter(id, 1, 0.25)] = true
	}
	if len(seen) < 15 {
		t.Errorf("jitter collisions: only %d distinct values over 20 nodes", len(seen))
	}
}

func TestAlertRespondsWithScheduledStaggerWhileStillAwake(t *testing.T) {
	// The staggered response is skipped if the node fell asleep meanwhile —
	// force that path by aging out the report between request and response.
	k, m := rig()
	stim := farStimulus()
	cfg := testConfig()
	cfg.ResponseStagger = 0.5 // large stagger
	cfg.MaxReportAge = 0.6
	cfg.AlertReassess = 0.3
	pas := New(cfg)
	target := geom.V(0, 0)
	n := addNode(k, m, 0, target, stim, pas)
	stub := &stubAgent{}
	sn := addNode(k, m, 1, geom.V(-5, 0), stim, stub)
	k.Schedule(0.01, func(*sim.Kernel) {
		sn.Broadcast(imminentResponse(geom.V(-5, 0), target, 1, 0).Envelope())
	})
	// Request lands just before the report ages out; by the time the
	// staggered response fires the node may have gone safe and asleep.
	k.Schedule(0.55, func(*sim.Kernel) { sn.Broadcast(Request{}.Envelope()) })
	n.Start()
	sn.Start()
	k.RunUntil(3) // must not panic (no broadcast-while-asleep)
	_ = radio.NodeID(0)
}
