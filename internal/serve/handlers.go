package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sort"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// RunSummary is the headline report of one simulation in the wire shape.
// FirstDeath is a pointer so runs where no node exhausted its battery omit
// the field instead of emitting +Inf (which JSON cannot represent).
type RunSummary struct {
	AvgDelay      float64  `json:"avgDelay"`
	P95Delay      float64  `json:"p95Delay"`
	MaxDelay      float64  `json:"maxDelay"`
	AvgEnergyJ    float64  `json:"avgEnergyJ"`
	AvgDuty       float64  `json:"avgDuty"`
	Detected      int      `json:"detected"`
	Reached       int      `json:"reached"`
	Missed        int      `json:"missed"`
	Messages      int      `json:"messages"`
	BatteryDeaths int      `json:"batteryDeaths,omitempty"`
	FirstDeath    *float64 `json:"firstDeath,omitempty"`
}

// summarize projects a run report onto the wire shape.
func summarize(rep metrics.RunReport) RunSummary {
	out := RunSummary{
		AvgDelay:      rep.AvgDelay,
		P95Delay:      rep.P95Delay,
		MaxDelay:      rep.MaxDelay,
		AvgEnergyJ:    rep.AvgEnergyJ,
		AvgDuty:       rep.AvgDuty,
		Detected:      rep.Detected,
		Reached:       rep.Reached,
		Missed:        rep.Missed,
		Messages:      rep.Messages,
		BatteryDeaths: rep.BatteryDeaths,
	}
	if !math.IsInf(rep.FirstDeath, 1) {
		fd := rep.FirstDeath
		out.FirstDeath = &fd
	}
	return out
}

// RunResponse is the body of POST /v1/runs.
type RunResponse struct {
	// Key is the content address of this result.
	Key string `json:"key"`
	// Scenario/Protocol/Seed echo the resolved request.
	Scenario string     `json:"scenario"`
	Protocol string     `json:"protocol"`
	Seed     int64      `json:"seed"`
	Report   RunSummary `json:"report"`
}

// MeanCI is one replicated metric: mean and 95% CI half-width across seeds.
type MeanCI struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
}

// ReplicateResponse is the body of POST /v1/replicate. FirstDeath is
// right-censored at the horizon for runs where no node died, so it is always
// finite.
type ReplicateResponse struct {
	Key           string  `json:"key"`
	Scenario      string  `json:"scenario"`
	Protocol      string  `json:"protocol"`
	Seeds         []int64 `json:"seeds"`
	Delay         MeanCI  `json:"delay"`
	Energy        MeanCI  `json:"energy"`
	Duty          MeanCI  `json:"duty"`
	Missed        MeanCI  `json:"missed"`
	Messages      MeanCI  `json:"messages"`
	MaxDelay      MeanCI  `json:"maxDelay"`
	BatteryDeaths MeanCI  `json:"batteryDeaths"`
	FirstDeath    MeanCI  `json:"firstDeath"`
}

// ScenarioInfo is one registry entry of GET /v1/scenarios.
type ScenarioInfo struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Nodes       int     `json:"nodes"`
	Horizon     float64 `json:"horizon"`
	// Hash is the content hash of the canonical spec — the same value the
	// run/replicate keys are derived from.
	Hash string `json:"hash"`
}

// handleRun serves POST /v1/runs: one (spec, seed) simulation.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		s.countAndWriteError(w, err)
		return
	}
	sp, err := s.resolveSpec(req)
	if err != nil {
		s.countAndWriteError(w, err)
		return
	}
	canon, err := scenario.Canonical(sp)
	if err != nil {
		s.countAndWriteError(w, badRequest("%v", err))
		return
	}
	if err := checkShards(sp, req.Shards); err != nil {
		s.countAndWriteError(w, err)
		return
	}
	key := resultKey(s.cfg.Version, "run", canon, req.Seed)
	s.deliver(w, r, s.timeout(req), key, computeRun(sp, req.Seed, req.Shards, key))
}

// computeRun builds the pure compute function behind one (spec, seed) run:
// identical arguments produce a byte-identical body, which is what lets the
// result live under its content address. shards is an execution hint only —
// sharded output is bit-identical to serial, so it is absent from the key.
func computeRun(sp scenario.Scenario, seed int64, shards int, key string) func(ctx context.Context) ([]byte, error) {
	return func(ctx context.Context) ([]byte, error) {
		rc, err := experiment.FromScenario(sp, seed)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		rc.Shards = shards
		rep, err := experiment.RunOnceContext(ctx, rc)
		if err != nil {
			return nil, err
		}
		return marshalBody(RunResponse{
			Key:      key,
			Scenario: sp.Name,
			Protocol: rc.Protocol,
			Seed:     seed,
			Report:   summarize(rep),
		})
	}
}

// handleReplicate serves POST /v1/replicate: one spec across a seed list,
// aggregated. Seeds run serially on the one admitted worker slot — a single
// replicate request cannot monopolize the pool — and each seed rebuilds the
// stimulus, so seed-drawn stimuli (anisotropic harmonics) vary per seed
// exactly as in a CLI replication.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		s.countAndWriteError(w, err)
		return
	}
	sp, err := s.resolveSpec(req)
	if err != nil {
		s.countAndWriteError(w, err)
		return
	}
	seeds, err := resolveSeeds(req)
	if err != nil {
		s.countAndWriteError(w, err)
		return
	}
	canon, err := scenario.Canonical(sp)
	if err != nil {
		s.countAndWriteError(w, badRequest("%v", err))
		return
	}
	if err := checkShards(sp, req.Shards); err != nil {
		s.countAndWriteError(w, err)
		return
	}
	key := resultKey(s.cfg.Version, "replicate", canon, seeds...)
	s.deliver(w, r, s.timeout(req), key, computeReplicate(sp, seeds, req.Shards, key))
}

// computeReplicate builds the pure compute function behind one spec × seed
// list replication. Seeds run serially on the one admitted worker slot — a
// single replicate cannot monopolize the pool — and each seed rebuilds the
// stimulus, so seed-drawn stimuli vary per seed exactly as in a CLI run. The
// per-seed progress is scaled into [i/n, (i+1)/n] so a job-status stream sees
// one monotone ramp across the whole replication.
func computeReplicate(sp scenario.Scenario, seeds []int64, shards int, key string) func(ctx context.Context) ([]byte, error) {
	return func(ctx context.Context) ([]byte, error) {
		var agg metrics.Aggregate
		var proto string
		n := float64(len(seeds))
		for i, seed := range seeds {
			rc, err := experiment.FromScenario(sp, seed)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			rc.Shards = shards
			proto = rc.Protocol
			seedCtx := ctx
			if outer := node.ProgressFromContext(ctx); outer != nil {
				base := float64(i)
				seedCtx = node.WithProgress(ctx, func(now, horizon float64) {
					outer((base+now/horizon)/n, 1)
				})
			}
			rep, err := experiment.RunOnceContext(seedCtx, rc)
			if err != nil {
				return nil, err
			}
			agg.Add(rep)
		}
		return marshalBody(ReplicateResponse{
			Key:           key,
			Scenario:      sp.Name,
			Protocol:      proto,
			Seeds:         seeds,
			Delay:         meanCI(agg.Delay),
			Energy:        meanCI(agg.Energy),
			Duty:          meanCI(agg.Duty),
			Missed:        meanCI(agg.Missed),
			Messages:      meanCI(agg.Msgs),
			MaxDelay:      meanCI(agg.MaxDel),
			BatteryDeaths: meanCI(agg.Deaths),
			FirstDeath:    meanCI(agg.FirstDeath),
		})
	}
}

// checkShards validates the shards execution hint up front, so a non-shardable
// spec is a 400 at submit time rather than a late compute failure.
func checkShards(sp scenario.Scenario, shards int) error {
	if shards < 0 {
		return badRequest("negative shards %d", shards)
	}
	if shards == 0 {
		return nil
	}
	rc, err := experiment.FromScenario(sp, 1)
	if err != nil {
		return badRequest("%v", err)
	}
	if err := experiment.Shardable(rc); err != nil {
		return badRequest("%v", err)
	}
	return nil
}

// maxReplicateSeeds bounds one replicate request; larger studies should be
// split so backpressure and deadlines stay meaningful per request.
const maxReplicateSeeds = 64

// resolveSeeds materializes the replicate seed list: explicit seeds win,
// then reps (seeds 1..reps), then the harness-standard 8 replications.
func resolveSeeds(req simRequest) ([]int64, error) {
	if len(req.Seeds) > 0 && req.Reps > 0 {
		return nil, badRequest(`request carries both "seeds" and "reps"; send one`)
	}
	if len(req.Seeds) > maxReplicateSeeds || req.Reps > maxReplicateSeeds {
		return nil, badRequest("at most %d seeds per replicate request", maxReplicateSeeds)
	}
	if req.Reps < 0 {
		return nil, badRequest("negative reps %d", req.Reps)
	}
	if len(req.Seeds) > 0 {
		return req.Seeds, nil
	}
	reps := req.Reps
	if reps == 0 {
		reps = 8
	}
	return experiment.DefaultSeeds(reps), nil
}

// meanCI projects an accumulator onto the wire shape.
func meanCI(a stats.Accumulator) MeanCI {
	return MeanCI{Mean: a.Mean(), CI95: a.CI95()}
}

// handleScenarios serves GET /v1/scenarios: the registry sorted by name,
// each entry with its canonical content hash.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	all := scenario.All()
	infos := make([]ScenarioInfo, 0, len(all))
	for _, sp := range all {
		hash, err := scenario.Hash(sp)
		if err != nil {
			s.writeError(w, err)
			return
		}
		infos = append(infos, ScenarioInfo{
			Name:        sp.Name,
			Description: sp.Description,
			Nodes:       sp.Nodes,
			Horizon:     sp.Horizon,
			Hash:        hash,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	s.writeJSON(w, map[string]any{"scenarios": infos})
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.Stats())
}

// handleHealthz serves GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// countAndWriteError records a pre-simulation failure in the request counter
// (deliver never saw it) and writes the error response.
func (s *Server) countAndWriteError(w http.ResponseWriter, err error) {
	s.stats.requests.Add(1)
	s.writeError(w, err)
}

// writeJSON emits v as a JSON response body.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	body, err := marshalBody(v)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Write(body)
}

// marshalBody renders a response body: compact JSON with a trailing newline.
func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}
