package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postHandler posts straight at a handler (no test server), for servers that
// are about to be closed mid-test.
func postHandler(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(body)))
	return rec
}

// waitJob polls until the job reaches a terminal state and returns it.
func waitJob(t *testing.T, tsURL, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, body := get(t, tsURL, "/v1/jobs/"+id)
		var st jobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status body %q: %v", body, err)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return jobStatus{}
}

// submitJob posts one job and returns the 202 acknowledgment.
func submitJob(t *testing.T, tsURL, body string) jobAccepted {
	t.Helper()
	resp, b := post(t, tsURL, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 (%s)", resp.StatusCode, b)
	}
	var acc jobAccepted
	if err := json.Unmarshal(b, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || acc.Key == "" {
		t.Fatalf("incomplete acknowledgment %+v", acc)
	}
	return acc
}

// TestJobLifecycle pins the async happy path: 202 with an ID, progress to
// done, and a result byte-identical to the synchronous endpoint's (same
// content address, same stored bytes).
func TestJobLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	acc := submitJob(t, ts.URL, `{"name":"paper","seed":7}`)
	st := waitJob(t, ts.URL, acc.ID)
	if st.State != JobDone {
		t.Fatalf("job settled %s (%s), want done", st.State, st.Error)
	}
	if st.Progress != 1 {
		t.Fatalf("done job progress = %g, want 1", st.Progress)
	}
	resp, jobBody := get(t, ts.URL, "/v1/jobs/"+acc.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d (%s)", resp.StatusCode, jobBody)
	}
	syncResp, syncBody := post(t, ts.URL, "/v1/runs", `{"name":"paper","seed":7}`)
	if syncResp.StatusCode != http.StatusOK {
		t.Fatalf("sync status = %d", syncResp.StatusCode)
	}
	if !bytes.Equal(jobBody, syncBody) {
		t.Fatalf("async result differs from sync result:\n%s\n%s", jobBody, syncBody)
	}
	if got := syncResp.Header.Get("X-Result-Key"); got != acc.Key {
		t.Fatalf("sync key %s != job key %s", got, acc.Key)
	}
}

// TestJobResultStates pins the non-done result fetches: unknown job 404,
// unfinished job 409 not_ready.
func TestJobResultStates(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	resp, body := get(t, ts.URL, "/v1/jobs/j999999/result")
	var e errorBody
	json.Unmarshal(body, &e)
	if resp.StatusCode != http.StatusNotFound || e.Code != CodeNotFound {
		t.Fatalf("unknown job: status %d code %q, want 404 %s", resp.StatusCode, e.Code, CodeNotFound)
	}

	// Occupy the single worker slot so the job stays pending.
	s.work <- struct{}{}
	defer func() { <-s.work }()
	acc := submitJob(t, ts.URL, `{"name":"paper","seed":8}`)
	resp, body = get(t, ts.URL, "/v1/jobs/"+acc.ID+"/result")
	json.Unmarshal(body, &e)
	if resp.StatusCode != http.StatusConflict || e.Code != CodeNotReady {
		t.Fatalf("pending job: status %d code %q, want 409 %s", resp.StatusCode, e.Code, CodeNotReady)
	}
}

// TestJobDedup pins both dedup planes: an Idempotency-Key resubmission and an
// identical-work submission both collapse onto the live job's ID.
func TestJobDedup(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	s.work <- struct{}{} // hold the job pending so dedup windows stay open
	req := `{"name":"paper","seed":9}`

	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(req))
	hreq.Header.Set("Idempotency-Key", "client-abc")
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var first jobAccepted
	json.NewDecoder(resp.Body).Decode(&first)
	resp.Body.Close()

	hreq2, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(req))
	hreq2.Header.Set("Idempotency-Key", "client-abc")
	resp2, err := http.DefaultClient.Do(hreq2)
	if err != nil {
		t.Fatal(err)
	}
	var second jobAccepted
	json.NewDecoder(resp2.Body).Decode(&second)
	resp2.Body.Close()
	if second.ID != first.ID {
		t.Fatalf("idempotency resubmit minted new job %s != %s", second.ID, first.ID)
	}

	// Same work, no idempotency key: collapses by active result key.
	third := submitJob(t, ts.URL, req)
	if third.ID != first.ID {
		t.Fatalf("active-key dedup minted new job %s != %s", third.ID, first.ID)
	}

	<-s.work
	if st := waitJob(t, ts.URL, first.ID); st.State != JobDone {
		t.Fatalf("job settled %s, want done", st.State)
	}
	// Completed work is no longer active: a resubmission is a fresh job that
	// completes instantly from the store.
	fourth := submitJob(t, ts.URL, req)
	if fourth.ID == first.ID {
		t.Fatal("resubmission of completed work reused the settled job ID")
	}
	if st := waitJob(t, ts.URL, fourth.ID); st.State != JobDone {
		t.Fatalf("instant job settled %s, want done", st.State)
	}
}

// TestJobStream pins the NDJSON progress stream: monotone progress lines
// ending in the terminal state.
func TestJobStream(t *testing.T) {
	_, ts := testServer(t, Config{})
	acc := submitJob(t, ts.URL, `{"mode":"replicate","name":"paper","seeds":[1,2]}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var last jobStatus
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	prev := -1.0
	for sc.Scan() {
		var st jobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		if st.Progress < prev {
			t.Fatalf("stream progress regressed: %g after %g", st.Progress, prev)
		}
		prev = st.Progress
		last = st
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 1 || last.State != JobDone || last.Progress != 1 {
		t.Fatalf("stream ended after %d lines in %+v, want terminal done", lines, last)
	}
}

// TestJobJournalReplay pins the crash-recovery contract at the package level:
// a server that acknowledged a job and died (Close without letting it run)
// replays the journal on reopen and completes the job with the byte-identical
// body. Also covers hit-disk: the reopened server answers the synchronous
// request from the durable tier.
func TestJobJournalReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, Version: "replay-test", StoreDir: dir}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the worker so the job is acknowledged but never executes, then
	// Close: the submit entry stays incomplete in the journal, exactly the
	// state kill -9 after the 202 leaves behind.
	s1.work <- struct{}{}
	rec := postHandler(t, s1, "/v1/jobs", `{"name":"paper","seed":11}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d (%s)", rec.Code, rec.Body.Bytes())
	}
	var acc jobAccepted
	json.Unmarshal(rec.Body.Bytes(), &acc)
	<-s1.work
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := testServer(t, cfg)
	st := waitJob(t, ts2.URL, acc.ID)
	if st.State != JobDone {
		t.Fatalf("replayed job settled %s (%s), want done", st.State, st.Error)
	}
	if got := s2.Stats(); got.JobsReplayed != 1 {
		t.Fatalf("jobsReplayed = %d, want 1", got.JobsReplayed)
	}
	_, replayBody := get(t, ts2.URL, "/v1/jobs/"+acc.ID+"/result")

	// A third process serves the same request synchronously from disk.
	s3, ts3 := testServer(t, cfg)
	resp, syncBody := post(t, ts3.URL, "/v1/runs", `{"name":"paper","seed":11}`)
	if c := resp.Header.Get("X-Cache"); c != "hit-disk" {
		t.Fatalf("reopened server X-Cache = %q, want hit-disk", c)
	}
	if !bytes.Equal(replayBody, syncBody) {
		t.Fatalf("replayed body differs from disk-served body:\n%s\n%s", replayBody, syncBody)
	}
	if got := s3.Stats(); got.DiskHits != 1 || got.StoreEntries == 0 {
		t.Fatalf("durability stats = %+v, want a disk hit and entries", got)
	}
	// The terminal journal entry also restores the job record itself.
	_, statusBody := get(t, ts3.URL, "/v1/jobs/"+acc.ID)
	var restored jobStatus
	if err := json.Unmarshal(statusBody, &restored); err != nil || restored.State != JobDone {
		t.Fatalf("restored job status %q, want done", statusBody)
	}
}

// TestDrainRejectsNewJobs pins the drain semantics: after Drain starts, new
// submissions get 503 draining, while finished jobs remain queryable.
func TestDrainRejectsNewJobs(t *testing.T) {
	s, ts := testServer(t, Config{})
	acc := submitJob(t, ts.URL, `{"name":"paper","seed":12}`)
	waitJob(t, ts.URL, acc.ID)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL, "/v1/jobs", `{"name":"paper","seed":13}`)
	var e errorBody
	json.Unmarshal(body, &e)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != CodeDraining {
		t.Fatalf("draining submit: status %d code %q, want 503 %s", resp.StatusCode, e.Code, CodeDraining)
	}
	if _, statusBody := get(t, ts.URL, "/v1/jobs/"+acc.ID); !strings.Contains(string(statusBody), JobDone) {
		t.Fatalf("finished job unavailable during drain: %s", statusBody)
	}
}

// TestJobFailureIsTerminal pins the failure path: a job whose simulation
// fails deterministically lands in failed with job_failed semantics on the
// result fetch, and a reopened server does NOT replay it (the OpFail entry is
// terminal).
func TestJobFailureIsTerminal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, Version: "fail-test", StoreDir: dir}
	// An infeasible deployment: validation passes, construction panics.
	req := fmt.Sprintf(`{"scenario":%s,"seed":1}`, infeasiblePoissonSpec(t))

	s1, ts1 := testServer(t, cfg)
	acc := submitJob(t, ts1.URL, req)
	st := waitJob(t, ts1.URL, acc.ID)
	if st.State != JobFailed || st.ErrorCode != CodePanic {
		t.Fatalf("job settled %s/%s (%s), want failed/panic", st.State, st.ErrorCode, st.Error)
	}
	resp, body := get(t, ts1.URL, "/v1/jobs/"+acc.ID+"/result")
	var e errorBody
	json.Unmarshal(body, &e)
	if resp.StatusCode != http.StatusGone || e.Code != CodeJobFailed {
		t.Fatalf("failed job result: status %d code %q, want 410 %s", resp.StatusCode, e.Code, CodeJobFailed)
	}
	if got := s1.Stats(); got.JobsFailed != 1 {
		t.Fatalf("jobsFailed = %d, want 1", got.JobsFailed)
	}

	s2, ts2 := testServer(t, cfg)
	if got := s2.Stats(); got.JobsReplayed != 0 {
		t.Fatalf("failed job was replayed: %+v", got)
	}
	_, statusBody := get(t, ts2.URL, "/v1/jobs/"+acc.ID)
	var restored jobStatus
	if err := json.Unmarshal(statusBody, &restored); err != nil || restored.State != JobFailed {
		t.Fatalf("restored failed-job status %q, want failed", statusBody)
	}
}

// TestShardsHintSharesKey pins that the shards execution hint is absent from
// the content address: a sharded submission is a cache hit against the serial
// run's result.
func TestShardsHintSharesKey(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp1, body1 := post(t, ts.URL, "/v1/runs", `{"name":"paper","seed":21}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("serial status = %d (%s)", resp1.StatusCode, body1)
	}
	resp2, body2 := post(t, ts.URL, "/v1/runs", `{"name":"paper","seed":21,"shards":2}`)
	if c := resp2.Header.Get("X-Cache"); c != "hit-mem" {
		t.Fatalf("sharded respelling X-Cache = %q, want hit-mem", c)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("sharded request body differs from serial")
	}
}
