package serve

import (
	"container/list"
	"sync"
)

// resultCache is the process-wide content-addressed result store: finished
// response bodies keyed by the request's content address (code version +
// endpoint mode + canonical spec + seeds). Values are immutable byte slices
// served verbatim, which is what makes cached responses byte-identical to
// the simulation that produced them. Eviction is LRU so a sweep of many
// distinct scenarios cannot wedge the hot entries out faster than they are
// re-used.
type resultCache struct {
	mu    sync.Mutex
	limit int
	m     map[string]*list.Element
	lru   *list.List // front = most recently used
}

// cacheEntry is one stored body with its key (kept for eviction bookkeeping).
type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(limit int) *resultCache {
	return &resultCache{limit: limit, m: make(map[string]*list.Element), lru: list.New()}
}

// get returns the cached body for key, marking it most recently used.
// Callers must not mutate the result.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry at the
// limit. Storing an existing key refreshes its recency (the body is the same
// by construction — keys are content addresses).
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.limit {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
