// Async jobs: the journaled, crash-safe half of the serving API.
//
// POST /v1/jobs appends the canonical request to the write-ahead journal and
// fsyncs it BEFORE the 202 acknowledgment leaves the server, so the ack is a
// durable promise: kill -9 the process at any instant after the 202 and the
// restarted server replays the submit entry, re-executes the simulation and —
// by the repo's determinism guarantee — produces the byte-identical body the
// dead process would have. GET /v1/jobs/{id} reports state, phase and
// progress (streamed as NDJSON with ?stream=1; sharded runs report per
// conservative window through the node.WithProgress hook); GET
// /v1/jobs/{id}/result serves the finished body from the content-addressed
// store under the exact key a synchronous request would have used.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/store"
)

// Job states, in lifecycle order.
const (
	JobPending = "pending" // acknowledged, waiting for a worker slot
	JobRunning = "running" // simulating
	JobDone    = "done"    // result persisted and fetchable
	JobFailed  = "failed"  // terminal failure; the result will never exist
)

// job is one acknowledged asynchronous simulation.
type job struct {
	id      string
	mode    string // "run" or "replicate"
	key     string // result content address
	idem    string
	compute func(ctx context.Context) ([]byte, error)

	mu       sync.Mutex
	state    string
	progress float64 // virtual-time fraction in [0, 1]
	errMsg   string
	errCode  string
	done     chan struct{} // closed on reaching JobDone or JobFailed
}

// snapshot reads the job's mutable state under its lock.
func (j *job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:        j.id,
		State:     j.state,
		Progress:  j.progress,
		Key:       j.key,
		Error:     j.errMsg,
		ErrorCode: j.errCode,
	}
}

// setState transitions the job; terminal states close done exactly once.
func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	if state == JobDone {
		j.progress = 1
	}
	terminal := state == JobDone || state == JobFailed
	j.mu.Unlock()
	if terminal {
		close(j.done)
	}
}

// fail records a terminal failure with its stable code.
func (j *job) fail(code, msg string) {
	j.mu.Lock()
	j.errCode, j.errMsg = code, msg
	j.mu.Unlock()
	j.setState(JobFailed)
}

// jobStatus is the wire shape of GET /v1/jobs/{id} (and each NDJSON stream
// line).
type jobStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Progress  float64 `json:"progress"`
	Key       string  `json:"key"`
	Error     string  `json:"error,omitempty"`
	ErrorCode string  `json:"errorCode,omitempty"`
}

// jobAccepted is the body of a 202 from POST /v1/jobs.
type jobAccepted struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Key   string `json:"key"`
}

// jobTable indexes the server's jobs. Completed jobs stay queryable for the
// process lifetime (and, via journal replay, across restarts); only the
// active-by-key index is cleared at completion, so a resubmission of finished
// work becomes a fresh — and, store hit, instant — job.
type jobTable struct {
	mu     sync.Mutex
	seq    uint64
	byID   map[string]*job
	byIdem map[string]string // idempotency key → job ID
	active map[string]string // result key → pending/running job ID
}

func (t *jobTable) init() {
	t.byID = make(map[string]*job)
	t.byIdem = make(map[string]string)
	t.active = make(map[string]string)
}

// nextID mints a fresh job ID. Replay bumps seq past every journaled ID
// first, so IDs never collide across restarts.
func (t *jobTable) nextID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	return fmt.Sprintf("j%06d", t.seq)
}

// bumpSeq raises the ID sequence to at least n.
func (t *jobTable) bumpSeq(n uint64) {
	t.mu.Lock()
	if n > t.seq {
		t.seq = n
	}
	t.mu.Unlock()
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.byID[id]
	return j, ok
}

// lookupDup returns an existing job this submission should collapse onto: by
// idempotency key first (exact resubmission of an acknowledged request), then
// by active result key (identical work currently pending or running).
func (t *jobTable) lookupDup(idem, key string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idem != "" {
		if id, ok := t.byIdem[idem]; ok {
			return t.byID[id], true
		}
	}
	if id, ok := t.active[key]; ok {
		return t.byID[id], true
	}
	return nil, false
}

// register adds a job to every applicable index.
func (t *jobTable) register(j *job) {
	t.mu.Lock()
	t.byID[j.id] = j
	if j.idem != "" {
		t.byIdem[j.idem] = j.id
	}
	t.active[j.key] = j.id
	t.mu.Unlock()
}

// settle clears the active-by-key index entry once a job reaches a terminal
// state.
func (t *jobTable) settle(j *job) {
	t.mu.Lock()
	if t.active[j.key] == j.id {
		delete(t.active, j.key)
	}
	t.mu.Unlock()
}

// jobRequest is the body of POST /v1/jobs: a simulation request plus the
// endpoint mode it should run as.
type jobRequest struct {
	// Mode selects the simulation shape: "run" (default) or "replicate".
	Mode string `json:"mode,omitempty"`
	simRequest
}

// handleJobSubmit serves POST /v1/jobs: validate, journal, acknowledge.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, &httpError{status: http.StatusServiceUnavailable, code: CodeDraining,
			msg: "server is draining; resubmit to a live replica"})
		return
	}
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, badRequest("decoding request: %v", err))
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "run"
	}
	if mode != "run" && mode != "replicate" {
		s.writeError(w, badRequest(`unknown mode %q ("run" or "replicate")`, mode))
		return
	}
	sp, err := s.resolveSpec(req.simRequest)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var seeds []int64
	if mode == "run" {
		seeds = []int64{req.Seed}
	} else if seeds, err = resolveSeeds(req.simRequest); err != nil {
		s.writeError(w, err)
		return
	}
	canon, err := scenario.Canonical(sp)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	if err := checkShards(sp, req.Shards); err != nil {
		s.writeError(w, err)
		return
	}
	key := resultKey(s.cfg.Version, mode, canon, seeds...)
	idem := r.Header.Get("Idempotency-Key")

	if dup, ok := s.jobs.lookupDup(idem, key); ok {
		s.writeAccepted(w, dup)
		return
	}

	j := &job{
		id:   s.jobs.nextID(),
		mode: mode,
		key:  key,
		idem: idem,
		done: make(chan struct{}),
	}
	if mode == "run" {
		j.compute = computeRun(sp, seeds[0], req.Shards, key)
	} else {
		j.compute = computeReplicate(sp, seeds, req.Shards, key)
	}
	j.state = JobPending
	if s.journal != nil {
		entry := store.JobEntry{
			ID: j.id, Op: store.OpSubmit, Mode: mode, Key: key,
			Spec: canon, Seeds: seeds, Shards: req.Shards, Idem: idem,
		}
		if err := s.journal.Append(entry); err != nil {
			// No durable promise can be made; refuse rather than acknowledge
			// something a crash would forget.
			s.writeError(w, fmt.Errorf("journaling job: %w", err))
			return
		}
	}
	s.jobs.register(j)
	s.stats.jobsSubmitted.Add(1)
	s.stats.jobsActive.Add(1)
	s.startJob(j)
	s.writeAccepted(w, j)
}

// writeAccepted emits the 202 acknowledgment for a (possibly deduplicated)
// job.
func (s *Server) writeAccepted(w http.ResponseWriter, j *job) {
	st := j.snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	body, _ := marshalBody(jobAccepted{ID: st.ID, State: st.State, Key: st.Key})
	w.Write(body)
}

// startJob launches the job's executor goroutine under the server's
// wait-group (Drain waits for it, Close cancels it).
func (s *Server) startJob(j *job) {
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		s.runJob(j)
	}()
}

// runJob executes one job to a terminal state. The path mirrors deliver's:
// store tiers first (a job for already-computed work completes instantly),
// then a worker slot, then the guarded compute with the progress hook
// installed; the result is written through both tiers and the terminal
// outcome journaled. A job cancelled by server shutdown journals NOTHING
// terminal — the restarted server replays it — while a job that fails on its
// own (panic, invalid dynamics, timeout) journals OpFail: determinism makes
// such failures permanent, so replaying them would be wasted work.
func (s *Server) runJob(j *job) {
	if body, ok := s.cache.get(j.key); ok {
		s.finishJob(j, body, true)
		return
	}
	if body, ok := s.diskGet(j.key); ok {
		s.cache.put(j.key, body)
		s.finishJob(j, body, true)
		return
	}
	select {
	case s.work <- struct{}{}:
	case <-s.jobCtx.Done():
		return // shutdown before start: stays incomplete in the journal
	}
	defer func() { <-s.work }()

	j.setState(JobRunning)
	ctx, cancel := context.WithTimeout(s.jobCtx, s.cfg.JobTimeout)
	defer cancel()
	ctx = node.WithProgress(ctx, func(now, horizon float64) {
		j.mu.Lock()
		if frac := now / horizon; frac > j.progress {
			j.progress = frac
		}
		j.mu.Unlock()
	})
	body, err := computeGuarded(ctx, j.compute)
	if err != nil {
		if s.jobCtx.Err() != nil {
			// Shutdown took the job down, not the job itself: leave the journal
			// entry incomplete so the restarted server re-executes it.
			return
		}
		code := CodeInternal
		var he *httpError
		switch {
		case errors.As(err, &he):
			code = he.code
		case errors.Is(err, context.DeadlineExceeded):
			code = CodeDeadline
		}
		s.failJob(j, code, err.Error())
		return
	}
	s.persist(j.key, body)
	s.finishJob(j, body, false)
}

// finishJob moves a job to done: result persisted (instant completions pass
// preStored), journal terminal entry appended, indexes settled.
func (s *Server) finishJob(j *job, body []byte, preStored bool) {
	if preStored {
		s.cache.put(j.key, body)
	}
	if s.journal != nil {
		s.journal.Append(store.JobEntry{ID: j.id, Op: store.OpDone, Key: j.key})
	}
	j.setState(JobDone)
	s.jobs.settle(j)
	s.stats.jobsCompleted.Add(1)
	s.stats.jobsActive.Add(-1)
}

// failJob moves a job to failed with a terminal journal entry.
func (s *Server) failJob(j *job, code, msg string) {
	if s.journal != nil {
		s.journal.Append(store.JobEntry{ID: j.id, Op: store.OpFail, Key: j.key, Error: msg})
	}
	j.fail(code, msg)
	s.jobs.settle(j)
	s.stats.jobsFailed.Add(1)
	s.stats.jobsActive.Add(-1)
}

// handleJobStatus serves GET /v1/jobs/{id}: a point-in-time status snapshot,
// or — with ?stream=1 — an NDJSON stream of snapshots, one line per visible
// progress change, ending with the terminal state (or when the server starts
// draining).
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, notFound("unknown job %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("stream") == "" {
		s.writeJSON(w, j.snapshot())
		return
	}
	s.streamJobStatus(w, r, j)
}

// jobStreamPoll is the cadence at which a status stream samples the job; the
// progress hook updates far more often, so this bounds line rate, not
// resolution.
const jobStreamPoll = 25 * time.Millisecond

// streamJobStatus writes NDJSON status lines until the job settles.
func (s *Server) streamJobStatus(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Result-Key", j.key)
	flusher, _ := w.(http.Flusher)
	writeLine := func(st jobStatus) {
		body, _ := marshalBody(st)
		w.Write(body)
		if flusher != nil {
			flusher.Flush()
		}
	}
	last := j.snapshot()
	writeLine(last)
	ticker := time.NewTicker(jobStreamPoll)
	defer ticker.Stop()
	for {
		select {
		case <-j.done:
			writeLine(j.snapshot())
			return
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			writeLine(j.snapshot())
			return
		case <-ticker.C:
			if st := j.snapshot(); st != last {
				last = st
				writeLine(st)
			}
		}
	}
}

// handleJobResult serves GET /v1/jobs/{id}/result: the finished body, byte-
// identical to what the synchronous endpoint would have returned (it IS the
// stored body under the same content address).
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, notFound("unknown job %q", r.PathValue("id")))
		return
	}
	st := j.snapshot()
	switch st.State {
	case JobFailed:
		s.writeError(w, &httpError{status: http.StatusGone, code: CodeJobFailed,
			msg: fmt.Sprintf("job %s failed: %s", st.ID, st.Error)})
		return
	case JobDone:
	default:
		s.writeError(w, &httpError{status: http.StatusConflict, code: CodeNotReady,
			msg: fmt.Sprintf("job %s is %s; poll GET /v1/jobs/%s", st.ID, st.State, st.ID)})
		return
	}
	body, ok := s.cache.get(j.key)
	if !ok {
		if body, ok = s.diskGet(j.key); ok {
			s.cache.put(j.key, body)
		}
	}
	if !ok {
		// Memory-only server whose LRU evicted the body: the promise is gone
		// with the process's memory. Resubmitting recomputes it.
		s.writeError(w, notFound("result for job %s evicted; resubmit the job", st.ID))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Result-Key", j.key)
	w.Write(body)
}

// replayJobs restores the jobs subsystem from a journal replay: terminal jobs
// come back queryable in their final state, and every acknowledged-but-
// incomplete job is re-executed — the crash-recovery half of the 202
// contract. An incomplete job whose result already sits in the disk store
// (the crash hit between the store write and the journal's OpDone) is
// completed without re-running: the stored bytes are already the answer.
func (s *Server) replayJobs(entries []store.JobEntry) {
	var maxSeq uint64
	for _, e := range entries {
		if n, err := strconv.ParseUint(strings.TrimPrefix(e.ID, "j"), 10, 64); err == nil && n > maxSeq {
			maxSeq = n
		}
	}
	s.jobs.bumpSeq(maxSeq)

	pending, terminal := store.Incomplete(entries)

	// Submit entries by ID, for rebuilding terminal jobs' metadata.
	submits := make(map[string]store.JobEntry)
	for _, e := range entries {
		if e.Op == store.OpSubmit {
			if _, dup := submits[e.ID]; !dup {
				submits[e.ID] = e
			}
		}
	}
	for id, term := range terminal {
		sub := submits[id]
		j := &job{id: id, mode: sub.Mode, key: sub.Key, idem: sub.Idem, done: make(chan struct{})}
		if term.Op == store.OpDone {
			j.state = JobDone
			j.progress = 1
		} else {
			j.state = JobFailed
			j.errMsg = term.Error
			j.errCode = CodeJobFailed
		}
		close(j.done)
		s.jobs.mu.Lock()
		s.jobs.byID[id] = j
		if j.idem != "" {
			s.jobs.byIdem[j.idem] = id
		}
		s.jobs.mu.Unlock()
	}

	for _, e := range pending {
		j := &job{id: e.ID, mode: e.Mode, key: e.Key, idem: e.Idem, done: make(chan struct{}), state: JobPending}
		sp, err := scenario.Decode(e.Spec)
		if err != nil {
			// A journaled spec that no longer decodes means the schema moved
			// underneath the journal; the promise is unkeepable.
			s.jobs.register(j)
			s.stats.jobsActive.Add(1)
			s.failJob(j, CodeBadRequest, fmt.Sprintf("replayed spec no longer decodes: %v", err))
			continue
		}
		if e.Mode == "replicate" {
			j.compute = computeReplicate(sp, e.Seeds, e.Shards, e.Key)
		} else {
			seed := int64(0)
			if len(e.Seeds) > 0 {
				seed = e.Seeds[0]
			}
			j.compute = computeRun(sp, seed, e.Shards, e.Key)
		}
		s.jobs.register(j)
		s.stats.jobsActive.Add(1)
		s.stats.jobsReplayed.Add(1)
		s.startJob(j)
	}
}
