package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The chaos harness re-execs this test binary as a real passerve process —
// TestMain diverts into chaosChild when the env marker is set — so the parent
// can SIGKILL it mid-flight: no goroutine cleanup, no deferred fsyncs, the
// exact failure the journal and the atomic store writes are designed for.
const (
	chaosChildEnv = "PAS_CHAOS_CHILD"
	chaosDirEnv   = "PAS_CHAOS_DIR"
	// chaosVersion pins the cache-key code-version in both processes: the
	// parent computes expected bodies in-process and compares them to what the
	// killed-and-restarted child serves, which only works if both derive the
	// same content addresses.
	chaosVersion = "chaos"
)

func TestMain(m *testing.M) {
	if os.Getenv(chaosChildEnv) != "" {
		chaosChild()
		return
	}
	os.Exit(m.Run())
}

// chaosChild is the killable server process: open the store, announce the
// address on stdout, serve until killed.
func chaosChild() {
	s, err := New(Config{Workers: 2, Version: chaosVersion, StoreDir: os.Getenv(chaosDirEnv)})
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR http://%s\n", ln.Addr())
	http.Serve(ln, s)
}

// chaosProc is one running child.
type chaosProc struct {
	cmd  *exec.Cmd
	base string
}

// startChaosChild launches the child against dir and waits for its address.
func startChaosChild(t *testing.T, dir string) *chaosProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), chaosChildEnv+"=1", chaosDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ADDR ") {
			go func() { // drain so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return &chaosProc{cmd: cmd, base: strings.TrimPrefix(line, "ADDR ")}
		}
		if strings.HasPrefix(line, "ERR ") {
			t.Fatalf("chaos child failed to start: %s", line)
		}
	}
	t.Fatalf("chaos child exited before announcing an address (scan err %v)", sc.Err())
	return nil
}

// kill9 delivers SIGKILL and reaps the child.
func (p *chaosProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// chaosGet / chaosPost are plain HTTP helpers against a child.
func chaosPost(t *testing.T, base, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func chaosGet(t *testing.T, base, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestChaosKillRestart is the kill-and-restart chaos harness: mixed load into
// a real child process, SIGKILL mid-flight, restart on the same store
// directory, then assert the crash-safety contract:
//
//  1. every job acknowledged with a 202 before the kill completes after the
//     restart, with a body byte-identical to an independent in-process
//     computation of the same request (determinism across processes);
//  2. the restarted recovery scan adopts the pre-crash store cleanly;
//  3. results persisted before the kill are served from the disk tier.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short")
	}
	dir := t.TempDir()
	child := startChaosChild(t, dir)

	// Mixed load: sync runs (populate the disk store), then a burst of async
	// jobs — several runs and a replicate — acked just before the kill.
	type ack struct {
		id, key string
		req     string
		mode    string
	}
	if resp, body := chaosPost(t, child.base, "/v1/runs", `{"name":"paper","seed":100}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sync run: %d (%s)", resp.StatusCode, body)
	}
	jobs := []struct{ mode, req string }{
		{"run", `{"name":"paper","seed":101}`},
		{"run", `{"name":"paper","seed":102}`},
		{"run", `{"name":"paper","seed":103,"shards":2}`},
		{"replicate", `{"mode":"replicate","name":"paper","seeds":[104,105]}`},
		{"run", `{"name":"paper","seed":106}`},
		{"run", `{"name":"paper","seed":107}`},
		{"run", `{"name":"paper","seed":108}`},
		{"replicate", `{"mode":"replicate","name":"paper","seeds":[109,110,111]}`},
	}
	var acks []ack
	for _, jb := range jobs {
		resp, rb := chaosPost(t, child.base, "/v1/jobs", jb.req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d (%s)", jb.req, resp.StatusCode, rb)
		}
		var acc jobAccepted
		if err := json.Unmarshal(rb, &acc); err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack{id: acc.ID, key: acc.Key, req: jb.req, mode: jb.mode})
	}

	// Kill mid-flight: the 202s are out, the workers are (at most 2 at a
	// time) still simulating. No drain, no fsync beyond what already
	// happened — this is the crash the journal exists for.
	child.kill9(t)

	// Restart on the same directory. The journal replays every incomplete
	// job; completed ones come back terminal.
	child2 := startChaosChild(t, dir)

	// Every acknowledged job must settle as done.
	for _, a := range acks {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, body := chaosGet(t, child2.base, "/v1/jobs/"+a.id)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job %s after restart: %d (%s)", a.id, resp.StatusCode, body)
			}
			var st jobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			if st.State == JobDone {
				break
			}
			if st.State == JobFailed {
				t.Fatalf("acked job %s failed after restart: %s", a.id, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("acked job %s never completed after restart (state %s)", a.id, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Byte-identity across processes: an independent in-process server with
	// the same pinned version must produce the exact bytes the recovered
	// child serves.
	oracle, err := New(Config{Workers: 2, Version: chaosVersion})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	oracleTS := httptest.NewServer(oracle)
	defer oracleTS.Close()
	var wg sync.WaitGroup
	for _, a := range acks {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, got := chaosGet(t, child2.base, "/v1/jobs/"+a.id+"/result")
			path := "/v1/runs"
			req := a.req
			if a.mode == "replicate" {
				path = "/v1/replicate"
				req = strings.Replace(req, `"mode":"replicate",`, "", 1)
			}
			resp, want := chaosPost(t, oracleTS.URL, path, req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("oracle %s: %d (%s)", req, resp.StatusCode, want)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("job %s recovered body differs from oracle:\n%s\n%s", a.id, got, want)
			}
		}()
	}
	wg.Wait()

	// The pre-crash sync result must come off the disk tier, and the
	// recovery scan must have adopted the store without quarantining intact
	// records (a torn in-flight write at kill time may legitimately be
	// quarantined; adopted entries prove the scan ran and passed).
	resp, _ := chaosPost(t, child2.base, "/v1/runs", `{"name":"paper","seed":100}`)
	if c := resp.Header.Get("X-Cache"); c != "hit-disk" {
		t.Fatalf("pre-crash key X-Cache = %q, want hit-disk", c)
	}
	var st Stats
	_, statsBody := chaosGet(t, child2.base, "/v1/stats")
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.StoreRecovered == 0 {
		t.Fatalf("recovery scan adopted nothing: %+v", st)
	}
	if st.JobsReplayed == 0 {
		t.Fatalf("no jobs were replayed after the kill: %+v", st)
	}
}
