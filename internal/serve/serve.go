// Package serve is the simulation-as-a-service layer of the PAS
// reproduction: a long-running HTTP/JSON daemon over the experiment harness,
// built around the determinism guarantee the rest of the repo pins — the
// same canonical spec and seed produce byte-identical output — so identical
// requests hit a content-addressed result store instead of a simulation.
//
// The request surface (all JSON):
//
//	POST /v1/runs       one (spec, seed) simulation → headline report
//	POST /v1/replicate  one spec × a seed list → aggregate with CIs
//	GET  /v1/scenarios  the registry, sorted by name, with content hashes
//	GET  /v1/stats      cache hit rate, queue depth, p50/p99 latency, ...
//	GET  /v1/healthz    liveness probe
//
// Results are keyed by SHA-256 over (code version, endpoint mode, canonical
// spec JSON, seed list) — scenario.Canonical materializes defaults and
// sorts keys, so every spelling of the same workload shares one cache line,
// and the code-version component keeps results from one build from leaking
// into the next. Concurrent identical requests collapse onto one simulation
// via singleflight; distinct requests are admitted up to Workers running
// plus QueueDepth waiting and rejected with 429 beyond that (backpressure,
// not unbounded queueing). Every simulating request runs under a deadline
// and stops mid-kernel when it expires (504).
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/scenario"
	"repro/internal/store"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// Workers caps concurrently executing simulations (0 = one per CPU).
	Workers int
	// QueueDepth bounds simulations admitted beyond the running Workers;
	// requests needing a simulation past Workers+QueueDepth are rejected
	// with 429 (0 = 4× Workers).
	QueueDepth int
	// DefaultTimeout applies when a request carries no timeoutSec (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines (0 = 2 min).
	MaxTimeout time.Duration
	// CacheEntries bounds the content-addressed result store (0 = 4096).
	CacheEntries int
	// Version overrides the code-version cache-key component. Empty uses
	// the build's VCS revision (module version when absent), so a rebuild
	// with different code cannot serve stale cached results.
	Version string
	// StoreDir, when non-empty, roots the durability tier: a disk-backed
	// content-addressed result store (StoreDir/results) behind the in-memory
	// LRU, and the async-jobs write-ahead journal (StoreDir/jobs.wal). With
	// it set, cache hits survive restarts (X-Cache: hit-disk) and every
	// 202-acknowledged job survives kill -9: on reopen the journal replays
	// incomplete jobs and determinism reproduces their byte-identical
	// results. Empty keeps the historical memory-only server (jobs still
	// work, but don't survive the process).
	StoreDir string
	// JobTimeout caps one async job's execution (0 = 10 min). Async jobs are
	// for runs too long for the synchronous deadline discipline, so this is
	// deliberately far above MaxTimeout.
	JobTimeout time.Duration
}

// withDefaults materializes the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.Version == "" {
		c.Version = CodeVersion()
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	return c
}

// CodeVersion derives the cache-key code-version component from the build
// info: the VCS revision when the binary was built from a checkout, else the
// main module version, else "dev". Deterministic within one build, distinct
// across code changes — which is exactly what the cache key needs.
func CodeVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			return s.Value
		}
	}
	if v := bi.Main.Version; v != "" {
		return v
	}
	return "dev"
}

// Server is the passerve HTTP handler: a worker-pool front end over the
// experiment harness with a two-tier content-addressed result store (memory
// LRU over an optional durable disk store) and a journaled async-jobs
// subsystem. Construct with New; the zero value is not usable.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	admit  chan struct{} // admission: Workers + QueueDepth slots
	work   chan struct{} // execution: Workers slots
	cache  *resultCache
	flight flightGroup
	stats  serverStats
	start  time.Time

	// Durability tier (nil/zero without StoreDir).
	disk    *store.Store
	journal *store.Journal

	// Async jobs.
	jobs      jobTable
	jobWG     sync.WaitGroup
	jobCtx    context.Context // parent of every job execution
	jobStop   context.CancelFunc
	draining  atomic.Bool
	drainCh   chan struct{} // closed when draining starts (ends status streams)
	drainOnce sync.Once
}

// New builds a Server from cfg (zero fields defaulted). With cfg.StoreDir
// set it opens the disk store (running its recovery scan) and the job
// journal, then replays every acknowledged-but-incomplete job: determinism
// makes re-execution idempotent, so the recovered results are byte-identical
// to what the dead process would have produced.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		admit:   make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		work:    make(chan struct{}, cfg.Workers),
		cache:   newResultCache(cfg.CacheEntries),
		start:   time.Now(),
		drainCh: make(chan struct{}),
	}
	s.jobCtx, s.jobStop = context.WithCancel(context.Background())
	s.jobs.init()
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("POST /v1/replicate", s.handleReplicate)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	if cfg.StoreDir != "" {
		disk, err := store.Open(filepath.Join(cfg.StoreDir, "results"))
		if err != nil {
			return nil, err
		}
		s.disk = disk
		journal, entries, err := store.OpenJournal(filepath.Join(cfg.StoreDir, "jobs.wal"))
		if err != nil {
			return nil, err
		}
		s.journal = journal
		s.replayJobs(entries)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain performs the graceful half of shutdown: stop admitting new jobs,
// wait (bounded by ctx) for every in-flight job to finish, then fsync the
// journal and the store so nothing acknowledged rides only in page cache.
// Call it after http.Server.Shutdown has drained the request handlers.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.disk != nil {
		if err := s.disk.Sync(); err != nil {
			return err
		}
	}
	if s.journal != nil {
		if err := s.journal.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the server's background resources: running jobs are
// cancelled (their journal entries stay incomplete, so a reopened server
// re-executes them), and the journal handle closes. Tests and embedders
// should defer it; cmd/passerve prefers Drain first for a clean exit.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.jobStop()
	s.jobWG.Wait()
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// Stats returns a point-in-time snapshot of the serving counters (the same
// data GET /v1/stats reports).
func (s *Server) Stats() Stats {
	st := s.stats.snapshot()
	st.CacheEntries = s.cache.len()
	st.Version = s.cfg.Version
	st.UptimeSec = time.Since(s.start).Seconds()
	if s.disk != nil {
		ds := s.disk.Stats()
		st.StoreEntries = ds.Entries
		st.StoreBytes = ds.Bytes
		st.StoreRecovered = ds.Recovered
		st.StoreQuarantined = ds.Quarantined
	}
	if s.journal != nil {
		st.JournalTorn = s.journal.Torn()
	}
	return st
}

// --- request plumbing ---

// Stable machine-readable error codes. Every 4xx/5xx body is
// {"code": <one of these>, "error": <human message>}; the code set is the
// contract the pasclient retry policy switches on, so codes may be added but
// never renamed or repurposed.
const (
	// CodeBadRequest: the request is malformed or semantically invalid.
	// Permanent — retrying the same bytes cannot succeed.
	CodeBadRequest = "bad_request"
	// CodeNotFound: unknown scenario or job ID. Permanent for scenarios; for
	// jobs it can also mean "ask a different replica".
	CodeNotFound = "not_found"
	// CodeSaturated: the bounded queue was full. Transient — retry after the
	// Retry-After header's delay.
	CodeSaturated = "saturated"
	// CodeDeadline: the request deadline expired (or the client vanished)
	// before the simulation finished. Transient under load; a request that
	// is simply too slow for its budget will deadline again.
	CodeDeadline = "deadline"
	// CodePanic: the simulation panicked. Deterministic, hence permanent —
	// the identical request will panic identically.
	CodePanic = "panic"
	// CodeInternal: an unexpected server-side failure. Transient by default.
	CodeInternal = "internal"
	// CodeNotReady: the job exists but has not finished; its result is not
	// yet fetchable. Transient by construction.
	CodeNotReady = "not_ready"
	// CodeJobFailed: the job ran and failed; its result will never exist.
	// Permanent (determinism again).
	CodeJobFailed = "job_failed"
	// CodeDraining: the server is shutting down and no longer admits jobs.
	// Transient — retry against a live replica (or the restarted process).
	CodeDraining = "draining"
)

// errSaturated reports that the bounded queue was full; it maps to 429.
var errSaturated = errors.New("serve: saturated: all workers busy and queue full")

// httpError is a JSON error with a status and a stable machine-readable code.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, code: CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *httpError {
	return &httpError{status: http.StatusNotFound, code: CodeNotFound, msg: fmt.Sprintf(format, args...)}
}

// simRequest is the shared shape of the two simulation endpoints.
type simRequest struct {
	// Scenario is an inline spec (the scenario.Scenario JSON form) —
	// mutually exclusive with Name.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Name selects a registry scenario.
	Name string `json:"name,omitempty"`
	// Protocol optionally overrides the spec's protocol pin
	// (pas/sas/ns/duty; empty defers to the spec, then to pas).
	Protocol string `json:"protocol,omitempty"`
	// Seed is the single-run seed (POST /v1/runs).
	Seed int64 `json:"seed,omitempty"`
	// Seeds / Reps select the replication seed list (POST /v1/replicate):
	// explicit seeds win, Reps means seeds 1..Reps, default 8 runs.
	Seeds []int64 `json:"seeds,omitempty"`
	Reps  int     `json:"reps,omitempty"`
	// TimeoutSec is the per-request deadline in seconds, clamped to the
	// server's MaxTimeout (0 = server default).
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
	// Shards, when positive, executes the simulation on that many spatially
	// partitioned kernels (node.BuildShardedNetwork). Output is bit-identical
	// at any shard count, so Shards is an execution hint and deliberately
	// NOT part of the result key; a non-shardable spec (lossy channel,
	// collisions, CSMA, faults) is rejected with 400.
	Shards int `json:"shards,omitempty"`
}

// resolveSpec turns the request's scenario selection into a validated spec
// with the effective protocol materialized into it, so the canonical
// encoding — and therefore the cache key — covers the protocol choice.
func (s *Server) resolveSpec(req simRequest) (scenario.Scenario, error) {
	var sp scenario.Scenario
	switch {
	case req.Name != "" && len(req.Scenario) > 0:
		return sp, badRequest("request carries both name %q and an inline scenario; send one", req.Name)
	case req.Name != "":
		var ok bool
		if sp, ok = scenario.Lookup(req.Name); !ok {
			return sp, notFound("unknown scenario %q (GET /v1/scenarios lists the registry)", req.Name)
		}
	case len(req.Scenario) > 0:
		var err error
		if sp, err = scenario.Decode(req.Scenario); err != nil {
			return sp, badRequest("%v", err)
		}
	default:
		return sp, badRequest(`request needs "name" or an inline "scenario"`)
	}
	switch req.Protocol {
	case "":
	case experiment.ProtoPAS, experiment.ProtoSAS, experiment.ProtoNS, experiment.ProtoDuty:
		sp.Protocol.Name = req.Protocol
	default:
		return sp, badRequest("unknown protocol %q (pas, sas, ns or duty)", req.Protocol)
	}
	if sp.Protocol.Name == "" {
		sp.Protocol.Name = experiment.ProtoPAS // materialize the default into the key
	}
	return sp, nil
}

// timeout resolves the request deadline.
func (s *Server) timeout(req simRequest) time.Duration {
	d := s.cfg.DefaultTimeout
	if req.TimeoutSec > 0 {
		d = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// resultKey derives the content address of a request: SHA-256 over the code
// version, endpoint mode, canonical spec and seed list, hex-encoded. Two
// requests share a key iff determinism guarantees they share a byte-
// identical response body.
func resultKey(version, mode string, canon []byte, seeds ...int64) string {
	h := sha256.New()
	io.WriteString(h, version)
	h.Write([]byte{0})
	io.WriteString(h, mode)
	h.Write([]byte{0})
	h.Write(canon)
	h.Write([]byte{0})
	var buf [8]byte
	for _, seed := range seeds {
		binary.LittleEndian.PutUint64(buf[:], uint64(seed))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// deliver serves one simulation-backed request: memory-tier lookup, then
// disk-tier lookup (promoting hits into the LRU), then singleflight-collapsed
// compute under admission control and the request deadline. compute must be a
// pure function of key — it runs at most once per key across all concurrent
// callers, and its result is written through to both tiers.
func (s *Server) deliver(w http.ResponseWriter, r *http.Request, d time.Duration, key string, compute func(ctx context.Context) ([]byte, error)) {
	s.stats.requests.Add(1)
	start := time.Now()
	if body, ok := s.cache.get(key); ok {
		s.stats.cacheHits.Add(1)
		s.writeBody(w, start, key, body, "hit-mem")
		return
	}
	if body, ok := s.diskGet(key); ok {
		s.stats.cacheHits.Add(1)
		s.stats.diskHits.Add(1)
		s.cache.put(key, body)
		s.writeBody(w, start, key, body, "hit-disk")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	body, collapsed, err := s.flight.do(ctx, key, func() ([]byte, error) {
		// Re-check under the flight: a previous flight for this key may have
		// completed (and cached) between our cache miss and becoming leader.
		// This re-check is what makes "simulations executed == distinct
		// keys" exact rather than approximate.
		if body, ok := s.cache.get(key); ok {
			return body, nil
		}
		if body, ok := s.diskGet(key); ok {
			s.cache.put(key, body)
			return body, nil
		}
		body, err := s.admitAndCompute(ctx, compute)
		if err != nil {
			return nil, err
		}
		s.persist(key, body)
		return body, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	if collapsed {
		s.stats.collapsed.Add(1)
	}
	s.stats.cacheMisses.Add(1)
	s.writeBody(w, start, key, body, "miss")
}

// diskGet consults the durable tier, when one is configured.
func (s *Server) diskGet(key string) ([]byte, bool) {
	if s.disk == nil {
		return nil, false
	}
	return s.disk.Get(key)
}

// persist writes a freshly computed body through both store tiers. A disk
// write failure demotes the result to memory-only — the response is still
// correct (determinism lets a future process recompute it), so the request
// must not fail over durability bookkeeping; the failure is counted instead.
func (s *Server) persist(key string, body []byte) {
	s.cache.put(key, body)
	if s.disk != nil {
		if err := s.disk.Put(key, body); err != nil {
			s.stats.storeErrors.Add(1)
		}
	}
}

// admitAndCompute applies backpressure around one simulation: a free slot in
// the bounded admission queue or an immediate errSaturated, then a worker
// slot (waiting under ctx), then the computation itself.
func (s *Server) admitAndCompute(ctx context.Context, compute func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	select {
	case s.admit <- struct{}{}:
	default:
		return nil, errSaturated
	}
	defer func() { <-s.admit }()

	s.stats.queued.Add(1)
	select {
	case s.work <- struct{}{}:
	case <-ctx.Done():
		s.stats.queued.Add(-1)
		return nil, ctx.Err()
	}
	s.stats.queued.Add(-1)
	defer func() { <-s.work }()

	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	s.stats.simulations.Add(1)
	return computeGuarded(ctx, compute)
}

// computeGuarded runs one simulation computation with a panic barrier: a
// spec that passes validation but panics deep in the harness (an infeasible
// poisson deployment saturating its candidate budget, a stimulus-model bug)
// becomes a plain 500 on that request instead of killing the daemon — and,
// because the panic surfaces as an error, the singleflight leader unblocks
// its followers and nothing wedges. The offending key is never cached, so
// the panic message stays reproducible.
func computeGuarded(ctx context.Context, compute func(ctx context.Context) ([]byte, error)) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &httpError{status: http.StatusInternalServerError, code: CodePanic,
				msg: fmt.Sprintf("simulation panicked: %v", r)}
		}
	}()
	return compute(ctx)
}

// writeBody emits a stored/fresh result body verbatim. The cache disposition
// travels in a header, never in the body, so hits stay byte-identical to the
// miss that produced them.
func (s *Server) writeBody(w http.ResponseWriter, start time.Time, key string, body []byte, disposition string) {
	s.stats.lat.record(float64(time.Since(start)) / float64(time.Millisecond))
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", disposition)
	h.Set("X-Result-Key", key)
	w.Write(body)
}

// writeError maps an error to its HTTP status and a JSON body of the shape
// {"code": <stable machine-readable code>, "error": <human message>} — the
// same shape for every 4xx/5xx the server emits, so clients switch on code,
// never on message text.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var he *httpError
	status, code := http.StatusInternalServerError, CodeInternal
	switch {
	case errors.As(err, &he):
		status, code = he.status, he.code
	case errors.Is(err, errSaturated):
		status, code = http.StatusTooManyRequests, CodeSaturated
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.stats.rejected.Add(1)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request deadline expired (or the client went away) before the
		// simulation finished.
		status, code = http.StatusGatewayTimeout, CodeDeadline
		s.stats.deadlined.Add(1)
	}
	if status != http.StatusTooManyRequests && status != http.StatusGatewayTimeout {
		s.stats.errored.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Code: code, Error: err.Error()})
}

// errorBody is the wire shape of every error response.
type errorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// retryAfterSeconds estimates how long a 429'd client should wait before
// retrying: the simulations already admitted (queued plus in flight) drain
// across the worker pool at roughly the observed median latency, plus one
// median-latency slot for the retry itself. Floored at the historical 1 s
// constant, which also covers a cold server with no latency history.
func (s *Server) retryAfterSeconds() int {
	p50, _ := s.stats.lat.quantiles(0.50, 0.99)
	ahead := s.stats.queued.Load() + s.stats.inFlight.Load()
	secs := int(math.Ceil(p50 / 1000 * (float64(ahead)/float64(s.cfg.Workers) + 1)))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// decodeRequest parses a simulation request body, rejecting unknown fields
// so typos fail loudly (matching the scenario codec's discipline).
func decodeRequest(r *http.Request) (simRequest, error) {
	var req simRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, badRequest("decoding request: %v", err)
	}
	return req, nil
}
