package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// testServer starts a passerve instance with test-friendly sizing.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Version == "" {
		cfg.Version = "test"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// mustNew builds a bare server for tests that never serve traffic.
func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// post sends a JSON body and returns the response with its body read.
func post(t *testing.T, url, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// get fetches a path and returns the response with its body read.
func get(t *testing.T, url, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := get(t, ts.URL, "/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("body = %s, want ok", body)
	}
}

// TestScenariosSortedWithHashes pins the registry listing: sorted by name,
// every registry entry present, every hash the canonical content hash.
func TestScenariosSortedWithHashes(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := get(t, ts.URL, "/v1/scenarios")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	all := scenario.All()
	if len(out.Scenarios) != len(all) {
		t.Fatalf("listed %d scenarios, registry has %d", len(out.Scenarios), len(all))
	}
	if !sort.SliceIsSorted(out.Scenarios, func(i, j int) bool {
		return out.Scenarios[i].Name < out.Scenarios[j].Name
	}) {
		t.Fatal("scenario listing is not sorted by name")
	}
	byName := map[string]ScenarioInfo{}
	for _, info := range out.Scenarios {
		byName[info.Name] = info
	}
	for _, sp := range all {
		info, ok := byName[sp.Name]
		if !ok {
			t.Fatalf("registry scenario %q missing from listing", sp.Name)
		}
		want, err := scenario.Hash(sp)
		if err != nil {
			t.Fatal(err)
		}
		if info.Hash != want {
			t.Fatalf("scenario %q hash = %s, want %s", sp.Name, info.Hash, want)
		}
	}
}

// TestRunCacheHit pins the core content-addressing contract: the second
// identical request is a cache hit with a byte-identical body.
func TestRunCacheHit(t *testing.T) {
	s, ts := testServer(t, Config{})
	req := `{"name":"paper","seed":1}`
	resp1, body1 := post(t, ts.URL, "/v1/runs", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%s)", resp1.StatusCode, body1)
	}
	if c := resp1.Header.Get("X-Cache"); c != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", c)
	}
	resp2, body2 := post(t, ts.URL, "/v1/runs", req)
	if c := resp2.Header.Get("X-Cache"); c != "hit-mem" {
		t.Fatalf("second X-Cache = %q, want hit-mem", c)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body differs from computed body:\n%s\n%s", body1, body2)
	}
	var rr RunResponse
	if err := json.Unmarshal(body1, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Scenario != "paper" || rr.Protocol != "pas" || rr.Seed != 1 {
		t.Fatalf("echo fields wrong: %+v", rr)
	}
	if rr.Key != resp1.Header.Get("X-Result-Key") {
		t.Fatal("body key and X-Result-Key header disagree")
	}
	if rr.Report.Detected == 0 || rr.Report.AvgEnergyJ <= 0 {
		t.Fatalf("implausible report: %+v", rr.Report)
	}
	st := s.Stats()
	if st.Simulations != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want 1 simulation, 1 hit, 1 miss", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hitRate = %g, want 0.5", st.HitRate)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("cacheEntries = %d, want 1", st.CacheEntries)
	}
}

// TestRunInlineSpellingSharesCacheLine pins canonicalization reaching the
// key: an inline spec that spells the paper scenario differently (explicit
// defaults) shares the registry entry's cache line.
func TestRunInlineSpellingSharesCacheLine(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp1, body1 := post(t, ts.URL, "/v1/runs", `{"name":"paper","seed":3}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("by-name status = %d (%s)", resp1.StatusCode, body1)
	}
	sp, _ := scenario.Lookup("paper")
	sp.Deployment.Kind = scenario.DeployUniform // explicit default spelling
	sp.Radio.Loss = scenario.LossUnit
	sp.Protocol.Name = "pas"
	spec, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp2, body2 := post(t, ts.URL, "/v1/runs",
		fmt.Sprintf(`{"scenario":%s,"seed":3}`, spec))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("inline status = %d (%s)", resp2.StatusCode, body2)
	}
	if c := resp2.Header.Get("X-Cache"); c != "hit-mem" {
		t.Fatalf("inline respelling X-Cache = %q, want hit-mem (keys %s vs %s)",
			c, resp1.Header.Get("X-Result-Key"), resp2.Header.Get("X-Result-Key"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("inline respelling body differs from by-name body")
	}
	if st := s.Stats(); st.Simulations != 1 {
		t.Fatalf("simulations = %d, want 1", st.Simulations)
	}
}

// TestRunKeySensitivity pins that protocol, seed and mode all reach the key.
func TestRunKeySensitivity(t *testing.T) {
	_, ts := testServer(t, Config{})
	keys := map[string]string{}
	for name, req := range map[string]string{
		"pas-seed1": `{"name":"paper","seed":1}`,
		"sas-seed1": `{"name":"paper","seed":1,"protocol":"sas"}`,
		"pas-seed2": `{"name":"paper","seed":2}`,
	} {
		resp, body := post(t, ts.URL, "/v1/runs", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", name, resp.StatusCode, body)
		}
		keys[name] = resp.Header.Get("X-Result-Key")
	}
	// Replicate at seed 1 must not collide with the run at seed 1.
	resp, body := post(t, ts.URL, "/v1/replicate", `{"name":"paper","seeds":[1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate: status %d (%s)", resp.StatusCode, body)
	}
	keys["replicate-seed1"] = resp.Header.Get("X-Result-Key")
	seen := map[string]string{}
	for name, k := range keys {
		if len(k) != 64 {
			t.Fatalf("%s: key %q is not a sha256 hex digest", name, k)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %s and %s", prev, name)
		}
		seen[k] = name
	}
}

// TestReplicate pins the aggregate endpoint: deterministic bodies, echoed
// seeds, finite right-censored lifetime.
func TestReplicate(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := `{"name":"paper","seeds":[1,2]}`
	resp1, body1 := post(t, ts.URL, "/v1/replicate", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp1.StatusCode, body1)
	}
	resp2, body2 := post(t, ts.URL, "/v1/replicate", req)
	if c := resp2.Header.Get("X-Cache"); c != "hit-mem" {
		t.Fatalf("second X-Cache = %q, want hit-mem", c)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("replicate repeat body differs")
	}
	var rr ReplicateResponse
	if err := json.Unmarshal(body1, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Seeds) != 2 || rr.Seeds[0] != 1 || rr.Seeds[1] != 2 {
		t.Fatalf("seeds = %v, want [1 2]", rr.Seeds)
	}
	if rr.Delay.Mean <= 0 || rr.Energy.Mean <= 0 {
		t.Fatalf("implausible aggregate: %+v", rr)
	}
	if rr.FirstDeath.Mean != 140 { // no batteries: right-censored at horizon
		t.Fatalf("firstDeath mean = %g, want the 140 s horizon", rr.FirstDeath.Mean)
	}
}

// TestReplicateDefaultsToEightSeeds pins the reps default without running 8
// simulations: reps and the matching explicit seed list share one key.
func TestReplicateDefaultSeedList(t *testing.T) {
	seeds, err := resolveSeeds(simRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 8 || seeds[0] != 1 || seeds[7] != 8 {
		t.Fatalf("default seeds = %v, want 1..8", seeds)
	}
	three, err := resolveSeeds(simRequest{Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(three) != 3 || three[2] != 3 {
		t.Fatalf("reps 3 seeds = %v, want [1 2 3]", three)
	}
}

// TestValidationErrors sweeps the 4xx surface and pins the unified error
// body: every failure is {"code": <stable code>, "error": <message>}, the
// code being what clients switch retry policy on.
func TestValidationErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"no selector", "/v1/runs", `{"seed":1}`, 400, CodeBadRequest},
		{"both selectors", "/v1/runs", `{"name":"paper","scenario":{"name":"x"},"seed":1}`, 400, CodeBadRequest},
		{"unknown name", "/v1/runs", `{"name":"nope"}`, 404, CodeNotFound},
		{"unknown protocol", "/v1/runs", `{"name":"paper","protocol":"tdma"}`, 400, CodeBadRequest},
		{"bad json", "/v1/runs", `{"name":`, 400, CodeBadRequest},
		{"unknown field", "/v1/runs", `{"name":"paper","sede":1}`, 400, CodeBadRequest},
		{"invalid inline spec", "/v1/runs", `{"scenario":{"name":"x","nodes":0,"horizon":1,"field":{"min":{"x":0,"y":0},"max":{"x":1,"y":1}},"radio":{"range":1},"stimulus":{"kind":"radial"}}}`, 400, CodeBadRequest},
		{"seeds and reps", "/v1/replicate", `{"name":"paper","seeds":[1],"reps":2}`, 400, CodeBadRequest},
		{"too many reps", "/v1/replicate", `{"name":"paper","reps":65}`, 400, CodeBadRequest},
		{"negative reps", "/v1/replicate", `{"name":"paper","reps":-1}`, 400, CodeBadRequest},
		{"negative shards", "/v1/runs", `{"name":"paper","seed":1,"shards":-1}`, 400, CodeBadRequest},
		{"job bad mode", "/v1/jobs", `{"mode":"batch","name":"paper"}`, 400, CodeBadRequest},
		{"job unknown name", "/v1/jobs", `{"name":"nope"}`, 404, CodeNotFound},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL, tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not {code, error}", tc.name, body)
		}
		if e.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, e.Code, tc.code)
		}
	}
	resp, _ := get(t, ts.URL, "/v1/runs")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/runs status = %d, want 405", resp.StatusCode)
	}
}

// TestDeadlineMapsTo504 pins the per-request deadline: a microscopic budget
// expires before (or during) the simulation and surfaces as 504.
func TestDeadlineMapsTo504(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp, body := post(t, ts.URL, "/v1/runs", `{"name":"paper","seed":99,"timeoutSec":1e-9}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, body)
	}
	if st := s.Stats(); st.Deadlined != 1 {
		t.Fatalf("deadlined = %d, want 1", st.Deadlined)
	}
}

// TestSaturationMapsTo429 saturates the bounded queue directly (the admission
// channel is capacity Workers+QueueDepth) and verifies a request needing a
// simulation is rejected up front with 429 + Retry-After.
func TestSaturationMapsTo429(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	for i := 0; i < cap(s.admit); i++ {
		s.admit <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.admit); i++ {
			<-s.admit
		}
	}()
	resp, body := post(t, ts.URL, "/v1/runs", `{"name":"paper","seed":42}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if st := s.Stats(); st.Rejected != 1 || st.Simulations != 0 {
		t.Fatalf("stats = %+v, want 1 rejection, 0 simulations", st)
	}
}

// TestStatsEndpoint checks the wire shape round-trips and carries the
// configured version.
func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Version: "v-test"})
	post(t, ts.URL, "/v1/runs", `{"name":"paper","seed":1}`)
	resp, body := get(t, ts.URL, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != "v-test" {
		t.Fatalf("version = %q, want v-test", st.Version)
	}
	if st.Requests != 1 || st.Simulations != 1 {
		t.Fatalf("stats = %+v, want 1 request / 1 simulation", st)
	}
	if st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
		t.Fatalf("latency quantiles implausible: p50 %g p99 %g", st.P50Ms, st.P99Ms)
	}
}

// --- unit tests for the building blocks ---

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Workers <= 0 || cfg.QueueDepth != 4*cfg.Workers {
		t.Fatalf("worker defaults wrong: %+v", cfg)
	}
	if cfg.DefaultTimeout != 30*time.Second || cfg.MaxTimeout != 2*time.Minute {
		t.Fatalf("timeout defaults wrong: %+v", cfg)
	}
	if cfg.CacheEntries != 4096 || cfg.Version == "" {
		t.Fatalf("cache/version defaults wrong: %+v", cfg)
	}
	s := mustNew(t, Config{DefaultTimeout: time.Hour, MaxTimeout: time.Minute})
	if d := s.timeout(simRequest{}); d != time.Minute {
		t.Fatalf("default timeout not clamped to max: %v", d)
	}
	if d := s.timeout(simRequest{TimeoutSec: 1}); d != time.Second {
		t.Fatalf("timeoutSec 1 = %v, want 1s", d)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", []byte("C")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if body, ok := c.get("a"); !ok || string(body) != "A" {
		t.Fatal("a lost or corrupted")
	}
	c.put("a", []byte("A")) // existing key: recency refresh only
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestFlightGroupCollapse(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	var calls int
	type out struct {
		body      []byte
		collapsed bool
		err       error
	}
	results := make(chan out, 2)
	go func() {
		body, collapsed, err := g.do(context.Background(), "k", func() ([]byte, error) {
			calls++
			close(started)
			<-release
			return []byte("V"), nil
		})
		results <- out{body, collapsed, err}
	}()
	<-started
	go func() {
		body, collapsed, err := g.do(context.Background(), "k", func() ([]byte, error) {
			calls++
			return []byte("V"), nil
		})
		results <- out{body, collapsed, err}
	}()
	time.Sleep(10 * time.Millisecond) // let the follower join the flight
	close(release)
	var collapsedSeen int
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil || string(r.body) != "V" {
			t.Fatalf("result = %+v", r)
		}
		if r.collapsed {
			collapsedSeen++
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if collapsedSeen != 1 {
		t.Fatalf("collapsed count = %d, want 1 (one leader, one follower)", collapsedSeen)
	}
}

func TestFlightGroupFollowerCtxDeath(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	go g.do(context.Background(), "k", func() ([]byte, error) {
		close(started)
		<-release
		return []byte("V"), nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, collapsed, err := g.do(ctx, "k", func() ([]byte, error) {
		t.Fatal("follower must not run fn")
		return nil, nil
	})
	if !collapsed || !errors.Is(err, context.Canceled) {
		t.Fatalf("collapsed=%v err=%v, want collapsed canceled", collapsed, err)
	}
	close(release)
}

func TestLatencyWindowQuantiles(t *testing.T) {
	var w latencyWindow
	if p50, p99 := w.quantiles(0.5, 0.99); p50 != 0 || p99 != 0 {
		t.Fatal("empty window must report zeros")
	}
	for i := 1; i <= 100; i++ {
		w.record(float64(i))
	}
	p50, p99 := w.quantiles(0.5, 0.99)
	if p50 < 45 || p50 > 55 || p99 < 95 || p99 > 100 {
		t.Fatalf("p50 %g p99 %g implausible for 1..100", p50, p99)
	}
	// Overflow the ring: old observations fall out of the window.
	for i := 0; i < latencyWindowSize+10; i++ {
		w.record(1000)
	}
	p50, _ = w.quantiles(0.5, 0.99)
	if p50 != 1000 {
		t.Fatalf("p50 = %g after ring overflow, want 1000", p50)
	}
}

func TestCodeVersionNonEmpty(t *testing.T) {
	if CodeVersion() == "" {
		t.Fatal("CodeVersion must never be empty")
	}
}
