package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/scenario"
)

// infeasiblePoissonSpec builds a spec that passes validation but panics deep
// in the harness: 200 nodes at a 5 m Poisson-disk spacing cannot fit a
// 10×10 m field, so the deployment generator saturates and panics mid-Build.
// It is the canonical "valid-looking request that explodes" probe for the
// serving layer's panic barrier.
func infeasiblePoissonSpec(t *testing.T) []byte {
	t.Helper()
	sp := scenario.Scenario{
		Name:       "infeasible-poisson",
		Field:      geom.R(0, 0, 10, 10),
		Nodes:      200,
		Horizon:    30,
		Deployment: scenario.DeploymentSpec{Kind: scenario.DeployPoisson, MinDist: 5},
		Radio:      scenario.RadioSpec{Range: 10},
		Stimulus:   scenario.StimulusSpec{Kind: scenario.StimRadial, Origin: geom.V(0, 0), Speed: 1, Start: 1},
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("the panic probe must pass validation (it guards Build, not Validate): %v", err)
	}
	raw, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestServeLoadPanicRecovery drives a panicking spec through the daemon
// under concurrent healthy load and pins the panic-barrier contract: the
// offending requests get a clean 500 naming the panic, every healthy request
// still gets its 200, the health endpoint keeps answering afterwards, and
// the worker/admission slots all drain (a leaked slot would wedge the pool).
func TestServeLoadPanicRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	const clients = 40
	s, ts := testServer(t, Config{Workers: 2, QueueDepth: clients})
	badSpec := infeasiblePoissonSpec(t)

	type outcome struct {
		status int
		body   string
	}
	outcomes := make([]outcome, clients)
	bad := func(i int) bool { return i%4 == 0 }
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var body string
			if bad(i) {
				// Distinct seeds keep every panicking request a distinct key:
				// each one must reach the barrier, not a cached error.
				body = fmt.Sprintf(`{"scenario":%s,"seed":%d}`, badSpec, i)
			} else {
				body = fmt.Sprintf(`{"name":"paper","seed":%d}`, i%6)
			}
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			outcomes[i] = outcome{resp.StatusCode, string(b)}
		}(i)
	}
	wg.Wait()

	var panics int
	for i, o := range outcomes {
		if bad(i) {
			if o.status != http.StatusInternalServerError {
				t.Fatalf("panicking request %d: status %d (%s), want 500", i, o.status, o.body)
			}
			if !strings.Contains(o.body, "panicked") || !strings.Contains(o.body, "poisson") {
				t.Fatalf("panicking request %d: body %q should name the panic", i, o.body)
			}
			panics++
		} else if o.status != http.StatusOK {
			t.Fatalf("healthy request %d: status %d (%s), want 200", i, o.status, o.body)
		}
	}

	// The daemon must still be alive and serving after every panic.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz after panics: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics: status %d", resp.StatusCode)
	}

	st := s.Stats()
	if st.Errors != uint64(panics) {
		t.Fatalf("errors = %d, want %d (one per panicking request)", st.Errors, panics)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("gauges not drained after panics: %+v", st)
	}
}

// TestRetryAfterEstimate pins the saturation Retry-After estimate: with no
// latency history it falls back to the 1 s floor, and with recorded
// latencies it scales with the work admitted ahead of the retrying client.
func TestRetryAfterEstimate(t *testing.T) {
	s := mustNew(t, Config{Workers: 2, QueueDepth: 8, Version: "test"})
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("cold server Retry-After = %d, want the 1 s floor", got)
	}

	// Median latency 2000 ms across 2 workers with 6 simulations ahead:
	// ceil(2 × (6/2 + 1)) = 8 s.
	for i := 0; i < 8; i++ {
		s.stats.lat.record(2000)
	}
	s.stats.queued.Store(4)
	s.stats.inFlight.Store(2)
	if got := s.retryAfterSeconds(); got != 8 {
		t.Fatalf("Retry-After = %d, want 8 (p50 2 s, 6 ahead, 2 workers)", got)
	}

	// Fast simulations round up to the floor, never to zero.
	s2 := mustNew(t, Config{Workers: 4, Version: "test"})
	for i := 0; i < 8; i++ {
		s2.stats.lat.record(10)
	}
	if got := s2.retryAfterSeconds(); got != 1 {
		t.Fatalf("fast-path Retry-After = %d, want the 1 s floor", got)
	}
}
