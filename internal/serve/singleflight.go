package serve

import (
	"context"
	"sync"
)

// flight is one in-progress computation shared by every request that asked
// for the same key while it ran.
type flight struct {
	done chan struct{} // closed when body/err are final
	body []byte
	err  error
}

// flightGroup collapses concurrent duplicate work: the first caller for a key
// becomes the leader and runs fn; followers arriving before the leader
// finishes block on the shared flight instead of recomputing. Determinism
// makes this sound — identical keys denote byte-identical results, so a
// follower cannot observe a difference from having computed its own.
//
// The flight is keyed only while in progress (the leader deletes it when
// done); completed results live in the content-addressed cache, which fn is
// expected to consult first, closing the finished-but-just-evicted race by
// recomputation rather than by blocking.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do returns fn's result for key, collapsing concurrent callers onto one
// execution. collapsed reports whether this caller shared another caller's
// flight. A follower whose ctx dies while waiting unblocks with ctx.Err();
// the leader itself always runs fn to completion under its own ctx, so one
// impatient follower cannot poison the shared result.
func (g *flightGroup) do(ctx context.Context, key string, fn func() ([]byte, error)) (body []byte, collapsed bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.body, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	g.m[key] = f
	g.mu.Unlock()

	f.body, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.body, false, f.err
}
