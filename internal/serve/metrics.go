package serve

import (
	"sort"
	"sync"
	"sync/atomic"
)

// serverStats holds the monotonically increasing counters and gauges behind
// GET /v1/stats. Counters are atomics so the hot path never takes a lock;
// the latency window has its own small mutex.
type serverStats struct {
	requests    atomic.Uint64 // simulation-endpoint requests accepted for processing
	cacheHits   atomic.Uint64 // requests served from the result store
	cacheMisses atomic.Uint64 // requests that had to simulate
	collapsed   atomic.Uint64 // requests that shared another request's in-flight simulation
	simulations atomic.Uint64 // distinct simulations actually executed
	rejected    atomic.Uint64 // 429s issued under saturation
	deadlined   atomic.Uint64 // requests lost to their deadline or disconnect
	errored     atomic.Uint64 // 4xx/5xx other than the above
	inFlight    atomic.Int64  // simulations running right now (gauge)
	queued      atomic.Int64  // admitted simulations waiting for a worker (gauge)

	diskHits    atomic.Uint64 // cache hits served from the durable tier
	storeErrors atomic.Uint64 // failed disk-store writes (results stayed memory-only)

	jobsSubmitted atomic.Uint64 // 202-acknowledged job submissions
	jobsCompleted atomic.Uint64 // jobs that reached done
	jobsFailed    atomic.Uint64 // jobs that reached failed
	jobsActive    atomic.Int64  // jobs pending or running right now (gauge)
	jobsReplayed  atomic.Uint64 // incomplete jobs re-executed at startup

	lat latencyWindow
}

// Stats is the JSON shape of GET /v1/stats.
type Stats struct {
	Requests     uint64  `json:"requests"`
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	HitRate      float64 `json:"hitRate"`
	Collapsed    uint64  `json:"collapsed"`
	Simulations  uint64  `json:"simulations"`
	Rejected     uint64  `json:"rejected"`
	Deadlined    uint64  `json:"deadlined"`
	Errors       uint64  `json:"errors"`
	InFlight     int64   `json:"inFlight"`
	Queued       int64   `json:"queued"`
	CacheEntries int     `json:"cacheEntries"`
	P50Ms        float64 `json:"p50Ms"`
	P99Ms        float64 `json:"p99Ms"`
	Version      string  `json:"version"`
	UptimeSec    float64 `json:"uptimeSec"`

	// Durability gauges (zero without a StoreDir).
	DiskHits         uint64 `json:"diskHits"`
	StoreEntries     int    `json:"storeEntries"`
	StoreBytes       int64  `json:"storeBytes"`
	StoreRecovered   int    `json:"storeRecovered"`
	StoreQuarantined int    `json:"storeQuarantined"`
	StoreErrors      uint64 `json:"storeErrors"`
	JournalTorn      int    `json:"journalTorn"`

	// Async-job counters.
	JobsSubmitted uint64 `json:"jobsSubmitted"`
	JobsCompleted uint64 `json:"jobsCompleted"`
	JobsFailed    uint64 `json:"jobsFailed"`
	JobsActive    int64  `json:"jobsActive"`
	JobsReplayed  uint64 `json:"jobsReplayed"`
}

// snapshot folds the counters into the wire shape. hitRate is hits over
// terminal cache decisions (hits + misses); it reads 0 before any traffic.
func (s *serverStats) snapshot() Stats {
	hits, misses := s.cacheHits.Load(), s.cacheMisses.Load()
	out := Stats{
		Requests:    s.requests.Load(),
		CacheHits:   hits,
		CacheMisses: misses,
		Collapsed:   s.collapsed.Load(),
		Simulations: s.simulations.Load(),
		Rejected:    s.rejected.Load(),
		Deadlined:   s.deadlined.Load(),
		Errors:      s.errored.Load(),
		InFlight:    s.inFlight.Load(),
		Queued:      s.queued.Load(),

		DiskHits:    s.diskHits.Load(),
		StoreErrors: s.storeErrors.Load(),

		JobsSubmitted: s.jobsSubmitted.Load(),
		JobsCompleted: s.jobsCompleted.Load(),
		JobsFailed:    s.jobsFailed.Load(),
		JobsActive:    s.jobsActive.Load(),
		JobsReplayed:  s.jobsReplayed.Load(),
	}
	if hits+misses > 0 {
		out.HitRate = float64(hits) / float64(hits+misses)
	}
	out.P50Ms, out.P99Ms = s.lat.quantiles(0.50, 0.99)
	return out
}

// latencyWindowSize bounds the sliding window the latency quantiles are
// computed over; at high traffic the window simply reflects recent requests.
const latencyWindowSize = 4096

// latencyWindow is a fixed-size ring of recent request latencies in
// milliseconds. Quantiles are computed on demand — /v1/stats is not a hot
// path — over a copy, so recording never blocks behind a sort.
type latencyWindow struct {
	mu   sync.Mutex
	ring [latencyWindowSize]float64
	n    int // total recorded (ring index = n % size)
}

// record adds one latency observation.
func (w *latencyWindow) record(ms float64) {
	w.mu.Lock()
	w.ring[w.n%latencyWindowSize] = ms
	w.n++
	w.mu.Unlock()
}

// quantiles returns the two requested quantiles (nearest-rank over the
// window), or zeros before any observation.
func (w *latencyWindow) quantiles(q1, q2 float64) (float64, float64) {
	w.mu.Lock()
	n := w.n
	if n > latencyWindowSize {
		n = latencyWindowSize
	}
	buf := make([]float64, n)
	copy(buf, w.ring[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	at := func(q float64) float64 {
		i := int(q * float64(n-1))
		return buf[i]
	}
	return at(q1), at(q2)
}
