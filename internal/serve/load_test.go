package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestServeLoadMixed is the load harness of the serving layer: hundreds of
// concurrent requests — a mix of identical and distinct, runs and replicates —
// against a small worker pool. It pins the three serving invariants at once:
//
//  1. every response for a key is byte-identical, cached or computed;
//  2. simulations executed == distinct keys (content addressing plus
//     singleflight collapse absorb every duplicate);
//  3. nothing is dropped: with admission sized to the distinct-key working
//     set, every request succeeds.
//
// Run it under -race: the cache, flight group and counters are all exercised
// from many goroutines here.
func TestServeLoadMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	const (
		distinctRuns = 12 // distinct run keys (paper scenario, seeds 0..11)
		replicates   = 2  // distinct replicate keys
		clients      = 300
	)
	distinct := distinctRuns + replicates
	// Admission must cover the distinct working set (duplicates never enter
	// admission: they collapse onto flights or hit the cache), so no 429s.
	s, ts := testServer(t, Config{Workers: 4, QueueDepth: distinct})

	requests := make([]struct{ path, body string }, clients)
	for i := range requests {
		switch {
		case i%10 == 8:
			requests[i].path = "/v1/replicate"
			requests[i].body = fmt.Sprintf(`{"name":"paper","seeds":[%d,%d]}`, i%replicates+1, i%replicates+2)
		case i%10 == 9:
			requests[i].path = "/v1/replicate"
			requests[i].body = fmt.Sprintf(`{"name":"paper","reps":%d}`, i%replicates+2)
		default:
			requests[i].path = "/v1/runs"
			requests[i].body = fmt.Sprintf(`{"name":"paper","seed":%d}`, i%distinctRuns)
		}
	}
	// The two replicate shapes above deliberately overlap: seeds [1,2] and
	// reps 2 are the same seed list, so they must share a key. Recompute the
	// true distinct-key count from the request set.
	type outcome struct {
		status int
		key    string
		body   []byte
	}
	outcomes := make([]outcome, clients)
	var wg sync.WaitGroup
	for i := range requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+requests[i].path, "application/json",
				strings.NewReader(requests[i].body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			outcomes[i] = outcome{resp.StatusCode, resp.Header.Get("X-Result-Key"), body}
		}(i)
	}
	wg.Wait()

	byKey := map[string][]byte{}
	for i, o := range outcomes {
		if o.status != http.StatusOK {
			t.Fatalf("request %d (%s %s): status %d (%s)",
				i, requests[i].path, requests[i].body, o.status, o.body)
		}
		if prev, ok := byKey[o.key]; ok {
			if !bytes.Equal(prev, o.body) {
				t.Fatalf("key %s served two different bodies", o.key)
			}
		} else {
			byKey[o.key] = o.body
		}
	}
	if len(byKey) != distinct {
		t.Fatalf("distinct keys = %d, want %d", len(byKey), distinct)
	}
	st := s.Stats()
	if st.Simulations != uint64(distinct) {
		t.Fatalf("simulations = %d, want exactly %d (one per distinct key)", st.Simulations, distinct)
	}
	if st.Requests != clients {
		t.Fatalf("requests = %d, want %d", st.Requests, clients)
	}
	if got := st.CacheHits + st.CacheMisses; got != clients {
		t.Fatalf("hits+misses = %d, want %d", got, clients)
	}
	if st.Rejected != 0 || st.Deadlined != 0 || st.Errors != 0 {
		t.Fatalf("unexpected failures: %+v", st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("gauges not drained: %+v", st)
	}
}

// TestServeLoadSaturation drives far more distinct simulations than the
// admission bound allows concurrently and verifies the overflow is rejected
// cleanly: every response is either 200 or 429, the 429s carry Retry-After,
// and rejected requests execute no simulation.
func TestServeLoadSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	const clients = 120
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})

	var wg sync.WaitGroup
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every request is a distinct key, so none can collapse.
			body := fmt.Sprintf(`{"name":"paper","seed":%d}`, 1000+i)
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()

	var ok, rejected int
	for i, code := range statuses {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("request %d: status %d, want 200 or 429", i, code)
		}
	}
	if ok+rejected != clients {
		t.Fatalf("accounted %d of %d requests", ok+rejected, clients)
	}
	st := s.Stats()
	if st.Simulations != uint64(ok) {
		t.Fatalf("simulations = %d, want %d (one per accepted request)", st.Simulations, ok)
	}
	if st.Rejected != uint64(rejected) {
		t.Fatalf("rejected counter = %d, want %d", st.Rejected, rejected)
	}
	if ok == 0 {
		t.Fatal("saturation drowned every request; expected at least one success")
	}
}

// BenchmarkServeCacheHitInternal measures the full HTTP round-trip of a
// cache hit against the in-process handler (no network), the steady-state
// cost of the content-addressed store. The root-package BenchmarkServeCacheHit
// wraps this path through the public API for the benchcheck baseline.
func BenchmarkServeCacheHitInternal(b *testing.B) {
	s := mustNew(b, Config{Version: "bench"})
	req := `{"name":"paper","seed":1}`
	warm := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(req))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(req))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Header().Get("X-Cache") != "hit-mem" {
			b.Fatal("expected a cache hit")
		}
	}
}
