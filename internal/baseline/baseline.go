// Package baseline implements the non-predictive comparison protocols: NS
// (no-sleeping, the paper's always-on baseline) and a fixed-period
// duty-cycling agent used by the ablation experiments.
package baseline

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/radio"
	"repro/internal/sim"
)

// NS is the paper's no-sleeping baseline: the node never sleeps, so it
// detects the stimulus with zero delay at maximum energy cost.
type NS struct{}

var _ node.Agent = (*NS)(nil)

// NewNS returns a no-sleeping agent.
func NewNS() *NS { return &NS{} }

// Init implements node.Agent.
func (*NS) Init(n *node.Node) { n.SetState(node.StateSafe) }

// OnWake implements node.Agent (never called: NS never sleeps).
func (*NS) OnWake(*node.Node) {}

// OnDetect implements node.Agent.
func (*NS) OnDetect(n *node.Node) { n.SetState(node.StateCovered) }

// OnStimulusGone implements node.Agent.
func (*NS) OnStimulusGone(n *node.Node) { n.SetState(node.StateSafe) }

// OnMessage implements node.Agent: NS nodes exchange no protocol traffic.
func (*NS) OnMessage(*node.Node, radio.NodeID, radio.Envelope) {}

// DutyCycle sleeps and wakes on a fixed period regardless of the stimulus —
// the oblivious power-management strawman. Awake for OnTime, asleep for
// Period−OnTime, repeating.
type DutyCycle struct {
	Period float64
	OnTime float64

	n *node.Node // bound at Init for the closure-free sleep handler
}

var _ node.Agent = (*DutyCycle)(nil)

// NewDutyCycle returns a fixed duty-cycling agent; period must exceed the
// on-time and both must be positive.
func NewDutyCycle(period, onTime float64) *DutyCycle {
	if period <= 0 || onTime <= 0 || onTime >= period {
		panic(fmt.Sprintf("baseline: invalid duty cycle period=%g on=%g", period, onTime))
	}
	return &DutyCycle{Period: period, OnTime: onTime}
}

// Init implements node.Agent.
func (d *DutyCycle) Init(n *node.Node) {
	d.n = n
	n.SetState(node.StateSafe)
	d.scheduleSleep(n)
}

// dutySleep is the shared arg handler behind scheduleSleep; passing the
// agent as the event argument keeps the periodic cycle allocation-free.
func dutySleep(_ *sim.Kernel, arg any) {
	d := arg.(*DutyCycle)
	if d.n.IsAwake() && d.n.State() != node.StateCovered {
		d.n.Sleep(d.Period - d.OnTime)
	}
}

// scheduleSleep stays awake for OnTime, then sleeps out the period (unless
// the node became covered meanwhile, in which case it keeps monitoring).
func (d *DutyCycle) scheduleSleep(n *node.Node) {
	n.Kernel().ScheduleArg(d.OnTime, dutySleep, d)
}

// OnWake implements node.Agent.
func (d *DutyCycle) OnWake(n *node.Node) { d.scheduleSleep(n) }

// OnDetect implements node.Agent: once covered, stay awake to monitor.
func (d *DutyCycle) OnDetect(n *node.Node) { n.SetState(node.StateCovered) }

// OnStimulusGone implements node.Agent.
func (d *DutyCycle) OnStimulusGone(n *node.Node) {
	n.SetState(node.StateSafe)
	d.scheduleSleep(n)
}

// OnMessage implements node.Agent: duty-cycled nodes are silent.
func (*DutyCycle) OnMessage(*node.Node, radio.NodeID, radio.Envelope) {}
