package baseline

import (
	"math"
	"testing"

	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
)

func buildNet(t *testing.T, agents func(radio.NodeID) node.Agent) (*node.Network, diffusion.Scenario) {
	t.Helper()
	sc := diffusion.PaperScenario()
	dep := deploy.Grid(nil, sc.Field, 5, 5, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     agents,
	})
	return nw, sc
}

func TestNSZeroDelay(t *testing.T) {
	nw, sc := buildNet(t, func(radio.NodeID) node.Agent { return NewNS() })
	nw.Run(sc.Horizon)
	for _, n := range nw.Nodes {
		if n.TrueArrival() > sc.Horizon {
			continue
		}
		d, ok := n.DetectionDelay()
		if !ok {
			t.Fatalf("NS node %d missed the stimulus", n.ID())
		}
		if d != 0 {
			t.Fatalf("NS node %d delay = %v, want 0", n.ID(), d)
		}
		if n.State() != node.StateCovered {
			t.Errorf("covered NS node %d in state %v", n.ID(), n.State())
		}
	}
}

func TestNSEnergyIsAlwaysOn(t *testing.T) {
	nw, sc := buildNet(t, func(radio.NodeID) node.Agent { return NewNS() })
	nw.Run(sc.Horizon)
	want := 0.041 * sc.Horizon
	for _, n := range nw.Nodes {
		if got := n.Meter().TotalJ(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("NS node energy = %v, want %v", got, want)
		}
		b := n.Meter().Breakdown()
		if b.SleepSec != 0 {
			t.Fatalf("NS node slept %v s", b.SleepSec)
		}
	}
}

func TestNSSendsNothing(t *testing.T) {
	nw, sc := buildNet(t, func(radio.NodeID) node.Agent { return NewNS() })
	nw.Run(sc.Horizon)
	if st := nw.Medium.Stats(); st.Broadcasts != 0 {
		t.Errorf("NS network sent %d messages", st.Broadcasts)
	}
}

func TestDutyCycleSleepsOnSchedule(t *testing.T) {
	// Far-away stimulus: pure duty cycling. Period 10, on 2 → duty 20%.
	far := diffusion.NewRadialFront(geom.V(-1e6, 0), 0.001, 0)
	dep := deploy.Grid(nil, geom.R(0, 0, 40, 40), 3, 3, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   far,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return NewDutyCycle(10, 2) },
	})
	nw.Run(100)
	for _, n := range nw.Nodes {
		b := n.Meter().Breakdown()
		duty := b.DutyCycle()
		if duty < 0.15 || duty > 0.3 {
			t.Fatalf("node %d duty cycle = %v, want ~0.2", n.ID(), duty)
		}
	}
}

func TestDutyCycleDetectsLate(t *testing.T) {
	nw, sc := buildNet(t, func(radio.NodeID) node.Agent { return NewDutyCycle(10, 1) })
	nw.Run(sc.Horizon)
	detected := 0
	for _, n := range nw.Nodes {
		if n.TrueArrival() > sc.Horizon {
			continue
		}
		d, ok := n.DetectionDelay()
		if !ok {
			t.Fatalf("duty-cycle node %d missed the stimulus entirely", n.ID())
		}
		detected++
		if d < 0 || d > 9.001 {
			t.Errorf("node %d delay = %v, want within the off period", n.ID(), d)
		}
	}
	if detected == 0 {
		t.Fatal("nothing detected")
	}
}

func TestDutyCycleStaysAwakeOnceCovered(t *testing.T) {
	nw, sc := buildNet(t, func(radio.NodeID) node.Agent { return NewDutyCycle(10, 1) })
	nw.Run(sc.Horizon)
	for _, n := range nw.Nodes {
		if _, ok := n.Detected(); ok {
			if n.State() != node.StateCovered {
				t.Errorf("detected node %d in state %v", n.ID(), n.State())
			}
			if !n.IsAwake() {
				t.Errorf("covered duty-cycle node %d asleep", n.ID())
			}
		}
	}
}

func TestDutyCyclePanics(t *testing.T) {
	cases := []struct{ period, on float64 }{
		{0, 1}, {10, 0}, {5, 5}, {5, 7},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("period=%v on=%v did not panic", c.period, c.on)
				}
			}()
			NewDutyCycle(c.period, c.on)
		}()
	}
}

func TestNSOnRecedingStimulus(t *testing.T) {
	// NS nodes return to safe when the stimulus leaves (Fig. 3 transition).
	inner := diffusion.NewRadialFront(geom.V(0, 20), 0.5, 5)
	stim := diffusion.NewReceding(inner, 10)
	dep := deploy.Grid(nil, geom.R(0, 0, 40, 40), 3, 3, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   stim,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return NewNS() },
	})
	nw.Run(140)
	for _, n := range nw.Nodes {
		if _, ok := n.Detected(); ok && n.State() == node.StateCovered {
			// Receding stimulus with 10 s dwell: nothing stays covered at
			// the end of a 140 s run whose last arrivals are ≈ t=95.
			t.Errorf("node %d still covered at horizon", n.ID())
		}
	}
}

func TestDutyCycleOnRecedingStimulus(t *testing.T) {
	inner := diffusion.NewRadialFront(geom.V(0, 20), 0.5, 5)
	stim := diffusion.NewReceding(inner, 10)
	dep := deploy.Grid(nil, geom.R(0, 0, 40, 40), 3, 3, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   stim,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return NewDutyCycle(10, 1) },
	})
	nw.Run(140)
	// Nodes that detected and saw the stimulus leave resumed duty cycling:
	// their total duty stays below always-on.
	resumed := 0
	for _, n := range nw.Nodes {
		if _, ok := n.Detected(); ok {
			if b := n.Meter().Breakdown(); b.DutyCycle() < 0.9 {
				resumed++
			}
		}
	}
	if resumed == 0 {
		t.Error("no duty-cycle node resumed sleeping after the stimulus passed")
	}
}

func TestNSIgnoresMessages(t *testing.T) {
	// Feeding a message to an NS agent must be a no-op (no panic, no state).
	agent := NewNS()
	agent.OnMessage(nil, 0, radio.Envelope{})
	d := NewDutyCycle(10, 1)
	d.OnMessage(nil, 0, radio.Envelope{})
}
