package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/node"
	"repro/internal/radio"
)

func buildPASNet(t *testing.T) (*node.Network, diffusion.Scenario) {
	t.Helper()
	sc := diffusion.PaperScenario()
	dep := deploy.Grid(nil, sc.Field, 5, 5, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return core.New(core.DefaultConfig()) },
	})
	return nw, sc
}

func TestRenderFieldGlyphs(t *testing.T) {
	nw, sc := buildPASNet(t)
	nw.Run(60)
	out := RenderField(sc.Field, sc.Stimulus, nw.Nodes, 60, 40, 20)
	if !strings.Contains(out, "t=60.0s") {
		t.Error("missing timestamp")
	}
	if !strings.ContainsRune(out, GlyphStim) {
		t.Error("no stimulus texture at t=60")
	}
	if !strings.ContainsRune(out, GlyphCovered) {
		t.Error("no covered nodes rendered")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 21 { // header + 20 rows
		t.Fatalf("rows = %d", len(lines))
	}
	for _, l := range lines[1:] {
		if len(l) != 40 {
			t.Fatalf("row width = %d", len(l))
		}
	}
}

func TestRenderFieldBeforeStimulus(t *testing.T) {
	nw, sc := buildPASNet(t)
	nw.Run(5) // stimulus starts at t=10
	out := RenderField(sc.Field, sc.Stimulus, nw.Nodes, 5, 30, 15)
	if strings.ContainsRune(out, GlyphStim) {
		t.Error("stimulus rendered before start")
	}
	// Minimum dimensions clamp instead of breaking.
	tiny := RenderField(sc.Field, sc.Stimulus, nw.Nodes, 5, 1, 1)
	if !strings.Contains(tiny, "t=5.0s") {
		t.Error("tiny render broken")
	}
}

func TestRenderFailedGlyph(t *testing.T) {
	nw, sc := buildPASNet(t)
	nw.Nodes[0].FailAt(1)
	nw.Run(10)
	out := RenderField(sc.Field, sc.Stimulus, nw.Nodes, 10, 40, 20)
	if !strings.ContainsRune(out, GlyphFailed) {
		t.Error("failed node not rendered as x")
	}
}

func TestStateLog(t *testing.T) {
	nw, sc := buildPASNet(t)
	var log StateLog
	log.Attach(nw.Nodes)
	nw.Run(sc.Horizon)
	if len(log.Transitions) == 0 {
		t.Fatal("no transitions recorded")
	}
	if log.CountTo(node.StateCovered) == 0 {
		t.Error("no covered transitions")
	}
	first := log.FirstTo(node.StateCovered)
	if math.IsInf(first, 1) || first < 10 {
		t.Errorf("first covered at %v", first)
	}
	if log.FirstTo(node.State(9)) != math.Inf(1) {
		t.Error("bogus state has a first time")
	}
	sum := log.Summary()
	if !strings.Contains(sum, "transitions") || !strings.Contains(sum, "covered") {
		t.Errorf("summary = %q", sum)
	}
	tl := log.Timeline(5)
	if got := strings.Count(tl, "\n"); got != 5 {
		t.Errorf("timeline rows = %d", got)
	}
	all := log.Timeline(0)
	if strings.Count(all, "\n") != len(log.Transitions) {
		t.Error("full timeline truncated")
	}
}

func TestGlyphForBaseline(t *testing.T) {
	// NS nodes are awake and safe before the front: glyph 's'.
	sc := diffusion.PaperScenario()
	dep := deploy.Grid(nil, sc.Field, 2, 2, 0)
	nw := node.BuildNetwork(node.NetworkConfig{
		Deployment: dep,
		Stimulus:   sc.Stimulus,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents:     func(radio.NodeID) node.Agent { return baseline.NewNS() },
	})
	nw.Run(5)
	out := RenderField(sc.Field, sc.Stimulus, nw.Nodes, 5, 30, 10)
	if !strings.ContainsRune(out, GlyphSafe) {
		t.Error("awake safe nodes not rendered")
	}
	_ = geom.Vec2{}
}
