// Package trace provides event logging and ASCII field rendering for the
// demo binaries: a Fig. 2-style snapshot of the stimulus and the node states
// (safe/alert/covered), and a transition log for post-run inspection.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/node"
)

// Glyphs used by the field renderer.
const (
	GlyphEmpty   = '.'
	GlyphStim    = '~'
	GlyphSafe    = 's'
	GlyphAlert   = 'A'
	GlyphCovered = 'C'
	GlyphFailed  = 'x'
	GlyphAsleep  = 'z'
)

// RenderField draws the field at time t as an ASCII bitmap of the given
// character dimensions: stimulus coverage as a texture, nodes as state
// glyphs (sleeping safe nodes lower-case 'z', awake safe 's', alert 'A',
// covered 'C', failed 'x').
func RenderField(field geom.Rect, stim diffusion.Stimulus, nodes []*node.Node, t float64, w, h int) string {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	grid := make([][]rune, h)
	for j := range grid {
		grid[j] = make([]rune, w)
		for i := range grid[j] {
			// Cell center in world coordinates; row 0 is the top (max Y).
			p := cellCenter(field, i, j, w, h)
			if stim.Covered(p, t) {
				grid[j][i] = GlyphStim
			} else {
				grid[j][i] = GlyphEmpty
			}
		}
	}
	for _, n := range nodes {
		i, j := cellOf(field, n.Pos(), w, h)
		grid[j][i] = glyphFor(n)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=%.1fs\n", t)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}

func glyphFor(n *node.Node) rune {
	switch {
	case n.Failed():
		return GlyphFailed
	case n.State() == node.StateCovered:
		return GlyphCovered
	case n.State() == node.StateAlert:
		return GlyphAlert
	case !n.IsAwake():
		return GlyphAsleep
	default:
		return GlyphSafe
	}
}

func cellCenter(field geom.Rect, i, j, w, h int) geom.Vec2 {
	fx := (float64(i) + 0.5) / float64(w)
	fy := (float64(j) + 0.5) / float64(h)
	return geom.V(
		field.Min.X+fx*field.Width(),
		field.Max.Y-fy*field.Height(),
	)
}

func cellOf(field geom.Rect, p geom.Vec2, w, h int) (int, int) {
	fx := (p.X - field.Min.X) / field.Width()
	fy := (field.Max.Y - p.Y) / field.Height()
	i := int(fx * float64(w))
	j := int(fy * float64(h))
	if i < 0 {
		i = 0
	} else if i >= w {
		i = w - 1
	}
	if j < 0 {
		j = 0
	} else if j >= h {
		j = h - 1
	}
	return i, j
}

// Transition is one recorded state change.
type Transition struct {
	At   float64
	Node int
	From node.State
	To   node.State
}

// StateLog records every state transition in a network. Attach before
// running.
type StateLog struct {
	Transitions []Transition
}

// Attach hooks the log into every node of the slice.
func (l *StateLog) Attach(nodes []*node.Node) {
	for _, n := range nodes {
		n := n
		n.OnStateChange(func(_ *node.Node, from, to node.State) {
			l.Transitions = append(l.Transitions, Transition{
				At: n.Now(), Node: int(n.ID()), From: from, To: to,
			})
		})
	}
}

// CountTo returns how many transitions entered the given state.
func (l *StateLog) CountTo(s node.State) int {
	c := 0
	for _, tr := range l.Transitions {
		if tr.To == s {
			c++
		}
	}
	return c
}

// FirstTo returns the earliest time any node entered the given state, or
// +Inf when none did.
func (l *StateLog) FirstTo(s node.State) float64 {
	first := math.Inf(1)
	for _, tr := range l.Transitions {
		if tr.To == s && tr.At < first {
			first = tr.At
		}
	}
	return first
}

// Summary renders a compact per-state transition census.
func (l *StateLog) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d transitions", len(l.Transitions))
	states := []node.State{node.StateSafe, node.StateAlert, node.StateCovered}
	for _, s := range states {
		fmt.Fprintf(&b, "; →%s %d", s, l.CountTo(s))
	}
	return b.String()
}

// Timeline renders the transitions in time order, at most limit rows
// (limit <= 0 means all).
func (l *StateLog) Timeline(limit int) string {
	trs := make([]Transition, len(l.Transitions))
	copy(trs, l.Transitions)
	sort.SliceStable(trs, func(i, j int) bool { return trs[i].At < trs[j].At })
	if limit > 0 && len(trs) > limit {
		trs = trs[:limit]
	}
	var b strings.Builder
	for _, tr := range trs {
		fmt.Fprintf(&b, "%8.2fs node %3d  %s → %s\n", tr.At, tr.Node, tr.From, tr.To)
	}
	return b.String()
}
