// Package runner is the parallel replication engine of the experiment
// harness. Every (experiment × sweep-point × protocol × seed) cell of the
// paper's evaluation is an independent simulation, so the harness fans cells
// out across a worker pool and merges results deterministically: results are
// keyed and ordered by job index, never by completion order, which makes the
// parallel output bit-identical to a serial run over the same jobs.
//
// The pool claims jobs from an atomic counter (work stealing without a
// queue), stops claiming on the first error, and reports the error of the
// lowest-indexed job that actually failed. Note that which jobs run before
// the pool stops depends on goroutine scheduling, so under parallelism the
// reported error can differ between runs that have multiple failing jobs.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallelism is the worker count used when a caller passes a
// non-positive parallelism: one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Map runs n index-addressed jobs on a pool of parallelism workers and
// returns the results in job-index order. A non-positive parallelism means
// DefaultParallelism; parallelism 1 runs the jobs serially in index order on
// the calling goroutine, reproducing a plain loop exactly.
//
// On error the pool cancels: no new jobs are claimed, in-flight jobs finish,
// and Map returns the error of the lowest-indexed job that failed. Results
// are nil on error.
//
// A job that panics under parallelism is reported as an error instead of
// killing the process: a panic in a worker goroutine is unrecoverable by the
// caller, so the pool catches it at the job boundary. The serial path
// deliberately lets panics propagate unchanged (parallelism 1 reproduces a
// plain loop, stack trace included).
func Map[T any](parallelism, n int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if parallelism <= 0 {
		parallelism = DefaultParallelism()
	}
	if parallelism > n {
		parallelism = n
	}
	out := make([]T, n)
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			v, err := job(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	safeJob := func(i int) (v T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("runner: job %d panicked: %v", i, r)
			}
		}()
		return job(i)
	}

	var (
		next    atomic.Int64 // next job index to claim
		stop    atomic.Bool  // set on first error; halts claiming
		errMu   sync.Mutex
		errIdx  = n // lowest failed index seen so far
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := safeJob(i)
				if err != nil {
					errMu.Lock()
					if i < errIdx {
						errIdx, firstEr = i, err
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

// Each is Map for side-effecting jobs with no result value.
func Each(parallelism, n int, job func(i int) error) error {
	_, err := Map(parallelism, n, func(i int) (struct{}, error) {
		return struct{}{}, job(i)
	})
	return err
}
