// Package runner is the parallel replication engine of the experiment
// harness. Every (experiment × sweep-point × protocol × seed) cell of the
// paper's evaluation is an independent simulation, so the harness fans cells
// out across a worker pool and merges results deterministically: results are
// keyed and ordered by job index, never by completion order, which makes the
// parallel output bit-identical to a serial run over the same jobs.
//
// The pool claims jobs from an atomic counter (work stealing without a
// queue), stops claiming on the first error, and reports the error of the
// lowest-indexed job that actually failed. Note that which jobs run before
// the pool stops depends on goroutine scheduling, so under parallelism the
// reported error can differ between runs that have multiple failing jobs.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultParallelism is the worker count used when a caller passes a
// non-positive parallelism: one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Map runs n index-addressed jobs on a pool of parallelism workers and
// returns the results in job-index order. A non-positive parallelism means
// DefaultParallelism; parallelism 1 runs the jobs serially in index order on
// the calling goroutine, reproducing a plain loop exactly.
//
// On error the pool cancels: no new jobs are claimed, in-flight jobs finish,
// and Map returns the error of the lowest-indexed job that failed. Results
// are nil on error.
//
// A job that panics under parallelism is reported as an error instead of
// killing the process: a panic in a worker goroutine is unrecoverable by the
// caller, so the pool catches it at the job boundary. The serial path
// deliberately lets panics propagate unchanged (parallelism 1 reproduces a
// plain loop, stack trace included).
func Map[T any](parallelism, n int, job func(i int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), parallelism, n,
		func(_ context.Context, i int) (T, error) { return job(i) })
}

// MapContext is Map with cooperative cancellation: the pool stops claiming
// new jobs once ctx is done, in-flight jobs finish (each receives ctx, so a
// ctx-aware job can also stop early), and the error returned is the lowest-
// indexed job error when one occurred, else ctx.Err() when cancellation left
// any job unclaimed or unfinished. A run whose jobs all completed before the
// cancellation returns its full results and a nil error. The serial path
// checks ctx between jobs and otherwise reproduces a plain loop exactly,
// panics included.
func MapContext[T any](ctx context.Context, parallelism, n int, job func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if parallelism <= 0 {
		parallelism = DefaultParallelism()
	}
	if parallelism > n {
		parallelism = n
	}
	out := make([]T, n)
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := job(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	safeJob := func(i int) (v T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("runner: job %d panicked: %v", i, r)
			}
		}()
		return job(ctx, i)
	}

	var (
		next        atomic.Int64 // next job index to claim
		stop        atomic.Bool  // set on first error; halts claiming
		interrupted atomic.Bool  // ctx cancelled before every job was claimed
		errMu       sync.Mutex
		errIdx      = n // lowest failed index seen so far
		firstEr     error
		wg          sync.WaitGroup
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					// Claimed index i but will not run it: the result set is
					// incomplete, so the whole Map must report cancellation.
					interrupted.Store(true)
					return
				}
				v, err := safeJob(i)
				if err != nil {
					errMu.Lock()
					if i < errIdx {
						errIdx, firstEr = i, err
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	if interrupted.Load() {
		return nil, ctx.Err()
	}
	return out, nil
}

// Each is Map for side-effecting jobs with no result value.
func Each(parallelism, n int, job func(i int) error) error {
	_, err := Map(parallelism, n, func(i int) (struct{}, error) {
		return struct{}{}, job(i)
	})
	return err
}

// EachContext is MapContext for side-effecting jobs with no result value.
func EachContext(ctx context.Context, parallelism, n int, job func(ctx context.Context, i int) error) error {
	_, err := MapContext(ctx, parallelism, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, job(ctx, i)
	})
	return err
}
