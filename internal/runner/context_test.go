package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapContextCancelStopsClaiming(t *testing.T) {
	for _, p := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		_, err := MapContext(ctx, p, 1000, func(ctx context.Context, i int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", p, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Fatalf("parallelism %d: all %d jobs ran despite cancellation", p, n)
		}
	}
}

func TestMapContextCompletedRunIgnoresLateCancel(t *testing.T) {
	// Cancelling after every job finished must not retroactively fail the
	// run: the result set is complete.
	for _, p := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		out, err := MapContext(ctx, p, 32, func(ctx context.Context, i int) (int, error) {
			return i * 2, nil
		})
		cancel()
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if len(out) != 32 || out[31] != 62 {
			t.Fatalf("parallelism %d: bad results %v", p, out)
		}
	}
}

func TestMapContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{1, 4} {
		var ran atomic.Int64
		_, err := MapContext(ctx, p, 16, func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", p, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("parallelism %d: %d jobs ran under a dead context", p, ran.Load())
		}
	}
}

func TestMapContextJobErrorBeatsCancel(t *testing.T) {
	// A real job failure is more informative than the cancellation it may
	// have raced with; the lowest-indexed job error wins.
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := MapContext(ctx, 4, 64, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the job error", err)
	}
}

func TestEachContextPropagatesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := EachContext(ctx, 2, 8, func(ctx context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapIsMapContextBackground(t *testing.T) {
	out, err := Map(2, 8, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(out) != 8 || out[7] != 8 {
		t.Fatalf("Map through MapContext drifted: %v %v", out, err)
	}
}
