package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, p := range []int{0, 1, 2, 4, 16} {
		out, err := Map(p, 64, func(i int) (int, error) {
			// Invert the natural completion order so index order can only
			// come from the merge, not from scheduling luck.
			time.Sleep(time.Duration(64-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if len(out) != 64 {
			t.Fatalf("parallelism %d: len = %d", p, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallelism %d: out[%d] = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossParallelism(t *testing.T) {
	run := func(p int) []int {
		out, err := Map(p, 100, func(i int) (int, error) { return 3*i + 1, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, p := range []int{2, 8, 32} {
		par := run(p)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("parallelism %d diverged at %d: %d vs %d", p, i, par[i], serial[i])
			}
		}
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, p := range []int{1, 4} {
		_, err := Map(p, 10, func(i int) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("job 7: %w", boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("parallelism %d: err = %v, want wrapped boom", p, err)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	// Every job fails; the reported error must be the lowest-indexed one
	// among those that ran, and with parallelism 1 that is exactly job 0.
	_, err := Map(1, 10, func(i int) (int, error) {
		return 0, fmt.Errorf("job %d failed", i)
	})
	if err == nil || err.Error() != "job 0 failed" {
		t.Fatalf("err = %v, want job 0 failed", err)
	}
}

func TestMapCancelsOnFirstError(t *testing.T) {
	const n = 1000
	var started atomic.Int64
	_, err := Map(4, n, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("fail fast")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := started.Load(); got >= n/2 {
		t.Fatalf("%d of %d jobs ran after the first error; cancellation is not working", got, n)
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(8, 0, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty: out=%v err=%v", out, err)
	}
	out, err = Map(8, 1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Fatalf("single: out=%v err=%v", out, err)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
	if err := Each(4, 10, func(i int) error {
		if i == 3 {
			return errors.New("nope")
		}
		return nil
	}); err == nil {
		t.Fatal("expected error")
	}
}

func TestDefaultParallelism(t *testing.T) {
	if DefaultParallelism() < 1 {
		t.Fatalf("DefaultParallelism() = %d", DefaultParallelism())
	}
}

func TestMapConvertsWorkerPanicsToErrors(t *testing.T) {
	_, err := Map(4, 8, func(i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("worker panic not converted: err = %v", err)
	}
	// The serial path reproduces a plain loop: panics propagate to the caller.
	defer func() {
		if recover() == nil {
			t.Error("serial panic swallowed")
		}
	}()
	_, _ = Map(1, 2, func(int) (int, error) { panic("serial boom") })
}
