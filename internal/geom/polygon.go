package geom

import (
	"math"
	"sort"
)

// Polyline is an open chain of vertices.
type Polyline []Vec2

// Length returns the total arc length of the polyline.
func (p Polyline) Length() float64 {
	var l float64
	for i := 1; i < len(p); i++ {
		l += p[i-1].Dist(p[i])
	}
	return l
}

// ClosestPoint returns the point on the polyline closest to q, the distance,
// and the index of the segment on which it lies. An empty polyline returns
// the zero vector, +Inf and -1.
func (p Polyline) ClosestPoint(q Vec2) (Vec2, float64, int) {
	if len(p) == 0 {
		return Vec2{}, math.Inf(1), -1
	}
	if len(p) == 1 {
		return p[0], p[0].Dist(q), 0
	}
	best := Vec2{}
	bestD := math.Inf(1)
	bestI := -1
	for i := 1; i < len(p); i++ {
		pt, _ := (Segment{p[i-1], p[i]}).ClosestPoint(q)
		if d := pt.Dist(q); d < bestD {
			best, bestD, bestI = pt, d, i-1
		}
	}
	return best, bestD, bestI
}

// Resample returns n points spaced uniformly by arc length along the
// polyline. n must be at least 2 and the polyline non-empty; degenerate
// inputs return a copy of what is available.
func (p Polyline) Resample(n int) Polyline {
	if len(p) == 0 || n <= 0 {
		return nil
	}
	if len(p) == 1 || n == 1 {
		return Polyline{p[0]}
	}
	total := p.Length()
	if total == 0 {
		out := make(Polyline, n)
		for i := range out {
			out[i] = p[0]
		}
		return out
	}
	out := make(Polyline, 0, n)
	step := total / float64(n-1)
	out = append(out, p[0])
	seg := 1
	acc := 0.0
	for i := 1; i < n-1; i++ {
		target := float64(i) * step
		for seg < len(p) {
			segLen := p[seg-1].Dist(p[seg])
			if acc+segLen >= target || seg == len(p)-1 {
				t := 0.0
				if segLen > 0 {
					t = Clamp((target-acc)/segLen, 0, 1)
				}
				out = append(out, p[seg-1].Lerp(p[seg], t))
				break
			}
			acc += segLen
			seg++
		}
	}
	out = append(out, p[len(p)-1])
	return out
}

// Polygon is a closed simple polygon; the edge from the last vertex back to
// the first is implicit.
type Polygon []Vec2

// Area returns the signed area of the polygon (positive for counter-clockwise
// winding).
func (pg Polygon) Area() float64 {
	var a float64
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += pg[i].Cross(pg[j])
	}
	return a / 2
}

// Centroid returns the area centroid of the polygon. Degenerate polygons
// (zero area) return the vertex mean.
func (pg Polygon) Centroid() Vec2 {
	a := pg.Area()
	if a == 0 {
		var m Vec2
		if len(pg) == 0 {
			return m
		}
		for _, v := range pg {
			m = m.Add(v)
		}
		return m.Scale(1 / float64(len(pg)))
	}
	var c Vec2
	n := len(pg)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		w := pg[i].Cross(pg[j])
		c = c.Add(pg[i].Add(pg[j]).Scale(w))
	}
	return c.Scale(1 / (6 * a))
}

// Contains reports whether p lies inside the polygon using the even-odd
// crossing rule. Points exactly on an edge may report either side.
func (pg Polygon) Contains(p Vec2) bool {
	inside := false
	n := len(pg)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pg[i], pg[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Perimeter returns the closed boundary length of the polygon.
func (pg Polygon) Perimeter() float64 {
	var l float64
	n := len(pg)
	for i := 0; i < n; i++ {
		l += pg[i].Dist(pg[(i+1)%n])
	}
	return l
}

// ConvexHull returns the convex hull of the given points in counter-clockwise
// order (Andrew's monotone chain). Fewer than three distinct points return
// the distinct points themselves.
func ConvexHull(pts []Vec2) Polygon {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Vec2, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return Polygon(uniq)
	}
	var hull []Vec2
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return Polygon(hull[:len(hull)-1])
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
