package geom

import "fmt"

// CSR is a compressed-sparse-row adjacency over an indexed point set: row i
// holds the indices of every point within a fixed radius of point i (the
// point itself excluded), in ascending index order. It is the frozen form of
// a SpatialHash — deployments in this simulator are static, so the neighbour
// set of every node is fixed for the lifetime of a run and worth compiling
// exactly once into two flat arrays that a hot path can walk without bucket
// scans, distance checks or sorting.
type CSR struct {
	// Offsets has one entry per point plus a terminator: row i spans
	// Items[Offsets[i]:Offsets[i+1]].
	Offsets []int32
	// Items is the concatenated neighbour arena.
	Items []int32
}

// Len returns the number of rows (indexed points).
func (c CSR) Len() int { return len(c.Offsets) - 1 }

// Row returns the neighbour indices of point i, ascending, self excluded.
// The slice aliases the arena and must not be mutated.
func (c CSR) Row(i int) []int32 { return c.Items[c.Offsets[i]:c.Offsets[i+1]] }

// CompileCSR freezes the hash's neighbourhood structure at radius r: row i
// receives exactly the indices NearAppend(i's position, r) would return,
// minus i itself — the same inclusive dist² ≤ r² membership rule, the same
// ascending order — so a caller that switches from per-query scans to row
// walks observes identical candidate sets. Compiling a hash with more than
// MaxInt32 points panics (the arena is int32-indexed).
func (h *SpatialHash) CompileCSR(r float64) CSR {
	n := len(h.points)
	if int64(n) > int64(maxCSRPoints) {
		panic(fmt.Sprintf("geom: CompileCSR over %d points exceeds int32 indexing", n))
	}
	csr := CSR{Offsets: make([]int32, n+1)}
	var scratch []int
	for i, p := range h.points {
		scratch = h.NearAppend(scratch[:0], p, r)
		for _, idx := range scratch {
			if idx == i {
				continue
			}
			csr.Items = append(csr.Items, int32(idx))
		}
		if int64(len(csr.Items)) > int64(maxCSREdges) {
			panic(fmt.Sprintf("geom: CompileCSR edge count %d exceeds int32 indexing", len(csr.Items)))
		}
		csr.Offsets[i+1] = int32(len(csr.Items))
	}
	return csr
}

const maxInt32 = 1<<31 - 1

// The CSR capacity limits are variables only so tests can lower them and
// exercise the guard paths without allocating multi-gigabyte inputs; at their
// default values both are the hard int32-indexing ceiling. Compilations that
// would exceed them must panic loudly — a silent int32 wrap would alias rows
// and corrupt (not crash) every simulation run over the graph.
var (
	maxCSRPoints = maxInt32
	maxCSREdges  = maxInt32
)
