package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolylineLength(t *testing.T) {
	p := Polyline{V(0, 0), V(3, 4), V(3, 10)}
	if l := p.Length(); l != 11 {
		t.Errorf("Length = %v, want 11", l)
	}
	if l := Polyline(nil).Length(); l != 0 {
		t.Errorf("empty Length = %v", l)
	}
}

func TestPolylineClosestPoint(t *testing.T) {
	p := Polyline{V(0, 0), V(10, 0), V(10, 10)}
	q, d, seg := p.ClosestPoint(V(5, 2))
	if !q.ApproxEqual(V(5, 0), eps) || !almost(d, 2, eps) || seg != 0 {
		t.Errorf("ClosestPoint = %v,%v,%d", q, d, seg)
	}
	q, d, seg = p.ClosestPoint(V(12, 8))
	if !q.ApproxEqual(V(10, 8), eps) || !almost(d, 2, eps) || seg != 1 {
		t.Errorf("ClosestPoint = %v,%v,%d", q, d, seg)
	}
	_, d, seg = Polyline(nil).ClosestPoint(V(0, 0))
	if !math.IsInf(d, 1) || seg != -1 {
		t.Errorf("empty ClosestPoint = %v,%d", d, seg)
	}
	q, d, seg = Polyline{V(1, 1)}.ClosestPoint(V(1, 3))
	if q != V(1, 1) || !almost(d, 2, eps) || seg != 0 {
		t.Errorf("single-point ClosestPoint = %v,%v,%d", q, d, seg)
	}
}

func TestPolylineResample(t *testing.T) {
	p := Polyline{V(0, 0), V(10, 0)}
	r := p.Resample(5)
	if len(r) != 5 {
		t.Fatalf("Resample returned %d points, want 5", len(r))
	}
	for i, pt := range r {
		want := V(float64(i)*2.5, 0)
		if !pt.ApproxEqual(want, 1e-9) {
			t.Errorf("point %d = %v, want %v", i, pt, want)
		}
	}
	if got := Polyline(nil).Resample(5); got != nil {
		t.Errorf("nil Resample = %v", got)
	}
	if got := (Polyline{V(1, 2)}).Resample(3); len(got) != 1 || got[0] != V(1, 2) {
		t.Errorf("1-point Resample = %v", got)
	}
	// Zero-length polyline resamples to copies.
	z := Polyline{V(2, 2), V(2, 2)}.Resample(3)
	if len(z) != 3 || z[0] != V(2, 2) || z[2] != V(2, 2) {
		t.Errorf("degenerate Resample = %v", z)
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := Polygon{V(0, 0), V(2, 0), V(2, 2), V(0, 2)} // CCW unit-ish square
	if a := sq.Area(); a != 4 {
		t.Errorf("Area = %v, want 4", a)
	}
	if c := sq.Centroid(); !c.ApproxEqual(V(1, 1), eps) {
		t.Errorf("Centroid = %v, want (1,1)", c)
	}
	cw := Polygon{V(0, 0), V(0, 2), V(2, 2), V(2, 0)}
	if a := cw.Area(); a != -4 {
		t.Errorf("CW Area = %v, want -4", a)
	}
	if p := sq.Perimeter(); p != 8 {
		t.Errorf("Perimeter = %v, want 8", p)
	}
	// Degenerate polygon centroid falls back to the vertex mean.
	line := Polygon{V(0, 0), V(2, 0)}
	if c := line.Centroid(); !c.ApproxEqual(V(1, 0), eps) {
		t.Errorf("degenerate Centroid = %v, want (1,0)", c)
	}
	if c := Polygon(nil).Centroid(); c != Zero {
		t.Errorf("empty Centroid = %v", c)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := Polygon{V(0, 0), V(10, 0), V(10, 10), V(0, 10)}
	if !sq.Contains(V(5, 5)) {
		t.Error("center not contained")
	}
	if sq.Contains(V(15, 5)) {
		t.Error("outside point contained")
	}
	if sq.Contains(V(-1, -1)) {
		t.Error("outside corner contained")
	}
	tri := Polygon{V(0, 0), V(10, 0), V(5, 10)}
	if !tri.Contains(V(5, 3)) {
		t.Error("triangle interior not contained")
	}
	if tri.Contains(V(1, 9)) {
		t.Error("triangle exterior contained")
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Vec2{
		V(0, 0), V(10, 0), V(10, 10), V(0, 10),
		V(5, 5), V(2, 3), V(7, 8), // interior points
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(hull), hull)
	}
	if a := hull.Area(); !almost(a, 100, eps) {
		t.Errorf("hull area = %v, want 100", a)
	}
	// All original points inside or on hull.
	for _, p := range pts {
		onHull := false
		for _, h := range hull {
			if h == p {
				onHull = true
			}
		}
		if !onHull && !hull.Contains(p) {
			t.Errorf("point %v escaped hull", p)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Errorf("empty hull = %v", h)
	}
	h := ConvexHull([]Vec2{V(1, 1), V(1, 1)})
	if len(h) != 1 || h[0] != V(1, 1) {
		t.Errorf("duplicate-point hull = %v", h)
	}
	h = ConvexHull([]Vec2{V(0, 0), V(5, 5)})
	if len(h) != 2 {
		t.Errorf("two-point hull = %v", h)
	}
	// Collinear points: hull keeps the two extremes.
	h = ConvexHull([]Vec2{V(0, 0), V(1, 1), V(2, 2), V(3, 3)})
	if len(h) != 2 {
		t.Errorf("collinear hull = %v", h)
	}
}

func TestQuickHullContainsAll(t *testing.T) {
	f := func(raw [8]float64) bool {
		pts := make([]Vec2, 0, 4)
		for i := 0; i < 8; i += 2 {
			pts = append(pts, V(small(raw[i]), small(raw[i+1])))
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			return true // degenerate input, nothing to check
		}
		// Every input point must be inside the slightly-expanded hull.
		c := hull.Centroid()
		grown := make(Polygon, len(hull))
		for i, h := range hull {
			grown[i] = c.Add(h.Sub(c).Scale(1 + 1e-9))
		}
		for _, p := range pts {
			if !grown.Contains(p) {
				// Points exactly on the boundary may fail Contains; accept if
				// very close to the hull perimeter.
				poly := Polyline(append(append(Polyline{}, hull...), hull[0]))
				if _, d, _ := poly.ClosestPoint(p); d > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHullAreaNonNegative(t *testing.T) {
	f := func(raw [10]float64) bool {
		pts := make([]Vec2, 0, 5)
		for i := 0; i < 10; i += 2 {
			pts = append(pts, V(small(raw[i]), small(raw[i+1])))
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			return true
		}
		return hull.Area() >= 0 // CCW orientation
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickResamplePreservesEndpoints(t *testing.T) {
	f := func(raw [6]float64, n uint8) bool {
		p := Polyline{
			V(small(raw[0]), small(raw[1])),
			V(small(raw[2]), small(raw[3])),
			V(small(raw[4]), small(raw[5])),
		}
		k := int(n%20) + 2
		r := p.Resample(k)
		if len(r) != k {
			return false
		}
		return r[0].ApproxEqual(p[0], 1e-9) && r[k-1].ApproxEqual(p[2], 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
