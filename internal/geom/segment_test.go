package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Segment{V(0, 0), V(3, 4)}
	if s.Length() != 5 {
		t.Errorf("Length = %v, want 5", s.Length())
	}
	if s.Dir() != V(3, 4) {
		t.Errorf("Dir = %v, want (3,4)", s.Dir())
	}
	if s.Midpoint() != V(1.5, 2) {
		t.Errorf("Midpoint = %v, want (1.5,2)", s.Midpoint())
	}
	if got := s.Point(0.5); got != V(1.5, 2) {
		t.Errorf("Point(0.5) = %v", got)
	}
}

func TestClosestPoint(t *testing.T) {
	s := Segment{V(0, 0), V(10, 0)}
	cases := []struct {
		p     Vec2
		wantP Vec2
		wantT float64
	}{
		{V(5, 3), V(5, 0), 0.5},
		{V(-2, 1), V(0, 0), 0},
		{V(12, -1), V(10, 0), 1},
	}
	for _, c := range cases {
		got, tt := s.ClosestPoint(c.p)
		if !got.ApproxEqual(c.wantP, eps) || !almost(tt, c.wantT, eps) {
			t.Errorf("ClosestPoint(%v) = %v,%v want %v,%v", c.p, got, tt, c.wantP, c.wantT)
		}
	}
	// Degenerate segment.
	d := Segment{V(1, 1), V(1, 1)}
	got, tt := d.ClosestPoint(V(5, 5))
	if got != V(1, 1) || tt != 0 {
		t.Errorf("degenerate ClosestPoint = %v,%v", got, tt)
	}
}

func TestSegmentDist(t *testing.T) {
	s := Segment{V(0, 0), V(10, 0)}
	if d := s.Dist(V(5, 3)); !almost(d, 3, eps) {
		t.Errorf("Dist = %v, want 3", d)
	}
}

func TestSegmentNormal(t *testing.T) {
	s := Segment{V(0, 0), V(2, 0)}
	if n := s.Normal(); !n.ApproxEqual(V(0, 1), eps) {
		t.Errorf("Normal = %v, want (0,1)", n)
	}
	d := Segment{V(1, 1), V(1, 1)}
	if n := d.Normal(); n != Zero {
		t.Errorf("degenerate Normal = %v, want zero", n)
	}
}

func TestSegmentIntersect(t *testing.T) {
	a := Segment{V(0, 0), V(10, 10)}
	b := Segment{V(0, 10), V(10, 0)}
	p, ok := a.Intersect(b)
	if !ok || !p.ApproxEqual(V(5, 5), eps) {
		t.Errorf("Intersect = %v,%v want (5,5),true", p, ok)
	}
	// Non-intersecting.
	c := Segment{V(20, 20), V(30, 30)}
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint segments reported intersecting")
	}
	// Parallel non-collinear.
	d := Segment{V(0, 1), V(10, 11)}
	if _, ok := a.Intersect(d); ok {
		t.Error("parallel segments reported intersecting")
	}
	// Collinear overlapping.
	e := Segment{V(5, 5), V(15, 15)}
	if _, ok := a.Intersect(e); !ok {
		t.Error("collinear overlapping segments reported disjoint")
	}
	// Collinear disjoint.
	f := Segment{V(11, 11), V(15, 15)}
	if _, ok := a.Intersect(f); ok {
		t.Error("collinear disjoint segments reported intersecting")
	}
	// Touching endpoints.
	g := Segment{V(10, 10), V(20, 0)}
	p, ok = a.Intersect(g)
	if !ok || !p.ApproxEqual(V(10, 10), eps) {
		t.Errorf("touching endpoints = %v,%v", p, ok)
	}
}

func TestCircleSegmentIntersect(t *testing.T) {
	s := Segment{V(-2, 0), V(2, 0)}
	ts := CircleSegmentIntersect(s, V(0, 0), 1)
	if len(ts) != 2 {
		t.Fatalf("got %d intersections, want 2", len(ts))
	}
	p0, p1 := s.Point(ts[0]), s.Point(ts[1])
	if !p0.ApproxEqual(V(-1, 0), 1e-9) || !p1.ApproxEqual(V(1, 0), 1e-9) {
		t.Errorf("intersections at %v, %v", p0, p1)
	}
	// Miss entirely.
	if ts := CircleSegmentIntersect(s, V(0, 5), 1); len(ts) != 0 {
		t.Errorf("miss returned %d hits", len(ts))
	}
	// Degenerate segment.
	if ts := CircleSegmentIntersect(Segment{V(1, 1), V(1, 1)}, V(0, 0), 5); ts != nil {
		t.Errorf("degenerate segment returned %v", ts)
	}
}

func TestQuickClosestPointIsClosest(t *testing.T) {
	// The returned closest point must beat both endpoints and the midpoint.
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Segment{V(small(ax), small(ay)), V(small(bx), small(by))}
		p := V(small(px), small(py))
		q, _ := s.ClosestPoint(p)
		d := q.Dist(p)
		return d <= s.A.Dist(p)+1e-9 && d <= s.B.Dist(p)+1e-9 && d <= s.Midpoint().Dist(p)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickClosestPointOnSegment(t *testing.T) {
	// The closest point must lie (nearly) on the segment: dist from A plus
	// dist to B equals segment length.
	f := func(ax, ay, bx, by, px, py float64) bool {
		s := Segment{V(small(ax), small(ay)), V(small(bx), small(by))}
		p := V(small(px), small(py))
		q, _ := s.ClosestPoint(p)
		return almost(q.Dist(s.A)+q.Dist(s.B), s.Length(), 1e-6*(1+s.Length()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCircleIntersectOnCircle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, r float64) bool {
		s := Segment{V(small(ax), small(ay)), V(small(bx), small(by))}
		c := V(small(cx), small(cy))
		rad := math.Abs(small(r))
		for _, tt := range CircleSegmentIntersect(s, c, rad) {
			p := s.Point(tt)
			if !almost(p.Dist(c), rad, 1e-5*(1+rad)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
