package geom

import "fmt"

// Rect is an axis-aligned rectangle, used for deployment fields and plume
// grids. Min is the lower-left corner, Max the upper-right.
type Rect struct {
	Min, Max Vec2
}

// R constructs a Rect from corner coordinates, normalizing the order so that
// Min ≤ Max component-wise.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Vec2{x0, y0}, Max: Vec2{x1, y1}}
}

// Square returns the square with the given lower-left corner and side length.
func Square(min Vec2, side float64) Rect {
	return Rect{Min: min, Max: min.Add(Vec2{side, side})}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Vec2 {
	return Vec2{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ClampPoint returns the point of r closest to p.
func (r Rect) ClampPoint(p Vec2) Vec2 {
	return Vec2{Clamp(p.X, r.Min.X, r.Max.X), Clamp(p.Y, r.Min.Y, r.Max.Y)}
}

// Expand returns r grown by d on every side (negative d shrinks; the result
// is normalized so Min ≤ Max).
func (r Rect) Expand(d float64) Rect {
	return R(r.Min.X-d, r.Min.Y-d, r.Max.X+d, r.Max.Y+d)
}

// Corners returns the four corners in counter-clockwise order starting at Min.
func (r Rect) Corners() [4]Vec2 {
	return [4]Vec2{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// Diagonal returns the length of the rectangle's diagonal, an upper bound on
// the distance between any two contained points.
func (r Rect) Diagonal() float64 { return r.Min.Dist(r.Max) }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}
