package geom

import (
	"testing"
	"testing/quick"
)

func TestRect(t *testing.T) {
	r := R(10, 20, 0, 5) // deliberately swapped corners
	if r.Min != V(0, 5) || r.Max != V(10, 20) {
		t.Fatalf("R did not normalize: %v", r)
	}
	if r.Width() != 10 || r.Height() != 15 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 150 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Center() != V(5, 12.5) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(V(5, 10)) || r.Contains(V(-1, 10)) {
		t.Error("Contains misbehaves")
	}
	if p := r.ClampPoint(V(-5, 100)); p != V(0, 20) {
		t.Errorf("ClampPoint = %v", p)
	}
	if e := r.Expand(1); e.Min != V(-1, 4) || e.Max != V(11, 21) {
		t.Errorf("Expand = %v", e)
	}
	sq := Square(V(1, 1), 2)
	if sq.Max != V(3, 3) {
		t.Errorf("Square = %v", sq)
	}
	c := r.Corners()
	if c[0] != r.Min || c[2] != r.Max {
		t.Errorf("Corners = %v", c)
	}
	if d := R(0, 0, 3, 4).Diagonal(); d != 5 {
		t.Errorf("Diagonal = %v", d)
	}
}

func TestGridIndexing(t *testing.T) {
	g := NewGrid(R(0, 0, 10, 10), 10, 5)
	dx, dy := g.CellSize()
	if dx != 1 || dy != 2 {
		t.Fatalf("CellSize = %v,%v", dx, dy)
	}
	if g.Cells() != 50 {
		t.Errorf("Cells = %d", g.Cells())
	}
	i, j := g.Cell(V(5.5, 3.5))
	if i != 5 || j != 1 {
		t.Errorf("Cell = %d,%d", i, j)
	}
	// Clamping outside points.
	i, j = g.Cell(V(-5, 100))
	if i != 0 || j != 4 {
		t.Errorf("clamped Cell = %d,%d", i, j)
	}
	c := g.Center(5, 1)
	if c != V(5.5, 3) {
		t.Errorf("Center = %v", c)
	}
	if !g.InRange(9, 4) || g.InRange(10, 0) || g.InRange(0, 5) || g.InRange(-1, 0) {
		t.Error("InRange misbehaves")
	}
}

func TestGridPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero dims", func() { NewGrid(R(0, 0, 1, 1), 0, 5) })
	mustPanic("empty bounds", func() { NewGrid(R(0, 0, 0, 5), 3, 3) })
}

func TestGridBilinear(t *testing.T) {
	g := NewGrid(R(0, 0, 4, 4), 4, 4)
	// Field = x coordinate of the cell center.
	field := make([]float64, g.Cells())
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			field[g.Index(i, j)] = g.Center(i, j).X
		}
	}
	// At any interior point the interpolant of a linear field is exact.
	if v := g.Bilinear(field, V(2, 2)); !almost(v, 2, 1e-9) {
		t.Errorf("Bilinear(2,2) = %v, want 2", v)
	}
	if v := g.Bilinear(field, V(1.25, 3.1)); !almost(v, 1.25, 1e-9) {
		t.Errorf("Bilinear(1.25,·) = %v, want 1.25", v)
	}
	// Outside clamps to border value.
	if v := g.Bilinear(field, V(-10, 2)); !almost(v, 0.5, 1e-9) {
		t.Errorf("Bilinear clamp = %v, want 0.5", v)
	}
}

func TestSpatialHash(t *testing.T) {
	pts := []Vec2{V(1, 1), V(2, 2), V(9, 9), V(5, 5), V(1.5, 1)}
	h := NewSpatialHash(R(0, 0, 10, 10), 2, pts)
	near := h.Near(V(1, 1), 1.2)
	want := []int{0, 4}
	if len(near) != len(want) {
		t.Fatalf("Near = %v, want %v", near, want)
	}
	for i := range want {
		if near[i] != want[i] {
			t.Fatalf("Near = %v, want %v", near, want)
		}
	}
	// Radius covering everything.
	if all := h.Near(V(5, 5), 20); len(all) != len(pts) {
		t.Errorf("Near(all) = %v", all)
	}
	// Radius covering nothing.
	if none := h.Near(V(7, 2), 0.5); len(none) != 0 {
		t.Errorf("Near(none) = %v", none)
	}
}

func TestSpatialHashZeroCell(t *testing.T) {
	// cell <= 0 falls back to a sane default rather than panicking.
	h := NewSpatialHash(R(0, 0, 5, 5), 0, []Vec2{V(1, 1)})
	if got := h.Near(V(1, 1), 1); len(got) != 1 {
		t.Errorf("Near = %v", got)
	}
}

func TestSpatialHashInsertAndAnyWithin(t *testing.T) {
	h := NewSpatialHash(R(0, 0, 100, 100), 10, nil)
	if h.AnyWithin(V(50, 50), 10) {
		t.Error("empty hash reported a near point")
	}
	if idx := h.Insert(V(50, 50)); idx != 0 {
		t.Errorf("first insert index = %d", idx)
	}
	if idx := h.Insert(V(80, 20)); idx != 1 {
		t.Errorf("second insert index = %d", idx)
	}
	if !h.AnyWithin(V(53, 54), 10) {
		t.Error("inserted point not found within radius")
	}
	// AnyWithin is strict: a point exactly at distance r does not count
	// (Poisson-disk accepts darts exactly at minDist).
	if h.AnyWithin(V(60, 50), 10) {
		t.Error("point exactly at distance r counted as within")
	}
	if !h.AnyWithin(V(60, 50), 10.000001) {
		t.Error("point just inside r missed")
	}
	// Inserted points participate in Near queries too.
	near := h.Near(V(79, 21), 5)
	if len(near) != 1 || near[0] != 1 {
		t.Errorf("Near after Insert = %v, want [1]", near)
	}
	// Queries near the border must not panic (window clamps to the grid).
	h.Insert(V(0, 0))
	if !h.AnyWithin(V(-3, -3), 5) {
		t.Error("corner point not found from outside the field")
	}
}

func TestQuickSpatialHashMatchesBruteForce(t *testing.T) {
	f := func(raw [12]float64, qx, qy, r float64) bool {
		pts := make([]Vec2, 0, 6)
		for i := 0; i < 12; i += 2 {
			pts = append(pts, V(mod10(raw[i]), mod10(raw[i+1])))
		}
		q := V(mod10(qx), mod10(qy))
		rad := mod10(r)/2 + 0.1
		h := NewSpatialHash(R(0, 0, 10, 10), 1.5, pts)
		got := h.Near(q, rad)
		var want []int
		for i, p := range pts {
			if p.Dist(q) <= rad {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod10(x float64) float64 {
	m := small(x)
	if m < 0 {
		m = -m
	}
	for m > 10 {
		m /= 10
	}
	return m
}
