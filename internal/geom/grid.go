package geom

import "fmt"

// Grid maps a rectangle onto a regular lattice of NX×NY cells. It is the
// shared indexing scheme for the plume PDE solver and for spatial hashing of
// node positions.
type Grid struct {
	Bounds Rect
	NX, NY int
	dx, dy float64
}

// NewGrid constructs a grid over bounds with nx×ny cells. It panics on
// non-positive dimensions or an empty rectangle because a malformed grid is a
// programming error, not a runtime condition.
func NewGrid(bounds Rect, nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("geom: grid dimensions must be positive, got %dx%d", nx, ny))
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		panic(fmt.Sprintf("geom: grid bounds must have positive area, got %v", bounds))
	}
	return &Grid{
		Bounds: bounds,
		NX:     nx,
		NY:     ny,
		dx:     bounds.Width() / float64(nx),
		dy:     bounds.Height() / float64(ny),
	}
}

// CellSize returns the cell extents (dx, dy).
func (g *Grid) CellSize() (float64, float64) { return g.dx, g.dy }

// Cells returns the total number of cells.
func (g *Grid) Cells() int { return g.NX * g.NY }

// Index returns the flat index of cell (i, j); callers must pass in-range
// indices.
func (g *Grid) Index(i, j int) int { return j*g.NX + i }

// Cell returns the (i, j) cell containing p, clamped to the grid.
func (g *Grid) Cell(p Vec2) (int, int) {
	i := int((p.X - g.Bounds.Min.X) / g.dx)
	j := int((p.Y - g.Bounds.Min.Y) / g.dy)
	if i < 0 {
		i = 0
	} else if i >= g.NX {
		i = g.NX - 1
	}
	if j < 0 {
		j = 0
	} else if j >= g.NY {
		j = g.NY - 1
	}
	return i, j
}

// Center returns the world-coordinate center of cell (i, j).
func (g *Grid) Center(i, j int) Vec2 {
	return Vec2{
		g.Bounds.Min.X + (float64(i)+0.5)*g.dx,
		g.Bounds.Min.Y + (float64(j)+0.5)*g.dy,
	}
}

// InRange reports whether (i, j) is a valid cell index.
func (g *Grid) InRange(i, j int) bool {
	return i >= 0 && i < g.NX && j >= 0 && j < g.NY
}

// Bilinear interpolates a cell-centered scalar field at point p. The field
// must have length NX*NY. Points outside the lattice of cell centers clamp to
// the border value.
func (g *Grid) Bilinear(field []float64, p Vec2) float64 {
	// Shift into "cell-center" coordinates: cell (i,j) center sits at i+0.5.
	fx := (p.X-g.Bounds.Min.X)/g.dx - 0.5
	fy := (p.Y-g.Bounds.Min.Y)/g.dy - 0.5
	i0 := int(Clamp(fx, 0, float64(g.NX-1)))
	j0 := int(Clamp(fy, 0, float64(g.NY-1)))
	i1 := i0 + 1
	j1 := j0 + 1
	if i1 > g.NX-1 {
		i1 = g.NX - 1
	}
	if j1 > g.NY-1 {
		j1 = g.NY - 1
	}
	tx := Clamp(fx-float64(i0), 0, 1)
	ty := Clamp(fy-float64(j0), 0, 1)
	v00 := field[g.Index(i0, j0)]
	v10 := field[g.Index(i1, j0)]
	v01 := field[g.Index(i0, j1)]
	v11 := field[g.Index(i1, j1)]
	return Lerp(Lerp(v00, v10, tx), Lerp(v01, v11, tx), ty)
}

// SpatialHash buckets points into grid cells for neighbor queries. It is
// built once over a static deployment and queried many times.
type SpatialHash struct {
	grid    *Grid
	points  []Vec2
	buckets [][]int
}

// NewSpatialHash indexes the given points over bounds with a cell size close
// to cell (the query radius is a good choice). The bucket lattice is capped
// at 1024×1024 so degenerate cell/field ratios cannot exhaust memory;
// queries stay correct because Near derives its scan window from the grid's
// actual cell size.
func NewSpatialHash(bounds Rect, cell float64, points []Vec2) *SpatialHash {
	if cell <= 0 {
		cell = 1
	}
	const maxCells = 1024
	nx := int(bounds.Width()/cell) + 1
	ny := int(bounds.Height()/cell) + 1
	if nx > maxCells {
		nx = maxCells
	}
	if ny > maxCells {
		ny = maxCells
	}
	g := NewGrid(bounds, nx, ny)
	h := &SpatialHash{grid: g, points: points, buckets: make([][]int, g.Cells())}
	for idx, p := range points {
		i, j := g.Cell(p)
		k := g.Index(i, j)
		h.buckets[k] = append(h.buckets[k], idx)
	}
	return h
}

// Insert appends p to the indexed point set and returns its index. It makes
// the hash usable incrementally (build empty, then insert accepted points one
// by one — the dart-throwing pattern of deploy.PoissonDisk). Hashes built
// over a caller-owned slice may reallocate it on Insert; callers that keep
// querying through the hash are unaffected.
func (h *SpatialHash) Insert(p Vec2) int {
	idx := len(h.points)
	h.points = append(h.points, p)
	i, j := h.grid.Cell(p)
	k := h.grid.Index(i, j)
	h.buckets[k] = append(h.buckets[k], idx)
	return idx
}

// AnyWithin reports whether any indexed point lies strictly within distance r
// of q. Unlike NearAppend it exits on the first hit and uses a strict
// inequality, matching the Poisson-disk acceptance rule (a dart exactly at
// minDist is accepted).
func (h *SpatialHash) AnyWithin(q Vec2, r float64) bool {
	i0, j0 := h.grid.Cell(q.Sub(Vec2{r, r}))
	i1, j1 := h.grid.Cell(q.Add(Vec2{r, r}))
	r2 := r * r
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			for _, idx := range h.buckets[h.grid.Index(i, j)] {
				if h.points[idx].Dist2(q) < r2 {
					return true
				}
			}
		}
	}
	return false
}

// Near returns the indices of all points within radius r of q, in ascending
// index order. It allocates a fresh result slice; hot paths that query every
// event should use NearAppend with a reused buffer instead.
func (h *SpatialHash) Near(q Vec2, r float64) []int {
	return h.NearAppend(nil, q, r)
}

// NearAppend appends the indices of all points within radius r of q to dst
// and returns the extended slice, with the appended region in ascending index
// order. Passing dst[:0] of a scratch buffer makes repeated queries
// allocation-free once the buffer has grown to the largest neighbourhood.
func (h *SpatialHash) NearAppend(dst []int, q Vec2, r float64) []int {
	i0, j0 := h.grid.Cell(q.Sub(Vec2{r, r}))
	i1, j1 := h.grid.Cell(q.Add(Vec2{r, r}))
	start := len(dst)
	r2 := r * r
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			for _, idx := range h.buckets[h.grid.Index(i, j)] {
				if h.points[idx].Dist2(q) <= r2 {
					dst = append(dst, idx)
				}
			}
		}
	}
	// Buckets are scanned in row-major order so indices inside one bucket are
	// ascending, but across buckets they are not; sort for deterministic use.
	insertionSortInts(dst[start:])
	return dst
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
