package geom

import (
	"math/rand"
	"testing"
)

// bruteNeighbors recomputes row i the O(n²) way with the same inclusive
// dist² ≤ r² membership rule CompileCSR promises.
func bruteNeighbors(points []Vec2, i int, r float64) []int32 {
	var out []int32
	r2 := r * r
	for j, q := range points {
		if j == i {
			continue
		}
		if points[i].Dist2(q) <= r2 {
			out = append(out, int32(j))
		}
	}
	return out
}

// TestCompileCSRMatchesBruteForce is the frozen-topology correctness
// property: on random layouts, every CSR row must equal a brute-force
// all-pairs recompute — same members, same ascending order.
func TestCompileCSRMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(120)
		r := 2 + 18*rng.Float64()
		bounds := R(0, 0, 50, 40)
		points := make([]Vec2, n)
		for i := range points {
			points[i] = V(50*rng.Float64(), 40*rng.Float64())
		}
		// Duplicate some positions: co-located nodes must still exclude only
		// themselves, not their twins.
		if n > 4 {
			points[1] = points[0]
			points[3] = points[2]
		}
		hash := NewSpatialHash(bounds.Expand(r), r, points)
		csr := hash.CompileCSR(r)
		if csr.Len() != n {
			t.Fatalf("trial %d: CSR has %d rows, want %d", trial, csr.Len(), n)
		}
		for i := 0; i < n; i++ {
			got := csr.Row(i)
			want := bruteNeighbors(points, i, r)
			if len(got) != len(want) {
				t.Fatalf("trial %d row %d: got %v, want %v", trial, i, got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("trial %d row %d: got %v, want %v", trial, i, got, want)
				}
			}
		}
	}
}

// TestCompileCSRCapacityGuards pins the int32 overflow guards: a compilation
// whose point or edge count would overflow int32 indexing must panic loudly
// rather than wrap and alias rows. The caps are lowered so the guard paths
// run without gigabyte inputs; the production caps are the int32 ceiling.
func TestCompileCSRCapacityGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: guard did not panic", name)
			}
		}()
		f()
	}

	points := []Vec2{V(1, 1), V(1.5, 1), V(2, 1), V(2.5, 1)}
	bounds := R(0, 0, 10, 10)

	defer func(p, e int) { maxCSRPoints, maxCSREdges = p, e }(maxCSRPoints, maxCSREdges)

	maxCSRPoints = len(points) - 1
	mustPanic("point cap", func() {
		NewSpatialHash(bounds, 5, points).CompileCSR(5)
	})
	maxCSRPoints = maxInt32

	// Four mutually in-range points produce 12 directed edges; an edge cap of
	// 11 must trip while compiling the last row.
	maxCSREdges = 11
	mustPanic("edge cap", func() {
		NewSpatialHash(bounds, 5, points).CompileCSR(5)
	})
	maxCSREdges = maxInt32

	// At the restored production caps the same input compiles cleanly.
	if c := NewSpatialHash(bounds, 5, points).CompileCSR(5); len(c.Items) != 12 {
		t.Errorf("edges = %d, want 12", len(c.Items))
	}
}

func TestCompileCSREmptyAndSingle(t *testing.T) {
	bounds := R(0, 0, 10, 10)
	empty := NewSpatialHash(bounds, 5, nil)
	if c := empty.CompileCSR(5); c.Len() != 0 || len(c.Items) != 0 {
		t.Errorf("empty hash compiled to %d rows, %d items", c.Len(), len(c.Items))
	}
	single := NewSpatialHash(bounds, 5, []Vec2{V(5, 5)})
	c := single.CompileCSR(5)
	if c.Len() != 1 || len(c.Row(0)) != 0 {
		t.Errorf("single point compiled to %d rows, row0=%v", c.Len(), c.Row(0))
	}
}
