package geom

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Vec2
}

// Length returns the length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Dir returns the (non-normalized) direction vector B - A.
func (s Segment) Dir() Vec2 { return s.B.Sub(s.A) }

// Point returns the point at parameter t along the segment; t=0 is A, t=1 is B.
func (s Segment) Point(t float64) Vec2 { return s.A.Lerp(s.B, t) }

// ClosestPoint returns the point on s closest to p and the segment parameter
// t ∈ [0,1] at which it occurs.
func (s Segment) ClosestPoint(p Vec2) (Vec2, float64) {
	d := s.Dir()
	l2 := d.Norm2()
	if l2 == 0 {
		return s.A, 0
	}
	t := Clamp(p.Sub(s.A).Dot(d)/l2, 0, 1)
	return s.Point(t), t
}

// Dist returns the distance from p to the segment.
func (s Segment) Dist(p Vec2) float64 {
	q, _ := s.ClosestPoint(p)
	return q.Dist(p)
}

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Vec2 { return s.Point(0.5) }

// Normal returns the unit normal of the segment (90° counter-clockwise from
// the direction A→B). A degenerate segment yields the zero vector.
func (s Segment) Normal() Vec2 { return s.Dir().Perp().Normalize() }

// Intersect reports whether segments s and o properly intersect (including
// touching endpoints) and, if so, the intersection point. Collinear
// overlapping segments report the first shared endpoint encountered.
func (s Segment) Intersect(o Segment) (Vec2, bool) {
	r := s.Dir()
	q := o.Dir()
	denom := r.Cross(q)
	ao := o.A.Sub(s.A)
	if denom == 0 {
		// Parallel. Check collinearity.
		if ao.Cross(r) != 0 {
			return Vec2{}, false
		}
		// Collinear: project o's endpoints onto s.
		l2 := r.Norm2()
		if l2 == 0 {
			if s.A.Dist2(o.A) == 0 || s.A.Dist2(o.B) == 0 {
				return s.A, true
			}
			return Vec2{}, false
		}
		t0 := ao.Dot(r) / l2
		t1 := o.B.Sub(s.A).Dot(r) / l2
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t1 < 0 || t0 > 1 {
			return Vec2{}, false
		}
		return s.Point(Clamp(t0, 0, 1)), true
	}
	t := ao.Cross(q) / denom
	u := ao.Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Vec2{}, false
	}
	return s.Point(t), true
}

// CircleSegmentIntersect returns the parameters t ∈ [0,1] (sorted ascending)
// at which the segment crosses the circle centered at c with radius rad.
// Between zero and two parameters are returned.
func CircleSegmentIntersect(s Segment, c Vec2, rad float64) []float64 {
	d := s.Dir()
	f := s.A.Sub(c)
	a := d.Norm2()
	if a == 0 {
		return nil
	}
	b := 2 * f.Dot(d)
	cc := f.Norm2() - rad*rad
	disc := b*b - 4*a*cc
	if disc < 0 {
		return nil
	}
	sq := sqrt(disc)
	var out []float64
	for _, t := range [2]float64{(-b - sq) / (2 * a), (-b + sq) / (2 * a)} {
		if t >= 0 && t <= 1 {
			if len(out) == 1 && out[0] == t {
				continue // tangent: single root
			}
			out = append(out, t)
		}
	}
	return out
}
