// Package geom provides the small 2-D computational-geometry substrate used
// throughout the PAS reproduction: vectors, segments, polylines, polygons and
// uniform grids. Everything works in float64 world coordinates (metres).
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2-D point or vector in world coordinates.
type Vec2 struct {
	X, Y float64
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Zero is the origin / zero vector.
var Zero = Vec2{}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Neg returns -v.
func (v Vec2) Neg() Vec2 { return Vec2{-v.X, -v.Y} }

// Dot returns the dot product v · w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z-component) cross product v × w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec2) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared distance between v and w.
func (v Vec2) Dist2(w Vec2) float64 { return v.Sub(w).Norm2() }

// Normalize returns the unit vector in the direction of v. The zero vector
// normalizes to itself (there is no meaningful direction to return and the
// callers in this codebase treat a zero direction as "no movement").
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if n == 0 {
		return Vec2{}
	}
	return Vec2{v.X / n, v.Y / n}
}

// Angle returns the polar angle of v in radians, in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// AngleBetween returns the unsigned included angle between v and w in
// radians, in [0, π]. If either vector is zero the result is 0.
func (v Vec2) AngleBetween(w Vec2) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// CosBetween returns cos of the included angle between v and w, in [-1, 1].
// If either vector is zero the result is 0 (perpendicular by convention; the
// arrival-time predictor treats cos ≤ 0 as "not approaching").
func (v Vec2) CosBetween(w Vec2) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Rotate returns v rotated counter-clockwise by theta radians.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Perp returns v rotated counter-clockwise by 90 degrees.
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Lerp linearly interpolates between v and w: t=0 gives v, t=1 gives w.
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// Polar returns the vector with the given length and polar angle.
func Polar(r, theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{r * c, r * s}
}

// IsFinite reports whether both components are finite (no NaN or Inf).
func (v Vec2) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// ApproxEqual reports whether v and w agree within absolute tolerance eps in
// each component.
func (v Vec2) ApproxEqual(w Vec2, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps && math.Abs(v.Y-w.Y) <= eps
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// NormalizeAngle maps an angle to the interval (-π, π].
func NormalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	if theta > math.Pi {
		theta -= 2 * math.Pi
	} else if theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}
