package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	a := V(3, 4)
	b := V(-1, 2)
	if got := a.Add(b); got != V(2, 6) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := a.Sub(b); got != V(4, 2) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := a.Scale(2); got != V(6, 8) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := a.Neg(); got != V(-3, -4) {
		t.Errorf("Neg = %v, want (-3,-4)", got)
	}
	if got := a.Dot(b); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := a.Cross(b); got != 10 {
		t.Errorf("Cross = %v, want 10", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := a.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
}

func TestVecDist(t *testing.T) {
	if d := V(0, 0).Dist(V(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := V(1, 1).Dist2(V(4, 5)); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
}

func TestNormalize(t *testing.T) {
	u := V(3, 4).Normalize()
	if !almost(u.Norm(), 1, eps) {
		t.Errorf("normalized norm = %v, want 1", u.Norm())
	}
	if z := Zero.Normalize(); z != Zero {
		t.Errorf("Zero.Normalize() = %v, want zero", z)
	}
}

func TestAngle(t *testing.T) {
	if a := V(1, 0).Angle(); !almost(a, 0, eps) {
		t.Errorf("angle of (1,0) = %v, want 0", a)
	}
	if a := V(0, 1).Angle(); !almost(a, math.Pi/2, eps) {
		t.Errorf("angle of (0,1) = %v, want pi/2", a)
	}
	if a := V(-1, 0).Angle(); !almost(a, math.Pi, eps) {
		t.Errorf("angle of (-1,0) = %v, want pi", a)
	}
}

func TestAngleBetween(t *testing.T) {
	cases := []struct {
		a, b Vec2
		want float64
	}{
		{V(1, 0), V(0, 1), math.Pi / 2},
		{V(1, 0), V(1, 0), 0},
		{V(1, 0), V(-1, 0), math.Pi},
		{V(1, 0), V(1, 1), math.Pi / 4},
		{Zero, V(1, 0), 0},
	}
	for _, c := range cases {
		if got := c.a.AngleBetween(c.b); !almost(got, c.want, eps) {
			t.Errorf("AngleBetween(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCosBetween(t *testing.T) {
	if c := V(1, 0).CosBetween(V(2, 0)); !almost(c, 1, eps) {
		t.Errorf("cos parallel = %v, want 1", c)
	}
	if c := V(1, 0).CosBetween(V(0, 3)); !almost(c, 0, eps) {
		t.Errorf("cos perpendicular = %v, want 0", c)
	}
	if c := V(1, 0).CosBetween(V(-5, 0)); !almost(c, -1, eps) {
		t.Errorf("cos antiparallel = %v, want -1", c)
	}
	if c := Zero.CosBetween(V(1, 0)); c != 0 {
		t.Errorf("cos with zero vector = %v, want 0", c)
	}
}

func TestRotate(t *testing.T) {
	r := V(1, 0).Rotate(math.Pi / 2)
	if !r.ApproxEqual(V(0, 1), eps) {
		t.Errorf("rotate 90 = %v, want (0,1)", r)
	}
	r = V(1, 0).Rotate(math.Pi)
	if !r.ApproxEqual(V(-1, 0), eps) {
		t.Errorf("rotate 180 = %v, want (-1,0)", r)
	}
}

func TestPerp(t *testing.T) {
	p := V(2, 3).Perp()
	if p != V(-3, 2) {
		t.Errorf("Perp = %v, want (-3,2)", p)
	}
	if d := V(2, 3).Dot(p); d != 0 {
		t.Errorf("v·perp(v) = %v, want 0", d)
	}
}

func TestLerpVec(t *testing.T) {
	a, b := V(0, 0), V(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("lerp 0 = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("lerp 1 = %v, want %v", got, b)
	}
	if got := a.Lerp(b, 0.5); got != V(5, 10) {
		t.Errorf("lerp 0.5 = %v, want (5,10)", got)
	}
}

func TestPolar(t *testing.T) {
	p := Polar(2, math.Pi/2)
	if !p.ApproxEqual(V(0, 2), eps) {
		t.Errorf("Polar = %v, want (0,2)", p)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestClampAndLerp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if Lerp(0, 10, 0.3) != 3 {
		t.Error("Lerp misbehaves")
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almost(got, c.want, eps) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// --- property-based tests ---

// small maps arbitrary float64s into a well-conditioned range so quick checks
// exercise geometry without overflow artifacts.
func small(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e3)
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := V(small(ax), small(ay)), V(small(bx), small(by))
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubAddInverse(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := V(small(ax), small(ay)), V(small(bx), small(by))
		return a.Add(b).Sub(b).ApproxEqual(a, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickScaleNorm(t *testing.T) {
	f := func(ax, ay, s float64) bool {
		a := V(small(ax), small(ay))
		s = small(s)
		return almost(a.Scale(s).Norm(), math.Abs(s)*a.Norm(), 1e-6*(1+a.Norm()*math.Abs(s)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRotatePreservesNorm(t *testing.T) {
	f := func(ax, ay, th float64) bool {
		a := V(small(ax), small(ay))
		th = small(th)
		return almost(a.Rotate(th).Norm(), a.Norm(), 1e-6*(1+a.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDotSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := V(small(ax), small(ay)), V(small(bx), small(by))
		return a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossAntisymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := V(small(ax), small(ay)), V(small(bx), small(by))
		return a.Cross(b) == -b.Cross(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := V(small(ax), small(ay)), V(small(bx), small(by))
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeAngleRange(t *testing.T) {
	f := func(th float64) bool {
		if math.IsNaN(th) || math.IsInf(th, 0) {
			return true
		}
		got := NormalizeAngle(math.Mod(th, 1e6))
		return got > -math.Pi-eps && got <= math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
