package node

import (
	"math"
	"testing"

	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sim"
)

// scriptAgent records callbacks and runs optional scripted reactions.
type scriptAgent struct {
	inits, wakes, detects, gones int
	msgs                         []radio.Envelope
	onInit                       func(n *Node)
	onWake                       func(n *Node)
	onDetect                     func(n *Node)
	onMsg                        func(n *Node, from radio.NodeID, env radio.Envelope)
}

func (a *scriptAgent) Init(n *Node) {
	a.inits++
	if a.onInit != nil {
		a.onInit(n)
	}
}
func (a *scriptAgent) OnWake(n *Node) {
	a.wakes++
	if a.onWake != nil {
		a.onWake(n)
	}
}
func (a *scriptAgent) OnDetect(n *Node) {
	a.detects++
	if a.onDetect != nil {
		a.onDetect(n)
	}
}
func (a *scriptAgent) OnStimulusGone(n *Node) { a.gones++ }
func (a *scriptAgent) OnMessage(n *Node, from radio.NodeID, env radio.Envelope) {
	a.msgs = append(a.msgs, env)
	if a.onMsg != nil {
		a.onMsg(n, from, env)
	}
}

type ping struct{ payload int }

func (ping) Size() int { return 16 }

// testRig builds a kernel + medium + stimulus for hand-wired node tests.
func testRig(stim diffusion.Stimulus) (*sim.Kernel, *radio.Medium) {
	k := sim.NewKernel()
	st := rng.NewSource(1).Stream("channel")
	m := radio.NewMedium(k, geom.R(0, 0, 100, 100), energy.Telos(), radio.UnitDisk{Range: 10}, st)
	return k, m
}

func newNode(k *sim.Kernel, m *radio.Medium, id radio.NodeID, pos geom.Vec2, stim diffusion.Stimulus, a Agent) *Node {
	return New(Config{
		ID: id, Pos: pos, Kernel: k, Medium: m,
		Stimulus: stim, Profile: energy.Telos(), Agent: a,
	})
}

func TestAwakeNodeDetectsInstantly(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 50), 1, 0) // arrives at x=10 at t=10... pos (10,50)
	k, m := testRig(stim)
	a := &scriptAgent{}
	n := newNode(k, m, 0, geom.V(10, 50), stim, a)
	n.Start()
	k.RunUntil(30)
	if a.detects != 1 {
		t.Fatalf("detects = %d", a.detects)
	}
	delay, ok := n.DetectionDelay()
	if !ok || delay != 0 {
		t.Errorf("delay = %v,%v want 0,true", delay, ok)
	}
	at, ok := n.Detected()
	if !ok || at != 10 {
		t.Errorf("detected at %v", at)
	}
}

func TestSleepingNodeDetectsAtWake(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 50), 1, 0)
	k, m := testRig(stim)
	a := &scriptAgent{
		onInit: func(n *Node) { n.Sleep(25) }, // sleeps through arrival at t=10
	}
	n := newNode(k, m, 0, geom.V(10, 50), stim, a)
	n.Start()
	k.RunUntil(40)
	if a.detects != 1 {
		t.Fatalf("detects = %d", a.detects)
	}
	if a.wakes != 0 {
		t.Errorf("OnWake called despite detection at wake (wakes=%d)", a.wakes)
	}
	delay, _ := n.DetectionDelay()
	if math.Abs(delay-15) > 1e-9 {
		t.Errorf("delay = %v, want 15", delay)
	}
}

func TestWakeWithoutStimulusCallsOnWake(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0) // effectively never arrives
	k, m := testRig(stim)
	a := &scriptAgent{onInit: func(n *Node) { n.Sleep(5) }}
	n := newNode(k, m, 0, geom.V(90, 90), stim, a)
	n.Start()
	k.RunUntil(10)
	if a.wakes != 1 {
		t.Errorf("wakes = %d", a.wakes)
	}
	if a.detects != 0 {
		t.Errorf("detects = %d", a.detects)
	}
	if _, ok := n.Detected(); ok {
		t.Error("node claims detection")
	}
}

func TestSleepEnergyAccounting(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	a := &scriptAgent{onInit: func(n *Node) { n.Sleep(60) }}
	n := newNode(k, m, 0, geom.V(90, 90), stim, a)
	n.Start()
	k.RunUntil(100)
	n.Finish(100)
	b := n.Meter().Breakdown()
	if math.Abs(b.SleepSec-60) > 1e-9 {
		t.Errorf("SleepSec = %v, want 60", b.SleepSec)
	}
	if math.Abs(b.ActiveSec-40) > 1e-9 {
		t.Errorf("ActiveSec = %v, want 40", b.ActiveSec)
	}
}

func TestMessageDelivery(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	rxA := &scriptAgent{}
	txA := &scriptAgent{onInit: func(n *Node) { n.BroadcastMessage(ping{payload: 7}) }}
	rx := newNode(k, m, 0, geom.V(50, 50), stim, rxA)
	tx := newNode(k, m, 1, geom.V(55, 50), stim, txA)
	rx.Start()
	tx.Start()
	k.RunUntil(1)
	if len(rxA.msgs) != 1 {
		t.Fatalf("rx got %d messages", len(rxA.msgs))
	}
	if rx.RxCount() != 1 || tx.TxCount() != 1 {
		t.Errorf("counters rx=%d tx=%d", rx.RxCount(), tx.TxCount())
	}
}

func TestAsleepNodeMissesMessages(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	rxA := &scriptAgent{onInit: func(n *Node) { n.Sleep(10) }}
	txA := &scriptAgent{onInit: func(n *Node) { n.BroadcastMessage(ping{}) }}
	rx := newNode(k, m, 0, geom.V(50, 50), stim, rxA)
	tx := newNode(k, m, 1, geom.V(55, 50), stim, txA)
	rx.Start()
	tx.Start()
	k.RunUntil(20)
	if len(rxA.msgs) != 0 {
		t.Errorf("sleeping node received %d messages", len(rxA.msgs))
	}
}

func TestStateResidency(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	a := &scriptAgent{}
	n := newNode(k, m, 0, geom.V(50, 50), stim, a)
	n.Start()
	k.Schedule(10, func(*sim.Kernel) { n.SetState(StateAlert) })
	k.Schedule(30, func(*sim.Kernel) { n.SetState(StateCovered) })
	k.RunUntil(50)
	r := n.StateResidency()
	if math.Abs(r[StateSafe]-10) > 1e-9 || math.Abs(r[StateAlert]-20) > 1e-9 || math.Abs(r[StateCovered]-20) > 1e-9 {
		t.Errorf("residency = %v", r)
	}
}

func TestStateChangeHook(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	n := newNode(k, m, 0, geom.V(50, 50), stim, &scriptAgent{})
	var transitions []State
	n.OnStateChange(func(_ *Node, _, new State) { transitions = append(transitions, new) })
	n.SetState(StateAlert)
	n.SetState(StateAlert) // no-op, must not re-notify
	n.SetState(StateCovered)
	if len(transitions) != 2 || transitions[0] != StateAlert || transitions[1] != StateCovered {
		t.Errorf("transitions = %v", transitions)
	}
	_ = k
}

func TestDetectHook(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 50), 1, 0)
	k, m := testRig(stim)
	n := newNode(k, m, 0, geom.V(10, 50), stim, &scriptAgent{})
	var gotDelay float64 = -1
	n.OnDetectHook(func(_ *Node, d float64) { gotDelay = d })
	n.Start()
	k.RunUntil(20)
	if gotDelay != 0 {
		t.Errorf("hook delay = %v", gotDelay)
	}
}

func TestFailure(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 50), 1, 0)
	k, m := testRig(stim)
	a := &scriptAgent{}
	n := newNode(k, m, 0, geom.V(20, 50), stim, a) // arrival t=20
	n.FailAt(5)
	n.Start()
	k.RunUntil(40)
	if !n.Failed() {
		t.Fatal("node not failed")
	}
	if a.detects != 0 {
		t.Error("failed node detected the stimulus")
	}
	if n.Listening() {
		t.Error("failed node still listening")
	}
	// Meter stopped at failure: only 5 s of active time.
	b := n.Meter().Breakdown()
	if math.Abs(b.ActiveSec-5) > 1e-9 {
		t.Errorf("ActiveSec = %v, want 5", b.ActiveSec)
	}
	// Fail is idempotent, Finish after failure is a no-op.
	n.Fail()
	n.Finish(40)
}

func TestFailedNodeDoesNotWake(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	a := &scriptAgent{onInit: func(n *Node) { n.Sleep(10) }}
	n := newNode(k, m, 0, geom.V(50, 50), stim, a)
	n.Start()
	n.FailAt(5)
	k.RunUntil(30)
	if a.wakes != 0 {
		t.Errorf("failed node woke %d times", a.wakes)
	}
}

func TestRecedingStimulusGone(t *testing.T) {
	inner := diffusion.NewRadialFront(geom.V(0, 50), 1, 0)
	stim := diffusion.NewReceding(inner, 5) // at (10,50): covered 10..15
	k, m := testRig(stim)
	a := &scriptAgent{}
	n := newNode(k, m, 0, geom.V(10, 50), stim, a)
	n.Start()
	k.RunUntil(30)
	if a.detects != 1 {
		t.Fatalf("detects = %d", a.detects)
	}
	if a.gones != 1 {
		t.Errorf("gones = %d, want 1", a.gones)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	a := &scriptAgent{}
	n := newNode(k, m, 0, geom.V(50, 50), stim, a)
	mustPanic("zero sleep", func() { n.Sleep(0) })
	mustPanic("incomplete config", func() { New(Config{}) })
	// Broadcast/sensor while asleep.
	n2 := newNode(k, m, 1, geom.V(60, 50), stim, &scriptAgent{onInit: func(n *Node) { n.Sleep(100) }})
	n2.Start()
	k.RunUntil(1)
	mustPanic("broadcast asleep", func() { n2.BroadcastMessage(ping{}) })
	mustPanic("sense asleep", func() { n2.CoveredNow() })
}

func TestSleepWhileAsleepIgnored(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	n := newNode(k, m, 0, geom.V(50, 50), stim, &scriptAgent{})
	n.Start()
	n.Sleep(10)
	n.Sleep(5) // already asleep: ignored, keeps the original wake time
	k.RunUntil(20)
	if !n.IsAwake() {
		t.Error("node never woke")
	}
}

func TestBuildNetworkAndRun(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 20), 0.5, 5)
	dep := deploy.Grid(nil, geom.R(0, 0, 40, 40), 5, 5, 0)
	agents := make([]*scriptAgent, dep.N())
	nw := BuildNetwork(NetworkConfig{
		Deployment: dep,
		Stimulus:   stim,
		Profile:    energy.Telos(),
		Loss:       radio.UnitDisk{Range: 10},
		Agents: func(id radio.NodeID) Agent {
			agents[id] = &scriptAgent{}
			return agents[id]
		},
	})
	if len(nw.Nodes) != 25 {
		t.Fatalf("nodes = %d", len(nw.Nodes))
	}
	nw.Run(200)
	// Every agent initialized; every node (always awake) detected with zero
	// delay once the front passed it.
	for i, a := range agents {
		if a.inits != 1 {
			t.Fatalf("agent %d inits = %d", i, a.inits)
		}
		n := nw.Nodes[i]
		if n.TrueArrival() <= 200 {
			if d, ok := n.DetectionDelay(); !ok || d != 0 {
				t.Errorf("node %d delay = %v,%v", i, d, ok)
			}
		}
	}
}

func TestBuildNetworkPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	dep := deploy.Grid(nil, geom.R(0, 0, 10, 10), 2, 2, 0)
	stim := diffusion.NewRadialFront(geom.V(0, 0), 1, 0)
	mustPanic("empty deployment", func() {
		BuildNetwork(NetworkConfig{Deployment: &deploy.Deployment{}})
	})
	mustPanic("missing agents", func() {
		BuildNetwork(NetworkConfig{Deployment: dep, Stimulus: stim, Loss: radio.UnitDisk{Range: 1}})
	})
	mustPanic("bad horizon", func() {
		nw := BuildNetwork(NetworkConfig{
			Deployment: dep, Stimulus: stim, Profile: energy.Telos(),
			Loss:   radio.UnitDisk{Range: 5},
			Agents: func(radio.NodeID) Agent { return &scriptAgent{} },
		})
		nw.Run(0)
	})
}

func TestStateString(t *testing.T) {
	if StateSafe.String() != "safe" || StateAlert.String() != "alert" || StateCovered.String() != "covered" {
		t.Error("state strings wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state string empty")
	}
}
