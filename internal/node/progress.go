package node

import "context"

// ProgressFunc observes a running simulation's advance through virtual time:
// now is the kernel time reached, horizon the run's end. Hooks are called
// from the run orchestration goroutine — never from inside an event handler —
// so they cannot perturb the event sequence; a progress-observed run is
// byte-identical to an unobserved one. Implementations must be cheap and
// must not block: a serial run reports per RunUntil slice, a sharded run per
// conservative window, which at 100k-node scale is tens of thousands of
// calls.
type ProgressFunc func(now, horizon float64)

// progressKey carries a ProgressFunc through a context.
type progressKey struct{}

// WithProgress derives a context whose simulation runs report progress to fn.
// The hook rides the context through every layer (experiment.RunOnceContext →
// Network.RunContext / ShardedNetwork.RunContext) without widening any
// signature, so the serving layer can stream per-window progress for a
// 100k-node sharded run it queued as an async job.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// ProgressFromContext extracts the hook WithProgress installed, or nil.
// Layers that fan one logical run across several simulations (the serving
// replicate path) use it to wrap the caller's hook with a rescaled one.
func ProgressFromContext(ctx context.Context) ProgressFunc {
	fn, _ := ctx.Value(progressKey{}).(ProgressFunc)
	return fn
}

// progressFrom is the package-internal alias the run loops use.
func progressFrom(ctx context.Context) ProgressFunc {
	return ProgressFromContext(ctx)
}
