// Package node implements the sensor-mote runtime: the per-node state
// machine scaffolding (safe/alert/covered, paper Fig. 3), the sensing
// process, sleep/wake control with energy accounting, radio plumbing and
// failure injection. Protocol behaviour (PAS, SAS, NS, duty-cycling) is
// supplied by an Agent implementation; the Node provides the facilities
// agents act through.
package node

import (
	"fmt"
	"math"

	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/sim"
)

// State is the protocol state of a sensor (paper §3.2).
type State int

// The three sensor states of the paper.
const (
	// StateSafe means the stimulus is far (or unknown); the node may sleep.
	StateSafe State = iota
	// StateAlert means the predicted arrival is imminent; the node stays
	// awake to catch it.
	StateAlert
	// StateCovered means the node's sensor currently observes the stimulus.
	StateCovered
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateSafe:
		return "safe"
	case StateAlert:
		return "alert"
	case StateCovered:
		return "covered"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Agent is the protocol personality plugged into a Node. All callbacks run
// on the simulation goroutine.
type Agent interface {
	// Init is called once at simulation start with the node fully wired.
	Init(n *Node)
	// OnWake is called when the node wakes from sleep and its sensor does
	// not newly detect the stimulus (a new detection goes to OnDetect
	// instead).
	OnWake(n *Node)
	// OnDetect is called the moment the node's sensor first observes the
	// stimulus: immediately at arrival while awake, or at wake-up while it
	// slept through the arrival.
	OnDetect(n *Node)
	// OnStimulusGone is called when a previously covered node's sensor
	// stops observing the stimulus (receding stimuli only).
	OnStimulusGone(n *Node)
	// OnMessage is called for every message received while awake. The
	// envelope arrives by value; protocol payloads are unpacked from the
	// tagged union (radio.KindRequest/KindResponse/...) and extension
	// payloads ride in env.Ext via the radio.KindExt slow path.
	OnMessage(n *Node, from radio.NodeID, env radio.Envelope)
}

// Departer is implemented by stimuli whose coverage can end (e.g.
// diffusion.Receding); nodes use it to schedule OnStimulusGone.
type Departer interface {
	DepartureTime(p geom.Vec2) float64
}

// SensorModel transforms ground-truth coverage into what a (possibly
// miscalibrated) sensor actually reads. internal/fault implements it; a node
// without one reads the stimulus directly.
type SensorModel interface {
	// Reading is the sensor output at time now given the true stimulus.
	// Query times are non-decreasing within a run.
	Reading(stim diffusion.Stimulus, pos geom.Vec2, now float64) bool
	// SenseTimes lists extra instants the node should sample its sensor at
	// (perceived arrival, noise-burst onsets, ...) beyond the ground-truth
	// arrival event. Times in the past or at +Inf are ignored.
	SenseTimes(stim diffusion.Stimulus, pos geom.Vec2) []float64
}

// Downtime is one closed outage interval of a churned node.
type Downtime struct {
	Start, End float64
}

// Node is one simulated sensor mote. Nodes embed their meter and timers by
// value and schedule their callbacks as package-level arg handlers, so
// BuildNetwork can slab-allocate thousands of them with O(1) allocations.
type Node struct {
	id     radio.NodeID
	pos    geom.Vec2
	kernel *sim.Kernel
	medium *radio.Medium
	stim   diffusion.Stimulus
	meter  energy.Meter
	agent  Agent
	sensor SensorModel // nil = perfect sensor (the default)

	state      State
	awake      bool
	failed     bool
	detected   bool
	detectedAt float64
	arrival    float64 // ground-truth arrival time (possibly +Inf)

	wake      sim.Timer
	txCount   int
	rxCount   int
	stateTime [3]float64 // residency per state
	lastState float64    // time of last state change

	// Battery, when positive, is the energy budget in joules; the node dies
	// the moment its meter would exceed it.
	battery float64
	death   sim.Timer
	diedAt  float64
	dead    bool // exhausted battery (distinct from injected failure)

	// Churn bookkeeping: failedAt is the instant of the current (or last)
	// failure; downs accumulates closed outage intervals on recovery, so the
	// legacy crash-stop path (which never recovers) stays allocation-free.
	failedAt float64
	downs    []Downtime

	// Observer hooks (optional; set by metrics/trace collectors).
	onStateChange func(n *Node, old, new State)
	onDetect      func(n *Node, delay float64)
}

// Config wires a node into a simulation.
type Config struct {
	ID       radio.NodeID
	Pos      geom.Vec2
	Kernel   *sim.Kernel
	Medium   *radio.Medium
	Stimulus diffusion.Stimulus
	Profile  energy.Profile
	Agent    Agent
}

// Package-level arg handlers for node callbacks: scheduling them with the
// node as the event argument (a pointer, which boxes without allocating)
// keeps node construction and sleep/wake churn free of closure allocations.
func nodeWake(_ *sim.Kernel, arg any)    { arg.(*Node).wakeUp() }
func nodeSense(_ *sim.Kernel, arg any)   { arg.(*Node).senseNow() }
func nodeGone(_ *sim.Kernel, arg any)    { arg.(*Node).stimulusGone() }
func nodeDie(_ *sim.Kernel, arg any)     { arg.(*Node).dieOfBattery() }
func nodeFail(_ *sim.Kernel, arg any)    { arg.(*Node).Fail() }
func nodeRecover(_ *sim.Kernel, arg any) { arg.(*Node).Recover() }

// New creates a node, registers it on the medium and schedules its sensing
// events. The node starts awake in the safe state (all sensors boot active;
// the agent decides in Init whether to sleep).
func New(cfg Config) *Node {
	n := new(Node)
	n.init(cfg)
	return n
}

// init wires a node in place — the slab-construction entry point used by
// BuildNetwork (New wraps it for hand-built nodes).
func (n *Node) init(cfg Config) {
	if cfg.Kernel == nil || cfg.Medium == nil || cfg.Stimulus == nil || cfg.Agent == nil {
		panic("node: incomplete config")
	}
	*n = Node{
		id:        cfg.ID,
		pos:       cfg.Pos,
		kernel:    cfg.Kernel,
		medium:    cfg.Medium,
		stim:      cfg.Stimulus,
		agent:     cfg.Agent,
		state:     StateSafe,
		awake:     true,
		arrival:   cfg.Stimulus.ArrivalTime(cfg.Pos),
		lastState: cfg.Kernel.Now(),
	}
	n.meter.Init(cfg.Profile, cfg.Kernel.Now(), energy.ModeActive)
	n.wake.Bind(cfg.Kernel)
	n.death.Bind(cfg.Kernel)
	cfg.Medium.AddNode(cfg.ID, cfg.Pos, n, &n.meter)

	// Ground-truth arrival: an awake sensor detects at this exact instant.
	if !math.IsInf(n.arrival, 1) && n.arrival >= cfg.Kernel.Now() {
		cfg.Kernel.ScheduleArgAt(n.arrival, nodeSense, n)
	}
	// Receding stimuli: schedule the departure check.
	if dep, ok := cfg.Stimulus.(Departer); ok {
		if d := dep.DepartureTime(cfg.Pos); !math.IsInf(d, 1) && d >= cfg.Kernel.Now() {
			cfg.Kernel.ScheduleArgAt(d, nodeGone, n)
		}
	}
}

// Start invokes the agent's Init. Call after all nodes exist so that initial
// broadcasts can reach every neighbour.
func (n *Node) Start() { n.agent.Init(n) }

// --- identity & environment accessors ---

// ID returns the node's medium identifier.
func (n *Node) ID() radio.NodeID { return n.id }

// Pos returns the node's fixed position.
func (n *Node) Pos() geom.Vec2 { return n.pos }

// Now returns the current virtual time.
func (n *Node) Now() float64 { return n.kernel.Now() }

// Kernel exposes the simulation kernel for agent-managed timers.
func (n *Node) Kernel() *sim.Kernel { return n.kernel }

// Meter returns the node's energy meter.
func (n *Node) Meter() *energy.Meter { return &n.meter }

// TrueArrival returns the ground-truth stimulus arrival time at this node
// (+Inf if never). Metrics use it; protocol agents must not (they only see
// sensor readings and messages).
func (n *Node) TrueArrival() float64 { return n.arrival }

// --- state ---

// State returns the node's protocol state.
func (n *Node) State() State { return n.state }

// SetState transitions the protocol state, updating residency accounting and
// notifying the observer hook.
func (n *Node) SetState(s State) {
	if s == n.state {
		return
	}
	now := n.kernel.Now()
	n.stateTime[n.state] += now - n.lastState
	n.lastState = now
	old := n.state
	n.state = s
	if n.onStateChange != nil {
		n.onStateChange(n, old, s)
	}
}

// StateResidency returns the time spent in each state so far, with the
// current stretch included.
func (n *Node) StateResidency() [3]float64 {
	r := n.stateTime
	r[n.state] += n.kernel.Now() - n.lastState
	return r
}

// --- sleep/wake ---

// IsAwake reports whether the node is awake (false while sleeping or after
// failure).
func (n *Node) IsAwake() bool { return n.awake && !n.failed }

// Sleep puts the node to sleep for d seconds, after which it wakes and the
// agent's OnWake (or OnDetect, if the stimulus arrived meanwhile) runs.
// Sleeping with d <= 0 panics: a zero sleep would busy-loop the kernel.
func (n *Node) Sleep(d float64) {
	if d <= 0 {
		panic(fmt.Sprintf("node %d: sleep duration must be positive, got %g", n.id, d))
	}
	if n.failed || !n.awake {
		return
	}
	n.awake = false
	n.meter.SetMode(n.kernel.Now(), energy.ModeSleep)
	n.rescheduleDeath()
	n.wake.ResetArg(d, nodeWake, n)
}

// wakeUp transitions to awake and routes to the agent.
func (n *Node) wakeUp() {
	if n.failed {
		return
	}
	n.awake = true
	n.meter.SetMode(n.kernel.Now(), energy.ModeActive)
	n.rescheduleDeath()
	if n.senseNow() {
		return // new detection already routed to OnDetect
	}
	n.agent.OnWake(n)
}

// senseNow samples the sensor; on a new detection it records the delay and
// calls OnDetect, reporting true.
func (n *Node) senseNow() bool {
	if n.failed || !n.awake || n.detected {
		return false
	}
	if !n.covered(n.kernel.Now()) {
		return false
	}
	n.detected = true
	n.detectedAt = n.kernel.Now()
	if n.onDetect != nil {
		n.onDetect(n, n.detectedAt-n.arrival)
	}
	n.agent.OnDetect(n)
	return true
}

// stimulusGone fires when a receding stimulus leaves the node's position.
func (n *Node) stimulusGone() {
	if n.failed {
		return
	}
	// Only meaningful if the node had detected; a node that slept through
	// the whole dwell never knew.
	if n.detected && n.awake {
		n.agent.OnStimulusGone(n)
	}
}

// Sense samples the sensor and routes a new detection to the agent's
// OnDetect, reporting whether a new detection occurred. Awake agents use it
// to model continuous monitoring (the scheduled ground-truth arrival event
// normally fires first; Sense is the safety net for stimuli whose coverage
// queries carry numerical error). Asleep or failed nodes sense nothing.
func (n *Node) Sense() bool { return n.senseNow() }

// CoveredNow returns the sensor reading at the current instant. Agents may
// only call it while awake (the sensor is powered down asleep); calling it
// asleep panics to catch protocol bugs.
func (n *Node) CoveredNow() bool {
	if !n.IsAwake() {
		panic(fmt.Sprintf("node %d: sensor read while asleep", n.id))
	}
	return n.covered(n.kernel.Now())
}

// covered is the sensor reading at time t: the ground-truth coverage, routed
// through the miscalibration model when one is installed.
func (n *Node) covered(t float64) bool {
	if n.sensor != nil {
		return n.sensor.Reading(n.stim, n.pos, t)
	}
	return n.stim.Covered(n.pos, t)
}

// SetSensor installs a miscalibration model and schedules its extra sensing
// instants (perceived arrival, burst onsets). Call before Start.
func (n *Node) SetSensor(sm SensorModel) {
	n.sensor = sm
	if sm == nil {
		return
	}
	now := n.kernel.Now()
	for _, t := range sm.SenseTimes(n.stim, n.pos) {
		if !math.IsInf(t, 1) && t >= now {
			n.kernel.ScheduleArgAt(t, nodeSense, n)
		}
	}
}

// Sensor returns the installed sensor model (nil = perfect sensor).
func (n *Node) Sensor() SensorModel { return n.sensor }

// Detected reports whether and when the node has detected the stimulus.
func (n *Node) Detected() (float64, bool) { return n.detectedAt, n.detected }

// DetectionDelay returns the elapsed time between ground-truth arrival and
// detection, and whether the node has detected at all.
func (n *Node) DetectionDelay() (float64, bool) {
	if !n.detected {
		return 0, false
	}
	return n.detectedAt - n.arrival, true
}

// --- radio ---

// Listening implements radio.Receiver.
func (n *Node) Listening() bool { return n.IsAwake() }

// Deliver implements radio.Receiver.
func (n *Node) Deliver(from radio.NodeID, env radio.Envelope) {
	if n.failed {
		return
	}
	n.rxCount++
	n.agent.OnMessage(n, from, env)
}

// Broadcast transmits an envelope to the neighbourhood. Transmitting while
// asleep or failed panics — it indicates a protocol bug.
func (n *Node) Broadcast(env radio.Envelope) {
	if !n.IsAwake() {
		panic(fmt.Sprintf("node %d: broadcast while not awake", n.id))
	}
	n.txCount++
	n.medium.Broadcast(n.id, env)
}

// BroadcastMessage transmits a boxed Message via the radio.KindExt slow path
// — for extension message types outside the envelope's tagged union.
func (n *Node) BroadcastMessage(msg radio.Message) { n.Broadcast(radio.Wrap(msg)) }

// TxCount returns the number of transmissions initiated.
func (n *Node) TxCount() int { return n.txCount }

// RxCount returns the number of messages received.
func (n *Node) RxCount() int { return n.rxCount }

// --- battery ---

// SetBattery gives the node a finite energy budget in joules; when the
// meter's projected consumption reaches it, the node dies (like a failure,
// but recorded separately). Call before Start. A non-positive budget
// disables the battery (infinite energy, the default).
func (n *Node) SetBattery(joules float64) {
	n.battery = joules
	n.rescheduleDeath()
}

// rescheduleDeath projects the exhaustion instant under the current draw.
// It must be called after every mode change; the projection is exact
// between mode changes because the draw is piecewise constant (transmit
// charges land between projections and only pull death earlier, which the
// next mode change corrects — acceptable because packet energies are ~µJ
// against multi-joule budgets).
func (n *Node) rescheduleDeath() {
	if n.battery <= 0 || n.failed {
		return
	}
	now := n.kernel.Now()
	remaining := n.battery - n.meter.TotalAtJ(now)
	if remaining <= 0 {
		n.dieOfBattery()
		return
	}
	draw := n.meter.CurrentDrawW()
	if draw <= 0 {
		n.death.Stop()
		return
	}
	n.death.ResetArg(remaining/draw, nodeDie, n)
}

// dieOfBattery marks exhaustion and kills the node.
func (n *Node) dieOfBattery() {
	if n.failed {
		return
	}
	n.dead = true
	n.diedAt = n.kernel.Now()
	n.Fail()
}

// BatteryDead reports whether (and when) the node died of battery
// exhaustion.
func (n *Node) BatteryDead() (float64, bool) { return n.diedAt, n.dead }

// --- failure injection ---

// Fail kills the node at the current instant: it stops sensing, listening
// and waking, and its meter stops accruing (a dead node draws nothing).
func (n *Node) Fail() {
	if n.failed {
		return
	}
	n.failed = true
	n.failedAt = n.kernel.Now()
	n.wake.Stop()
	n.death.Stop()
	n.meter.Close(n.kernel.Now())
}

// Failed reports whether the node has been killed.
func (n *Node) Failed() bool { return n.failed }

// FailAt schedules the node to fail at virtual time at.
func (n *Node) FailAt(at float64) {
	n.kernel.ScheduleArgAt(at, nodeFail, n)
}

// Recover reboots a failed node in place: the outage closes, the meter
// reopens in active mode (charging the wake-up cost — a reboot is at least
// a wake-up), the radio is marked deaf to transmissions already in flight,
// and the agent sees an OnWake (or OnDetect if the stimulus arrived during
// the outage). Positions never change, so the frozen network topology stays
// valid — recovery must never touch the medium's neighbor structure.
// Battery-dead nodes stay dead; recovery is for injected churn only.
func (n *Node) Recover() {
	if !n.failed || n.dead {
		return
	}
	now := n.kernel.Now()
	n.downs = append(n.downs, Downtime{Start: n.failedAt, End: now})
	n.failed = false
	n.awake = true
	n.meter.Reopen(now, energy.ModeActive)
	n.medium.MarkDeafUntil(n.id, now)
	n.rescheduleDeath()
	if !n.senseNow() {
		n.agent.OnWake(n)
	}
}

// RecoverAt schedules the node to recover at virtual time at.
func (n *Node) RecoverAt(at float64) {
	n.kernel.ScheduleArgAt(at, nodeRecover, n)
}

// Downtimes returns the closed outage intervals so far (recoveries only; a
// node currently down has an open interval ending at WasDownAt's query
// time). The slice is owned by the node — do not mutate.
func (n *Node) Downtimes() []Downtime { return n.downs }

// WasDownAt reports whether the node was failed at time t.
func (n *Node) WasDownAt(t float64) bool {
	for _, d := range n.downs {
		if t >= d.Start && t < d.End {
			return true
		}
	}
	return n.failed && t >= n.failedAt
}

// DownDuring returns the total time the node spent failed within
// [0, horizon], the open tail of a still-failed node included.
func (n *Node) DownDuring(horizon float64) float64 {
	var tot float64
	for _, d := range n.downs {
		tot += math.Min(d.End, horizon) - math.Min(d.Start, horizon)
	}
	if n.failed && n.failedAt < horizon {
		tot += horizon - n.failedAt
	}
	return tot
}

// Agent exposes the protocol agent, letting metrics collectors type-assert
// for protocol-specific statistics (e.g. liveness tracking).
func (n *Node) Agent() Agent { return n.agent }

// --- observers ---

// OnStateChange registers a hook invoked on every state transition.
func (n *Node) OnStateChange(f func(n *Node, old, new State)) { n.onStateChange = f }

// OnDetectHook registers a hook invoked when the node first detects the
// stimulus, with the detection delay.
func (n *Node) OnDetectHook(f func(n *Node, delay float64)) { n.onDetect = f }

// Finish closes the meter at the end of the simulation. Idempotent for a
// fixed timestamp; failed nodes were closed at failure time.
func (n *Node) Finish(at float64) {
	if !n.failed {
		n.meter.Close(at)
	}
}
