package node

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/sim"
)

func TestBatteryKillsAlwaysOnNodeOnSchedule(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	a := &scriptAgent{}
	n := newNode(k, m, 0, geom.V(50, 50), stim, a)
	// Always-on draw is 41 mW → a 0.41 J budget dies at exactly t=10.
	n.SetBattery(0.41)
	n.Start()
	k.RunUntil(100)
	diedAt, dead := n.BatteryDead()
	if !dead {
		t.Fatal("node never died of battery")
	}
	if math.Abs(diedAt-10) > 1e-6 {
		t.Errorf("died at %v, want 10", diedAt)
	}
	if !n.Failed() {
		t.Error("battery death did not mark failure")
	}
	// Consumed energy equals the budget.
	if got := n.Meter().TotalJ(); math.Abs(got-0.41) > 1e-9 {
		t.Errorf("consumed %v J, want 0.41", got)
	}
}

func TestBatteryLastsLongerWhenSleeping(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	// Sleeps 90 of every ~100 s.
	a := &scriptAgent{}
	a.onInit = func(n *Node) { n.Sleep(90) }
	a.onWake = func(n *Node) {
		// Stay awake ~10 s, then nap again.
		n.Kernel().Schedule(10, func(*sim.Kernel) {
			if n.IsAwake() {
				n.Sleep(90)
			}
		})
	}
	n := newNode(k, m, 0, geom.V(50, 50), stim, a)
	n.SetBattery(0.41)
	n.Start()
	k.RunUntil(5000)
	diedAt, dead := n.BatteryDead()
	if !dead {
		// May legitimately still be alive; then it must have outlived the
		// always-on node's 10 s by a wide margin in consumed energy.
		if n.Meter().TotalJ() > 0.41 {
			t.Fatalf("meter %v exceeded budget without death", n.Meter().TotalJ())
		}
		return
	}
	// Sleeping 90 s first, the same budget lasts ~100 s instead of 10.
	if diedAt < 50 {
		t.Errorf("sleepy node died at %v, want ≫ 10", diedAt)
	}
}

func TestBatteryDisabled(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	n := newNode(k, m, 0, geom.V(50, 50), stim, &scriptAgent{})
	n.SetBattery(0) // disabled
	n.Start()
	k.RunUntil(1000)
	if _, dead := n.BatteryDead(); dead {
		t.Error("disabled battery killed the node")
	}
}

func TestBatteryAlreadyExhausted(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	n := newNode(k, m, 0, geom.V(50, 50), stim, &scriptAgent{})
	k.RunUntil(10) // 0.41 J consumed already
	n.SetBattery(0.2)
	if _, dead := n.BatteryDead(); !dead {
		t.Error("over-budget node not dead immediately")
	}
}

func TestBatteryDeathCancelledByInjectedFailure(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	n := newNode(k, m, 0, geom.V(50, 50), stim, &scriptAgent{})
	n.SetBattery(0.41)
	n.FailAt(5) // injected failure first
	n.Start()
	k.RunUntil(100)
	if _, dead := n.BatteryDead(); dead {
		t.Error("failed node still died of battery")
	}
	if !n.Failed() {
		t.Error("node not failed")
	}
}

func TestBatteryRescheduleAcrossSleep(t *testing.T) {
	// Budget covers 10 s awake OR ~7.6 days asleep. A node that sleeps
	// 5 s after 5 s awake must die later than 10.
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	a := &scriptAgent{}
	n := newNode(k, m, 0, geom.V(50, 50), stim, a)
	n.SetBattery(0.41)
	n.Start()
	k.Schedule(5, func(*sim.Kernel) { n.Sleep(5) }) // asleep t=5..10
	k.RunUntil(30)
	diedAt, dead := n.BatteryDead()
	if !dead {
		t.Fatal("node still alive")
	}
	// Awake 0..5 (0.205 J), asleep 5..10 (75 µJ), awake from 10: remaining
	// ≈ 0.205 J lasts ~5 s → death ≈ 15.
	if diedAt < 14.9 || diedAt > 15.1 {
		t.Errorf("died at %v, want ≈15", diedAt)
	}
}
