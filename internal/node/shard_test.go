package node

import (
	"testing"

	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/sim"
)

// rxEvent is one observed delivery: who sent it and when it arrived.
type rxEvent struct {
	from radio.NodeID
	at   float64
}

// floodAgent broadcasts a ping at scheduled instants and relays every
// received message up to a cap, producing a deterministic flood whose
// fan-outs collide at identical timestamps across nodes — the workload that
// exposes any cross-shard ordering or boundary-delivery defect.
type floodAgent struct {
	sendAt []float64 // windowed-mode broadcasts
	atInit bool      // also broadcast during Init (direct mode)
	relays int
	rx     []rxEvent
}

func (a *floodAgent) Init(n *Node) {
	if a.atInit {
		n.BroadcastMessage(ping{payload: int(n.ID())})
	}
	for _, at := range a.sendAt {
		n.Kernel().ScheduleArgAt(at, floodSend, n)
	}
}

func floodSend(_ *sim.Kernel, arg any) {
	n := arg.(*Node)
	n.BroadcastMessage(ping{payload: int(n.ID())})
}

func (a *floodAgent) OnWake(*Node)         {}
func (a *floodAgent) OnDetect(*Node)       {}
func (a *floodAgent) OnStimulusGone(*Node) {}
func (a *floodAgent) OnMessage(n *Node, from radio.NodeID, env radio.Envelope) {
	a.rx = append(a.rx, rxEvent{from: from, at: n.Now()})
	if a.relays < 2 {
		a.relays++
		n.BroadcastMessage(ping{payload: int(n.ID())})
	}
}

// lineConfig is a six-node line with radio range covering two hops, so the
// middle nodes' CSR rows span both halves of any 2-shard split.
func lineConfig(agents []*floodAgent) NetworkConfig {
	positions := []geom.Vec2{
		geom.V(1, 5), geom.V(3, 5), geom.V(5, 5), geom.V(7, 5), geom.V(9, 5), geom.V(11, 5),
	}
	return NetworkConfig{
		Deployment: &deploy.Deployment{Field: geom.R(0, 0, 20, 10), Positions: positions},
		// A stimulus that never arrives inside the horizon: the flood alone
		// drives the run.
		Stimulus: diffusion.NewRadialFront(geom.V(500, 500), 1e-6, 0),
		Profile:  energy.Telos(),
		Loss:     radio.UnitDisk{Range: 5},
		Agents:   func(id radio.NodeID) Agent { return agents[id] },
	}
}

func newFloodAgents() []*floodAgent {
	agents := make([]*floodAgent, 6)
	for i := range agents {
		agents[i] = &floodAgent{}
	}
	// Node 3 broadcasts during Init: its row {1,2,3,4,5} spans the shard cut,
	// exercising the direct-mode boundary flush. Nodes 2 and 3 broadcast at
	// the same windowed instant, forcing equal-time cross-shard fan-outs.
	agents[3].atInit = true
	agents[2].sendAt = []float64{1.0}
	agents[3].sendAt = []float64{1.0}
	agents[0].sendAt = []float64{1.0, 1.5}
	return agents
}

// TestShardBoundaryDelivery pins the sharded radio against the serial one on
// a broadcast flood whose CSR rows span the shard cut: every node must see
// the identical delivery sequence — same senders, same times, same order —
// at any shard count.
func TestShardBoundaryDelivery(t *testing.T) {
	const horizon = 2.0
	const minWire = 12

	serial := newFloodAgents()
	nw := BuildNetwork(lineConfig(serial))
	nw.Run(horizon)

	for _, shards := range []int{1, 2, 3, 6} {
		agents := newFloodAgents()
		snw := BuildShardedNetwork(lineConfig(agents), shards, minWire)
		snw.Run(horizon)

		for id := range agents {
			got, want := agents[id].rx, serial[id].rx
			if len(got) != len(want) {
				t.Fatalf("shards=%d node %d: %d deliveries, serial saw %d\ngot:  %v\nwant: %v",
					shards, id, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shards=%d node %d delivery %d: got %+v, serial %+v",
						shards, id, i, got[i], want[i])
				}
			}
			if g, w := snw.Nodes[id].RxCount(), nw.Nodes[id].RxCount(); g != w {
				t.Errorf("shards=%d node %d rxCount=%d, serial %d", shards, id, g, w)
			}
			if g, w := snw.Nodes[id].TxCount(), nw.Nodes[id].TxCount(); g != w {
				t.Errorf("shards=%d node %d txCount=%d, serial %d", shards, id, g, w)
			}
		}
	}
}

// TestShardAssignmentContiguous pins the spatial partition: equal-count
// strips in (x, y, index) order, every node owned by exactly one shard, and
// ownership contiguous along the sorted order.
func TestShardAssignmentContiguous(t *testing.T) {
	positions := []geom.Vec2{
		geom.V(9, 0), geom.V(1, 0), geom.V(5, 0), geom.V(3, 0), geom.V(7, 0), geom.V(5, 0),
	}
	owner := shardAssignment(positions, 3)
	counts := map[int32]int{}
	for _, s := range owner {
		counts[s]++
	}
	for s := int32(0); s < 3; s++ {
		if counts[s] != 2 {
			t.Fatalf("shard %d owns %d nodes, want 2 (owner=%v)", s, counts[s], owner)
		}
	}
	// x-sorted order is nodes 1,3,{2,5},4,0; the co-located pair (2,5) breaks
	// the tie by index, so strips are {1,3}, {2,5}, {4,0}.
	want := []int32{2, 0, 1, 0, 2, 1}
	for i := range owner {
		if owner[i] != want[i] {
			t.Fatalf("owner = %v, want %v", owner, want)
		}
	}
}

// TestBuildShardedNetworkGuards pins the loud construction-time failure
// modes and the shard-count clamp.
func TestBuildShardedNetworkGuards(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	cfg := lineConfig(newFloodAgents())
	expectPanic("empty deployment", func() {
		bad := cfg
		bad.Deployment = nil
		BuildShardedNetwork(bad, 2, 12)
	})
	expectPanic("incomplete config", func() {
		bad := cfg
		bad.Stimulus = nil
		BuildShardedNetwork(bad, 2, 12)
	})
	expectPanic("non-positive shard count", func() { BuildShardedNetwork(cfg, 0, 12) })
	expectPanic("collision modelling", func() {
		bad := cfg
		bad.Collisions = true
		BuildShardedNetwork(bad, 2, 12)
	})
	expectPanic("non-positive horizon", func() {
		BuildShardedNetwork(cfg, 2, 12).Run(0)
	})

	// More shards than nodes clamps instead of building empty kernels.
	nw := BuildShardedNetwork(cfg, 64, 12)
	if got := nw.Group.Shards(); got != len(nw.Nodes) {
		t.Fatalf("shard count %d after clamp, want %d", got, len(nw.Nodes))
	}
}
