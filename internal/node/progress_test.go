package node

import (
	"context"
	"testing"
)

// TestProgressSerial pins the serial progress hook: monotone non-decreasing
// reports ending exactly at the horizon, and a hooked run byte-identical to
// an unhooked one.
func TestProgressSerial(t *testing.T) {
	const horizon = 2.0

	plain := newFloodAgents()
	BuildNetwork(lineConfig(plain)).Run(horizon)

	hooked := newFloodAgents()
	nw := BuildNetwork(lineConfig(hooked))
	var reports []float64
	ctx := WithProgress(context.Background(), func(now, h float64) {
		if h != horizon {
			t.Fatalf("hook horizon = %g, want %g", h, horizon)
		}
		reports = append(reports, now)
	})
	if _, err := nw.RunContext(ctx, horizon); err != nil {
		t.Fatal(err)
	}

	if len(reports) != runContextChecks {
		t.Fatalf("got %d reports, want %d (one per slice incl. horizon)", len(reports), runContextChecks)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] < reports[i-1] {
			t.Fatalf("progress regressed: %g after %g", reports[i], reports[i-1])
		}
	}
	if last := reports[len(reports)-1]; last != horizon {
		t.Fatalf("final report = %g, want the %g horizon", last, horizon)
	}
	for id := range plain {
		if got, want := hooked[id].rx, plain[id].rx; len(got) != len(want) {
			t.Fatalf("node %d: hooked run saw %d deliveries, plain %d", id, len(got), len(want))
		}
	}
}

// TestProgressSharded pins the sharded per-window hook: monotone reports,
// final report at the horizon, and delivery sequences identical to the
// serial unhooked run at 1, 2 and 3 shards.
func TestProgressSharded(t *testing.T) {
	const horizon = 2.0
	const minWire = 12

	serial := newFloodAgents()
	BuildNetwork(lineConfig(serial)).Run(horizon)

	for _, shards := range []int{1, 2, 3} {
		agents := newFloodAgents()
		snw := BuildShardedNetwork(lineConfig(agents), shards, minWire)
		var reports []float64
		ctx := WithProgress(context.Background(), func(now, h float64) {
			if h != horizon {
				t.Fatalf("shards=%d: hook horizon = %g, want %g", shards, h, horizon)
			}
			reports = append(reports, now)
		})
		if _, err := snw.RunContext(ctx, horizon); err != nil {
			t.Fatal(err)
		}
		if len(reports) < 2 {
			t.Fatalf("shards=%d: only %d progress reports", shards, len(reports))
		}
		for i := 1; i < len(reports); i++ {
			if reports[i] < reports[i-1] {
				t.Fatalf("shards=%d: progress regressed: %g after %g", shards, reports[i], reports[i-1])
			}
		}
		if last := reports[len(reports)-1]; last != horizon {
			t.Fatalf("shards=%d: final report = %g, want the horizon", shards, last)
		}
		for id := range serial {
			got, want := agents[id].rx, serial[id].rx
			if len(got) != len(want) {
				t.Fatalf("shards=%d node %d: hooked run saw %d deliveries, serial %d",
					shards, id, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shards=%d node %d delivery %d: %+v vs %+v", shards, id, i, got[i], want[i])
				}
			}
		}
	}
}

// TestProgressAbsentKeepsFastPath pins that a background context without a
// hook still takes the single-RunUntil fast path (observable through the
// unchanged public behavior: the run completes and meters close).
func TestProgressAbsentKeepsFastPath(t *testing.T) {
	agents := newFloodAgents()
	nw := BuildNetwork(lineConfig(agents))
	if h, err := nw.RunContext(context.Background(), 2.0); err != nil || h != 2.0 {
		t.Fatalf("RunContext = %g, %v", h, err)
	}
}
