package node

import (
	"context"
	"fmt"

	"repro/internal/deploy"
	"repro/internal/diffusion"
	"repro/internal/energy"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sim"
)

// NetworkConfig assembles a full simulated sensor field.
type NetworkConfig struct {
	// Deployment fixes node positions and the field bounds.
	Deployment *deploy.Deployment
	// Stimulus is the phenomenon being monitored.
	Stimulus diffusion.Stimulus
	// Profile is the hardware energy model (energy.Telos() for the paper).
	Profile energy.Profile
	// Loss is the channel model (radio.UnitDisk{Range: 10} for the paper).
	Loss radio.LossModel
	// Agents constructs the protocol agent for each node.
	Agents func(id radio.NodeID) Agent
	// ChannelStream drives loss randomness; nil uses a fixed default.
	ChannelStream *rng.Stream
	// Collisions enables destructive-collision modelling.
	Collisions bool
	// CSMA, when non-nil, enables carrier-sense multiple access with the
	// given backoff parameters.
	CSMA *radio.CSMAConfig
	// Topology, when non-nil, is a connectivity graph precompiled with
	// radio.CompileTopology over exactly Deployment.Positions at the loss
	// model's MaxRange; the medium adopts it instead of compiling its own,
	// so runs sharing one deployment share one compilation (the experiment
	// harness memoizes these). The medium re-checks node count and range at
	// freeze time and recompiles on mismatch.
	Topology *radio.Topology
}

// Network is a wired, runnable sensor field.
type Network struct {
	Kernel *sim.Kernel
	Medium *radio.Medium
	Nodes  []*Node
}

// BuildNetwork constructs the kernel, medium and all nodes from cfg.
func BuildNetwork(cfg NetworkConfig) *Network {
	if cfg.Deployment == nil || cfg.Deployment.N() == 0 {
		panic("node: network needs a non-empty deployment")
	}
	if cfg.Stimulus == nil || cfg.Loss == nil || cfg.Agents == nil {
		panic("node: incomplete network config")
	}
	stream := cfg.ChannelStream
	if stream == nil {
		stream = rng.NewSource(0).Stream("channel")
	}
	k := sim.NewKernel()
	medium := radio.NewMedium(k, cfg.Deployment.Field, cfg.Profile, cfg.Loss, stream)
	if cfg.Collisions {
		medium.EnableCollisions()
	}
	if cfg.CSMA != nil {
		medium.EnableCSMA(*cfg.CSMA)
	}
	medium.Reserve(cfg.Deployment.N())
	if cfg.Topology != nil {
		medium.SetTopology(cfg.Topology)
	}
	// Nodes come from one slab (and register into the medium's reserved
	// endpoint slab), so constructing a 10k-node network costs O(1)
	// allocations here rather than O(n).
	nodes := make([]*Node, cfg.Deployment.N())
	slab := make([]Node, cfg.Deployment.N())
	for i, pos := range cfg.Deployment.Positions {
		id := radio.NodeID(i)
		n := &slab[i]
		n.init(Config{
			ID:       id,
			Pos:      pos,
			Kernel:   k,
			Medium:   medium,
			Stimulus: cfg.Stimulus,
			Profile:  cfg.Profile,
			Agent:    cfg.Agents(id),
		})
		nodes[i] = n
	}
	return &Network{Kernel: k, Medium: medium, Nodes: nodes}
}

// Run starts every agent, executes the simulation to the horizon and closes
// all meters at it. It returns the horizon for convenience.
func (nw *Network) Run(horizon float64) float64 {
	h, _ := nw.RunContext(context.Background(), horizon) // Background never cancels
	return h
}

// runContextChecks is how many times RunContext polls a cancellable context
// over the horizon. The slices only bound cancellation latency; they cannot
// change results, because no handler runs between them — chunked RunUntil
// calls execute exactly the event sequence one call would.
const runContextChecks = 128

// RunContext is Run with cooperative cancellation: the kernel executes in
// horizon/128 slices and stops between them once ctx is done, returning the
// virtual time reached and ctx's error. Meters are only closed — and the
// network only collectable — on a complete run. A context that cannot be
// cancelled (ctx.Done() == nil, e.g. context.Background()) and carries no
// progress hook takes the unsliced fast path, so Run keeps its historical
// single-RunUntil behavior byte for byte. A node.WithProgress hook on ctx is
// called after every slice (and once at the horizon) — between slices no
// handler runs, so observation cannot change one output bit.
func (nw *Network) RunContext(ctx context.Context, horizon float64) (float64, error) {
	if horizon <= 0 {
		panic(fmt.Sprintf("node: horizon must be positive, got %g", horizon))
	}
	for _, n := range nw.Nodes {
		n.Start()
	}
	progress := progressFrom(ctx)
	if ctx.Done() != nil || progress != nil {
		slice := horizon / runContextChecks
		for t := slice; t < horizon; t += slice {
			if err := ctx.Err(); err != nil {
				return nw.Kernel.Now(), err
			}
			nw.Kernel.RunUntil(t)
			if progress != nil {
				progress(t, horizon)
			}
		}
		if err := ctx.Err(); err != nil {
			return nw.Kernel.Now(), err
		}
	}
	nw.Kernel.RunUntil(horizon)
	if progress != nil {
		progress(horizon, horizon)
	}
	for _, n := range nw.Nodes {
		n.Finish(horizon)
	}
	return horizon, nil
}
