package node

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/geom"
	"repro/internal/sim"
)

// Churn semantics: a node killed or mid-reboot while a delivery is in
// flight must not receive it, and recovery must never disturb the frozen
// network topology — positions are immutable, so rejoining is a radio-state
// change, not a membership change.

func TestKillMidDeliveryDropsInFlight(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0) // effectively never arrives
	k, m := testRig(stim)
	tx := &scriptAgent{}
	rxa := &scriptAgent{}
	a := newNode(k, m, 0, geom.V(50, 50), stim, tx)
	b := newNode(k, m, 1, geom.V(55, 50), stim, rxa)
	a.Start()
	b.Start()
	// 16-byte ping: on air at t=1, delivers at t+0.512 ms. B dies mid-flight.
	k.Schedule(1, func(*sim.Kernel) { a.BroadcastMessage(ping{}) })
	b.FailAt(1.0002)
	k.Run()
	if b.RxCount() != 0 || len(rxa.msgs) != 0 {
		t.Fatal("node killed mid-delivery still received the message")
	}
	if m.Stats().DroppedSleeping != 1 {
		t.Errorf("DroppedSleeping = %d, want 1", m.Stats().DroppedSleeping)
	}
}

func TestRecoverMidDeliveryStaysDeaf(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	tx := &scriptAgent{}
	rxa := &scriptAgent{}
	a := newNode(k, m, 0, geom.V(50, 50), stim, tx)
	b := newNode(k, m, 1, geom.V(55, 50), stim, rxa)
	a.Start()
	b.Start()
	b.FailAt(0.5)
	// A transmits at t=1 while B is down; B reboots mid-flight at t=1.0003,
	// inside the [1, 1.000512] on-air window: listening at delivery time but
	// deaf to a preamble that started during its outage.
	k.Schedule(1, func(*sim.Kernel) { a.BroadcastMessage(ping{}) })
	b.RecoverAt(1.0003)
	// A second transmission after the reboot must go through.
	k.Schedule(1.1, func(*sim.Kernel) { a.BroadcastMessage(ping{}) })
	k.Run()
	if !b.IsAwake() || b.Failed() {
		t.Fatal("node did not recover")
	}
	if b.RxCount() != 1 {
		t.Fatalf("RxCount = %d, want 1 (in-flight delivery dropped, later one received)", b.RxCount())
	}
	if m.Stats().DroppedSleeping != 1 {
		t.Errorf("DroppedSleeping = %d, want 1", m.Stats().DroppedSleeping)
	}
}

func TestChurnRejoinKeepsFrozenTopology(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	a := newNode(k, m, 0, geom.V(50, 50), stim, &scriptAgent{})
	b := newNode(k, m, 1, geom.V(55, 50), stim, &scriptAgent{})
	a.Start()
	b.Start()
	topo := m.Topology() // freeze before churn
	b.FailAt(1)
	b.RecoverAt(5)
	k.Schedule(6, func(*sim.Kernel) { a.BroadcastMessage(ping{}) })
	k.Run()
	if m.Topology() != topo {
		t.Fatal("churn recovery invalidated the frozen topology")
	}
	if b.RxCount() != 1 {
		t.Fatalf("rejoined node RxCount = %d, want 1", b.RxCount())
	}
}

func TestRecoverBookkeeping(t *testing.T) {
	stim := diffusion.NewRadialFront(geom.V(0, 0), 0.001, 0)
	k, m := testRig(stim)
	ag := &scriptAgent{}
	n := newNode(k, m, 0, geom.V(50, 50), stim, ag)
	n.Start()
	n.FailAt(2)
	n.RecoverAt(7)
	k.RunUntil(10)
	n.Finish(10)

	if got := n.Downtimes(); len(got) != 1 || got[0].Start != 2 || got[0].End != 7 {
		t.Fatalf("Downtimes = %+v, want [{2 7}]", got)
	}
	for _, c := range []struct {
		t    float64
		down bool
	}{{1, false}, {2, true}, {5, true}, {7, false}, {9, false}} {
		if n.WasDownAt(c.t) != c.down {
			t.Errorf("WasDownAt(%g) = %v, want %v", c.t, !c.down, c.down)
		}
	}
	if d := n.DownDuring(10); math.Abs(d-5) > 1e-9 {
		t.Errorf("DownDuring(10) = %g, want 5", d)
	}
	if d := n.DownDuring(4); math.Abs(d-2) > 1e-9 {
		t.Errorf("DownDuring(4) = %g, want 2 (clipped at horizon)", d)
	}
	if ag.wakes == 0 {
		t.Error("recovery did not call OnWake")
	}
	// The reboot charged a wake-up and resumed active residency: 2 s before
	// the outage plus 3 s after.
	b := n.Meter().Breakdown()
	if math.Abs(b.ActiveSec-5) > 1e-9 {
		t.Errorf("ActiveSec = %g, want 5", b.ActiveSec)
	}
	if b.Wakeups != 1 {
		t.Errorf("Wakeups = %d, want 1 (the reboot)", b.Wakeups)
	}
	// A still-failed node reports an open-ended outage.
	n2 := newNode(k, m, 1, geom.V(60, 50), stim, &scriptAgent{})
	n2.Start()
	n2.FailAt(12)
	k.RunUntil(15)
	if !n2.WasDownAt(14) {
		t.Error("still-failed node not reported down")
	}
	if d := n2.DownDuring(20); math.Abs(d-8) > 1e-9 {
		t.Errorf("open-tail DownDuring(20) = %g, want 8", d)
	}
	// Recover is a no-op on a healthy node and on a battery-dead one.
	nOK := newNode(k, m, 2, geom.V(70, 50), stim, &scriptAgent{})
	nOK.Start()
	nOK.Recover()
	if len(nOK.Downtimes()) != 0 {
		t.Error("Recover on a healthy node recorded an outage")
	}
}
