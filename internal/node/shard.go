// Sharded network construction and the conservative-window run loop.
//
// BuildShardedNetwork splits a deployment into contiguous spatial strips
// (equal node counts, sorted by position) and builds one kernel + medium per
// strip over the single shared frozen topology. RunContext then advances all
// shards in lockstep windows of length W = TxTime(minWire) — the shortest
// possible on-air transmission, hence the minimum cross-shard influence
// delay — with a barrier between windows that reconstructs the serial event
// order (sim.ShardGroup.EndWindow) and exchanges the staged cross-shard
// deliveries (radio FlushBoundary). The result is bit-identical to
// BuildNetwork + Run at any shard count; only the wall-clock changes.
package node

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/radio"
	"repro/internal/sim"
)

// ShardedNetwork is a wired sensor field split across spatial shards.
type ShardedNetwork struct {
	Group *sim.ShardGroup
	Media []*radio.Medium
	// Nodes in global ID order, exactly as Network.Nodes — metrics collection
	// iterates this slice and must observe the serial iteration order.
	Nodes []*Node
	// Window is the conservative window length W: the transmission time of
	// the smallest legal message, i.e. the minimum delay after which an event
	// on one shard can influence another.
	Window float64
}

// shardAssignment partitions n node positions into contiguous equal-count
// strips: nodes sorted by (x, y, index), strip k owning ranks
// [k·n/shards, (k+1)·n/shards). Strips of a spatially sorted order keep
// neighbourhoods together, so most CSR rows stay within one shard and only
// boundary rows produce cross-shard traffic.
func shardAssignment(positions []geom.Vec2, shards int) []int32 {
	n := len(positions)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := positions[idx[a]], positions[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return idx[a] < idx[b]
	})
	owner := make([]int32, n)
	for rank, i := range idx {
		owner[i] = int32(rank * shards / n)
	}
	return owner
}

// BuildShardedNetwork constructs a spatially sharded network from cfg.
// minWire is the smallest on-air message size (bytes) any protocol in the
// run transmits; it fixes the window length. Configurations whose transmit
// path cannot shard deterministically (collisions, CSMA, non-UnitDisk loss)
// panic — the experiment layer gates them into serial runs with a clear
// error instead. A shard count above the node count is clamped.
func BuildShardedNetwork(cfg NetworkConfig, shards, minWire int) *ShardedNetwork {
	if cfg.Deployment == nil || cfg.Deployment.N() == 0 {
		panic("node: network needs a non-empty deployment")
	}
	if cfg.Stimulus == nil || cfg.Loss == nil || cfg.Agents == nil {
		panic("node: incomplete network config")
	}
	if shards < 1 {
		panic(fmt.Sprintf("node: shard count must be positive, got %d", shards))
	}
	if cfg.Collisions || cfg.CSMA != nil {
		panic("node: collision/CSMA modelling cannot run sharded")
	}
	n := cfg.Deployment.N()
	if shards > n {
		shards = n
	}
	topo := cfg.Topology
	if topo == nil {
		topo = radio.CompileTopology(cfg.Deployment.Field, cfg.Deployment.Positions, cfg.Loss.MaxRange())
	}
	owner := shardAssignment(cfg.Deployment.Positions, shards)
	group := sim.NewShardGroup(shards)
	media := radio.NewShardedMedia(group, cfg.Deployment.Field, cfg.Profile, cfg.Loss, topo, owner, minWire)
	counts := make([]int, shards)
	for _, s := range owner {
		counts[s]++
	}
	for i, m := range media {
		m.Reserve(counts[i])
	}
	// Construct nodes in GLOBAL ID order, exactly like the serial builder:
	// the group is in direct mode, so every construction-time schedule call
	// draws the same serial sequence number the one-kernel build would.
	nodes := make([]*Node, n)
	slab := make([]Node, n)
	for i, pos := range cfg.Deployment.Positions {
		id := radio.NodeID(i)
		nd := &slab[i]
		nd.init(Config{
			ID:       id,
			Pos:      pos,
			Kernel:   group.Shard(int(owner[i])),
			Medium:   media[owner[i]],
			Stimulus: cfg.Stimulus,
			Profile:  cfg.Profile,
			Agent:    cfg.Agents(id),
		})
		nodes[i] = nd
	}
	return &ShardedNetwork{
		Group:  group,
		Media:  media,
		Nodes:  nodes,
		Window: cfg.Profile.TxTime(minWire),
	}
}

// Run starts every agent, executes the sharded simulation to the horizon and
// closes all meters at it.
func (nw *ShardedNetwork) Run(horizon float64) float64 {
	h, _ := nw.RunContext(context.Background(), horizon)
	return h
}

// barrierSpins is how long a shard goroutine spins on the window barrier
// before yielding the processor. Windows are microseconds of wall-clock, so
// parking on a channel or mutex per window would dominate the run; spinning
// with periodic yields keeps the barrier tens of nanoseconds in the common
// case without starving co-scheduled work.
const barrierSpins = 4096

// ctxCheckEvery is how many window barriers pass between context polls.
const ctxCheckEvery = 256

// RunContext is Run with cooperative cancellation, polled every few hundred
// window barriers. One goroutine per shard executes windows; this goroutine
// orchestrates barriers, sequence merges and boundary flushes. On a
// completed run every meter is closed and the return is (horizon, nil),
// byte-identical to the serial Network.RunContext. A node.WithProgress hook
// on ctx is called once per conservative window (from the orchestration
// goroutine, at the barrier — no shard is executing when it runs), so a long
// sharded run streams per-window progress without touching the kernels.
func (nw *ShardedNetwork) RunContext(ctx context.Context, horizon float64) (float64, error) {
	if horizon <= 0 {
		panic(fmt.Sprintf("node: horizon must be positive, got %g", horizon))
	}
	progress := progressFrom(ctx)
	// Agent starts are construction-time work: global ID order, direct mode.
	for _, n := range nw.Nodes {
		n.Start()
	}
	nw.Group.BeginWindows()

	s := nw.Group.Shards()
	// Spinning assumes every shard goroutine owns a processor; when the
	// runtime has fewer, yield immediately instead of burning the only
	// timeslice the peer needs to finish the window.
	spinLimit := barrierSpins
	if runtime.GOMAXPROCS(0) <= s {
		spinLimit = 1
	}
	var (
		phase   atomic.Uint64 // incremented to release the workers
		pending atomic.Int64  // workers still inside the current window
		stopped atomic.Bool
		// end/final are plain fields published by the phase increment (the
		// atomic store/load pair orders them) and stable until all workers
		// check in through pending.
		end   float64
		final bool
		wg    sync.WaitGroup
	)
	for i := 0; i < s; i++ {
		k := nw.Group.Shard(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seen := uint64(0); ; {
				for spins := 0; phase.Load() == seen; {
					if spins++; spins >= spinLimit {
						runtime.Gosched()
						spins = 0
					}
				}
				seen++
				if stopped.Load() {
					pending.Add(-1)
					return
				}
				if final {
					k.RunUntil(end)
				} else {
					k.RunWindow(end)
				}
				pending.Add(-1)
			}
		}()
	}
	release := func() {
		pending.Store(int64(s))
		phase.Add(1)
		for spins := 0; pending.Load() != 0; {
			if spins++; spins >= spinLimit {
				runtime.Gosched()
				spins = 0
			}
		}
	}
	shutdown := func() {
		stopped.Store(true)
		release()
		wg.Wait()
	}

	for barriers := 0; ; barriers++ {
		// Window start: the globally earliest pending event, so idle spans
		// are skipped in one hop instead of crossed window by window.
		minAt, any := 0.0, false
		for i := 0; i < s; i++ {
			if at, ok := nw.Group.Shard(i).NextEventTime(); ok && (!any || at < minAt) {
				minAt, any = at, true
			}
		}
		if !any || minAt > horizon || minAt+nw.Window > horizon {
			break
		}
		end, final = minAt+nw.Window, false
		release()
		nw.Group.EndWindow()
		for _, m := range nw.Media {
			m.FlushBoundary()
		}
		if progress != nil {
			progress(end, horizon)
		}
		if barriers%ctxCheckEvery == ctxCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				shutdown()
				return nw.Group.Shard(0).Now(), err
			}
		}
	}
	// Final stretch: every remaining event up to and including the horizon.
	// An event here influences other shards no earlier than minAt + W >
	// horizon, so the shards are causally independent to the end — no more
	// barriers, and the serial-inclusive RunUntil semantics apply.
	end, final = horizon, true
	release()
	shutdown()

	for _, n := range nw.Nodes {
		n.Finish(horizon)
	}
	if progress != nil {
		progress(horizon, horizon)
	}
	return horizon, nil
}
