package diffusion

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// smallCoord maps arbitrary floats into a bounded coordinate range for quick
// properties.
func smallCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 100)
}

func TestRadialFrontArrival(t *testing.T) {
	f := NewRadialFront(geom.V(0, 0), 2, 10)
	if a := f.ArrivalTime(geom.V(20, 0)); !almost(a, 20, 1e-12) {
		t.Errorf("arrival = %v, want 20", a)
	}
	if a := f.ArrivalTime(geom.V(0, 0)); a != 10 {
		t.Errorf("origin arrival = %v, want 10 (start)", a)
	}
	if !f.Covered(geom.V(20, 0), 20) {
		t.Error("point not covered at its arrival time")
	}
	if f.Covered(geom.V(20, 0), 19.99) {
		t.Error("point covered before arrival")
	}
}

func TestRadialFrontVelocity(t *testing.T) {
	f := NewRadialFront(geom.V(0, 0), 2, 0)
	v := f.FrontVelocity(geom.V(5, 0), 3)
	if !v.ApproxEqual(geom.V(2, 0), 1e-12) {
		t.Errorf("velocity = %v, want (2,0)", v)
	}
	if v := f.FrontVelocity(geom.V(0, 0), 3); v != geom.Zero {
		t.Errorf("velocity at origin = %v, want zero", v)
	}
}

func TestRadialFrontBoundary(t *testing.T) {
	f := NewRadialFront(geom.V(1, 1), 2, 10)
	if b := f.Boundary(10, 16); b != nil {
		t.Error("boundary before start not nil")
	}
	b := f.Boundary(15, 16)
	if len(b) != 16 {
		t.Fatalf("boundary has %d points", len(b))
	}
	for _, p := range b {
		if !almost(p.Dist(geom.V(1, 1)), 10, 1e-9) {
			t.Fatalf("boundary point %v not at radius 10", p)
		}
	}
	if b := f.Boundary(15, 0); b != nil {
		t.Error("n=0 boundary not nil")
	}
}

func TestRadialFrontPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero speed did not panic")
		}
	}()
	NewRadialFront(geom.Zero, 0, 0)
}

func TestAnisotropicSpeedProfile(t *testing.T) {
	f := NewAnisotropicFront(geom.Zero, 1, 0, []Harmonic{{K: 1, Amp: 0.5, Phase: 0}})
	// v(0) = 1.5, v(pi) = 0.5.
	if v := f.SpeedAt(0); !almost(v, 1.5, 1e-12) {
		t.Errorf("v(0) = %v", v)
	}
	if v := f.SpeedAt(math.Pi); !almost(v, 0.5, 1e-12) {
		t.Errorf("v(pi) = %v", v)
	}
	// Heavy amplitude clamps at the floor rather than going negative.
	g := NewAnisotropicFront(geom.Zero, 1, 0, []Harmonic{{K: 1, Amp: 5, Phase: 0}})
	if v := g.SpeedAt(math.Pi); !almost(v, 0.1, 1e-12) {
		t.Errorf("clamped v = %v, want 0.1 floor", v)
	}
}

func TestAnisotropicArrivalAndCoverage(t *testing.T) {
	f := NewAnisotropicFront(geom.Zero, 1, 5, []Harmonic{{K: 2, Amp: 0.3, Phase: 0}})
	p := geom.V(10, 0)
	a := f.ArrivalTime(p)
	want := 5 + 10/f.SpeedAt(0)
	if !almost(a, want, 1e-12) {
		t.Errorf("arrival = %v, want %v", a, want)
	}
	if f.Covered(p, a-0.01) || !f.Covered(p, a) {
		t.Error("coverage inconsistent with arrival")
	}
	if a := f.ArrivalTime(geom.Zero); a != 5 {
		t.Errorf("origin arrival = %v", a)
	}
	if v := f.FrontVelocity(geom.Zero, 0); v != geom.Zero {
		t.Errorf("origin velocity = %v", v)
	}
}

func TestAnisotropicBoundaryMatchesArrival(t *testing.T) {
	st := rng.NewSource(7).Stream("aniso")
	f := RandomAnisotropicFront(st, geom.V(3, 4), 0.8, 2, 0.4, 4)
	for _, p := range f.Boundary(30, 32) {
		if a := f.ArrivalTime(p); !almost(a, 30, 1e-6) {
			t.Fatalf("boundary point %v has arrival %v, want 30", p, a)
		}
	}
	if b := f.Boundary(1, 8); b != nil {
		t.Error("pre-start boundary not nil")
	}
}

func TestRandomAnisotropicZeroIrregularityIsCircle(t *testing.T) {
	st := rng.NewSource(1).Stream("zero")
	f := RandomAnisotropicFront(st, geom.Zero, 1, 0, 0, 4)
	for theta := 0.0; theta < 2*math.Pi; theta += 0.1 {
		if !almost(f.SpeedAt(theta), 1, 1e-12) {
			t.Fatalf("speed at %v = %v, want 1", theta, f.SpeedAt(theta))
		}
	}
	// maxK < 1 clamps to 1 without panicking.
	_ = RandomAnisotropicFront(st, geom.Zero, 1, 0, 0.2, 0)
}

func TestAnisotropicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive base speed did not panic")
		}
	}()
	NewAnisotropicFront(geom.Zero, -1, 0, nil)
}

func TestAdvectedFrontDownwind(t *testing.T) {
	// Growth 1 m/s, drift 0.5 m/s east. Downwind point (x>0) is reached
	// when 0.5s + s >= x, i.e. s = x/1.5.
	f := NewAdvectedFront(geom.Zero, 1, geom.V(0.5, 0), 0)
	if a := f.ArrivalTime(geom.V(15, 0)); !almost(a, 10, 1e-9) {
		t.Errorf("downwind arrival = %v, want 10", a)
	}
	// Upwind point: reached when s - 0.5s >= x, s = x/0.5.
	if a := f.ArrivalTime(geom.V(-5, 0)); !almost(a, 10, 1e-9) {
		t.Errorf("upwind arrival = %v, want 10", a)
	}
	if a := f.ArrivalTime(geom.Zero); a != 0 {
		t.Errorf("origin arrival = %v", a)
	}
}

func TestAdvectedFrontFasterWind(t *testing.T) {
	// Drift 2 > growth 1: upwind points never covered.
	f := NewAdvectedFront(geom.Zero, 1, geom.V(2, 0), 0)
	if a := f.ArrivalTime(geom.V(-10, 0)); !math.IsInf(a, 1) {
		t.Errorf("upwind arrival = %v, want +Inf", a)
	}
	// Downwind is covered: center at 2s, radius s, so covers x when 2s-s <= x <= 2s+s.
	a := f.ArrivalTime(geom.V(9, 0))
	if !almost(a, 3, 1e-9) {
		t.Errorf("downwind arrival = %v, want 3", a)
	}
	// And the disc eventually uncovers it again (receding behaviour).
	if !f.Covered(geom.V(9, 0), 4) {
		t.Error("point not covered shortly after arrival")
	}
	if f.Covered(geom.V(9, 0), 100) {
		t.Error("point still covered long after the plume passed")
	}
}

func TestAdvectedEqualSpeedEdgeCase(t *testing.T) {
	// |w| == v: points directly downwind are caught, upwind never.
	f := NewAdvectedFront(geom.Zero, 1, geom.V(1, 0), 0)
	a := f.ArrivalTime(geom.V(10, 0))
	if math.IsInf(a, 1) {
		t.Error("downwind point never reached with equal speeds")
	}
	if !math.IsInf(f.ArrivalTime(geom.V(-1, 0)), 1) {
		t.Error("upwind point reached despite equal speeds")
	}
}

func TestAdvectedCoverageMatchesArrival(t *testing.T) {
	f := NewAdvectedFront(geom.V(2, 3), 1, geom.V(0.3, -0.2), 5)
	pts := []geom.Vec2{geom.V(10, 0), geom.V(0, 10), geom.V(-5, 3), geom.V(7, 7)}
	for _, p := range pts {
		a := f.ArrivalTime(p)
		if math.IsInf(a, 1) {
			continue
		}
		if f.Covered(p, a-1e-6) {
			t.Errorf("%v covered before arrival", p)
		}
		if !f.Covered(p, a+1e-9) {
			t.Errorf("%v not covered at arrival", p)
		}
	}
	if f.Covered(geom.V(2, 3), 4.9) {
		t.Error("covered before start")
	}
}

func TestAdvectedFrontVelocityAndBoundary(t *testing.T) {
	f := NewAdvectedFront(geom.Zero, 1, geom.V(0.5, 0), 0)
	v := f.FrontVelocity(geom.V(10, 0), 2)
	// Drift (0.5,0) + radial growth (1,0) = (1.5, 0).
	if !v.ApproxEqual(geom.V(1.5, 0), 1e-9) {
		t.Errorf("velocity = %v, want (1.5,0)", v)
	}
	b := f.Boundary(4, 12)
	if len(b) != 12 {
		t.Fatalf("boundary = %d points", len(b))
	}
	center := geom.V(2, 0)
	for _, p := range b {
		if !almost(p.Dist(center), 4, 1e-9) {
			t.Fatalf("boundary point %v not on drifted circle", p)
		}
	}
	if f.Boundary(0, 12) != nil {
		t.Error("boundary at start not nil")
	}
}

func TestAdvectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive growth did not panic")
		}
	}()
	NewAdvectedFront(geom.Zero, 0, geom.Zero, 0)
}

// --- cross-model quick properties ---

func TestQuickArrivalMonotoneAlongRay(t *testing.T) {
	// For growing stimuli, arrival time increases with distance along a ray.
	st := rng.NewSource(3).Stream("prop")
	models := []FrontModel{
		NewRadialFront(geom.V(1, 2), 0.7, 4),
		RandomAnisotropicFront(st, geom.V(1, 2), 0.7, 4, 0.3, 3),
	}
	f := func(theta, r1, r2 float64) bool {
		th := smallCoord(theta)
		a1 := math.Abs(smallCoord(r1))
		a2 := math.Abs(smallCoord(r2))
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		for _, m := range models {
			o := geom.V(1, 2)
			p1 := o.Add(geom.Polar(a1, th))
			p2 := o.Add(geom.Polar(a2, th))
			if m.ArrivalTime(p1) > m.ArrivalTime(p2)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCoveredIffArrived(t *testing.T) {
	st := rng.NewSource(5).Stream("prop2")
	models := []FrontModel{
		NewRadialFront(geom.V(-3, 2), 0.9, 7),
		RandomAnisotropicFront(st, geom.V(-3, 2), 0.9, 7, 0.25, 4),
		NewAdvectedFront(geom.V(-3, 2), 0.9, geom.V(0.2, 0.1), 7),
	}
	f := func(px, py, tt float64) bool {
		p := geom.V(smallCoord(px), smallCoord(py))
		tm := math.Abs(smallCoord(tt))
		for _, m := range models {
			a := m.ArrivalTime(p)
			cov := m.Covered(p, tm)
			if a <= tm && !cov {
				return false
			}
			if cov && a > tm+1e-9 {
				// Growing stimuli must not cover before arrival. (The
				// advected model with slow drift is still growing.)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAdvectedArrivalConsistent(t *testing.T) {
	// Whenever arrival is finite, Covered flips from false to true at it.
	f := func(px, py, wx, wy float64) bool {
		p := geom.V(smallCoord(px), smallCoord(py))
		w := geom.V(smallCoord(wx)/50, smallCoord(wy)/50)
		m := NewAdvectedFront(geom.Zero, 1, w, 0)
		a := m.ArrivalTime(p)
		if math.IsInf(a, 1) {
			// Never covered at sampled times.
			for _, tt := range []float64{1, 10, 100} {
				if m.Covered(p, tt) && p.Norm() > 1e-9 {
					return false
				}
			}
			return true
		}
		return !m.Covered(p, a-1e-6) || a < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNamedScenarioConstructors(t *testing.T) {
	for _, sc := range []Scenario{
		PaperScenario(),
		IrregularScenario(2),
		GasLeakScenario(),
		TwinSpillScenario(),
		PassingPlumeScenario(),
		QuietScenario(),
	} {
		if sc.Name == "" || sc.Stimulus == nil || sc.Horizon <= 0 {
			t.Errorf("scenario %+v malformed", sc)
		}
	}
	// The quiet field must stay quiet: nothing arrives within the horizon.
	quiet := QuietScenario()
	if at := quiet.Stimulus.ArrivalTime(geom.V(20, 20)); at <= quiet.Horizon {
		t.Errorf("quiet scenario arrives at %g inside horizon %g", at, quiet.Horizon)
	}
}
