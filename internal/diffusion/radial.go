package diffusion

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// RadialFront is the simplest diffusion stimulus: a disc growing from Origin
// at constant Speed, beginning at time Start. It is the workhorse model for
// the paper's Figs. 4–7 experiments, where exact ground truth is required.
type RadialFront struct {
	Origin geom.Vec2
	Speed  float64 // m/s, must be positive
	Start  float64 // virtual time the spill begins
}

// NewRadialFront constructs a constant-speed circular front. It panics on a
// non-positive speed, which would make arrival times meaningless.
func NewRadialFront(origin geom.Vec2, speed, start float64) *RadialFront {
	if speed <= 0 {
		panic(fmt.Sprintf("diffusion: radial front speed must be positive, got %g", speed))
	}
	return &RadialFront{Origin: origin, Speed: speed, Start: start}
}

// ArrivalTime implements Stimulus.
func (f *RadialFront) ArrivalTime(p geom.Vec2) float64 {
	return f.Start + p.Dist(f.Origin)/f.Speed
}

// Covered implements Stimulus.
func (f *RadialFront) Covered(p geom.Vec2, t float64) bool { return grownCovered(f, p, t) }

// FrontVelocity implements FrontModel: the front spreads radially at Speed.
// At the origin itself the direction is undefined and the zero vector is
// returned.
func (f *RadialFront) FrontVelocity(p geom.Vec2, _ float64) geom.Vec2 {
	return p.Sub(f.Origin).Normalize().Scale(f.Speed)
}

// Boundary implements FrontModel.
func (f *RadialFront) Boundary(t float64, n int) []geom.Vec2 {
	r := (t - f.Start) * f.Speed
	if r <= 0 || n <= 0 {
		return nil
	}
	pts := make([]geom.Vec2, n)
	for i := range pts {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = f.Origin.Add(geom.Polar(r, theta))
	}
	return pts
}

// Harmonic is one angular harmonic of an anisotropic speed profile.
type Harmonic struct {
	K     int     // angular frequency (cycles per revolution)
	Amp   float64 // relative amplitude
	Phase float64 // radians
}

// AnisotropicFront grows radially with a direction-dependent speed
//
//	v(θ) = v0 · max(ε, 1 + Σ_h Amp_h·cos(K_h·θ + Phase_h)),
//
// producing the irregular, non-circular alert areas of the paper's Fig. 2
// ("the ALERT area is an irregular shape rather than a circle because the
// spreading rate of the stimulus may vary in different directions").
type AnisotropicFront struct {
	Origin    geom.Vec2
	BaseSpeed float64
	Start     float64
	Harmonics []Harmonic

	minFactor float64 // floor on the speed factor, keeps v(θ) positive
}

// NewAnisotropicFront builds an anisotropic front; base speed must be
// positive. The combined harmonic amplitude is clamped so the speed never
// drops below 10% of the base speed.
func NewAnisotropicFront(origin geom.Vec2, base, start float64, harmonics []Harmonic) *AnisotropicFront {
	if base <= 0 {
		panic(fmt.Sprintf("diffusion: anisotropic base speed must be positive, got %g", base))
	}
	return &AnisotropicFront{
		Origin:    origin,
		BaseSpeed: base,
		Start:     start,
		Harmonics: harmonics,
		minFactor: 0.1,
	}
}

// RandomAnisotropicFront draws a smooth random speed profile with the given
// irregularity in [0, 1) spread over harmonics 1..maxK, using the provided
// stream. irregularity 0 reduces to a circular front.
func RandomAnisotropicFront(st *rng.Stream, origin geom.Vec2, base, start, irregularity float64, maxK int) *AnisotropicFront {
	if maxK < 1 {
		maxK = 1
	}
	irregularity = geom.Clamp(irregularity, 0, 0.95)
	hs := make([]Harmonic, 0, maxK)
	for k := 1; k <= maxK; k++ {
		hs = append(hs, Harmonic{
			K:     k,
			Amp:   irregularity / float64(maxK) * st.Uniform(0.5, 1),
			Phase: st.Uniform(0, 2*math.Pi),
		})
	}
	return NewAnisotropicFront(origin, base, start, hs)
}

// SpeedAt returns the spreading speed in direction θ.
func (f *AnisotropicFront) SpeedAt(theta float64) float64 {
	factor := 1.0
	for _, h := range f.Harmonics {
		factor += h.Amp * math.Cos(float64(h.K)*theta+h.Phase)
	}
	if factor < f.minFactor {
		factor = f.minFactor
	}
	return f.BaseSpeed * factor
}

// ArrivalTime implements Stimulus: along each ray the front moves at the
// constant per-direction speed, so arrival is distance over SpeedAt.
func (f *AnisotropicFront) ArrivalTime(p geom.Vec2) float64 {
	d := p.Sub(f.Origin)
	r := d.Norm()
	if r == 0 {
		return f.Start
	}
	return f.Start + r/f.SpeedAt(d.Angle())
}

// Covered implements Stimulus.
func (f *AnisotropicFront) Covered(p geom.Vec2, t float64) bool { return grownCovered(f, p, t) }

// FrontVelocity implements FrontModel. The radial direction approximates the
// boundary normal for mild anisotropy, which is the regime the paper's
// assumption "stimulus spreads along the normal direction of the boundary"
// describes.
func (f *AnisotropicFront) FrontVelocity(p geom.Vec2, _ float64) geom.Vec2 {
	d := p.Sub(f.Origin)
	if d.Norm() == 0 {
		return geom.Vec2{}
	}
	return d.Normalize().Scale(f.SpeedAt(d.Angle()))
}

// Boundary implements FrontModel.
func (f *AnisotropicFront) Boundary(t float64, n int) []geom.Vec2 {
	dt := t - f.Start
	if dt <= 0 || n <= 0 {
		return nil
	}
	pts := make([]geom.Vec2, n)
	for i := range pts {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = f.Origin.Add(geom.Polar(f.SpeedAt(theta)*dt, theta))
	}
	return pts
}

// AdvectedFront is a disc that both grows at GrowthSpeed and drifts with a
// constant Drift velocity (wind or current): at elapsed time s its boundary
// is the circle of radius GrowthSpeed·s centered at Origin + Drift·s. It
// models the paper's "noxious gas" emergency scenario. When |Drift| >=
// GrowthSpeed, points up-wind of the source are never covered.
type AdvectedFront struct {
	Origin      geom.Vec2
	GrowthSpeed float64
	Drift       geom.Vec2
	Start       float64
}

// NewAdvectedFront constructs a drifting front; growth speed must be
// positive.
func NewAdvectedFront(origin geom.Vec2, growth float64, drift geom.Vec2, start float64) *AdvectedFront {
	if growth <= 0 {
		panic(fmt.Sprintf("diffusion: advected front growth speed must be positive, got %g", growth))
	}
	return &AdvectedFront{Origin: origin, GrowthSpeed: growth, Drift: drift, Start: start}
}

// coverageInterval returns the elapsed-time window [sIn, sOut] during which
// the front covers p (sOut = +Inf when coverage is permanent; sIn = +Inf
// when p is never covered). Coverage at elapsed s requires
// |d − Drift·s| <= GrowthSpeed·s with d = p − Origin, i.e. s between the
// roots of (|w|²−v²)s² − 2(d·w)s + |d|² = 0. Deriving ArrivalTime and
// Covered from this single computation keeps them bit-exact consistent at
// the arrival instant, which the sensing model depends on.
func (f *AdvectedFront) coverageInterval(p geom.Vec2) (sIn, sOut float64) {
	d := p.Sub(f.Origin)
	v := f.GrowthSpeed
	w := f.Drift
	a := w.Norm2() - v*v
	b := -2 * d.Dot(w)
	c := d.Norm2()
	if c == 0 {
		// At the origin: covered from the start; uncovered again only when
		// the drift outruns the growth.
		if a > 0 {
			return 0, -b / a // larger root of a·s² + b·s = 0
		}
		return 0, Never()
	}
	switch {
	case a < 0:
		// Growth outpaces drift: the parabola opens downward, f(0) = c > 0,
		// so coverage begins at the positive root and is permanent.
		disc := b*b - 4*a*c
		sq := math.Sqrt(disc)
		s2 := (-b - sq) / (2 * a) // the larger root when dividing by a<0
		return s2, Never()
	case a == 0:
		// |w| == v: linear equation b·s + c <= 0.
		if b >= 0 {
			return Never(), Never() // front keeps pace but never catches p
		}
		return c / (-b), Never()
	default:
		// Drift outruns growth: coverage holds between the roots (if any) —
		// the plume blows past.
		disc := b*b - 4*a*c
		if disc < 0 {
			return Never(), Never()
		}
		sq := math.Sqrt(disc)
		s1 := (-b - sq) / (2 * a)
		s2 := (-b + sq) / (2 * a)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		if s2 < 0 {
			return Never(), Never()
		}
		if s1 < 0 {
			s1 = 0
		}
		return s1, s2
	}
}

// ArrivalTime implements Stimulus.
func (f *AdvectedFront) ArrivalTime(p geom.Vec2) float64 {
	sIn, _ := f.coverageInterval(p)
	if math.IsInf(sIn, 1) {
		return Never()
	}
	return f.Start + sIn
}

// DepartureTime reports when the front uncovers p again (+Inf when coverage
// is permanent or never happens); it implements the node runtime's Departer
// interface so fast-wind plumes trigger covered→safe transitions.
func (f *AdvectedFront) DepartureTime(p geom.Vec2) float64 {
	sIn, sOut := f.coverageInterval(p)
	if math.IsInf(sIn, 1) || math.IsInf(sOut, 1) {
		return Never()
	}
	return f.Start + sOut
}

// Covered implements Stimulus, bit-exact consistent with ArrivalTime and
// DepartureTime.
func (f *AdvectedFront) Covered(p geom.Vec2, t float64) bool {
	s := t - f.Start
	if s < 0 {
		return false
	}
	sIn, sOut := f.coverageInterval(p)
	return s >= sIn && s <= sOut
}

// FrontVelocity implements FrontModel: a boundary point in the direction of
// p moves with the drift plus the radial growth.
func (f *AdvectedFront) FrontVelocity(p geom.Vec2, t float64) geom.Vec2 {
	s := t - f.Start
	if s < 0 {
		s = 0
	}
	center := f.Origin.Add(f.Drift.Scale(s))
	n := p.Sub(center).Normalize()
	return f.Drift.Add(n.Scale(f.GrowthSpeed))
}

// Boundary implements FrontModel.
func (f *AdvectedFront) Boundary(t float64, n int) []geom.Vec2 {
	s := t - f.Start
	if s <= 0 || n <= 0 {
		return nil
	}
	center := f.Origin.Add(f.Drift.Scale(s))
	r := f.GrowthSpeed * s
	pts := make([]geom.Vec2, n)
	for i := range pts {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = center.Add(geom.Polar(r, theta))
	}
	return pts
}
