package diffusion

import (
	"math"

	"repro/internal/geom"
)

// arrivalField is the shared query machinery for stimuli whose ground truth
// is a per-cell first-arrival-time grid (the PDE plume and the eikonal
// terrain front). It provides the Stimulus/FrontModel surface: O(1) arrival
// lookups with sub-cell interpolation, eikonal-duality front velocities and
// marching-squares boundary extraction.
type arrivalField struct {
	grid    *geom.Grid
	bounds  geom.Rect
	arrival []float64 // first arrival per cell; +Inf if never reached
	start   float64   // stimulus start time (arrival values are absolute)
	far     float64   // "never" placeholder level for contouring
}

func newArrivalField(bounds geom.Rect, nx, ny int, start, horizon float64) *arrivalField {
	g := geom.NewGrid(bounds, nx, ny)
	f := &arrivalField{
		grid:    g,
		bounds:  bounds,
		arrival: make([]float64, g.Cells()),
		start:   start,
		far:     start + horizon*10 + 1,
	}
	for i := range f.arrival {
		f.arrival[i] = Never()
	}
	return f
}

func (f *arrivalField) at(i, j int) float64 { return f.arrival[f.grid.Index(i, j)] }

// ArrivalTime implements the Stimulus ground-truth query with bilinear
// interpolation when the 2×2 neighbourhood is finite, falling back to the
// containing cell's value near the frontier.
func (f *arrivalField) ArrivalTime(q geom.Vec2) float64 {
	if !f.bounds.Contains(q) {
		return Never()
	}
	i, j := f.grid.Cell(q)
	center := f.at(i, j)
	if math.IsInf(center, 1) {
		return Never()
	}
	dx, dy := f.grid.CellSize()
	fx := (q.X-f.bounds.Min.X)/dx - 0.5
	fy := (q.Y-f.bounds.Min.Y)/dy - 0.5
	i0 := int(geom.Clamp(fx, 0, float64(f.grid.NX-1)))
	j0 := int(geom.Clamp(fy, 0, float64(f.grid.NY-1)))
	i1, j1 := minInt(i0+1, f.grid.NX-1), minInt(j0+1, f.grid.NY-1)
	for _, idx := range [4]int{
		f.grid.Index(i0, j0), f.grid.Index(i1, j0),
		f.grid.Index(i0, j1), f.grid.Index(i1, j1),
	} {
		if math.IsInf(f.arrival[idx], 1) {
			return center
		}
	}
	return f.grid.Bilinear(f.arrival, q)
}

// Covered implements the growing-stimulus coverage query.
func (f *arrivalField) Covered(q geom.Vec2, t float64) bool {
	return f.ArrivalTime(q) <= t
}

// FrontVelocity implements the FrontModel query via eikonal duality: the
// front's normal speed is 1/|∇A| along ∇A, A being the arrival field.
func (f *arrivalField) FrontVelocity(q geom.Vec2, _ float64) geom.Vec2 {
	i, j := f.grid.Cell(q)
	dx, dy := f.grid.CellSize()
	ax0 := f.at(maxInt(i-1, 0), j)
	ax1 := f.at(minInt(i+1, f.grid.NX-1), j)
	ay0 := f.at(i, maxInt(j-1, 0))
	ay1 := f.at(i, minInt(j+1, f.grid.NY-1))
	if math.IsInf(ax0, 1) || math.IsInf(ax1, 1) || math.IsInf(ay0, 1) || math.IsInf(ay1, 1) {
		return geom.Vec2{}
	}
	grad := geom.V((ax1-ax0)/(2*dx), (ay1-ay0)/(2*dy))
	n2 := grad.Norm2()
	if n2 == 0 {
		return geom.Vec2{}
	}
	return grad.Scale(1 / n2)
}

// Boundary implements the FrontModel query: the arrival iso-contour at level
// t via marching squares, thinned to at most n points when n > 0.
func (f *arrivalField) Boundary(t float64, n int) []geom.Vec2 {
	if t <= f.start {
		return nil
	}
	level := func(i, j int) float64 {
		a := f.at(i, j)
		if math.IsInf(a, 1) {
			return f.far
		}
		return a
	}
	var pts []geom.Vec2
	for j := 0; j < f.grid.NY-1; j++ {
		for i := 0; i < f.grid.NX-1; i++ {
			a00 := level(i, j)
			a10 := level(i+1, j)
			a01 := level(i, j+1)
			c00 := f.grid.Center(i, j)
			c10 := f.grid.Center(i+1, j)
			c01 := f.grid.Center(i, j+1)
			if (a00 <= t) != (a10 <= t) {
				pts = append(pts, c00.Lerp(c10, safeFrac(t, a00, a10)))
			}
			if (a00 <= t) != (a01 <= t) {
				pts = append(pts, c00.Lerp(c01, safeFrac(t, a00, a01)))
			}
		}
	}
	if n > 0 && len(pts) > n {
		out := make([]geom.Vec2, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, pts[i*len(pts)/n])
		}
		return out
	}
	return pts
}
