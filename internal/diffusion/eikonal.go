package diffusion

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geom"
)

// TerrainConfig parameterizes the heterogeneous-terrain front: a stimulus
// whose local spreading speed varies over the field (vegetation, slopes,
// barriers). The ground-truth arrival times solve the eikonal equation
// |∇T(x)|·v(x) = 1 by the fast marching method.
type TerrainConfig struct {
	// Bounds is the field covered by the speed map.
	Bounds geom.Rect
	// NX, NY are the grid resolution.
	NX, NY int
	// Speed returns the local spreading speed (m/s) at a point; it is
	// sampled once per cell at construction. Speeds of 0 or below mark
	// impassable barriers.
	Speed func(p geom.Vec2) float64
	// Source is the ignition/release point.
	Source geom.Vec2
	// Start is the virtual time of the release.
	Start float64
	// Horizon bounds the times of interest (used only for boundary
	// contouring levels).
	Horizon float64
}

// Validate reports an error for unusable configs.
func (c TerrainConfig) Validate() error {
	switch {
	case c.NX < 4 || c.NY < 4:
		return fmt.Errorf("diffusion: terrain grid too coarse (%dx%d)", c.NX, c.NY)
	case c.Bounds.Width() <= 0 || c.Bounds.Height() <= 0:
		return fmt.Errorf("diffusion: terrain bounds empty: %v", c.Bounds)
	case c.Speed == nil:
		return fmt.Errorf("diffusion: terrain speed function is nil")
	case c.Horizon <= 0:
		return fmt.Errorf("diffusion: horizon must be positive, got %g", c.Horizon)
	case !c.Bounds.Contains(c.Source):
		return fmt.Errorf("diffusion: source %v outside bounds %v", c.Source, c.Bounds)
	}
	return nil
}

// TerrainFront is a stimulus spreading through a heterogeneous medium. It
// satisfies Stimulus and FrontModel through the shared arrival-field query
// machinery; arrival times are the exact (to grid resolution) first-arrival
// solution of the eikonal equation, so fronts bend around slow regions and
// stop at barriers — behaviour none of the analytic models can produce.
type TerrainFront struct {
	*arrivalField
	cfg   TerrainConfig
	speed []float64 // per-cell speeds
}

// fmmItem is a heap entry of the fast-marching narrow band.
type fmmItem struct {
	idx  int
	t    float64
	heap int // position in the heap, -1 when popped
}

type fmmHeap []*fmmItem

func (h fmmHeap) Len() int           { return len(h) }
func (h fmmHeap) Less(i, j int) bool { return h[i].t < h[j].t }
func (h fmmHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heap = i; h[j].heap = j }
func (h *fmmHeap) Push(x any)        { it := x.(*fmmItem); it.heap = len(*h); *h = append(*h, it) }
func (h *fmmHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	it.heap = -1
	*h = old[:n-1]
	return it
}

// NewTerrainFront samples the speed map, runs fast marching from the source
// and returns the queryable stimulus.
func NewTerrainFront(cfg TerrainConfig) (*TerrainFront, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &TerrainFront{
		arrivalField: newArrivalField(cfg.Bounds, cfg.NX, cfg.NY, cfg.Start, cfg.Horizon),
		cfg:          cfg,
	}
	g := f.grid
	f.speed = make([]float64, g.Cells())
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			f.speed[g.Index(i, j)] = cfg.Speed(g.Center(i, j))
		}
	}
	f.march()
	return f, nil
}

// march runs the fast marching method: a Dijkstra-like sweep where each
// cell's tentative time solves the upwind quadratic discretization of
// |∇T| v = 1.
func (f *TerrainFront) march() {
	g := f.grid
	dx, dy := g.CellSize()
	n := g.Cells()
	state := make([]byte, n) // 0 far, 1 narrow, 2 accepted
	items := make([]*fmmItem, n)
	var band fmmHeap

	si, sj := g.Cell(f.cfg.Source)
	srcIdx := g.Index(si, sj)
	if f.speed[srcIdx] <= 0 {
		return // source inside a barrier: nothing spreads
	}
	f.arrival[srcIdx] = f.cfg.Start
	items[srcIdx] = &fmmItem{idx: srcIdx, t: f.cfg.Start}
	state[srcIdx] = 1
	heap.Push(&band, items[srcIdx])

	update := func(i, j int) {
		idx := g.Index(i, j)
		if state[idx] == 2 || f.speed[idx] <= 0 {
			return
		}
		// Upwind neighbours: smallest accepted time along each axis.
		tx := math.Inf(1)
		if i > 0 && state[g.Index(i-1, j)] == 2 {
			tx = f.arrival[g.Index(i-1, j)]
		}
		if i < g.NX-1 && state[g.Index(i+1, j)] == 2 {
			tx = math.Min(tx, f.arrival[g.Index(i+1, j)])
		}
		ty := math.Inf(1)
		if j > 0 && state[g.Index(i, j-1)] == 2 {
			ty = f.arrival[g.Index(i, j-1)]
		}
		if j < g.NY-1 && state[g.Index(i, j+1)] == 2 {
			ty = math.Min(ty, f.arrival[g.Index(i, j+1)])
		}
		tNew := solveEikonal(tx, ty, dx, dy, f.speed[idx])
		if math.IsInf(tNew, 1) || tNew >= f.arrival[idx] {
			return
		}
		f.arrival[idx] = tNew
		if state[idx] == 0 {
			state[idx] = 1
			items[idx] = &fmmItem{idx: idx, t: tNew}
			heap.Push(&band, items[idx])
		} else {
			items[idx].t = tNew
			heap.Fix(&band, items[idx].heap)
		}
	}

	for band.Len() > 0 {
		it := heap.Pop(&band).(*fmmItem)
		state[it.idx] = 2
		i := it.idx % g.NX
		j := it.idx / g.NX
		if i > 0 {
			update(i-1, j)
		}
		if i < g.NX-1 {
			update(i+1, j)
		}
		if j > 0 {
			update(i, j-1)
		}
		if j < g.NY-1 {
			update(i, j+1)
		}
	}
}

// solveEikonal returns the upwind solution of ((T−tx)/dx)² + ((T−ty)/dy)² =
// 1/v² using whichever axis values are finite.
func solveEikonal(tx, ty, dx, dy, v float64) float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	inv := 1 / v
	xFinite := !math.IsInf(tx, 1)
	yFinite := !math.IsInf(ty, 1)
	switch {
	case xFinite && yFinite:
		// Quadratic in T: (1/dx²+1/dy²)T² − 2(tx/dx²+ty/dy²)T + (tx²/dx²+ty²/dy²−inv²) = 0.
		a := 1/(dx*dx) + 1/(dy*dy)
		b := -2 * (tx/(dx*dx) + ty/(dy*dy))
		c := tx*tx/(dx*dx) + ty*ty/(dy*dy) - inv*inv
		disc := b*b - 4*a*c
		if disc >= 0 {
			t := (-b + math.Sqrt(disc)) / (2 * a)
			// The two-sided solution is only valid if it is upwind of both
			// contributors; otherwise fall back to the one-sided update.
			if t >= tx && t >= ty {
				return t
			}
		}
		return math.Min(tx+dx*inv, ty+dy*inv)
	case xFinite:
		return tx + dx*inv
	case yFinite:
		return ty + dy*inv
	default:
		return math.Inf(1)
	}
}

// SpeedAtPoint returns the sampled per-cell speed at q (0 outside bounds).
func (f *TerrainFront) SpeedAtPoint(q geom.Vec2) float64 {
	if !f.cfg.Bounds.Contains(q) {
		return 0
	}
	i, j := f.grid.Cell(q)
	return f.speed[f.grid.Index(i, j)]
}

// TerrainScenario builds a heterogeneous-terrain workload: the paper field
// with a slow band across the middle (e.g. a wet depression slowing a fire
// or a coarse soil band slowing a pollutant) that the front must round.
func TerrainScenario() (Scenario, error) {
	field := geom.R(0, 0, 40, 40)
	front, err := NewTerrainFront(TerrainConfig{
		Bounds: field,
		NX:     80,
		NY:     80,
		Speed: func(p geom.Vec2) float64 {
			// Fast medium at 0.6 m/s with a slow horizontal band (0.15 m/s)
			// across y∈[18,24] that leaves a gap at the right edge.
			if p.Y >= 18 && p.Y <= 24 && p.X < 32 {
				return 0.15
			}
			return 0.6
		},
		Source:  geom.V(6, 6),
		Start:   10,
		Horizon: 200,
	})
	if err != nil {
		return Scenario{}, fmt.Errorf("diffusion: building terrain scenario: %w", err)
	}
	return Scenario{
		Name:        "terrain",
		Description: "heterogeneous-terrain front (eikonal/fast-marching ground truth)",
		Field:       field,
		Horizon:     200,
		Stimulus:    front,
	}, nil
}
