package diffusion

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Scenario bundles a stimulus with the field it is designed for, so the
// experiment harness and the examples can pick workloads by name.
type Scenario struct {
	Name        string
	Description string
	Field       geom.Rect
	Horizon     float64
	Stimulus    FrontModel
}

// PaperScenario reproduces the workload of the paper's Figs. 4–7: a radial
// pollutant front crossing a field sized for 30 nodes with a 10 m
// transmission range. The front starts at the field's west edge center and
// crosses the field well within the horizon.
func PaperScenario() Scenario {
	// 40 m × 40 m is the densest field in which 30 uniformly-placed nodes
	// with a 10 m range form a connected gossip graph with useful
	// probability (the paper gives node count and range but not the field).
	field := geom.R(0, 0, 40, 40)
	origin := geom.V(0, 20)
	// 0.5 m/s: the field is crossed in ~1.5 minutes, the time scale on
	// which sleep intervals of 5–30 s matter (as in the paper's figures,
	// where delays land in the 1–3 s range).
	front := NewRadialFront(origin, 0.5, 10)
	return Scenario{
		Name:        "paper-radial",
		Description: "radial liquid-pollutant front (paper Figs. 4-7 workload)",
		Field:       field,
		Horizon:     140,
		Stimulus:    front,
	}
}

// IrregularScenario is the paper workload with an anisotropic front, giving
// the irregular alert areas of Fig. 2. Seed controls the harmonic draw.
func IrregularScenario(seed int64) Scenario {
	field := geom.R(0, 0, 40, 40)
	st := rng.NewSource(seed).Stream("anisotropic-front")
	front := RandomAnisotropicFront(st, geom.V(0, 20), 0.5, 10, 0.4, 4)
	return Scenario{
		Name:        "irregular",
		Description: "anisotropic pollutant front with irregular boundary (Fig. 2 shape)",
		Field:       field,
		Horizon:     220,
		Stimulus:    front,
	}
}

// GasLeakScenario is an emergent advected release: fast growth plus wind,
// the "noxious gas in a city" case of the paper's §3.4 where a large alert
// area is warranted.
func GasLeakScenario() Scenario {
	// 80 m × 80 m keeps realistic deployments (60 nodes at a 14–16 m urban
	// range) connected while the fast advected front still needs most of
	// the horizon to cross.
	field := geom.R(0, 0, 80, 80)
	front := NewAdvectedFront(geom.V(8, 40), 1.2, geom.V(0.6, 0.15), 5)
	return Scenario{
		Name:        "gasleak",
		Description: "advected noxious-gas release (emergent; paper §3.4 discussion)",
		Field:       field,
		Horizon:     100,
		Stimulus:    front,
	}
}

// PlumeScenario integrates a physically-modelled pollutant plume with the
// PDE solver; it exercises irregular numerically-derived fronts end to end.
func PlumeScenario() (Scenario, error) {
	// The field matches the paper scenario (40 m × 40 m) so the standard
	// 30-node/10 m deployments stay connected.
	field := geom.R(0, 0, 40, 40)
	plume, err := NewGridPlume(PlumeConfig{
		Bounds:      field,
		NX:          64,
		NY:          64,
		Diffusivity: 2.0,
		Wind:        geom.V(0.25, 0.1),
		Source:      geom.V(8, 20),
		Rate:        60,
		Duration:    0,
		Threshold:   0.05,
		Horizon:     200,
		Start:       10,
	})
	if err != nil {
		return Scenario{}, fmt.Errorf("diffusion: building plume scenario: %w", err)
	}
	return Scenario{
		Name:        "plume",
		Description: "advection-diffusion PDE pollutant plume (thresholded contour front)",
		Field:       field,
		Horizon:     210,
		Stimulus:    plume,
	}, nil
}

// TwinSpillScenario has two simultaneous radial spills — a MultiSource union
// exercising the minimum-arrival logic.
func TwinSpillScenario() Scenario {
	field := geom.R(0, 0, 80, 80)
	a := NewRadialFront(geom.V(5, 20), 0.45, 10)
	b := NewRadialFront(geom.V(75, 65), 0.35, 25)
	return Scenario{
		Name:        "twinspill",
		Description: "two simultaneous pollutant spills (union stimulus)",
		Field:       field,
		Horizon:     240,
		Stimulus:    NewMultiSource(a, b),
	}
}

// QuietScenario has no stimulus within the horizon: the pure surveillance
// phase whose energy draw determines network lifetime (the paper's framing:
// "energy efficiency has proven to be an important factor dominating the
// working period of WSN surveillance systems"). The front exists but is so
// distant that nothing happens before the horizon.
func QuietScenario() Scenario {
	field := geom.R(0, 0, 40, 40)
	front := NewRadialFront(geom.V(-1e9, 20), 0.5, 0)
	return Scenario{
		Name:        "quiet",
		Description: "no stimulus within the horizon (surveillance-lifetime workload)",
		Field:       field,
		Horizon:     1800,
		Stimulus:    front,
	}
}

// PassingPlumeScenario is a receding stimulus: the front sweeps past and
// coverage at each point lasts a finite dwell, driving covered→safe
// transitions.
func PassingPlumeScenario() Scenario {
	base := GasLeakScenario()
	return Scenario{
		Name:        "passing",
		Description: "gas plume that blows past (finite dwell; covered→safe transitions)",
		Field:       base.Field,
		Horizon:     base.Horizon,
		Stimulus:    NewReceding(base.Stimulus, 20),
	}
}
