// Package diffusion models the diffusion stimulus (DS) that the PAS paper's
// sensor network monitors: a phenomenon such as a liquid pollutant or noxious
// gas that spreads outward from a source across a 2-D field.
//
// Two families of models are provided. The analytic fronts (RadialFront,
// AnisotropicFront, AdvectedFront) have closed-form arrival times and are
// used for the paper's main experiments, where ground truth must be exact.
// GridPlume integrates the advection–diffusion PDE on a grid and extracts the
// front as a concentration contour; it produces the irregular boundaries of
// the paper's Fig. 1/2 and backs the pollutant/gas example scenarios.
//
// A protocol only ever observes a stimulus through two questions — "is my
// position covered at the current time?" (sensing) and, for ground-truth
// metrics, "when does the stimulus truly arrive here?" — so the Stimulus
// interface is exactly those two queries.
package diffusion

import (
	"math"

	"repro/internal/geom"
)

// Never is the arrival time reported for points the stimulus never reaches.
func Never() float64 { return math.Inf(1) }

// Stimulus is the minimal interface a sensor field needs: ground-truth
// arrival time and point-coverage queries.
type Stimulus interface {
	// ArrivalTime returns the first virtual time at which the stimulus
	// covers p, or +Inf if it never does.
	ArrivalTime(p geom.Vec2) float64
	// Covered reports whether p is covered by the stimulus at time t. For
	// monotonically growing stimuli this is ArrivalTime(p) <= t; receding
	// stimuli may uncover points again.
	Covered(p geom.Vec2, t float64) bool
}

// FrontModel extends Stimulus with boundary geometry and ground-truth front
// velocity, used by the visualizer and by estimator-accuracy tests.
type FrontModel interface {
	Stimulus
	// FrontVelocity returns the local spreading velocity of the front in
	// the neighbourhood of p at time t (direction = spreading direction,
	// magnitude = speed). The zero vector means "no information".
	FrontVelocity(p geom.Vec2, t float64) geom.Vec2
	// Boundary returns n points approximating the stimulus boundary at
	// time t; nil when the stimulus has no extent yet.
	Boundary(t float64, n int) []geom.Vec2
}

// CoverageFraction samples the fraction of the given points covered at time
// t; the experiment harness uses it for sanity reporting.
func CoverageFraction(s Stimulus, pts []geom.Vec2, t float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	n := 0
	for _, p := range pts {
		if s.Covered(p, t) {
			n++
		}
	}
	return float64(n) / float64(len(pts))
}

// EarliestArrival returns the minimum ground-truth arrival time over the
// given points (+Inf if none are ever covered).
func EarliestArrival(s Stimulus, pts []geom.Vec2) float64 {
	min := Never()
	for _, p := range pts {
		if a := s.ArrivalTime(p); a < min {
			min = a
		}
	}
	return min
}

// grownCovered is the shared Covered implementation for monotonically
// growing stimuli.
func grownCovered(s Stimulus, p geom.Vec2, t float64) bool {
	return s.ArrivalTime(p) <= t
}
